package socialtrust_test

import (
	"bytes"
	"regexp"
	"strings"
	"testing"

	"socialtrust"
)

// TestMetricsExpositionHygiene is the promtool-style lint over a fully
// instrumented exposition: after a managed chaos run has touched every
// subsystem (overlay, engine, filter, simulator, churn, faults, runtime
// sampling), every metric family in the Prometheus text output must carry a
// # HELP line, every family and series name must be well-formed, and no
// family may appear twice.
func TestMetricsExpositionHygiene(t *testing.T) {
	socialtrust.EnableMetrics()
	cfg := socialtrust.DefaultSimConfig(socialtrust.MCM, socialtrust.EngineEigenTrust, 0.4, true)
	cfg.NumNodes = 60
	cfg.NumPretrusted = 3
	cfg.NumColluders = 10
	cfg.NumBoosted = 3
	cfg.QueryCycles = 5
	cfg.SimulationCycles = 4
	cfg.Seed = 42
	cfg.Managers = 4
	cfg.Churn = socialtrust.DefaultChurn()
	cfg.Faults = socialtrust.FaultConfig{Seed: 7, Drop: 0.05, CrashRate: 0.2}
	if _, err := socialtrust.RunSim(cfg); err != nil {
		t.Fatal(err)
	}
	// Fold in the runtime gauges and the health sampler's view so the
	// exposition is as instrumented as a live ops-plane scrape.
	s := socialtrust.StartHealthSampler(socialtrust.HealthConfig{})
	s.SampleOnce()
	s.Stop()

	var buf bytes.Buffer
	if err := socialtrust.WriteMetricsText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()

	nameRE := regexp.MustCompile(`^[a-z_][a-z0-9_]*$`)
	seriesRE := regexp.MustCompile(`^([a-z_][a-z0-9_]*)(\{[^{}]*\})?$`)
	families := map[string]bool{} // family -> has # HELP
	typed := map[string]int{}
	var lastHelp string
	nFamilies, nSeries := 0, 0
	for _, line := range strings.Split(text, "\n") {
		switch {
		case line == "":
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, ok := strings.Cut(rest, " ")
			if !ok || strings.TrimSpace(help) == "" {
				t.Errorf("HELP line without text: %q", line)
			}
			lastHelp = name
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			name, kind := fields[0], fields[1]
			if !nameRE.MatchString(name) {
				t.Errorf("family name %q does not match [a-z_][a-z0-9_]*", name)
			}
			if kind != "counter" && kind != "gauge" && kind != "histogram" {
				t.Errorf("family %s has unknown type %q", name, kind)
			}
			typed[name]++
			families[name] = lastHelp == name
			nFamilies++
		case strings.HasPrefix(line, "#"):
			t.Errorf("unexpected comment line: %q", line)
		default:
			name, _, ok := strings.Cut(line, " ")
			if !ok {
				t.Fatalf("malformed sample line: %q", line)
			}
			m := seriesRE.FindStringSubmatch(name)
			if m == nil {
				t.Errorf("series name %q is not well-formed", name)
				continue
			}
			base := strings.TrimSuffix(strings.TrimSuffix(m[1], "_bucket"), "_sum")
			base = strings.TrimSuffix(base, "_count")
			if typed[base] == 0 && typed[m[1]] == 0 {
				t.Errorf("series %q precedes or lacks its family TYPE line", name)
			}
			nSeries++
		}
	}
	for name, hasHelp := range families {
		if !hasHelp {
			t.Errorf("metric family %s has no # HELP line", name)
		}
	}
	for name, n := range typed {
		if n > 1 {
			t.Errorf("metric family %s appears %d times", name, n)
		}
	}
	// Sanity-check the run actually instrumented the subsystems this lint
	// claims to cover — an empty exposition would pass vacuously.
	if nFamilies < 30 || nSeries < 30 {
		t.Fatalf("exposition suspiciously small: %d families, %d series", nFamilies, nSeries)
	}
	for _, want := range []string{
		"manager_drain_total", "manager_shards_down", "eigentrust_residual",
		"eigentrust_converged", "sim_cycle_seconds", "sim_interval_last_seconds",
		"runtime_rss_bytes", "runtime_gc_pause_seconds", "socialtrust_adjust_seconds",
		// The cluster transport registers its families at init, so they must
		// surface (with HELP) even in a single-process exposition — a fleet
		// dashboard scraping a coordinator relies on that.
		"cluster_bytes_sent_total", "cluster_bytes_received_total",
		"cluster_frames_sent_total", "cluster_frames_received_total",
		"cluster_inflight_batches", "cluster_reconnects_total",
		"cluster_worker_respawns_total", "cluster_encode_seconds",
		"cluster_decode_seconds",
	} {
		if !families[want] {
			t.Errorf("fully instrumented snapshot missing family %s", want)
		}
	}
}
