// Tests of the public facade: everything a downstream user touches should
// be reachable through package socialtrust alone.
package socialtrust_test

import (
	"bytes"
	"strings"
	"testing"

	"socialtrust"
)

func TestPublicQuickstartFlow(t *testing.T) {
	const n = 8
	g := socialtrust.NewGraph(n)
	sets := make([]socialtrust.InterestSet, n)
	for i := 0; i < n; i++ {
		g.AddRelationship(socialtrust.NodeID(i), socialtrust.NodeID((i+1)%n),
			socialtrust.Relationship{Kind: socialtrust.Friendship})
		sets[i] = socialtrust.NewInterestSet(1, socialtrust.Category(2+i%3))
	}
	tracker := socialtrust.NewTracker(n)
	ledger := socialtrust.NewLedger(n)
	filter := socialtrust.NewFilter(socialtrust.FilterConfig{NumNodes: n},
		g, sets, tracker, socialtrust.NewEBayEngine(n))

	if err := ledger.Add(socialtrust.Rating{Rater: 0, Ratee: 1, Value: 1}); err != nil {
		t.Fatal(err)
	}
	g.RecordInteraction(0, 1, 1)
	filter.Update(ledger.EndInterval())

	reps := filter.Reputations()
	if len(reps) != n || reps[1] == 0 {
		t.Fatalf("reputations = %v", reps)
	}
	if filter.Name() != "eBay+SocialTrust" {
		t.Fatalf("Name = %q", filter.Name())
	}
}

func TestPublicSimilarity(t *testing.T) {
	a := socialtrust.NewInterestSet(1, 2)
	b := socialtrust.NewInterestSet(2, 3)
	if got := socialtrust.Similarity(a, b); got != 0.5 {
		t.Fatalf("Similarity = %v, want 0.5", got)
	}
}

func TestPublicSimRun(t *testing.T) {
	cfg := socialtrust.DefaultSimConfig(socialtrust.PCM, socialtrust.EngineEBay, 0.6, true)
	cfg.NumNodes = 60
	cfg.NumPretrusted = 3
	cfg.NumColluders = 10
	cfg.NumBoosted = 3
	cfg.QueryCycles = 5
	cfg.SimulationCycles = 3
	res, err := socialtrust.RunSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalRequests == 0 {
		t.Fatal("no requests simulated")
	}
	if cfg.Type(0) != socialtrust.Pretrusted || cfg.Type(5) != socialtrust.Colluder || cfg.Type(59) != socialtrust.Normal {
		t.Fatal("node-type constants broken")
	}
}

func TestPublicNetworkConstruction(t *testing.T) {
	cfg := socialtrust.DefaultSimConfig(socialtrust.MMM, socialtrust.EngineEigenTrust, 0.2, false)
	cfg.NumNodes = 60
	cfg.NumPretrusted = 3
	cfg.NumColluders = 10
	cfg.NumBoosted = 3
	net, err := socialtrust.NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if net.Graph.NumNodes() != 60 {
		t.Fatal("network graph size mismatch")
	}
}

func TestPublicTrace(t *testing.T) {
	cfg := socialtrust.DefaultTraceConfig()
	cfg.NumUsers = 300
	cfg.Months = 4
	cfg.TransactionsPerMonth = 300
	ds, err := socialtrust.GenerateTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Transactions) == 0 {
		t.Fatal("no transactions")
	}
	if ds.BusinessNetworkVsReputation().C <= 0 {
		t.Fatal("analysis not reachable through facade")
	}
}

func TestPublicExperimentRegistry(t *testing.T) {
	all := socialtrust.Experiments()
	if len(all) < 19 {
		t.Fatalf("only %d experiments exposed", len(all))
	}
	var buf bytes.Buffer
	err := socialtrust.RunExperiment("fig2", socialtrust.ExperimentOptions{Runs: 1, Quick: true}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "fig2") {
		t.Fatalf("experiment output: %s", buf.String())
	}
}

func TestPublicManagerOverlay(t *testing.T) {
	o, err := socialtrust.NewManagerOverlay(8, 2, socialtrust.NewEBayEngine(8))
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	if err := o.Submit(socialtrust.Rating{Rater: 0, Ratee: 3, Value: 1}); err != nil {
		t.Fatal(err)
	}
	reps := o.EndInterval()
	if reps[3] != 1 {
		t.Fatalf("overlay reputations = %v", reps)
	}
}

func TestPublicEigenTrustEngine(t *testing.T) {
	e := socialtrust.NewEigenTrustEngine(socialtrust.EigenTrustConfig{NumNodes: 4, Pretrusted: []int{0}})
	if e.Name() != "EigenTrust" {
		t.Fatalf("Name = %q", e.Name())
	}
	if got := e.Reputation(0); got != 1 {
		t.Fatalf("initial pretrusted reputation = %v", got)
	}
}

func TestBehaviorConstants(t *testing.T) {
	if (socialtrust.B1 | socialtrust.B4).String() != "B1|B4" {
		t.Fatal("behavior constants broken")
	}
}

func TestPublicObservability(t *testing.T) {
	socialtrust.EnableMetrics()
	if !socialtrust.MetricsEnabled() {
		t.Fatal("EnableMetrics did not enable recording")
	}
	e := socialtrust.NewEigenTrustEngine(socialtrust.EigenTrustConfig{NumNodes: 4, Pretrusted: []int{0}})
	e.Update(socialtrust.Snapshot{Ratings: []socialtrust.Rating{
		{Rater: 0, Ratee: 1, Value: 1}, {Rater: 1, Ratee: 2, Value: 1},
	}})
	if st := e.Stats(); !st.Converged || st.Updates != 1 {
		t.Fatalf("eigentrust stats = %+v", st)
	}
	snap := socialtrust.ReadMetricsSnapshot()
	if snap.Gauges["eigentrust_iterations"] <= 0 {
		t.Fatalf("eigentrust_iterations gauge = %v", snap.Gauges["eigentrust_iterations"])
	}
	var text, js strings.Builder
	if err := socialtrust.WriteMetricsText(&text); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "eigentrust_iterations") {
		t.Fatalf("text exposition missing eigentrust_iterations:\n%s", text.String())
	}
	if err := socialtrust.WriteMetricsJSON(&js); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(js.String(), "\"gauges\"") {
		t.Fatalf("json exposition malformed:\n%s", js.String())
	}
	if socialtrust.MetricsHandler(true) == nil {
		t.Fatal("MetricsHandler returned nil")
	}
}
