package socialtrust

import (
	"testing"

	"socialtrust/internal/obs/span"
)

// TestPipelineTraceCoverage is the attribution-completeness acceptance on
// the deployment-shaped pipeline: with an interval traced the way the
// simulator (and stress -trace) traces it, the named phases — ingest, drain,
// adjust, iterate — must account for nearly all of the interval's wall time.
// The 90% floor here is deliberately looser than the ≥95% the 50k sweep
// shows (EXPERIMENTS.md): at the test's small n, fixed per-interval costs
// (channel handshakes, span bookkeeping) are a visibly larger slice.
func TestPipelineTraceCoverage(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a 2k-node pipeline")
	}
	const n, intervals = 2_000, 2
	rec := span.Enable(0)
	defer span.Disable()
	p := buildPipeline(t, n, "")
	defer p.overlay.Close()
	for iv := 0; iv < intervals; iv++ {
		root := span.Root("pipeline.interval")
		root.SetInt("interval", int64(iv+1))
		prev := span.SetAmbient(root.Context())
		isp := span.Ambient("pipeline.ingest", span.PhaseIngest)
		prevIngest := span.SetAmbient(isp.Context())
		for lo := 0; lo < len(p.trace); lo += pipelineBatchSize {
			hi := lo + pipelineBatchSize
			if hi > len(p.trace) {
				hi = len(p.trace)
			}
			if errs := p.overlay.SubmitBatch(p.trace[lo:hi]); errs != nil {
				for _, err := range errs {
					if err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		span.SetAmbient(prevIngest)
		isp.End()
		p.overlay.EndInterval()
		span.SetAmbient(prev)
		root.End()

		att, ok := rec.TakeAttribution(root.TraceID())
		if !ok {
			t.Fatalf("interval %d: no attribution for trace %d", iv+1, root.TraceID())
		}
		if att.Total <= 0 {
			t.Fatalf("interval %d: non-positive total %v", iv+1, att.Total)
		}
		if cov := att.Coverage(); cov < 0.9 {
			t.Errorf("interval %d: phase coverage %.1f%% < 90%% (attribution %+v)",
				iv+1, 100*cov, att)
		}
		for phase, secs := range map[string]float64{
			"ingest": att.Ingest, "drain": att.Drain, "adjust": att.Adjust,
		} {
			if secs <= 0 {
				t.Errorf("interval %d: phase %s attributed no time", iv+1, phase)
			}
		}
	}
	if rec.Recorded() == 0 {
		t.Fatal("traced pipeline recorded no spans")
	}
}
