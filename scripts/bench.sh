#!/usr/bin/env bash
# scripts/bench.sh — emit machine-readable benchmark snapshots:
#
#   BENCH_obs.json   — manager overlay submit/query round trips and one
#                      EigenTrust power-iteration update (the PR-1 set).
#   BENCH_perf.json  — the hot-path perf set: warm/cold cache Adjust, the
#                      batched vs per-pair closeness, and the CSR power
#                      iteration, tracking the signal-cache and CSR work.
#   BENCH_fault.json — the robustness set: plain vs replicated overlay
#                      submit (the fault-tolerance overhead) next to warm
#                      Adjust, guarding the disabled fault path's latency.
#
#   BENCH_scale.json — the scale-out set (scripts/bench.sh scale): the
#                      end-to-end BenchmarkPipeline{2k,10k,50k,100k} intervals
#                      (ns/op, allocs, peak RSS, ratings/s), the sparse-
#                      activity PipelineSparse50k (1% active raters) with its
#                      interval-time speedup over the dense 50k run
#                      (acceptance: >= 5x), plus the batched vs per-rating
#                      ingest comparison at 10k nodes and its speedup ratio
#                      (acceptance: >= 3x).
#
#   BENCH_trace.json — the phase-attribution set (scripts/bench.sh trace):
#                      a traced pipeline sweep (stress -nodes ... -trace-dir)
#                      rolled up by socialtrust-trace -json into per-interval
#                      ingest/drain/adjust/iterate wall seconds and the mean
#                      attribution coverage (acceptance: >= 0.95 at 50k).
#
#   BENCH_health.json — the ops-plane set (scripts/bench.sh health): one
#                      health-sampler tick (runtime capture + registry
#                      snapshot + watchdog pass) priced against both the
#                      sampler cadence (1s) and the measured 10k-node
#                      interval wall time (acceptance: overhead < 1% of
#                      interval wall time at 10k nodes).
#
#   BENCH_persist.json — the durability set (scripts/bench.sh persist): the
#                      WAL append cost per rating, one interval-boundary
#                      snapshot write+load round trip at 10k nodes, the full
#                      crash-recovery wall time at 10k nodes, and the durable
#                      vs plain Pipeline2k interval comparison rolled up as
#                      wal_overhead_pct (acceptance: <= 15%).
#
#   BENCH_cluster.json — the multi-process set (scripts/bench.sh cluster):
#                      the stress pipeline sweep with manager shards hosted
#                      in worker processes over the socket transport, run
#                      head-to-head at 1 worker vs CLUSTER_PROCS (default 4)
#                      workers. Per size and process count: ingest ratings/s,
#                      s/interval, coordinator and per-worker peak RSS
#                      (kernel VmHWM), and wire bytes per rating; rolled up
#                      at the largest size as ingest_speedup and
#                      worker_rss_pct_of_single. The cpus field records the
#                      core budget the speedup was measured under — ingest
#                      scaling with worker count needs cores to scale onto.
#
# Usage:
#
#   scripts/bench.sh [obs-output.json] [perf-output.json] [fault-output.json]
#   scripts/bench.sh scale [scale-output.json]
#   scripts/bench.sh trace [trace-output.json]
#   scripts/bench.sh health [health-output.json]
#   scripts/bench.sh persist [persist-output.json]
#   scripts/bench.sh cluster [cluster-output.json]
#
# BENCHTIME (default 1s; scale mode 1x for the pipeline set) tunes
# go test -benchtime; use e.g. BENCHTIME=100x for a quick smoke pass.
# Trace mode is tuned by TRACE_NODES (default 50k, k suffix ok) and
# TRACE_INTERVALS (default 2).
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ ${1:-} == "trace" ]]; then
  OUT=${2:-BENCH_trace.json}
  tmp=$(mktemp -d)
  trap 'rm -rf "$tmp"' EXIT
  go build -o "$tmp/stress" ./cmd/stress
  go build -o "$tmp/socialtrust-trace" ./cmd/socialtrust-trace
  "$tmp/stress" -nodes "${TRACE_NODES:-50k}" -intervals "${TRACE_INTERVALS:-2}" \
    -trace-dir "$tmp/trace"
  "$tmp/socialtrust-trace" -json "$tmp/trace" > "$tmp/summary.json"
  {
    echo "{"
    echo "  \"generated\": \"$(date -u +%Y-%m-%dT%H:%M:%SZ)\","
    tail -n +2 "$tmp/summary.json"
  } > "$OUT"
  echo "wrote $OUT"
  exit 0
fi

if [[ ${1:-} == "health" ]]; then
  OUT=${2:-BENCH_health.json}
  raw1=$(
    go test -run '^$' -bench '^BenchmarkSampleOnce$' -benchmem \
      -benchtime "${BENCHTIME:-1s}" ./internal/obs/health
  ) || { echo "bench.sh: sampler benchmark failed:" >&2; echo "$raw1" >&2; exit 1; }
  raw2=$(
    go test -run '^$' -bench '^BenchmarkPipeline10k$' -benchmem \
      -benchtime "${PIPELINE_BENCHTIME:-1x}" -timeout 30m .
  ) || { echo "bench.sh: 10k pipeline benchmark failed:" >&2; echo "$raw2" >&2; exit 1; }
  raw="$raw1"$'\n'"$raw2"
  echo "$raw"
  echo "$raw" | awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
    /^Benchmark/ {
      name = $1
      sub(/-[0-9]+$/, "", name)
      sub(/^Benchmark/, "", name)
      order[n++] = name
      for (i = 3; i < NF; i += 2) {
        unit = $(i + 1)
        gsub(/\//, "_per_", unit)
        gsub(/-/, "_", unit)
        vals[name, unit] = $i
        units[name] = units[name] (units[name] == "" ? "" : ",") unit
      }
    }
    END {
      printf "{\n"
      printf "  \"generated\": \"%s\",\n", date
      printf "  \"benchmarks\": {\n"
      for (i = 0; i < n; i++) {
        name = order[i]
        printf "    \"%s\": {", name
        cnt = split(units[name], us, ",")
        for (u = 1; u <= cnt; u++)
          printf "\"%s\": %s%s", us[u], vals[name, us[u]], (u < cnt ? ", " : "")
        printf "}%s\n", (i < n - 1 ? "," : "")
      }
      printf "  },\n"
      sample = vals["SampleOnce", "ns_per_op"] / 1e9
      interval = vals["Pipeline10k", "s_per_interval"]
      cadence = 1.0
      printf "  \"sample_seconds\": %.9f,\n", sample
      printf "  \"cadence_seconds\": %.1f,\n", cadence
      printf "  \"interval_seconds_10k\": %.6f,\n", interval
      printf "  \"overhead_pct_of_cadence\": %.6f,\n", sample / cadence * 100
      printf "  \"overhead_pct_of_interval\": %.6f\n", (interval > 0 ? sample / interval * 100 : 0)
      printf "}\n"
    }
  ' > "$OUT"
  echo "wrote $OUT"
  exit 0
fi

if [[ ${1:-} == "persist" ]]; then
  OUT=${2:-BENCH_persist.json}
  raw1=$(
    go test -run '^$' -bench '^BenchmarkWALAppend$' -benchmem \
      -benchtime "${BENCHTIME:-1s}" ./internal/persist
  ) || { echo "bench.sh: WAL benchmark failed:" >&2; echo "$raw1" >&2; exit 1; }
  raw2=$(
    go test -run '^$' -bench '^(BenchmarkSnapshotRestore10k|BenchmarkCrashRecovery10k)$' \
      -benchtime "${PERSIST_BENCHTIME:-1x}" -timeout 30m ./internal/sim
  ) || { echo "bench.sh: snapshot/recovery benchmarks failed:" >&2; echo "$raw2" >&2; exit 1; }
  raw3=$(
    go test -run '^$' -bench '^(BenchmarkPipeline2k|BenchmarkPipeline2kWAL)$' \
      -benchmem -benchtime "${PIPELINE_BENCHTIME:-3x}" -timeout 30m .
  ) || { echo "bench.sh: pipeline overhead benchmarks failed:" >&2; echo "$raw3" >&2; exit 1; }
  raw="$raw1"$'\n'"$raw2"$'\n'"$raw3"
  echo "$raw"
  echo "$raw" | awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
    /^Benchmark/ {
      name = $1
      sub(/-[0-9]+$/, "", name)
      sub(/^Benchmark/, "", name)
      order[n++] = name
      for (i = 3; i < NF; i += 2) {
        unit = $(i + 1)
        gsub(/\//, "_per_", unit)
        gsub(/-/, "_", unit)
        vals[name, unit] = $i
        units[name] = units[name] (units[name] == "" ? "" : ",") unit
      }
    }
    END {
      printf "{\n"
      printf "  \"generated\": \"%s\",\n", date
      printf "  \"benchmarks\": {\n"
      for (i = 0; i < n; i++) {
        name = order[i]
        printf "    \"%s\": {", name
        cnt = split(units[name], us, ",")
        for (u = 1; u <= cnt; u++)
          printf "\"%s\": %s%s", us[u], vals[name, us[u]], (u < cnt ? ", " : "")
        printf "}%s\n", (i < n - 1 ? "," : "")
      }
      printf "  },\n"
      printf "  \"wal_append_ns_per_rating\": %s,\n", vals["WALAppend", "ns_per_rating"]
      printf "  \"snapshot_restore_seconds_10k\": %s,\n", vals["SnapshotRestore10k", "s_per_roundtrip"]
      printf "  \"recovery_seconds_10k\": %s,\n", vals["CrashRecovery10k", "s_per_recovery"]
      plain = vals["Pipeline2k", "s_per_interval"]
      wal = vals["Pipeline2kWAL", "s_per_interval"]
      printf "  \"wal_overhead_pct\": %.2f\n", (plain > 0 ? (wal - plain) / plain * 100 : 0)
      printf "}\n"
    }
  ' > "$OUT"
  echo "wrote $OUT"
  exit 0
fi

if [[ ${1:-} == "scale" ]]; then
  OUT=${2:-BENCH_scale.json}
  # Each go test invocation is checked on its own: `raw=$(cmd1; cmd2)` takes
  # cmd2's exit status, so a build failure in the first command would
  # otherwise produce a silently truncated snapshot.
  raw1=$(
    go test -run '^$' -bench '^BenchmarkPipeline(2k|10k|50k|100k|Sparse50k)$' \
      -benchmem -benchtime "${BENCHTIME:-1x}" -timeout 60m .
  ) || { echo "bench.sh: pipeline benchmarks failed:" >&2; echo "$raw1" >&2; exit 1; }
  raw2=$(
    go test -run '^$' -bench '^(BenchmarkOverlaySubmit10k|BenchmarkOverlaySubmitBatch)$' \
      -benchmem -benchtime "${SUBMIT_BENCHTIME:-1s}" ./internal/manager
  ) || { echo "bench.sh: overlay benchmarks failed:" >&2; echo "$raw2" >&2; exit 1; }
  raw="$raw1"$'\n'"$raw2"
  echo "$raw"
  echo "$raw" | awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
    /^Benchmark/ {
      name = $1
      sub(/-[0-9]+$/, "", name)
      sub(/^Benchmark/, "", name)
      order[n++] = name
      for (i = 3; i < NF; i += 2) {
        unit = $(i + 1)
        gsub(/\//, "_per_", unit)
        gsub(/-/, "_", unit)
        vals[name, unit] = $i
        units[name] = units[name] (units[name] == "" ? "" : ",") unit
      }
    }
    END {
      printf "{\n"
      printf "  \"generated\": \"%s\",\n", date
      printf "  \"benchmarks\": {\n"
      for (i = 0; i < n; i++) {
        name = order[i]
        printf "    \"%s\": {", name
        cnt = split(units[name], us, ",")
        for (u = 1; u <= cnt; u++)
          printf "\"%s\": %s%s", us[u], vals[name, us[u]], (u < cnt ? ", " : "")
        printf "}%s\n", (i < n - 1 ? "," : "")
      }
      printf "  },\n"
      dense = vals["Pipeline50k", "s_per_interval"]
      sparse = vals["PipelineSparse50k", "s_per_interval"]
      printf "  \"sparse_speedup\": %.2f,\n", (sparse > 0 ? dense / sparse : 0)
      base = vals["OverlaySubmit10k", "ns_per_rating"]
      batch = vals["OverlaySubmitBatch", "ns_per_rating"]
      speedup = (batch > 0 ? base / batch : 0)
      printf "  \"submit_batch_speedup\": %.2f\n", speedup
      printf "}\n"
    }
  ' > "$OUT"
  echo "wrote $OUT"
  exit 0
fi

if [[ ${1:-} == "cluster" ]]; then
  OUT=${2:-BENCH_cluster.json}
  NODES=${CLUSTER_NODES:-10k,50k}
  INTERVALS=${CLUSTER_INTERVALS:-2}
  PROCS=${CLUSTER_PROCS:-4}
  SUBMITTERS=${CLUSTER_SUBMITTERS:-4}
  tmp=$(mktemp -d)
  trap 'rm -rf "$tmp"' EXIT
  go build -o "$tmp/stress" ./cmd/stress
  # Both sides of the head-to-head go over the socket transport so the
  # comparison isolates process count, not wire overhead: 1 worker owning
  # every shard vs PROCS workers splitting them.
  raw1=$(
    "$tmp/stress" -nodes "$NODES" -intervals "$INTERVALS" \
      -cluster 1 -submitters "$SUBMITTERS"
  ) || { echo "bench.sh: single-worker cluster sweep failed:" >&2; echo "$raw1" >&2; exit 1; }
  raw2=$(
    "$tmp/stress" -nodes "$NODES" -intervals "$INTERVALS" \
      -cluster "$PROCS" -submitters "$SUBMITTERS"
  ) || { echo "bench.sh: $PROCS-worker cluster sweep failed:" >&2; echo "$raw2" >&2; exit 1; }
  raw="$raw1"$'\n'"$raw2"
  echo "$raw"
  echo "$raw" | awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
    -v cpus="$(nproc)" -v procs="$PROCS" '
    /^cluster-summary / {
      for (i = 2; i <= NF; i++) {
        split($(i), kv, "=")
        f[kv[1]] = kv[2]
      }
      key = f["nodes"] SUBSEP f["procs"]
      for (k in f) vals[key, k] = f[k]
      order[n++] = key
      if (f["nodes"] + 0 > headline) headline = f["nodes"] + 0
    }
    END {
      printf "{\n"
      printf "  \"generated\": \"%s\",\n", date
      printf "  \"cpus\": %d,\n", cpus
      printf "  \"cluster_procs\": %d,\n", procs
      printf "  \"runs\": [\n"
      for (i = 0; i < n; i++) {
        key = order[i]
        printf "    {\"nodes\": %s, \"procs\": %s, \"ratings\": %s, \"ratings_per_s\": %s, \"s_per_interval\": %s, \"coordinator_peak_rss_mb\": %s, \"worker_peak_rss_mb_max\": %s, \"wire_bytes_per_rating\": %s}%s\n", \
          vals[key, "nodes"], vals[key, "procs"], vals[key, "ratings"], \
          vals[key, "ratings_per_s"], vals[key, "s_per_interval"], \
          vals[key, "coordinator_peak_rss_mb"], vals[key, "worker_peak_rss_mb_max"], \
          vals[key, "wire_bytes_per_rating"], (i < n - 1 ? "," : "")
      }
      printf "  ],\n"
      single = headline SUBSEP 1
      multi = headline SUBSEP procs
      r1 = vals[single, "ratings_per_s"] + 0
      rp = vals[multi, "ratings_per_s"] + 0
      s1 = vals[single, "s_per_interval"] + 0
      sp = vals[multi, "s_per_interval"] + 0
      w1 = vals[single, "worker_peak_rss_mb_max"] + 0
      wp = vals[multi, "worker_peak_rss_mb_max"] + 0
      printf "  \"headline_nodes\": %d,\n", headline
      printf "  \"ingest_speedup\": %.2f,\n", (r1 > 0 ? rp / r1 : 0)
      printf "  \"interval_speedup\": %.2f,\n", (sp > 0 ? s1 / sp : 0)
      printf "  \"worker_rss_pct_of_single\": %.1f\n", (w1 > 0 ? wp / w1 * 100 : 0)
      printf "}\n"
    }
  ' > "$OUT"
  echo "wrote $OUT"
  exit 0
fi

OUT_OBS=${1:-BENCH_obs.json}
OUT_PERF=${2:-BENCH_perf.json}
OUT_FAULT=${3:-BENCH_fault.json}
BENCHTIME=${BENCHTIME:-1s}

raw=$(
  go test -run '^$' -bench '^(BenchmarkOverlaySubmit|BenchmarkOverlaySubmitReplicated|BenchmarkOverlayQuery)$' \
    -benchtime "$BENCHTIME" ./internal/manager
  go test -run '^$' -bench '^BenchmarkPowerIterationParallel500$' \
    -benchtime "$BENCHTIME" ./internal/reputation/eigentrust
  go test -run '^$' -bench '^(BenchmarkAdjustWarmCache|BenchmarkAdjustColdCache)$' \
    -benchtime "$BENCHTIME" ./internal/core
  go test -run '^$' -bench '^(BenchmarkClosenessFrom|BenchmarkClosenessPerPair)$' \
    -benchtime "$BENCHTIME" ./internal/socialgraph
)
echo "$raw"

# emit_json FILTER OUT — collect "Benchmark<Name> ... <ns/op>" lines whose
# bare name matches the regex FILTER into a JSON snapshot at OUT.
emit_json() {
  echo "$raw" | awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" -v filter="$1" '
    BEGIN { n = 0 }
    /^Benchmark/ {
      name = $1
      sub(/-[0-9]+$/, "", name)
      sub(/^Benchmark/, "", name)
      if (name !~ filter) next
      vals[n] = $3
      names[n++] = name
    }
    END {
      printf "{\n"
      printf "  \"generated\": \"%s\",\n", date
      printf "  \"unit\": \"ns/op\",\n"
      printf "  \"benchmarks\": {\n"
      for (i = 0; i < n; i++)
        printf "    \"%s\": %s%s\n", names[i], vals[i], (i < n - 1 ? "," : "")
      printf "  }\n}\n"
    }
  ' > "$2"
  echo "wrote $2"
}

emit_json '^(OverlaySubmit|OverlayQuery|PowerIterationParallel500)$' "$OUT_OBS"
emit_json '^(PowerIterationParallel500|AdjustWarmCache|AdjustColdCache|ClosenessFrom|ClosenessPerPair)$' "$OUT_PERF"
emit_json '^(OverlaySubmit|OverlaySubmitReplicated|AdjustWarmCache)$' "$OUT_FAULT"
