#!/usr/bin/env bash
# scripts/bench.sh — emit a machine-readable benchmark snapshot
# (BENCH_obs.json) covering the manager overlay submit/query round trips and
# one EigenTrust power-iteration update, seeding the repository's perf
# trajectory. Usage:
#
#   scripts/bench.sh [output.json]
#
# BENCHTIME (default 1s) tunes go test -benchtime; use e.g. BENCHTIME=100x
# for a quick smoke pass.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=${1:-BENCH_obs.json}
BENCHTIME=${BENCHTIME:-1s}

raw=$(
  go test -run '^$' -bench '^(BenchmarkOverlaySubmit|BenchmarkOverlayQuery)$' \
    -benchtime "$BENCHTIME" ./internal/manager
  go test -run '^$' -bench '^BenchmarkPowerIterationParallel500$' \
    -benchtime "$BENCHTIME" ./internal/reputation/eigentrust
)
echo "$raw"

echo "$raw" | awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
  BEGIN { n = 0 }
  /^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    sub(/^Benchmark/, "", name)
    vals[n] = $3
    names[n++] = name
  }
  END {
    printf "{\n"
    printf "  \"generated\": \"%s\",\n", date
    printf "  \"unit\": \"ns/op\",\n"
    printf "  \"benchmarks\": {\n"
    for (i = 0; i < n; i++)
      printf "    \"%s\": %s%s\n", names[i], vals[i], (i < n - 1 ? "," : "")
    printf "  }\n}\n"
  }
' > "$OUT"

echo "wrote $OUT"
