package rating

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestAddAndCounts(t *testing.T) {
	l := NewLedger(10)
	for k := 0; k < 3; k++ {
		if err := l.Add(Rating{Rater: 1, Ratee: 2, Value: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Add(Rating{Rater: 1, Ratee: 2, Value: -1}); err != nil {
		t.Fatal(err)
	}
	c := l.Counts(1, 2)
	if c.Positive != 3 || c.Negative != 1 || c.Total() != 4 {
		t.Fatalf("Counts = %+v", c)
	}
	if got := l.Counts(2, 1); got.Total() != 0 {
		t.Fatal("reverse direction should be empty")
	}
	if l.IntervalSize() != 4 {
		t.Fatalf("IntervalSize = %d", l.IntervalSize())
	}
}

func TestZeroValueRatingNotCounted(t *testing.T) {
	l := NewLedger(4)
	if err := l.Add(Rating{Rater: 0, Ratee: 1, Value: 0}); err != nil {
		t.Fatal(err)
	}
	c := l.Counts(0, 1)
	if c.Positive != 0 || c.Negative != 0 {
		t.Fatalf("zero-value rating affected counters: %+v", c)
	}
	if l.IntervalSize() != 1 {
		t.Fatal("zero-value rating should still be stored")
	}
}

func TestSelfRatingRejected(t *testing.T) {
	l := NewLedger(4)
	if err := l.Add(Rating{Rater: 2, Ratee: 2, Value: 1}); err == nil {
		t.Fatal("self-rating should be rejected")
	}
	if l.IntervalSize() != 0 {
		t.Fatal("rejected rating was stored")
	}
}

func TestAddPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewLedger(2).Add(Rating{Rater: 0, Ratee: 5, Value: 1}) //nolint:errcheck
}

func TestEndIntervalDrains(t *testing.T) {
	l := NewLedger(8)
	l.Add(Rating{Rater: 0, Ratee: 1, Value: 1})  //nolint:errcheck
	l.Add(Rating{Rater: 0, Ratee: 7, Value: -1}) //nolint:errcheck
	l.Add(Rating{Rater: 3, Ratee: 1, Value: 1})  //nolint:errcheck
	snap := l.EndInterval()
	if len(snap.Ratings) != 3 {
		t.Fatalf("drained %d ratings", len(snap.Ratings))
	}
	// Deterministic order: sorted by ratee.
	for i := 1; i < len(snap.Ratings); i++ {
		if snap.Ratings[i].Ratee < snap.Ratings[i-1].Ratee {
			t.Fatalf("ratings not sorted by ratee: %+v", snap.Ratings)
		}
	}
	if c := snap.Counts[PairKey{0, 1}]; c.Positive != 1 {
		t.Fatalf("snapshot counts = %+v", snap.Counts)
	}
	// Ledger is now empty.
	if l.IntervalSize() != 0 {
		t.Fatal("ledger not drained")
	}
	if c := l.Counts(0, 1); c.Total() != 0 {
		t.Fatal("counters not reset")
	}
	empty := l.EndInterval()
	if len(empty.Ratings) != 0 || len(empty.Counts) != 0 {
		t.Fatal("second drain should be empty")
	}
}

func TestConcurrentAdds(t *testing.T) {
	l := NewLedger(64)
	var wg sync.WaitGroup
	const workers, per = 16, 500
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; k < per; k++ {
				ratee := (w + k%63 + 1) % 64                    // never equals w: offset in [1,63]
				l.Add(Rating{Rater: w, Ratee: ratee, Value: 1}) //nolint:errcheck
			}
		}(w)
	}
	wg.Wait()
	if got := l.IntervalSize(); got != workers*per {
		t.Fatalf("IntervalSize = %d, want %d", got, workers*per)
	}
	snap := l.EndInterval()
	if len(snap.Ratings) != workers*per {
		t.Fatalf("drained %d", len(snap.Ratings))
	}
}

func TestFrequencies(t *testing.T) {
	counts := map[PairKey]PairCounts{
		{0, 1}: {Positive: 4},
		{2, 1}: {Positive: 2, Negative: 1},
		{3, 4}: {Negative: 3},
	}
	fs := Frequencies(counts)
	if fs.Pairs != 3 {
		t.Fatalf("Pairs = %d", fs.Pairs)
	}
	if fs.MeanPositive != 3 || fs.MaxPositive != 4 || fs.MinPositive != 2 {
		t.Fatalf("positive stats = %+v", fs)
	}
	if fs.MeanNegative != 2 || fs.MaxNegative != 3 || fs.MinNegative != 1 {
		t.Fatalf("negative stats = %+v", fs)
	}
	empty := Frequencies(nil)
	if empty.Pairs != 0 || empty.MeanPositive != 0 {
		t.Fatalf("empty Frequencies = %+v", empty)
	}
}

func TestHistory(t *testing.T) {
	h := NewHistory(8)
	h.Absorb([]Rating{
		{Rater: 0, Ratee: 1, Value: 1},
		{Rater: 0, Ratee: 1, Value: 1},
		{Rater: 0, Ratee: 2, Value: -1},
		{Rater: 3, Ratee: 1, Value: 0.5},
	})
	if got := h.Sum(0, 1); got != 2 {
		t.Fatalf("Sum(0,1) = %v", got)
	}
	if got := h.Count(0, 1); got != 2 {
		t.Fatalf("Count(0,1) = %v", got)
	}
	if got := h.Sum(0, 2); got != -1 {
		t.Fatalf("Sum(0,2) = %v", got)
	}
	if got := h.Sum(1, 0); got != 0 {
		t.Fatal("direction matters")
	}
	raters := h.RatersOf(1)
	if len(raters) != 2 || raters[0] != 0 || raters[1] != 3 {
		t.Fatalf("RatersOf = %v", raters)
	}
	ratees := h.RateesOf(0)
	if len(ratees) != 2 || ratees[0] != 1 || ratees[1] != 2 {
		t.Fatalf("RateesOf = %v", ratees)
	}
	if len(h.RatersOf(5)) != 0 {
		t.Fatal("unknown ratee should have no raters")
	}
}

func TestHistoryAbsorbAdjustedValues(t *testing.T) {
	h := NewHistory(4)
	h.Absorb([]Rating{{Rater: 0, Ratee: 1, Value: 0.25}}) // post-Gaussian value
	if got := h.Sum(0, 1); got != 0.25 {
		t.Fatalf("Sum = %v, want 0.25", got)
	}
}

// --- properties ---

func TestLedgerConservationProperty(t *testing.T) {
	// Every added rating is drained exactly once and counters agree with
	// the sign of values.
	f := func(events []uint16) bool {
		const n = 12
		l := NewLedger(n)
		wantPos, wantNeg := map[PairKey]int{}, map[PairKey]int{}
		added := 0
		for _, e := range events {
			rater, ratee := int(e%n), int((e/n)%n)
			if rater == ratee {
				continue
			}
			val := 1.0
			if e%2 == 0 {
				val = -1
			}
			if err := l.Add(Rating{Rater: rater, Ratee: ratee, Value: val}); err != nil {
				return false
			}
			added++
			k := PairKey{rater, ratee}
			if val > 0 {
				wantPos[k]++
			} else {
				wantNeg[k]++
			}
		}
		snap := l.EndInterval()
		if len(snap.Ratings) != added {
			return false
		}
		for k, want := range wantPos {
			if snap.Counts[k].Positive != want {
				return false
			}
		}
		for k, want := range wantNeg {
			if snap.Counts[k].Negative != want {
				return false
			}
		}
		return l.IntervalSize() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestHistorySumMatchesCountProperty(t *testing.T) {
	// With all-ones ratings, Sum == Count for every pair.
	f := func(events []uint16) bool {
		const n = 8
		h := NewHistory(n)
		var batch []Rating
		for _, e := range events {
			rater, ratee := int(e%n), int((e/n)%n)
			if rater == ratee {
				continue
			}
			batch = append(batch, Rating{Rater: rater, Ratee: ratee, Value: 1})
		}
		h.Absorb(batch)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if h.Sum(i, j) != float64(h.Count(i, j)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestHistoryResetNode(t *testing.T) {
	h := NewHistory(4)
	h.Absorb([]Rating{
		{Rater: 0, Ratee: 1, Value: 1},
		{Rater: 1, Ratee: 2, Value: 1},
		{Rater: 3, Ratee: 1, Value: 1},
	})
	h.ResetNode(1)
	if h.Sum(0, 1) != 0 || h.Sum(1, 2) != 0 || h.Sum(3, 1) != 0 {
		t.Fatal("sums involving node 1 survived ResetNode")
	}
	if len(h.RatersOf(1)) != 0 || len(h.RateesOf(1)) != 0 {
		t.Fatal("index entries survived ResetNode")
	}
	if len(h.RatersOf(2)) != 0 {
		t.Fatal("node 1 still listed as a rater of 2")
	}
}

func TestAddBatchMatchesSequentialAdds(t *testing.T) {
	const n = 200
	trace := make([]Rating, 0, 1000)
	for i := 0; i < 1000; i++ {
		r := Rating{Rater: (i * 13) % n, Ratee: (i * 7) % n, Value: 1, Cycle: i / 100}
		if i%3 == 0 {
			r.Value = -1
		}
		if r.Rater == r.Ratee {
			r.Ratee = (r.Ratee + 1) % n
		}
		trace = append(trace, r)
	}
	seq := NewLedger(n)
	for _, r := range trace {
		if err := seq.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	batched := NewLedger(n)
	// Uneven chunks cross internal-shard boundaries and exercise regrowth.
	for lo := 0; lo < len(trace); lo += 137 {
		hi := lo + 137
		if hi > len(trace) {
			hi = len(trace)
		}
		if errs := batched.AddBatch(trace[lo:hi]); errs != nil {
			t.Fatalf("AddBatch: %v", errs)
		}
	}
	want, got := seq.EndInterval(), batched.EndInterval()
	if len(got.Ratings) != len(want.Ratings) {
		t.Fatalf("ratings: got %d, want %d", len(got.Ratings), len(want.Ratings))
	}
	for i := range want.Ratings {
		if got.Ratings[i] != want.Ratings[i] {
			t.Fatalf("ratings[%d]: got %+v, want %+v", i, got.Ratings[i], want.Ratings[i])
		}
	}
	if len(got.Counts) != len(want.Counts) {
		t.Fatalf("counts: got %d pairs, want %d", len(got.Counts), len(want.Counts))
	}
	for k, v := range want.Counts {
		if got.Counts[k] != v {
			t.Fatalf("counts[%v]: got %+v, want %+v", k, got.Counts[k], v)
		}
	}
}

func TestAddBatchSelfRatingIndexed(t *testing.T) {
	l := NewLedger(10)
	errs := l.AddBatch([]Rating{
		{Rater: 0, Ratee: 1, Value: 1},
		{Rater: 3, Ratee: 3, Value: 1}, // self-rating
		{Rater: 2, Ratee: 4, Value: -1},
	})
	if errs == nil || errs[0] != nil || errs[1] == nil || errs[2] != nil {
		t.Fatalf("unexpected errors: %v", errs)
	}
	if l.IntervalSize() != 2 {
		t.Fatalf("IntervalSize = %d, want 2", l.IntervalSize())
	}
	if l.AddBatch([]Rating{{Rater: 0, Ratee: 2, Value: 1}}) != nil {
		t.Fatal("clean batch should return nil")
	}
}

func TestAddBatchPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on out-of-range ratee")
		}
	}()
	NewLedger(5).AddBatch([]Rating{{Rater: 0, Ratee: 99, Value: 1}})
}
