// Package rating implements the rating substrate of a P2P reputation system:
// an append-only, concurrency-safe ledger of service ratings, per-interval
// positive/negative frequency counters t+(i,j) and t−(i,j) (the quantities a
// resource manager inspects in Section 4.3 of the paper), and system-wide
// rating-frequency statistics used to derive the suspicion thresholds θ·F.
package rating

import (
	"fmt"
	"sort"
	"sync"
)

// Rating is one service rating issued by Rater about Ratee. The paper's P2P
// evaluation uses Value ∈ {+1,−1}; the Overstock trace uses [−2,+2]. Cycle
// is the query cycle the rating was issued in and Category the interest
// category of the underlying transaction. Seq is an optional ingest sequence
// number assigned by the producer: zero means unsequenced; nonzero values
// key write-ahead-log replay deduplication after a crash restart. Seq never
// participates in rating semantics or ordering.
type Rating struct {
	Rater    int
	Ratee    int
	Value    float64
	Cycle    int
	Category int
	Seq      uint64
}

// PairKey identifies a directed (rater, ratee) pair.
type PairKey struct{ Rater, Ratee int }

// PairCounts is the per-interval frequency record for one directed pair.
type PairCounts struct {
	Positive int // t+(i,j): ratings with Value > 0 this interval
	Negative int // t−(i,j): ratings with Value < 0 this interval
}

// Total returns the total number of ratings in the interval for the pair.
func (p PairCounts) Total() int { return p.Positive + p.Negative }

const numShards = 16

// Journal receives every accepted rating before the ledger acknowledges it —
// the write-ahead hook durability layers implement. Append must return only
// after the ratings are safe against process death; an error vetoes the
// ingest.
type Journal interface {
	Append(rs []Rating) error
}

// Ledger collects ratings for the current reputation-update interval T.
// Writes are sharded by ratee so concurrent clients rating different servers
// rarely contend. EndInterval atomically drains the interval.
type Ledger struct {
	numNodes int
	journal  Journal
	shards   [numShards]ledgerShard

	// recovered maps sequence numbers already restored from a WAL replay to
	// how many times each was durably applied. While an entry is pending,
	// re-executed submissions carrying that Seq are acknowledged without
	// being applied or re-journaled — the crash-restart dedupe that keeps a
	// replayed interval from double-counting ratings.
	recMu     sync.Mutex
	recovered map[uint64]int
}

type ledgerShard struct {
	mu      sync.Mutex
	ratings []Rating
	counts  map[PairKey]PairCounts
}

// NewLedger creates a ledger for a population of numNodes peers.
func NewLedger(numNodes int) *Ledger {
	if numNodes < 0 {
		panic("rating: negative node count")
	}
	l := &Ledger{numNodes: numNodes}
	for i := range l.shards {
		l.shards[i].counts = make(map[PairKey]PairCounts)
	}
	return l
}

// NumNodes reports the population size the ledger was created for.
func (l *Ledger) NumNodes() int { return l.numNodes }

// SetJournal installs (or, with nil, removes) the write-ahead journal.
// Ratings accepted afterwards are appended to the journal before they are
// acknowledged. Not safe to call concurrently with Add/AddBatch.
func (l *Ledger) SetJournal(j Journal) { l.journal = j }

// MarkRecovered registers sequence numbers restored from a WAL replay, with
// per-seq multiplicity (fault injection can legitimately duplicate a
// delivery). Until consumed, a submission carrying one of these Seqs is
// acknowledged as a success but neither re-applied nor re-journaled.
func (l *Ledger) MarkRecovered(seqs map[uint64]int) {
	l.recMu.Lock()
	defer l.recMu.Unlock()
	if l.recovered == nil {
		l.recovered = make(map[uint64]int, len(seqs))
	}
	for s, n := range seqs {
		if s != 0 && n > 0 {
			l.recovered[s] += n
		}
	}
}

// consumeRecovered reports whether the rating's Seq is pending as recovered
// and, if so, consumes one occurrence.
func (l *Ledger) consumeRecovered(seq uint64) bool {
	if seq == 0 || l.recovered == nil {
		return false
	}
	l.recMu.Lock()
	defer l.recMu.Unlock()
	n := l.recovered[seq]
	if n == 0 {
		return false
	}
	if n == 1 {
		delete(l.recovered, seq)
	} else {
		l.recovered[seq] = n - 1
	}
	return true
}

func (l *Ledger) shard(ratee int) *ledgerShard {
	return &l.shards[ratee%numShards]
}

// Add appends a rating to the current interval. It panics on out-of-range
// node IDs (experiment construction errors) and rejects self-ratings, which
// no reputation system accepts.
func (l *Ledger) Add(r Rating) error {
	if r.Rater < 0 || r.Rater >= l.numNodes || r.Ratee < 0 || r.Ratee >= l.numNodes {
		panic(fmt.Sprintf("rating: node out of range in %+v (numNodes=%d)", r, l.numNodes))
	}
	if r.Rater == r.Ratee {
		return fmt.Errorf("rating: self-rating by node %d rejected", r.Rater)
	}
	if l.consumeRecovered(r.Seq) {
		return nil
	}
	if l.journal != nil {
		if err := l.journal.Append([]Rating{r}); err != nil {
			return fmt.Errorf("rating: journal append: %w", err)
		}
	}
	s := l.shard(r.Ratee)
	s.mu.Lock()
	s.ratings = append(s.ratings, r)
	key := PairKey{r.Rater, r.Ratee}
	c := s.counts[key]
	if r.Value > 0 {
		c.Positive++
	} else if r.Value < 0 {
		c.Negative++
	}
	s.counts[key] = c
	s.mu.Unlock()
	return nil
}

// AddBatch appends a batch of ratings to the current interval, visiting each
// internal shard once: per-shard growth is pre-sized and each shard lock is
// taken once per call instead of once per rating. Semantics match a sequence
// of Add calls — out-of-range node IDs panic, self-ratings are rejected per
// entry. The returned slice is index-aligned with rs; a nil return means
// every rating landed.
func (l *Ledger) AddBatch(rs []Rating) []error {
	var errs []error
	var skip []bool
	var toJournal []Rating
	var need [numShards]int
	for i := range rs {
		r := &rs[i]
		if r.Rater < 0 || r.Rater >= l.numNodes || r.Ratee < 0 || r.Ratee >= l.numNodes {
			panic(fmt.Sprintf("rating: node out of range in %+v (numNodes=%d)", *r, l.numNodes))
		}
		if r.Rater == r.Ratee {
			if errs == nil {
				errs = make([]error, len(rs))
			}
			errs[i] = fmt.Errorf("rating: self-rating by node %d rejected", r.Rater)
			continue
		}
		if l.consumeRecovered(r.Seq) {
			if skip == nil {
				skip = make([]bool, len(rs))
			}
			skip[i] = true
			continue
		}
		if l.journal != nil {
			toJournal = append(toJournal, *r)
		}
		need[r.Ratee%numShards]++
	}
	if len(toJournal) > 0 {
		if err := l.journal.Append(toJournal); err != nil {
			// The write-ahead append failed, so nothing was made durable:
			// veto every rating that was about to be applied.
			if errs == nil {
				errs = make([]error, len(rs))
			}
			for i := range rs {
				if errs[i] == nil && (skip == nil || !skip[i]) {
					errs[i] = fmt.Errorf("rating: journal append: %w", err)
				}
			}
			return errs
		}
	}
	// Counting sort: perm groups the indices of valid ratings by destination
	// shard, preserving input order within each shard (the same per-shard
	// insertion order sequential Adds would produce).
	var starts [numShards + 1]int
	for s := 0; s < numShards; s++ {
		starts[s+1] = starts[s] + need[s]
	}
	perm := make([]int, starts[numShards])
	fill := starts
	for i := range rs {
		if errs != nil && errs[i] != nil {
			continue
		}
		if skip != nil && skip[i] {
			continue
		}
		s := rs[i].Ratee % numShards
		perm[fill[s]] = i
		fill[s]++
	}
	for s := 0; s < numShards; s++ {
		lo, hi := starts[s], starts[s+1]
		if lo == hi {
			continue
		}
		sh := &l.shards[s]
		sh.mu.Lock()
		if free := cap(sh.ratings) - len(sh.ratings); free < hi-lo {
			newCap := len(sh.ratings) + (hi - lo)
			if newCap < 2*cap(sh.ratings) {
				newCap = 2 * cap(sh.ratings) // keep append-style amortization
			}
			grown := make([]Rating, len(sh.ratings), newCap)
			copy(grown, sh.ratings)
			sh.ratings = grown
		}
		for _, i := range perm[lo:hi] {
			r := rs[i]
			sh.ratings = append(sh.ratings, r)
			key := PairKey{r.Rater, r.Ratee}
			c := sh.counts[key]
			if r.Value > 0 {
				c.Positive++
			} else if r.Value < 0 {
				c.Negative++
			}
			sh.counts[key] = c
		}
		sh.mu.Unlock()
	}
	return errs
}

// Counts returns the current-interval t+/t− counters for the directed pair.
func (l *Ledger) Counts(rater, ratee int) PairCounts {
	s := l.shard(ratee)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counts[PairKey{rater, ratee}]
}

// IntervalSize returns the number of ratings accumulated this interval.
func (l *Ledger) IntervalSize() int {
	n := 0
	for i := range l.shards {
		s := &l.shards[i]
		s.mu.Lock()
		n += len(s.ratings)
		s.mu.Unlock()
	}
	return n
}

// Snapshot is the drained content of one reputation-update interval. MaxSeq
// is the highest ingest sequence number among the drained ratings (zero when
// they are unsequenced) — the high-water mark durability layers use to tell
// which journaled records a completed drain already accounts for.
type Snapshot struct {
	Ratings []Rating
	Counts  map[PairKey]PairCounts
	MaxSeq  uint64
}

// EndInterval atomically drains and returns the interval's ratings and
// frequency counters, resetting the ledger for the next interval. Ratings
// are returned in deterministic order (by ratee, then insertion order) so
// downstream reputation updates are reproducible.
func (l *Ledger) EndInterval() Snapshot {
	snap := Snapshot{Counts: make(map[PairKey]PairCounts)}
	type chunk struct {
		shard   int
		ratings []Rating
	}
	chunks := make([]chunk, 0, numShards)
	for i := range l.shards {
		s := &l.shards[i]
		s.mu.Lock()
		if len(s.ratings) > 0 {
			chunks = append(chunks, chunk{i, s.ratings})
		}
		for k, v := range s.counts {
			snap.Counts[k] = v
		}
		s.ratings = nil
		s.counts = make(map[PairKey]PairCounts)
		s.mu.Unlock()
	}
	for _, c := range chunks {
		snap.Ratings = append(snap.Ratings, c.ratings...)
	}
	for i := range snap.Ratings {
		if s := snap.Ratings[i].Seq; s > snap.MaxSeq {
			snap.MaxSeq = s
		}
	}
	sort.SliceStable(snap.Ratings, func(a, b int) bool {
		x, y := snap.Ratings[a], snap.Ratings[b]
		switch {
		case x.Ratee != y.Ratee:
			return x.Ratee < y.Ratee
		case x.Rater != y.Rater:
			return x.Rater < y.Rater
		case x.Cycle != y.Cycle:
			return x.Cycle < y.Cycle
		case x.Category != y.Category:
			return x.Category < y.Category
		default:
			return x.Value < y.Value
		}
	})
	return snap
}

// FrequencyStats describes the distribution of per-pair rating frequencies
// in one interval, the empirical basis of the paper's thresholds (e.g.
// Overstock's mean 2.2 ratings/month, max positive 21, max negative 2).
type FrequencyStats struct {
	MeanPositive, MaxPositive, MinPositive float64
	MeanNegative, MaxNegative, MinNegative float64
	Pairs                                  int
}

// Frequencies computes FrequencyStats over a drained interval's counters.
// Pairs with zero activity do not exist in the map and are excluded, as in
// the paper's trace statistics (only observed rating pairs are counted).
func Frequencies(counts map[PairKey]PairCounts) FrequencyStats {
	var fs FrequencyStats
	first := true
	var sumP, sumN float64
	nP, nN := 0, 0
	for _, c := range counts {
		fs.Pairs++
		p, n := float64(c.Positive), float64(c.Negative)
		if c.Positive > 0 {
			sumP += p
			nP++
			if first || p > fs.MaxPositive {
				fs.MaxPositive = p
			}
			if fs.MinPositive == 0 || p < fs.MinPositive {
				fs.MinPositive = p
			}
		}
		if c.Negative > 0 {
			sumN += n
			nN++
			if n > fs.MaxNegative {
				fs.MaxNegative = n
			}
			if fs.MinNegative == 0 || n < fs.MinNegative {
				fs.MinNegative = n
			}
		}
		first = false
	}
	if nP > 0 {
		fs.MeanPositive = sumP / float64(nP)
	}
	if nN > 0 {
		fs.MeanNegative = sumN / float64(nN)
	}
	return fs
}

// History accumulates per-pair rating aggregates across the whole run —
// the all-time sums reputation engines such as EigenTrust consume for local
// trust values. It is not concurrency-safe; feed it drained Snapshots from
// the single-threaded reputation-update phase.
type History struct {
	numNodes int
	sums     map[PairKey]float64
	counts   map[PairKey]int
	raters   map[int]map[int]bool // ratee -> set of raters (and vice versa below)
	ratees   map[int]map[int]bool // rater -> set of ratees
	// vers holds one version per rater, bumped exactly when that rater's
	// rated-peer (ratee) set changes — the invalidation signal for per-rater
	// profile caches, which depend only on the set, not the aggregates.
	vers []uint64
}

// NewHistory creates an empty all-time aggregate table.
func NewHistory(numNodes int) *History {
	return &History{
		numNodes: numNodes,
		sums:     make(map[PairKey]float64),
		counts:   make(map[PairKey]int),
		raters:   make(map[int]map[int]bool),
		ratees:   make(map[int]map[int]bool),
		vers:     make([]uint64, numNodes),
	}
}

// Version returns the rater's rated-peer-set version: it changes if and only
// if RateesOf(rater) would return a different set than at the last call.
func (h *History) Version(rater int) uint64 { return h.vers[rater] }

// Absorb folds a drained interval into the all-time aggregates. Ratings may
// carry adjusted (re-weighted) values; History stores whatever it is given.
func (h *History) Absorb(ratings []Rating) {
	for _, r := range ratings {
		k := PairKey{r.Rater, r.Ratee}
		h.sums[k] += r.Value
		h.counts[k]++
		if h.raters[r.Ratee] == nil {
			h.raters[r.Ratee] = make(map[int]bool)
		}
		h.raters[r.Ratee][r.Rater] = true
		if h.ratees[r.Rater] == nil {
			h.ratees[r.Rater] = make(map[int]bool)
		}
		if !h.ratees[r.Rater][r.Ratee] {
			h.ratees[r.Rater][r.Ratee] = true
			h.vers[r.Rater]++
		}
	}
}

// Sum returns the all-time accumulated rating value from rater about ratee.
func (h *History) Sum(rater, ratee int) float64 {
	return h.sums[PairKey{rater, ratee}]
}

// Count returns the all-time number of ratings from rater about ratee.
func (h *History) Count(rater, ratee int) int {
	return h.counts[PairKey{rater, ratee}]
}

// ResetNode forgets all aggregates involving the node, in either role. The
// node's own version bumps when it had rated anyone, and so does every rater
// whose rated-peer set contained the node.
func (h *History) ResetNode(node int) {
	for k := range h.sums {
		if k.Rater == node || k.Ratee == node {
			delete(h.sums, k)
			delete(h.counts, k)
		}
	}
	delete(h.raters, node)
	if len(h.ratees[node]) > 0 {
		h.vers[node]++
	}
	delete(h.ratees, node)
	for _, m := range h.raters {
		delete(m, node)
	}
	for rater, m := range h.ratees {
		if m[node] {
			delete(m, node)
			h.vers[rater]++
		}
	}
}

// RatersOf returns the sorted set of peers that have ever rated ratee.
func (h *History) RatersOf(ratee int) []int {
	return sortedKeys(h.raters[ratee])
}

// RateesOf returns the sorted set of peers that rater has ever rated — the
// peer set the Gaussian filter profiles a rater against.
func (h *History) RateesOf(rater int) []int {
	return sortedKeys(h.ratees[rater])
}

func sortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// HistoryState is the serializable form of a History, captured by
// ExportState and reinstated by ImportState. Rater/ratee sets are stored as
// sorted slices so the payload is canonical.
type HistoryState struct {
	NumNodes int
	Sums     map[PairKey]float64
	Counts   map[PairKey]int
	Raters   map[int][]int
	Ratees   map[int][]int
	Vers     []uint64
}

// ExportState deep-copies the all-time aggregates for snapshotting.
func (h *History) ExportState() HistoryState {
	st := HistoryState{
		NumNodes: h.numNodes,
		Sums:     make(map[PairKey]float64, len(h.sums)),
		Counts:   make(map[PairKey]int, len(h.counts)),
		Raters:   make(map[int][]int, len(h.raters)),
		Ratees:   make(map[int][]int, len(h.ratees)),
		Vers:     append([]uint64(nil), h.vers...),
	}
	for k, v := range h.sums {
		st.Sums[k] = v
	}
	for k, v := range h.counts {
		st.Counts[k] = v
	}
	for n, set := range h.raters {
		if len(set) > 0 {
			st.Raters[n] = sortedKeys(set)
		}
	}
	for n, set := range h.ratees {
		if len(set) > 0 {
			st.Ratees[n] = sortedKeys(set)
		}
	}
	return st
}

// ImportState replaces the history's contents with a previously exported
// state. Sum, Count and the rater/ratee sets afterwards are bit-identical to
// the instance the state was exported from.
func (h *History) ImportState(st HistoryState) {
	if st.NumNodes != h.numNodes {
		panic(fmt.Sprintf("rating: history state for %d nodes imported into %d-node history", st.NumNodes, h.numNodes))
	}
	h.sums = make(map[PairKey]float64, len(st.Sums))
	for k, v := range st.Sums {
		h.sums[k] = v
	}
	h.counts = make(map[PairKey]int, len(st.Counts))
	for k, v := range st.Counts {
		h.counts[k] = v
	}
	h.raters = make(map[int]map[int]bool, len(st.Raters))
	for n, list := range st.Raters {
		set := make(map[int]bool, len(list))
		for _, v := range list {
			set[v] = true
		}
		h.raters[n] = set
	}
	h.ratees = make(map[int]map[int]bool, len(st.Ratees))
	for n, list := range st.Ratees {
		set := make(map[int]bool, len(list))
		for _, v := range list {
			set[v] = true
		}
		h.ratees[n] = set
	}
	h.vers = append(h.vers[:0], st.Vers...)
}
