package rating

import (
	"sync"
	"testing"
)

func BenchmarkLedgerAddSerial(b *testing.B) {
	l := NewLedger(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Add(Rating{Rater: i % 1000, Ratee: (i + 1) % 1000, Value: 1}) //nolint:errcheck
	}
}

func BenchmarkLedgerAddParallel(b *testing.B) {
	l := NewLedger(1000)
	var ctr sync.Mutex
	next := 0
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		ctr.Lock()
		base := next
		next += 1000003
		ctr.Unlock()
		i := base
		for pb.Next() {
			l.Add(Rating{Rater: i % 1000, Ratee: (i + 1) % 1000, Value: 1}) //nolint:errcheck
			i++
		}
	})
}

func BenchmarkEndInterval(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		l := NewLedger(1000)
		for k := 0; k < 10000; k++ {
			l.Add(Rating{Rater: k % 1000, Ratee: (k + 7) % 1000, Value: 1}) //nolint:errcheck
		}
		b.StartTimer()
		l.EndInterval()
	}
}
