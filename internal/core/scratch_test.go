package core

import (
	"testing"

	"socialtrust/internal/rating"
)

// smallInterval builds a tiny snapshot over the same node population, the
// kind of quiet interval that follows a one-off burst.
func smallInterval(n int) rating.Snapshot {
	led := rating.NewLedger(n)
	for i := 0; i < 10; i++ {
		if err := led.Add(rating.Rating{Rater: i, Ratee: i + 1, Value: 1}); err != nil {
			panic(err)
		}
	}
	return led.EndInterval()
}

// TestScratchShrinksAfterSustainedLowUtilization pins the shrink policy: a
// single huge interval must not pin peak-sized per-pair scratch forever, but
// the shrink only triggers after shrinkAfter consecutive low-utilization
// intervals, so oscillating workloads don't churn allocations.
func TestScratchShrinksAfterSustainedLowUtilization(t *testing.T) {
	const n = 600
	st, big := perfScenario(n, 1)
	st.Adjust(big)
	peak := cap(st.pairScratch)
	if peak <= shrinkMinCap {
		t.Fatalf("scenario too small to exercise shrink: cap=%d <= %d", peak, shrinkMinCap)
	}

	small := smallInterval(n)
	for i := 0; i < shrinkAfter-1; i++ {
		st.Adjust(small)
		if got := cap(st.pairScratch); got != peak {
			t.Fatalf("scratch resized after only %d low intervals: cap=%d want %d", i+1, got, peak)
		}
	}
	st.Adjust(small)
	shrunk := cap(st.pairScratch)
	if shrunk >= peak {
		t.Fatalf("scratch did not shrink after %d low intervals: cap=%d peak=%d", shrinkAfter, shrunk, peak)
	}
	if got := cap(st.sigScratch); got >= peak {
		t.Fatalf("sigScratch did not shrink: cap=%d peak=%d", got, peak)
	}

	// A big interval regrows transparently and resets the counter.
	out, _ := st.Adjust(big)
	if len(out.Ratings) != len(big.Ratings) {
		t.Fatalf("post-shrink Adjust returned %d ratings, want %d", len(out.Ratings), len(big.Ratings))
	}
	if cap(st.pairScratch) < len(big.Ratings)/2 {
		t.Fatalf("scratch did not regrow: cap=%d for %d ratings", cap(st.pairScratch), len(big.Ratings))
	}
}

// TestScratchUtilizationCounterResets verifies one busy interval in the
// middle of a quiet stretch restarts the low-utilization countdown.
func TestScratchUtilizationCounterResets(t *testing.T) {
	st, big := perfScenario(600, 1)
	st.Adjust(big)
	peak := cap(st.pairScratch)

	small := smallInterval(600)
	for i := 0; i < shrinkAfter-1; i++ {
		st.Adjust(small)
	}
	st.Adjust(big) // resets the counter
	for i := 0; i < shrinkAfter-1; i++ {
		st.Adjust(small)
		if got := cap(st.pairScratch); got != peak {
			t.Fatalf("scratch resized %d low intervals after a busy one: cap=%d want %d", i+1, got, peak)
		}
	}
}
