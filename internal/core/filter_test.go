package core

import (
	"math"
	"testing"

	"socialtrust/internal/rating"
)

func TestFreqScale(t *testing.T) {
	cases := []struct {
		counts    rating.PairCounts
		behaviors Behavior
		meanF     float64
		want      float64
	}{
		// Positive-triggered pair 10x over the mean frequency.
		{rating.PairCounts{Positive: 100}, B2, 10, 0.1},
		// Negative-triggered pair 4x over.
		{rating.PairCounts{Negative: 40}, B4, 10, 0.25},
		// At or below the mean: no scaling, never amplification.
		{rating.PairCounts{Positive: 5}, B2, 10, 1},
		// Both polarities triggered: the stricter scale wins.
		{rating.PairCounts{Positive: 20, Negative: 100}, B2 | B4, 10, 0.1},
	}
	for i, c := range cases {
		if got := freqScale(c.counts, c.behaviors, c.meanF); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("case %d: freqScale = %v, want %v", i, got, c.want)
		}
	}
}

func TestMeanPairFrequency(t *testing.T) {
	if f := meanPairFrequency(nil); f != 1 {
		t.Fatalf("empty meanF = %v, want 1", f)
	}
	counts := map[rating.PairKey]rating.PairCounts{
		{Rater: 0, Ratee: 1}: {Positive: 2},
		{Rater: 1, Ratee: 2}: {Positive: 3, Negative: 1},
	}
	if f := meanPairFrequency(counts); f != 3 {
		t.Fatalf("meanF = %v, want 3", f)
	}
}

func TestFrequencyNormalizationCapsInfluence(t *testing.T) {
	// A flagged pair's total adjusted rating mass must stay at or below
	// roughly the threshold's worth of ratings.
	f := newFixture()
	f.normalTraffic()
	f.collusionTraffic(200) // extreme spam
	st := f.socialTrust(Config{})
	snap := f.ledger.EndInterval()
	adjusted, report := st.Adjust(snap)
	total := 0.0
	for _, r := range adjusted.Ratings {
		if r.Rater == 10 && r.Ratee == 11 {
			total += r.Value
		}
	}
	if total > report.PosThreshold {
		t.Fatalf("flagged pair's adjusted mass %v exceeds threshold %v", total, report.PosThreshold)
	}
}

func TestSimilarityGatesAtBaselineMean(t *testing.T) {
	// B4 must fire for a frequent-negative pair whose similarity is at or
	// above the baseline mean, even when the top quantile saturates at 1.
	f := newFixture()
	f.normalTraffic()
	// Nodes 0 and 1 share identical interest sets (similarity 1.0) while
	// baseline ring pairs sit at 0.5: node 0 floods node 1.
	for k := 0; k < 40; k++ {
		f.rate(0, 1, -1)
	}
	st := f.socialTrust(Config{})
	_, report := st.Adjust(f.ledger.EndInterval())
	found := false
	for _, a := range report.Adjusted {
		if a.Pair == (rating.PairKey{Rater: 0, Ratee: 1}) && a.Behaviors&B4 != 0 {
			found = true
			if a.Weight > 0.5 {
				t.Errorf("B4 weight %v, want strong suppression via frequency normalization", a.Weight)
			}
		}
	}
	if !found {
		t.Fatal("B4 did not fire for an at-mean-or-above similarity pair")
	}
}

func TestB3FiresBelowMeanSimilarity(t *testing.T) {
	// The fixture colluders share no interests (similarity 0, far below
	// the baseline mean ≈0.5): frequent positives must trigger B3.
	f := newFixture()
	f.normalTraffic()
	f.collusionTraffic(50)
	st := f.socialTrust(Config{UseCloseness: false, UseSimilarity: true})
	_, report := st.Adjust(f.ledger.EndInterval())
	for _, k := range []rating.PairKey{{Rater: 10, Ratee: 11}, {Rater: 11, Ratee: 10}} {
		found := false
		for _, a := range report.Adjusted {
			if a.Pair == k && a.Behaviors&B3 != 0 {
				found = true
			}
		}
		if !found {
			t.Fatalf("B3 did not fire for zero-similarity colluder pair %+v", k)
		}
	}
}

func TestBaselineStatsWidth(t *testing.T) {
	// Robust quantile range preferred; min-max fallback.
	st := BaselineStats{Min: 0, Max: 10, Lo: 1, Hi: 3}
	if got := st.width(); got != 2 {
		t.Fatalf("width = %v, want robust 2", got)
	}
	st = BaselineStats{Min: 0, Max: 10}
	if got := st.width(); got != 10 {
		t.Fatalf("width = %v, want min-max 10", got)
	}
}

func TestEmptyBaselineDisablesSimilarityGates(t *testing.T) {
	// With no baseline population, nothing should be flagged via the
	// similarity gates (tsl=0, tsh=+Inf).
	f := newFixture()
	// Only the colluders rate: every pair is frequency-suspicious, so the
	// baseline of non-suspicious pairs is empty.
	f.collusionTraffic(50)
	st := f.socialTrust(Config{UseCloseness: false, UseSimilarity: true})
	_, report := st.Adjust(f.ledger.EndInterval())
	for _, a := range report.Adjusted {
		if a.Behaviors&(B3|B4) != 0 {
			t.Fatalf("similarity behavior fired with empty baseline: %+v", a)
		}
	}
}

func TestLastReportThresholdsExposed(t *testing.T) {
	f := newFixture()
	f.normalTraffic()
	st := f.socialTrust(Config{})
	st.Update(f.ledger.EndInterval())
	rep := st.LastReport()
	if rep.PosThreshold <= 0 || rep.NegThreshold <= 0 {
		t.Fatalf("report thresholds = %+v", rep)
	}
	if rep.ClosenessBaseline.N == 0 || rep.SimilarityBaseline.N == 0 {
		t.Fatalf("report baselines empty: %+v", rep)
	}
}

func TestResetNodeForwardsToInner(t *testing.T) {
	f := newFixture()
	st := f.socialTrust(Config{})
	f.normalTraffic()
	st.Update(f.ledger.EndInterval())
	if st.Reputation(1) == 0 {
		t.Fatal("precondition: node 1 has reputation")
	}
	st.ResetNode(1)
	if st.Reputation(1) != 0 {
		t.Fatal("inner engine kept node 1's reputation after ResetNode")
	}
}
