package core

import (
	"testing"

	"socialtrust/internal/interest"
	"socialtrust/internal/obs/span"
	"socialtrust/internal/rating"
	"socialtrust/internal/reputation/ebay"
	"socialtrust/internal/socialgraph"
	"socialtrust/internal/xrand"
)

// perfScenario builds an n-node ring-plus-chords graph with one interval of
// spread-out rating traffic — every node rates a few random peers, so the
// Adjust pass has hundreds of distinct pairs to compute signals for. Shared
// by the allocation test and the warm/cold Adjust benchmarks.
func perfScenario(n, workers int) (*SocialTrust, rating.Snapshot) {
	g := socialgraph.New(n)
	sets := make([]interest.Set, n)
	rng := xrand.New(5)
	for i := 0; i < n; i++ {
		g.AddRelationship(socialgraph.NodeID(i), socialgraph.NodeID((i+1)%n),
			socialgraph.Relationship{Kind: socialgraph.Friendship})
		j := rng.Intn(n)
		if j != i {
			g.AddRelationship(socialgraph.NodeID(i), socialgraph.NodeID(j),
				socialgraph.Relationship{Kind: socialgraph.Colleague})
		}
		sets[i] = interest.NewSet(interest.Category(i%5), interest.Category(i%11))
	}

	ledger := rating.NewLedger(n)
	for i := 0; i < n; i++ {
		for k := 0; k < 3; k++ {
			j := rng.Intn(n)
			if j == i {
				continue
			}
			if err := ledger.Add(rating.Rating{Rater: i, Ratee: j, Value: 1}); err != nil {
				panic(err)
			}
			g.RecordInteraction(socialgraph.NodeID(i), socialgraph.NodeID(j), 1)
		}
	}
	snap := ledger.EndInterval()
	st := New(Config{NumNodes: n, Workers: workers}, g, sets, interest.NewTracker(n), ebay.New(n))
	return st, snap
}

// TestWarmAdjustAllocations pins the scratch-buffer and cache contract: on a
// quiescent graph, a warm Adjust pass must allocate a small fraction of what
// a cold pass does — the per-pair BFS state, signal maps, and fan-out all
// disappear once the epoch-versioned cache is hot.
func TestWarmAdjustAllocations(t *testing.T) {
	st, snap := perfScenario(200, 1)
	st.Adjust(snap) // prime the cache and size the scratch buffers

	warm := testing.AllocsPerRun(10, func() {
		st.Adjust(snap)
	})
	cold := testing.AllocsPerRun(10, func() {
		st.Reset() // drops the signal cache; the next pass recomputes everything
		st.Adjust(snap)
	})
	t.Logf("allocs/op: warm=%.0f cold=%.0f", warm, cold)
	if warm*5 > cold {
		t.Fatalf("warm Adjust allocates too much: warm=%.0f cold=%.0f (want warm <= cold/5)", warm, cold)
	}
}

// TestWarmAdjustTracingOffAllocations pins the tracing layer's disabled-path
// contract: the span emission sites inside Adjust (internal/obs/span) are
// nil-gated, so with tracing off the warm pass must allocate exactly what it
// did before instrumentation — warmAllocBudget was measured on the
// uninstrumented Adjust and the instrumented path may not exceed it.
// (BenchmarkSpanSiteDisabled in internal/obs/span pins the per-site cost at
// a few ns.)
func TestWarmAdjustTracingOffAllocations(t *testing.T) {
	if span.Enabled() {
		t.Fatal("span recorder unexpectedly enabled")
	}
	// Measured at 16 allocs/op on go1.24 with and without the span sites;
	// any regression past it means a span site allocates while disabled.
	const warmAllocBudget = 16
	st, snap := perfScenario(200, 1)
	st.Adjust(snap) // prime the cache and size the scratch buffers
	warm := testing.AllocsPerRun(10, func() {
		st.Adjust(snap)
	})
	t.Logf("allocs/op: warm=%.0f (budget %d)", warm, warmAllocBudget)
	if warm > warmAllocBudget {
		t.Fatalf("warm Adjust with tracing off allocates %.0f/op, want <= %d (span sites must be free)",
			warm, warmAllocBudget)
	}
}
