package core

import (
	"math"
	"testing"
	"testing/quick"

	"socialtrust/internal/interest"
	"socialtrust/internal/rating"
	"socialtrust/internal/reputation/ebay"
	"socialtrust/internal/socialgraph"
)

// fixture builds a 12-node scenario: nodes 0..9 are normal peers arranged in
// a ring with shared interests; nodes 10 and 11 are a colluding pair with
// many relationships, massive mutual interaction, and disjoint interests.
type fixture struct {
	graph   *socialgraph.Graph
	sets    []interest.Set
	tracker *interest.Tracker
	ledger  *rating.Ledger
}

const fixtureN = 12

func newFixture() *fixture {
	g := socialgraph.New(fixtureN)
	sets := make([]interest.Set, fixtureN)
	// Normal ring 0..9, one friendship relationship per adjacent pair.
	for i := 0; i < 10; i++ {
		j := (i + 1) % 10
		g.AddRelationship(socialgraph.NodeID(i), socialgraph.NodeID(j),
			socialgraph.Relationship{Kind: socialgraph.Friendship})
		// Nodes 0 and 1 are high-similarity competitors (identical sets);
		// the rest of the ring shares only category 1 pairwise (sim 0.5),
		// giving the baseline similarity distribution some spread.
		if i < 2 {
			sets[i] = interest.NewSet(1, 2, 3)
		} else {
			sets[i] = interest.NewSet(1, interest.Category(10+i))
		}
	}
	// Colluders: 4 relationships between them, plus one weak link into the
	// ring so they are reachable.
	for k := 0; k < 4; k++ {
		g.AddRelationship(10, 11, socialgraph.Relationship{Kind: socialgraph.Kinship})
	}
	g.AddRelationship(10, 0, socialgraph.Relationship{Kind: socialgraph.Friendship})
	g.AddRelationship(11, 5, socialgraph.Relationship{Kind: socialgraph.Friendship})
	sets[10] = interest.NewSet(17)
	sets[11] = interest.NewSet(18)
	return &fixture{
		graph:   g,
		sets:    sets,
		tracker: interest.NewTracker(fixtureN),
		ledger:  rating.NewLedger(fixtureN),
	}
}

// normalTraffic records balanced service ratings among the ring nodes:
// each node rates both neighbors twice, positively.
func (f *fixture) normalTraffic() {
	for i := 0; i < 10; i++ {
		for _, j := range []int{(i + 1) % 10, (i + 9) % 10} {
			for k := 0; k < 2; k++ {
				f.rate(i, j, 1)
			}
		}
	}
}

// collusionTraffic records the colluders' mutual rating spam.
func (f *fixture) collusionTraffic(times int) {
	for k := 0; k < times; k++ {
		f.rate(10, 11, 1)
		f.rate(11, 10, 1)
	}
}

func (f *fixture) rate(i, j int, v float64) {
	if err := f.ledger.Add(rating.Rating{Rater: i, Ratee: j, Value: v}); err != nil {
		panic(err)
	}
	f.graph.RecordInteraction(socialgraph.NodeID(i), socialgraph.NodeID(j), 1)
}

func (f *fixture) socialTrust(cfg Config) *SocialTrust {
	cfg.NumNodes = fixtureN
	return New(cfg, f.graph, f.sets, f.tracker, ebay.New(fixtureN))
}

func TestNewValidation(t *testing.T) {
	f := newFixture()
	cases := []func(){
		func() { New(Config{NumNodes: 0}, f.graph, f.sets, f.tracker, ebay.New(fixtureN)) },
		func() { New(Config{NumNodes: fixtureN}, nil, f.sets, f.tracker, ebay.New(fixtureN)) },
		func() { New(Config{NumNodes: fixtureN}, f.graph, f.sets[:3], f.tracker, ebay.New(fixtureN)) },
		func() { New(Config{NumNodes: fixtureN}, f.graph, f.sets, f.tracker, nil) },
		func() {
			New(Config{NumNodes: fixtureN, WeightedSimilarity: true}, f.graph, f.sets, nil, ebay.New(fixtureN))
		},
	}
	for i, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d should panic", i)
				}
			}()
			c()
		}()
	}
}

func TestName(t *testing.T) {
	f := newFixture()
	if got := f.socialTrust(Config{}).Name(); got != "eBay+SocialTrust" {
		t.Fatalf("Name = %q", got)
	}
}

func TestBehaviorString(t *testing.T) {
	if got := (B1 | B3).String(); got != "B1|B3" {
		t.Fatalf("String = %q", got)
	}
	if Behavior(0).String() != "none" {
		t.Fatal("zero behavior should be none")
	}
	if B4.String() != "B4" {
		t.Fatal("B4 mismatch")
	}
}

func TestColludingPairDetectedAndShrunk(t *testing.T) {
	f := newFixture()
	f.normalTraffic()
	f.collusionTraffic(50)
	st := f.socialTrust(Config{})
	snap := f.ledger.EndInterval()
	adjusted, report := st.Adjust(snap)

	if len(report.Adjusted) == 0 {
		t.Fatal("collusion pair not flagged")
	}
	flagged := map[rating.PairKey]PairAdjustment{}
	for _, a := range report.Adjusted {
		flagged[a.Pair] = a
	}
	for _, k := range []rating.PairKey{{Rater: 10, Ratee: 11}, {Rater: 11, Ratee: 10}} {
		adj, ok := flagged[k]
		if !ok {
			t.Fatalf("pair %+v not flagged; report %+v", k, report.Adjusted)
		}
		if adj.Weight >= 0.5 {
			t.Errorf("pair %+v weight %v, want strong suppression", k, adj.Weight)
		}
		if adj.Behaviors == 0 {
			t.Errorf("pair %+v has no behaviors", k)
		}
	}
	// Normal pairs untouched.
	for _, a := range report.Adjusted {
		if a.Pair.Rater < 10 && a.Pair.Ratee < 10 {
			t.Errorf("normal pair %+v flagged (behaviors %v)", a.Pair, a.Behaviors)
		}
	}
	// Adjusted snapshot has shrunk colluder values, unchanged normal values.
	for i, r := range adjusted.Ratings {
		orig := snap.Ratings[i]
		if r.Rater >= 10 && r.Ratee >= 10 {
			if r.Value >= orig.Value {
				t.Fatalf("colluder rating not shrunk: %v -> %v", orig.Value, r.Value)
			}
		} else if r.Value != orig.Value {
			t.Fatalf("normal rating changed: %+v -> %+v", orig, r)
		}
	}
	// Input snapshot must not be mutated.
	for _, r := range snap.Ratings {
		if r.Value != 1 {
			t.Fatal("Adjust mutated its input")
		}
	}
}

func TestColluderB2Triggered(t *testing.T) {
	// The fixture colluders are socially very close (4 kinship links, all
	// interactions mutual) and the ratee has zero reputation: B2.
	f := newFixture()
	f.normalTraffic()
	f.collusionTraffic(50)
	st := f.socialTrust(Config{})
	_, report := st.Adjust(f.ledger.EndInterval())
	var found Behavior
	for _, a := range report.Adjusted {
		if a.Pair.Rater == 10 && a.Pair.Ratee == 11 {
			found = a.Behaviors
		}
	}
	if found&B2 == 0 && found&B3 == 0 {
		t.Fatalf("colluder should trigger B2 (close, low-rep) or B3 (no shared interests); got %v", found)
	}
}

func TestB4NegativeCampaignDetected(t *testing.T) {
	// Node 0 floods its high-similarity competitor node 1 with negatives.
	f := newFixture()
	f.normalTraffic()
	for k := 0; k < 40; k++ {
		f.rate(0, 1, -1)
	}
	st := f.socialTrust(Config{})
	_, report := st.Adjust(f.ledger.EndInterval())
	var adj *PairAdjustment
	for i := range report.Adjusted {
		if report.Adjusted[i].Pair == (rating.PairKey{Rater: 0, Ratee: 1}) {
			adj = &report.Adjusted[i]
		}
	}
	if adj == nil {
		t.Fatal("negative campaign not flagged")
	}
	if adj.Behaviors&B4 == 0 {
		t.Fatalf("behaviors = %v, want B4", adj.Behaviors)
	}
}

func TestUpdateSuppressesColluderReputation(t *testing.T) {
	// End-to-end over several intervals: with SocialTrust, colluders end
	// far below the unprotected baseline.
	run := func(protect bool) float64 {
		f := newFixture()
		inner := ebay.New(fixtureN)
		var engine interface {
			Update(rating.Snapshot)
			Reputations() []float64
		} = inner
		if protect {
			engine = New(Config{NumNodes: fixtureN}, f.graph, f.sets, f.tracker, inner)
		}
		for cycle := 0; cycle < 5; cycle++ {
			f.normalTraffic()
			f.collusionTraffic(50)
			engine.Update(f.ledger.EndInterval())
		}
		r := engine.Reputations()
		return r[10] + r[11]
	}
	unprotected := run(false)
	protected := run(true)
	if protected >= unprotected/4 {
		t.Fatalf("SocialTrust colluder reputation %v vs baseline %v: insufficient suppression",
			protected, unprotected)
	}
}

func TestFixedThresholdsRespected(t *testing.T) {
	f := newFixture()
	f.normalTraffic()
	st := f.socialTrust(Config{FixedPosThreshold: 100, FixedNegThreshold: 100})
	_, report := st.Adjust(f.ledger.EndInterval())
	if report.PosThreshold != 100 || report.NegThreshold != 100 {
		t.Fatalf("thresholds = %v/%v, want 100/100", report.PosThreshold, report.NegThreshold)
	}
	if len(report.Adjusted) != 0 {
		t.Fatalf("nothing should exceed a fixed threshold of 100: %+v", report.Adjusted)
	}
}

func TestQuietIntervalNoAdjustments(t *testing.T) {
	f := newFixture()
	f.normalTraffic()
	st := f.socialTrust(Config{})
	adjusted, report := st.Adjust(f.ledger.EndInterval())
	if len(report.Adjusted) != 0 {
		t.Fatalf("normal traffic flagged: %+v", report.Adjusted)
	}
	for _, r := range adjusted.Ratings {
		if r.Value != 1 {
			t.Fatal("normal ratings modified")
		}
	}
}

func TestEmptySnapshot(t *testing.T) {
	f := newFixture()
	st := f.socialTrust(Config{})
	adjusted, report := st.Adjust(rating.Snapshot{})
	if len(adjusted.Ratings) != 0 || len(report.Adjusted) != 0 {
		t.Fatal("empty snapshot should pass through")
	}
	st.Update(rating.Snapshot{}) // must not panic
}

func TestResetClearsState(t *testing.T) {
	f := newFixture()
	st := f.socialTrust(Config{})
	f.normalTraffic()
	f.collusionTraffic(50)
	st.Update(f.ledger.EndInterval())
	if len(st.LastReport().Adjusted) == 0 {
		t.Fatal("precondition: collusion flagged")
	}
	st.Reset()
	if len(st.LastReport().Adjusted) != 0 {
		t.Fatal("LastReport survived Reset")
	}
	for _, v := range st.Reputations() {
		if v != 0 {
			t.Fatal("inner engine not reset")
		}
	}
}

func TestAblationClosenessOnly(t *testing.T) {
	f := newFixture()
	f.normalTraffic()
	f.collusionTraffic(50)
	st := f.socialTrust(Config{UseCloseness: true, UseSimilarity: false})
	_, report := st.Adjust(f.ledger.EndInterval())
	for _, a := range report.Adjusted {
		if a.Behaviors&(B3|B4) != 0 {
			t.Fatalf("similarity behaviors fired in closeness-only mode: %v", a.Behaviors)
		}
	}
}

func TestAblationSimilarityOnly(t *testing.T) {
	f := newFixture()
	f.normalTraffic()
	f.collusionTraffic(50)
	st := f.socialTrust(Config{UseCloseness: false, UseSimilarity: true})
	_, report := st.Adjust(f.ledger.EndInterval())
	found := false
	for _, a := range report.Adjusted {
		if a.Behaviors&(B1|B2) != 0 {
			t.Fatalf("closeness behaviors fired in similarity-only mode: %v", a.Behaviors)
		}
		if a.Pair.Rater >= 10 && a.Behaviors&B3 != 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("disjoint-interest colluders should trigger B3")
	}
}

func TestPerRaterBaselineMode(t *testing.T) {
	f := newFixture()
	st := f.socialTrust(Config{Baseline: BaselinePerRater, MinProfileSize: 2})
	// Two intervals so the history builds rater profiles.
	for cycle := 0; cycle < 2; cycle++ {
		f.normalTraffic()
		f.collusionTraffic(50)
		st.Update(f.ledger.EndInterval())
	}
	report := st.LastReport()
	foundColluder := false
	for _, a := range report.Adjusted {
		if a.Pair.Rater >= 10 {
			foundColluder = true
		}
	}
	if !foundColluder {
		t.Fatal("per-rater baseline mode should still flag colluders")
	}
}

func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) []PairAdjustment {
		f := newFixture()
		f.normalTraffic()
		f.collusionTraffic(50)
		st := f.socialTrust(Config{Workers: workers})
		_, report := st.Adjust(f.ledger.EndInterval())
		return report.Adjusted
	}
	a, b := run(1), run(8)
	if len(a) != len(b) {
		t.Fatalf("worker counts disagree: %d vs %d adjustments", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("adjustment %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestDeviationGuards(t *testing.T) {
	if d := deviation(0.5, BaselineStats{}); d != 0 {
		t.Fatalf("empty baseline deviation = %v, want 0", d)
	}
	st := BaselineStats{Mean: 0.5, Min: 0.5, Max: 0.5, N: 3}
	if d := deviation(0.5, st); d != 0 {
		t.Fatalf("on-center degenerate deviation = %v, want 0", d)
	}
	if d := deviation(0.9, st); d < 10 {
		t.Fatalf("off-center degenerate deviation = %v, want large", d)
	}
	st = BaselineStats{Mean: 0.4, Min: 0.1, Max: 0.9, N: 5}
	want := (0.6 * 0.6) / (2 * 0.8 * 0.8)
	if d := deviation(1.0, st); math.Abs(d-want) > 1e-12 {
		t.Fatalf("deviation = %v, want %v", d, want)
	}
}

func TestGaussianWeightBoundedProperty(t *testing.T) {
	f := newFixture()
	st := f.socialTrust(Config{})
	prop := func(c, s, mean1, min1, max1, mean2, min2, max2 float64) bool {
		clamp := func(v float64) float64 { return math.Mod(math.Abs(v), 10) }
		b := baseline{
			closeness:  orderedStats(clamp(mean1), clamp(min1), clamp(max1)),
			similarity: orderedStats(clamp(mean2), clamp(min2), clamp(max2)),
		}
		w := st.gaussianWeight(0, pairSignals{closeness: clamp(c), similar: clamp(s)}, b)
		return w > 0 && w <= st.cfg.Alpha+1e-12 && !math.IsNaN(w)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// orderedStats builds a valid BaselineStats from three arbitrary values.
func orderedStats(a, b, c float64) BaselineStats {
	lo, mid, hi := a, b, c
	if lo > mid {
		lo, mid = mid, lo
	}
	if mid > hi {
		mid, hi = hi, mid
	}
	if lo > mid {
		lo, mid = mid, lo
	}
	return BaselineStats{Mean: mid, Min: lo, Max: hi, N: 3}
}

func TestAdjustedValuesNeverAmplifiedProperty(t *testing.T) {
	// The filter may shrink rating magnitudes, never grow them.
	f := newFixture()
	f.normalTraffic()
	f.collusionTraffic(60)
	for k := 0; k < 30; k++ {
		f.rate(3, 4, -1)
	}
	st := f.socialTrust(Config{})
	snap := f.ledger.EndInterval()
	adjusted, _ := st.Adjust(snap)
	for i := range adjusted.Ratings {
		if math.Abs(adjusted.Ratings[i].Value) > math.Abs(snap.Ratings[i].Value)+1e-12 {
			t.Fatalf("rating amplified: %+v -> %+v", snap.Ratings[i], adjusted.Ratings[i])
		}
		if adjusted.Ratings[i].Value*snap.Ratings[i].Value < 0 {
			t.Fatalf("rating sign flipped: %+v -> %+v", snap.Ratings[i], adjusted.Ratings[i])
		}
	}
}
