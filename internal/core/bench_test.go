package core

import "testing"

// BenchmarkAdjustWarmCache measures an Adjust pass on a quiescent graph with
// the signal cache hot: every pair's closeness/similarity comes out of the
// epoch-versioned cache and the pass reduces to thresholding and reweighting.
func BenchmarkAdjustWarmCache(b *testing.B) {
	st, snap := perfScenario(200, 1)
	st.Adjust(snap) // prime
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Adjust(snap)
	}
}

// BenchmarkAdjustColdCache is the same pass with the cache dropped before
// every iteration — each pair pays the full BFS/similarity computation. The
// warm/cold ratio in BENCH_perf.json is the headline number for the cache.
func BenchmarkAdjustColdCache(b *testing.B) {
	st, snap := perfScenario(200, 1)
	st.Adjust(snap)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Reset()
		st.Adjust(snap)
	}
}
