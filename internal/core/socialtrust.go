// Package core implements SocialTrust, the paper's contribution: a
// collusion-deterrence layer that wraps any reputation engine and re-weights
// suspicious ratings using two social signals, the social closeness Ωc and
// the interest similarity Ωs between rater and ratee.
//
// Per Section 4.3 of the paper, at the end of each reputation-update
// interval SocialTrust inspects the per-pair positive/negative rating
// frequencies t+(i,j), t−(i,j). Pairs exceeding the frequency thresholds are
// checked against the suspicious behaviors mined from the Overstock trace:
//
//	B1: frequent high ratings across a long social distance (Ωc very low)
//	B2: frequent high ratings to a low-reputed but socially very close peer
//	B3: frequent high ratings despite few common interests (Ωs very low)
//	B4: frequent low ratings to a peer with many common interests (Ωs high)
//
// A matching pair's ratings are shrunk by the two-dimensional Gaussian
// filter of Equation 9, centered on the expected closeness/similarity
// profile, and additionally frequency-normalized — a suspected pair's
// rating volume is scaled down to the average pair's frequency F, so spam
// volume cannot substitute for trust — before the wrapped engine sees them.
package core

import (
	"cmp"
	"fmt"
	"math"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"

	"socialtrust/internal/interest"
	"socialtrust/internal/obs"
	"socialtrust/internal/obs/event"
	"socialtrust/internal/obs/span"
	"socialtrust/internal/rating"
	"socialtrust/internal/reputation"
	"socialtrust/internal/socialgraph"
	"socialtrust/internal/stats"
)

// Filter metrics. socialtrust_filtered_total{behavior=...} counts ratings
// shrunk per suspicious behavior; a pair matching several behaviors counts
// toward each, so the series sum can exceed the number of distinct ratings
// adjusted (tracked by socialtrust_ratings_adjusted_total).
var (
	mFilteredByBehavior = map[Behavior]*obs.Counter{
		B1: obs.C(obs.Label("socialtrust_filtered_total", "behavior", "B1")),
		B2: obs.C(obs.Label("socialtrust_filtered_total", "behavior", "B2")),
		B3: obs.C(obs.Label("socialtrust_filtered_total", "behavior", "B3")),
		B4: obs.C(obs.Label("socialtrust_filtered_total", "behavior", "B4")),
	}
	mPairsAdjusted   = obs.C("socialtrust_pairs_adjusted_total")
	mRatingsAdjusted = obs.C("socialtrust_ratings_adjusted_total")
	mAdjustLat       = obs.H("socialtrust_adjust_seconds")
	mAdjustBlocks    = obs.C("socialtrust_adjust_parallel_blocks_total")
)

func init() {
	obs.Help("socialtrust_filtered_total", "Ratings shrunk per suspicious behavior (a pair matching several behaviors counts toward each).")
	obs.Help("socialtrust_pairs_adjusted_total", "Distinct rater-ratee pairs re-weighted by the filter.")
	obs.Help("socialtrust_ratings_adjusted_total", "Distinct ratings re-weighted by the filter.")
	obs.Help("socialtrust_adjust_seconds", "Wall time of one full Adjust pass.")
	obs.Help("socialtrust_adjust_parallel_blocks_total", "Pair blocks classified by the parallel Adjust path.")
}

// Behavior identifies which suspicious pattern a pair matched.
type Behavior int

// The four suspicious collusion behaviors of Section 3.
const (
	B1 Behavior = 1 << iota // distant pair, frequent high ratings
	B2                      // close pair, low-reputed ratee, frequent high ratings
	B3                      // few common interests, frequent high ratings
	B4                      // many common interests, frequent low ratings
)

// String renders the behavior set ("B1|B3").
func (b Behavior) String() string {
	if b == 0 {
		return "none"
	}
	names := []struct {
		bit  Behavior
		name string
	}{{B1, "B1"}, {B2, "B2"}, {B3, "B3"}, {B4, "B4"}}
	out := ""
	for _, n := range names {
		if b&n.bit != 0 {
			if out != "" {
				out += "|"
			}
			out += n.name
		}
	}
	return out
}

// BaselineMode selects what the Gaussian filter centers on.
type BaselineMode int

const (
	// BaselineSystem centers the filter on the empirical distribution of
	// Ωc/Ωs over non-suspicious transacting pairs in the current interval —
	// the paper's "average Ωc/Ωs of a pair of transaction peers in the
	// system based on the empirical result" (Sections 4.1–4.2, with the
	// Overstock calibration 0.423/1/0.13 as the worked example).
	BaselineSystem BaselineMode = iota
	// BaselinePerRater centers the filter on the rater's own profile over
	// the peers it has rated (the literal Ω̄ci of Equation 6), falling back
	// to the system baseline when the rater has rated too few peers for a
	// meaningful profile.
	BaselinePerRater
)

// Config parameterizes SocialTrust.
type Config struct {
	NumNodes int

	// Alpha is the Gaussian peak height α (paper: 1).
	Alpha float64
	// Theta scales adaptive frequency thresholds: a pair is
	// frequency-suspicious when its interval count exceeds θ·F, F being the
	// mean per-pair frequency (θ > 1; default 3). Ignored for a polarity
	// when the corresponding Fixed*Threshold is positive.
	Theta float64
	// FixedPosThreshold / FixedNegThreshold, when positive, pin T+t / T−t.
	FixedPosThreshold float64
	FixedNegThreshold float64
	// LowReputation is TR, below which a ratee counts as low-reputed for
	// B2. Zero means 2/NumNodes — twice the average normalized reputation,
	// which matches the paper's TR=0.01 at 200 nodes.
	LowReputation float64

	// Quantiles of the baseline closeness distribution defining "very
	// low"/"very high" closeness (Tcl, Tch). Defaults: 0.1/0.9. The
	// similarity gates Tsl/Tsh follow the paper's Section 4.2 rule and sit
	// at the baseline mean: B3 fires below it ("share few interests"), B4
	// at or above it ("share many interests").
	ClosenessLowQ, ClosenessHighQ float64

	// UseCloseness / UseSimilarity enable the two signal dimensions
	// (both true by default via New; disable one for ablations).
	UseCloseness, UseSimilarity bool

	// Closeness configures the Ωc computation; Closeness.Weighted selects
	// the falsification-resistant Equation 10.
	Closeness socialgraph.ClosenessParams
	// WeightedSimilarity selects the request-weighted Equation 11.
	WeightedSimilarity bool

	// Baseline selects the Gaussian centering mode.
	Baseline BaselineMode
	// MinProfileSize is the minimum rated-peer count for a usable
	// per-rater profile under BaselinePerRater (default 5).
	MinProfileSize int

	// Workers bounds the parallelism of per-pair signal computation
	// (0 = GOMAXPROCS).
	Workers int

	// FullRecompute disables every incremental shortcut: the signal and
	// profile caches are bypassed and all pair signals recompute from the
	// live graph each Adjust. It is the reference mode the incremental
	// engine is pinned bit-identical against
	// (TestIncrementalMatchesFullRecompute, TestFullSimIncrementalBitIdentity);
	// production deployments leave it false.
	FullRecompute bool
}

func (c Config) withDefaults() Config {
	if c.Alpha == 0 {
		c.Alpha = 1
	}
	if c.Theta == 0 {
		c.Theta = 3
	}
	if c.LowReputation == 0 && c.NumNodes > 0 {
		c.LowReputation = 2 / float64(c.NumNodes)
	}
	if c.ClosenessLowQ == 0 {
		c.ClosenessLowQ = 0.1
	}
	if c.ClosenessHighQ == 0 {
		c.ClosenessHighQ = 0.9
	}
	if c.MinProfileSize == 0 {
		c.MinProfileSize = 5
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Closeness.MaxPathHops == 0 {
		c.Closeness = socialgraph.DefaultClosenessParams()
	}
	return c
}

// PairAdjustment records how one directed pair was treated in an interval,
// for diagnostics, metrics and tests.
type PairAdjustment struct {
	Pair      rating.PairKey
	Weight    float64 // multiplicative factor applied to the pair's ratings
	Behaviors Behavior
	Closeness float64 // Ωc(i,j)
	Similar   float64 // Ωs(i,j)
}

// Report summarizes one interval's filtering pass.
type Report struct {
	// Adjusted lists every pair whose ratings were re-weighted (Weight<1).
	Adjusted []PairAdjustment
	// PosThreshold / NegThreshold are the frequency thresholds used.
	PosThreshold, NegThreshold float64
	// Baseline stats actually used for the Gaussian center.
	ClosenessBaseline, SimilarityBaseline BaselineStats
}

// BaselineStats describes the distribution the Gaussian centers on. The
// filter's width uses the robust [Lo,Hi] quantile range when available
// (falling back to Min/Max): a single legitimate heavy pair must not be able
// to stretch the bell so wide that extreme colluder signals pass through.
type BaselineStats struct {
	Mean, Min, Max float64
	Lo, Hi         float64 // robust range quantiles; both zero when unset
	N              int
}

// width returns the Gaussian's c parameter for these stats.
func (b BaselineStats) width() float64 {
	if b.Hi > b.Lo {
		return b.Hi - b.Lo
	}
	return b.Max - b.Min
}

// SocialTrust wraps a reputation engine with the collusion filter. It
// implements reputation.Engine itself, so it can be dropped anywhere an
// engine is expected.
type SocialTrust struct {
	cfg     Config
	graph   *socialgraph.Graph
	sets    []interest.Set
	tracker *interest.Tracker
	inner   reputation.Engine
	hist    *rating.History

	// lastMu guards last: Update (and Reset) publish the newest report
	// while observers call LastReport from other goroutines (stress
	// harnesses, metric scrapers). The Report value is copied out under the
	// lock; its Adjusted slice is freshly built per pass and never mutated
	// after publication, so readers may use it without further locking.
	lastMu sync.Mutex
	last   Report

	// intervals counts Adjust passes (mutated under adjustMu): the 1-based
	// interval stamped on flight-recorder FilterDecision events. When the
	// simulator drives one Update per simulation cycle this equals the
	// cycle number, aligning decision events with CycleSeries records.
	intervals uint64

	// sigCache memoizes per-pair signals keyed by the rater's closeness
	// version (closeVer below): a pair recomputes only when the graph
	// actually changed within its rater's closeness dependency radius, so
	// interval cost tracks activity, not N.
	sigCache *sigCache
	// closeVer holds one closeness version per rater. syncGraph (run at
	// the top of every Adjust) reads the graph's touch log since graphSeen,
	// walks the affected set — every node within depHops of a touched node —
	// and bumps exactly those raters' versions. When the touch log cannot
	// answer (overflow or a global mutation) every version bumps, which is
	// the old any-epoch-change-invalidates-everything behavior.
	closeVer  []uint64
	graphSeen uint64 // graph epoch the versions are synced to
	depHops   int    // closeness dependency radius: max(MaxHops, 2)
	// Reusable scratch for syncGraph's touch-log drain and affected-set BFS.
	touchScratch []socialgraph.NodeID
	affScratch   []socialgraph.NodeID
	seenScratch  []bool

	// profClose/profSim memoize per-rater baseline profiles, keyed by the
	// rater's closeness version and the rater's history version (bumped by
	// rating.History exactly when the rater's rated-peer set changes). They
	// are indexed by rater (not keyed by map) so the parallel classify
	// phase can fill distinct slots without locking — rater-aligned blocks
	// guarantee a single writer per slot.
	profClose []profCacheEntry
	profSim   []profCacheEntry

	// adjustMu serializes Adjust (and therefore Update), which reuses the
	// scratch buffers below across calls so a warm-cache interval allocates
	// almost nothing. lowUtil counts consecutive intervals whose pair count
	// stayed far below the scratch capacity (see maybeShrinkScratch).
	adjustMu     sync.Mutex
	pairScratch  []rating.PairKey
	sigScratch   []pairSignals
	missScratch  []sigMiss
	groupScratch []int
	closeVals    []float64
	simVals      []float64
	countScratch []rating.PairCounts
	behavScratch []Behavior
	gwScratch    []float64
	fsScratch    []float64
	blockScratch []int
	partScratch  []float64
	lowUtil      int
}

// profCacheEntry is one memoized per-rater baseline profile.
type profCacheEntry struct {
	valid    bool
	closeVer uint64 // rater closeness version (profClose only)
	histVer  uint64 // rater history version (rated-peer set)
	stats    BaselineStats
}

// sigMiss marks one pair of the current interval whose signals (or part of
// them) must be recomputed.
type sigMiss struct {
	idx  int   // position in the sorted pair slice
	need uint8 // needClose / needSim bits
}

const (
	needClose uint8 = 1 << iota
	needSim
)

var _ reputation.Engine = (*SocialTrust)(nil)

// New builds a SocialTrust filter around inner. sets must have one interest
// set per node; tracker may be nil when Config.WeightedSimilarity is false.
func New(cfg Config, graph *socialgraph.Graph, sets []interest.Set, tracker *interest.Tracker, inner reputation.Engine) *SocialTrust {
	if cfg.NumNodes <= 0 {
		panic("core: NumNodes must be positive")
	}
	if graph == nil || inner == nil {
		panic("core: graph and inner engine are required")
	}
	if len(sets) != cfg.NumNodes {
		panic(fmt.Sprintf("core: %d interest sets for %d nodes", len(sets), cfg.NumNodes))
	}
	if cfg.WeightedSimilarity && tracker == nil {
		panic("core: WeightedSimilarity requires a request tracker")
	}
	cfg = cfg.withDefaults()
	if !cfg.UseCloseness && !cfg.UseSimilarity {
		cfg.UseCloseness, cfg.UseSimilarity = true, true
	}
	dep := cfg.Closeness.MaxHops()
	if dep < 2 {
		// Margin: the common-friend branch of Ωc reads distance-2 state
		// regardless of the path cutoff.
		dep = 2
	}
	return &SocialTrust{
		cfg:       cfg,
		graph:     graph,
		sets:      sets,
		tracker:   tracker,
		inner:     inner,
		hist:      rating.NewHistory(cfg.NumNodes),
		sigCache:  newSigCache(),
		closeVer:  make([]uint64, cfg.NumNodes),
		graphSeen: graph.Epoch(), // cache is empty; nothing older to invalidate
		depHops:   dep,
		profClose: make([]profCacheEntry, cfg.NumNodes),
		profSim:   make([]profCacheEntry, cfg.NumNodes),
	}
}

// Name implements reputation.Engine.
func (s *SocialTrust) Name() string { return s.inner.Name() + "+SocialTrust" }

// Reset implements reputation.Engine, clearing both the filter history and
// the wrapped engine.
func (s *SocialTrust) Reset() {
	s.hist = rating.NewHistory(s.cfg.NumNodes)
	s.lastMu.Lock()
	s.last = Report{}
	s.lastMu.Unlock()
	s.adjustMu.Lock()
	s.intervals = 0
	s.adjustMu.Unlock()
	s.sigCache.reset()
	s.profClose = make([]profCacheEntry, s.cfg.NumNodes)
	s.profSim = make([]profCacheEntry, s.cfg.NumNodes)
	s.inner.Reset()
}

// FilterState is the filter's complete persistent state: the rating-profile
// history driving per-rater baselines and the interval counter stamped on
// FilterDecision events. The signal/profile caches are derived state — they
// rebuild from the graph and history on the first Adjust after a restore —
// so they are deliberately not part of the snapshot.
type FilterState struct {
	Hist      rating.HistoryState
	Intervals uint64
}

// ExportState deep-copies the filter state for snapshotting. The wrapped
// engine's state is exported separately by the caller (it is engine-specific).
func (s *SocialTrust) ExportState() FilterState {
	s.adjustMu.Lock()
	defer s.adjustMu.Unlock()
	return FilterState{Hist: s.hist.ExportState(), Intervals: s.intervals}
}

// ImportState restores a previously exported filter state bit-exactly. The
// caches are cleared so the next Adjust recomputes from restored history.
func (s *SocialTrust) ImportState(st FilterState) {
	s.adjustMu.Lock()
	defer s.adjustMu.Unlock()
	s.hist.ImportState(st.Hist)
	s.intervals = st.Intervals
	s.sigCache.reset()
	for i := range s.closeVer {
		s.closeVer[i] = 0
	}
	s.graphSeen = s.graph.Epoch()
	s.profClose = make([]profCacheEntry, s.cfg.NumNodes)
	s.profSim = make([]profCacheEntry, s.cfg.NumNodes)
}

// ResetNode implements reputation.Engine: the node's rating-profile history
// is forgotten here and the reset is forwarded to the wrapped engine. The
// caller is responsible for the social-graph side
// (Graph.RemoveNodeEdges) and the request tracker, which this filter only
// reads.
func (s *SocialTrust) ResetNode(node int) {
	// History bumps the per-rater versions of exactly the raters whose
	// rated-peer set lost this node, invalidating just their profiles.
	s.hist.ResetNode(node)
	s.inner.ResetNode(node)
}

// Reputations implements reputation.Engine by delegating to the wrapped
// engine (SocialTrust re-scales ratings, not the final vector).
func (s *SocialTrust) Reputations() []float64 { return s.inner.Reputations() }

// Reputation implements reputation.Engine.
func (s *SocialTrust) Reputation(node int) float64 { return s.inner.Reputation(node) }

// LastReport returns the filtering report of the most recent Update. It is
// safe to call concurrently with Update/Reset; the returned Report's
// Adjusted slice is immutable after publication and may be read freely.
func (s *SocialTrust) LastReport() Report {
	s.lastMu.Lock()
	defer s.lastMu.Unlock()
	return s.last
}

// Update filters the snapshot per Section 4.3 and forwards the adjusted
// ratings to the wrapped engine.
func (s *SocialTrust) Update(snap rating.Snapshot) {
	adjusted, report := s.Adjust(snap)
	s.lastMu.Lock()
	s.last = report
	s.lastMu.Unlock()
	// Profile history uses the original (unadjusted) ratings: the rater's
	// observed behavior, not the filtered view, defines its profile.
	asp := span.Ambient("core.absorb", span.PhaseAdjust).SetInt("ratings", int64(len(snap.Ratings)))
	s.hist.Absorb(snap.Ratings)
	asp.End()
	s.inner.Update(adjusted)
}

// pairSignals caches the social signals of one directed pair.
type pairSignals struct {
	closeness float64
	similar   float64
}

// Adjust computes per-pair weights for one interval snapshot and returns a
// new snapshot with re-weighted rating values plus the filtering report. It
// does not mutate the input and does not advance filter state, so it can be
// used standalone for what-if analysis. Concurrent Adjust calls serialize
// on an internal lock (they share the signal cache and scratch buffers).
func (s *SocialTrust) Adjust(snap rating.Snapshot) (rating.Snapshot, Report) {
	sp := mAdjustLat.Start()
	defer sp.End()
	s.adjustMu.Lock()
	defer s.adjustMu.Unlock()
	s.intervals++
	if !s.cfg.FullRecompute {
		s.syncGraph()
	}

	// Interval tracing: the adjust span hangs off the interval driver's
	// ambient context; sub-phase children share its phase, so only the
	// top-level span feeds the attribution ledger. Every site is nil-gated —
	// with tracing off each costs one atomic load (see BenchmarkSpanSiteDisabled)
	// and zero allocations (TestWarmAdjustAllocations pins the warm path).
	tsp := span.Ambient("core.adjust", span.PhaseAdjust)

	// Flight recorder: when enabled, every shrunk pair emits one
	// FilterDecision with its full evidence chain. rec is latched once so
	// the decision list and the emission agree even if the recorder is
	// toggled mid-pass; the disabled path costs one atomic load and never
	// allocates (the decisions slice stays nil).
	rec := event.Current()
	var decisions []event.FilterDecision
	var decIdx map[rating.PairKey]int

	pairs := s.pairScratch[:0]
	for k := range snap.Counts {
		pairs = append(pairs, k)
	}
	slices.SortFunc(pairs, func(a, b rating.PairKey) int {
		if c := cmp.Compare(a.Rater, b.Rater); c != 0 {
			return c
		}
		return cmp.Compare(a.Ratee, b.Ratee)
	})
	s.pairScratch = pairs[:0]

	if cap(s.sigScratch) < len(pairs) {
		s.sigScratch = make([]pairSignals, len(pairs))
	}
	signals := s.sigScratch[:len(pairs)]
	ssp := tsp.Child("adjust.signals", span.PhaseAdjust).SetInt("pairs", int64(len(pairs)))
	s.computeSignals(pairs, signals)
	ssp.End()

	// Hoist the per-pair count lookups out of every later phase: one pass
	// over fixed-size index blocks (concurrent map reads are safe) leaves a
	// slice aligned with the sorted pair order.
	if cap(s.countScratch) < len(pairs) {
		s.countScratch = make([]rating.PairCounts, len(pairs))
	}
	counts := s.countScratch[:len(pairs)]
	workers := s.cfg.Workers
	if len(pairs) < parallelMinPairs {
		workers = 1 // goroutine fan-out costs more than it saves
	}
	forFixedBlocks(len(pairs), adjustChunk, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			counts[i] = snap.Counts[pairs[i]]
		}
	})

	totalRatings := 0
	for _, c := range counts {
		totalRatings += c.Total()
	}
	bsp := tsp.Child("adjust.baseline", span.PhaseAdjust)
	posT, negT := s.thresholdsFrom(totalRatings, len(pairs))
	meanF := meanFrom(totalRatings, len(pairs))
	base := s.systemBaseline(signals, counts, posT, negT)
	bsp.End()

	// Closeness thresholds Tcl/Tch are percentiles of the baseline
	// population; the similarity gates sit at the baseline mean
	// (Section 4.2's (Ωs − Ω̄s) ≶ 0 rule).
	tcl, tch := quantiles(base.closenessValues, s.cfg.ClosenessLowQ, s.cfg.ClosenessHighQ)
	tsl, tsh := base.similarity.Mean, base.similarity.Mean
	if base.similarity.N == 0 {
		tsl, tsh = 0, math.Inf(1)
	}

	reps := s.inner.Reputations()

	report := Report{
		PosThreshold:       posT,
		NegThreshold:       negT,
		ClosenessBaseline:  base.closeness,
		SimilarityBaseline: base.similarity,
	}

	// Classify phase: behavior masks, Gaussian weights and frequency scales
	// land in index-aligned scratch, computed over contiguous rater-aligned
	// blocks. Per-pair results are independent, so the partition never
	// changes a value — it only decides which goroutine computes it — and
	// rater alignment makes each per-rater profile cache slot single-writer.
	if cap(s.behavScratch) < len(pairs) {
		s.behavScratch = make([]Behavior, len(pairs))
		s.gwScratch = make([]float64, len(pairs))
		s.fsScratch = make([]float64, len(pairs))
	}
	behav := s.behavScratch[:len(pairs)]
	gws := s.gwScratch[:len(pairs)]
	fss := s.fsScratch[:len(pairs)]

	target := 1
	if workers > 1 {
		target = workers * blocksPerWorker
	}
	blocks := raterBlocks(pairs, target, s.blockScratch)
	mAdjustBlocks.Add(int64(len(blocks) - 1))
	csp := tsp.Child("adjust.classify", span.PhaseAdjust).SetInt("blocks", int64(len(blocks)-1))
	forBlocks(blocks, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			c := counts[i]
			sig := signals[i]
			var behaviors Behavior
			// High-side comparisons are inclusive: similarity is a ratio of
			// small integers, so the top quantile is frequently attained
			// exactly (e.g. Tsh = 1.0) and a strict inequality would be
			// unreachable. The frequency gate already limits false positives.
			if float64(c.Positive) > posT {
				if s.cfg.UseCloseness && sig.closeness < tcl {
					behaviors |= B1
				}
				if s.cfg.UseCloseness && sig.closeness >= tch && reps[pairs[i].Ratee] < s.cfg.LowReputation {
					behaviors |= B2
				}
				if s.cfg.UseSimilarity && sig.similar < tsl {
					behaviors |= B3
				}
			}
			if float64(c.Negative) > negT {
				if s.cfg.UseSimilarity && sig.similar >= tsh {
					behaviors |= B4
				}
			}
			behav[i] = behaviors
			if behaviors == 0 {
				continue
			}
			// The Gaussian handles the social-signal anomaly; frequency
			// normalization handles the volume anomaly: once a pair is
			// suspected, its rating volume is scaled down to the average
			// pair's frequency F, so no flagged pair can out-shout a normal
			// one no matter how fast it rates.
			gws[i] = s.gaussianWeight(pairs[i].Rater, sig, base)
			fss[i] = freqScale(c, behaviors, meanF)
		}
	})
	csp.End()
	s.blockScratch = blocks[:0]

	// Ordered merge: one serial pass in sorted-pair order builds the weight
	// map, report and flight-recorder decisions, so metric totals, report
	// ordering and event streams are identical no matter how the classify
	// phase was partitioned.
	msp := tsp.Child("adjust.merge", span.PhaseAdjust)
	var weights map[rating.PairKey]float64
	for i, k := range pairs {
		behaviors := behav[i]
		if behaviors == 0 {
			continue
		}
		c := counts[i]
		mPairsAdjusted.Inc()
		mRatingsAdjusted.Add(int64(c.Total()))
		for bit, counter := range mFilteredByBehavior {
			if behaviors&bit == 0 {
				continue
			}
			// Shrunk ratings per behavior: the polarity that triggered it.
			if bit == B4 {
				counter.Add(int64(c.Negative))
			} else {
				counter.Add(int64(c.Positive))
			}
		}
		w := gws[i] * fss[i]
		if weights == nil {
			weights = make(map[rating.PairKey]float64)
		}
		weights[k] = w
		if rec != nil {
			// Re-derive the per-dimension stats for the evidence chain; the
			// profile caches are warm from the classify pass, so this is two
			// cache hits, not a recompute.
			_, closeBase, simBase := s.gaussianWeightBases(k.Rater, signals[i], base)
			if decIdx == nil {
				decIdx = make(map[rating.PairKey]int)
			}
			decIdx[k] = len(decisions)
			decisions = append(decisions, event.FilterDecision{
				Interval:            int(s.intervals),
				Rater:               k.Rater,
				Ratee:               k.Ratee,
				Mask:                int(behaviors),
				Behaviors:           behaviors.String(),
				Closeness:           signals[i].closeness,
				Similarity:          signals[i].similar,
				Positive:            c.Positive,
				Negative:            c.Negative,
				PosThreshold:        posT,
				NegThreshold:        negT,
				ClosenessBaseMean:   closeBase.Mean,
				ClosenessBaseWidth:  closeBase.width(),
				ClosenessBaseN:      closeBase.N,
				SimilarityBaseMean:  simBase.Mean,
				SimilarityBaseWidth: simBase.width(),
				SimilarityBaseN:     simBase.N,
				GaussianWeight:      gws[i],
				FreqScale:           fss[i],
				Weight:              w,
			})
		}
		report.Adjusted = append(report.Adjusted, PairAdjustment{
			Pair:      k,
			Weight:    w,
			Behaviors: behaviors,
			Closeness: signals[i].closeness,
			Similar:   signals[i].similar,
		})
	}

	msp.End()

	out := rating.Snapshot{
		Ratings: make([]rating.Rating, len(snap.Ratings)),
		Counts:  snap.Counts,
	}
	rsp := tsp.Child("adjust.rewrite", span.PhaseAdjust).SetInt("ratings", int64(len(snap.Ratings)))
	switch {
	case weights == nil:
		copy(out.Ratings, snap.Ratings)
	case rec == nil && workers > 1 && len(snap.Ratings) >= parallelMinPairs:
		// Each slot is written by exactly one goroutine and the weight map
		// is read-only here, so the parallel rewrite is race-free and
		// element-for-element identical to the serial loop.
		forFixedBlocks(len(snap.Ratings), adjustChunk, workers, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				r := snap.Ratings[i]
				if w, ok := weights[rating.PairKey{Rater: r.Rater, Ratee: r.Ratee}]; ok {
					r.Value *= w
				}
				out.Ratings[i] = r
			}
		})
	default:
		for i, r := range snap.Ratings {
			k := rating.PairKey{Rater: r.Rater, Ratee: r.Ratee}
			if w, ok := weights[k]; ok {
				if decIdx != nil {
					if di, ok := decIdx[k]; ok {
						decisions[di].PreValue += r.Value
						decisions[di].PostValue += r.Value * w
					}
				}
				r.Value *= w
			}
			out.Ratings[i] = r
		}
	}
	rsp.End()
	for i := range decisions {
		rec.RecordFilter(decisions[i])
	}
	s.maybeShrinkScratch(len(pairs))
	tsp.SetInt("pairs", int64(len(pairs))).SetInt("flagged", int64(len(report.Adjusted))).End()
	return out, report
}

// Parallel-phase tuning. parallelMinPairs gates goroutine fan-out: below
// it every phase runs serially even when Workers > 1, so the paper-scale
// 200-node warm path never pays spawn overhead. adjustChunk is the block
// size of the index-partitioned phases and blocksPerWorker oversizes the
// rater-aligned classify partition for load balance. None of these change
// results — they only decide which goroutine computes them.
const (
	parallelMinPairs = 2048
	adjustChunk      = 2048
	blocksPerWorker  = 4
)

// forCountedBlocks runs fn(b) for every block index in [0, nb), fanned over
// at most workers goroutines pulling indices from a shared counter; with
// workers <= 1 (or a single block) it is a plain loop with no goroutines.
func forCountedBlocks(nb, workers int, fn func(b int)) {
	if workers > nb {
		workers = nb
	}
	if workers <= 1 {
		for b := 0; b < nb; b++ {
			fn(b)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				b := int(next.Add(1)) - 1
				if b >= nb {
					return
				}
				fn(b)
			}
		}()
	}
	wg.Wait()
}

// forFixedBlocks covers [0, n) in fixed chunks of size chunk.
func forFixedBlocks(n, chunk, workers int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	nb := (n + chunk - 1) / chunk
	forCountedBlocks(nb, workers, func(b int) {
		lo := b * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		fn(lo, hi)
	})
}

// forBlocks covers the half-open ranges [bounds[b], bounds[b+1]).
func forBlocks(bounds []int, workers int, fn func(lo, hi int)) {
	forCountedBlocks(len(bounds)-1, workers, func(b int) {
		fn(bounds[b], bounds[b+1])
	})
}

// raterBlocks partitions the rater-sorted pair list into at most target
// contiguous ranges, advancing every cut to the next rater boundary so one
// rater's run never spans two blocks — that rater's profile-cache slot then
// has exactly one writer during the parallel classify phase.
func raterBlocks(pairs []rating.PairKey, target int, scratch []int) []int {
	bounds := append(scratch[:0], 0)
	if len(pairs) == 0 {
		return bounds
	}
	if target < 1 {
		target = 1
	}
	step := (len(pairs) + target - 1) / target
	for pos := 0; pos < len(pairs); {
		cut := pos + step
		if cut >= len(pairs) {
			cut = len(pairs)
		} else {
			for cut < len(pairs) && pairs[cut].Rater == pairs[cut-1].Rater {
				cut++
			}
		}
		bounds = append(bounds, cut)
		pos = cut
	}
	return bounds
}

// Scratch-shrink policy: one huge interval must not pin peak-sized scratch
// forever. When the pair count stays under a quarter of the scratch
// capacity for shrinkAfter consecutive intervals, every per-pair buffer is
// reallocated near current demand; buffers at or below shrinkMinCap are
// never churned.
const (
	shrinkMinCap = 1024
	shrinkAfter  = 4
)

func (s *SocialTrust) maybeShrinkScratch(nPairs int) {
	if cap(s.pairScratch) <= shrinkMinCap || nPairs*4 >= cap(s.pairScratch) {
		s.lowUtil = 0
		return
	}
	if s.lowUtil++; s.lowUtil < shrinkAfter {
		return
	}
	s.lowUtil = 0
	c := nPairs * 2
	if c < shrinkMinCap {
		c = shrinkMinCap
	}
	s.pairScratch = make([]rating.PairKey, 0, c)
	s.sigScratch = make([]pairSignals, 0, c)
	s.missScratch = make([]sigMiss, 0, c)
	s.countScratch = make([]rating.PairCounts, 0, c)
	s.behavScratch = make([]Behavior, 0, c)
	s.gwScratch = make([]float64, 0, c)
	s.fsScratch = make([]float64, 0, c)
	s.closeVals = make([]float64, 0, c)
	s.simVals = make([]float64, 0, c)
}

// syncGraph brings the per-rater closeness versions up to date with the
// graph: it drains the touch log accumulated since the last sync, walks the
// affected set — every node within depHops friendship hops of a touched
// node, the dependency radius of one closeness computation — and bumps
// exactly those raters' versions, so their cached signals and profiles stop
// matching. When the touch log cannot answer (overflow, or a global
// mutation such as ResetInteractions) every version bumps: full
// invalidation, the pre-incremental behavior. Runs under adjustMu; on a
// quiescent graph it is a single atomic load.
func (s *SocialTrust) syncGraph() {
	epoch := s.graph.Epoch()
	if epoch == s.graphSeen {
		return
	}
	touched, ok := s.graph.TouchedSince(s.graphSeen, s.touchScratch[:0])
	s.touchScratch = touched[:0]
	switch {
	case !ok:
		for i := range s.closeVer {
			s.closeVer[i]++
		}
	case len(touched) > 0:
		if s.seenScratch == nil {
			s.seenScratch = make([]bool, s.cfg.NumNodes)
		}
		aff := s.graph.WithinHops(touched, s.depHops, s.seenScratch, s.affScratch[:0])
		s.affScratch = aff[:0]
		for _, r := range aff {
			s.closeVer[r]++
		}
	}
	s.graphSeen = epoch
}

// computeSignals fills out[i] with Ωc and Ωs for pairs[i]. Pairs whose
// signals are cached at their rater's current closeness version are served
// without touching the graph; the misses are grouped by rater (pairs arrive
// rater-sorted) and each rater group runs one batched ClosenessFrom — one
// shared BFS and common-friend index per rater instead of one per pair —
// with the groups fanned out across Workers. Results are bit-identical to
// the direct per-pair path on a quiescent graph. Under Config.FullRecompute
// the cache is bypassed entirely and every pair recomputes.
func (s *SocialTrust) computeSignals(pairs []rating.PairKey, out []pairSignals) {
	simStatic := s.cfg.UseSimilarity && !s.cfg.WeightedSimilarity

	miss := s.missScratch[:0]
	var hits, misses int64
	for i, k := range pairs {
		var sig pairSignals
		ok := false
		if !s.cfg.FullRecompute {
			sig, ok = s.sigCache.get(k, s.closeVer[k.Rater])
		}
		var need uint8
		if !ok {
			if s.cfg.UseCloseness {
				need |= needClose
			}
			if s.cfg.UseSimilarity {
				need |= needSim
			}
		} else if s.cfg.UseSimilarity && !simStatic {
			// Weighted similarity reads the live request tracker and is
			// recomputed on every pass; only closeness is served cached.
			need |= needSim
			sig.similar = 0
		}
		out[i] = sig
		if need&needClose != 0 || (need&needSim != 0 && simStatic) {
			misses++
		} else {
			hits++
		}
		if need != 0 {
			miss = append(miss, sigMiss{idx: i, need: need})
		}
	}
	s.missScratch = miss[:0]
	mSigCacheHits.Add(hits)
	mSigCacheMisses.Add(misses)
	mPairsSkipped.Add(hits)
	mDirtyPairs.Observe(float64(misses))
	if len(miss) == 0 {
		return
	}

	// Group boundaries over the miss list: pairs are rater-sorted and the
	// miss list preserves their order, so each rater's misses are one run.
	groups := append(s.groupScratch[:0], 0)
	for t := 1; t < len(miss); t++ {
		if pairs[miss[t].idx].Rater != pairs[miss[t-1].idx].Rater {
			groups = append(groups, t)
		}
	}
	groups = append(groups, len(miss))
	s.groupScratch = groups[:0]

	nGroups := len(groups) - 1
	workers := s.cfg.Workers
	if workers > nGroups {
		workers = nGroups
	}
	if workers <= 1 {
		for gi := 0; gi < nGroups; gi++ {
			s.computeMissGroup(pairs, out, miss[groups[gi]:groups[gi+1]])
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				gi := int(next.Add(1)) - 1
				if gi >= nGroups {
					return
				}
				s.computeMissGroup(pairs, out, miss[groups[gi]:groups[gi+1]])
			}
		}()
	}
	wg.Wait()
}

// computeMissGroup recomputes the missing signals of one rater's pairs and
// stores them in the cache at the rater's current closeness version. All
// miss entries share the same rater; closeness goes through the batched
// single-source path.
func (s *SocialTrust) computeMissGroup(pairs []rating.PairKey, out []pairSignals, miss []sigMiss) {
	rater := pairs[miss[0].idx].Rater
	var ratees []socialgraph.NodeID
	var slots []int
	for _, m := range miss {
		if m.need&needClose != 0 {
			ratees = append(ratees, socialgraph.NodeID(pairs[m.idx].Ratee))
			slots = append(slots, m.idx)
		}
	}
	if len(ratees) > 0 {
		cs := s.graph.ClosenessFrom(socialgraph.NodeID(rater), ratees, s.cfg.Closeness)
		for x, idx := range slots {
			out[idx].closeness = cs[x]
		}
	}
	for _, m := range miss {
		if m.need&needSim == 0 {
			continue
		}
		k := pairs[m.idx]
		if s.cfg.WeightedSimilarity {
			out[m.idx].similar = interest.WeightedSimilarity(s.sets[k.Rater], s.sets[k.Ratee], k.Rater, k.Ratee, s.tracker)
		} else {
			out[m.idx].similar = interest.Similarity(s.sets[k.Rater], s.sets[k.Ratee])
		}
	}
	if s.cfg.FullRecompute {
		return // reference mode: never populate the cache
	}
	ver := s.closeVer[rater]
	for _, m := range miss {
		// Storing a weighted-similarity value is harmless: get() never
		// serves it (the !simStatic branch above recomputes similarity).
		s.sigCache.put(pairs[m.idx], ver, out[m.idx])
	}
}

// thresholdsFrom derives T+t and T−t for an interval with total ratings
// spread over n transacting pairs. The paper defines the suspicion cut as
// θ·F where F is "the average rating frequency from one node to another
// node in the system"; we compute F as the mean total rating count over all
// transacting pairs, so no single polarity's attacker can inflate its own
// threshold.
func (s *SocialTrust) thresholdsFrom(total, n int) (pos, neg float64) {
	pos, neg = s.cfg.FixedPosThreshold, s.cfg.FixedNegThreshold
	if pos > 0 && neg > 0 {
		return pos, neg
	}
	f := meanFrom(total, n)
	if pos <= 0 {
		pos = s.cfg.Theta * f
	}
	if neg <= 0 {
		neg = s.cfg.Theta * f
	}
	return pos, neg
}

// baseline aggregates the empirical signal distribution over non-suspicious
// pairs (frequency within thresholds), the population the Gaussian centers
// on under BaselineSystem.
type baseline struct {
	closeness        BaselineStats
	similarity       BaselineStats
	closenessValues  []float64
	similarityValues []float64
}

func (s *SocialTrust) systemBaseline(signals []pairSignals, counts []rating.PairCounts,
	posT, negT float64) baseline {

	// The value slices live in reusable scratch (consumers copy before
	// sorting); only capacity persists across calls. The append order is the
	// sorted-pair order regardless of Workers, which the blocked mean below
	// relies on.
	b := baseline{closenessValues: s.closeVals[:0], similarityValues: s.simVals[:0]}
	for i, c := range counts {
		if float64(c.Positive) > posT || float64(c.Negative) > negT {
			continue // frequency-suspicious pairs must not pollute the baseline
		}
		b.closenessValues = append(b.closenessValues, signals[i].closeness)
		b.similarityValues = append(b.similarityValues, signals[i].similar)
	}
	s.closeVals, s.simVals = b.closenessValues[:0], b.similarityValues[:0]
	b.closeness = s.summarizeBaseline(b.closenessValues)
	b.similarity = s.summarizeBaseline(b.similarityValues)
	return b
}

func (s *SocialTrust) summarizeBaseline(xs []float64) BaselineStats {
	if len(xs) == 0 {
		return BaselineStats{}
	}
	lo, hi, _ := stats.MinMax(xs)
	p05, _ := stats.Percentile(xs, 5)
	p95, _ := stats.Percentile(xs, 95)
	return BaselineStats{Mean: s.blockedMean(xs), Min: lo, Max: hi, Lo: p05, Hi: p95, N: len(xs)}
}

// meanBlock is the fixed accumulation granularity of the deterministic
// baseline mean: partial sums are formed over consecutive meanBlock-sized
// runs of the value sequence and reduced in run order, so the float result
// depends only on the sequence — never on Workers. At or below one block
// this is exactly the serial sum (stats.Mean), keeping small-N results
// bit-identical to the pre-parallel code.
const meanBlock = 4096

func (s *SocialTrust) blockedMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	nb := (len(xs) + meanBlock - 1) / meanBlock
	if cap(s.partScratch) < nb {
		s.partScratch = make([]float64, nb)
	}
	parts := s.partScratch[:nb]
	forCountedBlocks(nb, s.cfg.Workers, func(b int) {
		lo := b * meanBlock
		hi := lo + meanBlock
		if hi > len(xs) {
			hi = len(xs)
		}
		sum := 0.0
		for _, v := range xs[lo:hi] {
			sum += v
		}
		parts[b] = sum
	})
	total := 0.0
	for _, p := range parts {
		total += p
	}
	return total / float64(len(xs))
}

func quantiles(xs []float64, loQ, hiQ float64) (lo, hi float64) {
	if len(xs) == 0 {
		return 0, math.Inf(1) // no baseline: nothing counts as "very low/high"
	}
	lo, _ = stats.Percentile(xs, loQ*100)
	hi, _ = stats.Percentile(xs, hiQ*100)
	return lo, hi
}

// gaussianWeight evaluates the combined filter of Equation 9:
//
//	w = α · exp(−[(Ωc−Ω̄c)²/(2|maxΩc−minΩc|²) + (Ωs−Ω̄s)²/(2|maxΩs−minΩs|²)])
//
// The center/range come from the configured baseline mode. A degenerate
// range (max == min) keeps the weight at α when the value sits on the
// center and collapses it to ~0 otherwise.
func (s *SocialTrust) gaussianWeight(rater int, sig pairSignals, base baseline) float64 {
	w, _, _ := s.gaussianWeightBases(rater, sig, base)
	return w
}

// gaussianWeightBases is gaussianWeight plus the baseline stats actually
// chosen per dimension (system or per-rater profile) — the evidence the
// flight recorder attaches to each FilterDecision. A disabled dimension
// returns zero-value stats (N == 0).
func (s *SocialTrust) gaussianWeightBases(rater int, sig pairSignals, base baseline) (float64, BaselineStats, BaselineStats) {
	exponent := 0.0
	var closeSt, simSt BaselineStats
	if s.cfg.UseCloseness {
		closeSt = s.chooseBaseline(rater, base.closeness, s.profileCloseness)
		exponent += deviation(sig.closeness, closeSt)
	}
	if s.cfg.UseSimilarity {
		simSt = s.chooseBaseline(rater, base.similarity, s.profileSimilarity)
		exponent += deviation(sig.similar, simSt)
	}
	return s.cfg.Alpha * math.Exp(-exponent), closeSt, simSt
}

// chooseBaseline resolves the Gaussian center: the system baseline, or the
// rater's own profile when configured and large enough.
func (s *SocialTrust) chooseBaseline(rater int, system BaselineStats, profile func(int) BaselineStats) BaselineStats {
	if s.cfg.Baseline == BaselineSystem {
		return system
	}
	p := profile(rater)
	if p.N < s.cfg.MinProfileSize {
		return system
	}
	return p
}

func (s *SocialTrust) profileCloseness(rater int) BaselineStats {
	cv, hv := s.closeVer[rater], s.hist.Version(rater)
	if !s.cfg.FullRecompute {
		if e := &s.profClose[rater]; e.valid && e.closeVer == cv && e.histVer == hv {
			return e.stats
		}
	}
	peers := s.hist.RateesOf(rater)
	ids := make([]socialgraph.NodeID, len(peers))
	for i, p := range peers {
		ids[i] = socialgraph.NodeID(p)
	}
	prof := s.graph.ProfileCloseness(socialgraph.NodeID(rater), ids, s.cfg.Closeness)
	st := BaselineStats{Mean: prof.Mean, Min: prof.Min, Max: prof.Max, N: prof.N}
	if !s.cfg.FullRecompute {
		s.profClose[rater] = profCacheEntry{valid: true, closeVer: cv, histVer: hv, stats: st}
	}
	return st
}

func (s *SocialTrust) profileSimilarity(rater int) BaselineStats {
	// Unweighted similarity profiles depend only on the (static) interest
	// sets and the rating history, so the rater's history version alone keys
	// the cache; the weighted form reads the live request tracker and is
	// never cached.
	static := !s.cfg.WeightedSimilarity && !s.cfg.FullRecompute
	hv := s.hist.Version(rater)
	if static {
		if e := &s.profSim[rater]; e.valid && e.histVer == hv {
			return e.stats
		}
	}
	peers := s.hist.RateesOf(rater)
	prof := interest.ProfileSimilarity(s.sets[rater], rater, peers, s.sets, s.cfg.WeightedSimilarity, s.tracker)
	st := BaselineStats{Mean: prof.Mean, Min: prof.Min, Max: prof.Max, N: prof.N}
	if static {
		s.profSim[rater] = profCacheEntry{valid: true, histVer: hv, stats: st}
	}
	return st
}

// freqScale returns the frequency-normalization factor min(1, F/t) for the
// polarity (or polarities) that triggered detection, F being the mean
// per-pair rating frequency of the interval.
func freqScale(c rating.PairCounts, behaviors Behavior, meanF float64) float64 {
	scale := 1.0
	if behaviors&(B1|B2|B3) != 0 && float64(c.Positive) > meanF {
		scale = meanF / float64(c.Positive)
	}
	if behaviors&B4 != 0 && float64(c.Negative) > meanF {
		if s := meanF / float64(c.Negative); s < scale {
			scale = s
		}
	}
	return scale
}

// meanPairFrequency computes F, the mean total rating count per transacting
// pair in the interval (floored at 1).
func meanPairFrequency(counts map[rating.PairKey]rating.PairCounts) float64 {
	total := 0
	for _, c := range counts {
		total += c.Total()
	}
	return meanFrom(total, len(counts))
}

// meanFrom is meanPairFrequency over precomputed totals.
func meanFrom(total, n int) float64 {
	if n == 0 {
		return 1
	}
	f := float64(total) / float64(n)
	if f < 1 {
		f = 1
	}
	return f
}

// deviation is one exponent term of Equation 9 with a guarded denominator.
func deviation(x float64, st BaselineStats) float64 {
	if st.N == 0 {
		return 0
	}
	d := x - st.Mean
	rng := st.width()
	if rng < 1e-12 {
		if math.Abs(d) < 1e-12 {
			return 0
		}
		return 50 // effectively zero weight
	}
	exp := (d * d) / (2 * rng * rng)
	if exp > 50 {
		exp = 50
	}
	return exp
}
