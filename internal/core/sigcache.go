package core

import (
	"sync"

	"socialtrust/internal/obs"
	"socialtrust/internal/rating"
)

// Cache effectiveness metrics. A pair counts as a hit when every cacheable
// signal it needs was served from the cache (weighted similarity is never
// cacheable — the request tracker mutates without an epoch signal — and is
// excluded from the accounting). socialtrust_pairs_skipped_total is the
// incremental-engine view of the same event: a clean pair whose previous
// signals were reused instead of recomputed; socialtrust_dirty_pairs is the
// per-interval distribution of the dirty-set size (pairs that recomputed).
var (
	mSigCacheHits   = obs.C("signal_cache_hits_total")
	mSigCacheMisses = obs.C("signal_cache_misses_total")
	mPairsSkipped   = obs.C("socialtrust_pairs_skipped_total")
	mDirtyPairs     = obs.H("socialtrust_dirty_pairs",
		1, 4, 16, 64, 256, 1024, 4096, 16384, 65536, 262144)
)

func init() {
	obs.Help("signal_cache_hits_total", "Pairs whose cacheable social signals were all served from the cache.")
	obs.Help("signal_cache_misses_total", "Pairs that recomputed at least one cacheable social signal.")
	obs.Help("socialtrust_pairs_skipped_total", "Clean pairs per Adjust whose previous interval's signals were reused unchanged.")
	obs.Help("socialtrust_dirty_pairs", "Per-Adjust dirty-set size: pairs whose signals were recomputed.")
}

const sigCacheShards = 32

// sigCacheEntry holds one directed pair's memoized social signals, valid
// only while the rater's closeness version matches. The filter maintains
// one version per rater (SocialTrust.closeVer), bumped exactly when a graph
// mutation lands within the rater's closeness dependency radius
// (Graph.WithinHops over the touch log), so a matching version proves the
// closeness inputs are unchanged — without globally invalidating on every
// epoch movement the way the previous (PairKey, epoch) keying did.
// Unweighted similarity is a pure function of the (immutable after
// construction) interest sets, so revalidating it by closeness version is
// only conservative.
type sigCacheEntry struct {
	ver uint64
	sig pairSignals
}

// sigCache is a sharded (PairKey, rater-closeness-version)-keyed memo of
// pair signals. Sharding keeps the computeSignals worker fan-out from
// serializing on a single lock while workers store freshly computed misses.
type sigCache struct {
	shards [sigCacheShards]sigCacheShard
}

type sigCacheShard struct {
	mu sync.Mutex
	m  map[rating.PairKey]sigCacheEntry
}

func newSigCache() *sigCache {
	c := &sigCache{}
	for i := range c.shards {
		c.shards[i].m = make(map[rating.PairKey]sigCacheEntry)
	}
	return c
}

func (c *sigCache) shard(k rating.PairKey) *sigCacheShard {
	h := uint64(k.Rater)*0x9e3779b97f4a7c15 ^ uint64(k.Ratee)*0xbf58476d1ce4e5b9
	return &c.shards[h%sigCacheShards]
}

// get returns the cached signals for k if they were computed at the given
// rater closeness version.
func (c *sigCache) get(k rating.PairKey, ver uint64) (pairSignals, bool) {
	s := c.shard(k)
	s.mu.Lock()
	e, ok := s.m[k]
	s.mu.Unlock()
	if !ok || e.ver != ver {
		return pairSignals{}, false
	}
	return e.sig, true
}

// put stores the signals for k computed at the given rater closeness
// version.
func (c *sigCache) put(k rating.PairKey, ver uint64, sig pairSignals) {
	s := c.shard(k)
	s.mu.Lock()
	s.m[k] = sigCacheEntry{ver: ver, sig: sig}
	s.mu.Unlock()
}

// reset drops every entry (used by SocialTrust.Reset).
func (c *sigCache) reset() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.m = make(map[rating.PairKey]sigCacheEntry)
		s.mu.Unlock()
	}
}
