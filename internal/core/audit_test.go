package core

import (
	"math"
	"sync"
	"testing"

	"socialtrust/internal/obs/event"
	"socialtrust/internal/rating"
)

// TestAdjustEmitsFilterDecisions pins the flight-recorder contract of
// Adjust: one FilterDecision per shrunk pair, fully populated and in
// agreement with the returned Report.
func TestAdjustEmitsFilterDecisions(t *testing.T) {
	f := newFixture()
	f.normalTraffic()
	f.collusionTraffic(50)
	st := f.socialTrust(Config{})
	snap := f.ledger.EndInterval()

	event.Enable(1 << 10)
	defer event.Disable()

	_, report := st.Adjust(snap)
	if len(report.Adjusted) == 0 {
		t.Fatal("fixture produced no adjusted pairs")
	}
	events := event.Drain()
	if len(events) != len(report.Adjusted) {
		t.Fatalf("%d events for %d adjusted pairs", len(events), len(report.Adjusted))
	}

	byPair := make(map[rating.PairKey]event.FilterDecision)
	for _, e := range events {
		d := e.Filter
		if d == nil {
			t.Fatalf("non-filter event in Adjust stream: %+v", e)
		}
		byPair[rating.PairKey{Rater: d.Rater, Ratee: d.Ratee}] = *d
	}
	// Interval frequency sums per pair, for the pre-value check.
	for _, a := range report.Adjusted {
		d, ok := byPair[a.Pair]
		if !ok {
			t.Fatalf("adjusted pair %+v has no decision event", a.Pair)
		}
		if d.Interval != 1 {
			t.Errorf("pair %+v: interval = %d, want 1", a.Pair, d.Interval)
		}
		if Behavior(d.Mask) != a.Behaviors || d.Behaviors != a.Behaviors.String() {
			t.Errorf("pair %+v: behaviors %q (mask %d), want %q", a.Pair, d.Behaviors, d.Mask, a.Behaviors)
		}
		if d.Closeness != a.Closeness || d.Similarity != a.Similar {
			t.Errorf("pair %+v: signals (%g,%g) != report (%g,%g)",
				a.Pair, d.Closeness, d.Similarity, a.Closeness, a.Similar)
		}
		if d.Weight != a.Weight {
			t.Errorf("pair %+v: weight %g != report %g", a.Pair, d.Weight, a.Weight)
		}
		if math.Abs(d.GaussianWeight*d.FreqScale-d.Weight) > 1e-12 {
			t.Errorf("pair %+v: gaussian %g × freq %g != weight %g",
				a.Pair, d.GaussianWeight, d.FreqScale, d.Weight)
		}
		if d.PosThreshold != report.PosThreshold || d.NegThreshold != report.NegThreshold {
			t.Errorf("pair %+v: thresholds (%g,%g), want (%g,%g)",
				a.Pair, d.PosThreshold, d.NegThreshold, report.PosThreshold, report.NegThreshold)
		}
		// Frequency evidence must actually exceed the triggering threshold.
		if float64(d.Positive) <= report.PosThreshold && float64(d.Negative) <= report.NegThreshold {
			t.Errorf("pair %+v: frequencies (%d,%d) below both thresholds", a.Pair, d.Positive, d.Negative)
		}
		// Both dimensions are on in the default config: the baselines the
		// Gaussian centered on must be populated.
		if d.ClosenessBaseN == 0 || d.SimilarityBaseN == 0 {
			t.Errorf("pair %+v: empty baseline evidence %+v", a.Pair, d)
		}
		if d.PreValue == 0 {
			t.Errorf("pair %+v: zero pre-value", a.Pair)
		}
		if math.Abs(d.PostValue-d.PreValue*d.Weight) > 1e-9 {
			t.Errorf("pair %+v: post %g != pre %g × weight %g", a.Pair, d.PostValue, d.PreValue, d.Weight)
		}
	}

	// The interval sequence advances per pass and rewinds on Reset.
	_, _ = st.Adjust(snap)
	events = event.Drain()
	if len(events) == 0 || events[0].Filter.Interval != 2 {
		t.Fatalf("second pass interval = %+v, want 2", events)
	}
	st.Reset()
	_, _ = st.Adjust(snap)
	events = event.Drain()
	if len(events) == 0 || events[0].Filter.Interval != 1 {
		t.Fatalf("post-Reset interval = %+v, want 1", events)
	}
}

// TestAdjustRecorderDisabled: with no recorder installed, Adjust emits
// nothing and the global drain stays empty.
func TestAdjustRecorderDisabled(t *testing.T) {
	if event.Enabled() {
		t.Skip("a recorder is installed globally")
	}
	f := newFixture()
	f.normalTraffic()
	f.collusionTraffic(50)
	st := f.socialTrust(Config{})
	_, report := st.Adjust(f.ledger.EndInterval())
	if len(report.Adjusted) == 0 {
		t.Fatal("fixture produced no adjusted pairs")
	}
	if got := event.Drain(); got != nil {
		t.Fatalf("disabled recorder drained %d events", len(got))
	}
}

// TestLastReportConcurrent exercises the LastReport/Update/Reset
// concurrency contract under -race: readers may observe the latest report
// while the engine keeps updating.
func TestLastReportConcurrent(t *testing.T) {
	f := newFixture()
	f.normalTraffic()
	f.collusionTraffic(30)
	st := f.socialTrust(Config{})
	snap := f.ledger.EndInterval()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rep := st.LastReport()
				for _, a := range rep.Adjusted {
					_ = a.Weight // walk the slice: it must be immutable
				}
			}
		}()
	}
	for i := 0; i < 25; i++ {
		st.Update(snap)
	}
	st.Reset()
	st.Update(snap)
	close(stop)
	wg.Wait()
	if len(st.LastReport().Adjusted) == 0 {
		t.Fatal("final report lost the adjusted pairs")
	}
}
