package core

import (
	"reflect"
	"testing"

	"socialtrust/internal/interest"
	"socialtrust/internal/rating"
	"socialtrust/internal/reputation/ebay"
	"socialtrust/internal/socialgraph"
	"socialtrust/internal/xrand"
)

// incrementalPair builds two filters over independent but identically
// constructed worlds — one incremental, one FullRecompute — plus a mutator
// that applies the same graph operation to both.
func incrementalPair(n, workers int) (inc, ref *SocialTrust, both func(fn func(g *socialgraph.Graph))) {
	build := func(full bool) *SocialTrust {
		g := socialgraph.New(n)
		sets := make([]interest.Set, n)
		rng := xrand.New(5)
		for i := 0; i < n; i++ {
			g.AddRelationship(socialgraph.NodeID(i), socialgraph.NodeID((i+1)%n),
				socialgraph.Relationship{Kind: socialgraph.Friendship})
			j := rng.Intn(n)
			if j != i {
				g.AddRelationship(socialgraph.NodeID(i), socialgraph.NodeID(j),
					socialgraph.Relationship{Kind: socialgraph.Colleague})
			}
			sets[i] = interest.NewSet(interest.Category(i%5), interest.Category(i%11))
		}
		return New(Config{NumNodes: n, Workers: workers, FullRecompute: full},
			g, sets, interest.NewTracker(n), ebay.New(n))
	}
	inc, ref = build(false), build(true)
	both = func(fn func(g *socialgraph.Graph)) {
		fn(inc.graph)
		fn(ref.graph)
	}
	return inc, ref, both
}

// intervalSnapshot builds one reproducible interval of spread-out ratings.
func intervalSnapshot(rng *xrand.Stream, n, ratings int) rating.Snapshot {
	led := rating.NewLedger(n)
	for k := 0; k < ratings; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		v := 1.0
		if rng.Intn(5) == 0 {
			v = -1
		}
		if err := led.Add(rating.Rating{Rater: i, Ratee: j, Value: v, Cycle: k}); err != nil {
			panic(err)
		}
	}
	return led.EndInterval()
}

// TestIncrementalMatchesFullRecompute drives an interval sequence through
// every graph-mutation class — interaction recording, edge insertion, node
// edge removal, a global interaction reset — and pins that the incremental
// filter's adjusted snapshots and reports are deep-equal (float-for-float)
// to the FullRecompute reference at every step, for serial and parallel
// Adjust.
func TestIncrementalMatchesFullRecompute(t *testing.T) {
	for _, workers := range []int{1, 8} {
		t.Run(map[int]string{1: "serial", 8: "parallel"}[workers], func(t *testing.T) {
			const n = 120
			inc, ref, both := incrementalPair(n, workers)
			rng := xrand.New(17)
			mutate := []func(g *socialgraph.Graph){
				nil, // quiescent interval: pure cache reuse
				func(g *socialgraph.Graph) {
					for i := 0; i < 10; i++ {
						g.RecordInteraction(socialgraph.NodeID(i), socialgraph.NodeID(i+1), 1)
					}
				},
				func(g *socialgraph.Graph) {
					g.AddRelationship(3, 77, socialgraph.Relationship{Kind: socialgraph.Friendship})
				},
				nil,
				func(g *socialgraph.Graph) { g.RemoveNodeEdges(50) },
				func(g *socialgraph.Graph) { g.ResetInteractions() },
				nil,
			}
			for step, fn := range mutate {
				if fn != nil {
					both(fn)
				}
				// Adjust never mutates its input, so both filters can share
				// one snapshot value.
				snap := intervalSnapshot(rng, n, 400)
				gotOut, gotRep := inc.Adjust(snap)
				wantOut, wantRep := ref.Adjust(snap)
				if !reflect.DeepEqual(gotOut, wantOut) {
					t.Fatalf("step %d: adjusted snapshots diverge", step)
				}
				if !reflect.DeepEqual(gotRep, wantRep) {
					t.Fatalf("step %d: reports diverge:\nincremental: %+v\nreference:   %+v", step, gotRep, wantRep)
				}
				// Advance profile history identically on both sides.
				inc.hist.Absorb(snap.Ratings)
				ref.hist.Absorb(snap.Ratings)
			}
		})
	}
}

// TestStaleCacheNeverConsultedAfterInvalidation is the poison test for the
// per-rater versioning: a deliberately corrupted cache entry for a rater
// inside the mutation's dependency radius must be recomputed (the poison
// discarded), while a corrupted entry for a far-away rater proves the clean
// path really is served from the cache.
func TestStaleCacheNeverConsultedAfterInvalidation(t *testing.T) {
	const n = 40
	g := socialgraph.New(n)
	sets := make([]interest.Set, n)
	// A path graph gives controlled distances: node i neighbors i±1.
	for i := 0; i < n-1; i++ {
		g.AddRelationship(socialgraph.NodeID(i), socialgraph.NodeID(i+1),
			socialgraph.Relationship{Kind: socialgraph.Friendship})
	}
	for i := range sets {
		sets[i] = interest.NewSet(interest.Category(i % 5))
	}
	// MaxPathHops 2 keeps the dependency radius tight: a mutation at node 0
	// affects raters within 2 hops only.
	st := New(Config{NumNodes: n, Workers: 1,
		Closeness: socialgraph.ClosenessParams{MaxPathHops: 2}},
		g, sets, interest.NewTracker(n), ebay.New(n))

	led := rating.NewLedger(n)
	near, far := rating.PairKey{Rater: 1, Ratee: 2}, rating.PairKey{Rater: 30, Ratee: 31}
	for _, k := range []rating.PairKey{near, far} {
		if err := led.Add(rating.Rating{Rater: k.Rater, Ratee: k.Ratee, Value: 1}); err != nil {
			t.Fatal(err)
		}
	}
	snap := led.EndInterval()
	out1, _ := st.Adjust(snap)
	_ = out1

	// Poison both cached entries with a sentinel closeness no real
	// computation produces.
	const sentinel = 1e30
	st.sigCache.put(near, st.closeVer[near.Rater], pairSignals{closeness: sentinel, similar: 1})
	st.sigCache.put(far, st.closeVer[far.Rater], pairSignals{closeness: sentinel, similar: 1})

	// Mutate inside rater 1's radius (node 0 is 1 hop away) and far from
	// rater 30 (29 hops).
	g.RecordInteraction(0, 1, 1)

	if cap(st.sigScratch) < 2 {
		st.sigScratch = make([]pairSignals, 2)
	}
	pairs := []rating.PairKey{near, far}
	sigs := make([]pairSignals, 2)
	st.adjustMu.Lock()
	st.syncGraph()
	st.computeSignals(pairs, sigs)
	st.adjustMu.Unlock()

	if sigs[0].closeness == sentinel {
		t.Fatal("poisoned entry for an affected rater was served after the graph mutation")
	}
	if sigs[1].closeness != sentinel {
		t.Fatal("clean far-away pair was recomputed — cache reuse broken (or invalidation over-broad)")
	}

	// A global mutation invalidates everyone, including the far rater.
	st.sigCache.put(far, st.closeVer[far.Rater], pairSignals{closeness: sentinel, similar: 1})
	g.ResetInteractions()
	st.adjustMu.Lock()
	st.syncGraph()
	st.computeSignals(pairs, sigs)
	st.adjustMu.Unlock()
	if sigs[1].closeness == sentinel {
		t.Fatal("poisoned entry survived a global graph mutation")
	}
}

// TestSigCacheVersionKeying pins the cache's key semantics: an entry is
// served only at the exact rater closeness version it was stored under.
func TestSigCacheVersionKeying(t *testing.T) {
	c := newSigCache()
	k := rating.PairKey{Rater: 4, Ratee: 9}
	c.put(k, 1, pairSignals{closeness: 0.5, similar: 0.25})
	if sig, ok := c.get(k, 1); !ok || sig.closeness != 0.5 {
		t.Fatalf("get at matching version = (%+v, %v), want hit", sig, ok)
	}
	if _, ok := c.get(k, 2); ok {
		t.Fatal("stale entry served after a version bump")
	}
	c.put(k, 2, pairSignals{closeness: 0.75})
	if sig, ok := c.get(k, 2); !ok || sig.closeness != 0.75 {
		t.Fatalf("get after re-store = (%+v, %v), want fresh hit", sig, ok)
	}
	c.reset()
	if _, ok := c.get(k, 2); ok {
		t.Fatal("entry survived reset")
	}
}

// TestQuietIntervalAdjustAllocations pins the incremental engine's idle
// cost: an empty interval on a quiescent graph — empty dirty set, no pairs —
// must stay within a hand-counted allocation budget, so a mostly-idle
// deployment pays near zero per interval.
func TestQuietIntervalAdjustAllocations(t *testing.T) {
	const quietAllocBudget = 9 // measured 6 on go1.24; headroom for map-iter noise
	st, snap := perfScenario(200, 1)
	st.Adjust(snap) // prime caches and scratch
	quiet := rating.Snapshot{Counts: map[rating.PairKey]rating.PairCounts{}}
	st.Adjust(quiet)
	got := testing.AllocsPerRun(20, func() {
		st.Adjust(quiet)
	})
	t.Logf("quiet allocs/op = %.0f (budget %d)", got, quietAllocBudget)
	if got > quietAllocBudget {
		t.Fatalf("quiet-interval Adjust allocates %.0f/op, want <= %d", got, quietAllocBudget)
	}
}
