package persist

import (
	"bytes"
	"errors"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func testRecords() []Record {
	return []Record{
		{Kind: KindRating, Seq: 1, Rater: 3, Ratee: 9, Cycle: 0, Category: 2, Value: 1},
		{Kind: KindRating, Seq: 2, Rater: 7, Ratee: 9, Cycle: 0, Category: 5, Value: -1},
		{Kind: KindMark, Seq: 1},
		{Kind: KindRating, Seq: 3, Rater: 1, Ratee: 4, Cycle: 1, Category: 0, Value: 0.4375},
		{Kind: KindRating, Seq: 4, Rater: 120, Ratee: 8, Cycle: 1, Category: 11, Value: math.Pi},
	}
}

func TestWALAppendRecoverRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, rec, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != 0 || rec.Corrupt != nil {
		t.Fatalf("fresh WAL reported recovery %+v", rec)
	}
	want := testRecords()
	if err := w.Append(want[:2]); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendMark(1); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(want[3:]); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, rec2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if rec2.Corrupt != nil {
		t.Fatalf("clean log reported corruption: %v", rec2.Corrupt)
	}
	if !reflect.DeepEqual(rec2.Records, want) {
		t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", rec2.Records, want)
	}
	// Appending after recovery must extend, not clobber.
	extra := Record{Kind: KindRating, Seq: 5, Rater: 2, Ratee: 2, Value: 1}
	if err := w2.Append([]Record{extra}); err != nil {
		t.Fatal(err)
	}
	w2.Close()
	_, rec3, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(rec3.Records); got != len(want)+1 {
		t.Fatalf("after append-on-recovered log: %d records, want %d", got, len(want)+1)
	}
	if !reflect.DeepEqual(rec3.Records[len(want)], extra) {
		t.Fatalf("appended record mismatch: %+v", rec3.Records[len(want)])
	}
}

// TestWALTornFinalRecordEveryOffset is the satellite contract: truncate the
// log at every byte offset inside the final record and recovery must return
// every earlier record, report a typed ErrCorruptRecord, truncate the tail,
// and never panic.
func TestWALTornFinalRecordEveryOffset(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.log")
	w, _, err := Open(full, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := testRecords()
	if err := w.Append(want); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	lastFrame := frameHeaderLen + ratingPayloadLen // final record is a rating
	prefixLen := len(raw) - lastFrame

	for cut := prefixLen + 1; cut < len(raw); cut++ {
		path := filepath.Join(dir, "torn.log")
		if err := os.WriteFile(path, raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		w, rec, err := Open(path, Options{})
		if err != nil {
			t.Fatalf("cut=%d: Open failed: %v", cut, err)
		}
		if rec.Corrupt == nil {
			t.Fatalf("cut=%d: torn tail not reported", cut)
		}
		if !errors.Is(rec.Corrupt, ErrCorruptRecord) {
			t.Fatalf("cut=%d: error %v does not wrap ErrCorruptRecord", cut, rec.Corrupt)
		}
		if !reflect.DeepEqual(rec.Records, want[:len(want)-1]) {
			t.Fatalf("cut=%d: recovered %d records, want the %d complete ones", cut, len(rec.Records), len(want)-1)
		}
		// The torn bytes must be gone from disk and the log appendable.
		if err := w.Append([]Record{{Kind: KindRating, Seq: 99, Value: 1}}); err != nil {
			t.Fatalf("cut=%d: append after truncation: %v", cut, err)
		}
		w.Close()
		_, rec2, err := Open(path, Options{})
		if err != nil {
			t.Fatalf("cut=%d: reopen: %v", cut, err)
		}
		if rec2.Corrupt != nil {
			t.Fatalf("cut=%d: corruption survived truncation: %v", cut, rec2.Corrupt)
		}
		if got := len(rec2.Records); got != len(want) {
			t.Fatalf("cut=%d: %d records after truncate+append, want %d", cut, got, len(want))
		}
	}
}

// A flipped byte mid-record must be caught by the checksum, not decoded.
func TestWALChecksumCatchesCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(testRecords()); err != nil {
		t.Fatal(err)
	}
	w.Close()
	raw, _ := os.ReadFile(path)
	// Flip a byte inside the second record's payload.
	idx := len(walMagic) + frameHeaderLen + ratingPayloadLen + frameHeaderLen + 5
	raw[idx] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	_, rec, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(rec.Corrupt, ErrCorruptRecord) {
		t.Fatalf("corrupted payload not detected: %v", rec.Corrupt)
	}
	if len(rec.Records) != 1 {
		t.Fatalf("recovered %d records before the corrupt one, want 1", len(rec.Records))
	}
}

func TestWALRotate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(testRecords()); err != nil {
		t.Fatal(err)
	}
	if err := w.Rotate(); err != nil {
		t.Fatal(err)
	}
	after := Record{Kind: KindRating, Seq: 42, Rater: 1, Ratee: 2, Value: -1}
	if err := w.Append([]Record{after}); err != nil {
		t.Fatal(err)
	}
	w.Close()
	_, rec, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Corrupt != nil {
		t.Fatal(rec.Corrupt)
	}
	if len(rec.Records) != 1 || !reflect.DeepEqual(rec.Records[0], after) {
		t.Fatalf("after rotation: %+v, want just %+v", rec.Records, after)
	}
}

func TestWALRejectsForeignFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "not-a-wal")
	if err := os.WriteFile(path, []byte("hello, I am not a WAL at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(path, Options{}); !errors.Is(err, ErrCorruptRecord) {
		t.Fatalf("foreign file opened as WAL: %v", err)
	}
}

func TestDecodeRecordsEmptyAndGarbage(t *testing.T) {
	if recs, n, err := DecodeRecords(bytes.NewReader(nil)); err != nil || n != 0 || len(recs) != 0 {
		t.Fatalf("empty stream: recs=%v n=%d err=%v", recs, n, err)
	}
	garbage := bytes.Repeat([]byte{0xFF}, 64)
	if _, _, err := DecodeRecords(bytes.NewReader(garbage)); !errors.Is(err, ErrCorruptRecord) {
		t.Fatalf("garbage stream decoded: %v", err)
	}
}

func TestWALFsyncAlwaysPolicy(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _, err := Open(path, Options{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append(testRecords()); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
}
