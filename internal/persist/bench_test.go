package persist

import (
	"path/filepath"
	"testing"
)

// BenchmarkWALAppend prices the durability hot path: one batched Append of a
// query cycle's worth of rating records, framed, checksummed, and flushed to
// the OS before returning — the cost every acknowledged rating pays in a
// durable run. scripts/bench.sh persist reports the ns/rating figure.
func BenchmarkWALAppend(b *testing.B) {
	w, _, err := Open(filepath.Join(b.TempDir(), "bench.wal"), Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	const batch = 256
	recs := make([]Record, batch)
	for i := range recs {
		recs[i] = Record{
			Kind: KindRating, Rater: int32(i), Ratee: int32(i + 1),
			Cycle: 1, Category: 3, Value: 1,
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range recs {
			recs[j].Seq = uint64(i*batch + j + 1)
		}
		if err := w.Append(recs); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(secs*1e9/float64(b.N*batch), "ns/rating")
	}
}
