package persist

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// FuzzWALDecode feeds arbitrary bytes to the frame decoder and through a
// full Open-with-recovery cycle. The contract under fuzzing: never panic,
// never allocate unboundedly, classify every malformed stream as a typed
// ErrCorruptRecord, and leave any opened file in an appendable state.
func FuzzWALDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(walMagic))
	// A well-formed single-record log.
	w := &bytes.Buffer{}
	w.WriteString(walMagic)
	{
		dir := f.TempDir()
		path := filepath.Join(dir, "seed.log")
		wal, _, err := Open(path, Options{})
		if err != nil {
			f.Fatal(err)
		}
		wal.Append(testRecords())
		wal.Close()
		raw, _ := os.ReadFile(path)
		f.Add(raw)
		f.Add(raw[:len(raw)-3])
		f.Add(append(raw, 0x01, 0x02))
	}
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, n, err := DecodeRecords(bytes.NewReader(data))
		if err != nil && !errors.Is(err, ErrCorruptRecord) {
			t.Fatalf("decode error %v does not wrap ErrCorruptRecord", err)
		}
		if n < 0 || n > int64(len(data)) {
			t.Fatalf("valid prefix %d out of range for %d input bytes", n, len(data))
		}
		if err == nil && len(data) > 0 {
			// A clean decode must have consumed everything.
			if n != int64(len(data)) {
				t.Fatalf("clean decode consumed %d of %d bytes", n, len(data))
			}
		}
		// Re-encoding the decoded prefix must reproduce the valid bytes.
		var re bytes.Buffer
		for _, r := range recs {
			payload := encodePayload(nil, r)
			var hdr [frameHeaderLen]byte
			putFrameHeader(hdr[:], payload)
			re.Write(hdr[:])
			re.Write(payload)
		}
		if !bytes.Equal(re.Bytes(), data[:n]) {
			t.Fatal("decode/encode round trip diverged from the valid prefix")
		}

		// The same bytes behind a WAL header must recover, not crash.
		path := filepath.Join(t.TempDir(), "fuzz.log")
		file := append([]byte(walMagic), data...)
		if err := os.WriteFile(path, file, 0o644); err != nil {
			t.Fatal(err)
		}
		wal, rec, err := Open(path, Options{})
		if err != nil {
			if !errors.Is(err, ErrCorruptRecord) {
				t.Fatalf("Open error %v does not wrap ErrCorruptRecord", err)
			}
			return
		}
		defer wal.Close()
		if len(rec.Records) != len(recs) {
			t.Fatalf("Open recovered %d records, DecodeRecords saw %d", len(rec.Records), len(recs))
		}
		if err := wal.Append([]Record{{Kind: KindRating, Seq: 1, Value: 1}}); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
	})
}
