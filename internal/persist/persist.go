// Package persist is the durability layer: a length-prefixed, checksummed
// write-ahead log for rating ingest and an atomic snapshot codec for
// interval-boundary state, together supporting crash-restart recovery that
// is bit-identical to an uninterrupted run.
//
// The WAL holds the tail of history since the last snapshot: every rating
// accepted by a ledger is appended (and flushed to the OS) before the
// submission is acknowledged, so a process crash — kill -9 included — loses
// nothing that was acknowledged. Snapshots are taken at update-interval
// boundaries, the natural consistency point of the deterministic pipeline:
// ledgers are drained, engines have just updated, and every piece of
// persistent state (history, graph, reputation vectors, RNG positions) is
// quiescent. Recovery loads the last snapshot, replays the WAL tail onto it
// (deduplicating by record sequence number), truncates any torn final
// record, and resumes mid-interval.
//
// Fsync policy: appends are always flushed to the OS (surviving process
// death); fsync to stable storage happens per the configured FsyncPolicy —
// by default at interval marks, snapshot writes, and rotation, so only an
// OS/power failure can lose the tail of the current interval. FsyncAlways
// trades ingest throughput for per-append durability.
package persist

import (
	"errors"

	"socialtrust/internal/obs"
)

// ErrCorruptRecord is wrapped by WAL decode errors: a torn final record
// (partial write at crash), a checksum mismatch, or a malformed frame.
// Recovery treats it as the end of the log — never a panic, never fatal.
var ErrCorruptRecord = errors.New("persist: corrupt WAL record")

// ErrCorruptSnapshot is wrapped by snapshot load errors (bad magic, short
// file, checksum mismatch, undecodable payload).
var ErrCorruptSnapshot = errors.New("persist: corrupt snapshot")

// FsyncPolicy selects when the WAL calls fsync. Appends are buffered-written
// and flushed to the OS regardless, so the policy only matters for
// kernel/power failures, not process crashes.
type FsyncPolicy int

const (
	// FsyncMarks syncs at interval marks and rotation (the default).
	FsyncMarks FsyncPolicy = iota
	// FsyncAlways syncs after every append batch.
	FsyncAlways
	// FsyncNever leaves syncing entirely to the OS.
	FsyncNever
)

// Options parameterizes a WAL. The zero value is usable.
type Options struct {
	Fsync FsyncPolicy
}

// Durability metrics (recorded only while obs is enabled).
var (
	mWALBytes    = obs.C("persist_wal_bytes_total")
	mWALRecords  = obs.C("persist_wal_records_total")
	mWALFsync    = obs.H("persist_wal_fsync_seconds")
	mSnapSeconds = obs.H("persist_snapshot_seconds")
	mSnapBytes   = obs.G("persist_snapshot_bytes")
	mRecoveries  = obs.C("persist_recoveries_total")
	mTruncations = obs.C("persist_wal_truncations_total")
	mErrors      = obs.C("persist_errors_total")
)

func init() {
	obs.Help("persist_wal_bytes_total", "Bytes appended to write-ahead logs (frames included).")
	obs.Help("persist_wal_records_total", "Records appended to write-ahead logs.")
	obs.Help("persist_wal_fsync_seconds", "Latency of WAL fsync calls.")
	obs.Help("persist_snapshot_seconds", "Wall time of one interval-boundary snapshot write (encode, fsync, rename).")
	obs.Help("persist_snapshot_bytes", "Size of the most recent snapshot written.")
	obs.Help("persist_recoveries_total", "Crash-restart recoveries performed (snapshot load plus WAL tail replay).")
	obs.Help("persist_wal_truncations_total", "Torn or corrupt WAL tails truncated during recovery.")
	obs.Help("persist_errors_total", "Durability-layer failures: WAL appends, fsyncs, or snapshot writes that returned errors.")
}
