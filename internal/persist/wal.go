package persist

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"sync"
)

// walMagic opens every WAL file; a file without it is not a WAL.
const walMagic = "STWALv1\n"

// Record kinds. A rating record carries one accepted rating; a mark record
// is appended at each completed interval drain and carries the interval
// number, delimiting which records a snapshot already covers. A fated rating
// is a rating accepted into a substrate other than the primary interval
// ledger — a replica mirror or a deferred-delivery queue — tagged with the
// fate flags that route it back there on replay. Only the cluster worker
// writes them: an out-of-process shard cannot rely on whole-interval
// re-execution to rebuild those substrates after a kill, so they must be as
// durable as the primary ledger.
const (
	KindRating      byte = 1
	KindMark        byte = 2
	KindFatedRating byte = 3
)

// Fate flags carried by KindFatedRating records.
const (
	FateReplica  byte = 1 << 0
	FateDeferred byte = 1 << 1
)

// Record is one WAL entry. For KindRating, Seq is the rating's global
// sequence number (assigned at ingest, the dedupe key for replay) and the
// remaining fields are the rating itself. For KindMark, Seq is the interval
// number and the rating fields are zero. KindFatedRating is a rating record
// plus its Flags fate bits.
type Record struct {
	Kind            byte
	Flags           byte
	Seq             uint64
	Rater, Ratee    int32
	Cycle, Category int32
	Value           float64
}

// Frame layout: [uint32 LE payload length][uint32 LE CRC32-C of payload][payload].
// Rating payload: kind(1) seq(8) rater(4) ratee(4) cycle(4) category(4) value(8);
// a fated rating appends flags(1).
const (
	frameHeaderLen   = 8
	ratingPayloadLen = 1 + 8 + 4 + 4 + 4 + 4 + 8
	fatedPayloadLen  = ratingPayloadLen + 1
	markPayloadLen   = 1 + 8
	// maxPayloadLen bounds decoding so a corrupt length field cannot demand
	// an absurd allocation.
	maxPayloadLen = 1 << 10
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// putFrameHeader fills hdr with the frame header for payload.
func putFrameHeader(hdr, payload []byte) {
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
}

func encodePayload(buf []byte, r Record) []byte {
	buf = append(buf, r.Kind)
	buf = binary.LittleEndian.AppendUint64(buf, r.Seq)
	if r.Kind == KindMark {
		return buf
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(r.Rater))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(r.Ratee))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(r.Cycle))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(r.Category))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(r.Value))
	if r.Kind == KindFatedRating {
		buf = append(buf, r.Flags)
	}
	return buf
}

func decodePayload(p []byte) (Record, error) {
	if len(p) == 0 {
		return Record{}, fmt.Errorf("%w: empty payload", ErrCorruptRecord)
	}
	var r Record
	r.Kind = p[0]
	switch r.Kind {
	case KindMark:
		if len(p) != markPayloadLen {
			return Record{}, fmt.Errorf("%w: mark payload %d bytes, want %d", ErrCorruptRecord, len(p), markPayloadLen)
		}
		r.Seq = binary.LittleEndian.Uint64(p[1:9])
	case KindRating, KindFatedRating:
		want := ratingPayloadLen
		if r.Kind == KindFatedRating {
			want = fatedPayloadLen
		}
		if len(p) != want {
			return Record{}, fmt.Errorf("%w: rating payload %d bytes, want %d", ErrCorruptRecord, len(p), want)
		}
		r.Seq = binary.LittleEndian.Uint64(p[1:9])
		r.Rater = int32(binary.LittleEndian.Uint32(p[9:13]))
		r.Ratee = int32(binary.LittleEndian.Uint32(p[13:17]))
		r.Cycle = int32(binary.LittleEndian.Uint32(p[17:21]))
		r.Category = int32(binary.LittleEndian.Uint32(p[21:25]))
		r.Value = math.Float64frombits(binary.LittleEndian.Uint64(p[25:33]))
		if r.Kind == KindFatedRating {
			r.Flags = p[33]
		}
	default:
		return Record{}, fmt.Errorf("%w: unknown record kind %d", ErrCorruptRecord, r.Kind)
	}
	return r, nil
}

// DecodeRecords reads framed records from r (positioned after the file
// header) until EOF or the first invalid frame. It returns the records
// decoded, the byte count of the valid prefix consumed, and a non-nil error
// wrapping ErrCorruptRecord if the stream ended in a torn or corrupt frame.
// It never panics on arbitrary input — the fuzz contract.
func DecodeRecords(r io.Reader) ([]Record, int64, error) {
	br := bufio.NewReader(r)
	var (
		recs  []Record
		valid int64
		hdr   [frameHeaderLen]byte
	)
	for {
		if _, err := io.ReadFull(br, hdr[:1]); err == io.EOF {
			return recs, valid, nil
		} else if err != nil {
			return recs, valid, fmt.Errorf("%w: torn frame header: %v", ErrCorruptRecord, err)
		}
		if _, err := io.ReadFull(br, hdr[1:]); err != nil {
			return recs, valid, fmt.Errorf("%w: torn frame header: %v", ErrCorruptRecord, err)
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if n == 0 || n > maxPayloadLen {
			return recs, valid, fmt.Errorf("%w: implausible payload length %d", ErrCorruptRecord, n)
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(br, payload); err != nil {
			return recs, valid, fmt.Errorf("%w: torn payload: %v", ErrCorruptRecord, err)
		}
		if crc32.Checksum(payload, crcTable) != sum {
			return recs, valid, fmt.Errorf("%w: checksum mismatch", ErrCorruptRecord)
		}
		rec, err := decodePayload(payload)
		if err != nil {
			return recs, valid, err
		}
		recs = append(recs, rec)
		valid += int64(frameHeaderLen) + int64(n)
	}
}

// WAL is an append-only write-ahead log. Safe for concurrent use.
type WAL struct {
	mu     sync.Mutex
	f      *os.File
	w      *bufio.Writer
	path   string
	opts   Options
	buf    []byte
	maxSeq uint64
	// maxFatedSeq is the highest KindFatedRating sequence held, tracked
	// separately because fated records are covered by replica/deferred drains,
	// not by the primary drain floor that covers maxSeq.
	maxFatedSeq uint64
}

// Recovery reports what Open found in an existing WAL file.
type Recovery struct {
	// Records is the valid prefix of the log, in append order.
	Records []Record
	// TruncatedBytes is how many trailing bytes were cut as torn/corrupt.
	TruncatedBytes int64
	// Corrupt is the typed decode error (wrapping ErrCorruptRecord) that
	// ended the scan, nil for a clean log. The tail has already been
	// truncated; the error is informational for logging.
	Corrupt error
}

// Open opens (or creates) the WAL at path, scanning any existing content.
// A torn or corrupt tail is truncated — the file is left ending at the last
// valid record and the typed error is reported in Recovery.Corrupt. The
// returned WAL is positioned for appending.
func Open(path string, opts Options) (*WAL, Recovery, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, Recovery{}, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, Recovery{}, err
	}
	var rec Recovery
	if st.Size() == 0 {
		if _, err := f.WriteString(walMagic); err != nil {
			f.Close()
			return nil, Recovery{}, err
		}
	} else {
		var magic [len(walMagic)]byte
		if _, err := io.ReadFull(f, magic[:]); err != nil || string(magic[:]) != walMagic {
			f.Close()
			return nil, Recovery{}, fmt.Errorf("%w: %s: bad or short WAL header", ErrCorruptRecord, path)
		}
		records, valid, derr := DecodeRecords(f)
		rec.Records = records
		end := int64(len(walMagic)) + valid
		if derr != nil {
			rec.Corrupt = derr
			rec.TruncatedBytes = st.Size() - end
			mTruncations.Inc()
			if err := f.Truncate(end); err != nil {
				f.Close()
				return nil, Recovery{}, err
			}
		}
		if _, err := f.Seek(end, io.SeekStart); err != nil {
			f.Close()
			return nil, Recovery{}, err
		}
	}
	w := &WAL{f: f, w: bufio.NewWriterSize(f, 1<<16), path: path, opts: opts}
	for _, r := range rec.Records {
		w.noteSeqLocked(r)
	}
	return w, rec, nil
}

// noteSeqLocked advances the per-kind sequence high-water marks.
func (w *WAL) noteSeqLocked(r Record) {
	switch r.Kind {
	case KindRating:
		if r.Seq > w.maxSeq {
			w.maxSeq = r.Seq
		}
	case KindFatedRating:
		if r.Seq > w.maxFatedSeq {
			w.maxFatedSeq = r.Seq
		}
	}
}

// Append frames, checksums and writes the records, then flushes them to the
// OS so they survive process death before the caller acknowledges the
// ingest. Fsync to stable storage follows the configured policy.
func (w *WAL) Append(recs []Record) error {
	if len(recs) == 0 {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	var total int64
	for _, r := range recs {
		w.noteSeqLocked(r)
		w.buf = encodePayload(w.buf[:0], r)
		var hdr [frameHeaderLen]byte
		putFrameHeader(hdr[:], w.buf)
		if _, err := w.w.Write(hdr[:]); err != nil {
			mErrors.Inc()
			return err
		}
		if _, err := w.w.Write(w.buf); err != nil {
			mErrors.Inc()
			return err
		}
		total += int64(frameHeaderLen) + int64(len(w.buf))
	}
	if err := w.w.Flush(); err != nil {
		mErrors.Inc()
		return err
	}
	mWALBytes.Add(total)
	mWALRecords.Add(int64(len(recs)))
	if w.opts.Fsync == FsyncAlways {
		return w.syncLocked()
	}
	return nil
}

// AppendMark appends an interval-boundary mark and syncs it (unless the
// policy is FsyncNever): everything before the mark belongs to completed
// intervals a snapshot covers.
func (w *WAL) AppendMark(interval uint64) error {
	if err := w.Append([]Record{{Kind: KindMark, Seq: interval}}); err != nil {
		return err
	}
	if w.opts.Fsync == FsyncNever {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.syncLocked()
}

// Sync flushes and fsyncs the log regardless of policy.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.w.Flush(); err != nil {
		mErrors.Inc()
		return err
	}
	return w.syncLocked()
}

func (w *WAL) syncLocked() error {
	sp := mWALFsync.Start()
	err := w.f.Sync()
	sp.End()
	if err != nil {
		mErrors.Inc()
	}
	return err
}

// Rotate discards the log's contents (they are covered by a durable
// snapshot) and starts a fresh epoch in place.
func (w *WAL) Rotate() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.w.Flush(); err != nil {
		mErrors.Inc()
		return err
	}
	if err := w.f.Truncate(int64(len(walMagic))); err != nil {
		mErrors.Inc()
		return err
	}
	if _, err := w.f.Seek(int64(len(walMagic)), io.SeekStart); err != nil {
		return err
	}
	w.w.Reset(w.f)
	w.maxSeq = 0
	w.maxFatedSeq = 0
	if w.opts.Fsync != FsyncNever {
		return w.syncLocked()
	}
	return nil
}

// MaxSeq reports the highest primary rating-record sequence number the log
// holds (recovered at Open plus appended since), 0 for a log with no ratings.
func (w *WAL) MaxSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.maxSeq
}

// MaxFatedSeq reports the highest fated-rating sequence number the log holds,
// 0 for a log with no fated records.
func (w *WAL) MaxFatedSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.maxFatedSeq
}

// ReadBack flushes the writer and re-decodes the whole log from disk,
// returning its records in append order. Used by recovery paths that need to
// replay the log into a fresh in-memory state while keeping it open for
// further appends.
func (w *WAL) ReadBack() ([]Record, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.w.Flush(); err != nil {
		mErrors.Inc()
		return nil, err
	}
	f, err := os.Open(w.path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var magic [len(walMagic)]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil || string(magic[:]) != walMagic {
		return nil, fmt.Errorf("%w: %s: bad or short WAL header", ErrCorruptRecord, w.path)
	}
	recs, _, derr := DecodeRecords(f)
	return recs, derr
}

// Path returns the log's file path.
func (w *WAL) Path() string { return w.path }

// Close flushes, syncs (unless FsyncNever) and closes the log.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.w.Flush()
	if err == nil && w.opts.Fsync != FsyncNever {
		err = w.f.Sync()
	}
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}
