package persist

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

type snapPayload struct {
	Interval int
	Seq      uint64
	Reps     []float64
	Counts   map[int]float64
	Nested   [][]int
}

func samplePayload() snapPayload {
	return snapPayload{
		Interval: 7,
		Seq:      12345,
		Reps:     []float64{0.1, math.Pi, 1e-300, math.SmallestNonzeroFloat64, -0.0},
		Counts:   map[int]float64{3: 1.5, 9: 0.25},
		Nested:   [][]int{{1, 2}, nil, {3}},
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snapshot.st")
	want := samplePayload()
	if err := WriteSnapshot(path, &want); err != nil {
		t.Fatal(err)
	}
	var got snapPayload
	if err := LoadSnapshot(path, &got); err != nil {
		t.Fatal(err)
	}
	// gob turns empty non-nil slices into nil; the fields here are either
	// populated or nil, so DeepEqual is exact — including float64 bits.
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", got, want)
	}
	for i := range want.Reps {
		if math.Float64bits(got.Reps[i]) != math.Float64bits(want.Reps[i]) {
			t.Fatalf("float bits diverge at %d", i)
		}
	}
	if !SnapshotExists(path) {
		t.Fatal("SnapshotExists false for a written snapshot")
	}
}

func TestSnapshotOverwriteIsAtomic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snapshot.st")
	first := samplePayload()
	if err := WriteSnapshot(path, &first); err != nil {
		t.Fatal(err)
	}
	second := samplePayload()
	second.Interval = 8
	second.Reps[0] = 0.99
	if err := WriteSnapshot(path, &second); err != nil {
		t.Fatal(err)
	}
	var got snapPayload
	if err := LoadSnapshot(path, &got); err != nil {
		t.Fatal(err)
	}
	if got.Interval != 8 || got.Reps[0] != 0.99 {
		t.Fatalf("overwrite not visible: %+v", got)
	}
	// No temp files may linger.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("stray files after atomic write: %v", entries)
	}
}

func TestSnapshotDetectsCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snapshot.st")
	p := samplePayload()
	if err := WriteSnapshot(path, &p); err != nil {
		t.Fatal(err)
	}
	raw, _ := os.ReadFile(path)

	cases := map[string][]byte{
		"flipped byte": append(append([]byte{}, raw[:len(raw)/2]...), append([]byte{raw[len(raw)/2] ^ 0xFF}, raw[len(raw)/2+1:]...)...),
		"truncated":    raw[:len(raw)-5],
		"bad magic":    append([]byte("NOTSNAPS"), raw[8:]...),
		"empty":        {},
	}
	for name, data := range cases {
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		var got snapPayload
		if err := LoadSnapshot(path, &got); !errors.Is(err, ErrCorruptSnapshot) {
			t.Fatalf("%s: error %v does not wrap ErrCorruptSnapshot", name, err)
		}
	}
}

func TestSnapshotMissingFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "absent.st")
	if SnapshotExists(path) {
		t.Fatal("SnapshotExists true for a missing file")
	}
	var got snapPayload
	if err := LoadSnapshot(path, &got); !os.IsNotExist(err) {
		t.Fatalf("want IsNotExist, got %v", err)
	}
}
