package persist

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// snapMagic opens every snapshot file, followed by an 8-byte LE payload
// length, the gob-encoded payload, and a 4-byte LE CRC32-C of the payload.
const snapMagic = "STSNAPv1"

// WriteSnapshot gob-encodes v and writes it atomically to path: the bytes
// land in a temp file in the same directory, are fsynced, and are renamed
// over path, so a crash mid-write leaves the previous snapshot intact.
// float64 state round-trips bit-exactly through gob.
func WriteSnapshot(path string, v any) (err error) {
	sp := mSnapSeconds.Start()
	defer func() {
		sp.End()
		if err != nil {
			mErrors.Inc()
		}
	}()

	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(v); err != nil {
		return fmt.Errorf("persist: encode snapshot: %w", err)
	}
	var buf bytes.Buffer
	buf.Grow(len(snapMagic) + 12 + payload.Len())
	buf.WriteString(snapMagic)
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(payload.Len()))
	buf.Write(hdr[:])
	buf.Write(payload.Bytes())
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc32.Checksum(payload.Bytes(), crcTable))
	buf.Write(sum[:])

	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	// Make the rename itself durable.
	if d, derr := os.Open(dir); derr == nil {
		d.Sync()
		d.Close()
	}
	mSnapBytes.Set(float64(buf.Len()))
	return nil
}

// LoadSnapshot reads, verifies and gob-decodes the snapshot at path into v.
// Any structural damage — bad magic, short file, checksum mismatch,
// undecodable payload — is reported wrapping ErrCorruptSnapshot.
func LoadSnapshot(path string, v any) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(raw) < len(snapMagic)+12 || string(raw[:len(snapMagic)]) != snapMagic {
		return fmt.Errorf("%w: %s: bad header", ErrCorruptSnapshot, path)
	}
	n := binary.LittleEndian.Uint64(raw[len(snapMagic) : len(snapMagic)+8])
	body := raw[len(snapMagic)+8:]
	if uint64(len(body)) != n+4 {
		return fmt.Errorf("%w: %s: payload length %d does not match file size", ErrCorruptSnapshot, path, n)
	}
	payload, sum := body[:n], binary.LittleEndian.Uint32(body[n:])
	if crc32.Checksum(payload, crcTable) != sum {
		return fmt.Errorf("%w: %s: checksum mismatch", ErrCorruptSnapshot, path)
	}
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(v); err != nil {
		return fmt.Errorf("%w: %s: decode: %v", ErrCorruptSnapshot, path, err)
	}
	return nil
}

// SnapshotExists reports whether a snapshot file is present at path.
func SnapshotExists(path string) bool {
	st, err := os.Stat(path)
	return err == nil && st.Size() > 0
}

// RecoveryStarted counts one crash-restart recovery in the metrics.
func RecoveryStarted() { mRecoveries.Inc() }
