package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"socialtrust/internal/sim"
)

// layout builds a config with 2 pretrusted, 4 colluders, 4 normal nodes.
func layout() sim.Config {
	return sim.Config{NumNodes: 10, NumPretrusted: 2, NumColluders: 4}
}

func TestSummarizeGroups(t *testing.T) {
	cfg := layout()
	reps := []float64{
		0.3, 0.3, // pretrusted
		0.01, 0.02, 0.03, 0.04, // colluders
		0.1, 0.1, 0.05, 0.05, // normal
	}
	g := SummarizeGroups(cfg, reps)
	if math.Abs(g.Pretrusted.Mean-0.3) > 1e-12 {
		t.Fatalf("pretrusted mean = %v", g.Pretrusted.Mean)
	}
	if math.Abs(g.Colluder.Mean-0.025) > 1e-12 {
		t.Fatalf("colluder mean = %v", g.Colluder.Mean)
	}
	if math.Abs(g.Normal.Mean-0.075) > 1e-12 {
		t.Fatalf("normal mean = %v", g.Normal.Mean)
	}
	if g.MaxColluder != 0.04 || g.MaxNormal != 0.1 {
		t.Fatalf("maxes = %v/%v", g.MaxColluder, g.MaxNormal)
	}
	if r := g.CollusionRatio(); math.Abs(r-0.025/0.075) > 1e-12 {
		t.Fatalf("CollusionRatio = %v", r)
	}
}

func TestCollusionRatioUndefined(t *testing.T) {
	g := GroupSummary{}
	if g.CollusionRatio() != 0 {
		t.Fatal("undefined ratio should be 0")
	}
}

func TestSeparationAUCPerfect(t *testing.T) {
	cfg := layout()
	reps := []float64{
		0.5, 0.5, // pretrusted (ignored)
		0.01, 0.01, 0.02, 0.02, // colluders all below
		0.1, 0.2, 0.3, 0.4, // normal all above
	}
	if auc := SeparationAUC(cfg, reps); auc != 1 {
		t.Fatalf("perfect separation AUC = %v, want 1", auc)
	}
}

func TestSeparationAUCInverted(t *testing.T) {
	cfg := layout()
	reps := []float64{
		0.5, 0.5,
		0.6, 0.7, 0.8, 0.9, // colluders on top: the attack won
		0.1, 0.2, 0.3, 0.4,
	}
	if auc := SeparationAUC(cfg, reps); auc != 0 {
		t.Fatalf("inverted separation AUC = %v, want 0", auc)
	}
}

func TestSeparationAUCTies(t *testing.T) {
	cfg := layout()
	reps := []float64{
		0.5, 0.5,
		0.1, 0.1, 0.1, 0.1,
		0.1, 0.1, 0.1, 0.1, // everything tied
	}
	if auc := SeparationAUC(cfg, reps); math.Abs(auc-0.5) > 1e-9 {
		t.Fatalf("all-ties AUC = %v, want 0.5", auc)
	}
}

func TestSeparationAUCEmptyGroups(t *testing.T) {
	cfg := sim.Config{NumNodes: 4, NumPretrusted: 0, NumColluders: 0}
	if auc := SeparationAUC(cfg, []float64{1, 2, 3, 4}); auc != 0 {
		t.Fatalf("no colluders AUC = %v, want 0", auc)
	}
}

func TestGini(t *testing.T) {
	if g := Gini([]float64{1, 1, 1, 1}); math.Abs(g) > 1e-12 {
		t.Fatalf("uniform Gini = %v, want 0", g)
	}
	// All mass on one of n nodes → (n-1)/n.
	if g := Gini([]float64{0, 0, 0, 1}); math.Abs(g-0.75) > 1e-12 {
		t.Fatalf("concentrated Gini = %v, want 0.75", g)
	}
	if g := Gini(nil); g != 0 {
		t.Fatalf("empty Gini = %v", g)
	}
	if g := Gini([]float64{0, 0}); g != 0 {
		t.Fatalf("zero-mass Gini = %v", g)
	}
}

func TestGiniBoundedProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				continue // reputations are in [0,1]; avoid float overflow
			}
			xs = append(xs, math.Abs(v))
		}
		g := Gini(xs)
		return g >= -1e-9 && g <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAUCBoundedProperty(t *testing.T) {
	cfg := layout()
	f := func(raw [10]float64) bool {
		reps := make([]float64, 10)
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			reps[i] = math.Abs(v)
		}
		auc := SeparationAUC(cfg, reps)
		return auc >= 0 && auc <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
