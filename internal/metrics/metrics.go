// Package metrics computes the evaluation metrics the paper's figures are
// read through: per-node-group reputation summaries, the separation between
// colluder and honest reputations (ranking AUC — how reliably a reputation
// threshold distinguishes colluders), and the Gini coefficient of the
// reputation distribution (how concentrated trust is).
package metrics

import (
	"sort"

	"socialtrust/internal/sim"
	"socialtrust/internal/stats"
)

// GroupSummary aggregates a reputation vector by node type.
type GroupSummary struct {
	Pretrusted, Colluder, Normal stats.Summary
	MaxColluder, MaxNormal       float64
}

// SummarizeGroups splits a reputation vector by the configuration's node
// layout and summarizes each group.
func SummarizeGroups(cfg sim.Config, reps []float64) GroupSummary {
	var pre, coll, norm []float64
	for id, v := range reps {
		switch cfg.Type(id) {
		case sim.Pretrusted:
			pre = append(pre, v)
		case sim.Colluder:
			coll = append(coll, v)
		default:
			norm = append(norm, v)
		}
	}
	var g GroupSummary
	g.Pretrusted, _ = stats.Summarize(pre)
	g.Colluder, _ = stats.Summarize(coll)
	g.Normal, _ = stats.Summarize(norm)
	if len(coll) > 0 {
		_, g.MaxColluder, _ = stats.MinMax(coll)
	}
	if len(norm) > 0 {
		_, g.MaxNormal, _ = stats.MinMax(norm)
	}
	return g
}

// CollusionRatio returns mean colluder reputation over mean normal
// reputation — the headline number of every distribution figure. Zero when
// undefined.
func (g GroupSummary) CollusionRatio() float64 {
	if g.Normal.Mean == 0 {
		return 0
	}
	return g.Colluder.Mean / g.Normal.Mean
}

// SeparationAUC measures how well LOW reputation identifies colluders: the
// probability that a uniformly random colluder has strictly lower
// reputation than a uniformly random honest (normal) peer, with ties
// counted half. 1.0 means a threshold exists that cleanly separates
// colluders below honest peers (the defense works); 0.5 means reputation
// carries no signal; below 0.5 the colluders have won.
func SeparationAUC(cfg sim.Config, reps []float64) float64 {
	var coll, honest []float64
	for id, v := range reps {
		switch cfg.Type(id) {
		case sim.Colluder:
			coll = append(coll, v)
		case sim.Normal:
			honest = append(honest, v)
		}
	}
	if len(coll) == 0 || len(honest) == 0 {
		return 0
	}
	// O((n+m) log(n+m)) via sorted ranks.
	sort.Float64s(honest)
	total := 0.0
	for _, c := range coll {
		lo := sort.SearchFloat64s(honest, c)         // honest < c
		hi := sort.SearchFloat64s(honest, nextUp(c)) // honest <= c
		greater := len(honest) - hi
		ties := hi - lo
		total += float64(greater) + float64(ties)/2
	}
	return total / float64(len(coll)*len(honest))
}

// nextUp returns the smallest float64 greater than x for tie detection in
// SearchFloat64s. Values here are normalized reputations, far from the
// edges of the float range.
func nextUp(x float64) float64 {
	if x == 0 {
		return 5e-324
	}
	// A one-ulp bump via successive scaling is overkill; reputations are
	// in [0,1], so a relative epsilon is exact enough for tie grouping.
	return x * (1 + 1e-15)
}

// Gini computes the Gini coefficient of a non-negative distribution:
// 0 = perfectly even, →1 = all mass on one node. The paper's EigenTrust
// plots are visibly more concentrated than eBay's; this quantifies that.
func Gini(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var cum, weighted float64
	for i, x := range sorted {
		if x < 0 {
			x = 0
		}
		cum += x
		weighted += float64(i+1) * x
	}
	if cum == 0 {
		return 0
	}
	n := float64(len(sorted))
	return (2*weighted - (n+1)*cum) / (n * cum)
}
