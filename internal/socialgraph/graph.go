// Package socialgraph implements the social-network substrate SocialTrust
// consumes: an undirected friendship multigraph with typed, weighted
// relationships, a directed interaction-frequency table, breadth-first
// social distance, common-friend queries, and the social-closeness metric
// Ωc of the paper (Equations 2, 3, 4, and the falsification-resistant
// weighted form, Equation 10).
package socialgraph

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// NodeID identifies a peer in the social network. IDs are dense indices in
// [0, NumNodes) so the graph can use slice-backed adjacency.
type NodeID int

// RelationshipKind is the type of a social relationship between two peers.
// The paper's Equation 10 weights relationship kinds differently (e.g.
// kinship counts more than an online friendship).
type RelationshipKind int

// Relationship kinds ordered roughly by social strength. The associated
// default weights are exposed via DefaultWeight.
const (
	Friendship RelationshipKind = iota
	Classmate
	Colleague
	Kinship
	numRelationshipKinds
)

// String implements fmt.Stringer for diagnostics.
func (k RelationshipKind) String() string {
	switch k {
	case Friendship:
		return "friendship"
	case Classmate:
		return "classmate"
	case Colleague:
		return "colleague"
	case Kinship:
		return "kinship"
	default:
		return fmt.Sprintf("RelationshipKind(%d)", int(k))
	}
}

// DefaultWeight returns the default closeness weight w_d of a relationship
// kind used by Equation 10. Weights are in (0,1] and kinship is strongest.
func (k RelationshipKind) DefaultWeight() float64 {
	switch k {
	case Kinship:
		return 1.0
	case Colleague:
		return 0.8
	case Classmate:
		return 0.7
	case Friendship:
		return 0.6
	default:
		return 0.5
	}
}

// Relationship is a single typed social tie on an edge. An edge carries one
// or more relationships; the paper assigns [1,2] relationships to normal
// pairs and [3,5] to colluding pairs in its experiments.
type Relationship struct {
	Kind   RelationshipKind
	Weight float64 // in (0,1]; zero means "use Kind.DefaultWeight()"
}

// weight resolves the effective weight of the relationship.
func (r Relationship) weight() float64 {
	if r.Weight > 0 {
		return r.Weight
	}
	return r.Kind.DefaultWeight()
}

// edge stores the relationship list for one adjacent pair.
type edge struct {
	rels []Relationship
}

// Graph is an undirected social multigraph plus a directed interaction
// table. Topology is guarded by an RWMutex so concurrent closeness/BFS
// queries proceed in parallel and only topology mutation
// (AddRelationship/RemoveNodeEdges) takes the exclusive lock. Interaction
// recording uses per-source striped locks, because the simulator records
// interactions from many client goroutines while queries run.
//
// Every mutator — AddRelationship, RecordInteraction, RemoveNodeEdges,
// ResetInteractions — bumps a monotonically increasing epoch counter
// (Epoch). Any value derived purely from graph state (closeness, profiles)
// is valid for as long as the epoch is unchanged, which is the invalidation
// contract the core package's signal cache is built on.
//
// Mutators additionally record which nodes they touched in a bounded touch
// log (TouchedSince), so consumers can invalidate derived state in
// proportion to the mutation — every node whose closeness could have
// changed lies within the path-hop radius of a touched node (WithinHops) —
// instead of discarding everything on any epoch movement.
type Graph struct {
	mu    sync.RWMutex // guards adj
	epoch atomic.Uint64

	n   int
	adj []map[NodeID]*edge

	interactions []interactionRow

	// touchMu guards the touch log and serializes epoch advancement with
	// log appends, so a reader that observes epoch e always finds every
	// touch with epoch <= e already in the log.
	touchMu    sync.Mutex
	touchLog   []touchRec
	touchFloor uint64 // TouchedSince is answerable only for since >= touchFloor
}

// touchRec is one touch-log entry: the node whose adjacency or outgoing
// interaction row changed, and the epoch the mutation advanced to. Entries
// are epoch-ascending.
type touchRec struct {
	epoch uint64
	node  NodeID
}

// maxTouchLog bounds the touch log. On overflow the log is cleared and the
// floor raised to the current epoch: consumers that synced before the floor
// get a full-invalidation signal (TouchedSince ok=false), exactly the
// pre-touch-log behavior.
const maxTouchLog = 1 << 17

type interactionRow struct {
	mu     sync.Mutex
	counts map[NodeID]float64
}

// New creates a graph with n isolated nodes.
func New(n int) *Graph {
	if n < 0 {
		panic("socialgraph: negative node count")
	}
	g := &Graph{
		n:            n,
		adj:          make([]map[NodeID]*edge, n),
		interactions: make([]interactionRow, n),
	}
	return g
}

// NumNodes reports the number of nodes in the graph.
func (g *Graph) NumNodes() int { return g.n }

// Epoch returns the graph's version counter. It increases on every mutation
// (topology or interaction); two reads observing the same epoch bracket a
// window in which every derived quantity was stable.
func (g *Graph) Epoch() uint64 { return g.epoch.Load() }

// bumpTouched advances the epoch after a mutation and records the nodes it
// touched: every node whose adjacency set or outgoing interaction row
// changed. The touch is appended before the new epoch becomes visible, so
// TouchedSince(e) run against any observed epoch e is complete.
func (g *Graph) bumpTouched(nodes ...NodeID) {
	g.touchMu.Lock()
	e := g.epoch.Load() + 1
	for _, nd := range nodes {
		// Collapse consecutive touches of the same node (the per-rating
		// interaction pattern) by raising the entry's epoch: any consumer
		// that missed the earlier touch still sees the raised one.
		if last := len(g.touchLog) - 1; last >= 0 && g.touchLog[last].node == nd {
			g.touchLog[last].epoch = e
			continue
		}
		g.touchLog = append(g.touchLog, touchRec{epoch: e, node: nd})
	}
	if len(g.touchLog) > maxTouchLog {
		g.touchLog = g.touchLog[:0]
		g.touchFloor = e
	}
	g.epoch.Store(e)
	g.touchMu.Unlock()
}

// bumpAll advances the epoch for a mutation with global reach (e.g.
// ResetInteractions): the log is cleared and the floor raised so every
// consumer falls back to full invalidation.
func (g *Graph) bumpAll() {
	g.touchMu.Lock()
	e := g.epoch.Load() + 1
	g.touchLog = g.touchLog[:0]
	g.touchFloor = e
	g.epoch.Store(e)
	g.touchMu.Unlock()
}

// TouchedSince appends to buf the nodes touched by mutations with epoch in
// (since, Epoch()] and reports whether the touch log reaches back that far.
// ok == false (overflow, or a global mutation such as ResetInteractions)
// means the caller must invalidate everything derived from the graph. The
// returned list may contain duplicates.
func (g *Graph) TouchedSince(since uint64, buf []NodeID) ([]NodeID, bool) {
	g.touchMu.Lock()
	defer g.touchMu.Unlock()
	if since < g.touchFloor {
		return buf, false
	}
	// Entries are epoch-ascending: binary-search the first one past since.
	lo, hi := 0, len(g.touchLog)
	for lo < hi {
		mid := (lo + hi) / 2
		if g.touchLog[mid].epoch > since {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	for _, r := range g.touchLog[lo:] {
		buf = append(buf, r.node)
	}
	return buf, true
}

// WithinHops appends to out every node within hops friendship hops of any
// source (the sources themselves included) and returns the extended slice.
// seen must be a caller-owned scratch slice of length NumNodes with every
// element false; the marks set during the walk are cleared before
// returning. The output order is unspecified (treat it as a set).
//
// This is the invalidation footprint query: closeness Ωc(i, ·) only ever
// reads node i itself, common friends of i (distance 1), and nodes on
// BFS paths from i (distance <= MaxHops), so any mutation's effect on
// Ωc(i, ·) requires i to lie within the closeness hop radius of a node the
// mutation touched.
func (g *Graph) WithinHops(sources []NodeID, hops int, seen []bool, out []NodeID) []NodeID {
	g.validate(sources...)
	g.mu.RLock()
	start := len(out)
	for _, s := range sources {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	frontierStart := start
	for d := 0; d < hops; d++ {
		frontierEnd := len(out)
		if frontierStart == frontierEnd {
			break
		}
		for idx := frontierStart; idx < frontierEnd; idx++ {
			for v := range g.adj[out[idx]] {
				if !seen[v] {
					seen[v] = true
					out = append(out, v)
				}
			}
		}
		frontierStart = frontierEnd
	}
	g.mu.RUnlock()
	for _, v := range out[start:] {
		seen[v] = false
	}
	return out
}

// validate panics on out-of-range IDs; topology construction errors are
// programming errors in experiment setup, not runtime conditions.
func (g *Graph) validate(ids ...NodeID) {
	for _, id := range ids {
		if id < 0 || int(id) >= g.n {
			panic(fmt.Sprintf("socialgraph: node %d out of range [0,%d)", id, g.n))
		}
	}
}

// AddRelationship adds one typed relationship between i and j, creating the
// friendship edge if absent. Adding multiple relationships to the same pair
// raises m(i,j), the relationship multiplicity of Equation 2.
func (g *Graph) AddRelationship(i, j NodeID, r Relationship) {
	g.validate(i, j)
	if i == j {
		panic("socialgraph: self relationship")
	}
	g.mu.Lock()
	g.addHalf(i, j, r)
	g.addHalf(j, i, r)
	g.mu.Unlock()
	g.bumpTouched(i, j)
}

func (g *Graph) addHalf(i, j NodeID, r Relationship) {
	if g.adj[i] == nil {
		g.adj[i] = make(map[NodeID]*edge)
	}
	e := g.adj[i][j]
	if e == nil {
		e = &edge{}
		g.adj[i][j] = e
	}
	e.rels = append(e.rels, r)
}

// Adjacent reports whether i and j share a friendship edge.
func (g *Graph) Adjacent(i, j NodeID) bool {
	g.validate(i, j)
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.adjacentLocked(i, j)
}

func (g *Graph) adjacentLocked(i, j NodeID) bool {
	_, ok := g.adj[i][j]
	return ok
}

// RelationshipCount returns m(i,j), the number of relationships between
// adjacent nodes (0 when not adjacent).
func (g *Graph) RelationshipCount(i, j NodeID) int {
	g.validate(i, j)
	g.mu.RLock()
	defer g.mu.RUnlock()
	if e, ok := g.adj[i][j]; ok {
		return len(e.rels)
	}
	return 0
}

// Relationships returns a copy of the relationship list between i and j.
func (g *Graph) Relationships(i, j NodeID) []Relationship {
	g.validate(i, j)
	g.mu.RLock()
	defer g.mu.RUnlock()
	e, ok := g.adj[i][j]
	if !ok {
		return nil
	}
	return append([]Relationship(nil), e.rels...)
}

// relationshipStrengthLocked evaluates the relationship term of the
// closeness formula; callers hold at least the read lock. With
// weighted=false it is the plain multiplicity m(i,j) (Equation 2). With
// weighted=true it is Σ_l λ^(l−1)·w_dl over the relationship list sorted by
// descending weight (Equation 10), which damps the marginal value of piling
// on extra weak relationships — the falsification counterattack of
// Section 4.4.
func (g *Graph) relationshipStrengthLocked(i, j NodeID, weighted bool, lambda float64) float64 {
	e, ok := g.adj[i][j]
	if !ok {
		return 0
	}
	if !weighted {
		return float64(len(e.rels))
	}
	ws := make([]float64, len(e.rels))
	for k, r := range e.rels {
		ws[k] = r.weight()
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(ws)))
	sum, scale := 0.0, 1.0
	for _, w := range ws {
		sum += scale * w
		scale *= lambda
	}
	return sum
}

// Friends returns the neighbor set S_i of node i in ascending order.
func (g *Graph) Friends(i NodeID) []NodeID {
	g.validate(i)
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.friendsLocked(i, nil)
}

// friendsLocked appends i's neighbors in ascending order to buf (which may
// be nil) and returns the extended slice; callers hold the read lock.
func (g *Graph) friendsLocked(i NodeID, buf []NodeID) []NodeID {
	start := len(buf)
	for j := range g.adj[i] {
		buf = append(buf, j)
	}
	out := buf[start:]
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return buf
}

// Degree returns |S_i|, the number of friends of i.
func (g *Graph) Degree(i NodeID) int {
	g.validate(i)
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.adj[i])
}

// CommonFriends returns S_i ∩ S_j in ascending order.
func (g *Graph) CommonFriends(i, j NodeID) []NodeID {
	g.validate(i, j)
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.commonFriendsLocked(i, j, nil)
}

// commonFriendsLocked appends S_i ∩ S_j in ascending order to buf; callers
// hold the read lock.
func (g *Graph) commonFriendsLocked(i, j NodeID, buf []NodeID) []NodeID {
	small, large := g.adj[i], g.adj[j]
	if len(large) < len(small) {
		small, large = large, small
	}
	start := len(buf)
	for k := range small {
		if _, ok := large[k]; ok {
			buf = append(buf, k)
		}
	}
	out := buf[start:]
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return buf
}

// NoPath is returned by Distance when no path exists within the cutoff.
const NoPath = -1

// Distance returns the hop count of the shortest friendship path between i
// and j via breadth-first search, or NoPath if none exists within maxHops
// (maxHops <= 0 means unbounded). Distance(i,i) is 0.
func (g *Graph) Distance(i, j NodeID, maxHops int) int {
	path := g.ShortestPath(i, j, maxHops)
	if path == nil {
		return NoPath
	}
	return len(path) - 1
}

// ShortestPath returns one shortest friendship path from i to j inclusive of
// both endpoints, or nil if none exists within maxHops (<= 0 for unbounded).
func (g *Graph) ShortestPath(i, j NodeID, maxHops int) []NodeID {
	g.validate(i, j)
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.shortestPathLocked(i, j, maxHops)
}

func (g *Graph) shortestPathLocked(i, j NodeID, maxHops int) []NodeID {
	if i == j {
		return []NodeID{i}
	}
	prev := make(map[NodeID]NodeID, 64)
	prev[i] = i
	frontier := []NodeID{i}
	depth := 0
	var scratch []NodeID
	for len(frontier) > 0 {
		if maxHops > 0 && depth >= maxHops {
			return nil
		}
		depth++
		var next []NodeID
		for _, u := range frontier {
			// Expand neighbors in ID order so the returned path (and any
			// closeness derived from it) is deterministic rather than
			// map-iteration dependent.
			scratch = g.friendsLocked(u, scratch[:0])
			for _, v := range scratch {
				if _, seen := prev[v]; seen {
					continue
				}
				prev[v] = u
				if v == j {
					// Reconstruct the path back to i.
					path := []NodeID{j}
					for cur := j; cur != i; {
						cur = prev[cur]
						path = append(path, cur)
					}
					for a, b := 0, len(path)-1; a < b; a, b = a+1, b-1 {
						path[a], path[b] = path[b], path[a]
					}
					return path
				}
				next = append(next, v)
			}
		}
		frontier = next
	}
	return nil
}

// RecordInteraction adds weight w to the directed interaction frequency
// f(i,j) — one resource request or rating event from i to j. Safe for
// concurrent use across distinct and identical sources.
func (g *Graph) RecordInteraction(i, j NodeID, w float64) {
	g.validate(i, j)
	row := &g.interactions[i]
	row.mu.Lock()
	if row.counts == nil {
		row.counts = make(map[NodeID]float64)
	}
	row.counts[j] += w
	row.mu.Unlock()
	g.bumpTouched(i) // only i's outgoing row — f(i,·) — changed
}

// InteractionFrequency returns f(i,j), the accumulated directed interaction
// weight from i to j.
func (g *Graph) InteractionFrequency(i, j NodeID) float64 {
	g.validate(i, j)
	row := &g.interactions[i]
	row.mu.Lock()
	defer row.mu.Unlock()
	return row.counts[j]
}

// TotalInteractionsFrom returns Σ_k f(i,k), the denominator of Equation 2.
func (g *Graph) TotalInteractionsFrom(i NodeID) float64 {
	g.validate(i)
	row := &g.interactions[i]
	row.mu.Lock()
	defer row.mu.Unlock()
	sum := 0.0
	for _, v := range row.counts {
		sum += v
	}
	return sum
}

// RemoveNodeEdges deletes every friendship edge incident to the node and
// clears its outgoing interaction history — the graph-side effect of a peer
// leaving the network (its ID slot can then be reused by a newcomer).
// Incoming interaction records from other nodes are preserved: other peers
// remember having interacted with the departed identity.
func (g *Graph) RemoveNodeEdges(i NodeID) {
	g.validate(i)
	g.mu.Lock()
	// Every former neighbor's adjacency set changes too: record them all so
	// affected-set queries against the post-removal topology (where the
	// removed edges no longer exist to walk) still reach every node whose
	// closeness depended on one of them.
	touched := make([]NodeID, 0, len(g.adj[i])+1)
	touched = append(touched, i)
	for j := range g.adj[i] {
		delete(g.adj[j], i)
		touched = append(touched, j)
	}
	g.adj[i] = nil
	g.mu.Unlock()
	row := &g.interactions[i]
	row.mu.Lock()
	row.counts = nil
	row.mu.Unlock()
	g.bumpTouched(touched...)
}

// EdgeState is one undirected friendship edge (I < J) with its relationship
// list, as captured by ExportState.
type EdgeState struct {
	I, J NodeID
	Rels []Relationship
}

// State is the serializable form of a Graph: the full topology plus the
// directed interaction table. Epochs and touch logs are deliberately absent —
// they are invalidation bookkeeping for in-memory caches, which start cold
// after a restore anyway.
type State struct {
	NumNodes     int
	Edges        []EdgeState // sorted by (I, J), I < J
	Interactions []map[NodeID]float64
}

// ExportState deep-copies the graph's persistent content in canonical order.
func (g *Graph) ExportState() State {
	st := State{NumNodes: g.n, Interactions: make([]map[NodeID]float64, g.n)}
	g.mu.RLock()
	for i := range g.adj {
		for j, e := range g.adj[i] {
			if NodeID(i) < j {
				st.Edges = append(st.Edges, EdgeState{I: NodeID(i), J: j, Rels: append([]Relationship(nil), e.rels...)})
			}
		}
	}
	g.mu.RUnlock()
	sort.Slice(st.Edges, func(a, b int) bool {
		if st.Edges[a].I != st.Edges[b].I {
			return st.Edges[a].I < st.Edges[b].I
		}
		return st.Edges[a].J < st.Edges[b].J
	})
	for i := range g.interactions {
		row := &g.interactions[i]
		row.mu.Lock()
		if len(row.counts) > 0 {
			m := make(map[NodeID]float64, len(row.counts))
			for k, v := range row.counts {
				m[k] = v
			}
			st.Interactions[i] = m
		}
		row.mu.Unlock()
	}
	return st
}

// ImportState replaces the graph's topology and interaction table with a
// previously exported state and signals full invalidation to derived-state
// consumers. Every relationship list and interaction count afterwards is
// bit-identical to the exporting instance.
func (g *Graph) ImportState(st State) {
	if st.NumNodes != g.n {
		panic(fmt.Sprintf("socialgraph: state for %d nodes imported into %d-node graph", st.NumNodes, g.n))
	}
	g.mu.Lock()
	g.adj = make([]map[NodeID]*edge, g.n)
	for _, es := range st.Edges {
		for _, r := range es.Rels {
			g.addHalf(es.I, es.J, r)
			g.addHalf(es.J, es.I, r)
		}
	}
	g.mu.Unlock()
	for i := range g.interactions {
		row := &g.interactions[i]
		row.mu.Lock()
		row.counts = nil
		if m := st.Interactions[i]; len(m) > 0 {
			row.counts = make(map[NodeID]float64, len(m))
			for k, v := range m {
				row.counts[k] = v
			}
		}
		row.mu.Unlock()
	}
	g.bumpAll()
}

// ResetInteractions clears the interaction table, used between trace epochs.
func (g *Graph) ResetInteractions() {
	for i := range g.interactions {
		row := &g.interactions[i]
		row.mu.Lock()
		row.counts = nil
		row.mu.Unlock()
	}
	g.bumpAll() // every outgoing row changed: global invalidation
}
