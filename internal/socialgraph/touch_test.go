package socialgraph

import (
	"sort"
	"testing"
)

// touchedSet drains TouchedSince into a deduplicated sorted set.
func touchedSet(t *testing.T, g *Graph, since uint64) ([]NodeID, bool) {
	t.Helper()
	nodes, ok := g.TouchedSince(since, nil)
	if !ok {
		return nil, false
	}
	seen := map[NodeID]bool{}
	var out []NodeID
	for _, n := range nodes {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out, true
}

func wantNodes(t *testing.T, got []NodeID, want ...NodeID) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("touched = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("touched = %v, want %v", got, want)
		}
	}
}

// TestTouchLogPerMutator pins which nodes each mutator reports: the full set
// of nodes whose adjacency or outgoing interaction row changed.
func TestTouchLogPerMutator(t *testing.T) {
	g := New(6)
	e0 := g.Epoch()

	g.AddRelationship(0, 1, Relationship{Kind: Friendship})
	got, ok := touchedSet(t, g, e0)
	if !ok {
		t.Fatal("log overflowed unexpectedly")
	}
	wantNodes(t, got, 0, 1)

	e1 := g.Epoch()
	g.RecordInteraction(2, 3, 1)
	got, _ = touchedSet(t, g, e1)
	wantNodes(t, got, 2) // only the source's outgoing row changed

	// RemoveNodeEdges touches the node and every former neighbor — the
	// removed edges no longer exist to walk, so the neighbors must be
	// recorded explicitly.
	g.AddRelationship(0, 4, Relationship{Kind: Colleague})
	e2 := g.Epoch()
	g.RemoveNodeEdges(0)
	got, _ = touchedSet(t, g, e2)
	wantNodes(t, got, 0, 1, 4)

	// Queries from an older sync point accumulate all later touches.
	got, _ = touchedSet(t, g, e1)
	wantNodes(t, got, 0, 1, 2, 4)
}

// TestTouchLogGlobalAndOverflow pins the full-invalidation fallbacks: a
// global mutation (ResetInteractions) and a log overflow both answer
// ok=false for consumers synced before them, while later sync points stay
// answerable.
func TestTouchLogGlobalAndOverflow(t *testing.T) {
	g := New(4)
	e0 := g.Epoch()
	g.RecordInteraction(0, 1, 1)
	g.ResetInteractions()
	if _, ok := g.TouchedSince(e0, nil); ok {
		t.Fatal("TouchedSince answered across a global mutation")
	}
	eAfter := g.Epoch()
	g.RecordInteraction(1, 2, 1)
	got, ok := touchedSet(t, g, eAfter)
	if !ok {
		t.Fatal("TouchedSince not answerable after a global mutation's epoch")
	}
	wantNodes(t, got, 1)

	// Overflow: alternate sources so consecutive-touch collapsing cannot
	// keep the log small.
	e1 := g.Epoch()
	for i := 0; i <= maxTouchLog; i++ {
		g.RecordInteraction(NodeID(i%2), NodeID(2+i%2), 1)
	}
	if _, ok := g.TouchedSince(e1, nil); ok {
		t.Fatal("TouchedSince answered across a log overflow")
	}
	e2 := g.Epoch()
	g.RecordInteraction(3, 0, 1)
	got, ok = touchedSet(t, g, e2)
	if !ok {
		t.Fatal("TouchedSince not answerable after overflow floor")
	}
	wantNodes(t, got, 3)
}

// TestTouchLogCollapsesConsecutive pins the hot-path optimization: repeated
// interactions from one source collapse to a single entry whose epoch is
// raised, and a consumer synced between two collapsed touches still sees
// the node.
func TestTouchLogCollapsesConsecutive(t *testing.T) {
	g := New(3)
	e0 := g.Epoch()
	g.RecordInteraction(0, 1, 1)
	mid := g.Epoch()
	g.RecordInteraction(0, 2, 1) // collapses onto the first entry
	if n := len(g.touchLog); n != 1 {
		t.Fatalf("touch log has %d entries, want 1 (consecutive collapse)", n)
	}
	got, _ := touchedSet(t, g, e0)
	wantNodes(t, got, 0)
	// The consumer synced at mid missed neither touch: the collapsed
	// entry's epoch was raised past mid.
	got, _ = touchedSet(t, g, mid)
	wantNodes(t, got, 0)
}

// TestWithinHops pins the affected-set BFS on a path graph: radius from the
// sources, sources included, seen scratch cleared on return.
func TestWithinHops(t *testing.T) {
	g := New(7)
	for i := 0; i < 6; i++ {
		g.AddRelationship(NodeID(i), NodeID(i+1), Relationship{Kind: Friendship})
	}
	seen := make([]bool, g.NumNodes())
	out := g.WithinHops([]NodeID{3}, 2, seen, nil)
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	wantNodes(t, out, 1, 2, 3, 4, 5)
	for i, s := range seen {
		if s {
			t.Fatalf("seen[%d] not cleared", i)
		}
	}
	// Multi-source with overlap, zero hops: just the deduplicated sources.
	out = g.WithinHops([]NodeID{0, 6, 0}, 0, seen, out[:0])
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	wantNodes(t, out, 0, 6)
}

// TestMaxHopsExported pins the exported dependency-radius accessor against
// the internal default.
func TestMaxHopsExported(t *testing.T) {
	if got := (ClosenessParams{}).MaxHops(); got != 6 {
		t.Fatalf("zero-value MaxHops() = %d, want 6", got)
	}
	if got := (ClosenessParams{MaxPathHops: 3}).MaxHops(); got != 3 {
		t.Fatalf("MaxHops() = %d, want 3", got)
	}
}
