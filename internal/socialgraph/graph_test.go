package socialgraph

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s should panic", name)
		}
	}()
	f()
}

func TestNewAndValidate(t *testing.T) {
	g := New(3)
	if g.NumNodes() != 3 {
		t.Fatalf("NumNodes = %d", g.NumNodes())
	}
	mustPanic(t, "negative size", func() { New(-1) })
	mustPanic(t, "out of range", func() { g.Adjacent(0, 5) })
	mustPanic(t, "self edge", func() { g.AddRelationship(1, 1, Relationship{Kind: Friendship}) })
}

func TestAddRelationshipSymmetric(t *testing.T) {
	g := New(4)
	g.AddRelationship(0, 1, Relationship{Kind: Friendship})
	if !g.Adjacent(0, 1) || !g.Adjacent(1, 0) {
		t.Fatal("edge should be symmetric")
	}
	if g.Adjacent(0, 2) {
		t.Fatal("0 and 2 should not be adjacent")
	}
	if got := g.RelationshipCount(0, 1); got != 1 {
		t.Fatalf("m(0,1) = %d, want 1", got)
	}
	g.AddRelationship(0, 1, Relationship{Kind: Kinship})
	if got := g.RelationshipCount(1, 0); got != 2 {
		t.Fatalf("m(1,0) = %d, want 2", got)
	}
	if got := g.RelationshipCount(0, 3); got != 0 {
		t.Fatalf("m(0,3) = %d, want 0", got)
	}
}

func TestRelationshipsCopy(t *testing.T) {
	g := New(2)
	g.AddRelationship(0, 1, Relationship{Kind: Colleague})
	rels := g.Relationships(0, 1)
	if len(rels) != 1 || rels[0].Kind != Colleague {
		t.Fatalf("Relationships = %+v", rels)
	}
	rels[0].Kind = Kinship // mutating the copy must not affect the graph
	if g.Relationships(0, 1)[0].Kind != Colleague {
		t.Fatal("Relationships returned internal slice")
	}
	if g.Relationships(0, 1) == nil {
		t.Fatal("nil for existing edge")
	}
	if g.Relationships(1, 0) == nil {
		t.Fatal("reverse direction should see the same edge")
	}
}

func TestFriendsAndDegree(t *testing.T) {
	g := New(5)
	g.AddRelationship(2, 0, Relationship{Kind: Friendship})
	g.AddRelationship(2, 4, Relationship{Kind: Friendship})
	g.AddRelationship(2, 1, Relationship{Kind: Friendship})
	got := g.Friends(2)
	want := []NodeID{0, 1, 4}
	if len(got) != len(want) {
		t.Fatalf("Friends = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Friends = %v, want %v", got, want)
		}
	}
	if g.Degree(2) != 3 || g.Degree(3) != 0 {
		t.Fatalf("Degree(2)=%d Degree(3)=%d", g.Degree(2), g.Degree(3))
	}
}

func TestCommonFriends(t *testing.T) {
	g := New(6)
	// 0 and 1 share friends 2 and 3; 4 is only 0's friend.
	for _, j := range []NodeID{2, 3, 4} {
		g.AddRelationship(0, j, Relationship{Kind: Friendship})
	}
	for _, j := range []NodeID{2, 3, 5} {
		g.AddRelationship(1, j, Relationship{Kind: Friendship})
	}
	got := g.CommonFriends(0, 1)
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("CommonFriends = %v, want [2 3]", got)
	}
	if cf := g.CommonFriends(4, 5); len(cf) != 0 {
		t.Fatalf("CommonFriends(4,5) = %v, want empty", cf)
	}
}

func chain(n int) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.AddRelationship(NodeID(i), NodeID(i+1), Relationship{Kind: Friendship})
	}
	return g
}

func TestDistanceAndShortestPath(t *testing.T) {
	g := chain(5) // 0-1-2-3-4
	if d := g.Distance(0, 4, 0); d != 4 {
		t.Fatalf("Distance(0,4) = %d, want 4", d)
	}
	if d := g.Distance(0, 0, 0); d != 0 {
		t.Fatalf("Distance(0,0) = %d, want 0", d)
	}
	if d := g.Distance(0, 4, 3); d != NoPath {
		t.Fatalf("Distance with cutoff 3 = %d, want NoPath", d)
	}
	if d := g.Distance(0, 4, 4); d != 4 {
		t.Fatalf("Distance with cutoff 4 = %d, want 4", d)
	}
	path := g.ShortestPath(0, 3, 0)
	want := []NodeID{0, 1, 2, 3}
	if len(path) != len(want) {
		t.Fatalf("path = %v", path)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
}

func TestDistanceDisconnected(t *testing.T) {
	g := New(4)
	g.AddRelationship(0, 1, Relationship{Kind: Friendship})
	g.AddRelationship(2, 3, Relationship{Kind: Friendship})
	if d := g.Distance(0, 3, 0); d != NoPath {
		t.Fatalf("Distance across components = %d, want NoPath", d)
	}
	if p := g.ShortestPath(0, 3, 0); p != nil {
		t.Fatalf("ShortestPath across components = %v, want nil", p)
	}
}

func TestShortestPathPicksShorter(t *testing.T) {
	// 0-1-2 and 0-2 directly: shortest must be the direct hop.
	g := New(3)
	g.AddRelationship(0, 1, Relationship{Kind: Friendship})
	g.AddRelationship(1, 2, Relationship{Kind: Friendship})
	g.AddRelationship(0, 2, Relationship{Kind: Friendship})
	if d := g.Distance(0, 2, 0); d != 1 {
		t.Fatalf("Distance = %d, want 1", d)
	}
}

func TestInteractions(t *testing.T) {
	g := New(3)
	g.RecordInteraction(0, 1, 1)
	g.RecordInteraction(0, 1, 1)
	g.RecordInteraction(0, 2, 3)
	if f := g.InteractionFrequency(0, 1); f != 2 {
		t.Fatalf("f(0,1) = %v, want 2", f)
	}
	if f := g.InteractionFrequency(1, 0); f != 0 {
		t.Fatal("interactions must be directed")
	}
	if tot := g.TotalInteractionsFrom(0); tot != 5 {
		t.Fatalf("Σf(0,·) = %v, want 5", tot)
	}
	g.ResetInteractions()
	if tot := g.TotalInteractionsFrom(0); tot != 0 {
		t.Fatalf("after reset Σf = %v, want 0", tot)
	}
}

func TestConcurrentInteractionRecording(t *testing.T) {
	g := New(8)
	var wg sync.WaitGroup
	const perWorker = 1000
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(src NodeID) {
			defer wg.Done()
			for k := 0; k < perWorker; k++ {
				g.RecordInteraction(src, (src+1)%8, 1)
				g.RecordInteraction(0, 7, 1) // shared hot row
			}
		}(NodeID(w))
	}
	wg.Wait()
	if f := g.InteractionFrequency(0, 7); f != 8*perWorker {
		t.Fatalf("hot row count = %v, want %d", f, 8*perWorker)
	}
	if f := g.InteractionFrequency(3, 4); f != perWorker {
		t.Fatalf("f(3,4) = %v, want %d", f, perWorker)
	}
}

func TestRelationshipKindString(t *testing.T) {
	if Kinship.String() != "kinship" || Friendship.String() != "friendship" {
		t.Fatal("String() mismatch")
	}
	if RelationshipKind(99).String() == "" {
		t.Fatal("unknown kind should still stringify")
	}
}

func TestDefaultWeightOrdering(t *testing.T) {
	if !(Kinship.DefaultWeight() > Colleague.DefaultWeight() &&
		Colleague.DefaultWeight() > Classmate.DefaultWeight() &&
		Classmate.DefaultWeight() > Friendship.DefaultWeight()) {
		t.Fatal("default weights should decrease with social strength")
	}
}

// --- closeness ---

func TestAdjacentClosenessEquation2(t *testing.T) {
	g := New(4)
	g.AddRelationship(0, 1, Relationship{Kind: Friendship})
	g.AddRelationship(0, 1, Relationship{Kind: Colleague}) // m(0,1)=2
	g.AddRelationship(0, 2, Relationship{Kind: Friendship})
	g.RecordInteraction(0, 1, 6)
	g.RecordInteraction(0, 2, 4)
	p := DefaultClosenessParams()
	got := g.Closeness(0, 1, p)
	want := 2.0 * 6 / 10 // m·f/Σf
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("Ωc(0,1) = %v, want %v", got, want)
	}
}

func TestAdjacentClosenessNoInteractionsFallsBackToUniform(t *testing.T) {
	g := New(3)
	g.AddRelationship(0, 1, Relationship{Kind: Friendship})
	g.AddRelationship(0, 2, Relationship{Kind: Friendship})
	p := DefaultClosenessParams()
	got := g.Closeness(0, 1, p)
	if math.Abs(got-0.5) > 1e-12 { // m=1, uniform 1/|S_0| = 1/2
		t.Fatalf("Ωc with no interactions = %v, want 0.5", got)
	}
}

func TestClosenessSelfIsZero(t *testing.T) {
	g := chain(3)
	if c := g.Closeness(1, 1, DefaultClosenessParams()); c != 0 {
		t.Fatalf("Ωc(i,i) = %v, want 0", c)
	}
}

func TestNonAdjacentCommonFriendEquation3(t *testing.T) {
	// 0-2, 2-1: node 2 is the single common friend of 0 and 1.
	g := New(3)
	g.AddRelationship(0, 2, Relationship{Kind: Friendship})
	g.AddRelationship(2, 1, Relationship{Kind: Friendship})
	g.RecordInteraction(0, 2, 1)
	g.RecordInteraction(2, 1, 1)
	p := DefaultClosenessParams()
	want := (g.Closeness(0, 2, p) + g.Closeness(2, 1, p)) / 2
	got := g.Closeness(0, 1, p)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("Ωc(0,1) = %v, want %v", got, want)
	}
}

func TestNonAdjacentPathMinFallback(t *testing.T) {
	// Chain 0-1-2-3: 0 and 3 share no common friends, so Ωc(0,3) is the
	// minimum adjacent closeness along the path.
	g := chain(4)
	g.RecordInteraction(0, 1, 10)
	g.RecordInteraction(1, 2, 1)
	g.RecordInteraction(1, 0, 9) // makes f(1,2) a small fraction of node 1's total
	g.RecordInteraction(2, 3, 5)
	p := DefaultClosenessParams()
	c01 := g.Closeness(0, 1, p)
	c12 := g.Closeness(1, 2, p)
	c23 := g.Closeness(2, 3, p)
	min := math.Min(c01, math.Min(c12, c23))
	got := g.Closeness(0, 3, p)
	if math.Abs(got-min) > 1e-12 {
		t.Fatalf("Ωc(0,3) = %v, want min %v (parts %v %v %v)", got, min, c01, c12, c23)
	}
}

func TestClosenessUnreachableIsZero(t *testing.T) {
	g := New(4)
	g.AddRelationship(0, 1, Relationship{Kind: Friendship})
	if c := g.Closeness(0, 3, DefaultClosenessParams()); c != 0 {
		t.Fatalf("Ωc unreachable = %v, want 0", c)
	}
}

func TestWeightedRelationshipStrengthEquation10(t *testing.T) {
	g := New(2)
	g.AddRelationship(0, 1, Relationship{Kind: Friendship}) // w=0.6
	g.AddRelationship(0, 1, Relationship{Kind: Kinship})    // w=1.0
	p := ClosenessParams{Weighted: true, Lambda: 0.5, MaxPathHops: 4}
	// Sorted descending: 1.0, 0.6 → 1.0·λ⁰ + 0.6·λ¹ = 1.3, uniform freq /1 friend.
	got := g.Closeness(0, 1, p)
	if math.Abs(got-1.3) > 1e-12 {
		t.Fatalf("weighted Ωc = %v, want 1.3", got)
	}
}

func TestWeightedDampsRelationshipStuffing(t *testing.T) {
	// Adding many weak relationships should grow weighted strength far more
	// slowly than the raw count — the Section 4.4 falsification defense.
	g := New(2)
	for k := 0; k < 10; k++ {
		g.AddRelationship(0, 1, Relationship{Kind: Friendship})
	}
	raw := g.relationshipStrengthLocked(0, 1, false, 0)
	weighted := g.relationshipStrengthLocked(0, 1, true, 0.5)
	if raw != 10 {
		t.Fatalf("raw strength = %v", raw)
	}
	// Geometric series 0.6·(1-0.5^10)/0.5 < 1.2
	if weighted > 1.2 {
		t.Fatalf("weighted strength = %v, want < 1.2", weighted)
	}
}

func TestProfileCloseness(t *testing.T) {
	g := New(4)
	g.AddRelationship(0, 1, Relationship{Kind: Friendship})
	g.AddRelationship(0, 2, Relationship{Kind: Friendship})
	g.AddRelationship(0, 2, Relationship{Kind: Kinship})
	g.RecordInteraction(0, 1, 1)
	g.RecordInteraction(0, 2, 3)
	p := DefaultClosenessParams()
	prof := g.ProfileCloseness(0, []NodeID{1, 2}, p)
	c1, c2 := g.Closeness(0, 1, p), g.Closeness(0, 2, p)
	if prof.N != 2 {
		t.Fatalf("N = %d", prof.N)
	}
	if math.Abs(prof.Mean-(c1+c2)/2) > 1e-12 {
		t.Fatalf("Mean = %v", prof.Mean)
	}
	if prof.Min != math.Min(c1, c2) || prof.Max != math.Max(c1, c2) {
		t.Fatalf("Min/Max = %v/%v", prof.Min, prof.Max)
	}
	empty := g.ProfileCloseness(0, nil, p)
	if empty.N != 0 || empty.Mean != 0 {
		t.Fatalf("empty profile = %+v", empty)
	}
}

// --- properties ---

func TestClosenessNonNegativeProperty(t *testing.T) {
	f := func(edges []uint16, interact []uint16) bool {
		const n = 12
		g := New(n)
		for _, e := range edges {
			i, j := NodeID(e%n), NodeID((e/n)%n)
			if i != j {
				g.AddRelationship(i, j, Relationship{Kind: RelationshipKind(e % 4)})
			}
		}
		for _, e := range interact {
			i, j := NodeID(e%n), NodeID((e/n)%n)
			g.RecordInteraction(i, j, float64(e%7)+1)
		}
		p := DefaultClosenessParams()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if c := g.Closeness(NodeID(i), NodeID(j), p); c < 0 || math.IsNaN(c) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDistanceSymmetricProperty(t *testing.T) {
	f := func(edges []uint16) bool {
		const n = 10
		g := New(n)
		for _, e := range edges {
			i, j := NodeID(e%n), NodeID((e/n)%n)
			if i != j {
				g.AddRelationship(i, j, Relationship{Kind: Friendship})
			}
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if g.Distance(NodeID(i), NodeID(j), 0) != g.Distance(NodeID(j), NodeID(i), 0) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDistanceTriangleInequalityProperty(t *testing.T) {
	f := func(edges []uint16) bool {
		const n = 9
		g := New(n)
		for _, e := range edges {
			i, j := NodeID(e%n), NodeID((e/n)%n)
			if i != j {
				g.AddRelationship(i, j, Relationship{Kind: Friendship})
			}
		}
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				for c := 0; c < n; c++ {
					dab := g.Distance(NodeID(a), NodeID(b), 0)
					dbc := g.Distance(NodeID(b), NodeID(c), 0)
					dac := g.Distance(NodeID(a), NodeID(c), 0)
					if dab == NoPath || dbc == NoPath {
						continue
					}
					if dac == NoPath || dac > dab+dbc {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveNodeEdges(t *testing.T) {
	g := New(4)
	g.AddRelationship(0, 1, Relationship{Kind: Friendship})
	g.AddRelationship(1, 2, Relationship{Kind: Friendship})
	g.RecordInteraction(1, 2, 5)
	g.RecordInteraction(0, 1, 3)
	g.RemoveNodeEdges(1)
	if g.Degree(1) != 0 {
		t.Fatal("node 1 still has edges")
	}
	if g.Adjacent(0, 1) || g.Adjacent(2, 1) {
		t.Fatal("neighbors still adjacent to removed node")
	}
	if g.TotalInteractionsFrom(1) != 0 {
		t.Fatal("outgoing interactions survived removal")
	}
	// Others' memories of the departed identity persist.
	if g.InteractionFrequency(0, 1) != 3 {
		t.Fatal("incoming interaction record should persist")
	}
	// The slot can be rewired.
	g.AddRelationship(1, 3, Relationship{Kind: Kinship})
	if !g.Adjacent(1, 3) {
		t.Fatal("slot not reusable")
	}
}
