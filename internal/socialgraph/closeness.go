package socialgraph

// ClosenessParams configures the Ωc computation.
type ClosenessParams struct {
	// Weighted selects the falsification-resistant relationship term of
	// Equation 10 (Σ λ^(l−1)·w_dl) instead of the raw multiplicity m(i,j)
	// of Equation 2.
	Weighted bool
	// Lambda is the relationship scaling weight λ ∈ [0.5,1] of Equation 10.
	// Ignored unless Weighted is set.
	Lambda float64
	// MaxPathHops bounds the BFS used for the min-along-path fallback of
	// Equation 4. The paper observes users transact within ~3 hops; the
	// evaluation never needs paths longer than 4. Zero means 6.
	MaxPathHops int
}

// DefaultClosenessParams returns the configuration used by the paper's
// evaluation: unweighted relationships and a 6-hop path cutoff.
func DefaultClosenessParams() ClosenessParams {
	return ClosenessParams{Weighted: false, Lambda: 0.75, MaxPathHops: 6}
}

func (p ClosenessParams) maxHops() int {
	if p.MaxPathHops <= 0 {
		return 6
	}
	return p.MaxPathHops
}

// MaxHops returns the effective BFS hop cutoff (MaxPathHops with the zero
// value defaulted) — the dependency radius of one closeness computation,
// which invalidation layers combine with Graph.WithinHops.
func (p ClosenessParams) MaxHops() int { return p.maxHops() }

// Closeness computes the social closeness Ωc(i,j) per Equation 4 (or
// Equation 10 when p.Weighted):
//
//   - adjacent nodes: relationship strength × f(i,j) / Σ_k f(i,k). When i
//     has recorded no interactions at all, the frequency ratio degenerates;
//     we then fall back to a uniform-frequency assumption 1/|S_i| so that a
//     fresh network still has meaningful closeness.
//   - non-adjacent with common friends k: Σ_k (Ωc(i,k)+Ωc(k,j))/2.
//   - non-adjacent without common friends: the minimum adjacent closeness
//     along one shortest friendship path between i and j.
//   - unreachable (or i == j): 0 — a node has no rating relationship with
//     itself, and strangers with no social path have no measurable
//     closeness.
func (g *Graph) Closeness(i, j NodeID, p ClosenessParams) float64 {
	g.validate(i, j)
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.closenessLocked(i, j, p)
}

func (g *Graph) closenessLocked(i, j NodeID, p ClosenessParams) float64 {
	if i == j {
		return 0
	}
	if g.adjacentLocked(i, j) {
		return g.adjacentClosenessLocked(i, j, p)
	}
	common := g.commonFriendsLocked(i, j, nil)
	if len(common) > 0 {
		sum := 0.0
		for _, k := range common {
			sum += (g.adjacentClosenessLocked(i, k, p) + g.adjacentClosenessLocked(k, j, p)) / 2
		}
		return sum
	}
	path := g.shortestPathLocked(i, j, p.maxHops())
	if path == nil {
		return 0
	}
	min := -1.0
	for h := 0; h+1 < len(path); h++ {
		c := g.adjacentClosenessLocked(path[h], path[h+1], p)
		if min < 0 || c < min {
			min = c
		}
	}
	if min < 0 {
		return 0
	}
	return min
}

// adjacentClosenessLocked evaluates the adjacent case of Equation 2 /
// Equation 10; callers hold at least the topology read lock. Interaction
// reads go through the striped row locks, not g.mu.
func (g *Graph) adjacentClosenessLocked(i, j NodeID, p ClosenessParams) float64 {
	strength := g.relationshipStrengthLocked(i, j, p.Weighted, p.Lambda)
	if strength == 0 {
		return 0
	}
	total := g.TotalInteractionsFrom(i)
	if total == 0 {
		// No interactions recorded yet: assume uniform frequency over the
		// friend set so closeness reduces to strength/|S_i|.
		deg := len(g.adj[i])
		if deg == 0 {
			return 0
		}
		return strength / float64(deg)
	}
	return strength * g.InteractionFrequency(i, j) / total
}

// ClosenessFrom computes Ωc(i, j) for every ratee j in one batched pass.
// The results are element-wise bit-identical to calling Closeness(i, j, p)
// per pair on a quiescent graph, but all of rater i's pairs share one BFS
// tree, one common-friend index, and memoized adjacent closenesses and
// interaction totals, so the cost is O(V+E) once plus O(deg) per ratee
// instead of a fresh BFS per pair.
func (g *Graph) ClosenessFrom(i NodeID, ratees []NodeID, p ClosenessParams) []float64 {
	g.validate(i)
	g.validate(ratees...)
	out := make([]float64, len(ratees))
	g.mu.RLock()
	defer g.mu.RUnlock()
	b := newClosenessBatch(g, i, p)
	for idx, j := range ratees {
		out[idx] = b.closeness(j)
	}
	return out
}

// closenessBatch is the shared state of one ClosenessFrom/ProfileCloseness
// pass: every quantity that depends only on the source node i is computed
// once and memoized across ratees. Callers hold the topology read lock for
// the batch's whole lifetime.
type closenessBatch struct {
	g *Graph
	i NodeID
	p ClosenessParams

	fromI  map[NodeID]float64 // memoized adjacent closeness Ωc(i,k) for friends k
	totals map[NodeID]float64 // memoized TotalInteractionsFrom per source node

	bfsDone  bool
	parent   []NodeID // BFS tree from i (parent[i] == i, unvisited == -1)
	cfBuf    []NodeID // common-friend scratch
	frontier []NodeID // BFS scratch
}

func newClosenessBatch(g *Graph, i NodeID, p ClosenessParams) *closenessBatch {
	return &closenessBatch{
		g:      g,
		i:      i,
		p:      p,
		fromI:  make(map[NodeID]float64),
		totals: make(map[NodeID]float64),
	}
}

// closeness mirrors Graph.closenessLocked case by case; each branch
// evaluates the exact expressions of the per-pair path in the same order so
// the float results are bit-identical.
func (b *closenessBatch) closeness(j NodeID) float64 {
	g, i := b.g, b.i
	if i == j {
		return 0
	}
	if g.adjacentLocked(i, j) {
		return b.adjFromI(j)
	}
	b.cfBuf = g.commonFriendsLocked(i, j, b.cfBuf[:0])
	if len(b.cfBuf) > 0 {
		sum := 0.0
		for _, k := range b.cfBuf {
			sum += (b.adjFromI(k) + b.adjClose(k, j)) / 2
		}
		return sum
	}
	if !b.bfsDone {
		b.buildBFS()
	}
	if b.parent[j] < 0 {
		return 0
	}
	// Walk the unique tree path j → i. The per-pair BFS assigns identical
	// parents (same ID-order expansion), so this is the same path and the
	// same minimum.
	min := -1.0
	for cur := j; cur != i; {
		par := b.parent[cur]
		c := b.adjClose(par, cur)
		if min < 0 || c < min {
			min = c
		}
		cur = par
	}
	if min < 0 {
		return 0
	}
	return min
}

// adjFromI memoizes the adjacent closeness from the batch source i.
func (b *closenessBatch) adjFromI(k NodeID) float64 {
	if v, ok := b.fromI[k]; ok {
		return v
	}
	v := b.adjClose(b.i, k)
	b.fromI[k] = v
	return v
}

// adjClose is adjacentClosenessLocked with the per-source interaction total
// memoized for the batch.
func (b *closenessBatch) adjClose(u, v NodeID) float64 {
	g, p := b.g, b.p
	strength := g.relationshipStrengthLocked(u, v, p.Weighted, p.Lambda)
	if strength == 0 {
		return 0
	}
	total, ok := b.totals[u]
	if !ok {
		total = g.TotalInteractionsFrom(u)
		b.totals[u] = total
	}
	if total == 0 {
		deg := len(g.adj[u])
		if deg == 0 {
			return 0
		}
		return strength / float64(deg)
	}
	return strength * g.InteractionFrequency(u, v) / total
}

// buildBFS runs one full breadth-first pass from i, bounded by the hop
// cutoff, expanding neighbors in ID order — the same discovery order as the
// per-pair shortestPathLocked, so every reachable node gets the same parent.
func (b *closenessBatch) buildBFS() {
	g := b.g
	parent := make([]NodeID, g.n)
	for x := range parent {
		parent[x] = -1
	}
	parent[b.i] = b.i
	frontier := append(b.frontier[:0], b.i)
	maxHops := b.p.maxHops()
	var scratch []NodeID
	for depth := 0; len(frontier) > 0 && depth < maxHops; depth++ {
		var next []NodeID
		for _, u := range frontier {
			scratch = g.friendsLocked(u, scratch[:0])
			for _, v := range scratch {
				if parent[v] >= 0 {
					continue
				}
				parent[v] = u
				next = append(next, v)
			}
		}
		frontier = next
	}
	b.parent = parent
	b.bfsDone = true
}

// ClosenessProfile summarizes node i's closeness to a set of peers it has
// rated — the (mean, min, max) triple the Gaussian filter of Equation 6
// centers on.
type ClosenessProfile struct {
	Mean, Min, Max float64
	N              int
}

// ProfileCloseness computes the ClosenessProfile of node i over peers.
// An empty peer set yields a zero profile. It runs on the batched
// closeness path, sharing one BFS and memo table across the peer set.
func (g *Graph) ProfileCloseness(i NodeID, peers []NodeID, p ClosenessParams) ClosenessProfile {
	g.validate(i)
	g.validate(peers...)
	g.mu.RLock()
	defer g.mu.RUnlock()
	b := newClosenessBatch(g, i, p)
	var prof ClosenessProfile
	for idx, j := range peers {
		c := b.closeness(j)
		if idx == 0 {
			prof.Min, prof.Max = c, c
		} else {
			if c < prof.Min {
				prof.Min = c
			}
			if c > prof.Max {
				prof.Max = c
			}
		}
		prof.Mean += c
		prof.N++
	}
	if prof.N > 0 {
		prof.Mean /= float64(prof.N)
	}
	return prof
}
