package socialgraph

// ClosenessParams configures the Ωc computation.
type ClosenessParams struct {
	// Weighted selects the falsification-resistant relationship term of
	// Equation 10 (Σ λ^(l−1)·w_dl) instead of the raw multiplicity m(i,j)
	// of Equation 2.
	Weighted bool
	// Lambda is the relationship scaling weight λ ∈ [0.5,1] of Equation 10.
	// Ignored unless Weighted is set.
	Lambda float64
	// MaxPathHops bounds the BFS used for the min-along-path fallback of
	// Equation 4. The paper observes users transact within ~3 hops; the
	// evaluation never needs paths longer than 4. Zero means 6.
	MaxPathHops int
}

// DefaultClosenessParams returns the configuration used by the paper's
// evaluation: unweighted relationships and a 6-hop path cutoff.
func DefaultClosenessParams() ClosenessParams {
	return ClosenessParams{Weighted: false, Lambda: 0.75, MaxPathHops: 6}
}

func (p ClosenessParams) maxHops() int {
	if p.MaxPathHops <= 0 {
		return 6
	}
	return p.MaxPathHops
}

// Closeness computes the social closeness Ωc(i,j) per Equation 4 (or
// Equation 10 when p.Weighted):
//
//   - adjacent nodes: relationship strength × f(i,j) / Σ_k f(i,k). When i
//     has recorded no interactions at all, the frequency ratio degenerates;
//     we then fall back to a uniform-frequency assumption 1/|S_i| so that a
//     fresh network still has meaningful closeness.
//   - non-adjacent with common friends k: Σ_k (Ωc(i,k)+Ωc(k,j))/2.
//   - non-adjacent without common friends: the minimum adjacent closeness
//     along one shortest friendship path between i and j.
//   - unreachable (or i == j): 0 — a node has no rating relationship with
//     itself, and strangers with no social path have no measurable
//     closeness.
func (g *Graph) Closeness(i, j NodeID, p ClosenessParams) float64 {
	g.validate(i, j)
	if i == j {
		return 0
	}
	if g.Adjacent(i, j) {
		return g.adjacentCloseness(i, j, p)
	}
	common := g.CommonFriends(i, j)
	if len(common) > 0 {
		sum := 0.0
		for _, k := range common {
			sum += (g.adjacentCloseness(i, k, p) + g.adjacentCloseness(k, j, p)) / 2
		}
		return sum
	}
	path := g.ShortestPath(i, j, p.maxHops())
	if path == nil {
		return 0
	}
	min := -1.0
	for h := 0; h+1 < len(path); h++ {
		c := g.adjacentCloseness(path[h], path[h+1], p)
		if min < 0 || c < min {
			min = c
		}
	}
	if min < 0 {
		return 0
	}
	return min
}

// adjacentCloseness evaluates the adjacent case of Equation 2 / Equation 10.
func (g *Graph) adjacentCloseness(i, j NodeID, p ClosenessParams) float64 {
	strength := g.relationshipStrength(i, j, p.Weighted, p.Lambda)
	if strength == 0 {
		return 0
	}
	total := g.TotalInteractionsFrom(i)
	if total == 0 {
		// No interactions recorded yet: assume uniform frequency over the
		// friend set so closeness reduces to strength/|S_i|.
		deg := g.Degree(i)
		if deg == 0 {
			return 0
		}
		return strength / float64(deg)
	}
	return strength * g.InteractionFrequency(i, j) / total
}

// ClosenessProfile summarizes node i's closeness to a set of peers it has
// rated — the (mean, min, max) triple the Gaussian filter of Equation 6
// centers on.
type ClosenessProfile struct {
	Mean, Min, Max float64
	N              int
}

// ProfileCloseness computes the ClosenessProfile of node i over peers.
// An empty peer set yields a zero profile.
func (g *Graph) ProfileCloseness(i NodeID, peers []NodeID, p ClosenessParams) ClosenessProfile {
	var prof ClosenessProfile
	for idx, j := range peers {
		c := g.Closeness(i, j, p)
		if idx == 0 {
			prof.Min, prof.Max = c, c
		} else {
			if c < prof.Min {
				prof.Min = c
			}
			if c > prof.Max {
				prof.Max = c
			}
		}
		prof.Mean += c
		prof.N++
	}
	if prof.N > 0 {
		prof.Mean /= float64(prof.N)
	}
	return prof
}
