package socialgraph

import (
	"testing"

	"socialtrust/internal/xrand"
)

// benchGraph builds a 500-node small-world graph with interactions.
func benchGraph() *Graph {
	g := New(500)
	rng := xrand.New(1)
	for i := 0; i < 500; i++ {
		g.AddRelationship(NodeID(i), NodeID((i+1)%500), Relationship{Kind: Friendship})
		for k := 0; k < 4; k++ {
			j := rng.Intn(500)
			if j != i && !g.Adjacent(NodeID(i), NodeID(j)) {
				g.AddRelationship(NodeID(i), NodeID(j), Relationship{Kind: Friendship})
			}
		}
		g.RecordInteraction(NodeID(i), NodeID((i+1)%500), float64(rng.Intn(5)+1))
	}
	return g
}

func BenchmarkClosenessAdjacent(b *testing.B) {
	g := benchGraph()
	p := DefaultClosenessParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Closeness(NodeID(i%500), NodeID((i+1)%500), p)
	}
}

func BenchmarkClosenessNonAdjacent(b *testing.B) {
	g := benchGraph()
	p := DefaultClosenessParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Closeness(NodeID(i%500), NodeID((i+250)%500), p)
	}
}

func BenchmarkShortestPath(b *testing.B) {
	g := benchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.ShortestPath(NodeID(i%500), NodeID((i+137)%500), 6)
	}
}

// BenchmarkClosenessFrom measures the batched single-source path: one rater
// against 64 spread-out ratees, sharing one BFS tree and memoized adjacent
// closenesses across the whole batch.
func BenchmarkClosenessFrom(b *testing.B) {
	g := benchGraph()
	p := DefaultClosenessParams()
	ratees := make([]NodeID, 64)
	for k := range ratees {
		ratees[k] = NodeID((k*7 + 3) % 500)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.ClosenessFrom(NodeID(i%500), ratees, p)
	}
}

// BenchmarkClosenessPerPair is the same workload as BenchmarkClosenessFrom
// issued as 64 independent per-pair queries — the before/after comparison
// for the batched path.
func BenchmarkClosenessPerPair(b *testing.B) {
	g := benchGraph()
	p := DefaultClosenessParams()
	ratees := make([]NodeID, 64)
	for k := range ratees {
		ratees[k] = NodeID((k*7 + 3) % 500)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, j := range ratees {
			g.Closeness(NodeID(i%500), j, p)
		}
	}
}
