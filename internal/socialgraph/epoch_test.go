package socialgraph

import (
	"math"
	"sync"
	"testing"

	"socialtrust/internal/xrand"
)

// TestEpochBumpedByEveryMutator pins the cache-invalidation contract: each
// mutator advances the epoch, reads never do.
func TestEpochBumpedByEveryMutator(t *testing.T) {
	g := New(4)
	e0 := g.Epoch()

	g.AddRelationship(0, 1, Relationship{Kind: Friendship})
	if g.Epoch() <= e0 {
		t.Fatal("AddRelationship did not bump the epoch")
	}
	e1 := g.Epoch()

	g.RecordInteraction(0, 1, 1)
	if g.Epoch() <= e1 {
		t.Fatal("RecordInteraction did not bump the epoch")
	}
	e2 := g.Epoch()

	g.RemoveNodeEdges(1)
	if g.Epoch() <= e2 {
		t.Fatal("RemoveNodeEdges did not bump the epoch")
	}
	e3 := g.Epoch()

	g.ResetInteractions()
	if g.Epoch() <= e3 {
		t.Fatal("ResetInteractions did not bump the epoch")
	}
	e4 := g.Epoch()

	// Pure reads leave the epoch unchanged.
	g.AddRelationship(0, 2, Relationship{Kind: Friendship})
	e5 := g.Epoch()
	_ = g.Adjacent(0, 2)
	_ = g.Friends(0)
	_ = g.Degree(0)
	_ = g.CommonFriends(0, 2)
	_ = g.Closeness(0, 2, DefaultClosenessParams())
	_ = g.ClosenessFrom(0, []NodeID{1, 2, 3}, DefaultClosenessParams())
	_ = g.Distance(0, 3, 4)
	_ = g.InteractionFrequency(0, 1)
	_ = g.TotalInteractionsFrom(0)
	if g.Epoch() != e5 {
		t.Fatalf("read path moved the epoch: %d -> %d", e5, g.Epoch())
	}
	if e4 >= e5 {
		t.Fatal("epoch is not monotonically increasing")
	}
}

// TestClosenessFromMatchesPerPair asserts the batched single-source path is
// bit-identical to per-pair Closeness on a quiescent graph, across all three
// branch kinds (adjacent, common-friend, shortest-path) and both the plain
// and weighted (Equation 10) forms.
func TestClosenessFromMatchesPerPair(t *testing.T) {
	for _, weighted := range []bool{false, true} {
		g := randomGraph(200, 3)
		p := DefaultClosenessParams()
		p.Weighted = weighted
		for i := 0; i < 200; i += 7 {
			ratees := make([]NodeID, 0, 64)
			for j := 0; j < 200; j += 3 {
				ratees = append(ratees, NodeID(j))
			}
			got := g.ClosenessFrom(NodeID(i), ratees, p)
			for idx, j := range ratees {
				want := g.Closeness(NodeID(i), j, p)
				if got[idx] != want { // bit-identical, no tolerance
					t.Fatalf("weighted=%v ClosenessFrom(%d)[%d→%d] = %v, per-pair Closeness = %v (diff %g)",
						weighted, i, i, j, got[idx], want, math.Abs(got[idx]-want))
				}
			}
		}
	}
}

// TestProfileClosenessMatchesPerPair pins that the batched ProfileCloseness
// still folds exactly the per-pair closeness values.
func TestProfileClosenessMatchesPerPair(t *testing.T) {
	g := randomGraph(120, 4)
	p := DefaultClosenessParams()
	peers := []NodeID{3, 17, 44, 90, 119, 60}
	prof := g.ProfileCloseness(5, peers, p)
	var mean, min, max float64
	for idx, j := range peers {
		c := g.Closeness(5, j, p)
		if idx == 0 {
			min, max = c, c
		} else {
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		mean += c
	}
	mean /= float64(len(peers))
	if prof.Mean != mean || prof.Min != min || prof.Max != max || prof.N != len(peers) {
		t.Fatalf("ProfileCloseness = %+v, want mean=%v min=%v max=%v n=%d", prof, mean, min, max, len(peers))
	}
}

// randomGraph builds a connected pseudo-random graph with interactions,
// sparse enough that all three closeness branches are exercised.
func randomGraph(n, extraDeg int) *Graph {
	g := New(n)
	rng := xrand.New(42)
	for i := 0; i < n; i++ {
		g.AddRelationship(NodeID(i), NodeID((i+1)%n), Relationship{Kind: Friendship})
		for k := 0; k < extraDeg; k++ {
			j := rng.Intn(n)
			if j != i && !g.Adjacent(NodeID(i), NodeID(j)) {
				kind := RelationshipKind(rng.Intn(int(numRelationshipKinds)))
				g.AddRelationship(NodeID(i), NodeID(j), Relationship{Kind: kind})
			}
		}
		for k := 0; k < 3; k++ {
			g.RecordInteraction(NodeID(i), NodeID(rng.Intn(n)), float64(rng.Intn(5)+1))
		}
	}
	return g
}

// TestConcurrentClosenessAndMutation hammers parallel closeness reads
// against topology and interaction mutation; run under -race it proves the
// RWMutex + striped-row locking discipline is sound.
func TestConcurrentClosenessAndMutation(t *testing.T) {
	const n = 80
	g := randomGraph(n, 2)
	p := DefaultClosenessParams()
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := xrand.New(seed)
			for {
				select {
				case <-stop:
					return
				default:
				}
				i := NodeID(rng.Intn(n))
				j := NodeID(rng.Intn(n))
				_ = g.Closeness(i, j, p)
				_ = g.ClosenessFrom(i, []NodeID{j, NodeID((int(j) + 1) % n)}, p)
				_ = g.Epoch()
			}
		}(uint64(w + 1))
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := xrand.New(99)
		for k := 0; k < 500; k++ {
			i := NodeID(rng.Intn(n))
			j := NodeID(rng.Intn(n))
			if i != j {
				g.AddRelationship(i, j, Relationship{Kind: Friendship})
			}
			g.RecordInteraction(i, j, 1)
			if k%100 == 99 {
				g.RemoveNodeEdges(NodeID(rng.Intn(n)))
			}
		}
		close(stop)
	}()
	wg.Wait()
}
