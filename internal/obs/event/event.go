// Package event is the repository's decision-audit layer: a bounded,
// lock-cheap ring-buffer flight recorder of structured decision events,
// complementing the aggregate metrics of internal/obs with per-decision
// forensics. Where obs answers "how many ratings were filtered", event
// answers "*why* was this rating shrunk" — which suspicious behavior fired,
// with what closeness/similarity evidence, against which baseline.
//
// Recording follows the same off-by-default discipline as the metric
// registry: the package-level recorder is a single atomic pointer that is
// nil until Enable is called, so an instrumented hot path pays one atomic
// load (~1ns) and zero allocations while disabled. Emission sites that must
// assemble an event payload should gate on Current():
//
//	if rec := event.Current(); rec != nil {
//	    rec.RecordFilter(event.FilterDecision{...})
//	}
//
// The recorder is a fixed-capacity ring: when full, the oldest events are
// overwritten and counted in Dropped, so a runaway event source degrades
// into losing history rather than memory. Drain copies the buffered events
// out in order and clears the ring; WriteJSONL/ReadJSONL serialize event
// streams one JSON object per line for offline analysis (see internal/audit
// and cmd/socialtrust-audit).
package event

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// FilterDecision records one SocialTrust filtering decision: a directed
// (rater, ratee) pair whose ratings were shrunk in one update interval,
// with the full evidence chain of Sections 3–4 of the paper.
type FilterDecision struct {
	// Interval is the 1-based filter interval (== simulation cycle when
	// driven by the simulator's per-cycle reputation update).
	Interval int `json:"interval"`
	Rater    int `json:"rater"`
	Ratee    int `json:"ratee"`

	// Mask is the B1..B4 behavior bitmask (core.Behavior); Behaviors is its
	// human-readable rendering ("B1|B3").
	Mask      int    `json:"mask"`
	Behaviors string `json:"behaviors"`

	// The social signals of the pair: Ωc and Ωs.
	Closeness  float64 `json:"closeness"`
	Similarity float64 `json:"similarity"`

	// Interval frequency evidence: t+(i,j), t−(i,j), and the thresholds
	// they were compared against.
	Positive     int     `json:"positive"`
	Negative     int     `json:"negative"`
	PosThreshold float64 `json:"pos_threshold"`
	NegThreshold float64 `json:"neg_threshold"`

	// The baseline the Gaussian was centered on for each dimension (system
	// or per-rater profile, whichever was chosen), as mean/width/population.
	// N == 0 means the dimension was disabled or had no baseline.
	ClosenessBaseMean   float64 `json:"closeness_base_mean"`
	ClosenessBaseWidth  float64 `json:"closeness_base_width"`
	ClosenessBaseN      int     `json:"closeness_base_n"`
	SimilarityBaseMean  float64 `json:"similarity_base_mean"`
	SimilarityBaseWidth float64 `json:"similarity_base_width"`
	SimilarityBaseN     int     `json:"similarity_base_n"`

	// GaussianWeight is the Equation 9 factor, FreqScale the frequency
	// normalization min(1, F/t), and Weight their product — the factor
	// actually applied to the pair's rating values.
	GaussianWeight float64 `json:"gaussian_weight"`
	FreqScale      float64 `json:"freq_scale"`
	Weight         float64 `json:"weight"`

	// PreValue/PostValue are the pair's summed rating values before and
	// after the shrink (PostValue == PreValue·Weight).
	PreValue  float64 `json:"pre_value"`
	PostValue float64 `json:"post_value"`
}

// CycleSeries is one simulation cycle's time-series record.
type CycleSeries struct {
	// Cycle is the 1-based simulation cycle.
	Cycle    int     `json:"cycle"`
	Requests int     `json:"requests"`
	QPS      float64 `json:"qps"`
	// AuthenticRatio is the cumulative authentic-download ratio;
	// ColluderShare the fraction of this cycle's requests served by
	// colluders.
	AuthenticRatio float64 `json:"authentic_ratio"`
	ColluderShare  float64 `json:"colluder_share"`
	WallSeconds    float64 `json:"wall_seconds"`
	// Mean normalized reputation by node population after the cycle's
	// reputation update.
	MeanRepPretrusted float64 `json:"mean_rep_pretrusted"`
	MeanRepNormal     float64 `json:"mean_rep_normal"`
	MeanRepColluder   float64 `json:"mean_rep_colluder"`
	// Churn annotations (set only when the run churns the population):
	// online population after the cycle's churn step and the cycle's
	// departure/rejoin counts.
	Online     int `json:"online,omitempty"`
	Departures int `json:"departures,omitempty"`
	Rejoins    int `json:"rejoins,omitempty"`
	// Phases is the cycle's wall-time attribution by pipeline phase,
	// present only when interval tracing (internal/obs/span) was enabled.
	// Like WallSeconds/QPS it is a wall-clock observation, not part of the
	// deterministic event payload.
	Phases *PhaseSeconds `json:"phases,omitempty"`
}

// PhaseSeconds is one cycle's wall-time attribution across the pipeline
// phases of the span ledger (ingest/drain/adjust/iterate), plus the
// unattributed remainder and the attributed fraction of Total.
type PhaseSeconds struct {
	Total    float64 `json:"total"`
	Ingest   float64 `json:"ingest"`
	Drain    float64 `json:"drain"`
	Adjust   float64 `json:"adjust"`
	Iterate  float64 `json:"iterate"`
	Other    float64 `json:"other"`
	Coverage float64 `json:"coverage"`
}

// ManagerEvent records one resource-manager overlay operation or fault
// transition.
type ManagerEvent struct {
	// Kind is "drain" (the periodic drain/merge/broadcast pass), "gossip"
	// (one push-sum protocol run), or — under fault injection — "crash" /
	// "restart" (one shard incarnation going down / coming back).
	Kind string `json:"kind"`
	// Drain: overlay shard count and merged interval rating count.
	Shards  int `json:"shards,omitempty"`
	Ratings int `json:"ratings,omitempty"`
	// Gossip: participants and rounds executed.
	Participants int `json:"participants,omitempty"`
	Rounds       int `json:"rounds,omitempty"`
	// Seconds is the operation's wall time.
	Seconds float64 `json:"seconds"`

	// Fault-injection annotations. Interval is the 1-based update interval
	// (crash/restart/fault-mode drains). Shard is the affected shard for
	// crash/restart events (meaningless for other kinds). Degraded drains
	// report how many shards' interval data was recovered from a replica
	// mirror (Replicas) or lost outright (Missing); Partial marks a drain
	// that proceeded on a surviving quorum rather than full data.
	Interval int  `json:"interval,omitempty"`
	Shard    int  `json:"shard"`
	Missing  int  `json:"missing,omitempty"`
	Replicas int  `json:"replicas,omitempty"`
	Partial  bool `json:"partial,omitempty"`
}

// HealthEvent records one watchdog status transition from the health
// sampler (internal/obs/health): a rule's verdict for a component changing
// between ok/degraded/failing, with the observed value and the threshold it
// was judged against.
//
// Health events are emitted by an asynchronous sampler goroutine, so their
// Seq interleaving with the deterministic filter/cycle/manager streams is
// wall-clock-dependent. The audit layer therefore splits them into their own
// file (internal/audit HealthFile), and determinism contracts compare the
// per-kind streams — never the merged Seq order.
type HealthEvent struct {
	// Sample is the sampler's tick number at which the transition was seen.
	Sample uint64 `json:"sample"`
	// Rule names the watchdog rule (e.g. "mailbox-backlog",
	// "eigentrust-residual-stall"); Component the subsystem it judges
	// ("manager", "eigentrust", "sim", "runtime").
	Rule      string `json:"rule"`
	Component string `json:"component"`
	// Status is the new verdict ("ok", "degraded", "failing"); Prev the one
	// it transitioned from.
	Status string `json:"status"`
	Prev   string `json:"prev"`
	// Detail is a one-line human-readable explanation; Value/Threshold the
	// observation and bound behind the verdict (0 when not meaningful).
	Detail    string  `json:"detail,omitempty"`
	Value     float64 `json:"value,omitempty"`
	Threshold float64 `json:"threshold,omitempty"`
	// UnixNanos is the sample's wall-clock time (observational, like
	// CycleSeries.WallSeconds — not part of any deterministic payload).
	UnixNanos int64 `json:"unix_nanos,omitempty"`
}

// Event is one recorded flight-recorder entry. Exactly one payload field is
// non-nil; Seq is a monotonic per-recorder sequence number assigned at
// record time (gaps after a Drain indicate ring overwrites — see Dropped).
type Event struct {
	Seq     uint64          `json:"seq"`
	Filter  *FilterDecision `json:"filter,omitempty"`
	Cycle   *CycleSeries    `json:"cycle,omitempty"`
	Manager *ManagerEvent   `json:"manager,omitempty"`
	Health  *HealthEvent    `json:"health,omitempty"`
}

// DefaultCapacity is the ring size Enable uses when given a non-positive
// capacity: large enough to hold every decision of a paper-scale run
// (200 nodes × 50 cycles flags a few thousand pairs), small enough to
// bound memory at a few MB.
const DefaultCapacity = 1 << 16

// Recorder is a bounded ring buffer of events. All methods are safe for
// concurrent use; Record-side cost is one mutex acquisition plus a slot
// copy. The zero Recorder is not usable; call NewRecorder.
type Recorder struct {
	mu      sync.Mutex
	buf     []Event // len(buf) == capacity, allocated up front
	start   int     // index of the oldest buffered event
	n       int     // buffered event count
	seq     uint64  // total events ever recorded
	dropped uint64  // events overwritten before being drained
}

// NewRecorder creates a recorder holding at most capacity events
// (DefaultCapacity when capacity <= 0).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{buf: make([]Event, capacity)}
}

// Capacity returns the ring size.
func (r *Recorder) Capacity() int { return len(r.buf) }

// record appends one event, overwriting the oldest when full.
func (r *Recorder) record(e Event) {
	r.mu.Lock()
	r.seq++
	e.Seq = r.seq
	if r.n == len(r.buf) {
		r.buf[r.start] = e
		r.start++
		if r.start == len(r.buf) {
			r.start = 0
		}
		r.dropped++
	} else {
		i := r.start + r.n
		if i >= len(r.buf) {
			i -= len(r.buf)
		}
		r.buf[i] = e
		r.n++
	}
	r.mu.Unlock()
}

// RecordFilter records one filtering decision.
func (r *Recorder) RecordFilter(d FilterDecision) { r.record(Event{Filter: &d}) }

// RecordCycle records one simulation-cycle time-series sample.
func (r *Recorder) RecordCycle(c CycleSeries) { r.record(Event{Cycle: &c}) }

// RecordManager records one manager-overlay operation.
func (r *Recorder) RecordManager(m ManagerEvent) { r.record(Event{Manager: &m}) }

// RecordHealth records one watchdog status transition.
func (r *Recorder) RecordHealth(h HealthEvent) { r.record(Event{Health: &h}) }

// Drain copies the buffered events out in record order (oldest first) and
// clears the ring. Sequence numbers keep increasing across drains.
func (r *Recorder) Drain() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, r.n)
	for i := 0; i < r.n; i++ {
		j := r.start + i
		if j >= len(r.buf) {
			j -= len(r.buf)
		}
		out = append(out, r.buf[j])
	}
	r.start, r.n = 0, 0
	return out
}

// AdvanceSeq raises the recorder's sequence counter to at least n, so the
// next recorded event carries Seq n+1. A crash-restarted run uses this to
// continue the event stream of its pre-crash process: events recovered from
// the durable checkpoint keep their original numbers and freshly recorded
// ones follow contiguously, exactly as an uninterrupted run would number
// them. A lower n than the current counter is ignored.
func (r *Recorder) AdvanceSeq(n uint64) {
	r.mu.Lock()
	if n > r.seq {
		r.seq = n
	}
	r.mu.Unlock()
}

// Len returns the number of currently buffered events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Recorded returns the total number of events ever recorded.
func (r *Recorder) Recorded() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}

// Dropped returns the number of events lost to ring overwrites.
func (r *Recorder) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// active is the package-level recorder; nil means recording is disabled.
var active atomic.Pointer[Recorder]

// Enable installs (and returns) a fresh package-level recorder with the
// given capacity (DefaultCapacity when <= 0), replacing any previous one.
// Events buffered in a replaced recorder are lost unless drained first.
func Enable(capacity int) *Recorder {
	r := NewRecorder(capacity)
	active.Store(r)
	return r
}

// Disable uninstalls the package-level recorder. Undrained events in it are
// discarded (hold the *Recorder returned by Enable to drain after
// disabling).
func Disable() { active.Store(nil) }

// Enabled reports whether a package-level recorder is installed.
func Enabled() bool { return active.Load() != nil }

// Current returns the package-level recorder, or nil while disabled.
// Emission sites gate their payload assembly on this.
func Current() *Recorder { return active.Load() }

// RecordFilter records into the package-level recorder (no-op if disabled).
func RecordFilter(d FilterDecision) {
	if r := active.Load(); r != nil {
		r.RecordFilter(d)
	}
}

// RecordCycle records into the package-level recorder (no-op if disabled).
func RecordCycle(c CycleSeries) {
	if r := active.Load(); r != nil {
		r.RecordCycle(c)
	}
}

// RecordManager records into the package-level recorder (no-op if
// disabled).
func RecordManager(m ManagerEvent) {
	if r := active.Load(); r != nil {
		r.RecordManager(m)
	}
}

// RecordHealth records into the package-level recorder (no-op if disabled).
func RecordHealth(h HealthEvent) {
	if r := active.Load(); r != nil {
		r.RecordHealth(h)
	}
}

// Drain drains the package-level recorder (nil while disabled).
func Drain() []Event {
	if r := active.Load(); r != nil {
		return r.Drain()
	}
	return nil
}

// WriteJSONL writes events one JSON object per line.
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw) // Encode appends the newline
	for i := range events {
		if err := enc.Encode(&events[i]); err != nil {
			return fmt.Errorf("event: encode seq %d: %w", events[i].Seq, err)
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a JSONL event stream written by WriteJSONL. Blank lines
// are skipped; a malformed line is an error carrying its line number.
func ReadJSONL(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var out []Event
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(b, &e); err != nil {
			return nil, fmt.Errorf("event: line %d: %w", line, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("event: read: %w", err)
	}
	return out, nil
}
