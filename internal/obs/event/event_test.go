package event

import (
	"strings"
	"sync"
	"testing"
)

// withDisabled forces the package-level recorder off for the test body,
// restoring the previous recorder afterwards.
func withDisabled(t *testing.T, f func()) {
	t.Helper()
	prev := active.Load()
	active.Store(nil)
	defer active.Store(prev)
	f()
}

func TestRingWraparound(t *testing.T) {
	r := NewRecorder(8)
	for i := 0; i < 20; i++ {
		r.RecordFilter(FilterDecision{Rater: i})
	}
	if got := r.Dropped(); got != 12 {
		t.Fatalf("Dropped = %d, want 12", got)
	}
	events := r.Drain()
	if len(events) != 8 {
		t.Fatalf("drained %d events, want 8", len(events))
	}
	for i, e := range events {
		wantSeq := uint64(13 + i) // oldest surviving is the 13th record
		if e.Seq != wantSeq {
			t.Errorf("event %d: seq = %d, want %d", i, e.Seq, wantSeq)
		}
		if e.Filter == nil || e.Filter.Rater != 12+i {
			t.Errorf("event %d: payload = %+v, want rater %d", i, e.Filter, 12+i)
		}
	}
	if r.Len() != 0 {
		t.Fatalf("ring not empty after Drain: %d", r.Len())
	}
	// The ring keeps working after a drain, with monotonic sequences.
	r.RecordCycle(CycleSeries{Cycle: 1})
	post := r.Drain()
	if len(post) != 1 || post[0].Seq != 21 || post[0].Cycle == nil {
		t.Fatalf("post-drain record = %+v, want seq 21 cycle event", post)
	}
}

// TestDrainWhileRecording hammers the ring from writer goroutines while a
// reader drains concurrently, then checks conservation: every recorded
// event is either drained exactly once or accounted as dropped. Run under
// -race this also proves the locking.
func TestDrainWhileRecording(t *testing.T) {
	r := NewRecorder(64)
	const writers, perWriter = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				r.RecordFilter(FilterDecision{Rater: w, Ratee: i})
			}
		}(w)
	}
	seen := make(map[uint64]bool)
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	collect := func() {
		for _, e := range r.Drain() {
			if seen[e.Seq] {
				t.Errorf("seq %d drained twice", e.Seq)
			}
			seen[e.Seq] = true
		}
	}
	for {
		collect()
		select {
		case <-done:
			collect() // final sweep after all writers finished
			if got, want := uint64(len(seen))+r.Dropped(), r.Recorded(); got != want {
				t.Fatalf("drained %d + dropped %d != recorded %d",
					len(seen), r.Dropped(), want)
			}
			if r.Recorded() != writers*perWriter {
				t.Fatalf("recorded = %d, want %d", r.Recorded(), writers*perWriter)
			}
			return
		default:
		}
	}
}

// TestDisabledPathAllocations pins the off-by-default contract: with no
// recorder installed, the package-level record helpers must not allocate
// (mirroring internal/core/alloc_test.go's style for the metric registry).
func TestDisabledPathAllocations(t *testing.T) {
	withDisabled(t, func() {
		d := FilterDecision{Rater: 1, Ratee: 2, Weight: 0.5}
		c := CycleSeries{Cycle: 3}
		m := ManagerEvent{Kind: "drain"}
		allocs := testing.AllocsPerRun(100, func() {
			RecordFilter(d)
			RecordCycle(c)
			RecordManager(m)
			_ = Drain()
		})
		if allocs != 0 {
			t.Fatalf("disabled record path allocates %.1f/op, want 0", allocs)
		}
		if Enabled() || Current() != nil {
			t.Fatal("recorder unexpectedly enabled")
		}
	})
}

func TestEnableDisableGlobal(t *testing.T) {
	prev := active.Load()
	defer active.Store(prev)

	rec := Enable(16)
	if !Enabled() || Current() != rec {
		t.Fatal("Enable did not install the recorder")
	}
	RecordFilter(FilterDecision{Rater: 7})
	RecordManager(ManagerEvent{Kind: "gossip", Rounds: 3})
	events := Drain()
	if len(events) != 2 || events[0].Filter == nil || events[1].Manager == nil {
		t.Fatalf("global drain = %+v", events)
	}
	Disable()
	if Enabled() || Drain() != nil {
		t.Fatal("Disable left the recorder installed")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	in := []Event{
		{Seq: 1, Filter: &FilterDecision{
			Interval: 2, Rater: 3, Ratee: 4, Mask: 5, Behaviors: "B1|B3",
			Closeness: 0.25, Similarity: 0.5, Positive: 60, Negative: 1,
			PosThreshold: 33, NegThreshold: 33,
			ClosenessBaseMean: 0.4, ClosenessBaseWidth: 0.3, ClosenessBaseN: 100,
			GaussianWeight: 0.8, FreqScale: 0.5, Weight: 0.4,
			PreValue: 60, PostValue: 24,
		}},
		{Seq: 2, Cycle: &CycleSeries{Cycle: 1, Requests: 100, AuthenticRatio: 0.9}},
		{Seq: 3, Manager: &ManagerEvent{Kind: "drain", Shards: 4, Ratings: 1000, Seconds: 0.01}},
	}
	var sb strings.Builder
	if err := WriteJSONL(&sb, in); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(sb.String(), "\n"); got != len(in) {
		t.Fatalf("JSONL has %d lines, want %d", got, len(in))
	}
	out, err := ReadJSONL(strings.NewReader(sb.String() + "\n")) // trailing blank line is fine
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip lost events: %d != %d", len(out), len(in))
	}
	if *out[0].Filter != *in[0].Filter || *out[1].Cycle != *in[1].Cycle || *out[2].Manager != *in[2].Manager {
		t.Fatalf("round trip mutated payloads:\n got %+v\nwant %+v", out, in)
	}
	if _, err := ReadJSONL(strings.NewReader("{bogus\n")); err == nil {
		t.Fatal("malformed line did not error")
	}
}

func TestDefaultCapacity(t *testing.T) {
	if NewRecorder(0).Capacity() != DefaultCapacity {
		t.Fatal("non-positive capacity did not default")
	}
	if NewRecorder(-1).Capacity() != DefaultCapacity {
		t.Fatal("negative capacity did not default")
	}
}

// BenchmarkRecordDisabled backs the ~1ns-disabled claim for emission sites
// that gate on Current().
func BenchmarkRecordDisabled(b *testing.B) {
	prev := active.Load()
	active.Store(nil)
	defer active.Store(prev)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rec := Current(); rec != nil {
			rec.RecordFilter(FilterDecision{Rater: i})
		}
	}
}

func BenchmarkRecordEnabled(b *testing.B) {
	prev := active.Load()
	defer active.Store(prev)
	Enable(1 << 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rec := Current(); rec != nil {
			rec.RecordFilter(FilterDecision{Rater: i})
		}
	}
}
