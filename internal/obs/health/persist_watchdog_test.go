package health

import (
	"testing"
)

// TestPersistErrorsRule: durability failures flip the persist component to
// degraded immediately and to failing when they keep coming.
func TestPersistErrorsRule(t *testing.T) {
	s := New(Config{Hold: 1})
	tick(s, Sample{})
	tick(s, Sample{PersistErrors: 0})
	if got := ruleStatus(t, s, "persist-errors"); got != StatusOK {
		t.Fatalf("no errors = %v, want ok", got)
	}
	tick(s, Sample{PersistErrors: 1})
	if got := ruleStatus(t, s, "persist-errors"); got != StatusDegraded {
		t.Fatalf("first error = %v, want degraded", got)
	}
	for _, c := range s.Components() {
		if c.Name == "persist" && c.Status != StatusDegraded {
			t.Fatalf("persist component = %v, want degraded", c.Status)
		}
	}
	// Sustained failures escalate at the StreakFailing threshold (5).
	for e := 2.0; e <= 5; e++ {
		tick(s, Sample{PersistErrors: e})
	}
	if got := ruleStatus(t, s, "persist-errors"); got != StatusFailing {
		t.Fatalf("streak 5 = %v, want failing", got)
	}
	// Errors stop; the verdict decays after the hold.
	tick(s, Sample{PersistErrors: 5})
	tick(s, Sample{PersistErrors: 5})
	if got := ruleStatus(t, s, "persist-errors"); got != StatusOK {
		t.Fatalf("after recovery = %v, want ok", got)
	}
}

// TestWALFsyncLatencyRule: the mean WAL fsync latency between samples is
// judged against the FsyncDegradedSeconds budget (degraded) and 10x it
// (failing).
func TestWALFsyncLatencyRule(t *testing.T) {
	s := New(Config{Hold: 1}) // default budget 0.1s
	tick(s, Sample{})
	// 10 fsyncs at 1ms mean: healthy.
	tick(s, Sample{PersistFsyncCount: 10, PersistFsyncSum: 0.01})
	if got := ruleStatus(t, s, "wal-fsync-slow"); got != StatusOK {
		t.Fatalf("1ms fsyncs = %v, want ok", got)
	}
	// 10 more at 200ms mean: over budget.
	tick(s, Sample{PersistFsyncCount: 20, PersistFsyncSum: 2.01})
	if got := ruleStatus(t, s, "wal-fsync-slow"); got != StatusDegraded {
		t.Fatalf("200ms fsyncs = %v, want degraded", got)
	}
	// 10 more at 2s mean: over 10x budget.
	tick(s, Sample{PersistFsyncCount: 30, PersistFsyncSum: 22.01})
	if got := ruleStatus(t, s, "wal-fsync-slow"); got != StatusFailing {
		t.Fatalf("2s fsyncs = %v, want failing", got)
	}
	// Back to 1ms; decays after the hold.
	tick(s, Sample{PersistFsyncCount: 40, PersistFsyncSum: 22.02})
	tick(s, Sample{PersistFsyncCount: 50, PersistFsyncSum: 22.03})
	if got := ruleStatus(t, s, "wal-fsync-slow"); got != StatusOK {
		t.Fatalf("after recovery = %v, want ok", got)
	}
}
