package health

import (
	"fmt"
	"sort"
)

// verdict is one rule's judgement of the newest sample. status == StatusOK
// means the rule's condition did not fire this tick (the hold/decay machine
// in evalRule decides whether an earlier verdict lingers).
type verdict struct {
	status    Status
	detail    string
	value     float64
	threshold float64
}

func ok() verdict { return verdict{} }

// rule is one watchdog: a named, per-component predicate over consecutive
// samples, with streak state for rules that require sustained conditions.
// Rules only read Samples — never registry internals — so the full watchdog
// pass costs a handful of float compares per tick.
type rule struct {
	name      string
	component string
	eval      func(r *rule, s *Sampler, prev, cur *Sample) verdict

	streak    int // consecutive firing samples, maintained by each eval
	status    Status
	holdLeft  int
	detail    string
	value     float64
	threshold float64
}

// newRules builds the watchdog set. Thresholds come from cfg (already
// defaulted). Rules that need deltas return ok on the first sample.
func newRules(cfg Config) []*rule {
	return []*rule{
		// Mailbox backlog growing with no drain progress: the overlay is
		// accepting work faster than shards retire it, or a drain stalled.
		{name: "mailbox-backlog", component: "manager", eval: func(r *rule, _ *Sampler, prev, cur *Sample) verdict {
			if prev == nil || !(cur.MailboxDepth > prev.MailboxDepth && cur.Drains == prev.Drains) {
				r.streak = 0
				return ok()
			}
			r.streak++
			switch {
			case r.streak >= cfg.BacklogFailingStreak:
				return verdict{StatusFailing,
					fmt.Sprintf("mailbox depth rose %d consecutive samples without a drain", r.streak),
					cur.MailboxDepth, float64(cfg.BacklogFailingStreak)}
			case r.streak >= cfg.BacklogDegradedStreak:
				return verdict{StatusDegraded,
					fmt.Sprintf("mailbox depth rose %d consecutive samples without a drain", r.streak),
					cur.MailboxDepth, float64(cfg.BacklogDegradedStreak)}
			}
			return ok()
		}},
		// Partial drains: an interval lost at least one shard's ratings
		// outright — degraded immediately, failing when sustained.
		{name: "partial-drain-streak", component: "manager", eval: func(r *rule, _ *Sampler, prev, cur *Sample) verdict {
			if prev == nil || cur.PartialDrains <= prev.PartialDrains {
				r.streak = 0
				return ok()
			}
			r.streak++
			st := StatusDegraded
			if r.streak >= cfg.StreakFailing {
				st = StatusFailing
			}
			return verdict{st,
				fmt.Sprintf("%g partial drains this sample (streak %d)", cur.PartialDrains-prev.PartialDrains, r.streak),
				cur.PartialDrains - prev.PartialDrains, float64(cfg.StreakFailing)}
		}},
		// Replica-recovered drains: no data lost, but the overlay is running
		// on mirrors — degraded while it persists.
		{name: "drain-degraded", component: "manager", eval: func(_ *rule, _ *Sampler, prev, cur *Sample) verdict {
			if prev == nil || cur.ReplicaDrains <= prev.ReplicaDrains {
				return ok()
			}
			return verdict{StatusDegraded,
				fmt.Sprintf("%g shard intervals recovered from replica mirrors this sample", cur.ReplicaDrains-prev.ReplicaDrains),
				cur.ReplicaDrains - prev.ReplicaDrains, 0}
		}},
		// Failovers: submissions rerouted around crashed shards. Capped at
		// degraded no matter how long it persists — a failover is the
		// fault-tolerance path succeeding (every rating still lands), so
		// sustained rerouting means reduced capacity, not lost data. The
		// failing escalations are reserved for loss (partial drains) and
		// liveness (backlog growth, all shards down).
		{name: "failover-streak", component: "manager", eval: func(r *rule, _ *Sampler, prev, cur *Sample) verdict {
			if prev == nil || cur.Failovers <= prev.Failovers {
				r.streak = 0
				return ok()
			}
			r.streak++
			return verdict{StatusDegraded,
				fmt.Sprintf("%g submissions failed over this sample (streak %d)", cur.Failovers-prev.Failovers, r.streak),
				cur.Failovers - prev.Failovers, 0}
		}},
		// Shard outage: crashed shards awaiting restart. Degraded while any
		// are down; failing when every shard is gone.
		{name: "shard-outage", component: "manager", eval: func(_ *rule, _ *Sampler, _, cur *Sample) verdict {
			if cur.ShardsDown <= 0 {
				return ok()
			}
			if cur.Shards > 0 && cur.ShardsDown >= cur.Shards {
				return verdict{StatusFailing,
					fmt.Sprintf("all %g shards down", cur.Shards), cur.ShardsDown, cur.Shards}
			}
			return verdict{StatusDegraded,
				fmt.Sprintf("%g of %g shards down", cur.ShardsDown, cur.Shards), cur.ShardsDown, 0}
		}},
		// EigenTrust hit its iteration cap without converging.
		{name: "eigentrust-maxiter", component: "eigentrust", eval: func(_ *rule, _ *Sampler, prev, cur *Sample) verdict {
			if prev == nil || cur.MaxIterHits <= prev.MaxIterHits {
				return ok()
			}
			return verdict{StatusDegraded,
				fmt.Sprintf("%g power iterations hit MaxIter this sample", cur.MaxIterHits-prev.MaxIterHits),
				cur.MaxIterHits - prev.MaxIterHits, 0}
		}},
		// Residual stall: MaxIter hits with a residual that is not shrinking
		// — the iteration is spinning, not converging.
		{name: "eigentrust-residual-stall", component: "eigentrust", eval: func(r *rule, _ *Sampler, prev, cur *Sample) verdict {
			if prev == nil || cur.MaxIterHits <= prev.MaxIterHits || cur.Residual < prev.Residual {
				r.streak = 0
				return ok()
			}
			r.streak++
			st := StatusDegraded
			if r.streak >= cfg.ResidualStallStreak {
				st = StatusFailing
			}
			return verdict{st,
				fmt.Sprintf("residual %.3g not decreasing across %d MaxIter-capped updates", cur.Residual, r.streak),
				cur.Residual, prev.Residual}
		}},
		// Interval SLO: the mean simulation-cycle wall time of the cycles
		// completed since the last sample overran the configured budget.
		{name: "interval-slo", component: "sim", eval: func(_ *rule, _ *Sampler, prev, cur *Sample) verdict {
			if cfg.SLOInterval <= 0 || prev == nil || cur.CycleCount <= prev.CycleCount {
				return ok()
			}
			mean := (cur.CycleSum - prev.CycleSum) / (cur.CycleCount - prev.CycleCount)
			budget := cfg.SLOInterval.Seconds()
			switch {
			case mean > 2*budget:
				return verdict{StatusFailing,
					fmt.Sprintf("mean interval %.3fs > 2x %.3fs budget", mean, budget), mean, 2 * budget}
			case mean > budget:
				return verdict{StatusDegraded,
					fmt.Sprintf("mean interval %.3fs > %.3fs budget", mean, budget), mean, budget}
			}
			return ok()
		}},
		// Durability failures: WAL appends, fsyncs, or snapshot writes
		// erroring. The run continues (checkpoint failures degrade
		// durability, not correctness) but acknowledged data may no longer
		// survive a crash — degraded immediately, failing when sustained.
		{name: "persist-errors", component: "persist", eval: func(r *rule, _ *Sampler, prev, cur *Sample) verdict {
			if prev == nil || cur.PersistErrors <= prev.PersistErrors {
				r.streak = 0
				return ok()
			}
			r.streak++
			st := StatusDegraded
			if r.streak >= cfg.StreakFailing {
				st = StatusFailing
			}
			return verdict{st,
				fmt.Sprintf("%g durability failures this sample (streak %d)", cur.PersistErrors-prev.PersistErrors, r.streak),
				cur.PersistErrors - prev.PersistErrors, float64(cfg.StreakFailing)}
		}},
		// WAL fsync latency: the mean fsync since the last sample overran
		// the budget — the disk is slowing the durable ingest ack path.
		{name: "wal-fsync-slow", component: "persist", eval: func(_ *rule, _ *Sampler, prev, cur *Sample) verdict {
			if prev == nil || cur.PersistFsyncCount <= prev.PersistFsyncCount {
				return ok()
			}
			mean := (cur.PersistFsyncSum - prev.PersistFsyncSum) / (cur.PersistFsyncCount - prev.PersistFsyncCount)
			budget := cfg.FsyncDegradedSeconds
			switch {
			case mean > 10*budget:
				return verdict{StatusFailing,
					fmt.Sprintf("mean WAL fsync %.3fs > 10x %.3fs budget", mean, budget), mean, 10 * budget}
			case mean > budget:
				return verdict{StatusDegraded,
					fmt.Sprintf("mean WAL fsync %.3fs > %.3fs budget", mean, budget), mean, budget}
			}
			return ok()
		}},
		// Leak heuristics: strictly monotonic goroutine/heap growth across
		// the whole leak window. Plateaus and dips reset the suspicion —
		// workloads legitimately grow, but never without a single pause.
		{name: "goroutine-leak", component: "runtime", eval: func(_ *rule, s *Sampler, prev, cur *Sample) verdict {
			if n := monotonicRun(s.ring, func(x *Sample) float64 { return float64(x.Goroutines) }); n >= cfg.LeakWindow {
				return verdict{StatusDegraded,
					fmt.Sprintf("goroutines rose strictly for %d samples (now %d)", n, cur.Goroutines),
					float64(cur.Goroutines), float64(cfg.LeakWindow)}
			}
			return ok()
		}},
		{name: "heap-leak", component: "runtime", eval: func(_ *rule, s *Sampler, prev, cur *Sample) verdict {
			if n := monotonicRun(s.ring, func(x *Sample) float64 { return float64(x.HeapBytes) }); n >= cfg.LeakWindow {
				return verdict{StatusDegraded,
					fmt.Sprintf("heap grew strictly for %d samples (now %d bytes)", n, cur.HeapBytes),
					float64(cur.HeapBytes), float64(cfg.LeakWindow)}
			}
			return ok()
		}},
	}
}

// monotonicRun returns the length of the strictly-increasing suffix of the
// window under key (in samples, counting the transitions' endpoints).
func monotonicRun(ring []Sample, key func(*Sample) float64) int {
	n := len(ring)
	if n < 2 {
		return n
	}
	run := 1
	for i := n - 1; i > 0; i-- {
		if key(&ring[i]) > key(&ring[i-1]) {
			run++
		} else {
			break
		}
	}
	return run
}

// RuleStatus is one watchdog's externally visible state.
type RuleStatus struct {
	Rule      string  `json:"rule"`
	Status    Status  `json:"status"`
	Streak    int     `json:"streak,omitempty"`
	Detail    string  `json:"detail,omitempty"`
	Value     float64 `json:"value,omitempty"`
	Threshold float64 `json:"threshold,omitempty"`
}

// ComponentStatus aggregates the rules judging one component.
type ComponentStatus struct {
	Name   string       `json:"name"`
	Status Status       `json:"status"`
	Rules  []RuleStatus `json:"rules"`
}

// Components returns the per-component verdicts, sorted by component name,
// each the max of its rules.
func (s *Sampler) Components() []ComponentStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	byName := map[string]*ComponentStatus{}
	var order []string
	for _, r := range s.rules {
		cs := byName[r.component]
		if cs == nil {
			cs = &ComponentStatus{Name: r.component}
			byName[r.component] = cs
			order = append(order, r.component)
		}
		if r.status > cs.Status {
			cs.Status = r.status
		}
		cs.Rules = append(cs.Rules, RuleStatus{
			Rule: r.name, Status: r.status, Streak: r.streak,
			Detail: r.detail, Value: r.value, Threshold: r.threshold,
		})
	}
	sort.Strings(order)
	out := make([]ComponentStatus, 0, len(order))
	for _, name := range order {
		out = append(out, *byName[name])
	}
	return out
}
