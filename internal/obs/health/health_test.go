package health

import (
	"testing"
	"time"

	"socialtrust/internal/obs"
	"socialtrust/internal/obs/event"
)

// tick pushes a fabricated sample through the sampler's watchdog pass.
func tick(s *Sampler, smp Sample) {
	s.ingest(smp, time.Unix(0, int64(s.seq+1)*int64(time.Second)))
}

// ruleStatus digs one rule's current verdict out of the component view.
func ruleStatus(t *testing.T, s *Sampler, name string) Status {
	t.Helper()
	for _, c := range s.Components() {
		for _, r := range c.Rules {
			if r.Rule == name {
				return r.Status
			}
		}
	}
	t.Fatalf("rule %q not found", name)
	return StatusOK
}

func TestMailboxBacklogRule(t *testing.T) {
	s := New(Config{Hold: 1})
	// Depth rising while drains advance: healthy load, not a backlog.
	tick(s, Sample{MailboxDepth: 0, Drains: 0})
	tick(s, Sample{MailboxDepth: 10, Drains: 1})
	tick(s, Sample{MailboxDepth: 20, Drains: 2})
	if got := s.Status(); got != StatusOK {
		t.Fatalf("rising depth with drains = %v, want ok", got)
	}
	// Depth rising with drains stuck: degraded at streak 2, failing at 4.
	tick(s, Sample{MailboxDepth: 30, Drains: 2}) // streak 1
	if got := ruleStatus(t, s, "mailbox-backlog"); got != StatusOK {
		t.Fatalf("streak 1 = %v, want ok", got)
	}
	tick(s, Sample{MailboxDepth: 40, Drains: 2}) // streak 2
	if got := ruleStatus(t, s, "mailbox-backlog"); got != StatusDegraded {
		t.Fatalf("streak 2 = %v, want degraded", got)
	}
	tick(s, Sample{MailboxDepth: 50, Drains: 2})
	tick(s, Sample{MailboxDepth: 60, Drains: 2}) // streak 4
	if got := ruleStatus(t, s, "mailbox-backlog"); got != StatusFailing {
		t.Fatalf("streak 4 = %v, want failing", got)
	}
	// A drain clears the condition; the verdict decays after the hold.
	tick(s, Sample{MailboxDepth: 0, Drains: 3}) // hold tick
	tick(s, Sample{MailboxDepth: 0, Drains: 3})
	if got := ruleStatus(t, s, "mailbox-backlog"); got != StatusOK {
		t.Fatalf("after drain + hold = %v, want ok", got)
	}
}

func TestShardOutageRule(t *testing.T) {
	s := New(Config{Hold: 1})
	tick(s, Sample{Shards: 4, ShardsDown: 0})
	if got := s.Status(); got != StatusOK {
		t.Fatalf("all shards up = %v, want ok", got)
	}
	tick(s, Sample{Shards: 4, ShardsDown: 1})
	if got := ruleStatus(t, s, "shard-outage"); got != StatusDegraded {
		t.Fatalf("1 of 4 down = %v, want degraded", got)
	}
	tick(s, Sample{Shards: 4, ShardsDown: 4})
	if got := ruleStatus(t, s, "shard-outage"); got != StatusFailing {
		t.Fatalf("all down = %v, want failing", got)
	}
	tick(s, Sample{Shards: 4, ShardsDown: 0}) // hold tick
	tick(s, Sample{Shards: 4, ShardsDown: 0})
	if got := s.Status(); got != StatusOK {
		t.Fatalf("recovered = %v, want ok", got)
	}
	if got := s.Worst(); got != StatusFailing {
		t.Fatalf("Worst after recovery = %v, want failing high-water mark", got)
	}
}

func TestDrainDegradationRules(t *testing.T) {
	s := New(Config{Hold: 1, StreakFailing: 3})
	tick(s, Sample{})
	tick(s, Sample{ReplicaDrains: 2})
	if got := ruleStatus(t, s, "drain-degraded"); got != StatusDegraded {
		t.Fatalf("replica drains = %v, want degraded", got)
	}
	// Partial drains escalate to failing on a sustained streak.
	tick(s, Sample{ReplicaDrains: 2, PartialDrains: 1})
	tick(s, Sample{ReplicaDrains: 2, PartialDrains: 2})
	if got := ruleStatus(t, s, "partial-drain-streak"); got != StatusDegraded {
		t.Fatalf("partial streak 2 = %v, want degraded", got)
	}
	tick(s, Sample{ReplicaDrains: 2, PartialDrains: 3})
	if got := ruleStatus(t, s, "partial-drain-streak"); got != StatusFailing {
		t.Fatalf("partial streak 3 = %v, want failing", got)
	}
}

func TestFailoverRule(t *testing.T) {
	s := New(Config{Hold: 1, StreakFailing: 2})
	tick(s, Sample{Failovers: 0})
	tick(s, Sample{Failovers: 5})
	if got := ruleStatus(t, s, "failover-streak"); got != StatusDegraded {
		t.Fatalf("failover delta = %v, want degraded", got)
	}
	// Failovers mean every rating still landed (on a mirror), so the rule
	// never escalates past degraded no matter how long the streak runs.
	tick(s, Sample{Failovers: 9})
	tick(s, Sample{Failovers: 14})
	if got := ruleStatus(t, s, "failover-streak"); got != StatusDegraded {
		t.Fatalf("sustained failover = %v, want degraded (capped)", got)
	}
	tick(s, Sample{Failovers: 14})
	tick(s, Sample{Failovers: 14})
	if got := ruleStatus(t, s, "failover-streak"); got != StatusOK {
		t.Fatalf("quiet failovers = %v, want ok after hold decay", got)
	}
}

func TestEigenTrustRules(t *testing.T) {
	s := New(Config{Hold: 1, ResidualStallStreak: 2})
	tick(s, Sample{MaxIterHits: 0, Residual: 0.5})
	// MaxIter hit with a shrinking residual: degraded but converging.
	tick(s, Sample{MaxIterHits: 1, Residual: 0.1})
	if got := ruleStatus(t, s, "eigentrust-maxiter"); got != StatusDegraded {
		t.Fatalf("maxiter hit = %v, want degraded", got)
	}
	if got := ruleStatus(t, s, "eigentrust-residual-stall"); got != StatusOK {
		t.Fatalf("shrinking residual = %v, want ok", got)
	}
	// Residual stuck across capped updates: the stall rule escalates.
	tick(s, Sample{MaxIterHits: 2, Residual: 0.1})
	if got := ruleStatus(t, s, "eigentrust-residual-stall"); got != StatusDegraded {
		t.Fatalf("stall streak 1 = %v, want degraded", got)
	}
	tick(s, Sample{MaxIterHits: 3, Residual: 0.2})
	if got := ruleStatus(t, s, "eigentrust-residual-stall"); got != StatusFailing {
		t.Fatalf("stall streak 2 = %v, want failing", got)
	}
}

func TestIntervalSLORule(t *testing.T) {
	s := New(Config{Hold: 1, SLOInterval: 100 * time.Millisecond})
	tick(s, Sample{CycleCount: 0, CycleSum: 0})
	tick(s, Sample{CycleCount: 2, CycleSum: 0.1}) // mean 50ms, inside budget
	if got := ruleStatus(t, s, "interval-slo"); got != StatusOK {
		t.Fatalf("inside budget = %v, want ok", got)
	}
	tick(s, Sample{CycleCount: 4, CycleSum: 0.4}) // mean 150ms > 100ms
	if got := ruleStatus(t, s, "interval-slo"); got != StatusDegraded {
		t.Fatalf("over budget = %v, want degraded", got)
	}
	tick(s, Sample{CycleCount: 6, CycleSum: 0.9}) // mean 250ms > 2x budget
	if got := ruleStatus(t, s, "interval-slo"); got != StatusFailing {
		t.Fatalf("over 2x budget = %v, want failing", got)
	}
	// No SLO configured: the rule never fires.
	q := New(Config{})
	tick(q, Sample{})
	tick(q, Sample{CycleCount: 1, CycleSum: 1e6})
	if got := q.Status(); got != StatusOK {
		t.Fatalf("no SLO configured = %v, want ok", got)
	}
}

func TestLeakRules(t *testing.T) {
	s := New(Config{Hold: 1, LeakWindow: 4, Window: 16})
	for i := 0; i < 3; i++ {
		tick(s, Sample{Goroutines: 10 + i, HeapBytes: 1000})
	}
	if got := s.Status(); got != StatusOK {
		t.Fatalf("run of 3 < window 4 = %v, want ok", got)
	}
	tick(s, Sample{Goroutines: 13, HeapBytes: 1000})
	if got := ruleStatus(t, s, "goroutine-leak"); got != StatusDegraded {
		t.Fatalf("monotonic run 4 = %v, want degraded", got)
	}
	if got := ruleStatus(t, s, "heap-leak"); got != StatusOK {
		t.Fatalf("flat heap = %v, want ok", got)
	}
	// A plateau resets the suspicion.
	tick(s, Sample{Goroutines: 13, HeapBytes: 1000}) // hold tick
	tick(s, Sample{Goroutines: 13, HeapBytes: 1000})
	if got := ruleStatus(t, s, "goroutine-leak"); got != StatusOK {
		t.Fatalf("after plateau = %v, want ok", got)
	}
}

func TestWindowBound(t *testing.T) {
	s := New(Config{Window: 4})
	for i := 0; i < 10; i++ {
		tick(s, Sample{Goroutines: i})
	}
	w := s.Window()
	if len(w) != 4 {
		t.Fatalf("window len = %d, want 4", len(w))
	}
	if w[0].Seq != 7 || w[3].Seq != 10 {
		t.Fatalf("window seqs = %d..%d, want 7..10", w[0].Seq, w[3].Seq)
	}
	if got := s.Samples(); got != 10 {
		t.Fatalf("Samples() = %d, want 10", got)
	}
}

func TestTransitionEvents(t *testing.T) {
	rec := event.Enable(1024)
	defer event.Disable()
	s := New(Config{Hold: 1})
	tick(s, Sample{Shards: 4})
	tick(s, Sample{Shards: 4, ShardsDown: 1})
	tick(s, Sample{Shards: 4}) // hold
	tick(s, Sample{Shards: 4})
	evs := s.Events()
	if len(evs) != 2 {
		t.Fatalf("local events = %d, want 2 (degrade + recover)", len(evs))
	}
	if evs[0].Rule != "shard-outage" || evs[0].Status != "degraded" || evs[0].Prev != "ok" {
		t.Fatalf("degrade event = %+v", evs[0])
	}
	if evs[1].Status != "ok" || evs[1].Detail != "recovered" {
		t.Fatalf("recover event = %+v", evs[1])
	}
	drained := rec.Drain()
	var health []event.HealthEvent
	for _, e := range drained {
		if e.Health != nil {
			health = append(health, *e.Health)
		}
	}
	if len(health) != 2 || health[0].Rule != "shard-outage" {
		t.Fatalf("flight recorder got %d health events: %+v", len(health), health)
	}
}

// TestSampleOnceReadsRegistry covers the live capture path end to end: real
// metric writes land in the sample, including labeled mailbox-depth sums and
// runtime stats from CaptureRuntime.
func TestSampleOnceReadsRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	obs.SetEnabled(true)
	defer obs.SetEnabled(false)
	reg.Counter("manager_drain_total").Add(7)
	reg.Gauge("manager_shards").Set(4)
	reg.Gauge(obs.Label("manager_mailbox_depth", "shard", "0")).Set(3)
	reg.Gauge(obs.Label("manager_mailbox_depth", "shard", "1")).Set(5)
	reg.Histogram("sim_cycle_seconds").Observe(0.25)

	s := New(Config{Registry: reg})
	smp := s.SampleOnce()
	if smp.Drains != 7 || smp.Shards != 4 {
		t.Fatalf("sample = %+v, want drains 7 shards 4", smp)
	}
	if smp.MailboxDepth != 8 {
		t.Fatalf("mailbox depth = %v, want 8 (summed over shards)", smp.MailboxDepth)
	}
	if smp.CycleCount != 1 || smp.CycleSum != 0.25 {
		t.Fatalf("cycle hist = %v/%v, want 1/0.25", smp.CycleCount, smp.CycleSum)
	}
	if smp.Goroutines <= 0 || smp.HeapBytes == 0 {
		t.Fatalf("runtime stats missing from sample: %+v", smp)
	}
}

func TestStartStopLifecycle(t *testing.T) {
	s := Start(Config{Interval: time.Millisecond, Window: 8})
	if Current() != s {
		t.Fatal("Start did not install the package-level sampler")
	}
	deadline := time.Now().Add(2 * time.Second)
	for s.Samples() < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if s.Samples() < 3 {
		t.Fatalf("sampler took no samples: %d", s.Samples())
	}
	s.Stop()
	s.Stop() // idempotent
	if Current() != nil {
		t.Fatal("Stop did not uninstall the package-level sampler")
	}
}

// TestDisabledPathAllocs pins the disabled path: code consulting the
// package-level sampler while none is installed must cost a nil check and
// nothing else.
func TestDisabledPathAllocs(t *testing.T) {
	if Current() != nil {
		t.Fatal("sampler unexpectedly installed")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if s := Current(); s != nil {
			t.Fatal("unreachable")
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled path allocates %.1f per op, want 0", allocs)
	}
}
