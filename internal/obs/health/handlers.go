package health

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"time"

	"socialtrust/internal/obs"
	"socialtrust/internal/obs/event"
)

// StatusPayload is the /statusz response: the overall verdict, per-component
// breakdown, the sampled time-series window (oldest first) and the recent
// watchdog transitions. cmd/socialtrust-top renders this.
type StatusPayload struct {
	Overall               Status              `json:"overall"`
	WorstOverall          Status              `json:"worst_overall"`
	UptimeSeconds         float64             `json:"uptime_seconds"`
	SampleIntervalSeconds float64             `json:"sample_interval_seconds"`
	SLOIntervalSeconds    float64             `json:"slo_interval_seconds,omitempty"`
	Samples               uint64              `json:"samples"`
	Components            []ComponentStatus   `json:"components"`
	Window                []Sample            `json:"window"`
	Events                []event.HealthEvent `json:"events,omitempty"`
}

// Payload assembles the full /statusz view.
func (s *Sampler) Payload() StatusPayload {
	p := StatusPayload{
		Overall:               s.Status(),
		WorstOverall:          s.Worst(),
		UptimeSeconds:         time.Since(s.started).Seconds(),
		SampleIntervalSeconds: s.cfg.Interval.Seconds(),
		SLOIntervalSeconds:    s.cfg.SLOInterval.Seconds(),
		Samples:               s.Samples(),
		Components:            s.Components(),
		Window:                s.Window(),
		Events:                s.Events(),
	}
	return p
}

// Handler mounts the health probes over base (typically obs.Handler, so one
// mux serves /metrics, pprof and the probes together):
//
//	/healthz — liveness: 200 unless any component is failing (503)
//	/readyz  — readiness: 200 only when every component is ok (503 otherwise)
//	/statusz — the full StatusPayload as JSON
//
// A nil sampler answers every probe 503 ("health sampler off"), so the
// endpoints are mountable before Start.
func Handler(s *Sampler, base http.Handler) http.Handler {
	mux := http.NewServeMux()
	if base != nil {
		mux.Handle("/", base)
	}
	probe := func(ready bool) http.HandlerFunc {
		return func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			if s == nil {
				http.Error(w, "health sampler off", http.StatusServiceUnavailable)
				return
			}
			st := s.Status()
			bad := st == StatusFailing
			if ready {
				bad = st != StatusOK
			}
			if bad {
				w.WriteHeader(http.StatusServiceUnavailable)
			}
			fmt.Fprintf(w, "%s\n", st)
		}
	}
	mux.HandleFunc("/healthz", probe(false))
	mux.HandleFunc("/readyz", probe(true))
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, _ *http.Request) {
		if s == nil {
			http.Error(w, `{"error":"health sampler off"}`, http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		_ = enc.Encode(s.Payload())
	})
	return mux
}

// Serve starts the sampler's combined ops server on addr: metrics, optional
// pprof, and the health probes, with metrics recording enabled (the sampler
// is useless without it). Returns the listening server; Close it and Stop
// the sampler to shut down.
func Serve(addr string, pprofToo bool, s *Sampler) (*http.Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("health: listen %s: %w", addr, err)
	}
	obs.Enable()
	srv := &http.Server{Addr: ln.Addr().String(), Handler: Handler(s, obs.Handler(pprofToo))}
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			obs.Logger().Error("health: ops server failed", "addr", addr, "err", err)
		}
	}()
	return srv, nil
}
