package health

import (
	"sync"
	"testing"
	"time"

	"socialtrust/internal/obs"
	"socialtrust/internal/obs/event"
)

// TestConcurrentSampling is the -race proof for the ops plane: a running
// sampler, hot metric writers, snapshot readers, and a flight-recorder
// drainer all share the registry and recorder concurrently — exactly the
// steady state of a health-enabled run under load.
func TestConcurrentSampling(t *testing.T) {
	obs.SetEnabled(true)
	defer obs.SetEnabled(false)
	rec := event.Enable(1 << 10)
	defer event.Disable()

	s := Start(Config{Interval: 100 * time.Microsecond, Window: 32})
	defer s.Stop()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	writer := func(f func(i int)) {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				f(i)
			}
		}
	}
	wg.Add(4)
	go writer(func(i int) { // hot counter/gauge writes the sampler reads
		obs.C("manager_drain_total").Inc()
		obs.G("manager_shards_down").Set(float64(i % 3))
		obs.G(obs.Label("manager_mailbox_depth", "shard", "0")).Set(float64(i % 100))
	})
	go writer(func(i int) { // histogram writes
		obs.H("sim_cycle_seconds").Observe(float64(i%10) / 1000)
	})
	go writer(func(int) { // concurrent full snapshots (the /metrics path)
		_ = obs.ReadSnapshot()
	})
	go writer(func(int) { // recorder drain racing the sampler's RecordHealth
		_ = rec.Drain()
		_ = s.Payload()
	})

	// Drive ticks explicitly too: busy writers can starve a 100µs ticker
	// under the race detector, and the races we are hunting live in
	// SampleOnce regardless of what triggers it.
	for i := 0; i < 200; i++ {
		s.SampleOnce()
	}
	close(stop)
	wg.Wait()
	if s.Samples() < 200 {
		t.Fatalf("sampler took %d samples, want >= 200", s.Samples())
	}
}
