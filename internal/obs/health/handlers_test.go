package health

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func get(t *testing.T, h http.Handler, path string) (int, string) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	return rr.Code, rr.Body.String()
}

func TestProbesNilSampler(t *testing.T) {
	h := Handler(nil, nil)
	for _, path := range []string{"/healthz", "/readyz", "/statusz"} {
		if code, _ := get(t, h, path); code != http.StatusServiceUnavailable {
			t.Fatalf("%s with nil sampler = %d, want 503", path, code)
		}
	}
}

func TestProbeTransitions(t *testing.T) {
	s := New(Config{Hold: 1})
	h := Handler(s, nil)

	tick(s, Sample{Shards: 4})
	if code, body := get(t, h, "/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("clean healthz = %d %q", code, body)
	}
	if code, _ := get(t, h, "/readyz"); code != http.StatusOK {
		t.Fatalf("clean readyz != 200")
	}

	// Degraded: live but not ready.
	tick(s, Sample{Shards: 4, ShardsDown: 1})
	if code, _ := get(t, h, "/healthz"); code != http.StatusOK {
		t.Fatalf("degraded healthz != 200 (liveness must survive degradation)")
	}
	if code, body := get(t, h, "/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "degraded") {
		t.Fatalf("degraded readyz = %d %q, want 503 degraded", code, body)
	}

	// Failing: both probes go down.
	tick(s, Sample{Shards: 4, ShardsDown: 4})
	if code, _ := get(t, h, "/healthz"); code != http.StatusServiceUnavailable {
		t.Fatalf("failing healthz != 503")
	}
	if code, _ := get(t, h, "/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("failing readyz != 503")
	}
}

func TestStatuszPayload(t *testing.T) {
	s := New(Config{Hold: 1, Interval: time.Second, SLOInterval: 2 * time.Second})
	tick(s, Sample{Shards: 4, MailboxDepth: 2})
	tick(s, Sample{Shards: 4, ShardsDown: 1, MailboxDepth: 3})
	code, body := get(t, Handler(s, nil), "/statusz")
	if code != http.StatusOK {
		t.Fatalf("statusz = %d", code)
	}
	var p StatusPayload
	if err := json.Unmarshal([]byte(body), &p); err != nil {
		t.Fatalf("statusz is not JSON: %v\n%s", err, body)
	}
	if p.Samples != 2 || len(p.Window) != 2 {
		t.Fatalf("payload samples = %d window %d, want 2/2", p.Samples, len(p.Window))
	}
	if p.SampleIntervalSeconds != 1 || p.SLOIntervalSeconds != 2 {
		t.Fatalf("payload cadence = %v/%v", p.SampleIntervalSeconds, p.SLOIntervalSeconds)
	}
	if len(p.Components) == 0 || len(p.Events) == 0 {
		t.Fatalf("payload missing components/events: %+v", p)
	}
	// Status round-trips as its string form.
	if !strings.Contains(body, `"overall": "degraded"`) {
		t.Fatalf("overall not serialized as string:\n%s", body)
	}
}

func TestHandlerFallsThroughToBase(t *testing.T) {
	base := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("metrics here"))
	})
	s := New(Config{})
	if code, body := get(t, Handler(s, base), "/metrics"); code != http.StatusOK || body != "metrics here" {
		t.Fatalf("base handler not reachable: %d %q", code, body)
	}
}
