package health

import (
	"fmt"
	"testing"

	"socialtrust/internal/obs"
)

// populateRegistry fills a private registry with the metric families a
// managed run at roughly shards overlay shards leaves behind, so the
// benchmark samples an exposition the size of a live ops-plane scrape
// (per-shard mailbox gauges are the only family that scales with topology;
// everything else is a fixed set regardless of node count).
func populateRegistry(reg *obs.Registry, shards int) {
	reg.Counter("manager_submit_total").Add(1 << 20)
	reg.Counter("manager_drain_total").Add(512)
	reg.Counter("manager_drain_partial_total").Add(3)
	reg.Counter("manager_drain_replica_total").Add(1)
	reg.Counter("manager_submit_failover_total").Add(9)
	reg.Counter("manager_submit_retries_total").Add(12)
	reg.Counter("manager_shard_crashes_total").Add(2)
	reg.Gauge("manager_shards").Set(float64(shards))
	reg.Gauge("manager_shards_down").Set(0)
	for i := 0; i < shards; i++ {
		reg.Gauge(obs.Label("manager_mailbox_depth", "shard", fmt.Sprint(i))).Set(float64(i % 7))
	}
	reg.Gauge("eigentrust_residual").Set(3e-7)
	reg.Gauge("eigentrust_converged").Set(1)
	reg.Counter("eigentrust_maxiter_hits").Add(0)
	reg.Counter("eigentrust_warm_start_skips").Add(17)
	reg.Counter("eigentrust_updates_total").Add(512)
	reg.Counter("sim_cycles_total").Add(512)
	reg.Counter("sim_requests_total").Add(1 << 22)
	reg.Gauge("sim_queries_per_second").Set(40_000)
	reg.Gauge("sim_interval_last_seconds").Set(0.8)
	for _, name := range []string{
		"sim_cycle_seconds", "manager_drain_seconds",
		"socialtrust_adjust_seconds", "eigentrust_update_seconds",
	} {
		h := reg.Histogram(name)
		for i := 0; i < 64; i++ {
			h.Observe(float64(i%10) / 100)
		}
	}
}

// BenchmarkSampleOnce prices one sampler tick — the runtime capture, the
// registry snapshot, the flatten, and the full watchdog pass — against a
// registry populated like a 10k-node managed run (16 overlay shards). The
// sampler amortizes this cost over its cadence (default 1s), so
// overhead_pct in BENCH_health.json is ns/op divided by the cadence;
// scripts/bench.sh health also divides by the measured 10k-node interval
// wall time for the stricter "percent of one interval" reading.
func BenchmarkSampleOnce(b *testing.B) {
	reg := obs.NewRegistry()
	obs.SetEnabled(true)
	defer obs.SetEnabled(false)
	populateRegistry(reg, 16)
	s := New(Config{Registry: reg, Window: 120})
	// Pre-fill the window so every timed tick pays the steady-state slide.
	for i := 0; i < 130; i++ {
		s.SampleOnce()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SampleOnce()
	}
}
