package health_test

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"socialtrust/internal/fault"
	"socialtrust/internal/manager"
	"socialtrust/internal/obs"
	"socialtrust/internal/obs/event"
	"socialtrust/internal/obs/health"
	"socialtrust/internal/rating"
	"socialtrust/internal/reputation/ebay"
)

// TestStalledShardFlipsReadyz is the ISSUE 8 acceptance scenario: a shard
// deliberately crashed by a fault plan (and kept down) must flip /readyz to
// degraded within two sample ticks and emit a matching HealthEvent.
func TestStalledShardFlipsReadyz(t *testing.T) {
	obs.SetEnabled(true)
	defer obs.SetEnabled(false)
	rec := event.Enable(1 << 10)
	defer event.Disable()

	const n, k = 16, 4
	plan, err := fault.NewPlan(fault.Config{Crashes: []fault.Crash{
		{Shard: 0, AtInterval: 1, Down: 1000}, // down for the whole run
	}}, k)
	if err != nil {
		t.Fatal(err)
	}
	o, err := manager.NewWithOptions(n, k, ebay.New(n), manager.Options{Fault: plan})
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()

	s := health.New(health.Config{})
	h := health.Handler(s, nil)
	readyz := func() int {
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/readyz", nil))
		return rr.Code
	}

	// Healthy baseline: one sample before the stall.
	s.SampleOnce()
	if code := readyz(); code != http.StatusOK {
		t.Fatalf("readyz before stall = %d, want 200", code)
	}

	// Interval 1: the plan kills shard 0; it stays down (no restart due).
	for i := 0; i < n; i++ {
		if err := o.Submit(rating.Rating{Rater: i, Ratee: (i + 1) % n, Value: 1}); err != nil {
			t.Fatal(err)
		}
	}
	o.EndIntervalStatus()

	// Within two ticks the shard-outage watchdog must flip readiness.
	s.SampleOnce()
	s.SampleOnce()
	if got := s.Status(); got != health.StatusDegraded {
		t.Fatalf("status two ticks after stall = %v, want degraded", got)
	}
	if code := readyz(); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz two ticks after stall = %d, want 503", code)
	}

	// The transition surfaced both locally and in the flight recorder.
	found := false
	for _, e := range s.Events() {
		if e.Rule == "shard-outage" && e.Status == "degraded" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no shard-outage HealthEvent in sampler log: %+v", s.Events())
	}
	found = false
	for _, e := range rec.Drain() {
		if e.Health != nil && e.Health.Rule == "shard-outage" && e.Health.Status == "degraded" {
			found = true
		}
	}
	if !found {
		t.Fatal("no shard-outage HealthEvent in the flight recorder")
	}
}
