// Package health is the repository's ops plane: a background sampler that
// periodically snapshots the metric registry plus process runtime stats into
// a bounded time-series ring, a rule-driven watchdog set that judges
// per-component health (ok/degraded/failing) from the deltas between
// samples, and HTTP probe handlers (/healthz, /readyz, /statusz) that expose
// the verdicts and the sampled window next to the existing /metrics mux.
//
// The sampler follows the same off-by-default discipline as the metric
// registry and the flight recorder: nothing runs until Start is called, and
// the package-level sampler is one atomic pointer, so instrumented code pays
// a single nil check while disabled. Crucially the sampler only *reads* —
// metric snapshots, MemStats, /proc — and never feeds anything back into the
// pipeline, so a health-enabled run is bit-identical to a health-disabled
// one in every deterministic output (reputations, detection tables, audit
// streams). Watchdog status transitions are emitted as event.HealthEvent
// into the flight recorder, where the audit layer splits them into their own
// file precisely to keep that contract checkable byte-for-byte.
package health

import (
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"socialtrust/internal/obs"
	"socialtrust/internal/obs/event"
)

// HealthEvent aliases the flight recorder's watchdog-transition payload so
// /statusz consumers (cmd/socialtrust-top) need only this package.
type HealthEvent = event.HealthEvent

// Status is a tri-state component health verdict. Higher is worse, so
// aggregation is max().
type Status int

const (
	StatusOK Status = iota
	StatusDegraded
	StatusFailing
)

// String renders the verdict as its wire form ("ok", "degraded", "failing").
func (s Status) String() string {
	switch s {
	case StatusDegraded:
		return "degraded"
	case StatusFailing:
		return "failing"
	default:
		return "ok"
	}
}

// MarshalJSON encodes the verdict as its string form.
func (s Status) MarshalJSON() ([]byte, error) { return []byte(`"` + s.String() + `"`), nil }

// UnmarshalJSON decodes the string form ("ok"/"degraded"/"failing");
// anything unrecognized decodes as ok. cmd/socialtrust-top round-trips
// StatusPayload through this.
func (s *Status) UnmarshalJSON(b []byte) error {
	switch strings.Trim(string(b), `"`) {
	case "degraded":
		*s = StatusDegraded
	case "failing":
		*s = StatusFailing
	default:
		*s = StatusOK
	}
	return nil
}

// Config parameterizes a Sampler. The zero value is usable: every field has
// a default applied by Start/New.
type Config struct {
	// Interval is the sampling cadence (default 1s).
	Interval time.Duration
	// Window is how many samples the time-series ring keeps (default 120 —
	// two minutes at the default cadence).
	Window int
	// SLOInterval is the per-update-interval wall-time budget judged by the
	// interval-slo watchdog; 0 disables that rule.
	SLOInterval time.Duration
	// Registry is the metric registry to snapshot (nil = obs.Default).
	Registry *obs.Registry

	// Watchdog thresholds; zero means the default in parentheses.
	BacklogDegradedStreak int // consecutive backlog-growth samples before degraded (2)
	BacklogFailingStreak  int // ... before failing (4)
	StreakFailing         int // consecutive partial-drain/failover samples before failing (5)
	ResidualStallStreak   int // consecutive maxiter-hit samples with non-decreasing residual before failing (3)
	LeakWindow            int // samples of strictly monotonic goroutine/heap growth before degraded (30)
	Hold                  int // samples a cleared non-ok verdict lingers before decaying to ok (2)
	// FsyncDegradedSeconds is the mean WAL-fsync latency above which the
	// persist component is degraded; 10x it is failing (0.1s).
	FsyncDegradedSeconds float64
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.Window <= 0 {
		c.Window = 120
	}
	if c.Registry == nil {
		c.Registry = obs.Default
	}
	if c.BacklogDegradedStreak <= 0 {
		c.BacklogDegradedStreak = 2
	}
	if c.BacklogFailingStreak <= 0 {
		c.BacklogFailingStreak = 4
	}
	if c.StreakFailing <= 0 {
		c.StreakFailing = 5
	}
	if c.ResidualStallStreak <= 0 {
		c.ResidualStallStreak = 3
	}
	if c.LeakWindow <= 0 {
		c.LeakWindow = 30
	}
	if c.Hold <= 0 {
		c.Hold = 2
	}
	if c.FsyncDegradedSeconds <= 0 {
		c.FsyncDegradedSeconds = 0.1
	}
	return c
}

// Sample is one tick's curated view of the registry: the metric families the
// watchdogs and the dashboard consume, flattened out of the full snapshot.
// Counter fields are cumulative; consumers take deltas between consecutive
// samples for rates.
type Sample struct {
	Seq       uint64 `json:"seq"`
	UnixNanos int64  `json:"unix_nanos"`

	// Process runtime (from obs.CaptureRuntime, refreshed by this tick).
	Goroutines int     `json:"goroutines"`
	HeapBytes  uint64  `json:"heap_bytes"`
	RSSBytes   uint64  `json:"rss_bytes"`
	GCTotal    float64 `json:"gc_total"`

	// Manager overlay.
	MailboxDepth  float64 `json:"mailbox_depth"` // summed over shards
	Shards        float64 `json:"shards"`
	ShardsDown    float64 `json:"shards_down"`
	Submits       float64 `json:"submits"`
	Drains        float64 `json:"drains"`
	PartialDrains float64 `json:"partial_drains"`
	ReplicaDrains float64 `json:"replica_drains"`
	Failovers     float64 `json:"failovers"`
	Retries       float64 `json:"retries"`
	Crashes       float64 `json:"crashes"`

	// Durability layer (internal/persist). Fsync fields mirror the
	// persist_wal_fsync_seconds histogram; errors count failed WAL appends,
	// fsyncs, and snapshot writes.
	PersistWALBytes   float64 `json:"persist_wal_bytes"`
	PersistErrors     float64 `json:"persist_errors"`
	PersistRecoveries float64 `json:"persist_recoveries"`
	PersistFsyncCount float64 `json:"persist_fsync_count"`
	PersistFsyncSum   float64 `json:"persist_fsync_sum"`

	// EigenTrust engine.
	Residual    float64 `json:"residual"`
	Converged   float64 `json:"converged"`
	MaxIterHits float64 `json:"maxiter_hits"`
	WarmSkips   float64 `json:"warm_skips"`
	Updates     float64 `json:"updates"`

	// Simulator pipeline.
	Cycles              float64 `json:"cycles"`
	Requests            float64 `json:"requests"`
	QPS                 float64 `json:"qps"`
	LastIntervalSeconds float64 `json:"last_interval_seconds"`
	CycleCount          float64 `json:"cycle_count"`   // sim_cycle_seconds count
	CycleSum            float64 `json:"cycle_sum"`     // sim_cycle_seconds sum
	DrainSeconds        float64 `json:"drain_sum"`     // manager_drain_seconds sum
	AdjustSeconds       float64 `json:"adjust_sum"`    // socialtrust_adjust_seconds sum
	IterateSeconds      float64 `json:"iterate_sum"`   // eigentrust_update_seconds sum
	IterateCount        float64 `json:"iterate_count"` // eigentrust_update_seconds count
}

// maxEvents bounds the sampler's local transition log served by /statusz
// (independent of the flight recorder, which may be off).
const maxEvents = 64

// Sampler captures Samples on a cadence and runs the watchdog rules over
// them. All methods are safe for concurrent use. Construct with New (manual
// ticks, for tests and embedding) or Start (background goroutine).
type Sampler struct {
	cfg Config

	mu      sync.Mutex
	ring    []Sample // bounded window, oldest first
	seq     uint64   // ticks taken
	rules   []*rule
	worst   Status // overall high-water mark since start
	events  []event.HealthEvent
	started time.Time

	stop chan struct{}
	done chan struct{}
}

// New builds a sampler without starting its goroutine; call SampleOnce to
// tick it manually. Tests and single-threaded embedders use this.
func New(cfg Config) *Sampler {
	s := &Sampler{cfg: cfg.withDefaults(), started: time.Now()}
	s.rules = newRules(s.cfg)
	return s
}

// Start builds a sampler, launches its background goroutine and installs it
// as the package-level sampler (Current). The goroutine only reads state, so
// it is safe to run alongside any deterministic pipeline.
func Start(cfg Config) *Sampler {
	s := New(cfg)
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	go s.loop()
	active.Store(s)
	return s
}

// Stop terminates the background goroutine (blocking until it exits) and
// uninstalls the sampler if it is the package-level one. Idempotent; a
// sampler built with New is stopped trivially.
func (s *Sampler) Stop() {
	if s.stop != nil {
		select {
		case <-s.stop:
		default:
			close(s.stop)
			<-s.done
		}
	}
	active.CompareAndSwap(s, nil)
}

func (s *Sampler) loop() {
	defer close(s.done)
	tick := time.NewTicker(s.cfg.Interval)
	defer tick.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-tick.C:
			s.SampleOnce()
		}
	}
}

// active is the package-level sampler; nil while disabled.
var active atomic.Pointer[Sampler]

// Current returns the package-level sampler, or nil while disabled.
func Current() *Sampler { return active.Load() }

// SampleOnce takes one sample right now and evaluates the watchdogs over
// it — the body of the background loop, exposed for manual ticking.
func (s *Sampler) SampleOnce() Sample {
	rt := obs.CaptureRuntime() // satellite: the sampler keeps runtime gauges fresh
	snap := s.cfg.Registry.Snapshot()
	return s.ingest(flatten(snap, rt), time.Now())
}

// ingest appends one sample to the ring and runs the watchdog pass over it.
// Tests drive it directly with fabricated samples.
func (s *Sampler) ingest(smp Sample, now time.Time) Sample {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	smp.Seq = s.seq
	smp.UnixNanos = now.UnixNano()

	var prev *Sample
	if n := len(s.ring); n > 0 {
		prev = &s.ring[n-1]
	}
	if prev != nil {
		// The eval pass reads prev by pointer into the ring; copy it out so
		// the window slide below cannot shift it under a rule.
		p := *prev
		prev = &p
	}
	if len(s.ring) == s.cfg.Window {
		copy(s.ring, s.ring[1:])
		s.ring = s.ring[:len(s.ring)-1]
	}
	s.ring = append(s.ring, smp)
	cur := &s.ring[len(s.ring)-1]

	for _, r := range s.rules {
		s.evalRule(r, prev, cur)
	}
	for _, r := range s.rules {
		if r.status > s.worst {
			s.worst = r.status
		}
	}
	return smp
}

// evalRule runs one rule against the newest sample and handles the
// hold/decay state machine and transition events. Callers hold s.mu.
func (s *Sampler) evalRule(r *rule, prev, cur *Sample) {
	v := r.eval(r, s, prev, cur)
	next := r.status
	switch {
	case v.status > StatusOK:
		next = v.status
		r.holdLeft = s.cfg.Hold
		r.detail, r.value, r.threshold = v.detail, v.value, v.threshold
	case r.status > StatusOK:
		// Condition cleared: linger Hold samples, then decay to ok.
		if r.holdLeft > 0 {
			r.holdLeft--
		} else {
			next = StatusOK
		}
	}
	if next == r.status {
		return
	}
	he := event.HealthEvent{
		Sample:    cur.Seq,
		Rule:      r.name,
		Component: r.component,
		Status:    next.String(),
		Prev:      r.status.String(),
		Detail:    r.detail,
		Value:     r.value,
		Threshold: r.threshold,
		UnixNanos: cur.UnixNanos,
	}
	if next == StatusOK {
		he.Detail, he.Value, he.Threshold = "recovered", 0, 0
		r.detail, r.value, r.threshold = "", 0, 0
	}
	r.status = next
	if len(s.events) == maxEvents {
		copy(s.events, s.events[1:])
		s.events = s.events[:maxEvents-1]
	}
	s.events = append(s.events, he)
	event.RecordHealth(he)
}

// flatten curates the watched metric families out of a full snapshot.
func flatten(snap obs.Snapshot, rt obs.RuntimeStats) Sample {
	g := func(name string) float64 { return snap.Gauges[name] }
	c := func(name string) float64 { return float64(snap.Counters[name]) }
	smp := Sample{
		Goroutines: rt.Goroutines,
		HeapBytes:  rt.HeapAlloc,
		RSSBytes:   rt.RSS,
		GCTotal:    float64(rt.NumGC),

		Shards:        g("manager_shards"),
		ShardsDown:    g("manager_shards_down"),
		Submits:       c("manager_submit_total"),
		Drains:        c("manager_drain_total"),
		PartialDrains: c("manager_drain_partial_total"),
		ReplicaDrains: c("manager_drain_replica_total"),
		Failovers:     c("manager_submit_failover_total"),
		Retries:       c("manager_submit_retries_total"),
		Crashes:       c("manager_shard_crashes_total"),

		PersistWALBytes:   c("persist_wal_bytes_total"),
		PersistErrors:     c("persist_errors_total"),
		PersistRecoveries: c("persist_recoveries_total"),

		Residual:    g("eigentrust_residual"),
		Converged:   g("eigentrust_converged"),
		MaxIterHits: c("eigentrust_maxiter_hits_total"),
		WarmSkips:   c("eigentrust_warm_start_skips_total"),
		Updates:     c("eigentrust_updates_total"),

		Cycles:              c("sim_cycles_total"),
		Requests:            c("sim_requests_total"),
		QPS:                 g("sim_queries_per_second"),
		LastIntervalSeconds: g("sim_interval_last_seconds"),
	}
	for name, v := range snap.Gauges {
		if strings.HasPrefix(name, "manager_mailbox_depth{") {
			smp.MailboxDepth += v
		}
	}
	if h, ok := snap.Histograms["sim_cycle_seconds"]; ok {
		smp.CycleCount, smp.CycleSum = float64(h.Count), h.Sum
	}
	if h, ok := snap.Histograms["persist_wal_fsync_seconds"]; ok {
		smp.PersistFsyncCount, smp.PersistFsyncSum = float64(h.Count), h.Sum
	}
	if h, ok := snap.Histograms["manager_drain_seconds"]; ok {
		smp.DrainSeconds = h.Sum
	}
	if h, ok := snap.Histograms["socialtrust_adjust_seconds"]; ok {
		smp.AdjustSeconds = h.Sum
	}
	if h, ok := snap.Histograms["eigentrust_update_seconds"]; ok {
		smp.IterateSeconds, smp.IterateCount = h.Sum, float64(h.Count)
	}
	return smp
}

// Status returns the current overall verdict: the max across components.
func (s *Sampler) Status() Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	worst := StatusOK
	for _, r := range s.rules {
		if r.status > worst {
			worst = r.status
		}
	}
	return worst
}

// Worst returns the overall high-water-mark verdict since the sampler
// started — the durable record CI and post-hoc checks read, immune to a
// transient degradation recovering before the probe lands.
func (s *Sampler) Worst() Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.worst
}

// Window copies out the sampled time-series, oldest first.
func (s *Sampler) Window() []Sample {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Sample, len(s.ring))
	copy(out, s.ring)
	return out
}

// Samples returns the total ticks taken since start.
func (s *Sampler) Samples() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// Events copies out the sampler's bounded transition log, oldest first.
func (s *Sampler) Events() []event.HealthEvent {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]event.HealthEvent, len(s.events))
	copy(out, s.events)
	return out
}
