package obs

import (
	"strings"
	"testing"
)

// TestWriteTextGoldenHelpAndLabels pins the text exposition byte-for-byte on
// a fresh registry: # HELP before # TYPE per family, families sorted by
// name, series within a family sorted by their label sets, and label pairs
// within a series sorted lexically regardless of the order Label composed
// them in. (TestWriteTextGolden covers the help-free baseline format.)
func TestWriteTextGoldenHelpAndLabels(t *testing.T) {
	withEnabled(t, true, func() {
		r := NewRegistry()
		r.Help("jobs_total", "Jobs processed.")
		r.Help("queue_depth", "Pending jobs.")
		r.Help("job_seconds", "Job latency.\nSecond line folds into the first.")

		// Labels deliberately composed out of order: b before a.
		r.Counter(Label(Label("jobs_total", "b", "2"), "a", "1")).Add(3)
		r.Counter(Label("jobs_total", "a", "9")).Add(4)
		r.Counter("errors_total").Add(1) // no help registered
		r.Gauge("queue_depth").Set(7)
		h := r.Histogram(Label("job_seconds", "kind", "batch"), 0.5, 2)
		h.Observe(0.25)
		h.Observe(1)
		h.Observe(5)

		var b strings.Builder
		if err := r.WriteText(&b); err != nil {
			t.Fatal(err)
		}
		want := `# TYPE errors_total counter
errors_total 1
# HELP job_seconds Job latency. Second line folds into the first.
# TYPE job_seconds histogram
job_seconds_bucket{kind="batch",le="0.5"} 1
job_seconds_bucket{kind="batch",le="2"} 2
job_seconds_bucket{kind="batch",le="+Inf"} 3
job_seconds_sum{kind="batch"} 6.25
job_seconds_count{kind="batch"} 3
# HELP jobs_total Jobs processed.
# TYPE jobs_total counter
jobs_total{a="1",b="2"} 3
jobs_total{a="9"} 4
# HELP queue_depth Pending jobs.
# TYPE queue_depth gauge
queue_depth 7
`
		if got := b.String(); got != want {
			t.Fatalf("exposition diverges from golden output:\n--- got ---\n%s--- want ---\n%s", got, want)
		}
	})
}

// TestWriteTextDeterministic pins that two writes of the same registry are
// byte-identical (map iteration order must never leak into the output).
func TestWriteTextDeterministic(t *testing.T) {
	withEnabled(t, true, func() {
		r := NewRegistry()
		for _, shard := range []string{"3", "0", "11", "2"} {
			r.Gauge(Label("mailbox_depth", "shard", shard)).Set(1)
			r.Counter(Label("submits_total", "shard", shard)).Inc()
		}
		var a, b strings.Builder
		if err := r.WriteText(&a); err != nil {
			t.Fatal(err)
		}
		if err := r.WriteText(&b); err != nil {
			t.Fatal(err)
		}
		if a.String() != b.String() {
			t.Fatalf("two writes of one registry differ:\n%s\nvs\n%s", a.String(), b.String())
		}
	})
}

// TestSortLabels covers the quote-aware pair splitter.
func TestSortLabels(t *testing.T) {
	cases := [][2]string{
		{``, ``},
		{`a="1"`, `a="1"`},
		{`b="2",a="1"`, `a="1",b="2"`},
		{`b="x,y",a="1"`, `a="1",b="x,y"`}, // comma inside a quoted value
		{`a="1",b="2"`, `a="1",b="2"`},
	}
	for _, c := range cases {
		if got := sortLabels(c[0]); got != c[1] {
			t.Errorf("sortLabels(%q) = %q, want %q", c[0], got, c[1])
		}
	}
}
