package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// withEnabled runs f with the global switch forced to v, restoring the
// previous state afterwards.
func withEnabled(t *testing.T, v bool, f func()) {
	t.Helper()
	prev := Enabled()
	SetEnabled(v)
	defer SetEnabled(prev)
	f()
}

func TestCounterConcurrent(t *testing.T) {
	withEnabled(t, true, func() {
		r := NewRegistry()
		c := r.Counter("x_total")
		const workers, per = 16, 1000
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < per; i++ {
					c.Inc()
				}
			}()
		}
		wg.Wait()
		if got := c.Value(); got != workers*per {
			t.Fatalf("counter = %d, want %d", got, workers*per)
		}
	})
}

func TestGaugeConcurrent(t *testing.T) {
	withEnabled(t, true, func() {
		r := NewRegistry()
		g := r.Gauge("g")
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < 500; i++ {
					g.Add(1)
					g.SetMax(float64(w))
				}
			}(w)
		}
		wg.Wait()
		// SetMax interleaves with Add, so only Value sanity is checkable:
		// the adds alone contribute 4000.
		if g.Value() < 7 {
			t.Fatalf("gauge = %g, want >= 7", g.Value())
		}
	})
}

func TestHistogramConcurrent(t *testing.T) {
	withEnabled(t, true, func() {
		r := NewRegistry()
		h := r.Histogram("lat_seconds", 0.001, 0.01, 0.1)
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 1000; i++ {
					h.Observe(0.005)
				}
			}()
		}
		wg.Wait()
		if h.Count() != 8000 {
			t.Fatalf("count = %d, want 8000", h.Count())
		}
		if got, want := h.Sum(), 8000*0.005; got < want*0.999 || got > want*1.001 {
			t.Fatalf("sum = %g, want ~%g", got, want)
		}
	})
}

func TestDisabledRecordsNothing(t *testing.T) {
	withEnabled(t, false, func() {
		r := NewRegistry()
		c, g, h := r.Counter("c_total"), r.Gauge("g"), r.Histogram("h_seconds")
		c.Add(5)
		g.Set(3)
		h.Observe(1)
		sp := h.Start()
		if sp.End() != 0 {
			t.Fatal("disabled span returned nonzero duration")
		}
		if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
			t.Fatalf("disabled recording mutated metrics: c=%d g=%g h=%d",
				c.Value(), g.Value(), h.Count())
		}
	})
}

func TestSpanRecords(t *testing.T) {
	withEnabled(t, true, func() {
		r := NewRegistry()
		sp := r.Start("manager.drain")
		time.Sleep(time.Millisecond)
		if d := sp.End(); d < time.Millisecond {
			t.Fatalf("span duration %v too short", d)
		}
		h := r.Histogram("manager_drain_seconds")
		if h.Count() != 1 {
			t.Fatalf("span did not observe into manager_drain_seconds (count=%d)", h.Count())
		}
	})
}

func TestLabelAndSanitize(t *testing.T) {
	if got := Label("x_total", "behavior", "B1"); got != `x_total{behavior="B1"}` {
		t.Errorf("Label = %q", got)
	}
	if got := Label(`x_total{a="1"}`, "b", "2"); got != `x_total{a="1",b="2"}` {
		t.Errorf("Label append = %q", got)
	}
	if got := Sanitize("manager.drain-latency"); got != "manager_drain_latency" {
		t.Errorf("Sanitize = %q", got)
	}
}

// TestWriteTextGolden pins the exposition format: deterministic ordering,
// TYPE comments, labeled series, and cumulative histogram buckets.
func TestWriteTextGolden(t *testing.T) {
	withEnabled(t, true, func() {
		r := NewRegistry()
		r.Counter("b_total").Add(3)
		r.Counter(Label("b_total", "kind", "x")).Add(2)
		r.Gauge("a_gauge").Set(1.5)
		h := r.Histogram("c_seconds", 0.01, 0.1)
		h.Observe(0.005)
		h.Observe(0.05)
		h.Observe(5)

		var sb strings.Builder
		if err := r.WriteText(&sb); err != nil {
			t.Fatal(err)
		}
		want := `# TYPE a_gauge gauge
a_gauge 1.5
# TYPE b_total counter
b_total 3
b_total{kind="x"} 2
# TYPE c_seconds histogram
c_seconds_bucket{le="0.01"} 1
c_seconds_bucket{le="0.1"} 2
c_seconds_bucket{le="+Inf"} 3
c_seconds_sum 5.055
c_seconds_count 3
`
		if sb.String() != want {
			t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", sb.String(), want)
		}
	})
}

func TestWriteJSONRoundTrip(t *testing.T) {
	withEnabled(t, true, func() {
		r := NewRegistry()
		r.Counter("x_total").Add(7)
		r.Histogram("h_seconds", 1).Observe(0.5)
		var sb strings.Builder
		if err := r.WriteJSON(&sb); err != nil {
			t.Fatal(err)
		}
		var snap Snapshot
		if err := json.Unmarshal([]byte(sb.String()), &snap); err != nil {
			t.Fatalf("invalid JSON: %v", err)
		}
		if snap.Counters["x_total"] != 7 {
			t.Errorf("counters = %+v", snap.Counters)
		}
		h := snap.Histograms["h_seconds"]
		if h.Count != 1 || len(h.Buckets) != 2 || h.Buckets[0].Count != 1 {
			t.Errorf("histogram = %+v", h)
		}
	})
}

func TestHandlerServesMetricsAndPprof(t *testing.T) {
	withEnabled(t, true, func() {
		C("handler_test_total").Inc()
		srv := httptest.NewServer(Handler(true))
		defer srv.Close()

		get := func(path string) (int, string) {
			resp, err := http.Get(srv.URL + path)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			body, _ := io.ReadAll(resp.Body)
			return resp.StatusCode, string(body)
		}
		if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "handler_test_total") {
			t.Errorf("/metrics: code=%d body lacks handler_test_total", code)
		}
		if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "runtime_goroutines") {
			t.Errorf("/metrics: code=%d body lacks runtime gauges", code)
		}
		if code, body := get("/metrics.json"); code != 200 || !strings.Contains(body, `"counters"`) {
			t.Errorf("/metrics.json: code=%d invalid body", code)
		}
		if code, _ := get("/debug/pprof/"); code != 200 {
			t.Errorf("/debug/pprof/: code=%d", code)
		}
	})
}

func TestCaptureRuntimeAndPeaks(t *testing.T) {
	withEnabled(t, true, func() {
		ResetRuntimePeaks()
		st := CaptureRuntime()
		if st.Goroutines <= 0 || st.TotalAlloc == 0 {
			t.Fatalf("implausible runtime stats %+v", st)
		}
		snap := ReadSnapshot()
		if snap.Gauges["runtime_goroutines_peak"] < 1 {
			t.Errorf("peak gauge not set: %+v", snap.Gauges)
		}
	})
}

func TestThrottle(t *testing.T) {
	th := &Throttle{Interval: time.Hour}
	if !th.Allow() {
		t.Fatal("first Allow should pass")
	}
	if th.Allow() {
		t.Fatal("second Allow within interval should be throttled")
	}
	zero := &Throttle{}
	if !zero.Allow() || !zero.Allow() {
		t.Fatal("zero-interval throttle should always allow")
	}
}

// The disabled benchmarks back the "<~10ns/op when metrics are off" claim
// for instrumented hot paths.
func BenchmarkCounterDisabled(b *testing.B) {
	SetEnabled(false)
	c := NewRegistry().Counter("bench_total")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkSpanDisabled(b *testing.B) {
	SetEnabled(false)
	h := NewRegistry().Histogram("bench_seconds")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Start().End()
	}
}

func BenchmarkHistogramObserveDisabled(b *testing.B) {
	SetEnabled(false)
	h := NewRegistry().Histogram("bench_seconds")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(0.01)
	}
}

func BenchmarkCounterEnabled(b *testing.B) {
	SetEnabled(true)
	defer SetEnabled(false)
	c := NewRegistry().Counter("bench_total")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkSpanEnabled(b *testing.B) {
	SetEnabled(true)
	defer SetEnabled(false)
	h := NewRegistry().Histogram("bench_seconds")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Start().End()
	}
}
