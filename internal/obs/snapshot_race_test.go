package obs

import (
	"fmt"
	"io"
	"strconv"
	"sync"
	"testing"
)

// TestSnapshotConcurrentWithWritesAndCreation hammers one registry from
// three directions at once — counter/histogram writers, goroutines creating
// fresh labeled series via Label, and readers snapshotting and rendering —
// to prove under -race that Snapshot/WriteText see a consistent registry
// while metrics are being written and registered.
func TestSnapshotConcurrentWithWritesAndCreation(t *testing.T) {
	withEnabled(t, true, func() {
		r := NewRegistry()
		base := r.Counter("hot_total")
		hist := r.Histogram("hot_seconds")

		const writers, per = 8, 400
		var wg sync.WaitGroup
		// Writers on pre-existing metrics.
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < per; i++ {
					base.Inc()
					hist.Observe(float64(i) / per)
				}
			}(w)
		}
		// Creators registering new labeled series while readers iterate.
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < per; i++ {
					name := Label("labeled_total", "shard", strconv.Itoa(w*per+i))
					r.Counter(name).Inc()
				}
			}(w)
		}
		// Readers: snapshots must be internally consistent and renderable.
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		readers := sync.WaitGroup{}
		for w := 0; w < 2; w++ {
			readers.Add(1)
			go func() {
				defer readers.Done()
				for {
					select {
					case <-done:
						return
					default:
					}
					snap := r.Snapshot()
					if snap.Counters["hot_total"] > writers*per {
						t.Errorf("snapshot counter overshot: %d", snap.Counters["hot_total"])
						return
					}
					if err := r.WriteText(io.Discard); err != nil {
						t.Errorf("WriteText: %v", err)
						return
					}
				}
			}()
		}
		<-done
		readers.Wait()

		final := r.Snapshot()
		if got := final.Counters["hot_total"]; got != writers*per {
			t.Fatalf("final counter = %d, want %d", got, writers*per)
		}
		if got := final.Histograms["hot_seconds"].Count; got != writers*per {
			t.Fatalf("final histogram count = %d, want %d", got, writers*per)
		}
		for w := 0; w < 4; w++ {
			for i := 0; i < per; i += per / 4 {
				name := fmt.Sprintf(`labeled_total{shard="%d"}`, w*per+i)
				if final.Counters[name] != 1 {
					t.Fatalf("labeled series %s = %d, want 1", name, final.Counters[name])
				}
			}
		}
	})
}
