// Package obs is the repository's zero-dependency runtime observability
// layer: a concurrency-safe registry of named counters, gauges and
// fixed-bucket histograms, a lightweight span/timer API, Prometheus-text and
// JSON exposition (see expose.go), an optional net/http handler that also
// mounts net/http/pprof, and a package-level structured logger built on
// log/slog (see log.go).
//
// Recording is gated by a single global switch (SetEnabled) that defaults to
// off, so instrumented hot paths cost one atomic load (~1ns) in library use
// and in simulations that do not ask for metrics. Instrumentation sites
// should cache metric handles in package variables:
//
//	var submits = obs.C("manager_submit_total")
//	...
//	submits.Inc()
//
// and time sections either with a cached histogram
//
//	sp := submitLatency.Start()
//	defer sp.End()
//
// or ad hoc by name: obs.Start("manager.drain") (the name is sanitized to
// manager_drain and the histogram named manager_drain_seconds).
//
// Metric names follow Prometheus conventions: *_total for counters,
// *_seconds for latency histograms, plain names for gauges. Labeled series
// are addressed by their full series string, built with Label:
//
//	obs.C(obs.Label("socialtrust_filtered_total", "behavior", "B1"))
package obs

import (
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// enabled is the global recording switch. All mutating metric operations
// no-op while it is false.
var enabled atomic.Bool

// SetEnabled turns metric recording on or off globally.
func SetEnabled(v bool) { enabled.Store(v) }

// Enable turns metric recording on.
func Enable() { enabled.Store(true) }

// Enabled reports whether recording is on.
func Enabled() bool { return enabled.Load() }

// Counter is a monotonically increasing integer metric.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n. No-op when recording is disabled or the counter is nil.
func (c *Counter) Add(n int64) {
	if c == nil || !enabled.Load() {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 metric that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v. No-op when recording is disabled or the gauge is nil.
func (g *Gauge) Set(v float64) {
	if g == nil || !enabled.Load() {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add atomically adds v.
func (g *Gauge) Add(v float64) {
	if g == nil || !enabled.Load() {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// SetMax stores v only if it exceeds the current value — a high-water mark.
func (g *Gauge) SetMax(v float64) {
	if g == nil || !enabled.Load() {
		return
	}
	for {
		old := g.bits.Load()
		if v <= math.Float64frombits(old) {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Reset stores zero regardless of the enabled switch (used to re-arm
// high-water marks between measurement windows).
func (g *Gauge) Reset() {
	if g == nil {
		return
	}
	g.bits.Store(0)
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// DefLatencyBuckets are the default histogram bounds, in seconds: roughly
// exponential from 1µs to 10s, suiting both channel round-trips and whole
// reputation-update intervals.
var DefLatencyBuckets = []float64{
	1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4,
	1e-3, 5e-3, 1e-2, 5e-2, 1e-1, 5e-1, 1, 5, 10,
}

// Histogram is a fixed-bucket histogram with cumulative le-style bounds.
// The last, implicit bucket is +Inf.
type Histogram struct {
	bounds []float64      // sorted upper bounds
	counts []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	sum    Gauge          // atomic float64 accumulator
	count  atomic.Int64
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs)+1)}
}

// Observe records one sample. No-op when recording is disabled or the
// histogram is nil.
func (h *Histogram) Observe(v float64) {
	if h == nil || !enabled.Load() {
		return
	}
	// First bucket whose bound is >= v (Prometheus le semantics).
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.addUnchecked(v)
}

// addUnchecked is Gauge.Add without the enabled gate, for callers that have
// already checked it.
func (g *Gauge) addUnchecked(v float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of recorded samples.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Value()
}

// Span is an in-flight timed section; see Histogram.Start and Start.
type Span struct {
	h     *Histogram
	start time.Time
}

// Start begins a span that Observes its duration (in seconds) into h on End.
// When recording is disabled it returns a zero Span and does not read the
// clock.
func (h *Histogram) Start() Span {
	if h == nil || !enabled.Load() {
		return Span{}
	}
	return Span{h: h, start: time.Now()}
}

// End closes the span and returns its duration (zero for a disabled span).
func (s Span) End() time.Duration {
	if s.h == nil {
		return 0
	}
	d := time.Since(s.start)
	s.h.Observe(d.Seconds())
	return d
}

// Registry is a concurrency-safe collection of named metrics. The zero
// registry is not usable; call NewRegistry. Most code uses the package-level
// Default registry through C/G/H/Start.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	help     map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		help:     make(map[string]string),
	}
}

// Default is the process-wide registry used by C, G, H and Start.
var Default = NewRegistry()

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bounds
// (DefLatencyBuckets when none are given) on first use. Bounds of an
// existing histogram are not changed.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		if len(bounds) == 0 {
			bounds = DefLatencyBuckets
		}
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Start begins a span recorded into the histogram "<sanitized name>_seconds".
func (r *Registry) Start(name string) Span {
	if !enabled.Load() {
		return Span{}
	}
	return r.Histogram(Sanitize(name) + "_seconds").Start()
}

// Help registers a one-line description for a metric family, emitted as the
// family's # HELP line by WriteText. name is the base metric name (labels, if
// present, are stripped); for histograms it is the family name without the
// _bucket/_sum/_count suffixes. Newlines are flattened to spaces — the text
// exposition format is line-oriented. Registering again overwrites.
func (r *Registry) Help(name, text string) {
	base, _ := splitSeries(name)
	text = strings.Join(strings.Fields(text), " ")
	r.mu.Lock()
	r.help[base] = text
	r.mu.Unlock()
}

// helpSnapshot copies the registered help texts.
func (r *Registry) helpSnapshot() map[string]string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]string, len(r.help))
	for k, v := range r.help {
		out[k] = v
	}
	return out
}

// C returns a counter from the Default registry.
func C(name string) *Counter { return Default.Counter(name) }

// G returns a gauge from the Default registry.
func G(name string) *Gauge { return Default.Gauge(name) }

// H returns a histogram from the Default registry.
func H(name string, bounds ...float64) *Histogram { return Default.Histogram(name, bounds...) }

// Start begins a span on the Default registry: obs.Start("manager.drain")
// times into the histogram manager_drain_seconds.
func Start(name string) Span { return Default.Start(name) }

// Help registers a metric family's # HELP text on the Default registry.
func Help(name, text string) { Default.Help(name, text) }

// Label appends one label to a metric name, producing the full series
// string: Label("x_total", "behavior", "B1") == `x_total{behavior="B1"}`.
// Applied to an already-labeled name it appends to the label set.
func Label(name, key, value string) string {
	pair := key + `="` + value + `"`
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:len(name)-1] + "," + pair + "}"
	}
	return name + "{" + pair + "}"
}

// Sanitize maps an arbitrary name onto the Prometheus metric-name alphabet
// [a-zA-Z0-9_:], replacing every other rune with '_'.
func Sanitize(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z',
			r >= '0' && r <= '9', r == '_', r == ':':
			return r
		default:
			return '_'
		}
	}, name)
}
