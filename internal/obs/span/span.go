// Package span is a zero-dependency hierarchical span recorder in the style
// of the internal/obs/event flight recorder: a package-level
// atomic.Pointer-gated singleton, a bounded ring buffer, and emission sites
// that cost one atomic load plus a nil check while disabled. Spans carry
// trace/span IDs, parent links, a pipeline phase label, and typed
// attributes; a per-trace phase ledger rolls finished spans up into a
// wall-time attribution table (ingest/drain/adjust/iterate/other) without
// rescanning the ring.
//
// Trace context crosses goroutine and component boundaries two ways:
//
//   - explicitly, as a Context value stamped into overlay mailbox messages
//     (SubmitBatch → per-shard deliver → drain), and
//   - ambiently, via SetAmbient: the interval driver (sim loop, pipeline
//     sweep) installs the current interval's context so components reached
//     through the reputation.Engine interface (core.Adjust, the EigenTrust
//     power iteration, the manager drain) can parent their spans without a
//     context parameter threading through every signature.
//
// Recording never alters execution paths: enabling tracing changes no
// computation order, so reputations, detection tables, and audit event
// streams are bit-identical with tracing on or off (pinned by
// TestFullSimTraceBitIdentity in internal/sim).
package span

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Pipeline phases the attribution ledger recognizes. Spans with any other
// phase (or none) still record, but contribute no ledger time.
const (
	PhaseIngest  = "ingest"  // query cycles, rating flush, overlay submit
	PhaseDrain   = "drain"   // shard drain, snapshot merge, broadcast
	PhaseAdjust  = "adjust"  // SocialTrust signal/classify/merge/rewrite
	PhaseIterate = "iterate" // EigenTrust CSR refresh + power iteration
)

// Attr is one typed span attribute. Exactly one of Str/Int is meaningful;
// integer attributes leave Str empty.
type Attr struct {
	Key string `json:"k"`
	Str string `json:"s,omitempty"`
	Int int64  `json:"i,omitempty"`
}

// Span is one finished span. Times are microseconds relative to the
// recorder's epoch (its Enable time), matching the Chrome trace-event
// timebase so exports need no conversion.
type Span struct {
	Trace   uint64 `json:"trace"`
	ID      uint64 `json:"id"`
	Parent  uint64 `json:"parent,omitempty"` // 0 marks a trace root
	Name    string `json:"name"`
	Phase   string `json:"phase,omitempty"`
	StartUS int64  `json:"start_us"`
	DurUS   int64  `json:"dur_us"`
	Attrs   []Attr `json:"attrs,omitempty"`
}

// Context identifies a position in a trace — the parent under which a
// remote component should hang its spans. The zero Context means "no
// trace"; starting from it records nothing.
type Context struct {
	Trace uint64
	Span  uint64
	Phase string
}

// Attribution is one interval's wall-time breakdown by pipeline phase. A
// span's duration counts toward its phase iff the phase is set and differs
// from its parent's — so nested same-phase spans (per-shard delivers under
// the submit span, per-iteration steps under the EigenTrust span) never
// double-count. Total is the root span's duration.
type Attribution struct {
	Trace   uint64  `json:"trace"`
	Total   float64 `json:"total_seconds"`
	Ingest  float64 `json:"ingest_seconds"`
	Drain   float64 `json:"drain_seconds"`
	Adjust  float64 `json:"adjust_seconds"`
	Iterate float64 `json:"iterate_seconds"`
}

// Attributed is the wall time assigned to a named phase.
func (a Attribution) Attributed() float64 {
	return a.Ingest + a.Drain + a.Adjust + a.Iterate
}

// Other is the unattributed remainder of the interval (clamped at zero:
// concurrency can push phase sums past the root's wall time).
func (a Attribution) Other() float64 {
	if o := a.Total - a.Attributed(); o > 0 {
		return o
	}
	return 0
}

// Coverage is the attributed fraction of the interval's wall time, capped
// at 1.
func (a Attribution) Coverage() float64 {
	if a.Total <= 0 {
		return 0
	}
	if c := a.Attributed() / a.Total; c < 1 {
		return c
	}
	return 1
}

// DefaultCapacity bounds the ring at 64k spans — a 50k-node pipeline
// interval emits a few thousand (per-batch submits, per-shard delivers,
// drain, Adjust sub-phases, per-iteration EigenTrust steps), so the ring
// holds tens of intervals at a few MB.
const DefaultCapacity = 1 << 16

// maxLedgerTraces bounds the attribution ledger when a workload starts
// traces but never collects them (standalone engine benchmarks with tracing
// on); the oldest trace is evicted past this.
const maxLedgerTraces = 1024

// Recorder is a bounded ring buffer of finished spans plus the incremental
// per-trace attribution ledger. All methods are safe for concurrent use and
// nil-receiver safe (a nil Recorder records nothing), so call sites gate on
// a single Current() load.
type Recorder struct {
	epoch   time.Time
	spanIDs atomic.Uint64
	traces  atomic.Uint64
	ambient atomic.Pointer[Context]

	mu      sync.Mutex
	buf     []Span // len(buf) == capacity, allocated up front
	start   int    // index of the oldest buffered span
	n       int    // buffered span count
	seq     uint64 // total spans ever recorded
	dropped uint64 // spans overwritten before being drained

	ledgerMu sync.Mutex
	ledger   map[uint64]*Attribution
}

// NewRecorder creates a recorder holding at most capacity spans
// (DefaultCapacity when capacity <= 0). Its epoch — the zero point of all
// span timestamps — is the creation time.
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{
		epoch:  time.Now(),
		buf:    make([]Span, capacity),
		ledger: make(map[uint64]*Attribution),
	}
}

// Capacity returns the ring size.
func (r *Recorder) Capacity() int { return len(r.buf) }

// record appends one finished span, overwriting the oldest when full.
func (r *Recorder) record(s Span) {
	r.mu.Lock()
	r.seq++
	if r.n == len(r.buf) {
		r.buf[r.start] = s
		r.start++
		if r.start == len(r.buf) {
			r.start = 0
		}
		r.dropped++
	} else {
		i := r.start + r.n
		if i >= len(r.buf) {
			i -= len(r.buf)
		}
		r.buf[i] = s
		r.n++
	}
	r.mu.Unlock()
}

// Drain copies the buffered spans out in finish order (oldest first) and
// clears the ring. The attribution ledger is unaffected.
func (r *Recorder) Drain() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Span, 0, r.n)
	for i := 0; i < r.n; i++ {
		j := r.start + i
		if j >= len(r.buf) {
			j -= len(r.buf)
		}
		out = append(out, r.buf[j])
	}
	r.start, r.n = 0, 0
	return out
}

// Len returns the number of currently buffered spans.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Recorded returns the total number of spans ever finished.
func (r *Recorder) Recorded() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}

// Dropped returns the number of spans lost to ring overwrites.
func (r *Recorder) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// credit folds one finished span into the per-trace ledger.
func (r *Recorder) credit(trace uint64, phase string, root bool, secs float64) {
	r.ledgerMu.Lock()
	defer r.ledgerMu.Unlock()
	att := r.ledger[trace]
	if att == nil {
		if len(r.ledger) >= maxLedgerTraces {
			oldest := uint64(math.MaxUint64)
			for t := range r.ledger {
				if t < oldest {
					oldest = t
				}
			}
			delete(r.ledger, oldest)
		}
		att = &Attribution{Trace: trace}
		r.ledger[trace] = att
	}
	if root {
		att.Total += secs
	}
	switch phase {
	case PhaseIngest:
		att.Ingest += secs
	case PhaseDrain:
		att.Drain += secs
	case PhaseAdjust:
		att.Adjust += secs
	case PhaseIterate:
		att.Iterate += secs
	}
}

// TakeAttribution removes and returns the accumulated attribution for one
// trace — typically called by the interval driver right after ending the
// root span. ok is false when the trace credited nothing (or tracing is
// off; a nil receiver is safe).
func (r *Recorder) TakeAttribution(trace uint64) (att Attribution, ok bool) {
	if r == nil {
		return Attribution{}, false
	}
	r.ledgerMu.Lock()
	defer r.ledgerMu.Unlock()
	a := r.ledger[trace]
	if a == nil {
		return Attribution{}, false
	}
	delete(r.ledger, trace)
	return *a, true
}

// Active is an in-flight span. A nil *Active is the disabled state: every
// method (End, Child, SetInt, Context, …) no-ops on it, so call sites never
// branch on whether tracing is on.
type Active struct {
	rec        *Recorder
	start      time.Time
	trace      uint64
	id         uint64
	parent     uint64
	name       string
	phase      string
	countPhase bool // this span's phase differs from its parent's
	isRoot     bool // parent == 0: contributes Total on End
	attrs      []Attr
}

// StartRoot starts a new trace (one per pipeline interval) rooted at an
// unphased span. Nil-receiver safe.
func (r *Recorder) StartRoot(name string) *Active {
	if r == nil {
		return nil
	}
	return &Active{
		rec:    r,
		start:  time.Now(),
		trace:  r.traces.Add(1),
		id:     r.spanIDs.Add(1),
		name:   name,
		isRoot: true,
	}
}

// StartFrom starts a span under an explicit remote context — the overlay
// stamps its submit/drain context into mailbox messages and the shard side
// resumes from it here. A zero context (unstamped message, e.g. tracing
// enabled mid-run) records nothing.
func (r *Recorder) StartFrom(ctx Context, name, phase string) *Active {
	if r == nil || ctx.Trace == 0 {
		return nil
	}
	return &Active{
		rec:        r,
		start:      time.Now(),
		trace:      ctx.Trace,
		id:         r.spanIDs.Add(1),
		parent:     ctx.Span,
		name:       name,
		phase:      phase,
		countPhase: phase != "" && phase != ctx.Phase,
	}
}

// StartAmbient starts a span under the recorder's ambient context — the
// parent the interval driver installed with SetAmbient. With no ambient
// installed (a component traced standalone), the span roots its own trace
// and still ledgers its phase, so coverage stays meaningful.
func (r *Recorder) StartAmbient(name, phase string) *Active {
	if r == nil {
		return nil
	}
	if ctx := r.ambient.Load(); ctx != nil && ctx.Trace != 0 {
		return r.StartFrom(*ctx, name, phase)
	}
	a := r.StartRoot(name)
	a.phase = phase
	a.countPhase = phase != ""
	return a
}

// SetAmbient installs ctx as the recorder's ambient parent context and
// returns the previous one (zero when none). The interval driver brackets
// each pipeline stage with this so engine-interface components parent
// correctly. Nil-receiver safe.
func (r *Recorder) SetAmbient(ctx Context) (prev Context) {
	if r == nil {
		return Context{}
	}
	c := ctx // copy declared past the nil check so the disabled path never heap-allocates
	if p := r.ambient.Swap(&c); p != nil {
		return *p
	}
	return Context{}
}

// Child starts a sub-span of a. Nil-safe: a nil parent yields a nil child.
func (a *Active) Child(name, phase string) *Active {
	if a == nil {
		return nil
	}
	return &Active{
		rec:        a.rec,
		start:      time.Now(),
		trace:      a.trace,
		id:         a.rec.spanIDs.Add(1),
		parent:     a.id,
		name:       name,
		phase:      phase,
		countPhase: phase != "" && phase != a.phase,
	}
}

// Context returns a's position for propagation into mailbox messages or
// SetAmbient. Zero when a is nil.
func (a *Active) Context() Context {
	if a == nil {
		return Context{}
	}
	return Context{Trace: a.trace, Span: a.id, Phase: a.phase}
}

// TraceID returns a's trace, 0 when nil — the key for TakeAttribution.
func (a *Active) TraceID() uint64 {
	if a == nil {
		return 0
	}
	return a.trace
}

// SetInt attaches an integer attribute; returns a for chaining. Nil-safe.
func (a *Active) SetInt(key string, v int64) *Active {
	if a == nil {
		return nil
	}
	a.attrs = append(a.attrs, Attr{Key: key, Int: v})
	return a
}

// SetStr attaches a string attribute; returns a for chaining. Nil-safe.
func (a *Active) SetStr(key, v string) *Active {
	if a == nil {
		return nil
	}
	a.attrs = append(a.attrs, Attr{Key: key, Str: v})
	return a
}

// End finishes the span: records it into the ring and folds its duration
// into the trace's attribution ledger (phase time when its phase differs
// from the parent's; Total when it is the trace root). Nil-safe.
func (a *Active) End() {
	if a == nil {
		return
	}
	d := time.Since(a.start)
	a.rec.record(Span{
		Trace:   a.trace,
		ID:      a.id,
		Parent:  a.parent,
		Name:    a.name,
		Phase:   a.phase,
		StartUS: a.start.Sub(a.rec.epoch).Microseconds(),
		DurUS:   d.Microseconds(),
		Attrs:   a.attrs,
	})
	if a.isRoot || a.countPhase {
		a.rec.credit(a.trace, a.phase, a.isRoot, d.Seconds())
	}
}

// active is the package-level recorder; nil means tracing is disabled.
var active atomic.Pointer[Recorder]

// Enable installs (and returns) a fresh package-level recorder with the
// given capacity (DefaultCapacity when <= 0), replacing any previous one.
// Spans buffered in a replaced recorder are lost unless drained first.
func Enable(capacity int) *Recorder {
	r := NewRecorder(capacity)
	active.Store(r)
	return r
}

// Disable uninstalls the package-level recorder. Undrained spans in it are
// discarded (hold the *Recorder returned by Enable to drain after
// disabling).
func Disable() { active.Store(nil) }

// Enabled reports whether a package-level recorder is installed.
func Enabled() bool { return active.Load() != nil }

// Current returns the package-level recorder, or nil while disabled.
func Current() *Recorder { return active.Load() }

// Root starts a new trace on the package recorder (nil while disabled).
func Root(name string) *Active { return active.Load().StartRoot(name) }

// From starts a span under an explicit context on the package recorder
// (nil while disabled or when ctx is zero).
func From(ctx Context, name, phase string) *Active {
	return active.Load().StartFrom(ctx, name, phase)
}

// Ambient starts a span under the installed ambient context on the package
// recorder (nil while disabled).
func Ambient(name, phase string) *Active { return active.Load().StartAmbient(name, phase) }

// SetAmbient installs the ambient parent context on the package recorder,
// returning the previous one (zero while disabled).
func SetAmbient(ctx Context) Context { return active.Load().SetAmbient(ctx) }

// Attribute recomputes per-trace attributions offline from an exported span
// slice, applying the same parent-phase exclusion rule the live ledger uses
// incrementally: a span counts toward its phase iff the phase is set and
// differs from its parent's; parent-less spans contribute Total. Results
// are ordered by trace ID (start order). Spans whose parents were dropped
// by ring wraparound attribute conservatively as if unparented.
func Attribute(spans []Span) []Attribution {
	phases := make(map[uint64]string, len(spans))
	for _, s := range spans {
		phases[s.ID] = s.Phase
	}
	byTrace := make(map[uint64]*Attribution)
	order := make([]uint64, 0, 8)
	for _, s := range spans {
		att := byTrace[s.Trace]
		if att == nil {
			att = &Attribution{Trace: s.Trace}
			byTrace[s.Trace] = att
			order = append(order, s.Trace)
		}
		secs := float64(s.DurUS) / 1e6
		if s.Parent == 0 {
			att.Total += secs
		}
		if s.Phase == "" || s.Phase == phases[s.Parent] {
			continue
		}
		switch s.Phase {
		case PhaseIngest:
			att.Ingest += secs
		case PhaseDrain:
			att.Drain += secs
		case PhaseAdjust:
			att.Adjust += secs
		case PhaseIterate:
			att.Iterate += secs
		}
	}
	// Trace IDs are allocated in start order, so sorting them orders the
	// table by interval.
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && order[j] < order[j-1]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	out := make([]Attribution, 0, len(order))
	for _, t := range order {
		out = append(out, *byTrace[t])
	}
	return out
}
