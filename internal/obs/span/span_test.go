package span

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// withDisabled forces the package-level recorder off for the test body,
// restoring the previous recorder afterwards.
func withDisabled(t *testing.T, f func()) {
	t.Helper()
	prev := active.Load()
	active.Store(nil)
	defer active.Store(prev)
	f()
}

// spin busy-waits a few microseconds so spans whose credit these tests
// assert on record a nonzero duration in the recorder's µs timebase.
func spin() {
	start := time.Now()
	for time.Since(start) < 5*time.Microsecond {
	}
}

func TestRingWraparound(t *testing.T) {
	r := NewRecorder(8)
	root := r.StartRoot("interval")
	for i := 0; i < 20; i++ {
		root.Child("work", PhaseAdjust).End()
	}
	if got := r.Dropped(); got != 12 {
		t.Fatalf("Dropped = %d, want 12", got)
	}
	spans := r.Drain()
	if len(spans) != 8 {
		t.Fatalf("drained %d spans, want 8", len(spans))
	}
	for i, s := range spans {
		// Span IDs allocate in start order: the root took 1, the children
		// 2..21; the oldest survivor is the 13th child (ID 14).
		if want := uint64(14 + i); s.ID != want {
			t.Errorf("span %d: id = %d, want %d", i, s.ID, want)
		}
		if s.Parent != root.id || s.Phase != PhaseAdjust {
			t.Errorf("span %d: parent=%d phase=%q, want parent=%d phase=adjust",
				i, s.Parent, s.Phase, root.id)
		}
	}
	if r.Len() != 0 {
		t.Fatalf("ring not empty after Drain: %d", r.Len())
	}
	// The ring keeps working after a drain; the ledger kept every credit
	// regardless of ring overwrites.
	root.End()
	if post := r.Drain(); len(post) != 1 || post[0].Parent != 0 {
		t.Fatalf("post-drain record = %+v, want the root span", post)
	}
	att, ok := r.TakeAttribution(root.TraceID())
	if !ok || att.Adjust <= 0 || att.Total <= 0 {
		t.Fatalf("attribution = %+v ok=%v, want adjust and total credited", att, ok)
	}
}

// TestDrainWhileRecording hammers the recorder from emitter goroutines
// (start/finish with children, the overlay's concurrency shape) while a
// reader drains concurrently, then checks conservation: every finished span
// is either drained exactly once or accounted as dropped. Run under -race
// this also proves the locking.
func TestDrainWhileRecording(t *testing.T) {
	r := NewRecorder(64)
	const emitters, perEmitter = 8, 300
	var wg sync.WaitGroup
	for w := 0; w < emitters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perEmitter; i++ {
				root := r.StartRoot("interval")
				root.Child("deliver", PhaseIngest).SetInt("shard", int64(w)).End()
				root.End()
			}
		}(w)
	}
	seen := make(map[uint64]bool)
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	collect := func() {
		for _, s := range r.Drain() {
			if seen[s.ID] {
				t.Errorf("span %d drained twice", s.ID)
			}
			seen[s.ID] = true
		}
	}
	for {
		collect()
		select {
		case <-done:
			collect() // final sweep after all emitters finished
			if got, want := uint64(len(seen))+r.Dropped(), r.Recorded(); got != want {
				t.Fatalf("drained %d + dropped %d != recorded %d",
					len(seen), r.Dropped(), want)
			}
			if want := uint64(emitters * perEmitter * 2); r.Recorded() != want {
				t.Fatalf("recorded = %d, want %d", r.Recorded(), want)
			}
			return
		default:
		}
	}
}

// TestAmbientConcurrency races SetAmbient/StartAmbient across goroutines —
// the shape of the sim driver swapping interval contexts while engine
// components start spans.
func TestAmbientConcurrency(t *testing.T) {
	r := NewRecorder(1 << 12)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				root := r.StartRoot("interval")
				prev := r.SetAmbient(root.Context())
				r.StartAmbient("core.adjust", PhaseAdjust).End()
				r.SetAmbient(prev)
				root.End()
				r.TakeAttribution(root.TraceID())
			}
		}()
	}
	wg.Wait()
}

// TestDisabledPathZeroAlloc pins the off-by-default contract: with no
// recorder installed, a full complement of emission-site calls — root,
// ambient, context propagation, attributes, end — must not allocate.
func TestDisabledPathZeroAlloc(t *testing.T) {
	withDisabled(t, func() {
		allocs := testing.AllocsPerRun(100, func() {
			root := Root("interval")
			prev := SetAmbient(root.Context())
			sp := Ambient("core.adjust", PhaseAdjust)
			sp.SetInt("pairs", 42).SetStr("mode", "warm")
			child := sp.Child("adjust.signals", PhaseAdjust)
			child.End()
			From(sp.Context(), "shard.deliver", PhaseIngest).End()
			sp.End()
			SetAmbient(prev)
			root.End()
			Current().TakeAttribution(root.TraceID())
			_ = Current().Drain()
		})
		if allocs != 0 {
			t.Fatalf("disabled span path allocates %.1f/op, want 0", allocs)
		}
		if Enabled() || Current() != nil {
			t.Fatal("recorder unexpectedly enabled")
		}
	})
}

func TestEnableDisableGlobal(t *testing.T) {
	prev := active.Load()
	defer active.Store(prev)

	rec := Enable(16)
	if !Enabled() || Current() != rec {
		t.Fatal("Enable did not install the recorder")
	}
	root := Root("interval")
	root.Child("sim.ingest", PhaseIngest).End()
	root.End()
	spans := rec.Drain()
	if len(spans) != 2 || spans[0].Phase != PhaseIngest || spans[1].Parent != 0 {
		t.Fatalf("global drain = %+v", spans)
	}
	Disable()
	if Enabled() || Root("x") != nil {
		t.Fatal("Disable left the recorder installed")
	}
}

// TestAttributionExclusionRule checks the ledger's double-count guard: a
// span credits its phase only when the parent's phase differs, the root
// credits Total, and the live ledger agrees with the offline Attribute
// recomputation over the exported spans.
func TestAttributionExclusionRule(t *testing.T) {
	r := NewRecorder(0)
	root := r.StartRoot("interval")
	ingest := root.Child("sim.ingest", PhaseIngest)
	ingest.Child("manager.submit_batch", PhaseIngest).End() // same phase: excluded
	spin()
	ingest.End()
	adj := r.StartFrom(root.Context(), "core.adjust", PhaseAdjust)
	adj.Child("adjust.signals", PhaseAdjust).End() // excluded
	spin()
	adj.End()
	spin()
	root.End()

	spans := r.Drain()
	live, ok := r.TakeAttribution(root.TraceID())
	if !ok {
		t.Fatal("no live attribution")
	}
	offline := Attribute(spans)
	if len(offline) != 1 {
		t.Fatalf("offline attributions = %d, want 1", len(offline))
	}
	for _, att := range []Attribution{live, offline[0]} {
		if att.Total <= 0 || att.Ingest <= 0 || att.Adjust <= 0 {
			t.Fatalf("attribution missing credit: %+v", att)
		}
		// The ingest credit must equal the sim.ingest span alone — the
		// nested submit span was excluded (it would double the figure).
		if att.Ingest >= att.Total || att.Coverage() <= 0 || att.Coverage() > 1 {
			t.Fatalf("attribution out of range: %+v coverage=%v", att, att.Coverage())
		}
	}
	if d := live.Ingest - offline[0].Ingest; d > 1e-3 || d < -1e-3 {
		t.Fatalf("live ingest %.6f != offline %.6f", live.Ingest, offline[0].Ingest)
	}
	if _, again := r.TakeAttribution(root.TraceID()); again {
		t.Fatal("TakeAttribution did not clear the trace")
	}
}

// TestStartFromZeroContext pins that unstamped mailbox messages record
// nothing even while tracing is on.
func TestStartFromZeroContext(t *testing.T) {
	r := NewRecorder(0)
	if sp := r.StartFrom(Context{}, "shard.deliver", PhaseIngest); sp != nil {
		t.Fatalf("StartFrom(zero) = %+v, want nil", sp)
	}
	if r.Recorded() != 0 {
		t.Fatal("zero-context start recorded a span")
	}
}

// TestStandaloneAmbientRootsOwnTrace covers engine components traced
// without an interval driver: the span roots a fresh trace and still
// ledgers both Total and its phase.
func TestStandaloneAmbientRootsOwnTrace(t *testing.T) {
	r := NewRecorder(0)
	sp := r.StartAmbient("eigentrust.update", PhaseIterate)
	spin()
	sp.End()
	att, ok := r.TakeAttribution(sp.TraceID())
	if !ok || att.Total <= 0 || att.Iterate <= 0 {
		t.Fatalf("standalone attribution = %+v ok=%v", att, ok)
	}
	offline := Attribute(r.Drain())
	if len(offline) != 1 || offline[0].Total <= 0 || offline[0].Iterate <= 0 {
		t.Fatalf("offline standalone attribution = %+v", offline)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	in := []Span{
		{Trace: 1, ID: 1, Name: "interval", StartUS: 10, DurUS: 5000},
		{Trace: 1, ID: 2, Parent: 1, Name: "sim.ingest", Phase: PhaseIngest,
			StartUS: 12, DurUS: 3000,
			Attrs: []Attr{{Key: "ratings", Int: 800}, {Key: "mode", Str: "batched"}}},
		{Trace: 2, ID: 3, Name: "interval", StartUS: 6000, DurUS: 4000},
	}
	var sb strings.Builder
	if err := WriteJSONL(&sb, in); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(sb.String(), "\n"); got != len(in) {
		t.Fatalf("JSONL has %d lines, want %d", got, len(in))
	}
	out, err := ReadJSONL(strings.NewReader(sb.String() + "\n")) // trailing blank line is fine
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip lost spans: %d != %d", len(out), len(in))
	}
	if out[1].Name != in[1].Name || len(out[1].Attrs) != 2 || out[1].Attrs[1].Str != "batched" {
		t.Fatalf("round trip mutated payloads:\n got %+v\nwant %+v", out, in)
	}
	if _, err := ReadJSONL(strings.NewReader("{bogus\n")); err == nil {
		t.Fatal("malformed line did not error")
	}
}

func TestChromeTraceExport(t *testing.T) {
	spans := []Span{
		{Trace: 1, ID: 1, Name: "interval", StartUS: 0, DurUS: 100},
		{Trace: 1, ID: 2, Parent: 1, Name: "core.adjust", Phase: PhaseAdjust,
			StartUS: 10, DurUS: 50, Attrs: []Attr{{Key: "pairs", Int: 7}}},
	}
	var sb strings.Builder
	if err := WriteChromeTrace(&sb, spans); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`"traceEvents"`, `"ph":"X"`, `"name":"core.adjust"`, `"cat":"adjust"`,
		`"tid":1`, `"pairs":7`, `"parent":1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("chrome trace missing %s:\n%s", want, out)
		}
	}
}

func TestDefaultCapacity(t *testing.T) {
	if NewRecorder(0).Capacity() != DefaultCapacity {
		t.Fatal("non-positive capacity did not default")
	}
	if NewRecorder(-1).Capacity() != DefaultCapacity {
		t.Fatal("negative capacity did not default")
	}
}

// BenchmarkSpanSiteDisabled backs the "≤ a few ns per call site while off"
// claim: one Ambient start + End pair, the hot-path emission shape.
func BenchmarkSpanSiteDisabled(b *testing.B) {
	prev := active.Load()
	active.Store(nil)
	defer active.Store(prev)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := Ambient("core.adjust", PhaseAdjust)
		sp.End()
	}
}

func BenchmarkSpanSiteEnabled(b *testing.B) {
	prev := active.Load()
	defer active.Store(prev)
	r := Enable(1 << 12)
	root := Root("interval") // real call sites run under an interval's ambient context
	r.SetAmbient(root.Context())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := Ambient("core.adjust", PhaseAdjust)
		sp.End()
	}
}
