package span

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// WriteJSONL writes spans one JSON object per line — the trace artifact
// persisted into the audit dir next to events.jsonl.
func WriteJSONL(w io.Writer, spans []Span) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw) // Encode appends the newline
	for i := range spans {
		if err := enc.Encode(&spans[i]); err != nil {
			return fmt.Errorf("span: encode span %d: %w", spans[i].ID, err)
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a JSONL span stream written by WriteJSONL. Blank lines
// are skipped; a malformed line is an error carrying its line number.
func ReadJSONL(r io.Reader) ([]Span, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var out []Span
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var s Span
		if err := json.Unmarshal(b, &s); err != nil {
			return nil, fmt.Errorf("span: line %d: %w", line, err)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("span: read: %w", err)
	}
	return out, nil
}

// chromeEvent is one Chrome trace-event "complete" record (ph "X"): the
// schema chrome://tracing and Perfetto load directly. The thread ID carries
// the trace (interval) number, so each interval renders as its own row.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"`
	Dur  int64          `json:"dur"`
	PID  int            `json:"pid"`
	TID  uint64         `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON-object trace container format.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace exports spans as a Chrome trace-event JSON file loadable
// in Perfetto (ui.perfetto.dev) or chrome://tracing; one row per interval.
func WriteChromeTrace(w io.Writer, spans []Span) error {
	events := make([]chromeEvent, 0, len(spans))
	for _, s := range spans {
		cat := s.Phase
		if cat == "" {
			cat = "span"
		}
		args := map[string]any{"id": s.ID}
		if s.Parent != 0 {
			args["parent"] = s.Parent
		}
		for _, a := range s.Attrs {
			if a.Str != "" {
				args[a.Key] = a.Str
			} else {
				args[a.Key] = a.Int
			}
		}
		events = append(events, chromeEvent{
			Name: s.Name,
			Cat:  cat,
			Ph:   "X",
			TS:   s.StartUS,
			Dur:  s.DurUS,
			PID:  1,
			TID:  s.Trace,
			Args: args,
		})
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"}); err != nil {
		return fmt.Errorf("span: chrome trace: %w", err)
	}
	return nil
}
