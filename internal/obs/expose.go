package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// BucketSnapshot is one cumulative histogram bucket.
type BucketSnapshot struct {
	LE    string `json:"le"` // upper bound, "+Inf" for the last bucket
	Count int64  `json:"count"`
}

// HistogramSnapshot is a point-in-time view of one histogram.
type HistogramSnapshot struct {
	Count   int64            `json:"count"`
	Sum     float64          `json:"sum"`
	Buckets []BucketSnapshot `json:"buckets"`
}

// Snapshot is a point-in-time copy of every metric in a registry.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies the registry's current state. Histogram bucket counts are
// cumulative (Prometheus le semantics).
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		hs := HistogramSnapshot{Count: h.Count(), Sum: h.Sum()}
		cum := int64(0)
		for i := range h.counts {
			cum += h.counts[i].Load()
			le := "+Inf"
			if i < len(h.bounds) {
				le = formatBound(h.bounds[i])
			}
			hs.Buckets = append(hs.Buckets, BucketSnapshot{LE: le, Count: cum})
		}
		s.Histograms[name] = hs
	}
	return s
}

// ReadSnapshot returns a snapshot of the Default registry.
func ReadSnapshot() Snapshot { return Default.Snapshot() }

func formatBound(b float64) string { return strconv.FormatFloat(b, 'g', -1, 64) }

// splitSeries separates a full series string into its base metric name and
// inner label list: `x_total{behavior="B1"}` → ("x_total", `behavior="B1"`).
func splitSeries(key string) (base, labels string) {
	if i := strings.IndexByte(key, '{'); i >= 0 && strings.HasSuffix(key, "}") {
		return key[:i], key[i+1 : len(key)-1]
	}
	return key, ""
}

func joinSeries(base, labels string) string {
	if labels == "" {
		return base
	}
	return base + "{" + labels + "}"
}

// splitLabelPairs splits an inner label list on the commas outside quoted
// values: `a="1",b="x,y"` → [`a="1"`, `b="x,y"`].
func splitLabelPairs(labels string) []string {
	var out []string
	quoted := false
	start := 0
	for i := 0; i < len(labels); i++ {
		switch labels[i] {
		case '"':
			quoted = !quoted
		case ',':
			if !quoted {
				out = append(out, labels[start:i])
				start = i + 1
			}
		}
	}
	return append(out, labels[start:])
}

// sortLabels orders a series' label pairs lexically so the exposition is
// deterministic regardless of the order Label composed them in.
func sortLabels(labels string) string {
	if !strings.Contains(labels, ",") {
		return labels
	}
	pairs := splitLabelPairs(labels)
	sort.Strings(pairs)
	return strings.Join(pairs, ",")
}

// WriteText writes the registry in the Prometheus text exposition format:
// families sorted by name and preceded by their # HELP (when registered with
// Help) and # TYPE lines, series within a family sorted by their — also
// sorted — label sets, so output is byte-deterministic.
func (r *Registry) WriteText(w io.Writer) error {
	s := r.Snapshot()
	help := r.helpSnapshot()
	type series struct{ key, labels string }
	kind := map[string]string{}
	families := map[string][]series{}
	collect := func(k, typ string) {
		base, labels := splitSeries(k)
		kind[base] = typ
		families[base] = append(families[base], series{key: k, labels: sortLabels(labels)})
	}
	for k := range s.Counters {
		collect(k, "counter")
	}
	for k := range s.Gauges {
		collect(k, "gauge")
	}
	for k := range s.Histograms {
		collect(k, "histogram")
	}
	bases := make([]string, 0, len(families))
	for base := range families {
		bases = append(bases, base)
	}
	sort.Strings(bases)
	for _, base := range bases {
		if h := help[base]; h != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", base, h); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, kind[base]); err != nil {
			return err
		}
		ss := families[base]
		sort.Slice(ss, func(i, j int) bool { return ss[i].labels < ss[j].labels })
		for _, sr := range ss {
			switch kind[base] {
			case "counter":
				if _, err := fmt.Fprintf(w, "%s %d\n", joinSeries(base, sr.labels), s.Counters[sr.key]); err != nil {
					return err
				}
			case "gauge":
				if _, err := fmt.Fprintf(w, "%s %g\n", joinSeries(base, sr.labels), s.Gauges[sr.key]); err != nil {
					return err
				}
			case "histogram":
				h := s.Histograms[sr.key]
				for _, b := range h.Buckets {
					le := `le="` + b.LE + `"`
					if sr.labels != "" {
						le = sr.labels + "," + le
					}
					if _, err := fmt.Fprintf(w, "%s_bucket{%s} %d\n", base, le, b.Count); err != nil {
						return err
					}
				}
				if _, err := fmt.Fprintf(w, "%s %g\n", joinSeries(base+"_sum", sr.labels), h.Sum); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s %d\n", joinSeries(base+"_count", sr.labels), h.Count); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// WriteJSON writes the registry snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WriteText writes the Default registry in Prometheus text format.
func WriteText(w io.Writer) error { return Default.WriteText(w) }

// WriteJSON writes the Default registry as JSON.
func WriteJSON(w io.Writer) error { return Default.WriteJSON(w) }

// Runtime gauges maintained by CaptureRuntime. The *_peak gauges are
// high-water marks across captures; ResetRuntimePeaks re-arms them for a new
// measurement window. Freshness follows whoever drives CaptureRuntime: every
// /metrics scrape captures first, and a running health sampler
// (internal/obs/health) refreshes them on its tick, so gauges are at most one
// sample interval stale while either is active.
var (
	gGoroutines     = G("runtime_goroutines")
	gGoroutinesPeak = G("runtime_goroutines_peak")
	gHeapAlloc      = G("runtime_heap_alloc_bytes")
	gHeapAllocPeak  = G("runtime_heap_alloc_bytes_peak")
	gTotalAlloc     = G("runtime_total_alloc_bytes")
	gNumGC          = G("runtime_gc_total")
	gRSS            = G("runtime_rss_bytes")
	gRSSPeak        = G("runtime_rss_peak_bytes")
	hGCPause        = H("runtime_gc_pause_seconds", GCPauseBuckets...)
)

// GCPauseBuckets are the bounds of runtime_gc_pause_seconds: stop-the-world
// pauses run from microseconds on an idle heap to tens of milliseconds under
// allocation pressure.
var GCPauseBuckets = []float64{
	1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 1e-1,
}

func init() {
	const cadence = "Refreshed by every /metrics scrape and each health-sampler tick (at most one sample interval stale while either runs)."
	Help("runtime_goroutines", "Goroutines at the last CaptureRuntime sample. "+cadence)
	Help("runtime_goroutines_peak", "Goroutine high-water mark across captures (ResetRuntimePeaks re-arms).")
	Help("runtime_heap_alloc_bytes", "Live heap bytes at the last sample. "+cadence)
	Help("runtime_heap_alloc_bytes_peak", "Live-heap high-water mark across captures.")
	Help("runtime_total_alloc_bytes", "Cumulative bytes allocated by the process. "+cadence)
	Help("runtime_gc_total", "Garbage collections completed. "+cadence)
	Help("runtime_rss_bytes", "Resident set size (VmRSS) at the last sample; 0 where /proc is unavailable. "+cadence)
	Help("runtime_rss_peak_bytes", "Peak resident set size (VmHWM) reported by the kernel; 0 where /proc is unavailable. "+cadence)
	Help("runtime_gc_pause_seconds", "Stop-the-world GC pause durations, fed from MemStats.PauseNs by CaptureRuntime. "+cadence)
}

// RuntimeStats is one sample of process-level runtime state.
type RuntimeStats struct {
	Goroutines int
	HeapAlloc  uint64 // live heap bytes
	TotalAlloc uint64 // cumulative allocated bytes
	NumGC      uint32
	RSS        uint64 // resident set size (VmRSS); 0 where /proc is unavailable
	RSSPeak    uint64 // kernel peak resident set (VmHWM); 0 where /proc is unavailable
}

// gcPauseMu guards the PauseNs cursor so concurrent CaptureRuntime callers
// (a /metrics scrape racing the health sampler) feed each pause exactly once.
var gcPauseMu sync.Mutex
var gcPauseSeen uint32

// feedGCPauses observes every GC pause completed since the previous capture
// into runtime_gc_pause_seconds. MemStats.PauseNs is a 256-entry circular
// buffer indexed by GC number; pauses older than the buffer are dropped (they
// were overwritten before any capture saw them).
func feedGCPauses(ms *runtime.MemStats) {
	gcPauseMu.Lock()
	defer gcPauseMu.Unlock()
	from := gcPauseSeen
	if ms.NumGC > 256 && from < ms.NumGC-256 {
		from = ms.NumGC - 256
	}
	for n := from; n < ms.NumGC; n++ {
		hGCPause.Observe(float64(ms.PauseNs[n%256]) / 1e9)
	}
	gcPauseSeen = ms.NumGC
}

// CaptureRuntime samples goroutine count, memory statistics and (on Linux)
// the kernel's resident-set numbers, updates the runtime_* gauges (including
// peaks and the GC-pause histogram) and returns the sample. Sampling is cheap
// enough (tens of µs) to call from a ticker during long runs; the health
// sampler (internal/obs/health) drives it on its tick so the gauges stay
// fresh without caller discipline.
func CaptureRuntime() RuntimeStats {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	st := RuntimeStats{
		Goroutines: runtime.NumGoroutine(),
		HeapAlloc:  ms.HeapAlloc,
		TotalAlloc: ms.TotalAlloc,
		NumGC:      ms.NumGC,
	}
	st.RSS, st.RSSPeak = readProcRSS()
	gGoroutines.Set(float64(st.Goroutines))
	gGoroutinesPeak.SetMax(float64(st.Goroutines))
	gHeapAlloc.Set(float64(st.HeapAlloc))
	gHeapAllocPeak.SetMax(float64(st.HeapAlloc))
	gTotalAlloc.Set(float64(st.TotalAlloc))
	gNumGC.Set(float64(st.NumGC))
	if st.RSS > 0 {
		gRSS.Set(float64(st.RSS))
	}
	if st.RSSPeak > 0 {
		gRSSPeak.SetMax(float64(st.RSSPeak))
	}
	feedGCPauses(&ms)
	return st
}

// readProcRSS reads VmRSS and VmHWM from /proc/self/status, in bytes.
// Returns zeros on platforms without procfs.
func readProcRSS() (rss, peak uint64) {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0, 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		var dst *uint64
		switch {
		case strings.HasPrefix(line, "VmRSS:"):
			dst = &rss
		case strings.HasPrefix(line, "VmHWM:"):
			dst = &peak
		default:
			continue
		}
		f := strings.Fields(line)
		if len(f) >= 2 {
			if kb, err := strconv.ParseUint(f[1], 10, 64); err == nil {
				*dst = kb * 1024
			}
		}
	}
	return rss, peak
}

// ResetRuntimePeaks zeroes the runtime high-water-mark gauges so the next
// CaptureRuntime starts a fresh measurement window. The kernel's VmHWM
// cannot be re-armed from user space, so runtime_rss_peak_bytes keeps its
// process-lifetime high-water mark.
func ResetRuntimePeaks() {
	gGoroutinesPeak.Reset()
	gHeapAllocPeak.Reset()
}

// Handler returns an http.Handler exposing the Default registry:
//
//	/metrics       Prometheus text format
//	/metrics.json  JSON snapshot
//
// With pprofToo it also mounts the net/http/pprof endpoints under
// /debug/pprof/. Every scrape captures fresh runtime_* gauges first.
func Handler(pprofToo bool) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		CaptureRuntime()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WriteText(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		CaptureRuntime()
		w.Header().Set("Content-Type", "application/json")
		_ = WriteJSON(w)
	})
	if pprofToo {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// Serve starts an HTTP server for Handler on addr in a background goroutine
// and returns it (close with server.Close). It also enables recording: a
// metrics endpoint with recording off would only ever serve zeros.
func Serve(addr string, pprofToo bool) (*http.Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	Enable()
	srv := &http.Server{Addr: ln.Addr().String(), Handler: Handler(pprofToo)}
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			Logger().Error("obs: metrics server failed", "addr", addr, "err", err)
		}
	}()
	return srv, nil
}
