package obs

import (
	"log/slog"
	"os"
	"sync/atomic"
	"time"
)

// logLevel is the shared level variable of the default logger; the package
// is quiet (Warn) unless a binary opts into progress logging.
var logLevel = func() *slog.LevelVar {
	v := new(slog.LevelVar)
	v.Set(slog.LevelWarn)
	return v
}()

var logger atomic.Pointer[slog.Logger]

func init() {
	logger.Store(slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: logLevel})))
}

// Logger returns the package logger. Library code should log structured
// events through it rather than fmt so binaries control verbosity centrally.
func Logger() *slog.Logger { return logger.Load() }

// SetLogger replaces the package logger (nil restores the default).
func SetLogger(l *slog.Logger) {
	if l == nil {
		l = slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: logLevel}))
	}
	logger.Store(l)
}

// SetLogLevel adjusts the default logger's level (Info enables the periodic
// progress lines the simulator emits during long runs).
func SetLogLevel(level slog.Level) { logLevel.Set(level) }

// LogLevel returns the default logger's current level.
func LogLevel() slog.Level { return logLevel.Level() }

// Throttle rate-limits periodic log lines: Allow reports true at most once
// per interval. The zero value with Interval unset allows every call.
// Safe for concurrent use.
type Throttle struct {
	Interval time.Duration
	last     atomic.Int64 // unix nanos of the last allowed call
}

// Allow reports whether enough time has passed since the previous allowed
// call.
func (t *Throttle) Allow() bool {
	now := time.Now().UnixNano()
	for {
		last := t.last.Load()
		if last != 0 && now-last < int64(t.Interval) {
			return false
		}
		if t.last.CompareAndSwap(last, now) {
			return true
		}
	}
}
