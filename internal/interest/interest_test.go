package interest

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestSetBasics(t *testing.T) {
	s := NewSet(3, 1, 3) // duplicate collapses
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	if !s.Contains(1) || !s.Contains(3) || s.Contains(2) {
		t.Fatal("Contains mismatch")
	}
	s.Add(2)
	if !s.Contains(2) {
		t.Fatal("Add failed")
	}
	s.Remove(1)
	if s.Contains(1) {
		t.Fatal("Remove failed")
	}
	cats := s.Categories()
	if len(cats) != 2 || cats[0] != 2 || cats[1] != 3 {
		t.Fatalf("Categories = %v", cats)
	}
}

func TestZeroValueSet(t *testing.T) {
	var s Set
	if s.Len() != 0 || s.Contains(0) {
		t.Fatal("zero set should be empty")
	}
	s.Add(5)
	if !s.Contains(5) {
		t.Fatal("Add on zero value failed")
	}
}

func TestIntersect(t *testing.T) {
	a := NewSet(1, 2, 3, 4)
	b := NewSet(3, 4, 5)
	got := a.Intersect(b)
	if len(got) != 2 || got[0] != 3 || got[1] != 4 {
		t.Fatalf("Intersect = %v", got)
	}
	if len(NewSet(1).Intersect(NewSet(2))) != 0 {
		t.Fatal("disjoint Intersect should be empty")
	}
}

func TestSimilarityEquation7(t *testing.T) {
	a := NewSet(1, 2, 3, 4) // |V|=4
	b := NewSet(3, 4)       // |V|=2, intersection 2 → 2/min(4,2)=1
	if got := Similarity(a, b); got != 1 {
		t.Fatalf("Similarity = %v, want 1", got)
	}
	c := NewSet(1, 5)
	if got := Similarity(a, c); got != 0.5 { // intersection {1}, min=2
		t.Fatalf("Similarity = %v, want 0.5", got)
	}
	if got := Similarity(a, NewSet(9)); got != 0 {
		t.Fatalf("disjoint Similarity = %v, want 0", got)
	}
	var empty Set
	if got := Similarity(a, empty); got != 0 {
		t.Fatalf("empty Similarity = %v, want 0", got)
	}
}

func TestSimilaritySymmetric(t *testing.T) {
	a := NewSet(1, 2, 3)
	b := NewSet(2, 3, 4, 5)
	if Similarity(a, b) != Similarity(b, a) {
		t.Fatal("Similarity must be symmetric")
	}
}

func TestTrackerWeights(t *testing.T) {
	tr := NewTracker(2)
	tr.Record(0, 1)
	tr.Record(0, 1)
	tr.Record(0, 2)
	if w := tr.Weight(0, 1); math.Abs(w-2.0/3) > 1e-12 {
		t.Fatalf("Weight = %v, want 2/3", w)
	}
	if w := tr.Weight(0, 9); w != 0 {
		t.Fatalf("unseen category weight = %v", w)
	}
	if w := tr.Weight(1, 1); w != 0 {
		t.Fatalf("idle node weight = %v", w)
	}
	if tot := tr.Requests(0); tot != 3 {
		t.Fatalf("Requests = %v", tot)
	}
	tr.Reset()
	if tr.Requests(0) != 0 {
		t.Fatal("Reset failed")
	}
}

func TestTrackerPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTracker(2).Record(5, 0)
}

func TestTrackerConcurrent(t *testing.T) {
	tr := NewTracker(4)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 500; k++ {
				tr.Record(1, Category(k%3))
			}
		}()
	}
	wg.Wait()
	if got := tr.Requests(1); got != 4000 {
		t.Fatalf("concurrent Requests = %v, want 4000", got)
	}
}

func TestWeightedSimilarityEquation11(t *testing.T) {
	a := NewSet(1, 2)
	b := NewSet(1, 2, 3)
	tr := NewTracker(2)
	// Node 0: 3 of 4 requests in cat 1, 1 in cat 2.
	tr.Record(0, 1)
	tr.Record(0, 1)
	tr.Record(0, 1)
	tr.Record(0, 2)
	// Node 1: all requests in cat 3 (not shared).
	tr.Record(1, 3)
	got := WeightedSimilarity(a, b, 0, 1, tr)
	if got != 0 {
		t.Fatalf("weighted sim with no shared requests = %v, want 0", got)
	}
	// Now node 1 requests in the shared categories.
	tr.Record(1, 1)
	tr.Record(1, 2)
	// ws(0,1)=0.75 ws(0,2)=0.25; ws(1,1)=1/3 ws(1,2)=1/3; min(|V|)=2
	want := (0.75*(1.0/3) + 0.25*(1.0/3)) / 2
	got = WeightedSimilarity(a, b, 0, 1, tr)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("weighted sim = %v, want %v", got, want)
	}
}

func TestWeightedSimilarityColdStartFallsBack(t *testing.T) {
	a := NewSet(1, 2)
	b := NewSet(2, 3)
	tr := NewTracker(2)
	got := WeightedSimilarity(a, b, 0, 1, tr)
	if got != Similarity(a, b) {
		t.Fatalf("cold-start weighted sim = %v, want profile sim %v", got, Similarity(a, b))
	}
	if got := WeightedSimilarity(a, b, 0, 1, nil); got != Similarity(a, b) {
		t.Fatalf("nil-tracker weighted sim = %v", got)
	}
}

func TestWeightedSimilarityDefeatsProfilePadding(t *testing.T) {
	// Colluder pads its profile to perfectly match its partner, but its
	// actual requests are elsewhere: weighted similarity stays near zero
	// while profile similarity claims 1.
	colluder := NewSet(1, 2, 3)
	partner := NewSet(1, 2, 3)
	tr := NewTracker(2)
	for k := 0; k < 50; k++ {
		tr.Record(0, 9) // requests outside the claimed interests
		tr.Record(1, 1)
	}
	if Similarity(colluder, partner) != 1 {
		t.Fatal("profile similarity should be fooled")
	}
	if w := WeightedSimilarity(colluder, partner, 0, 1, tr); w != 0 {
		t.Fatalf("weighted similarity = %v, want 0 (padding defeated)", w)
	}
}

func TestProfileSimilarity(t *testing.T) {
	sets := []Set{NewSet(1, 2), NewSet(1, 2), NewSet(1), NewSet(9)}
	prof := ProfileSimilarity(sets[0], 0, []int{1, 2, 3}, sets, false, nil)
	if prof.N != 3 {
		t.Fatalf("N = %d", prof.N)
	}
	if prof.Max != 1 || prof.Min != 0 {
		t.Fatalf("Min/Max = %v/%v", prof.Min, prof.Max)
	}
	want := (1.0 + 1.0 + 0.0) / 3 // sims: 1 (identical), 1 ({1}/min1), 0
	if math.Abs(prof.Mean-want) > 1e-12 {
		t.Fatalf("Mean = %v, want %v", prof.Mean, want)
	}
	empty := ProfileSimilarity(sets[0], 0, nil, sets, false, nil)
	if empty.N != 0 || empty.Mean != 0 {
		t.Fatalf("empty profile = %+v", empty)
	}
}

// --- properties ---

func TestSimilarityBoundedSymmetricProperty(t *testing.T) {
	f := func(as, bs []uint8) bool {
		a, b := Set{}, Set{}
		for _, c := range as {
			a.Add(Category(c % 20))
		}
		for _, c := range bs {
			b.Add(Category(c % 20))
		}
		s := Similarity(a, b)
		if s < 0 || s > 1 {
			return false
		}
		return s == Similarity(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSimilarityIdentityProperty(t *testing.T) {
	f := func(as []uint8) bool {
		a := Set{}
		for _, c := range as {
			a.Add(Category(c % 20))
		}
		if a.Len() == 0 {
			return Similarity(a, a) == 0
		}
		return Similarity(a, a) == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedSimilarityBoundedProperty(t *testing.T) {
	f := func(as, bs []uint8, reqs []uint8) bool {
		a, b := Set{}, Set{}
		for _, c := range as {
			a.Add(Category(c % 10))
		}
		for _, c := range bs {
			b.Add(Category(c % 10))
		}
		tr := NewTracker(2)
		for k, c := range reqs {
			tr.Record(k%2, Category(c%10))
		}
		w := WeightedSimilarity(a, b, 0, 1, tr)
		// Each ws product is ≤ 1 and there are ≤ min(|Vi|,|Vj|) shared
		// categories, so w ∈ [0,1].
		return w >= 0 && w <= 1 && !math.IsNaN(w)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
