// Package interest implements the interest model of the paper: per-node
// interest sets V = <v1,...,vk>, the interest-similarity coefficient Ωs
// (Equation 1/7), and the request-weighted, falsification-resistant variant
// (Equation 11) that weighs each shared interest by how often each node
// actually requests resources in it.
package interest

import (
	"fmt"
	"sort"
	"sync"
)

// Category identifies a product/resource interest category (e.g.
// "Electronics", "Computers", "Clothing" in the Overstock trace). Categories
// are dense indices so per-node weights can live in slices.
type Category int

// Set is a node's interest set V. The zero value is an empty set.
type Set struct {
	members map[Category]bool
}

// NewSet builds an interest set from the given categories (duplicates are
// collapsed).
func NewSet(cats ...Category) Set {
	s := Set{members: make(map[Category]bool, len(cats))}
	for _, c := range cats {
		s.members[c] = true
	}
	return s
}

// Add inserts a category into the set.
func (s *Set) Add(c Category) {
	if s.members == nil {
		s.members = make(map[Category]bool)
	}
	s.members[c] = true
}

// Remove deletes a category from the set.
func (s *Set) Remove(c Category) { delete(s.members, c) }

// Contains reports whether c is in the set.
func (s Set) Contains(c Category) bool { return s.members[c] }

// Len returns |V|.
func (s Set) Len() int { return len(s.members) }

// Categories returns the members in ascending order.
func (s Set) Categories() []Category {
	out := make([]Category, 0, len(s.members))
	for c := range s.members {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Intersect returns V_i ∩ V_j in ascending order.
func (s Set) Intersect(o Set) []Category {
	small, large := s.members, o.members
	if len(large) < len(small) {
		small, large = large, small
	}
	var out []Category
	for c := range small {
		if large[c] {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Similarity computes Ωs(i,j) = |V_i ∩ V_j| / min(|V_i|,|V_j|)
// (Equation 1/7). It is symmetric and lies in [0,1]; two nodes with an empty
// interest set have similarity 0.
func Similarity(a, b Set) float64 {
	if a.Len() == 0 || b.Len() == 0 {
		return 0
	}
	inter := 0
	small, large := a.members, b.members
	if len(large) < len(small) {
		small, large = large, small
	}
	for c := range small {
		if large[c] {
			inter++
		}
	}
	minLen := a.Len()
	if b.Len() < minLen {
		minLen = b.Len()
	}
	return float64(inter) / float64(minLen)
}

// Tracker records per-node resource requests by category, deriving the
// request-share weights ws(i,l) of Equation 11: the fraction of node i's
// requests that fall in category l. Safe for concurrent use (one striped
// lock per node row).
type Tracker struct {
	rows []trackerRow
}

type trackerRow struct {
	mu     sync.Mutex
	counts map[Category]float64
	total  float64
}

// NewTracker creates a request tracker for n nodes.
func NewTracker(n int) *Tracker {
	if n < 0 {
		panic("interest: negative node count")
	}
	return &Tracker{rows: make([]trackerRow, n)}
}

// NumNodes reports the tracked population size.
func (t *Tracker) NumNodes() int { return len(t.rows) }

func (t *Tracker) row(i int) *trackerRow {
	if i < 0 || i >= len(t.rows) {
		panic(fmt.Sprintf("interest: node %d out of range [0,%d)", i, len(t.rows)))
	}
	return &t.rows[i]
}

// Record notes one resource request by node i in category c.
func (t *Tracker) Record(i int, c Category) {
	r := t.row(i)
	r.mu.Lock()
	if r.counts == nil {
		r.counts = make(map[Category]float64)
	}
	r.counts[c]++
	r.total++
	r.mu.Unlock()
}

// Weight returns ws(i,l), the share of node i's requests in category c, or 0
// if i has made no requests.
func (t *Tracker) Weight(i int, c Category) float64 {
	r := t.row(i)
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.total == 0 {
		return 0
	}
	return r.counts[c] / r.total
}

// Requests returns the total number of requests recorded for node i.
func (t *Tracker) Requests(i int) float64 {
	r := t.row(i)
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// ResetNode clears one node's recorded requests (a departed identity).
func (t *Tracker) ResetNode(i int) {
	r := t.row(i)
	r.mu.Lock()
	r.counts, r.total = nil, 0
	r.mu.Unlock()
}

// Reset clears all recorded requests.
func (t *Tracker) Reset() {
	for i := range t.rows {
		r := &t.rows[i]
		r.mu.Lock()
		r.counts, r.total = nil, 0
		r.mu.Unlock()
	}
}

// WeightedSimilarity computes the falsification-resistant interest
// similarity of Equation 11:
//
//	Ωs(i,j) = Σ_{l ∈ V_i∩V_j} ws(i,l)·ws(j,l) / min(|V_i|,|V_j|)
//
// A colluder that pads its profile with interests it never requests gains
// nothing, because ws is derived from observed requests, not the profile.
// When neither node has recorded any request the profile-only Similarity is
// returned, so a cold-start network degrades gracefully to Equation 7.
func WeightedSimilarity(a, b Set, i, j int, t *Tracker) float64 {
	if a.Len() == 0 || b.Len() == 0 {
		return 0
	}
	if t == nil || (t.Requests(i) == 0 && t.Requests(j) == 0) {
		return Similarity(a, b)
	}
	minLen := a.Len()
	if b.Len() < minLen {
		minLen = b.Len()
	}
	sum := 0.0
	for _, c := range a.Intersect(b) {
		sum += t.Weight(i, c) * t.Weight(j, c)
	}
	return sum / float64(minLen)
}

// Profile summarizes node i's similarity to a set of peers it has rated —
// the (mean, min, max) triple the Gaussian filter of Equation 8 centers on.
type Profile struct {
	Mean, Min, Max float64
	N              int
}

// ProfileSimilarity computes the Profile of node i (interest set a) against
// each peer, using WeightedSimilarity when tracker is non-nil and weighted
// is true, else the plain Similarity.
func ProfileSimilarity(a Set, i int, peers []int, sets []Set, weighted bool, t *Tracker) Profile {
	var prof Profile
	for idx, j := range peers {
		var s float64
		if weighted {
			s = WeightedSimilarity(a, sets[j], i, j, t)
		} else {
			s = Similarity(a, sets[j])
		}
		if idx == 0 {
			prof.Min, prof.Max = s, s
		} else {
			if s < prof.Min {
				prof.Min = s
			}
			if s > prof.Max {
				prof.Max = s
			}
		}
		prof.Mean += s
		prof.N++
	}
	if prof.N > 0 {
		prof.Mean /= float64(prof.N)
	}
	return prof
}
