// Package xrand provides deterministic, splittable pseudo-random number
// streams for reproducible parallel simulation.
//
// The simulator runs many experiment repetitions and many per-node decision
// processes concurrently. If all of them shared one math/rand source, results
// would depend on goroutine scheduling. Instead, every logical actor derives
// its own Stream from a parent seed via a SplitMix64-style hash, so a given
// (seed, label) pair always yields the same sequence regardless of how the
// work is scheduled across CPUs.
package xrand

import (
	"math"
	"math/rand"
)

// Stream is a deterministic random stream. It wraps math/rand.Rand seeded by
// a well-mixed 64-bit state and adds the distribution helpers the simulator
// and trace generator need. A Stream is NOT safe for concurrent use; derive
// one Stream per goroutine with Split.
type Stream struct {
	rng  *rand.Rand
	src  *countingSource
	seed uint64
}

// countingSource wraps the math/rand source and counts how many times its
// state advances. math/rand's generator steps exactly once per Int63 or
// Uint64 call, so the count is a complete description of how far the stream
// has progressed from its seed — which is what lets durable snapshots record
// a stream as (seed, draws) and restore it bit-exactly with Discard.
type countingSource struct {
	src rand.Source64
	n   uint64
}

func (c *countingSource) Int63() int64 {
	c.n++
	return c.src.Int63()
}

func (c *countingSource) Uint64() uint64 {
	c.n++
	return c.src.Uint64()
}

func (c *countingSource) Seed(seed int64) {
	c.n = 0
	c.src.Seed(seed)
}

// New returns a Stream rooted at the given seed. Two Streams created with the
// same seed produce identical sequences.
func New(seed uint64) *Stream {
	mixed := mix(seed)
	src := &countingSource{src: rand.NewSource(int64(mixed)).(rand.Source64)}
	return &Stream{rng: rand.New(src), src: src, seed: seed}
}

// SourceDraws reports how many times the underlying generator state has
// advanced since the stream was created. Together with Seed it fully
// identifies the stream's position: New(Seed()) followed by
// Discard(SourceDraws()) reproduces this stream exactly.
func (s *Stream) SourceDraws() uint64 { return s.src.n }

// Discard advances the stream by n source draws without producing values,
// fast-forwarding a freshly seeded stream to a previously recorded position.
func (s *Stream) Discard(n uint64) {
	for i := uint64(0); i < n; i++ {
		s.src.src.Uint64()
	}
	s.src.n += n
}

// Split derives an independent child Stream identified by label. Children
// with distinct labels are statistically independent; the same (parent seed,
// label) always produces the same child.
func (s *Stream) Split(label uint64) *Stream {
	return New(mix(s.seed) ^ mix(label*0x9E3779B97F4A7C15+0x2545F4914F6CDD1D))
}

// SplitString derives a child Stream from a textual label, convenient for
// naming per-phase streams ("topology", "queries", ...).
func (s *Stream) SplitString(label string) *Stream {
	var h uint64 = 1469598103934665603 // FNV-1a offset basis
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	return s.Split(h)
}

// Seed reports the seed this stream was rooted at.
func (s *Stream) Seed() uint64 { return s.seed }

// Float64 returns a uniform value in [0,1).
func (s *Stream) Float64() float64 { return s.rng.Float64() }

// Intn returns a uniform int in [0,n). It panics if n <= 0, matching
// math/rand semantics.
func (s *Stream) Intn(n int) int { return s.rng.Intn(n) }

// IntRange returns a uniform int in the inclusive range [lo,hi].
func (s *Stream) IntRange(lo, hi int) int {
	if hi < lo {
		panic("xrand: IntRange with hi < lo")
	}
	return lo + s.rng.Intn(hi-lo+1)
}

// FloatRange returns a uniform float64 in [lo,hi).
func (s *Stream) FloatRange(lo, hi float64) float64 {
	return lo + (hi-lo)*s.rng.Float64()
}

// Bool returns true with probability p.
func (s *Stream) Bool(p float64) bool { return s.rng.Float64() < p }

// Perm returns a pseudo-random permutation of [0,n).
func (s *Stream) Perm(n int) []int { return s.rng.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (s *Stream) Shuffle(n int, swap func(i, j int)) { s.rng.Shuffle(n, swap) }

// NormFloat64 returns a standard normal deviate.
func (s *Stream) NormFloat64() float64 { return s.rng.NormFloat64() }

// Pareto samples a Pareto (power-law) distributed value with minimum xm > 0
// and shape alpha > 0. The tail follows P(X > x) = (xm/x)^alpha, the
// heavy-tailed behavior the paper observes for product-category popularity.
func (s *Stream) Pareto(xm, alpha float64) float64 {
	if xm <= 0 || alpha <= 0 {
		panic("xrand: Pareto requires xm > 0 and alpha > 0")
	}
	u := s.rng.Float64()
	for u == 0 {
		u = s.rng.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// Zipf samples ranks in [0,n) with probability proportional to
// 1/(rank+1)^exponent — the discrete power law used for interest-category
// popularity (paper Section 3.3, Figure 4(a)).
func (s *Stream) Zipf(n int, exponent float64) int {
	if n <= 0 {
		panic("xrand: Zipf requires n > 0")
	}
	// Inverse-CDF over the finite support; n is small (interest categories,
	// ranks), so a linear scan is cheaper than a precomputed alias table.
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), exponent)
	}
	u := s.rng.Float64() * total
	acc := 0.0
	for i := 0; i < n; i++ {
		acc += 1 / math.Pow(float64(i+1), exponent)
		if u < acc {
			return i
		}
	}
	return n - 1
}

// SampleWithout draws k distinct values uniformly from [0,n) excluding any
// value for which excluded returns true. It panics if fewer than k candidate
// values exist.
func (s *Stream) SampleWithout(n, k int, excluded func(int) bool) []int {
	candidates := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if excluded == nil || !excluded(i) {
			candidates = append(candidates, i)
		}
	}
	if len(candidates) < k {
		panic("xrand: SampleWithout has fewer candidates than k")
	}
	s.Shuffle(len(candidates), func(i, j int) {
		candidates[i], candidates[j] = candidates[j], candidates[i]
	})
	out := candidates[:k]
	return out
}

// mix is the SplitMix64 finalizer: a bijective avalanche hash over uint64.
func mix(z uint64) uint64 {
	z += 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
