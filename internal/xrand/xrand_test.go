package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("streams with same seed diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with different seeds agreed on %d/100 draws", same)
	}
}

func TestSplitDeterministic(t *testing.T) {
	a := New(7).Split(3)
	b := New(7).Split(3)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same (seed,label) split diverged")
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	a, b := parent.Split(1), parent.Split(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("sibling splits agreed on %d/100 draws", same)
	}
}

func TestSplitStringDeterministic(t *testing.T) {
	a := New(9).SplitString("topology")
	b := New(9).SplitString("topology")
	c := New(9).SplitString("queries")
	if a.Float64() != b.Float64() {
		t.Fatal("same string label diverged")
	}
	if a.Float64() == c.Float64() {
		t.Fatal("different string labels should (almost surely) differ")
	}
}

func TestIntRangeBounds(t *testing.T) {
	s := New(1)
	for i := 0; i < 10000; i++ {
		v := s.IntRange(3, 7)
		if v < 3 || v > 7 {
			t.Fatalf("IntRange(3,7) = %d out of bounds", v)
		}
	}
	// Degenerate single-point range.
	if v := s.IntRange(5, 5); v != 5 {
		t.Fatalf("IntRange(5,5) = %d, want 5", v)
	}
}

func TestIntRangeCoversAllValues(t *testing.T) {
	s := New(2)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		seen[s.IntRange(1, 4)] = true
	}
	for v := 1; v <= 4; v++ {
		if !seen[v] {
			t.Fatalf("IntRange(1,4) never produced %d in 1000 draws", v)
		}
	}
}

func TestIntRangePanicsOnInvertedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("IntRange(5,4) should panic")
		}
	}()
	New(1).IntRange(5, 4)
}

func TestFloatRange(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		v := s.FloatRange(0.5, 1.0)
		if v < 0.5 || v >= 1.0 {
			t.Fatalf("FloatRange(0.5,1) = %v out of bounds", v)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(4)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) hit rate %v, want ~0.3", frac)
	}
	if s.Bool(0) {
		t.Fatal("Bool(0) returned true")
	}
}

func TestParetoTail(t *testing.T) {
	s := New(5)
	const n = 50000
	over := 0
	for i := 0; i < n; i++ {
		v := s.Pareto(1, 2)
		if v < 1 {
			t.Fatalf("Pareto(1,2) = %v < xm", v)
		}
		if v > 2 {
			over++
		}
	}
	// P(X>2) = (1/2)^2 = 0.25 for alpha=2.
	frac := float64(over) / n
	if math.Abs(frac-0.25) > 0.02 {
		t.Fatalf("Pareto tail mass %v, want ~0.25", frac)
	}
}

func TestParetoPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pareto(0,1) should panic")
		}
	}()
	New(1).Pareto(0, 1)
}

func TestZipfRankSkew(t *testing.T) {
	s := New(6)
	counts := make([]int, 5)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[s.Zipf(5, 1.5)]++
	}
	for r := 1; r < 5; r++ {
		if counts[r] >= counts[r-1] {
			t.Fatalf("Zipf counts not decreasing: rank %d has %d >= rank %d has %d",
				r, counts[r], r-1, counts[r-1])
		}
	}
	// Rank 0 should hold the plurality of the mass for exponent 1.5.
	if counts[0] < n/3 {
		t.Fatalf("Zipf rank-0 mass %d too small", counts[0])
	}
}

func TestZipfSingleCategory(t *testing.T) {
	s := New(7)
	for i := 0; i < 100; i++ {
		if v := s.Zipf(1, 2); v != 0 {
			t.Fatalf("Zipf(1,·) = %d, want 0", v)
		}
	}
}

func TestSampleWithout(t *testing.T) {
	s := New(8)
	got := s.SampleWithout(10, 4, func(i int) bool { return i%2 == 0 })
	if len(got) != 4 {
		t.Fatalf("got %d samples, want 4", len(got))
	}
	seen := map[int]bool{}
	for _, v := range got {
		if v%2 == 0 {
			t.Fatalf("sampled excluded value %d", v)
		}
		if seen[v] {
			t.Fatalf("duplicate sample %d", v)
		}
		seen[v] = true
	}
}

func TestSampleWithoutPanicsWhenTooFew(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic when candidates < k")
		}
	}()
	New(1).SampleWithout(4, 3, func(i int) bool { return i < 2 })
}

func TestMixBijectivityProperty(t *testing.T) {
	// mix is a bijection, so distinct inputs must give distinct outputs.
	f := func(a, b uint64) bool {
		if a == b {
			return true
		}
		return mix(a) != mix(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFloat64InUnitIntervalProperty(t *testing.T) {
	f := func(seed uint64) bool {
		s := New(seed)
		for i := 0; i < 32; i++ {
			v := s.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZipfWithinBoundsProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%20) + 1
		s := New(seed)
		for i := 0; i < 16; i++ {
			v := s.Zipf(n, 1.2)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZipfPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Zipf(0,·) should panic")
		}
	}()
	New(1).Zipf(0, 1.5)
}

func TestPerm(t *testing.T) {
	s := New(11)
	p := s.Perm(8)
	seen := make([]bool, 8)
	for _, v := range p {
		if v < 0 || v >= 8 || seen[v] {
			t.Fatalf("Perm = %v not a permutation", p)
		}
		seen[v] = true
	}
}

func TestNormFloat64Moments(t *testing.T) {
	s := New(12)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := s.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 || math.Abs(variance-1) > 0.03 {
		t.Fatalf("NormFloat64 mean=%v var=%v, want ~0/~1", mean, variance)
	}
}

func TestSeedAccessor(t *testing.T) {
	if New(77).Seed() != 77 {
		t.Fatal("Seed() mismatch")
	}
}

// exercise burns a deterministic but varied mix of draws, covering every
// distribution helper the simulator uses, and returns a digest of what it
// produced.
func exercise(s *Stream, rounds int) []float64 {
	out := make([]float64, 0, rounds*8)
	for i := 0; i < rounds; i++ {
		out = append(out,
			s.Float64(),
			float64(s.Intn(97)),
			float64(s.IntRange(3, 900)),
			s.FloatRange(-2, 9),
			s.NormFloat64(),
			s.Pareto(1, 1.4),
			float64(s.Zipf(13, 1.1)),
		)
		if s.Bool(0.4) {
			out = append(out, float64(s.Perm(11)[3]))
		}
		if i%5 == 0 {
			out = append(out, float64(s.SampleWithout(40, 6, func(v int) bool { return v%3 == 0 })[0]))
		}
	}
	return out
}

func TestSourceDrawsCountsEveryHelper(t *testing.T) {
	s := New(21)
	if s.SourceDraws() != 0 {
		t.Fatalf("fresh stream reports %d draws, want 0", s.SourceDraws())
	}
	exercise(s, 50)
	if s.SourceDraws() == 0 {
		t.Fatal("SourceDraws did not advance")
	}
}

// TestDiscardRestoresExactPosition is the durability contract: a stream's
// position is fully captured by (seed, SourceDraws), and a fresh stream
// fast-forwarded with Discard continues bit-identically across every
// distribution helper, including rejection-sampling paths (Intn, Pareto)
// whose draw count varies per call.
func TestDiscardRestoresExactPosition(t *testing.T) {
	for _, rounds := range []int{0, 1, 7, 133} {
		orig := New(99)
		exercise(orig, rounds)
		draws := orig.SourceDraws()

		restored := New(99)
		restored.Discard(draws)
		if restored.SourceDraws() != draws {
			t.Fatalf("restored stream reports %d draws, want %d", restored.SourceDraws(), draws)
		}
		a := exercise(orig, 60)
		b := exercise(restored, 60)
		if len(a) != len(b) {
			t.Fatalf("rounds=%d: continuation lengths diverge: %d vs %d", rounds, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("rounds=%d: continuation diverges at %d: %v vs %v", rounds, i, a[i], b[i])
			}
		}
		if orig.SourceDraws() != restored.SourceDraws() {
			t.Fatalf("draw counters diverge after identical continuations: %d vs %d",
				orig.SourceDraws(), restored.SourceDraws())
		}
	}
}

func TestDiscardZeroIsNoop(t *testing.T) {
	a, b := New(5), New(5)
	a.Discard(0)
	if a.Float64() != b.Float64() {
		t.Fatal("Discard(0) changed the stream")
	}
}
