package trace

import (
	"testing"

	"socialtrust/internal/socialgraph"
)

// testConfig is a reduced-size trace that keeps the calibration properties
// measurable while staying fast.
func testConfig() Config {
	cfg := Default()
	cfg.NumUsers = 800
	cfg.Months = 12
	cfg.TransactionsPerMonth = 800
	cfg.Seed = 3
	return cfg
}

var cachedDS *Dataset

// dataset generates the shared test trace once.
func dataset(t *testing.T) *Dataset {
	t.Helper()
	if cachedDS == nil {
		ds, err := Generate(testConfig())
		if err != nil {
			t.Fatal(err)
		}
		cachedDS = ds
	}
	return cachedDS
}

func TestGenerateValidation(t *testing.T) {
	bad := []Config{
		{NumUsers: 3},
		func() Config { c := testConfig(); c.PreferredCategories = IntRange{0, 5}; return c }(),
		func() Config { c := testConfig(); c.PreferredCategories = IntRange{5, 99}; return c }(),
		func() Config { c := testConfig(); c.Months = -1; return c }(),
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestGenerateBasicShape(t *testing.T) {
	ds := dataset(t)
	cfg := testConfig()
	if len(ds.Users) != cfg.NumUsers {
		t.Fatalf("users = %d", len(ds.Users))
	}
	if len(ds.Transactions) == 0 {
		t.Fatal("no transactions generated")
	}
	for _, tx := range ds.Transactions {
		if tx.Buyer == tx.Seller {
			t.Fatal("self-transaction")
		}
		if tx.Rating < -2 || tx.Rating > 2 {
			t.Fatalf("rating %v outside [-2,2]", tx.Rating)
		}
		if tx.Month < 0 || tx.Month >= cfg.Months {
			t.Fatalf("month %d out of range", tx.Month)
		}
	}
	for _, u := range ds.Users {
		k := len(u.Interests)
		if k < cfg.PreferredCategories.Lo || k > cfg.PreferredCategories.Hi {
			t.Fatalf("user %d has %d interests", u.ID, k)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Transactions) != len(b.Transactions) {
		t.Fatalf("transaction counts differ: %d vs %d", len(a.Transactions), len(b.Transactions))
	}
	for i := range a.Transactions {
		if a.Transactions[i] != b.Transactions[i] {
			t.Fatalf("transaction %d differs", i)
		}
	}
}

func TestAccountingConsistency(t *testing.T) {
	ds := dataset(t)
	sold, bought := 0, 0
	for _, u := range ds.Users {
		sold += u.Sold
		bought += u.Bought
	}
	if sold != len(ds.Transactions) || bought != len(ds.Transactions) {
		t.Fatalf("sold=%d bought=%d transactions=%d", sold, bought, len(ds.Transactions))
	}
	// Business networks are symmetric.
	for _, u := range ds.Users {
		for p := range u.BusinessNetwork {
			if !ds.Users[p].BusinessNetwork[u.ID] {
				t.Fatalf("business network asymmetric: %d has %d but not vice versa", u.ID, p)
			}
		}
	}
}

// --- calibration against the paper's Section 3 statistics ---

func TestFig1aBusinessNetworkCorrelationStrong(t *testing.T) {
	sc := dataset(t).BusinessNetworkVsReputation()
	if sc.C < 0.6 {
		t.Errorf("C(reputation, business network) = %v, want strong (paper: 0.996)", sc.C)
	}
	if len(sc.Reputation) < 100 {
		t.Errorf("only %d scatter points", len(sc.Reputation))
	}
}

func TestFig1bTransactionsCorrelationStrong(t *testing.T) {
	sc := dataset(t).TransactionsVsReputation()
	if sc.C < 0.9 {
		t.Errorf("C(reputation, transactions) = %v, want near-linear", sc.C)
	}
}

func TestFig2PersonalNetworkCorrelationWeak(t *testing.T) {
	sc := dataset(t).PersonalNetworkVsReputation()
	if sc.C > 0.25 {
		t.Errorf("C(reputation, personal network) = %v, want weak (paper: 0.092)", sc.C)
	}
}

func TestFig2ContrastWithFig1a(t *testing.T) {
	// O1 vs O2: business-network correlation must dwarf personal-network
	// correlation.
	ds := dataset(t)
	biz := ds.BusinessNetworkVsReputation()
	per := ds.PersonalNetworkVsReputation()
	if biz.C < 3*per.C {
		t.Errorf("business C %v should dwarf personal C %v", biz.C, per.C)
	}
}

func TestFig3RatingsDecayWithDistance(t *testing.T) {
	buckets := dataset(t).RatingsByDistance()
	if len(buckets) != 4 {
		t.Fatalf("got %d buckets", len(buckets))
	}
	for i := range buckets {
		if buckets[i].Pairs == 0 {
			t.Fatalf("no pairs at distance %d", i+1)
		}
	}
	for i := 1; i < 4; i++ {
		if buckets[i].AvgRating >= buckets[i-1].AvgRating {
			t.Errorf("avg rating not decreasing: d=%d %v vs d=%d %v (O4)",
				i+1, buckets[i].AvgRating, i, buckets[i-1].AvgRating)
		}
		if buckets[i].AvgCount > buckets[i-1].AvgCount+0.01 {
			t.Errorf("avg rating count increased with distance: d=%d %v vs d=%d %v (O3)",
				i+1, buckets[i].AvgCount, i, buckets[i-1].AvgCount)
		}
	}
}

func TestFig4aTopCategoriesDominate(t *testing.T) {
	ranks := dataset(t).CategoryRankCDF(7, 5)
	if len(ranks) != 7 {
		t.Fatalf("got %d ranks", len(ranks))
	}
	top3 := ranks[2].CDF
	if top3 < 0.8 || top3 > 0.98 {
		t.Errorf("top-3 category share = %v, want ≈0.88 (O5)", top3)
	}
	// Shares decrease with rank (power law).
	for r := 1; r < 7; r++ {
		if ranks[r].Share > ranks[r-1].Share {
			t.Errorf("rank %d share %v exceeds rank %d share %v", r+1, ranks[r].Share, r, ranks[r-1].Share)
		}
	}
	// CDF is monotone and bounded.
	for r := 1; r < 7; r++ {
		if ranks[r].CDF < ranks[r-1].CDF || ranks[r].CDF > 1+1e-9 {
			t.Errorf("rank CDF broken at %d: %+v", r, ranks)
		}
	}
}

func TestFig4bSimilarTransactShare(t *testing.T) {
	ds := dataset(t)
	above := ds.ShareAboveSimilarity(0.3)
	if above < 0.5 {
		t.Errorf("share of transactions above 0.3 similarity = %v, want ≥0.5 (paper: 0.6, O6)", above)
	}
	low := 1 - ds.ShareAboveSimilarity(0.2)
	if low > 0.3 {
		t.Errorf("share at ≤0.2 similarity = %v, want small (paper: 0.1)", low)
	}
	cdf := ds.TransactionsBySimilarity(10)
	if len(cdf) != 11 {
		t.Fatalf("got %d CDF points", len(cdf))
	}
	for i := 1; i < len(cdf); i++ {
		if cdf[i].CDF < cdf[i-1].CDF {
			t.Errorf("similarity CDF not monotone at %d", i)
		}
	}
	if cdf[10].CDF < 1-1e-9 {
		t.Errorf("similarity CDF should end at 1, got %v", cdf[10].CDF)
	}
}

func TestRatingFrequencies(t *testing.T) {
	fs := dataset(t).RatingFrequencies()
	if fs.TransactingPairs == 0 {
		t.Fatal("no transacting pairs")
	}
	// Overstock's mean frequency is ~2.2/month; ours should land in a
	// low-single-digit band.
	if fs.MeanPerMonth < 1 || fs.MeanPerMonth > 4 {
		t.Errorf("mean rating frequency = %v/month, want low single digits", fs.MeanPerMonth)
	}
	if fs.MaxPositive <= fs.MeanPositive {
		t.Errorf("max positive %v should exceed mean %v", fs.MaxPositive, fs.MeanPositive)
	}
	if fs.MeanNegative > fs.MeanPositive {
		t.Errorf("negative frequency %v should not exceed positive %v", fs.MeanNegative, fs.MeanPositive)
	}
}

func TestPairSimilarityStats(t *testing.T) {
	mean, min, max := dataset(t).PairSimilarityStats()
	if mean < 0.25 || mean > 0.6 {
		t.Errorf("pair similarity mean = %v, want ≈0.423", mean)
	}
	if min < 0 || max > 1 || min > max {
		t.Errorf("pair similarity bounds broken: %v/%v", min, max)
	}
}

func TestPairDistanceCacheConsistent(t *testing.T) {
	ds := dataset(t)
	for i := 0; i < 50; i++ {
		a, b := i%20, (i*7+3)%len(ds.Users)
		if a == b {
			continue
		}
		want := ds.Graph.Distance(socialgraph.NodeID(a), socialgraph.NodeID(b), 4)
		if got := ds.PairDistance(a, b); got != want {
			t.Fatalf("PairDistance(%d,%d) = %d, want %d", a, b, got, want)
		}
		if got := ds.PairDistance(b, a); got != want {
			t.Fatalf("PairDistance not symmetric for (%d,%d)", a, b)
		}
	}
}

func TestInterestSetMatchesInterests(t *testing.T) {
	ds := dataset(t)
	u := ds.Users[0]
	set := u.InterestSet()
	if set.Len() != len(u.Interests) {
		t.Fatalf("set size %d vs %d interests", set.Len(), len(u.Interests))
	}
	for _, c := range u.Interests {
		if !set.Contains(c) {
			t.Fatalf("set missing %v", c)
		}
	}
}

func TestObservationsAllHold(t *testing.T) {
	obs := dataset(t).Observations()
	if len(obs) != 6 {
		t.Fatalf("got %d observations", len(obs))
	}
	for _, o := range obs {
		if !o.Holds {
			t.Errorf("%s", o)
		}
		if o.ID == "" || o.Statement == "" || o.Criterion == "" {
			t.Errorf("incomplete observation %+v", o)
		}
	}
}

func TestObservationString(t *testing.T) {
	o := Observation{ID: "O1", Statement: "x", Measured: 0.5, Criterion: "c", Holds: true}
	if got := o.String(); got == "" || got[:2] != "O1" {
		t.Fatalf("String = %q", got)
	}
	o.Holds = false
	if got := o.String(); !contains(got, "FAILS") {
		t.Fatalf("String = %q", got)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
