// Package trace implements the Overstock-trace substrate of the paper's
// Section 3. The authors crawled 450,000 transaction ratings between 200,000
// users (Sep 2008 – Sep 2010) from the Overstock auction platform; that data
// is proprietary, so this package provides the closest synthetic equivalent:
// a generator whose output is calibrated to every statistic the paper
// reports, plus the analyzers that reproduce Figures 1–4 and the derived
// observations O1–O6. The analysis code paths are identical to what would
// run over the real crawl; only the data source is synthetic.
//
// Calibration targets (paper values):
//   - reputation vs business-network size: linear, C ≈ 0.996 (Fig. 1a)
//   - reputation vs personal-network size: weak, C ≈ 0.092 (Fig. 2)
//   - top-3 purchase categories ≈ 88% of a user's purchases (Fig. 4a)
//   - ≈60% of transactions between users with >30% interest similarity (Fig. 4b)
//   - rating value and rating count decay with social distance (Fig. 3)
//   - mean rating frequency ≈ 2.2/month between transacting pairs
package trace

import (
	"fmt"

	"socialtrust/internal/interest"
	"socialtrust/internal/socialgraph"
	"socialtrust/internal/xrand"
)

// Transaction is one purchase plus its buyer→seller rating. Overstock
// ratings lie in [−2, +2].
type Transaction struct {
	Buyer, Seller int
	Category      interest.Category
	Rating        float64
	Month         int
}

// User is one marketplace participant.
type User struct {
	ID int
	// Interests ranks the user's preferred categories, most-purchased
	// first; purchases follow a power law over this ranking.
	Interests []interest.Category
	// Activity scales how often the user buys.
	Activity float64
	// Reputation accumulates received ratings (as a seller).
	Reputation float64
	// Sold / Bought count transactions by role.
	Sold, Bought int
	// BusinessNetwork is the set of transaction partners.
	BusinessNetwork map[int]bool
}

// InterestSet returns the user's interests as a set for similarity math.
func (u *User) InterestSet() interest.Set {
	return interest.NewSet(u.Interests...)
}

// Dataset is a generated trace: the user population, the personal (social)
// network, and the transaction log.
type Dataset struct {
	Users        []*User
	Graph        *socialgraph.Graph // personal network
	Transactions []Transaction
	Config       Config

	distCache map[[2]int]int
}

// PairDistance returns the social distance between two users with a 4-hop
// cutoff, memoized across the generator and the analyzers (the same pairs
// recur constantly).
func (d *Dataset) PairDistance(a, b int) int {
	if d.distCache == nil {
		d.distCache = make(map[[2]int]int)
	}
	key := [2]int{a, b}
	if a > b {
		key = [2]int{b, a}
	}
	if v, ok := d.distCache[key]; ok {
		return v
	}
	v := d.Graph.Distance(socialgraph.NodeID(a), socialgraph.NodeID(b), 4)
	d.distCache[key] = v
	return v
}

// Config parameterizes the generator. Zero values take the scaled-down
// defaults in Default.
type Config struct {
	NumUsers      int // paper: 200,000; default 2,000 (scaled)
	NumCategories int // product categories; default 30
	Months        int // paper: 24
	// TransactionsPerMonth; default NumUsers (≈ the paper's per-user rate:
	// 450k/24 months ≈ 0.094/user/month scaled up for statistical power).
	TransactionsPerMonth int

	// FriendsPareto shapes the personal-network degree distribution
	// (Pareto xm=2, alpha=1.6 by default — heavy-tailed like real OSNs).
	FriendsXm, FriendsAlpha float64
	// CategoryZipf is the power-law exponent of per-user category
	// preference; 2.0 lands the paper's 88% top-3 share.
	CategoryZipf float64
	// PreferredCategories bounds how many categories a user buys from.
	PreferredCategories IntRange
	// SocialBias is the probability a purchase goes to a socially-close
	// seller rather than a reputation-chosen one.
	SocialBias float64
	// RepeatBias is the probability a socially-close transaction spawns an
	// immediate repeat purchase from the same seller (drives Fig. 3b).
	RepeatBias float64

	Seed uint64
}

// IntRange is an inclusive integer range.
type IntRange struct{ Lo, Hi int }

// Default returns the scaled-down default configuration.
func Default() Config {
	return Config{
		NumUsers:             2000,
		NumCategories:        30,
		Months:               24,
		TransactionsPerMonth: 2000,
		FriendsXm:            2,
		FriendsAlpha:         1.6,
		CategoryZipf:         1.6,
		PreferredCategories:  IntRange{3, 10},
		SocialBias:           0.45,
		RepeatBias:           0.35,
		Seed:                 1,
	}
}

func (c Config) withDefaults() Config {
	d := Default()
	if c.NumUsers == 0 {
		c.NumUsers = d.NumUsers
	}
	if c.NumCategories == 0 {
		c.NumCategories = d.NumCategories
	}
	if c.Months == 0 {
		c.Months = d.Months
	}
	if c.TransactionsPerMonth == 0 {
		c.TransactionsPerMonth = c.NumUsers
	}
	if c.FriendsXm == 0 {
		c.FriendsXm = d.FriendsXm
	}
	if c.FriendsAlpha == 0 {
		c.FriendsAlpha = d.FriendsAlpha
	}
	if c.CategoryZipf == 0 {
		c.CategoryZipf = d.CategoryZipf
	}
	if c.PreferredCategories.Hi == 0 {
		c.PreferredCategories = d.PreferredCategories
	}
	if c.SocialBias == 0 {
		c.SocialBias = d.SocialBias
	}
	if c.RepeatBias == 0 {
		c.RepeatBias = d.RepeatBias
	}
	return c
}

func (c Config) validate() error {
	if c.NumUsers < 10 {
		return fmt.Errorf("trace: NumUsers %d too small", c.NumUsers)
	}
	if c.PreferredCategories.Lo < 1 || c.PreferredCategories.Hi > c.NumCategories ||
		c.PreferredCategories.Lo > c.PreferredCategories.Hi {
		return fmt.Errorf("trace: invalid PreferredCategories %+v", c.PreferredCategories)
	}
	if c.Months <= 0 || c.TransactionsPerMonth <= 0 {
		return fmt.Errorf("trace: Months and TransactionsPerMonth must be positive")
	}
	return nil
}

// Generate builds a synthetic Overstock-like trace. Deterministic in
// Config.Seed.
func Generate(cfg Config) (*Dataset, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	root := xrand.New(cfg.Seed)
	ds := &Dataset{
		Graph:  socialgraph.New(cfg.NumUsers),
		Config: cfg,
	}
	ds.buildUsers(root.SplitString("users"))
	ds.buildPersonalNetwork(root.SplitString("friends"))
	ds.runMarket(root.SplitString("market"))
	return ds, nil
}

func (d *Dataset) buildUsers(rng *xrand.Stream) {
	cfg := d.Config
	d.Users = make([]*User, cfg.NumUsers)
	for id := 0; id < cfg.NumUsers; id++ {
		u := rng.Split(uint64(id))
		k := u.IntRange(cfg.PreferredCategories.Lo, cfg.PreferredCategories.Hi)
		cats := u.SampleWithout(cfg.NumCategories, k, nil)
		interests := make([]interest.Category, k)
		for i, c := range cats {
			interests[i] = interest.Category(c)
		}
		d.Users[id] = &User{
			ID:              id,
			Interests:       interests,
			Activity:        u.Pareto(1, 2), // heavy-tailed buyer activity
			BusinessNetwork: make(map[int]bool),
		}
	}
}

// buildPersonalNetwork wires friendships with a heavy-tailed degree
// distribution, independent of (future) reputation — that independence is
// what yields the paper's weak Figure 2 correlation. Friendships are
// homophilous (mostly drawn among users sharing an interest category), the
// standard OSN property the paper cites ("birds of a feather"), which makes
// socially-routed purchases interest-similar (Figure 4(b)).
func (d *Dataset) buildPersonalNetwork(rng *xrand.Stream) {
	cfg := d.Config
	byCategory := make([][]int, cfg.NumCategories)
	for id, u := range d.Users {
		for _, c := range u.Interests {
			byCategory[c] = append(byCategory[c], id)
		}
	}
	for id := 0; id < cfg.NumUsers; id++ {
		u := rng.Split(uint64(id))
		want := int(u.Pareto(cfg.FriendsXm, cfg.FriendsAlpha))
		if max := cfg.NumUsers / 4; want > max {
			want = max
		}
		me := d.Users[id]
		for k := 0; k < want; k++ {
			var friend int
			if u.Bool(0.6) {
				pool := byCategory[me.Interests[u.Intn(len(me.Interests))]]
				friend = pool[u.Intn(len(pool))]
			} else {
				friend = u.Intn(cfg.NumUsers)
			}
			if friend == id || d.Graph.Adjacent(socialgraph.NodeID(id), socialgraph.NodeID(friend)) {
				continue
			}
			d.Graph.AddRelationship(socialgraph.NodeID(id), socialgraph.NodeID(friend),
				socialgraph.Relationship{Kind: socialgraph.Friendship})
		}
	}
}

// runMarket simulates Months of purchases.
func (d *Dataset) runMarket(rng *xrand.Stream) {
	cfg := d.Config
	// Activity-weighted buyer sampling via cumulative weights.
	cum := make([]float64, cfg.NumUsers)
	total := 0.0
	for i, u := range d.Users {
		total += u.Activity
		cum[i] = total
	}
	pickBuyer := func() int {
		x := rng.Float64() * total
		lo, hi := 0, cfg.NumUsers-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo
	}
	// Sellers indexed by category for the reputation-weighted path.
	byCategory := make([][]int, cfg.NumCategories)
	for id, u := range d.Users {
		for _, c := range u.Interests {
			byCategory[c] = append(byCategory[c], id)
		}
	}

	for month := 0; month < cfg.Months; month++ {
		for t := 0; t < cfg.TransactionsPerMonth; t++ {
			buyer := pickBuyer()
			bu := d.Users[buyer]
			cat := bu.Interests[rng.Zipf(len(bu.Interests), cfg.CategoryZipf)]
			var seller int
			if rng.Bool(cfg.SocialBias) {
				seller = d.socialSeller(buyer, rng)
			} else {
				seller = d.reputationSeller(buyer, byCategory[cat], rng)
			}
			if seller < 0 || seller == buyer {
				continue
			}
			d.transact(buyer, seller, cat, month, rng)
			// Socially-close pairs transact repeatedly (Fig. 3b); the chain
			// is capped so repeat concentration cannot decouple reputation
			// from distinct-partner count (Fig. 1a's near-perfect line).
			dist := d.PairDistance(buyer, seller)
			if dist != socialgraph.NoPath && dist <= 2 {
				for extra := 0; extra < 2 && rng.Bool(cfg.RepeatBias); extra++ {
					d.transact(buyer, seller, cat, month, rng)
				}
			}
		}
	}
}

// socialSeller samples a seller from the buyer's social neighborhood, with
// probability decaying in distance (most picks at 1 hop, few beyond 3). The
// walk is Metropolis–Hastings corrected so the endpoint is near-uniform over
// the neighborhood rather than degree-biased — otherwise high-degree users
// would soak up social purchases and reputation would correlate with
// personal-network size, destroying the paper's weak Figure 2 correlation.
func (d *Dataset) socialSeller(buyer int, rng *xrand.Stream) int {
	targetDist := 1
	switch x := rng.Float64(); {
	case x < 0.55:
		targetDist = 1
	case x < 0.80:
		targetDist = 2
	case x < 0.95:
		targetDist = 3
	default:
		targetDist = 4
	}
	cur := socialgraph.NodeID(buyer)
	for step := 0; step < targetDist; step++ {
		friends := d.Graph.Friends(cur)
		if len(friends) == 0 {
			return -1
		}
		next := friends[rng.Intn(len(friends))]
		// Metropolis–Hastings acceptance toward the uniform distribution.
		if accept := float64(d.Graph.Degree(cur)) / float64(d.Graph.Degree(next)); accept < 1 && !rng.Bool(accept) {
			continue // stay put; counts as a step
		}
		cur = next
	}
	if int(cur) == buyer {
		return -1
	}
	return int(cur)
}

// reputationSeller picks among the category's sellers proportionally to
// (reputation + 1) — buyers prefer trustworthy sellers (observation O1),
// which produces the linear Figure 1 relationship.
func (d *Dataset) reputationSeller(buyer int, pool []int, rng *xrand.Stream) int {
	if len(pool) == 0 {
		return -1
	}
	total := 0.0
	for _, s := range pool {
		if s == buyer {
			continue
		}
		rep := d.Users[s].Reputation
		if rep < 0 {
			rep = 0
		}
		total += rep + 1
	}
	if total <= 0 {
		return -1
	}
	x := rng.Float64() * total
	acc := 0.0
	for _, s := range pool {
		if s == buyer {
			continue
		}
		rep := d.Users[s].Reputation
		if rep < 0 {
			rep = 0
		}
		acc += rep + 1
		if x < acc {
			return s
		}
	}
	return -1
}

// transact executes one purchase and its rating.
func (d *Dataset) transact(buyer, seller int, cat interest.Category, month int, rng *xrand.Stream) {
	dist := d.PairDistance(buyer, seller)
	d.Transactions = append(d.Transactions, Transaction{
		Buyer:    buyer,
		Seller:   seller,
		Category: cat,
		Rating:   d.ratingFor(dist, rng),
		Month:    month,
	})
	tx := &d.Transactions[len(d.Transactions)-1]
	bu, se := d.Users[buyer], d.Users[seller]
	bu.Bought++
	se.Sold++
	se.Reputation += tx.Rating
	// Overstock is mutual-rating: the seller also rates the buyer (almost
	// always positively — payment either cleared or it didn't), so heavy
	// buyers earn reputation too. This mutuality is what makes reputation
	// track business-network size near-perfectly in Figure 1(a).
	if rng.Bool(0.9) {
		bu.Reputation += 2
	} else {
		bu.Reputation++
	}
	bu.BusinessNetwork[seller] = true
	se.BusinessNetwork[buyer] = true
	d.Graph.RecordInteraction(socialgraph.NodeID(buyer), socialgraph.NodeID(seller), 1)
}

// ratingFor draws a rating in [−2,+2] whose mean decays with social
// distance (Fig. 3a): close partners rate near the maximum, strangers and
// distant partners rate lower and with more negative mass.
func (d *Dataset) ratingFor(dist int, rng *xrand.Stream) float64 {
	if dist == socialgraph.NoPath {
		dist = 5
	}
	// pPositive decays from 0.97 at distance 1 to 0.75 for strangers.
	pPos := 0.97 - 0.05*float64(dist-1)
	if pPos < 0.75 {
		pPos = 0.75
	}
	if rng.Bool(pPos) {
		if rng.Bool(0.85 - 0.1*float64(dist-1)) {
			return 2
		}
		return 1
	}
	switch rng.Intn(3) {
	case 0:
		return 0
	case 1:
		return -1
	default:
		return -2
	}
}
