package trace

import (
	"sort"

	"socialtrust/internal/interest"
	"socialtrust/internal/socialgraph"
	"socialtrust/internal/stats"
)

// ReputationScatter is the data behind Figures 1(a), 1(b) and 2: one point
// per user relating reputation to a size metric, plus the paper's squared
// correlation coefficient C.
type ReputationScatter struct {
	Reputation []float64
	Size       []float64
	C          float64
}

// scatter builds a ReputationScatter for the given per-user metric,
// restricted to users with positive reputation (the paper's log-log plots
// can only show positive values).
func (d *Dataset) scatter(metric func(*User) float64) ReputationScatter {
	var sc ReputationScatter
	for _, u := range d.Users {
		if u.Reputation <= 0 {
			continue
		}
		sc.Reputation = append(sc.Reputation, u.Reputation)
		sc.Size = append(sc.Size, metric(u))
	}
	if c, err := stats.Correlation(sc.Reputation, sc.Size); err == nil {
		sc.C = c
	}
	return sc
}

// BusinessNetworkVsReputation reproduces Figure 1(a): business-network size
// against reputation per user. The paper reports C = 0.996.
func (d *Dataset) BusinessNetworkVsReputation() ReputationScatter {
	return d.scatter(func(u *User) float64 { return float64(len(u.BusinessNetwork)) })
}

// TransactionsVsReputation reproduces Figure 1(b): transactions a user took
// part in against reputation.
func (d *Dataset) TransactionsVsReputation() ReputationScatter {
	return d.scatter(func(u *User) float64 { return float64(u.Sold + u.Bought) })
}

// PersonalNetworkVsReputation reproduces Figure 2: personal-network size
// against reputation. The paper reports a weak C = 0.092.
func (d *Dataset) PersonalNetworkVsReputation() ReputationScatter {
	return d.scatter(func(u *User) float64 {
		return float64(d.Graph.Degree(socialgraph.NodeID(u.ID)))
	})
}

// DistanceBucket aggregates Figure 3's per-social-distance statistics.
type DistanceBucket struct {
	Distance  int
	AvgRating float64 // Fig. 3(a): average rating value
	AvgCount  float64 // Fig. 3(b): average ratings per (buyer,seller) pair
	Pairs     int
}

// RatingsByDistance reproduces Figure 3: average rating value and average
// per-pair rating count for buyer–seller pairs at social distance 1..4.
func (d *Dataset) RatingsByDistance() []DistanceBucket {
	type pairAgg struct {
		sum   float64
		count int
		dist  int
	}
	pairs := make(map[[2]int]*pairAgg)
	for i := range d.Transactions {
		tx := &d.Transactions[i]
		key := [2]int{tx.Buyer, tx.Seller}
		agg := pairs[key]
		if agg == nil {
			agg = &pairAgg{dist: d.PairDistance(tx.Buyer, tx.Seller)}
			pairs[key] = agg
		}
		agg.sum += tx.Rating
		agg.count++
	}
	buckets := make([]DistanceBucket, 4)
	for i := range buckets {
		buckets[i].Distance = i + 1
	}
	for _, agg := range pairs {
		if agg.dist < 1 || agg.dist > 4 {
			continue
		}
		b := &buckets[agg.dist-1]
		b.AvgRating += agg.sum / float64(agg.count)
		b.AvgCount += float64(agg.count)
		b.Pairs++
	}
	for i := range buckets {
		if buckets[i].Pairs > 0 {
			buckets[i].AvgRating /= float64(buckets[i].Pairs)
			buckets[i].AvgCount /= float64(buckets[i].Pairs)
		}
	}
	return buckets
}

// CategoryRankShare reproduces Figure 4(a): the share of a user's purchases
// falling in their rank-r most-purchased category, averaged over users, for
// ranks 1..maxRank, plus the cumulative share (the CDF the paper plots).
// The paper reports the top-3 ranks covering ≈88% of purchases.
type CategoryRankShare struct {
	Rank  int
	Share float64 // mean share of purchases in this rank
	CDF   float64 // cumulative share through this rank
}

// CategoryRankCDF computes Figure 4(a) over users with at least minPurchases
// purchases (small samples make rank shares meaningless).
func (d *Dataset) CategoryRankCDF(maxRank, minPurchases int) []CategoryRankShare {
	perUser := make(map[int]map[interest.Category]int)
	totals := make(map[int]int)
	for i := range d.Transactions {
		tx := &d.Transactions[i]
		if perUser[tx.Buyer] == nil {
			perUser[tx.Buyer] = make(map[interest.Category]int)
		}
		perUser[tx.Buyer][tx.Category]++
		totals[tx.Buyer]++
	}
	shareSums := make([]float64, maxRank)
	users := 0
	for buyer, cats := range perUser {
		if totals[buyer] < minPurchases {
			continue
		}
		counts := make([]int, 0, len(cats))
		for _, c := range cats {
			counts = append(counts, c)
		}
		sort.Sort(sort.Reverse(sort.IntSlice(counts)))
		users++
		for r := 0; r < maxRank && r < len(counts); r++ {
			shareSums[r] += float64(counts[r]) / float64(totals[buyer])
		}
	}
	out := make([]CategoryRankShare, maxRank)
	cum := 0.0
	for r := 0; r < maxRank; r++ {
		share := 0.0
		if users > 0 {
			share = shareSums[r] / float64(users)
		}
		cum += share
		out[r] = CategoryRankShare{Rank: r + 1, Share: share, CDF: cum}
	}
	return out
}

// SimilarityBucket is one point of Figure 4(b): the share of transactions
// occurring between pairs whose interest similarity is ≤ Similarity.
type SimilarityBucket struct {
	Similarity float64
	CDF        float64
}

// TransactionsBySimilarity reproduces Figure 4(b): the CDF of transactions
// over buyer–seller interest similarity (Equation 1). The paper reports only
// ~10% of transactions between pairs with ≤20% similarity and ~60% between
// pairs with >30% similarity.
func (d *Dataset) TransactionsBySimilarity(buckets int) []SimilarityBucket {
	if buckets <= 0 {
		buckets = 10
	}
	counts := make([]int, buckets+1)
	total := 0
	simCache := make(map[[2]int]float64)
	for i := range d.Transactions {
		tx := &d.Transactions[i]
		key := [2]int{tx.Buyer, tx.Seller}
		sim, ok := simCache[key]
		if !ok {
			sim = interest.Similarity(d.Users[tx.Buyer].InterestSet(), d.Users[tx.Seller].InterestSet())
			simCache[key] = sim
		}
		idx := int(sim * float64(buckets))
		if idx > buckets {
			idx = buckets
		}
		counts[idx]++
		total++
	}
	out := make([]SimilarityBucket, buckets+1)
	cum := 0
	for i := 0; i <= buckets; i++ {
		cum += counts[i]
		cdf := 0.0
		if total > 0 {
			cdf = float64(cum) / float64(total)
		}
		out[i] = SimilarityBucket{Similarity: float64(i) / float64(buckets), CDF: cdf}
	}
	return out
}

// ShareAboveSimilarity returns the fraction of transactions between pairs
// with similarity strictly greater than the threshold.
func (d *Dataset) ShareAboveSimilarity(threshold float64) float64 {
	if len(d.Transactions) == 0 {
		return 0
	}
	simCache := make(map[[2]int]float64)
	above := 0
	for i := range d.Transactions {
		tx := &d.Transactions[i]
		key := [2]int{tx.Buyer, tx.Seller}
		sim, ok := simCache[key]
		if !ok {
			sim = interest.Similarity(d.Users[tx.Buyer].InterestSet(), d.Users[tx.Seller].InterestSet())
			simCache[key] = sim
		}
		if sim > threshold {
			above++
		}
	}
	return float64(above) / float64(len(d.Transactions))
}

// FrequencyStats summarizes per-pair monthly rating frequencies — the
// empirical basis of SocialTrust's thresholds (Overstock: mean ≈ 2.2/month;
// positive ratings mean/max/min 1.75/21/1; negative 1.84/2/1).
type FrequencyStats struct {
	MeanPerMonth     float64
	MeanPositive     float64
	MaxPositive      float64
	MeanNegative     float64
	MaxNegative      float64
	TransactingPairs int
}

// RatingFrequencies computes FrequencyStats over the trace.
func (d *Dataset) RatingFrequencies() FrequencyStats {
	type pm struct {
		pair  [2]int
		month int
	}
	pos := make(map[pm]int)
	neg := make(map[pm]int)
	all := make(map[pm]int)
	pairSet := make(map[[2]int]bool)
	for i := range d.Transactions {
		tx := &d.Transactions[i]
		key := pm{[2]int{tx.Buyer, tx.Seller}, tx.Month}
		all[key]++
		if tx.Rating > 0 {
			pos[key]++
		} else if tx.Rating < 0 {
			neg[key]++
		}
		pairSet[[2]int{tx.Buyer, tx.Seller}] = true
	}
	var fs FrequencyStats
	fs.TransactingPairs = len(pairSet)
	sum := 0
	for _, c := range all {
		sum += c
	}
	if len(all) > 0 {
		fs.MeanPerMonth = float64(sum) / float64(len(all))
	}
	sumP := 0
	for _, c := range pos {
		sumP += c
		if float64(c) > fs.MaxPositive {
			fs.MaxPositive = float64(c)
		}
	}
	if len(pos) > 0 {
		fs.MeanPositive = float64(sumP) / float64(len(pos))
	}
	sumN := 0
	for _, c := range neg {
		sumN += c
		if float64(c) > fs.MaxNegative {
			fs.MaxNegative = float64(c)
		}
	}
	if len(neg) > 0 {
		fs.MeanNegative = float64(sumN) / float64(len(neg))
	}
	return fs
}

// PairSimilarityStats returns the mean, min and max interest similarity over
// transacting pairs — the paper's Overstock calibration is 0.423 / 0.13 / 1.
func (d *Dataset) PairSimilarityStats() (mean, min, max float64) {
	seen := make(map[[2]int]bool)
	var sims []float64
	for i := range d.Transactions {
		tx := &d.Transactions[i]
		key := [2]int{tx.Buyer, tx.Seller}
		if seen[key] {
			continue
		}
		seen[key] = true
		sims = append(sims, interest.Similarity(d.Users[tx.Buyer].InterestSet(), d.Users[tx.Seller].InterestSet()))
	}
	if len(sims) == 0 {
		return 0, 0, 0
	}
	mean = stats.Mean(sims)
	min, max, _ = stats.MinMax(sims)
	return mean, min, max
}
