package trace

import "fmt"

// Observation is one of the paper's Section 3 findings (O1–O6) evaluated
// against a dataset: the measured quantity, the acceptance criterion, and
// whether the trace exhibits the behavior.
type Observation struct {
	ID        string
	Statement string
	Measured  float64
	Criterion string
	Holds     bool
}

// String renders a one-line verdict.
func (o Observation) String() string {
	verdict := "HOLDS"
	if !o.Holds {
		verdict = "FAILS"
	}
	return fmt.Sprintf("%s %s: %s (measured %.3f, criterion %s)", o.ID, verdict, o.Statement, o.Measured, o.Criterion)
}

// Observations evaluates the paper's six Section 3 observations against the
// dataset. A calibrated trace holds all six; the SocialTrust thresholds are
// only meaningful when they do.
func (d *Dataset) Observations() []Observation {
	biz := d.BusinessNetworkVsReputation()
	per := d.PersonalNetworkVsReputation()
	dist := d.RatingsByDistance()
	ranks := d.CategoryRankCDF(7, 5)

	o1 := Observation{
		ID:        "O1",
		Statement: "users with higher reputations attract more buyers",
		Measured:  biz.C,
		Criterion: "C(reputation, business network) > 0.6",
		Holds:     biz.C > 0.6,
	}
	o2 := Observation{
		ID:        "O2",
		Statement: "a low-reputed user may still have a large personal network",
		Measured:  per.C,
		Criterion: "C(reputation, personal network) < 0.25",
		Holds:     per.C < 0.25,
	}
	decayValue := len(dist) == 4 && dist[0].AvgRating > dist[1].AvgRating &&
		dist[1].AvgRating > dist[2].AvgRating && dist[2].AvgRating > dist[3].AvgRating
	o3 := Observation{
		ID:        "O3",
		Statement: "most high ratings occur between socially close (≤3 hop) users",
		Measured:  dist[0].AvgRating - dist[3].AvgRating,
		Criterion: "average rating strictly decreases over distances 1..4",
		Holds:     decayValue,
	}
	decayCount := len(dist) == 4 && dist[0].AvgCount > dist[2].AvgCount &&
		dist[0].AvgCount > dist[3].AvgCount
	o4 := Observation{
		ID:        "O4",
		Statement: "socially closer users rate each other more often",
		Measured:  dist[0].AvgCount / maxf(dist[3].AvgCount, 1e-9),
		Criterion: "ratings per pair at distance 1 exceed distance 3-4",
		Holds:     decayCount,
	}
	top3 := 0.0
	if len(ranks) >= 3 {
		top3 = ranks[2].CDF
	}
	o5 := Observation{
		ID:        "O5",
		Statement: "a user mostly buys within a few (≤3) interest categories",
		Measured:  top3,
		Criterion: "top-3 category share in [0.8, 0.98] (paper: 0.88)",
		Holds:     top3 >= 0.8 && top3 <= 0.98,
	}
	above := d.ShareAboveSimilarity(0.3)
	o6 := Observation{
		ID:        "O6",
		Statement: "buyers seldom buy from sellers with low interest similarity",
		Measured:  above,
		Criterion: "share of transactions above 0.3 similarity ≥ 0.5 (paper: 0.6)",
		Holds:     above >= 0.5,
	}
	return []Observation{o1, o2, o3, o4, o5, o6}
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
