// Package stats implements the descriptive statistics the paper's trace
// analysis and evaluation rely on: the squared correlation coefficient used
// in Section 3 (C = sxy²/(sxx·syy)), empirical CDFs, percentiles, confidence
// intervals, and histogram utilities.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by aggregations that require at least one sample.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs (denominator n), or 0 when
// fewer than two samples are present.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Correlation computes the paper's correlation coefficient
// C = sxy² / (sxx·syy) where sxy = Σ(xi−x̄)(yi−ȳ), sxx = Σ(xi−x̄)², and
// syy = Σ(yi−ȳ)². This is the square of Pearson's r, so it lies in [0,1];
// the paper reports C=0.996 for reputation vs business-network size and
// C=0.092 for reputation vs personal-network size.
func Correlation(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, errors.New("stats: correlation inputs have different lengths")
	}
	if len(xs) < 2 {
		return 0, ErrEmpty
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, errors.New("stats: correlation undefined for constant input")
	}
	return (sxy * sxy) / (sxx * syy), nil
}

// PearsonR returns the signed Pearson correlation coefficient in [-1,1].
func PearsonR(xs, ys []float64) (float64, error) {
	c, err := Correlation(xs, ys)
	if err != nil {
		return 0, err
	}
	// Recover the sign from the covariance.
	mx, my := Mean(xs), Mean(ys)
	var sxy float64
	for i := range xs {
		sxy += (xs[i] - mx) * (ys[i] - my)
	}
	r := math.Sqrt(c)
	if sxy < 0 {
		r = -r
	}
	return r, nil
}

// Percentile returns the p-th percentile (p in [0,100]) of xs using linear
// interpolation between closest ranks. It returns ErrEmpty for no samples.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, errors.New("stats: percentile out of [0,100]")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) (float64, error) { return Percentile(xs, 50) }

// Summary captures the aggregate of repeated experiment runs: the mean and a
// 95% confidence interval half-width, as reported for every experiment in
// Section 5.1 ("The 95% of the confidential interval is reported").
type Summary struct {
	Mean   float64
	CI95   float64 // half-width of the 95% confidence interval
	StdDev float64
	N      int
}

// Summarize computes a Summary over xs using the normal approximation
// (±1.96·s/√n), which is what small fixed-repetition simulation studies use.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	m := Mean(xs)
	// Sample standard deviation (denominator n−1) for the CI.
	var sd float64
	if len(xs) > 1 {
		sum := 0.0
		for _, x := range xs {
			d := x - m
			sum += d * d
		}
		sd = math.Sqrt(sum / float64(len(xs)-1))
	}
	ci := 1.96 * sd / math.Sqrt(float64(len(xs)))
	return Summary{Mean: m, CI95: ci, StdDev: sd, N: len(xs)}, nil
}

// CDFPoint is one point of an empirical cumulative distribution function.
type CDFPoint struct {
	X float64 // value
	P float64 // P(X <= x), in [0,1]
}

// CDF computes the empirical CDF of xs evaluated at each distinct sample
// value, sorted ascending. The final point always has P = 1.
func CDF(xs []float64) []CDFPoint {
	if len(xs) == 0 {
		return nil
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	out := make([]CDFPoint, 0, len(sorted))
	n := float64(len(sorted))
	for i := 0; i < len(sorted); i++ {
		// Collapse runs of equal values into a single point.
		if i+1 < len(sorted) && sorted[i+1] == sorted[i] {
			continue
		}
		out = append(out, CDFPoint{X: sorted[i], P: float64(i+1) / n})
	}
	return out
}

// CDFAt evaluates an empirical CDF (as produced by CDF) at x, returning
// P(X <= x). Values below the smallest sample give 0.
func CDFAt(cdf []CDFPoint, x float64) float64 {
	p := 0.0
	for _, pt := range cdf {
		if pt.X <= x {
			p = pt.P
		} else {
			break
		}
	}
	return p
}

// HistogramBin is one bin of a fixed-width histogram.
type HistogramBin struct {
	Lo, Hi float64
	Count  int
}

// Histogram bins xs into n equal-width bins spanning [min,max]. Values equal
// to max land in the final bin. It returns nil for empty input or n <= 0.
func Histogram(xs []float64, n int) []HistogramBin {
	if len(xs) == 0 || n <= 0 {
		return nil
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	bins := make([]HistogramBin, n)
	width := (hi - lo) / float64(n)
	for i := range bins {
		bins[i].Lo = lo + float64(i)*width
		bins[i].Hi = lo + float64(i+1)*width
	}
	bins[n-1].Hi = hi
	for _, x := range xs {
		idx := n - 1
		if width > 0 {
			idx = int((x - lo) / width)
			if idx >= n {
				idx = n - 1
			}
		}
		bins[idx].Count++
	}
	return bins
}

// Normalize scales xs so they sum to 1, matching the paper's reputation
// normalization Ri/ΣRk. If the sum is zero it returns a uniform distribution;
// if the sum is negative it returns an error, since reputations feeding the
// normalization are clamped non-negative upstream.
func Normalize(xs []float64) ([]float64, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	out := make([]float64, len(xs))
	if sum == 0 {
		for i := range out {
			out[i] = 1 / float64(len(xs))
		}
		return out, nil
	}
	if sum < 0 {
		return nil, errors.New("stats: normalize over negative total")
	}
	for i, x := range xs {
		out[i] = x / sum
	}
	return out, nil
}

// MinMax returns the smallest and largest values of xs.
func MinMax(xs []float64) (lo, hi float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi, nil
}
