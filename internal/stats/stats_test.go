package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.in); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Mean(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEqual(got, 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !almostEqual(got, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if Variance([]float64{3}) != 0 {
		t.Error("Variance of single sample should be 0")
	}
}

func TestCorrelationPerfectLinear(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	c, err := Correlation(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(c, 1, 1e-12) {
		t.Errorf("Correlation of perfect line = %v, want 1", c)
	}
	// Perfect negative correlation also yields C = 1 (C is r squared).
	neg := []float64{10, 8, 6, 4, 2}
	c, err = Correlation(xs, neg)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(c, 1, 1e-12) {
		t.Errorf("Correlation of negative line = %v, want 1", c)
	}
}

func TestCorrelationIndependent(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{1, -1, 1, -1} // mean-zero alternating, near-zero covariance with xs
	c, err := Correlation(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if c > 0.25 {
		t.Errorf("Correlation of unrelated data = %v, want small", c)
	}
}

func TestCorrelationErrors(t *testing.T) {
	if _, err := Correlation([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := Correlation([]float64{1}, []float64{2}); err == nil {
		t.Error("single sample should error")
	}
	if _, err := Correlation([]float64{1, 1}, []float64{2, 3}); err == nil {
		t.Error("constant xs should error")
	}
}

func TestPearsonRSign(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	up := []float64{1, 2, 3, 4}
	down := []float64{4, 3, 2, 1}
	r, err := PearsonR(xs, up)
	if err != nil || !almostEqual(r, 1, 1e-12) {
		t.Errorf("PearsonR up = %v (%v), want 1", r, err)
	}
	r, err = PearsonR(xs, down)
	if err != nil || !almostEqual(r, -1, 1e-12) {
		t.Errorf("PearsonR down = %v (%v), want -1", r, err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	cases := []struct {
		p, want float64
	}{
		{0, 15}, {100, 50}, {50, 35}, {25, 20},
	}
	for _, c := range cases {
		got, err := Percentile(xs, c.p)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if _, err := Percentile(nil, 50); err != ErrEmpty {
		t.Error("empty percentile should return ErrEmpty")
	}
	if _, err := Percentile(xs, 101); err == nil {
		t.Error("out-of-range p should error")
	}
	got, err := Percentile([]float64{7}, 99)
	if err != nil || got != 7 {
		t.Errorf("single-sample percentile = %v (%v), want 7", got, err)
	}
}

func TestPercentileInterpolates(t *testing.T) {
	got, err := Percentile([]float64{0, 10}, 25)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 2.5, 1e-12) {
		t.Errorf("Percentile interpolation = %v, want 2.5", got)
	}
}

func TestMedian(t *testing.T) {
	got, err := Median([]float64{9, 1, 5})
	if err != nil || got != 5 {
		t.Errorf("Median = %v (%v), want 5", got, err)
	}
}

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{10, 10, 10, 10, 10})
	if err != nil {
		t.Fatal(err)
	}
	if s.Mean != 10 || s.CI95 != 0 || s.N != 5 {
		t.Errorf("constant Summarize = %+v", s)
	}
	s, err = Summarize([]float64{8, 12})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(s.Mean, 10, 1e-12) {
		t.Errorf("Mean = %v, want 10", s.Mean)
	}
	// sample sd = sqrt(((−2)²+2²)/1) = 2.828..., CI = 1.96·sd/√2
	wantCI := 1.96 * math.Sqrt(8) / math.Sqrt2
	if !almostEqual(s.CI95, wantCI, 1e-9) {
		t.Errorf("CI95 = %v, want %v", s.CI95, wantCI)
	}
	if _, err := Summarize(nil); err != ErrEmpty {
		t.Error("empty Summarize should return ErrEmpty")
	}
}

func TestCDF(t *testing.T) {
	cdf := CDF([]float64{3, 1, 2, 2})
	want := []CDFPoint{{1, 0.25}, {2, 0.75}, {3, 1}}
	if len(cdf) != len(want) {
		t.Fatalf("CDF has %d points, want %d: %v", len(cdf), len(want), cdf)
	}
	for i := range want {
		if !almostEqual(cdf[i].X, want[i].X, 1e-12) || !almostEqual(cdf[i].P, want[i].P, 1e-12) {
			t.Errorf("CDF[%d] = %+v, want %+v", i, cdf[i], want[i])
		}
	}
	if CDF(nil) != nil {
		t.Error("empty CDF should be nil")
	}
}

func TestCDFAt(t *testing.T) {
	cdf := CDF([]float64{1, 2, 3, 4})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {100, 1},
	}
	for _, c := range cases {
		if got := CDFAt(cdf, c.x); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("CDFAt(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestHistogram(t *testing.T) {
	bins := Histogram([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 2)
	if len(bins) != 2 {
		t.Fatalf("got %d bins", len(bins))
	}
	if bins[0].Count != 5 || bins[1].Count != 5 {
		t.Errorf("bin counts = %d,%d, want 5,5", bins[0].Count, bins[1].Count)
	}
	// Max value lands in the final bin, not out of range.
	bins = Histogram([]float64{0, 10}, 5)
	if bins[4].Count != 1 {
		t.Errorf("max value not in final bin: %+v", bins)
	}
	if Histogram(nil, 3) != nil || Histogram([]float64{1}, 0) != nil {
		t.Error("degenerate histogram inputs should be nil")
	}
	// Constant input: all mass in one bin, no division by zero.
	bins = Histogram([]float64{5, 5, 5}, 3)
	total := 0
	for _, b := range bins {
		total += b.Count
	}
	if total != 3 {
		t.Errorf("constant histogram lost samples: %+v", bins)
	}
}

func TestNormalize(t *testing.T) {
	out, err := Normalize([]float64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(out[0], 0.25, 1e-12) || !almostEqual(out[1], 0.75, 1e-12) {
		t.Errorf("Normalize = %v", out)
	}
	out, err = Normalize([]float64{0, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range out {
		if !almostEqual(v, 0.25, 1e-12) {
			t.Errorf("zero-sum Normalize = %v, want uniform", out)
		}
	}
	if _, err := Normalize(nil); err != ErrEmpty {
		t.Error("empty Normalize should return ErrEmpty")
	}
	if _, err := Normalize([]float64{-2, 1}); err == nil {
		t.Error("negative-sum Normalize should error")
	}
}

func TestMinMax(t *testing.T) {
	lo, hi, err := MinMax([]float64{3, -1, 7, 2})
	if err != nil || lo != -1 || hi != 7 {
		t.Errorf("MinMax = %v,%v (%v)", lo, hi, err)
	}
	if _, _, err := MinMax(nil); err != ErrEmpty {
		t.Error("empty MinMax should return ErrEmpty")
	}
}

// --- property-based tests ---

func TestCorrelationBoundedProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 4 {
			return true
		}
		n := len(raw) / 2
		xs, ys := raw[:n], raw[n:2*n]
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				return true
			}
		}
		c, err := Correlation(xs, ys)
		if err != nil {
			return true
		}
		return c >= -1e-9 && c <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCDFMonotoneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		cdf := CDF(xs)
		for i := 1; i < len(cdf); i++ {
			if cdf[i].X <= cdf[i-1].X || cdf[i].P < cdf[i-1].P {
				return false
			}
		}
		return len(cdf) == 0 || math.Abs(cdf[len(cdf)-1].P-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNormalizeSumsToOneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 || v > 1e50 {
				continue
			}
			xs = append(xs, v)
		}
		if len(xs) == 0 {
			return true
		}
		out, err := Normalize(xs)
		if err != nil {
			return false
		}
		sum := 0.0
		for _, v := range out {
			if v < 0 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPercentileWithinRangeProperty(t *testing.T) {
	f := func(raw []float64, pRaw uint8) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		p := float64(pRaw) / 255 * 100
		got, err := Percentile(xs, p)
		if err != nil {
			return false
		}
		lo, hi, _ := MinMax(xs)
		return got >= lo-1e-9 && got <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
