package experiments

import (
	"fmt"
	"io"

	"socialtrust/internal/sim"
)

func init() {
	register(Spec{
		ID:          "table1",
		Title:       "Percentage of requests sent to colluders",
		Description: "Every collusion model × B ∈ {0.2, 0.6} × {eBay, EigenTrust, EigenTrust (Pre), eBay+SocialTrust, EigenTrust+SocialTrust, EigenTrust+SocialTrust (Pre)}.",
		Run:         runTable1,
	})
}

// table1Systems builds the six system configurations of one table cell
// group.
func table1Systems(model sim.CollusionModel, b float64) []sim.Config {
	mk := func(engine sim.EngineKind, st bool, pre int) sim.Config {
		cfg := sim.DefaultConfig(model, engine, b, st)
		cfg.CompromisedPretrusted = pre
		return cfg
	}
	return []sim.Config{
		mk(sim.EngineEBay, false, 0),
		mk(sim.EngineEigenTrust, false, 0),
		mk(sim.EngineEigenTrust, false, 7),
		mk(sim.EngineEBay, true, 0),
		mk(sim.EngineEigenTrust, true, 0),
		mk(sim.EngineEigenTrust, true, 7),
	}
}

func runTable1(o Options, w io.Writer) error {
	fmt.Fprintln(w, "== table1: percentage of requests sent to colluders ==")
	for _, model := range []sim.CollusionModel{sim.PCM, sim.MCM, sim.MMM} {
		fmt.Fprintf(w, "-- %v --\n", model)
		for _, b := range []float64{0.2, 0.6} {
			fmt.Fprintf(w, "B=%.1f:\n", b)
			for _, cfg := range table1Systems(model, b) {
				agg, err := aggregate(cfg, o)
				if err != nil {
					return err
				}
				fmt.Fprintf(w, "  %-32s %5.1f%% ± %.1f\n",
					systemName(cfg), agg.RequestShare.Mean*100, agg.RequestShare.CI95*100)
			}
		}
	}
	return nil
}
