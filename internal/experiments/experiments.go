// Package experiments is the reproduction harness: one registered
// experiment per table and figure of the paper's evaluation (Figures 1–4 of
// the trace study, Figures 7–20 and Table 1 of the simulation study). Each
// experiment regenerates the corresponding rows/series and writes them as
// text. Repetitions run concurrently on seeded streams and report 95%
// confidence intervals, as in Section 5.1.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"socialtrust/internal/metrics"
	"socialtrust/internal/sim"
	"socialtrust/internal/stats"
)

// Options tunes how experiments execute.
type Options struct {
	// Runs is the number of seeded repetitions averaged per configuration
	// (the paper uses 5).
	Runs int
	// Seed is the base seed; repetition r uses Seed+r.
	Seed uint64
	// Quick shrinks the horizon (15 query cycles × 12 simulation cycles)
	// for smoke runs; the full horizon is the paper's 30 × 50.
	Quick bool
	// NodeSeries additionally emits the per-node reputation vector of each
	// panel as CSV lines ("node,type,reputation") — the raw series behind
	// the paper's per-node scatter figures.
	NodeSeries bool
	// Managers, when positive, routes every run's ratings through a
	// resource-manager overlay of that many shards (sim.Config.Managers),
	// exercising the paper's Section 4.3 architecture and populating the
	// manager_* metrics.
	Managers int
}

// DefaultOptions mirrors the paper's setup.
func DefaultOptions() Options {
	return Options{Runs: 5, Seed: 1}
}

func (o Options) withDefaults() Options {
	if o.Runs == 0 {
		o.Runs = 5
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Spec is one runnable experiment.
type Spec struct {
	ID          string
	Title       string
	Description string
	Run         func(o Options, w io.Writer) error
}

var registry = map[string]Spec{}

func register(s Spec) {
	if _, dup := registry[s.ID]; dup {
		panic("experiments: duplicate id " + s.ID)
	}
	registry[s.ID] = s
}

// Get returns the experiment with the given id.
func Get(id string) (Spec, bool) {
	s, ok := registry[id]
	return s, ok
}

// All returns every registered experiment sorted by id.
func All() []Spec {
	out := make([]Spec, 0, len(registry))
	for _, s := range registry {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Run executes the experiment with the given id.
func Run(id string, o Options, w io.Writer) error {
	s, ok := Get(id)
	if !ok {
		return fmt.Errorf("experiments: unknown experiment %q (use List)", id)
	}
	return s.Run(o.withDefaults(), w)
}

// applyHorizon adjusts a sim config to the options' horizon and harness
// settings.
func applyHorizon(cfg sim.Config, o Options) sim.Config {
	if o.Quick {
		cfg.QueryCycles = 15
		cfg.SimulationCycles = 12
	}
	if o.Managers > 0 {
		cfg.Managers = o.Managers
	}
	return cfg
}

// Aggregate is the averaged outcome of repeated runs of one configuration.
type Aggregate struct {
	Config sim.Config
	// MeanReputations averages the final reputation vector across runs.
	MeanReputations []float64
	// RequestShare summarizes the colluder request share across runs.
	RequestShare stats.Summary
	// ConvergenceCycles pools per-colluder convergence cycles from all
	// runs (entries of -1, "never converged", are kept).
	ConvergenceCycles []int
}

// aggregate runs cfg Runs times concurrently (seeds Seed, Seed+1, ...) and
// averages.
func aggregate(cfg sim.Config, o Options) (*Aggregate, error) {
	o = o.withDefaults()
	cfg = applyHorizon(cfg, o)
	results := make([]*sim.Result, o.Runs)
	errs := make([]error, o.Runs)
	var wg sync.WaitGroup
	for r := 0; r < o.Runs; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			run := cfg
			run.Seed = o.Seed + uint64(r)
			results[r], errs[r] = sim.Run(run)
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	agg := &Aggregate{Config: cfg, MeanReputations: make([]float64, cfg.NumNodes)}
	shares := make([]float64, 0, o.Runs)
	for _, res := range results {
		for i, v := range res.FinalReputations {
			agg.MeanReputations[i] += v / float64(o.Runs)
		}
		shares = append(shares, res.ColluderRequestShare())
		agg.ConvergenceCycles = append(agg.ConvergenceCycles, res.ConvergenceCycles...)
	}
	agg.RequestShare, _ = stats.Summarize(shares)
	return agg, nil
}

// summarizeGroups summarizes an aggregate's mean reputation vector by node
// type.
func summarizeGroups(agg *Aggregate) metrics.GroupSummary {
	return metrics.SummarizeGroups(agg.Config, agg.MeanReputations)
}

// systemName labels a configuration the way the paper's captions do.
func systemName(cfg sim.Config) string {
	name := cfg.Engine.String()
	if cfg.SocialTrust {
		name += "+SocialTrust"
	}
	if cfg.CompromisedPretrusted > 0 {
		name += " (Pre)"
	}
	return name
}

// printDistribution writes one figure panel: the per-group reputation
// summary that captures the shape of the paper's per-node scatter plots,
// plus the colluder/honest separation AUC (1.0 = colluders cleanly rank
// below honest peers) and the Gini concentration of the distribution.
func printDistribution(w io.Writer, label string, agg *Aggregate) {
	g := summarizeGroups(agg)
	auc := metrics.SeparationAUC(agg.Config, agg.MeanReputations)
	fmt.Fprintf(w, "%-28s pretrusted %.5f±%.5f | colluders %.5f±%.5f (max %.5f) | normal %.5f±%.5f (max %.5f) | coll/norm %.2fx | AUC %.2f | gini %.2f | share→colluders %.1f%%±%.1f\n",
		label,
		g.Pretrusted.Mean, g.Pretrusted.CI95,
		g.Colluder.Mean, g.Colluder.CI95, g.MaxColluder,
		g.Normal.Mean, g.Normal.CI95, g.MaxNormal,
		ratio(g.Colluder.Mean, g.Normal.Mean),
		auc, metrics.Gini(agg.MeanReputations),
		agg.RequestShare.Mean*100, agg.RequestShare.CI95*100)
}

func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
