package experiments

import (
	"fmt"
	"io"

	"socialtrust/internal/sim"
	"socialtrust/internal/socialgraph"
	"socialtrust/internal/stats"
	"socialtrust/internal/sybil"
	"socialtrust/internal/xrand"
)

// Extension experiments: attack variants the paper names but does not
// evaluate ("We consider positive ratings among colluders... Similar
// results can be obtained for the collusion of negative ratings"; future
// work: "other collusion patterns").

func init() {
	register(Spec{
		ID:          "ext-trustguard",
		Title:       "TrustGuard baseline comparison — extension",
		Description: "The paper's closest prior-art defense (reference [12], credibility-weighted feedback + temporal blend) under PCM at B=0.6 and B=0.2, alone and wrapped with SocialTrust.",
		Run:         runTrustGuard,
	})
	register(Spec{
		ID:          "ext-sybil",
		Title:       "Sybil-region pruning before signal computation — extension",
		Description: "The related-work complement: a SybilGuard-style random-route detector flags fabricated identity clusters attached to the social graph and prunes them before SocialTrust computes closeness.",
		Run:         runSybil,
	})
	register(Spec{
		ID:          "ext-oscillation",
		Title:       "Oscillation (traitor) attack — extension",
		Description: "Colluders serve at 95% QoS until mid-run, then defect to B=0.2 while still colluding (PCM): the attack TrustGuard's fluctuation penalty targets, compared across engines with and without SocialTrust.",
		Run:         runOscillation,
	})
	register(Spec{
		ID:          "ext-whitewash",
		Title:       "Whitewashing (identity churn) attack — extension",
		Description: "Oscillating colluders abandon punished identities and re-enter fresh (engine state forgotten, social edges rebuilt). Measures how much service damage the repeating con extracts, with and without SocialTrust.",
		Run:         runWhitewash,
	})
	register(Spec{
		ID:          "ext-slander",
		Title:       "Negative-rating collusion (slander campaign) — extension",
		Description: "Colluders flood 10 high-similarity normal victims with negative ratings at the collusion frequency (the B4 pattern at network scale); with and without SocialTrust, on the eBay baseline (canonical EigenTrust clamps negative local trust and is structurally immune).",
		Run:         runSlander,
	})
}

func runSybil(o Options, w io.Writer) error {
	o = o.withDefaults()
	fmt.Fprintln(w, "== ext-sybil: random-route detection of fabricated identity clusters ==")
	// An honest small-world region of 200 peers with a 60-identity Sybil
	// cluster attached through a handful of attack edges, swept over the
	// attack-edge count (the schemes' key parameter).
	for _, attackEdges := range []int{2, 8, 32} {
		var caught, falsePos []float64
		for r := 0; r < o.Runs; r++ {
			g, honest, sybils := sybilScenario(200, 60, attackEdges, o.Seed+uint64(r))
			det := sybil.New(g, sybil.Config{Seed: o.Seed + uint64(r)})
			seeds := honest[:4]
			flagged := map[socialgraph.NodeID]bool{}
			for _, s := range det.Suspects(seeds) {
				flagged[s] = true
			}
			c, fp := 0, 0
			for _, s := range sybils {
				if flagged[s] {
					c++
				}
			}
			for _, h := range honest {
				if flagged[h] {
					fp++
				}
			}
			caught = append(caught, float64(c)/float64(len(sybils)))
			falsePos = append(falsePos, float64(fp)/float64(len(honest)))
		}
		cs, _ := stats.Summarize(caught)
		fs, _ := stats.Summarize(falsePos)
		fmt.Fprintf(w, "attack edges %2d: sybils caught %.0f%%±%.0f, honest falsely flagged %.1f%%±%.1f\n",
			attackEdges, cs.Mean*100, cs.CI95*100, fs.Mean*100, fs.CI95*100)
	}
	fmt.Fprintln(w, "(detection degrades as the attack-edge cut widens — the schemes' documented")
	fmt.Fprintln(w, "limitation; SocialTrust's rating-behavior patterns cover the well-connected case)")
	return nil
}

// sybilScenario builds the detection benchmark graph.
func sybilScenario(nHonest, nSybil, attackEdges int, seed uint64) (*socialgraph.Graph, []socialgraph.NodeID, []socialgraph.NodeID) {
	g := socialgraph.New(nHonest + nSybil)
	rng := xrand.New(seed)
	rel := socialgraph.Relationship{Kind: socialgraph.Friendship}
	for i := 0; i < nHonest; i++ {
		g.AddRelationship(socialgraph.NodeID(i), socialgraph.NodeID((i+1)%nHonest), rel)
		for k := 0; k < 3; k++ {
			j := rng.Intn(nHonest)
			if j != i && !g.Adjacent(socialgraph.NodeID(i), socialgraph.NodeID(j)) {
				g.AddRelationship(socialgraph.NodeID(i), socialgraph.NodeID(j), rel)
			}
		}
	}
	for s := 0; s < nSybil; s++ {
		id := nHonest + s
		for k := 0; k < 3; k++ {
			j := nHonest + rng.Intn(nSybil)
			if j != id && !g.Adjacent(socialgraph.NodeID(id), socialgraph.NodeID(j)) {
				g.AddRelationship(socialgraph.NodeID(id), socialgraph.NodeID(j), rel)
			}
		}
	}
	for a := 0; a < attackEdges; a++ {
		h, s := rng.Intn(nHonest), nHonest+rng.Intn(nSybil)
		if !g.Adjacent(socialgraph.NodeID(h), socialgraph.NodeID(s)) {
			g.AddRelationship(socialgraph.NodeID(h), socialgraph.NodeID(s), rel)
		}
	}
	honest := make([]socialgraph.NodeID, nHonest)
	for i := range honest {
		honest[i] = socialgraph.NodeID(i)
	}
	sybils := make([]socialgraph.NodeID, nSybil)
	for i := range sybils {
		sybils[i] = socialgraph.NodeID(nHonest + i)
	}
	return g, honest, sybils
}

func runTrustGuard(o Options, w io.Writer) error {
	fmt.Fprintln(w, "== ext-trustguard: TrustGuard baseline vs SocialTrust-wrapped engines ==")
	for _, b := range []float64{0.6, 0.2} {
		fmt.Fprintf(w, "-- PCM, B=%.1f --\n", b)
		cfgs := []sim.Config{
			sim.DefaultConfig(sim.PCM, sim.EngineTrustGuard, b, false),
			sim.DefaultConfig(sim.PCM, sim.EngineTrustGuard, b, true),
			sim.DefaultConfig(sim.PCM, sim.EngineEigenTrust, b, true),
		}
		for _, cfg := range cfgs {
			agg, err := aggregate(cfg, o)
			if err != nil {
				return err
			}
			printDistribution(w, systemName(cfg), agg)
		}
	}
	return nil
}

func runWhitewash(o Options, w io.Writer) error {
	o = o.withDefaults()
	fmt.Fprintln(w, "== ext-whitewash: punished colluders re-enter under fresh identities ==")
	type variant struct {
		label     string
		engine    sim.EngineKind
		st        bool
		whitewash bool
	}
	variants := []variant{
		{"eBay, no whitewashing", sim.EngineEBay, false, false},
		{"eBay, whitewashing", sim.EngineEBay, false, true},
		{"eBay+SocialTrust, whitewashing", sim.EngineEBay, true, true},
		{"EigenTrust+SocialTrust, whitewashing", sim.EngineEigenTrust, true, true},
	}
	for _, v := range variants {
		var badShares, collShares, washes []float64
		for r := 0; r < o.Runs; r++ {
			cfg := sim.DefaultConfig(sim.PCM, v.engine, 0.2, v.st)
			cfg = applyHorizon(cfg, o)
			cfg.OscillationCycle = 3 // honeymoon length per identity
			if v.whitewash {
				cfg.WhitewashThreshold = 0.002
			}
			cfg.Seed = o.Seed + uint64(r)
			res, err := sim.Run(cfg)
			if err != nil {
				return err
			}
			badShares = append(badShares, float64(res.InauthenticServed)/float64(res.TotalRequests))
			collShares = append(collShares, res.ColluderRequestShare())
			washes = append(washes, float64(res.Whitewashes))
		}
		bad, _ := stats.Summarize(badShares)
		coll, _ := stats.Summarize(collShares)
		ws, _ := stats.Summarize(washes)
		fmt.Fprintf(w, "%-38s inauthentic served %.1f%%±%.1f | requests→colluders %.1f%%±%.1f | identity resets %.0f\n",
			v.label, bad.Mean*100, bad.CI95*100, coll.Mean*100, coll.CI95*100, ws.Mean)
	}
	fmt.Fprintln(w, "(each fresh identity buys the colluder a honeymoon of traffic before punishment")
	fmt.Fprintln(w, "lands again; SocialTrust's frequency/social gates re-flag the resumed collusion")
	fmt.Fprintln(w, "within the first interval of every new identity)")
	return nil
}

func runOscillation(o Options, w io.Writer) error {
	o = o.withDefaults()
	fmt.Fprintln(w, "== ext-oscillation: colluders defect mid-run after building honest reputation ==")
	cfgs := []sim.Config{
		sim.DefaultConfig(sim.PCM, sim.EngineEigenTrust, 0.2, false),
		sim.DefaultConfig(sim.PCM, sim.EngineEBay, 0.2, false),
		sim.DefaultConfig(sim.PCM, sim.EngineTrustGuard, 0.2, false),
		sim.DefaultConfig(sim.PCM, sim.EngineEigenTrust, 0.2, true),
		sim.DefaultConfig(sim.PCM, sim.EngineTrustGuard, 0.2, true),
	}
	for i := range cfgs {
		cfgs[i] = applyHorizon(cfgs[i], o)
		cfgs[i].OscillationCycle = cfgs[i].SimulationCycles / 2
	}
	fmt.Fprintf(w, "(defection at cycle %d of %d; post-defection damage = inauthentic share of all served requests)\n",
		cfgs[0].OscillationCycle, cfgs[0].SimulationCycles)
	for _, cfg := range cfgs {
		agg, err := aggregate(cfg, o)
		if err != nil {
			return err
		}
		printDistribution(w, systemName(cfg), agg)
	}
	return nil
}

func runSlander(o Options, w io.Writer) error {
	o = o.withDefaults()
	fmt.Fprintln(w, "== ext-slander: colluders bad-mouth high-similarity normal victims ==")
	for _, protect := range []bool{false, true} {
		// Victim selection is interest-biased, so each attacked run is
		// compared against a same-seed control run without the campaign:
		// reputation damage = 1 − victimMean(attacked)/victimMean(control).
		var damages []float64
		for r := 0; r < o.Runs; r++ {
			attacked := sim.DefaultConfig(sim.PCM, sim.EngineEBay, 0.6, protect)
			attacked.SlanderVictims = 10
			// Fixed short horizon: the campaign's direct reputation damage
			// is established within ~15 cycles; longer horizons let the
			// winner-take-all selection chaos of borderline-elite victims
			// dominate the attacked-vs-control comparison.
			attacked.QueryCycles = 15
			attacked.SimulationCycles = 15
			attacked.Seed = o.Seed + uint64(r)
			net, err := sim.NewNetwork(attacked)
			if err != nil {
				return err
			}
			victims := net.SlanderVictimIDs()
			resAttacked := net.Run()

			control := attacked
			control.SlanderVictims = 0
			resControl, err := sim.Run(control)
			if err != nil {
				return err
			}
			// Per-victim reputation averaged over the last five cycles
			// (single-cycle snapshots are noisy), damage as the median
			// across victims (robust to individual victims flipping in or
			// out of the selection elite between the paired runs).
			tail := func(res *sim.Result, id int) float64 {
				sum, n := 0.0, 0
				for c := len(res.History) - 5; c < len(res.History); c++ {
					if c >= 0 {
						sum += res.History[c][id]
						n++
					}
				}
				return sum / float64(n)
			}
			var perVictim []float64
			for _, id := range victims {
				if ctrl := tail(resControl, id); ctrl > 0 {
					perVictim = append(perVictim, 1-tail(resAttacked, id)/ctrl)
				}
			}
			if med, err := stats.Median(perVictim); err == nil {
				damages = append(damages, med)
			}
		}
		d, _ := stats.Summarize(damages)
		name := "eBay"
		if protect {
			name = "eBay+SocialTrust"
		}
		fmt.Fprintf(w, "%-24s victim reputation damage %.1f%% ± %.1f\n", name, d.Mean*100, d.CI95*100)
	}
	fmt.Fprintln(w, "(without the filter the median victim is driven to zero reputation; B4 flags")
	fmt.Fprintln(w, "every slander pair and shrinks its weight to ~0.1, leaving only the indirect")
	fmt.Fprintln(w, "damage of the winner-take-all selection amplifying small reputation dips)")
	return nil
}
