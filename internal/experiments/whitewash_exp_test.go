package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestExtWhitewashQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment skipped in -short mode")
	}
	var buf bytes.Buffer
	if err := Run("ext-whitewash", Options{Runs: 2, Seed: 4, Quick: true}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "identity resets") {
		t.Fatalf("missing reset counts:\n%s", out)
	}
	// The whitewashing variants must actually reset identities.
	lines := strings.Split(out, "\n")
	sawResets := false
	for _, l := range lines {
		if strings.Contains(l, "whitewashing") && !strings.Contains(l, "no whitewashing") &&
			!strings.HasSuffix(strings.TrimSpace(l), "identity resets 0") {
			sawResets = true
		}
	}
	if !sawResets {
		t.Fatalf("no variant recorded identity resets:\n%s", out)
	}
}
