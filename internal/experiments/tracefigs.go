package experiments

import (
	"fmt"
	"io"

	"socialtrust/internal/trace"
)

func init() {
	register(Spec{
		ID:          "fig1",
		Title:       "Effect of reputation on transactions (Overstock trace)",
		Description: "Fig 1(a): business-network size vs reputation (paper C=0.996); Fig 1(b): transactions vs reputation.",
		Run: traceRun(func(ds *trace.Dataset, w io.Writer) {
			biz := ds.BusinessNetworkVsReputation()
			fmt.Fprintf(w, "fig1a: C(reputation, business network size) = %.3f (paper: 0.996), %d users\n",
				biz.C, len(biz.Reputation))
			tx := ds.TransactionsVsReputation()
			fmt.Fprintf(w, "fig1b: C(reputation, transactions) = %.3f (proportional in the paper)\n", tx.C)
		}),
	})
	register(Spec{
		ID:          "fig2",
		Title:       "Personal network size vs reputation (Overstock trace)",
		Description: "Weak correlation (paper C=0.092): a low-reputed user may still have many friends to collude with (I2).",
		Run: traceRun(func(ds *trace.Dataset, w io.Writer) {
			per := ds.PersonalNetworkVsReputation()
			fmt.Fprintf(w, "fig2: C(reputation, personal network size) = %.3f (paper: 0.092)\n", per.C)
		}),
	})
	register(Spec{
		ID:          "fig3",
		Title:       "Impact of social distance on ratings (Overstock trace)",
		Description: "Fig 3(a): average rating value by social distance 1-4; Fig 3(b): average number of ratings per pair.",
		Run: traceRun(func(ds *trace.Dataset, w io.Writer) {
			for _, b := range ds.RatingsByDistance() {
				fmt.Fprintf(w, "fig3: distance=%d avgRating=%.2f avgRatings/pair=%.2f (%d pairs)\n",
					b.Distance, b.AvgRating, b.AvgCount, b.Pairs)
			}
			fmt.Fprintln(w, "(both series decrease with distance: observations O3/O4)")
		}),
	})
	register(Spec{
		ID:          "fig4",
		Title:       "Impact of interests on purchasing patterns (Overstock trace)",
		Description: "Fig 4(a): CDF of purchase share by category rank (paper: top-3 ≈ 88%); Fig 4(b): CDF of transactions vs interest similarity (paper: 60% above 0.3).",
		Run: traceRun(func(ds *trace.Dataset, w io.Writer) {
			for _, r := range ds.CategoryRankCDF(7, 5) {
				fmt.Fprintf(w, "fig4a: rank=%d share=%.3f cdf=%.3f\n", r.Rank, r.Share, r.CDF)
			}
			for _, b := range ds.TransactionsBySimilarity(10) {
				fmt.Fprintf(w, "fig4b: similarity<=%.1f cdf=%.3f\n", b.Similarity, b.CDF)
			}
			fmt.Fprintf(w, "fig4b: share of transactions above 0.3 similarity = %.3f (paper ≈ 0.6)\n",
				ds.ShareAboveSimilarity(0.3))
			mean, min, max := ds.PairSimilarityStats()
			fmt.Fprintf(w, "calibration: transacting-pair similarity mean/min/max = %.3f/%.2f/%.2f (paper 0.423/0.13/1)\n",
				mean, min, max)
			fs := ds.RatingFrequencies()
			fmt.Fprintf(w, "calibration: mean rating frequency = %.2f/month (paper 2.2), max positive %g, max negative %g\n",
				fs.MeanPerMonth, fs.MaxPositive, fs.MaxNegative)
		}),
	})
}

// traceRun wraps a trace analyzer as an experiment Run function, sharing one
// generated dataset per invocation.
func traceRun(analyze func(*trace.Dataset, io.Writer)) func(Options, io.Writer) error {
	return func(o Options, w io.Writer) error {
		cfg := trace.Default()
		cfg.Seed = o.withDefaults().Seed
		if o.Quick {
			cfg.NumUsers = 800
			cfg.Months = 12
			cfg.TransactionsPerMonth = 800
		}
		ds, err := trace.Generate(cfg)
		if err != nil {
			return err
		}
		analyze(ds, w)
		return nil
	}
}
