package experiments

import (
	"fmt"
	"io"
	"sort"

	"socialtrust/internal/sim"
	"socialtrust/internal/stats"
)

// fourSystems returns the paper's standard panel: the bare engine and the
// SocialTrust-wrapped engine for both baselines.
func fourSystems(model sim.CollusionModel, b float64) []sim.Config {
	return []sim.Config{
		sim.DefaultConfig(model, sim.EngineEigenTrust, b, false),
		sim.DefaultConfig(model, sim.EngineEBay, b, false),
		sim.DefaultConfig(model, sim.EngineEigenTrust, b, true),
		sim.DefaultConfig(model, sim.EngineEBay, b, true),
	}
}

// runPanel aggregates and prints each configuration as one panel line.
func runPanel(o Options, w io.Writer, header string, cfgs []sim.Config) error {
	fmt.Fprintln(w, header)
	for _, cfg := range cfgs {
		agg, err := aggregate(cfg, o)
		if err != nil {
			return err
		}
		printDistribution(w, systemName(cfg), agg)
		if o.NodeSeries {
			printNodeSeries(w, systemName(cfg), agg)
		}
	}
	return nil
}

// printNodeSeries emits the per-node mean reputation vector as CSV — the
// series a plot of the paper's figure would be drawn from.
func printNodeSeries(w io.Writer, label string, agg *Aggregate) {
	fmt.Fprintf(w, "# series: %s (node,type,reputation)\n", label)
	for id, v := range agg.MeanReputations {
		fmt.Fprintf(w, "%d,%s,%.6g\n", id, agg.Config.Type(id), v)
	}
}

// registerDistributionPanel registers a fig7–fig18-style experiment.
func registerDistributionPanel(id, title, description string, cfgs func() []sim.Config) {
	register(Spec{
		ID:          id,
		Title:       title,
		Description: description,
		Run: func(o Options, w io.Writer) error {
			return runPanel(o, w, fmt.Sprintf("== %s: %s ==", id, title), cfgs())
		},
	})
}

func init() {
	register(Spec{
		ID:          "fig7",
		Title:       "EigenTrust and eBay without colluders",
		Description: "Reputation distribution and percent of services provided by malicious nodes, no rating collusion (malicious QoS drawn from [0.2,0.6]).",
		Run:         runFig7,
	})

	registerDistributionPanel("fig8",
		"Reputation distribution in PCM with B=0.6",
		"Pair-wise collusion, colluders serve authentic content with probability 0.6.",
		func() []sim.Config { return fourSystems(sim.PCM, 0.6) })
	registerDistributionPanel("fig9",
		"Reputation distribution in PCM with B=0.2",
		"Pair-wise collusion, low-QoS colluders.",
		func() []sim.Config { return fourSystems(sim.PCM, 0.2) })

	registerDistributionPanel("fig10",
		"PCM with 7 compromised pretrusted nodes, B=0.2",
		"Compromised pretrusted peers join the collusion.",
		func() []sim.Config {
			a := sim.DefaultConfig(sim.PCM, sim.EngineEigenTrust, 0.2, false)
			a.CompromisedPretrusted = 7
			b := sim.DefaultConfig(sim.PCM, sim.EngineEigenTrust, 0.2, true)
			b.CompromisedPretrusted = 7
			return []sim.Config{a, b}
		})

	registerDistributionPanel("fig11",
		"Reputation distribution in MCM with B=0.6",
		"Multiple-node collusion: boosting colluders rate 7 boosted colluders.",
		func() []sim.Config { return fourSystems(sim.MCM, 0.6) })
	registerDistributionPanel("fig12",
		"Reputation distribution in MCM with B=0.2",
		"Multiple-node collusion with low-QoS colluders.",
		func() []sim.Config { return fourSystems(sim.MCM, 0.2) })
	registerDistributionPanel("fig13",
		"Reputation distribution in MMM with B=0.6",
		"Multiple-and-mutual collusion: boosted nodes rate boosters back.",
		func() []sim.Config { return fourSystems(sim.MMM, 0.6) })
	registerDistributionPanel("fig14",
		"Reputation distribution in MMM with B=0.2",
		"Multiple-and-mutual collusion with low-QoS colluders.",
		func() []sim.Config { return fourSystems(sim.MMM, 0.2) })

	registerDistributionPanel("fig15",
		"MCM and MMM with compromised pretrusted nodes, B=0.2",
		"Compromised pretrusted peers in the multi-node collusion models.",
		func() []sim.Config {
			var out []sim.Config
			for _, model := range []sim.CollusionModel{sim.MCM, sim.MMM} {
				for _, st := range []bool{false, true} {
					cfg := sim.DefaultConfig(model, sim.EngineEigenTrust, 0.2, st)
					cfg.CompromisedPretrusted = 7
					out = append(out, cfg)
				}
			}
			return out
		})

	registerFalsified("fig16", sim.PCM)
	registerFalsified("fig17", sim.MCM)
	registerFalsified("fig18", sim.MMM)

	register(Spec{
		ID:          "fig19",
		Title:       "Efficiency in combating colluders (MMM)",
		Description: "Simulation cycles until colluder reputations stay below 0.001: 1st/50th/99th percentiles for SocialTrust, EigenTrust and eBay at B=0.2 and B=0.6.",
		Run:         runFig19,
	})

	register(Spec{
		ID:          "fig20",
		Title:       "Average reputation vs colluder social distance",
		Description: "Colluder and normal reputations under EigenTrust+SocialTrust with collusion partners placed at social distance 1-3, for PCM, MCM and MMM.",
		Run:         runFig20,
	})
}

// registerFalsified registers the Section 5.8 panels: SocialTrust under
// falsified social information, compared with the accurate-information runs.
func registerFalsified(id string, model sim.CollusionModel) {
	registerDistributionPanel(id,
		fmt.Sprintf("Falsified social information in %v with B=0.6", model),
		"Colluders publish one relationship and identical fabricated interest profiles; SocialTrust uses the weighted Equations 10/11.",
		func() []sim.Config {
			var out []sim.Config
			for _, engine := range []sim.EngineKind{sim.EngineEigenTrust, sim.EngineEBay} {
				accurate := sim.DefaultConfig(model, engine, 0.6, true)
				fals := sim.DefaultConfig(model, engine, 0.6, true)
				fals.FalsifiedSocialInfo = true
				out = append(out, accurate, fals)
			}
			return out
		})
}

// runFig7 handles the no-collusion baseline: in Figure 7 malicious nodes'
// QoS is drawn from [0.2,0.6]; we approximate with the midpoint B=0.4 and no
// rating collusion.
func runFig7(o Options, w io.Writer) error {
	fmt.Fprintln(w, "== fig7: EigenTrust and eBay without colluders ==")
	for _, engine := range []sim.EngineKind{sim.EngineEigenTrust, sim.EngineEBay} {
		cfg := sim.DefaultConfig(sim.NoCollusion, engine, 0.4, false)
		agg, err := aggregate(cfg, o)
		if err != nil {
			return err
		}
		printDistribution(w, systemName(cfg), agg)
	}
	fmt.Fprintln(w, "(the 'share→colluders' column is Figure 7(c): percent of services provided by malicious nodes)")
	return nil
}

// runFig19 reports convergence percentiles.
func runFig19(o Options, w io.Writer) error {
	fmt.Fprintln(w, "== fig19: simulation cycles until colluder reputation < 0.001 (MMM) ==")
	for _, b := range []float64{0.2, 0.6} {
		fmt.Fprintf(w, "-- B=%.1f --\n", b)
		cfgs := []sim.Config{
			sim.DefaultConfig(sim.MMM, sim.EngineEigenTrust, b, true),
			sim.DefaultConfig(sim.MMM, sim.EngineEigenTrust, b, false),
			sim.DefaultConfig(sim.MMM, sim.EngineEBay, b, false),
		}
		for _, cfg := range cfgs {
			agg, err := aggregate(cfg, o)
			if err != nil {
				return err
			}
			printConvergence(w, systemName(cfg), agg)
		}
	}
	return nil
}

func printConvergence(w io.Writer, label string, agg *Aggregate) {
	converged := make([]float64, 0, len(agg.ConvergenceCycles))
	never := 0
	for _, c := range agg.ConvergenceCycles {
		if c < 0 {
			never++
			continue
		}
		converged = append(converged, float64(c))
	}
	if len(converged) == 0 {
		fmt.Fprintf(w, "%-28s no colluder converged below 0.001 (%d never)\n", label, never)
		return
	}
	sort.Float64s(converged)
	p1, _ := stats.Percentile(converged, 1)
	p50, _ := stats.Percentile(converged, 50)
	p99, _ := stats.Percentile(converged, 99)
	fmt.Fprintf(w, "%-28s cycles p1=%.0f median=%.0f p99=%.0f (never: %d of %d)\n",
		label, p1, p50, p99, never, len(agg.ConvergenceCycles))
}

// runFig20 sweeps the collusion-partner social distance.
func runFig20(o Options, w io.Writer) error {
	fmt.Fprintln(w, "== fig20: average reputation vs colluder social distance (EigenTrust+SocialTrust) ==")
	for _, model := range []sim.CollusionModel{sim.PCM, sim.MCM, sim.MMM} {
		for dist := 1; dist <= 3; dist++ {
			cfg := sim.DefaultConfig(model, sim.EngineEigenTrust, 0.6, true)
			cfg.ColluderDistance = dist
			agg, err := aggregate(cfg, o)
			if err != nil {
				return err
			}
			g := summarizeGroups(agg)
			fmt.Fprintf(w, "%v distance=%d: colluders %.5f±%.5f, normal %.5f±%.5f\n",
				model, dist, g.Colluder.Mean, g.Colluder.CI95, g.Normal.Mean, g.Normal.CI95)
		}
	}
	return nil
}
