package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func quickOpts() Options { return Options{Runs: 2, Seed: 5, Quick: true} }

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig1", "fig2", "fig3", "fig4",
		"fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14",
		"fig15", "fig16", "fig17", "fig18", "fig19", "fig20", "table1",
		"ext-slander", "ext-trustguard", "ext-sybil", "ext-oscillation", "ext-whitewash",
	}
	for _, id := range want {
		s, ok := Get(id)
		if !ok {
			t.Errorf("experiment %q not registered", id)
			continue
		}
		if s.Title == "" || s.Description == "" || s.Run == nil {
			t.Errorf("experiment %q incomplete: %+v", id, s)
		}
	}
	if got := len(All()); got != len(want) {
		ids := make([]string, 0, got)
		for _, s := range All() {
			ids = append(ids, s.ID)
		}
		t.Errorf("registry has %d experiments, want %d: %v", got, len(want), ids)
	}
}

func TestAllSorted(t *testing.T) {
	all := All()
	for i := 1; i < len(all); i++ {
		if all[i].ID < all[i-1].ID {
			t.Fatalf("All() not sorted: %q before %q", all[i-1].ID, all[i].ID)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := Run("nope", quickOpts(), &bytes.Buffer{}); err == nil {
		t.Fatal("unknown id should error")
	}
}

func TestTraceFiguresRun(t *testing.T) {
	for _, id := range []string{"fig1", "fig2", "fig3", "fig4"} {
		var buf bytes.Buffer
		if err := Run(id, quickOpts(), &buf); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if !strings.Contains(buf.String(), id) {
			t.Fatalf("%s output missing its own marker:\n%s", id, buf.String())
		}
	}
}

func TestFig8PanelRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment skipped in -short mode")
	}
	var buf bytes.Buffer
	if err := Run("fig8", quickOpts(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"EigenTrust", "eBay", "EigenTrust+SocialTrust", "eBay+SocialTrust", "share→colluders"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig8 output missing %q:\n%s", want, out)
		}
	}
	if lines := strings.Count(out, "\n"); lines < 5 {
		t.Errorf("fig8 output too short: %d lines", lines)
	}
}

func TestFig19Runs(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment skipped in -short mode")
	}
	var buf bytes.Buffer
	if err := Run("fig19", quickOpts(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "B=0.2") || !strings.Contains(out, "B=0.6") {
		t.Errorf("fig19 output missing B panels:\n%s", out)
	}
	if !strings.Contains(out, "median=") && !strings.Contains(out, "no colluder converged") {
		t.Errorf("fig19 output missing percentile lines:\n%s", out)
	}
}

func TestAggregateAveragesAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment skipped in -short mode")
	}
	cfg := fourSystems(0, 0.4)[0] // NoCollusion EigenTrust
	agg, err := aggregate(cfg, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, v := range agg.MeanReputations {
		sum += v
	}
	if sum < 0.99 || sum > 1.01 {
		t.Fatalf("mean reputations sum to %v, want ~1", sum)
	}
	if agg.RequestShare.N != 2 {
		t.Fatalf("RequestShare aggregated %d runs, want 2", agg.RequestShare.N)
	}
}

func TestSystemName(t *testing.T) {
	cfgs := table1Systems(1, 0.2) // PCM
	want := []string{
		"eBay", "EigenTrust", "EigenTrust (Pre)",
		"eBay+SocialTrust", "EigenTrust+SocialTrust", "EigenTrust+SocialTrust (Pre)",
	}
	for i, cfg := range cfgs {
		if got := systemName(cfg); got != want[i] {
			t.Errorf("systemName[%d] = %q, want %q", i, got, want[i])
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Runs != 5 || o.Seed != 1 {
		t.Fatalf("defaults = %+v", o)
	}
}

func TestNodeSeriesOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment skipped in -short mode")
	}
	var buf bytes.Buffer
	o := quickOpts()
	o.Runs = 1
	o.NodeSeries = true
	if err := Run("fig10", o, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "# series:") {
		t.Fatalf("missing series header:\n%s", out[:200])
	}
	if !strings.Contains(out, "0,pretrusted,") || !strings.Contains(out, "9,colluder,") {
		t.Errorf("per-node CSV rows missing")
	}
	// 2 systems × 200 nodes of CSV rows.
	if rows := strings.Count(out, ",colluder,"); rows != 60 {
		t.Errorf("expected 60 colluder rows, got %d", rows)
	}
}
