package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestEveryExperimentRuns executes every registered experiment once on the
// shortened horizon with a single repetition. This is the harness's
// integration test: every table and figure of the paper must regenerate
// without error and produce its own output section.
func TestEveryExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment smoke skipped in -short mode")
	}
	for _, spec := range All() {
		spec := spec
		t.Run(spec.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := spec.Run(Options{Runs: 1, Seed: 11, Quick: true}, &buf); err != nil {
				t.Fatalf("%s failed: %v", spec.ID, err)
			}
			out := buf.String()
			if !strings.Contains(out, spec.ID) {
				t.Errorf("%s output missing its marker:\n%s", spec.ID, out)
			}
			if len(strings.TrimSpace(out)) == 0 {
				t.Errorf("%s produced no output", spec.ID)
			}
		})
	}
}
