package sybil

import (
	"testing"

	"socialtrust/internal/socialgraph"
	"socialtrust/internal/xrand"
)

// attackGraph builds an honest well-mixed region of nHonest nodes plus a
// Sybil cluster of nSybil fabricated identities attached through
// attackEdges edges. Returns the graph; honest IDs are [0,nHonest), Sybil
// IDs are [nHonest, nHonest+nSybil).
func attackGraph(nHonest, nSybil, attackEdges int, seed uint64) *socialgraph.Graph {
	g := socialgraph.New(nHonest + nSybil)
	rng := xrand.New(seed)
	rel := socialgraph.Relationship{Kind: socialgraph.Friendship}
	// Honest region: ring + random chords → fast mixing.
	for i := 0; i < nHonest; i++ {
		g.AddRelationship(socialgraph.NodeID(i), socialgraph.NodeID((i+1)%nHonest), rel)
		for k := 0; k < 3; k++ {
			j := rng.Intn(nHonest)
			if j != i && !g.Adjacent(socialgraph.NodeID(i), socialgraph.NodeID(j)) {
				g.AddRelationship(socialgraph.NodeID(i), socialgraph.NodeID(j), rel)
			}
		}
	}
	// Sybil cluster: dense internal structure.
	for s := 0; s < nSybil; s++ {
		id := nHonest + s
		for k := 0; k < 3; k++ {
			j := nHonest + rng.Intn(nSybil)
			if j != id && !g.Adjacent(socialgraph.NodeID(id), socialgraph.NodeID(j)) {
				g.AddRelationship(socialgraph.NodeID(id), socialgraph.NodeID(j), rel)
			}
		}
	}
	// Few attack edges bridging the regions.
	for a := 0; a < attackEdges; a++ {
		h := rng.Intn(nHonest)
		s := nHonest + rng.Intn(nSybil)
		if !g.Adjacent(socialgraph.NodeID(h), socialgraph.NodeID(s)) {
			g.AddRelationship(socialgraph.NodeID(h), socialgraph.NodeID(s), rel)
		}
	}
	return g
}

func seeds() []socialgraph.NodeID { return []socialgraph.NodeID{0, 10, 20, 30} }

func TestNewPanicsWithoutGraph(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(nil, Config{})
}

func TestHonestNodesScoreHigh(t *testing.T) {
	g := attackGraph(100, 30, 2, 1)
	d := New(g, Config{Seed: 7})
	for _, id := range []socialgraph.NodeID{5, 42, 77, 99} {
		if score := d.Score(seeds(), id); score < 0.6 {
			t.Errorf("honest node %d score %v, want high", id, score)
		}
	}
}

func TestSybilNodesScoreLow(t *testing.T) {
	g := attackGraph(100, 30, 2, 1)
	d := New(g, Config{Seed: 7})
	for _, id := range []socialgraph.NodeID{105, 115, 125} {
		if score := d.Score(seeds(), id); score > 0.35 {
			t.Errorf("sybil node %d score %v, want low", id, score)
		}
	}
}

func TestSuspectsFindSybilRegion(t *testing.T) {
	g := attackGraph(100, 30, 2, 1)
	d := New(g, Config{Seed: 7})
	suspects := d.Suspects(seeds())
	flagged := map[socialgraph.NodeID]bool{}
	for _, s := range suspects {
		flagged[s] = true
	}
	caught := 0
	for id := 100; id < 130; id++ {
		if flagged[socialgraph.NodeID(id)] {
			caught++
		}
	}
	if caught < 24 { // ≥80% of the Sybil region
		t.Errorf("caught only %d/30 sybils", caught)
	}
	falsePositives := 0
	for id := 0; id < 100; id++ {
		if flagged[socialgraph.NodeID(id)] {
			falsePositives++
		}
	}
	if falsePositives > 10 {
		t.Errorf("%d/100 honest nodes falsely flagged", falsePositives)
	}
}

func TestManyAttackEdgesBlurDetection(t *testing.T) {
	// With a large cut the Sybil region genuinely mixes with the honest
	// region — the schemes' documented limitation. Scores must rise.
	few := New(attackGraph(100, 30, 2, 1), Config{Seed: 7})
	many := New(attackGraph(100, 30, 60, 1), Config{Seed: 7})
	sybilID := socialgraph.NodeID(110)
	if many.Score(seeds(), sybilID) <= few.Score(seeds(), sybilID) {
		t.Errorf("more attack edges should raise the sybil score: few=%v many=%v",
			few.Score(seeds(), sybilID), many.Score(seeds(), sybilID))
	}
}

func TestScoreDeterministic(t *testing.T) {
	g := attackGraph(60, 10, 2, 3)
	d := New(g, Config{Seed: 9})
	a := d.Score(seeds(), 45)
	b := d.Score(seeds(), 45)
	if a != b {
		t.Fatalf("Score not deterministic: %v vs %v", a, b)
	}
}

func TestScoreNoSeeds(t *testing.T) {
	g := attackGraph(20, 5, 1, 1)
	d := New(g, Config{Seed: 1})
	if s := d.Score(nil, 3); s != 0 {
		t.Fatalf("no-seed score = %v", s)
	}
}

func TestPruneForCloseness(t *testing.T) {
	g := attackGraph(100, 30, 2, 1)
	d := New(g, Config{Seed: 7})
	pruned := d.PruneForCloseness(seeds())
	if pruned.NumNodes() != g.NumNodes() {
		t.Fatal("pruned graph should keep the ID space")
	}
	// Sybil nodes lose their edges.
	sybilEdges := 0
	for id := 100; id < 130; id++ {
		sybilEdges += pruned.Degree(socialgraph.NodeID(id))
	}
	if sybilEdges > 12 { // a few undetected stragglers allowed
		t.Errorf("pruned graph still has %d sybil edge endpoints", sybilEdges)
	}
	// Honest structure survives, including relationship multiplicity.
	honestEdges := 0
	for id := 0; id < 100; id++ {
		honestEdges += pruned.Degree(socialgraph.NodeID(id))
	}
	if honestEdges < 500 {
		t.Errorf("honest structure lost: %d edge endpoints", honestEdges)
	}
	if !pruned.Adjacent(0, 1) {
		t.Error("ring edge 0-1 missing from pruned graph")
	}
}

func TestPrunedGraphDropsSybilRelationshipCounts(t *testing.T) {
	// A colluder inflates its relationship multiplicity (the m(i,j) of
	// Equation 2) with edges to Sybil identities; pruning strips them so
	// the falsification-resistant closeness no longer sees them.
	g := attackGraph(100, 30, 2, 1)
	rel := socialgraph.Relationship{Kind: socialgraph.Friendship}
	colluder := socialgraph.NodeID(7)
	for s := 100; s < 110; s++ {
		g.AddRelationship(colluder, socialgraph.NodeID(s), rel)
	}
	rawDegree := g.Degree(colluder)
	d := New(g, Config{Seed: 7})
	pruned := d.PruneForCloseness(seeds())
	if got := pruned.Degree(colluder); got > rawDegree-8 {
		t.Errorf("pruned colluder degree %d of raw %d: sybil edges survived", got, rawDegree)
	}
}

func TestGatewaySybilLimitation(t *testing.T) {
	// Documented limitation of walk-intersection schemes (and the reason
	// the paper pairs them with SocialTrust rather than replacing it): a
	// Sybil identity wired directly to several honest hubs mixes with the
	// honest region and evades detection. The B-pattern filter, which
	// keys on rating behavior rather than graph position, still covers
	// this case.
	g := attackGraph(100, 30, 2, 1)
	rel := socialgraph.Relationship{Kind: socialgraph.Friendship}
	gateway := socialgraph.NodeID(115)
	for _, hub := range []socialgraph.NodeID{3, 40, 80} {
		g.AddRelationship(gateway, hub, rel)
	}
	d := New(g, Config{Seed: 7})
	score := d.Score(seeds(), gateway)
	if score < 0.3 {
		t.Skipf("gateway unexpectedly detected (score %v) — stronger than documented", score)
	}
	// The point of this test is executable documentation: the score is
	// meaningfully higher than the buried cluster's.
	buried := d.Score(seeds(), 127)
	if score <= buried {
		t.Errorf("gateway score %v should exceed buried sybil score %v", score, buried)
	}
}
