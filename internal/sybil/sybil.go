// Package sybil implements a SybilGuard/SybilLimit-style detector over the
// social graph. The paper's related-work section points at these schemes as
// complements to SocialTrust: colluders can fabricate Sybil identities to
// manufacture social structure (fake common friends raise the Equation 3
// closeness of a distant pair into the "normal" band), and a Sybil defense
// prunes the fabricated region before SocialTrust reads the graph.
//
// The detector uses the schemes' core insight: Sybil regions attach to the
// honest region through disproportionately few "attack" edges, so short
// random walks started from honest seeds rarely end inside a Sybil region,
// while walks started anywhere in the honest region mix quickly. A node is
// scored by the sampled intersection rate between its walk endpoints and
// the seeds' walk endpoints; genuine nodes intersect heavily, Sybils barely.
package sybil

import (
	"fmt"

	"socialtrust/internal/socialgraph"
	"socialtrust/internal/xrand"
)

// Config parameterizes the detector.
type Config struct {
	// WalkLength is the random-route length. Short routes discriminate
	// best: long walks give Sybil-region walks too many chances to escape
	// through the attack edges, while the honest region already mixes in a
	// few steps. Default 4.
	WalkLength int
	// Walks is the number of routes sampled per node. Default 50.
	Walks int
	// Threshold is the minimum intersection score for acceptance as
	// honest. Default 0.5 — honest nodes in a mixing region score near 1,
	// Sybil regions behind a small cut score near their escape
	// probability.
	Threshold float64
	// Seed drives the deterministic walk randomness.
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.WalkLength == 0 {
		c.WalkLength = 4
	}
	if c.Walks == 0 {
		c.Walks = 50
	}
	if c.Threshold == 0 {
		c.Threshold = 0.5
	}
	return c
}

// Detector runs random-route intersection tests over a frozen social graph.
type Detector struct {
	cfg Config
	g   *socialgraph.Graph
}

// New creates a detector over g. The graph must not change while the
// detector is in use.
func New(g *socialgraph.Graph, cfg Config) *Detector {
	if g == nil {
		panic("sybil: graph is required")
	}
	return &Detector{cfg: cfg.withDefaults(), g: g}
}

// endpoints samples the detector's walk endpoints from the given node.
func (d *Detector) endpoints(from socialgraph.NodeID, rng *xrand.Stream) map[socialgraph.NodeID]bool {
	out := make(map[socialgraph.NodeID]bool, d.cfg.Walks)
	for w := 0; w < d.cfg.Walks; w++ {
		cur := from
		for step := 0; step < d.cfg.WalkLength; step++ {
			friends := d.g.Friends(cur)
			if len(friends) == 0 {
				break
			}
			cur = friends[rng.Intn(len(friends))]
		}
		out[cur] = true
	}
	return out
}

// Score returns the intersection rate between node's walk endpoints and the
// pooled endpoints of the trusted seeds, in [0,1]. Honest nodes in a
// well-mixed region score high; nodes behind a small cut score near zero.
func (d *Detector) Score(seeds []socialgraph.NodeID, node socialgraph.NodeID) float64 {
	if len(seeds) == 0 {
		return 0
	}
	root := xrand.New(d.cfg.Seed)
	seedEnds := make(map[socialgraph.NodeID]bool)
	for i, s := range seeds {
		for e := range d.endpoints(s, root.Split(uint64(i))) {
			seedEnds[e] = true
		}
	}
	nodeEnds := d.endpoints(node, root.SplitString(fmt.Sprintf("node-%d", node)))
	if len(nodeEnds) == 0 {
		return 0
	}
	hits := 0
	for e := range nodeEnds {
		if seedEnds[e] {
			hits++
		}
	}
	return float64(hits) / float64(len(nodeEnds))
}

// Suspects returns every node (other than the seeds themselves) whose score
// falls below the configured threshold, in ascending ID order.
func (d *Detector) Suspects(seeds []socialgraph.NodeID) []socialgraph.NodeID {
	isSeed := make(map[socialgraph.NodeID]bool, len(seeds))
	for _, s := range seeds {
		isSeed[s] = true
	}
	var out []socialgraph.NodeID
	for id := socialgraph.NodeID(0); int(id) < d.g.NumNodes(); id++ {
		if isSeed[id] || d.g.Degree(id) == 0 {
			continue
		}
		if d.Score(seeds, id) < d.cfg.Threshold {
			out = append(out, id)
		}
	}
	return out
}

// PruneForCloseness returns a copy of the graph with every suspect's edges
// removed, so SocialTrust's closeness computation (common friends, paths)
// cannot be inflated by fabricated identities. Interaction history is not
// copied: the pruned graph is a structural view for signal computation.
func (d *Detector) PruneForCloseness(seeds []socialgraph.NodeID) *socialgraph.Graph {
	suspects := d.Suspects(seeds)
	isSuspect := make(map[socialgraph.NodeID]bool, len(suspects))
	for _, s := range suspects {
		isSuspect[s] = true
	}
	pruned := socialgraph.New(d.g.NumNodes())
	for i := socialgraph.NodeID(0); int(i) < d.g.NumNodes(); i++ {
		if isSuspect[i] {
			continue
		}
		for _, j := range d.g.Friends(i) {
			if j <= i || isSuspect[j] {
				continue
			}
			for _, rel := range d.g.Relationships(i, j) {
				pruned.AddRelationship(i, j, rel)
			}
		}
	}
	return pruned
}
