package sim

import (
	"fmt"
	"reflect"
	"testing"

	"socialtrust/internal/audit"
	"socialtrust/internal/fault"
	"socialtrust/internal/obs/event"
)

// TestFullSimIncrementalBitIdentity is the correctness acceptance for the
// incremental interval engine: for every collusion model, with and without
// churn+faults, at Workers 1 and 8, a complete managed run on the
// incremental path (per-rater signal caches, dirty-row CSR refresh,
// quiet-interval skips) must be byte-identical to the same run in
// FullRecompute mode — final reputations, per-cycle history, the
// ground-truth detection report, and the full audit event stream.
// Wall-clock fields are the only outputs allowed to differ.
func TestFullSimIncrementalBitIdentity(t *testing.T) {
	type outcome struct {
		res    *Result
		report audit.Report
		events []event.Event
	}
	run := func(t *testing.T, model CollusionModel, chaos bool, workers int, full bool) outcome {
		cfg := smallConfig(model, EngineEigenTrust, 0.4, true)
		cfg.Managers = 4
		cfg.Workers = workers
		cfg.FullRecompute = full
		if chaos {
			cfg.Faults = fault.Config{Seed: 9, Drop: 0.05, CrashRate: 0.05}
			cfg.Churn = ChurnConfig{DepartPerCycle: 0.05, RejoinPerCycle: 0.5, WhitewashFraction: 0.2}
		}
		net, err := NewNetwork(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rec := event.Enable(auditCapacity(cfg))
		defer event.Disable()
		res := net.Run()
		events := rec.Drain()
		if len(events) == 0 {
			t.Fatal("run recorded no audit events")
		}
		for i := range events {
			if c := events[i].Cycle; c != nil {
				c.QPS, c.WallSeconds = 0, 0
				c.Phases = nil
			}
			if m := events[i].Manager; m != nil {
				m.Seconds = 0
			}
		}
		return outcome{res: res, report: audit.Score(net.GroundTruth(), events), events: events}
	}
	for _, model := range []CollusionModel{PCM, MCM, MMM} {
		for _, chaos := range []bool{false, true} {
			for _, workers := range []int{1, 8} {
				name := fmt.Sprintf("%v/chaos=%v/workers=%d", model, chaos, workers)
				t.Run(name, func(t *testing.T) {
					ref := run(t, model, chaos, workers, true)
					got := run(t, model, chaos, workers, false)
					if !reflect.DeepEqual(got.res.FinalReputations, ref.res.FinalReputations) {
						t.Fatal("final reputations diverge between incremental and FullRecompute")
					}
					if !reflect.DeepEqual(got.res.History, ref.res.History) {
						t.Fatal("reputation history diverges between incremental and FullRecompute")
					}
					if !reflect.DeepEqual(got.report, ref.report) {
						t.Fatalf("detection report diverges:\nincremental:   %+v\nfullrecompute: %+v", got.report, ref.report)
					}
					if !reflect.DeepEqual(got.events, ref.events) {
						t.Fatal("audit event streams diverge between incremental and FullRecompute")
					}
				})
			}
		}
	}
}
