package sim

import (
	"testing"

	"socialtrust/internal/audit"
	"socialtrust/internal/core"
	"socialtrust/internal/obs"
	"socialtrust/internal/obs/event"
)

// TestAuditedRunReconciles runs a 200-node MCM experiment through the
// manager overlay with the audit trail on and cross-checks the three
// observability layers against each other:
//
//   - every shrunk pair traces to exactly one FilterDecision — the event
//     count equals the socialtrust_pairs_adjusted_total delta;
//   - the per-behavior shrunk-rating sums derived from the events equal the
//     socialtrust_filtered_total{behavior=...} deltas;
//   - every decision carries its full evidence chain;
//   - the on-disk audit directory round-trips and scores.
func TestAuditedRunReconciles(t *testing.T) {
	if testing.Short() {
		t.Skip("full audited run")
	}
	if event.Enabled() {
		t.Skip("a flight recorder is already installed globally")
	}
	prevObs := obs.Enabled()
	obs.Enable()
	defer obs.SetEnabled(prevObs)

	cfg := DefaultConfig(MCM, EngineEigenTrust, 0.2, true)
	cfg.SimulationCycles = 6
	cfg.QueryCycles = 8
	cfg.Managers = 4
	cfg.Seed = 7
	cfg.AuditDir = t.TempDir()

	before := obs.ReadSnapshot()
	res, err := Run(cfg)
	after := obs.ReadSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalRequests == 0 {
		t.Fatal("run served no requests")
	}
	if event.Enabled() {
		t.Fatal("Run left the flight recorder installed")
	}

	gt, events, err := audit.LoadDir(cfg.AuditDir)
	if err != nil {
		t.Fatal(err)
	}

	// Ground truth describes the MCM wiring.
	if gt.Model != "MCM" || gt.NumNodes != 200 || len(gt.Colluders) != cfg.NumColluders {
		t.Fatalf("ground truth header = %+v", gt)
	}
	if len(gt.Edges) == 0 {
		t.Fatal("ground truth has no collusion edges")
	}
	colluder := make(map[int]bool)
	for _, id := range gt.Colluders {
		colluder[id] = true
	}
	for _, e := range gt.Edges {
		if !colluder[e.From] || !colluder[e.To] || e.Negative {
			t.Fatalf("MCM truth edge %+v outside the colluder set", e)
		}
	}

	var decisions []event.FilterDecision
	cycleEvents, drainEvents := 0, 0
	for _, e := range events {
		switch {
		case e.Filter != nil:
			decisions = append(decisions, *e.Filter)
		case e.Cycle != nil:
			cycleEvents++
		case e.Manager != nil && e.Manager.Kind == "drain":
			drainEvents++
			if e.Manager.Shards != cfg.Managers {
				t.Errorf("drain event shards = %d, want %d", e.Manager.Shards, cfg.Managers)
			}
		}
	}
	if cycleEvents != cfg.SimulationCycles {
		t.Errorf("cycle events = %d, want %d", cycleEvents, cfg.SimulationCycles)
	}
	if drainEvents != cfg.SimulationCycles {
		t.Errorf("drain events = %d, want %d", drainEvents, cfg.SimulationCycles)
	}
	if len(decisions) == 0 {
		t.Fatal("audited MCM run produced no filter decisions")
	}

	// Reconciliation (a): one event per shrunk pair.
	cDelta := func(name string) int64 { return after.Counters[name] - before.Counters[name] }
	if got, want := int64(len(decisions)), cDelta("socialtrust_pairs_adjusted_total"); got != want {
		t.Errorf("decision events = %d, pairs-adjusted metric delta = %d", got, want)
	}
	// Reconciliation (b): per-behavior shrunk-rating sums match the
	// socialtrust_filtered_total series (Positive counts for B1–B3 firings,
	// Negative for B4, a pair contributing to each behavior it matched).
	wantByBehavior := make(map[core.Behavior]int64)
	for _, d := range decisions {
		for _, b := range []core.Behavior{core.B1, core.B2, core.B3, core.B4} {
			if core.Behavior(d.Mask)&b == 0 {
				continue
			}
			if b == core.B4 {
				wantByBehavior[b] += int64(d.Negative)
			} else {
				wantByBehavior[b] += int64(d.Positive)
			}
		}
	}
	for _, b := range []core.Behavior{core.B1, core.B2, core.B3, core.B4} {
		series := obs.Label("socialtrust_filtered_total", "behavior", b.String())
		if got, want := cDelta(series), wantByBehavior[b]; got != want {
			t.Errorf("%s delta = %d, events say %d", series, got, want)
		}
	}

	// Every decision carries its full evidence chain.
	for _, d := range decisions {
		if d.Interval < 1 || d.Interval > cfg.SimulationCycles {
			t.Fatalf("decision interval %d outside run: %+v", d.Interval, d)
		}
		if d.Behaviors == "" || d.Mask == 0 {
			t.Fatalf("decision without behaviors: %+v", d)
		}
		if d.Weight <= 0 || d.GaussianWeight <= 0 || d.FreqScale <= 0 {
			t.Fatalf("decision without weights: %+v", d)
		}
		if d.PosThreshold <= 0 || d.NegThreshold <= 0 {
			t.Fatalf("decision without thresholds: %+v", d)
		}
		if d.ClosenessBaseN == 0 || d.SimilarityBaseN == 0 {
			t.Fatalf("decision without baseline evidence: %+v", d)
		}
		if d.PreValue == 0 || d.PostValue == 0 {
			t.Fatalf("decision without pre/post values: %+v", d)
		}
	}

	// The forensics pass over the run is sane: MCM decisions overwhelmingly
	// target real collusion edges.
	rep := audit.Score(gt, events)
	if rep.Decisions != len(decisions) || rep.Cycles != cfg.SimulationCycles {
		t.Fatalf("score header = %+v", rep)
	}
	for _, s := range rep.Overall {
		if s.Behavior == audit.AnyBehavior && s.Precision < 0.5 {
			t.Errorf("any-behavior precision %.3f suspiciously low: %+v", s.Precision, s)
		}
	}
}
