package sim

import (
	"math"
	"testing"

	"socialtrust/internal/socialgraph"
)

// smallConfig returns a scaled-down Section 5.1 setup that keeps unit tests
// fast while preserving the population structure.
func smallConfig(model CollusionModel, engine EngineKind, b float64, socialTrust bool) Config {
	cfg := DefaultConfig(model, engine, b, socialTrust)
	cfg.NumNodes = 60
	cfg.NumPretrusted = 3
	cfg.NumColluders = 10
	cfg.NumBoosted = 3
	cfg.QueryCycles = 10
	cfg.SimulationCycles = 8
	cfg.Seed = 42
	return cfg
}

func meanRep(reps []float64, ids []int) float64 {
	if len(ids) == 0 {
		return 0
	}
	sum := 0.0
	for _, id := range ids {
		sum += reps[id]
	}
	return sum / float64(len(ids))
}

func normalIDs(cfg Config) []int {
	var out []int
	for id := cfg.NumPretrusted + cfg.NumColluders; id < cfg.NumNodes; id++ {
		out = append(out, id)
	}
	return out
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		func() Config { c := smallConfig(PCM, EngineEBay, 0.6, false); c.NumNodes = 1; return c }(),
		func() Config { c := smallConfig(PCM, EngineEBay, 0.6, false); c.NumColluders = 70; return c }(),
		func() Config { c := smallConfig(PCM, EngineEBay, 0.6, false); c.NumColluders = 9; return c }(), // odd for PCM
		func() Config { c := smallConfig(MCM, EngineEBay, 0.6, false); c.NumBoosted = 0; return c }(),
		func() Config { c := smallConfig(PCM, EngineEBay, 0.6, false); c.CompromisedPretrusted = 99; return c }(),
		func() Config { c := smallConfig(PCM, EngineEBay, 0.6, false); c.ColluderDistance = 7; return c }(),
		func() Config {
			c := smallConfig(PCM, EngineEBay, 0.6, false)
			c.InterestsPer = IntRange{5, 2}
			return c
		}(),
		func() Config { c := smallConfig(PCM, EngineEBay, 0.6, false); c.QueryCycles = 0; return c }(),
	}
	for i, cfg := range bad {
		if _, err := NewNetwork(cfg); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestNodeLayout(t *testing.T) {
	cfg := smallConfig(PCM, EngineEBay, 0.6, false)
	net, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(net.Nodes); got != cfg.NumNodes {
		t.Fatalf("nodes = %d", got)
	}
	for id, node := range net.Nodes {
		if node.ID != id {
			t.Fatalf("node %d has ID %d", id, node.ID)
		}
		want := cfg.Type(id)
		if node.Type != want {
			t.Fatalf("node %d type %v, want %v", id, node.Type, want)
		}
		switch node.Type {
		case Pretrusted:
			if node.Good != 1.0 {
				t.Fatalf("pretrusted Good = %v", node.Good)
			}
		case Normal:
			if node.Good != 0.8 {
				t.Fatalf("normal Good = %v", node.Good)
			}
		case Colluder:
			if node.Good != 0.6 {
				t.Fatalf("colluder Good = %v", node.Good)
			}
		}
		if node.Activity < 0.5 || node.Activity >= 1.0 {
			t.Fatalf("activity %v outside [0.5,1)", node.Activity)
		}
		k := node.Interests.Len()
		if k < cfg.InterestsPer.Lo || k > cfg.InterestsPer.Hi {
			t.Fatalf("node %d has %d interests", id, k)
		}
	}
}

func TestTypeBoundaries(t *testing.T) {
	cfg := DefaultConfig(PCM, EngineEBay, 0.2, false)
	if cfg.Type(0) != Pretrusted || cfg.Type(8) != Pretrusted {
		t.Fatal("IDs 0-8 should be pretrusted")
	}
	if cfg.Type(9) != Colluder || cfg.Type(38) != Colluder {
		t.Fatal("IDs 9-38 should be colluders")
	}
	if cfg.Type(39) != Normal || cfg.Type(199) != Normal {
		t.Fatal("IDs 39+ should be normal")
	}
	if len(cfg.PretrustedIDs()) != 9 || len(cfg.ColluderIDs()) != 30 {
		t.Fatal("ID list sizes wrong")
	}
}

func TestPCMWiring(t *testing.T) {
	cfg := smallConfig(PCM, EngineEBay, 0.6, false)
	net, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(net.colludeEdges); got != cfg.NumColluders {
		t.Fatalf("PCM edges = %d, want %d (mutual pairs)", got, cfg.NumColluders)
	}
	// Mutual: for every edge A->B there is B->A, and partners are adjacent
	// with [3,5] relationships.
	seen := map[[2]int]bool{}
	for _, e := range net.colludeEdges {
		seen[[2]int{e.From, e.To}] = true
		if e.Ratings != 20 {
			t.Fatalf("PCM ratings = %d, want 20", e.Ratings)
		}
		if e.Back != 0 {
			t.Fatal("PCM uses two directed edges, not Back")
		}
		m := net.Graph.RelationshipCount(socialgraph.NodeID(e.From), socialgraph.NodeID(e.To))
		if m < 3 || m > 5 {
			t.Fatalf("collusion pair relationships = %d, want [3,5]", m)
		}
	}
	for _, e := range net.colludeEdges {
		if !seen[[2]int{e.To, e.From}] {
			t.Fatalf("PCM edge %d->%d lacks reverse", e.From, e.To)
		}
	}
}

func TestMCMWiring(t *testing.T) {
	cfg := smallConfig(MCM, EngineEBay, 0.6, false)
	net, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantEdges := cfg.NumColluders - cfg.NumBoosted
	if got := len(net.colludeEdges); got != wantEdges {
		t.Fatalf("MCM edges = %d, want %d", got, wantEdges)
	}
	targets := map[int]bool{}
	boosters := map[int]bool{}
	for _, e := range net.colludeEdges {
		if e.Back != 0 {
			t.Fatal("MCM boosted nodes must not rate back")
		}
		if e.Ratings < 3 || e.Ratings > 7 {
			t.Fatalf("MCM ratings = %d, want [3,7]", e.Ratings)
		}
		targets[e.To] = true
		boosters[e.From] = true
	}
	if len(targets) > cfg.NumBoosted {
		t.Fatalf("%d distinct boosted nodes, want <= %d", len(targets), cfg.NumBoosted)
	}
	for b := range targets {
		if boosters[b] {
			t.Fatalf("boosted node %d also boosts", b)
		}
	}
}

func TestMMMWiring(t *testing.T) {
	cfg := smallConfig(MMM, EngineEBay, 0.6, false)
	net, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range net.colludeEdges {
		if e.Back != cfg.MMMBackRatings {
			t.Fatalf("MMM Back = %d, want %d", e.Back, cfg.MMMBackRatings)
		}
		if e.Ratings != 20 {
			t.Fatalf("MMM forward ratings = %d, want 20", e.Ratings)
		}
	}
}

func TestCompromisedPretrustedWiring(t *testing.T) {
	cfg := smallConfig(PCM, EngineEBay, 0.2, false)
	cfg.CompromisedPretrusted = 2
	net, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	comp := net.CompromisedIDs()
	if len(comp) != 2 {
		t.Fatalf("compromised = %v, want 2 pretrusted", comp)
	}
	for _, id := range comp {
		if cfg.Type(id) != Pretrusted {
			t.Fatalf("compromised node %d is %v", id, cfg.Type(id))
		}
	}
}

func TestColluderDistanceControl(t *testing.T) {
	for _, d := range []int{1, 2, 3} {
		cfg := smallConfig(PCM, EngineEBay, 0.6, false)
		cfg.ColluderDistance = d
		net, err := NewNetwork(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range net.colludeEdges {
			got := net.Graph.Distance(socialgraph.NodeID(e.From), socialgraph.NodeID(e.To), 0)
			if got != d {
				t.Fatalf("distance %d config: pair %d-%d at distance %d", d, e.From, e.To, got)
			}
		}
	}
}

func TestFalsifiedProfiles(t *testing.T) {
	cfg := smallConfig(PCM, EngineEBay, 0.6, true)
	cfg.FalsifiedSocialInfo = true
	net, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ids := cfg.ColluderIDs()
	ref := net.Sets[ids[0]].Categories()
	for _, id := range ids[1:] {
		got := net.Sets[id].Categories()
		if len(got) != len(ref) {
			t.Fatalf("colluder %d claimed profile differs", id)
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("colluder %d claimed profile differs", id)
			}
		}
	}
	// True interests are individual (overwhelmingly unlikely to all match).
	allSame := true
	refTrue := net.Nodes[ids[0]].Interests.Categories()
	for _, id := range ids[1:] {
		got := net.Nodes[id].Interests.Categories()
		if len(got) != len(refTrue) {
			allSame = false
			break
		}
		for i := range refTrue {
			if got[i] != refTrue[i] {
				allSame = false
			}
		}
	}
	if allSame {
		t.Fatal("true interests should not be falsified")
	}
	// Collusion edges carry exactly one relationship.
	for _, e := range net.colludeEdges {
		if m := net.Graph.RelationshipCount(socialgraph.NodeID(e.From), socialgraph.NodeID(e.To)); m != 1 {
			t.Fatalf("falsified collusion edge has %d relationships, want 1", m)
		}
	}
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) []float64 {
		cfg := smallConfig(PCM, EngineEBay, 0.6, true)
		cfg.Workers = workers
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.FinalReputations
	}
	a, b := run(1), run(8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("reputation %d differs across worker counts: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestRunDeterministicSameSeed(t *testing.T) {
	cfg := smallConfig(MMM, EngineEigenTrust, 0.2, true)
	r1, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.FinalReputations {
		if r1.FinalReputations[i] != r2.FinalReputations[i] {
			t.Fatalf("same seed diverged at node %d", i)
		}
	}
	if r1.TotalRequests != r2.TotalRequests {
		t.Fatal("request accounting diverged")
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	cfg := smallConfig(PCM, EngineEBay, 0.6, false)
	r1, _ := Run(cfg)
	cfg.Seed = 777
	r2, _ := Run(cfg)
	same := true
	for i := range r1.FinalReputations {
		if r1.FinalReputations[i] != r2.FinalReputations[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical reputations")
	}
}

func TestRunBasicInvariants(t *testing.T) {
	cfg := smallConfig(PCM, EngineEigenTrust, 0.6, false)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) != cfg.SimulationCycles {
		t.Fatalf("history has %d cycles", len(res.History))
	}
	sum := 0.0
	for _, v := range res.FinalReputations {
		if v < 0 || math.IsNaN(v) {
			t.Fatalf("invalid reputation %v", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("reputations sum to %v", sum)
	}
	if res.TotalRequests == 0 {
		t.Fatal("no requests served")
	}
	if res.AuthenticServed+res.InauthenticServed != res.TotalRequests {
		t.Fatal("authenticity accounting broken")
	}
	total := 0
	for _, v := range res.ServedByType {
		total += v
	}
	if total != res.TotalRequests {
		t.Fatal("ServedByType accounting broken")
	}
	if got := res.ColluderRequestShare(); got < 0 || got > 1 {
		t.Fatalf("request share = %v", got)
	}
	if len(res.ConvergenceCycles) != cfg.NumColluders {
		t.Fatal("convergence vector size")
	}
}

// --- headline dynamics: the shapes the paper's figures rest on ---
//
// These run the full Section 5.1 population (200 nodes) with a shortened
// horizon (15 query cycles × 12 simulation cycles); the shapes below are
// already established well within that horizon.

// paperConfig returns the paper-scale setup with a shortened horizon.
func paperConfig(model CollusionModel, engine EngineKind, b float64, socialTrust bool) Config {
	cfg := DefaultConfig(model, engine, b, socialTrust)
	cfg.QueryCycles = 15
	cfg.SimulationCycles = 12
	cfg.Seed = 7
	return cfg
}

func runPaper(t *testing.T, cfg Config) *Result {
	t.Helper()
	if testing.Short() {
		t.Skip("paper-scale dynamics test skipped in -short mode")
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestPCMHighQoSColludersBeatNormalWithoutDefense(t *testing.T) {
	// Figure 8(a): at B=0.6, EigenTrust lets PCM colluders tower over
	// normal peers.
	cfg := paperConfig(PCM, EngineEigenTrust, 0.6, false)
	res := runPaper(t, cfg)
	coll := meanRep(res.FinalReputations, cfg.ColluderIDs())
	norm := meanRep(res.FinalReputations, normalIDs(cfg))
	if coll <= 5*norm {
		t.Errorf("colluder mean %v vs normal mean %v (want ≥5x at B=0.6)", coll, norm)
	}
}

func TestEBayColludersEvadePunishmentAtHighQoS(t *testing.T) {
	// Figures 8(b) vs 9(b): in eBay, B=0.6 colluders retain a standing far
	// above what B=0.2 colluders get.
	resHigh := runPaper(t, paperConfig(PCM, EngineEBay, 0.6, false))
	cfg := paperConfig(PCM, EngineEBay, 0.2, false)
	resLow := runPaper(t, cfg)
	high := meanRep(resHigh.FinalReputations, cfg.ColluderIDs())
	low := meanRep(resLow.FinalReputations, cfg.ColluderIDs())
	if high <= 2.5*low {
		t.Errorf("eBay colluder mean at B=0.6 %v vs B=0.2 %v (want clear separation)", high, low)
	}
}

func TestPCMSocialTrustSuppressesColluders(t *testing.T) {
	// Figure 8(c,d): SocialTrust drives colluder reputations down hard in
	// both systems.
	for _, engine := range []EngineKind{EngineEigenTrust, EngineEBay} {
		base := runPaper(t, paperConfig(PCM, engine, 0.6, false))
		cfg := paperConfig(PCM, engine, 0.6, true)
		prot := runPaper(t, cfg)
		collBase := meanRep(base.FinalReputations, cfg.ColluderIDs())
		collProt := meanRep(prot.FinalReputations, cfg.ColluderIDs())
		normProt := meanRep(prot.FinalReputations, normalIDs(cfg))
		if collProt >= collBase/3 {
			t.Errorf("%v: SocialTrust colluder mean %v vs unprotected %v (want ≥3x reduction)",
				engine, collProt, collBase)
		}
		if collProt >= 2*normProt {
			t.Errorf("%v: SocialTrust colluder mean %v vs normal %v (colluders should not stay above normal)",
				engine, collProt, normProt)
		}
	}
}

func TestEigenTrustCountersLowQoSPCMAlone(t *testing.T) {
	// Figure 9(a) vs 8(a): EigenTrust alone punishes low-QoS colluders far
	// more than high-QoS ones.
	cfg := paperConfig(PCM, EngineEigenTrust, 0.2, false)
	resLow := runPaper(t, cfg)
	resHigh := runPaper(t, paperConfig(PCM, EngineEigenTrust, 0.6, false))
	low := meanRep(resLow.FinalReputations, cfg.ColluderIDs())
	high := meanRep(resHigh.FinalReputations, cfg.ColluderIDs())
	if high <= 4*low {
		t.Errorf("EigenTrust colluders at B=0.6 %v vs B=0.2 %v (want ≥4x separation)", high, low)
	}
}

func TestMMMRunawayAndSuppression(t *testing.T) {
	// Figure 13(a) vs 13(c): MMM at B=0.6 runs away under EigenTrust;
	// SocialTrust restores order.
	cfg := paperConfig(MMM, EngineEigenTrust, 0.6, false)
	res := runPaper(t, cfg)
	coll := meanRep(res.FinalReputations, cfg.ColluderIDs())
	norm := meanRep(res.FinalReputations, normalIDs(cfg))
	if coll <= 10*norm {
		t.Errorf("MMM colluder mean %v vs normal %v (want ≥10x runaway)", coll, norm)
	}
	cfg.SocialTrust = true
	resST := runPaper(t, cfg)
	collST := meanRep(resST.FinalReputations, cfg.ColluderIDs())
	normST := meanRep(resST.FinalReputations, normalIDs(cfg))
	if collST >= 2*normST {
		t.Errorf("MMM+SocialTrust colluder mean %v vs normal %v", collST, normST)
	}
}

func TestCompromisedPretrustedBoostAndRecovery(t *testing.T) {
	// Figure 10: compromised pretrusted nodes blow EigenTrust open even at
	// B=0.2; SocialTrust still suppresses.
	cfg := paperConfig(PCM, EngineEigenTrust, 0.2, false)
	cfg.CompromisedPretrusted = 7
	res := runPaper(t, cfg)
	coll := meanRep(res.FinalReputations, cfg.ColluderIDs())
	norm := meanRep(res.FinalReputations, normalIDs(cfg))
	if coll <= 10*norm {
		t.Errorf("compromised-pretrusted colluder mean %v vs normal %v (want blowup)", coll, norm)
	}
	cfg.SocialTrust = true
	resST := runPaper(t, cfg)
	collST := meanRep(resST.FinalReputations, cfg.ColluderIDs())
	normST := meanRep(resST.FinalReputations, normalIDs(cfg))
	if collST >= normST {
		t.Errorf("SocialTrust colluder mean %v >= normal %v with compromised pretrusted", collST, normST)
	}
}

func TestFalsifiedSocialInfoStillSuppressed(t *testing.T) {
	// Figures 16-18: colluders falsifying relationships and interest
	// profiles still end far below the unprotected baseline.
	base := paperConfig(PCM, EngineEigenTrust, 0.6, false)
	base.FalsifiedSocialInfo = true
	resBase := runPaper(t, base)
	cfg := paperConfig(PCM, EngineEigenTrust, 0.6, true)
	cfg.FalsifiedSocialInfo = true
	resST := runPaper(t, cfg)
	collBase := meanRep(resBase.FinalReputations, cfg.ColluderIDs())
	collST := meanRep(resST.FinalReputations, cfg.ColluderIDs())
	if collST >= collBase/3 {
		t.Errorf("falsified-info SocialTrust colluder mean %v vs unprotected %v", collST, collBase)
	}
}

func TestSocialTrustReducesColluderRequestShare(t *testing.T) {
	// Table 1's headline: SocialTrust cuts the request share of colluders
	// to a few percent.
	resBase := runPaper(t, paperConfig(PCM, EngineEigenTrust, 0.6, false))
	resProt := runPaper(t, paperConfig(PCM, EngineEigenTrust, 0.6, true))
	if resProt.ColluderRequestShare() >= resBase.ColluderRequestShare()/2 {
		t.Errorf("request share with SocialTrust %v vs without %v (want ≥2x cut)",
			resProt.ColluderRequestShare(), resBase.ColluderRequestShare())
	}
	if resProt.ColluderRequestShare() > 0.06 {
		t.Errorf("request share with SocialTrust %v, want a few percent", resProt.ColluderRequestShare())
	}
}
