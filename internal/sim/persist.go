// Run-level durability: with Config.StateDir set, the simulator journals
// every generated rating to a write-ahead log before it is acknowledged (per
// manager shard in Managers mode, one run-wide log otherwise) and writes an
// atomic snapshot of the complete run state at every interval boundary — the
// end of each simulation cycle, after the reputation update. A process
// restarted over the same directory loads the snapshot, replays the WAL tail
// of the interrupted interval, and re-executes that interval from its start:
// every random stream resumes from its recorded position, so the re-execution
// regenerates exactly the ratings the dead process generated, and replayed
// sequence numbers are acknowledged without double-counting. Reputations,
// detection tables and audit event streams of the resumed run are
// bit-identical to an uninterrupted run of the same seed.
package sim

import (
	"fmt"
	"os"
	"path/filepath"

	"socialtrust/internal/core"
	"socialtrust/internal/fault"
	"socialtrust/internal/obs"
	"socialtrust/internal/obs/event"
	"socialtrust/internal/persist"
	"socialtrust/internal/rating"
	"socialtrust/internal/reputation/ebay"
	"socialtrust/internal/reputation/eigentrust"
	"socialtrust/internal/reputation/trustguard"
	"socialtrust/internal/socialgraph"
	"socialtrust/internal/xrand"
)

// runState is the gob-serialized interval-boundary snapshot of a run: the
// fingerprinted configuration, every Result accumulator, the per-node and
// per-stream random positions, and the persistent state of each substrate
// (graph, filter history, engine, fault plan). Exactly one of the Engine*
// pointers is set, matching the configured engine kind. Events carries the
// audit stream drained into checkpoints so far; EventSeq its high-water
// sequence number.
type runState struct {
	Fingerprint string
	// Cycle counts completed simulation cycles — the resumed run's first
	// cycle index. Seq is the global rating ingest sequence high-water at the
	// boundary, the floor for WAL tail replay.
	Cycle int
	Seq   uint64

	// Result accumulators.
	TotalRequests         int
	RequestsToColluders   int
	AuthenticServed       int
	InauthenticServed     int
	ServedByType          map[NodeType]int
	Whitewashes           int
	Churn                 ChurnStats
	RatingsLost           int
	PartialDrains         int
	ReplicaDrains         int
	History               [][]float64
	PerCycleColluderShare []float64
	LastAbove             []int
	EverAbove             []bool

	// Reps is the reputation vector broadcast at the boundary.
	Reps []float64

	// Per-node run state and random stream positions.
	Online        []bool
	NodeGood      []float64
	NodeHoneymoon []int
	NodeRNGDraws  []uint64
	ChurnDraws    uint64

	// Substrate states.
	Graph      socialgraph.State
	Filter     *core.FilterState
	EngineET   *eigentrust.State
	EngineEBay *ebay.State
	EngineTG   *trustguard.State
	Fault      *fault.State

	// DrainedSeqs holds the overlay's per-shard drained sequence marks
	// (Managers mode only): WAL records at or below a shard's mark are
	// covered by drains this snapshot already accounts for.
	DrainedSeqs []uint64

	// Audit event stream through this boundary.
	Events   []event.Event
	EventSeq uint64
}

// durable reports whether the run persists its state.
func (n *Network) durable() bool { return n.Cfg.StateDir != "" }

// snapshotPath locates the interval-boundary snapshot file.
func (n *Network) snapshotPath() string {
	return filepath.Join(n.Cfg.StateDir, "snapshot.st")
}

// fingerprint canonicalizes the configuration for snapshot compatibility
// checks. Harness knobs that cannot change results — worker parallelism and
// the state/output directories — are zeroed, so a resumed run may use
// different parallelism or log elsewhere; everything else must match.
func (n *Network) fingerprint() string {
	c := n.Cfg
	c.StateDir, c.AuditDir, c.TraceDir = "", "", ""
	c.Workers = 0
	c.Cluster = 0 // shard placement cannot change results
	return fmt.Sprintf("%+v", c)
}

// simJournal adapts the run-wide WAL to the ledger's write-ahead hook
// (direct-ledger mode; the overlay journals inside its shards).
type simJournal struct{ w *persist.WAL }

func (j simJournal) Append(rs []rating.Rating) error {
	recs := make([]persist.Record, len(rs))
	for i, r := range rs {
		recs[i] = persist.Record{
			Kind:     persist.KindRating,
			Seq:      r.Seq,
			Rater:    int32(r.Rater),
			Ratee:    int32(r.Ratee),
			Cycle:    int32(r.Cycle),
			Category: int32(r.Category),
			Value:    r.Value,
		}
	}
	return j.w.Append(recs)
}

// initPersist opens the durability layer at construction: the state
// directory, the run-wide rating WAL (direct-ledger mode; overlay shard WALs
// were opened by the overlay itself), and — when an interval-boundary
// snapshot is present — the resume state, validated against the
// configuration fingerprint. Called from NewNetwork after buildOverlay.
func (n *Network) initPersist() error {
	cfg := n.Cfg
	if err := os.MkdirAll(cfg.StateDir, 0o755); err != nil {
		return err
	}
	if n.Overlay == nil {
		w, rec, err := persist.Open(filepath.Join(cfg.StateDir, "ratings.wal"), persist.Options{})
		if err != nil {
			return err
		}
		if rec.Corrupt != nil {
			obs.Logger().Warn("rating WAL had a torn tail; truncated to last valid record",
				"bytes", rec.TruncatedBytes, "err", rec.Corrupt)
		}
		n.simWAL = w
	}
	if persist.SnapshotExists(n.snapshotPath()) {
		var st runState
		if err := persist.LoadSnapshot(n.snapshotPath(), &st); err != nil {
			n.closePersist()
			return fmt.Errorf("sim: state dir %s: %w", cfg.StateDir, err)
		}
		if st.Fingerprint != n.fingerprint() {
			n.closePersist()
			return fmt.Errorf("sim: snapshot in %s was written by a different configuration; use a fresh state dir or rerun with identical parameters", cfg.StateDir)
		}
		n.resume = &st
	}
	return nil
}

// startFresh prepares a durable run over a directory with no snapshot: stale
// WAL content (a crash before the first checkpoint, or leftovers of an older
// run) is discarded — with no snapshot to anchor them such records are
// meaningless, and the run regenerates everything from the seed — and
// checkpoint 0 is written so a crash anywhere in the first interval recovers
// through the normal resume path. No-op without a state directory.
func (n *Network) startFresh(res *Result, lastAbove []int, everAbove []bool, reps []float64) {
	if !n.durable() {
		return
	}
	if n.Overlay != nil {
		if err := n.Overlay.ResetWALs(); err != nil {
			obs.Logger().Warn("resetting shard WALs failed; durability degraded", "err", err)
		}
	} else if n.simWAL != nil {
		if err := n.simWAL.Rotate(); err != nil {
			obs.Logger().Warn("resetting rating WAL failed; durability degraded", "err", err)
		}
	}
	n.checkpoint(res, lastAbove, everAbove, reps, 0)
}

// attachJournal installs the write-ahead journal on the direct-path ledger.
// Called after any resume replay so replayed records are not re-journaled.
func (n *Network) attachJournal() {
	if n.simWAL != nil {
		n.Ledger.SetJournal(simJournal{n.simWAL})
	}
}

// checkpoint captures and writes the interval-boundary snapshot, then trims
// the logs it covers. Snapshot failure degrades durability, not correctness:
// the run continues and a later crash recovers from the previous boundary.
// Compaction is sequence-filtered, so records of the next, in-flight interval
// and crashed shards' recoverable tails survive it — and a crash between the
// snapshot write and the trim is safe for the same reason.
func (n *Network) checkpoint(res *Result, lastAbove []int, everAbove []bool, reps []float64, cycle int) {
	if !n.durable() {
		return
	}
	st := n.captureState(res, lastAbove, everAbove, reps, cycle)
	if err := persist.WriteSnapshot(n.snapshotPath(), st); err != nil {
		obs.Logger().Warn("interval checkpoint failed; durability degraded", "cycle", cycle, "err", err)
		return
	}
	if n.Overlay != nil {
		if err := n.Overlay.CompactWALs(); err != nil {
			obs.Logger().Warn("shard WAL compaction failed", "err", err)
		}
	} else if n.simWAL != nil {
		if err := n.simWAL.Rotate(); err != nil {
			obs.Logger().Warn("rating WAL rotation failed", "err", err)
		}
	}
}

// captureState deep-copies everything a resumed process needs at an interval
// boundary. The audit ring is drained into savedEvents here, so the ring
// never overflows on long durable runs and the snapshot always carries the
// complete stream.
func (n *Network) captureState(res *Result, lastAbove []int, everAbove []bool, reps []float64, cycle int) *runState {
	st := &runState{
		Fingerprint:           n.fingerprint(),
		Cycle:                 cycle,
		Seq:                   n.seq,
		TotalRequests:         res.TotalRequests,
		RequestsToColluders:   res.RequestsToColluders,
		AuthenticServed:       res.AuthenticServed,
		InauthenticServed:     res.InauthenticServed,
		ServedByType:          make(map[NodeType]int, len(res.ServedByType)),
		Whitewashes:           res.Whitewashes,
		Churn:                 res.Churn,
		RatingsLost:           n.ratingsLost,
		PartialDrains:         res.PartialDrains,
		ReplicaDrains:         res.ReplicaDrains,
		History:               append([][]float64(nil), res.History...),
		PerCycleColluderShare: append([]float64(nil), res.PerCycleColluderShare...),
		LastAbove:             append([]int(nil), lastAbove...),
		EverAbove:             append([]bool(nil), everAbove...),
		Reps:                  append([]float64(nil), reps...),
		Online:                append([]bool(nil), n.online...),
		NodeGood:              make([]float64, len(n.Nodes)),
		NodeHoneymoon:         make([]int, len(n.Nodes)),
		NodeRNGDraws:          make([]uint64, len(n.Nodes)),
		ChurnDraws:            n.churnRNG.SourceDraws(),
		Graph:                 n.Graph.ExportState(),
	}
	for t, c := range res.ServedByType {
		st.ServedByType[t] = c
	}
	for i, node := range n.Nodes {
		st.NodeGood[i] = node.Good
		st.NodeHoneymoon[i] = node.honeymoon
		st.NodeRNGDraws[i] = node.rng.SourceDraws()
	}
	if n.Filter != nil {
		fs := n.Filter.ExportState()
		st.Filter = &fs
	}
	switch e := n.inner.(type) {
	case *eigentrust.Engine:
		es := e.ExportState()
		st.EngineET = &es
	case *ebay.Engine:
		es := e.ExportState()
		st.EngineEBay = &es
	case *trustguard.Engine:
		es := e.ExportState()
		st.EngineTG = &es
	default:
		panic(fmt.Sprintf("sim: engine %T has no snapshot support", n.inner))
	}
	if n.FaultPlan != nil {
		fs := n.FaultPlan.ExportState()
		st.Fault = &fs
	}
	if n.Overlay != nil {
		st.DrainedSeqs = n.Overlay.DrainedSeqs()
	}
	if rec := event.Current(); rec != nil {
		n.savedEvents = append(n.savedEvents, rec.Drain()...)
		st.Events = n.savedEvents
		st.EventSeq = rec.Recorded()
	}
	return st
}

// applyResume restores the snapshot found at construction: every substrate
// state, the Result accumulators, and all random stream positions. The
// interrupted interval's acknowledged WAL tail is replayed into the ledger
// (or handed to the overlay's Resume) with its sequence numbers registered as
// recovered, so the deterministic re-execution of that interval neither loses
// nor double-counts a rating. Returns the boundary reputation vector and the
// cycle index to resume at.
func (n *Network) applyResume(res *Result, lastAbove []int, everAbove []bool) ([]float64, int) {
	st := n.resume
	n.resume = nil
	persist.RecoveryStarted()
	obs.Logger().Info("resuming from interval-boundary snapshot",
		"state_dir", n.Cfg.StateDir, "cycle", st.Cycle, "seq", st.Seq)
	n.Graph.ImportState(st.Graph)
	if n.Filter != nil {
		if st.Filter == nil {
			panic("sim: snapshot is missing the filter state")
		}
		n.Filter.ImportState(*st.Filter)
	}
	switch e := n.inner.(type) {
	case *eigentrust.Engine:
		if st.EngineET == nil {
			panic("sim: snapshot is missing the EigenTrust engine state")
		}
		e.ImportState(*st.EngineET)
	case *ebay.Engine:
		if st.EngineEBay == nil {
			panic("sim: snapshot is missing the eBay engine state")
		}
		e.ImportState(*st.EngineEBay)
	case *trustguard.Engine:
		if st.EngineTG == nil {
			panic("sim: snapshot is missing the TrustGuard engine state")
		}
		e.ImportState(*st.EngineTG)
	default:
		panic(fmt.Sprintf("sim: engine %T has no snapshot support", n.inner))
	}
	if n.FaultPlan != nil {
		if st.Fault == nil {
			panic("sim: snapshot is missing the fault plan state")
		}
		n.FaultPlan.ImportState(*st.Fault)
	}
	for i, node := range n.Nodes {
		node.Good = st.NodeGood[i]
		node.honeymoon = st.NodeHoneymoon[i]
		fastForward(node.rng, st.NodeRNGDraws[i])
	}
	copy(n.online, st.Online)
	fastForward(n.churnRNG, st.ChurnDraws)
	n.seq = st.Seq
	n.ratingsLost = st.RatingsLost
	n.savedEvents = append(n.savedEvents, st.Events...)
	if rec := event.Current(); rec != nil {
		rec.AdvanceSeq(st.EventSeq)
	}
	res.TotalRequests = st.TotalRequests
	res.RequestsToColluders = st.RequestsToColluders
	res.AuthenticServed = st.AuthenticServed
	res.InauthenticServed = st.InauthenticServed
	for t, c := range st.ServedByType {
		res.ServedByType[t] = c
	}
	res.Whitewashes = st.Whitewashes
	res.Churn = st.Churn
	res.PartialDrains = st.PartialDrains
	res.ReplicaDrains = st.ReplicaDrains
	res.History = st.History
	res.PerCycleColluderShare = st.PerCycleColluderShare
	copy(lastAbove, st.LastAbove)
	copy(everAbove, st.EverAbove)
	reps := append([]float64(nil), st.Reps...)
	if n.Overlay != nil {
		if err := n.Overlay.Resume(st.DrainedSeqs, st.Seq, st.Reps); err != nil {
			panic(fmt.Sprintf("sim: overlay resume: %v", err))
		}
	} else if n.simWAL != nil {
		n.replaySimWAL(st.Seq)
	}
	return reps, st.Cycle
}

// replaySimWAL replays the run-wide WAL's acknowledged tail — rating records
// above the snapshot's sequence high-water — into the direct-path ledger,
// registering each replayed sequence as recovered. Must run before
// attachJournal so the replay is not re-journaled. A torn tail was already
// truncated at Open; a decode error here replays the valid prefix (the
// re-executed interval regenerates whatever was lost).
func (n *Network) replaySimWAL(above uint64) {
	recs, err := n.simWAL.ReadBack()
	if err != nil {
		obs.Logger().Warn("rating WAL replay hit a corrupt record; replaying valid prefix", "err", err)
	}
	recovered := make(map[uint64]int)
	for _, rec := range recs {
		if rec.Kind != persist.KindRating || rec.Seq <= above {
			continue
		}
		r := rating.Rating{
			Rater:    int(rec.Rater),
			Ratee:    int(rec.Ratee),
			Value:    rec.Value,
			Cycle:    int(rec.Cycle),
			Category: int(rec.Category),
			Seq:      rec.Seq,
		}
		if err := n.Ledger.Add(r); err != nil {
			continue // validated at original ingest; defensive only
		}
		recovered[rec.Seq]++
	}
	if len(recovered) > 0 {
		n.Ledger.MarkRecovered(recovered)
	}
}

// fastForward advances a fresh random stream to a snapshotted position.
func fastForward(s *xrand.Stream, target uint64) {
	cur := s.SourceDraws()
	if cur > target {
		panic(fmt.Sprintf("sim: random stream already past restore point (%d > %d)", cur, target))
	}
	s.Discard(target - cur)
}

// abandon stands in for the process dying mid-run (the haltAt test hook):
// manager goroutines stop and open WAL files close. Closing writes nothing a
// kill -9 would not have left behind — every append was flushed to the OS
// before its ingest was acknowledged.
func (n *Network) abandon() {
	if n.Overlay != nil {
		n.Overlay.Close()
	}
	n.closeCluster()
	n.closePersist()
}

// closePersist flushes and closes the run-wide WAL, if open.
func (n *Network) closePersist() {
	if n.simWAL != nil {
		_ = n.simWAL.Close()
		n.simWAL = nil
	}
}
