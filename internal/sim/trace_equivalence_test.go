package sim

import (
	"reflect"
	"testing"

	"socialtrust/internal/audit"
	"socialtrust/internal/obs/event"
	"socialtrust/internal/obs/span"
)

// TestFullSimTraceBitIdentity is the determinism acceptance for the tracing
// layer: for each collusion model, a complete managed run with the span
// recorder enabled must be byte-identical to the same run with tracing off —
// reputations, per-cycle history, the ground-truth detection report, and the
// full audit event stream. Wall-clock fields (QPS, WallSeconds, manager
// Seconds) and the cycle phase attribution are the only outputs allowed to
// differ: they measure time, and the attribution only exists when traced.
func TestFullSimTraceBitIdentity(t *testing.T) {
	type outcome struct {
		res    *Result
		report audit.Report
		events []event.Event
	}
	run := func(t *testing.T, model CollusionModel, traced bool) outcome {
		cfg := smallConfig(model, EngineEigenTrust, 0.4, true)
		cfg.Managers = 4
		net, err := NewNetwork(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rec := event.Enable(auditCapacity(cfg))
		defer event.Disable()
		if traced {
			srec := span.Enable(0)
			defer span.Disable()
			defer func() {
				if srec.Recorded() == 0 {
					t.Error("traced run recorded no spans")
				}
			}()
		}
		res := net.Run()
		events := rec.Drain()
		if len(events) == 0 {
			t.Fatal("run recorded no audit events")
		}
		for i := range events {
			if c := events[i].Cycle; c != nil {
				c.QPS, c.WallSeconds = 0, 0
				c.Phases = nil
			}
			if m := events[i].Manager; m != nil {
				m.Seconds = 0
			}
		}
		return outcome{res: res, report: audit.Score(net.GroundTruth(), events), events: events}
	}
	for _, model := range []CollusionModel{PCM, MCM, MMM} {
		t.Run(model.String(), func(t *testing.T) {
			ref := run(t, model, false)
			got := run(t, model, true)
			if !reflect.DeepEqual(got.res.FinalReputations, ref.res.FinalReputations) {
				t.Fatal("final reputations diverge between tracing on and off")
			}
			if !reflect.DeepEqual(got.res.History, ref.res.History) {
				t.Fatal("reputation history diverges between tracing on and off")
			}
			if !reflect.DeepEqual(got.report, ref.report) {
				t.Fatalf("detection report diverges:\ntraced:   %+v\nuntraced: %+v", got.report, ref.report)
			}
			if !reflect.DeepEqual(got.events, ref.events) {
				t.Fatal("audit event streams diverge between tracing on and off")
			}
		})
	}
}
