package sim

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"socialtrust/internal/audit"
	"socialtrust/internal/cluster"
	"socialtrust/internal/core"
	"socialtrust/internal/fault"
	"socialtrust/internal/interest"
	"socialtrust/internal/manager"
	"socialtrust/internal/obs/event"
	"socialtrust/internal/persist"
	"socialtrust/internal/rating"
	"socialtrust/internal/reputation"
	"socialtrust/internal/reputation/ebay"
	"socialtrust/internal/reputation/eigentrust"
	"socialtrust/internal/reputation/trustguard"
	"socialtrust/internal/socialgraph"
	"socialtrust/internal/xrand"
)

func defaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Node is one simulated peer.
type Node struct {
	ID       int
	Type     NodeType
	Good     float64 // probability of serving authentic content
	Activity float64 // probability of issuing a query each query cycle

	// Interests holds the node's true interest profile; Claimed is what it
	// publishes (differs only under falsified social information).
	Interests interest.Set
	// InterestList caches the true interests in popularity order for
	// power-law request sampling.
	InterestList []interest.Category

	rng *xrand.Stream
	// honeymoon counts the remaining simulation cycles of high-QoS
	// behavior before an oscillating colluder defects.
	honeymoon int
}

// collusionEdge is one directed collusion relationship: From rates To with
// Ratings ratings of the given Value per query cycle; Back > 0 adds reverse
// ratings (MMM and the pair-wise models). Value zero means +1 (boosting);
// slander edges carry −1.
type collusionEdge struct {
	From, To int
	Ratings  int
	Back     int
	Value    float64
}

func (e *collusionEdge) value() float64 {
	if e.Value == 0 {
		return 1
	}
	return e.Value
}

// Network is a fully constructed experiment instance: topology, node
// population, collusion wiring, ledger, and reputation engine.
type Network struct {
	Cfg     Config
	Nodes   []*Node
	Graph   *socialgraph.Graph
	Sets    []interest.Set // claimed interest profiles (see Node.Interests)
	Tracker *interest.Tracker
	Ledger  *rating.Ledger
	Engine  reputation.Engine
	// Filter is non-nil when the engine is wrapped with SocialTrust.
	Filter *core.SocialTrust
	// Overlay is non-nil when Config.Managers > 0: ratings are submitted to
	// and the periodic reputation update is driven through the paper's
	// resource-manager overlay instead of the in-process ledger.
	Overlay *manager.Overlay
	// FaultPlan is non-nil when Config.Faults is enabled: the overlay runs
	// in fault-tolerant mode against this deterministic injection plan.
	FaultPlan *fault.Plan
	// cluster is non-nil when Config.Cluster > 0: the spawned worker fleet
	// hosting the overlay's shards out of process. clusterDir is the
	// temporary root of the workers' WAL directories; both are torn down
	// after the overlay closes.
	cluster    *cluster.ProcCluster
	clusterDir string

	// byCategory[c] lists the nodes whose claimed profile includes c —
	// the candidate server pool for a category-c request.
	byCategory [][]int

	colludeEdges   []collusionEdge
	slanderVictims []int

	// online[id] tracks churn presence; every entry is true when churn is
	// disabled. ratingsLost counts submissions lost to injected faults.
	online      []bool
	churnRNG    *xrand.Stream
	ratingsLost int

	// pending buffers ratings bound for the manager overlay within one query
	// cycle; flushRatings ships the whole buffer via SubmitBatch — one
	// mailbox message per shard instead of one round trip per rating. Unused
	// (nil) when the run has no overlay.
	pending []rating.Rating

	// inner is the bare reputation engine (the same object Engine is, or
	// wraps) — the handle state snapshots export from and import into.
	inner reputation.Engine

	// Durability layer (all zero without Config.StateDir). seq numbers every
	// generated rating, the WAL-replay dedupe key; simWAL is the run-wide
	// rating journal of the direct-ledger path (Managers mode journals per
	// shard inside the overlay instead); resume holds the interval-boundary
	// snapshot found at construction, applied at the top of Run; savedEvents
	// accumulates the audit events drained into checkpoints so the final
	// stream spans the whole (possibly multi-process) run.
	seq         uint64
	simWAL      *persist.WAL
	resume      *runState
	savedEvents []event.Event

	// haltAt, when non-nil, abandons the run right before executing query
	// cycle qc of simulation cycle cycle — the crash-restart tests' stand-in
	// for the process dying mid-interval (WAL appends are already flushed to
	// the OS, exactly what a kill -9 would leave behind).
	haltAt *haltPoint

	root *xrand.Stream
}

// haltPoint is the crash-injection coordinate of the haltAt test hook.
type haltPoint struct{ cycle, qc int }

// NewNetwork constructs the experiment per Config. Construction is
// deterministic in Config.Seed.
func NewNetwork(cfg Config) (*Network, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	root := xrand.New(cfg.Seed)
	n := &Network{
		Cfg:     cfg,
		Graph:   socialgraph.New(cfg.NumNodes),
		Tracker: interest.NewTracker(cfg.NumNodes),
		Ledger:  rating.NewLedger(cfg.NumNodes),
		root:    root,
	}
	n.buildNodes(root.SplitString("nodes"))
	// Collusion links are wired before the random topology so the
	// controlled relationship counts and distances cannot be perturbed by
	// pre-existing random edges (buildTopology skips adjacent pairs).
	n.wireCollusion(root.SplitString("collusion"))
	n.buildTopology(root.SplitString("topology"))
	if cfg.FalsifiedSocialInfo {
		n.falsifyProfiles(root.SplitString("falsify"))
	}
	n.indexCategories()
	n.buildEngine()
	if err := n.buildOverlay(); err != nil {
		return nil, err
	}
	if cfg.StateDir != "" {
		if err := n.initPersist(); err != nil {
			if n.Overlay != nil {
				n.Overlay.Close()
			}
			return nil, err
		}
	}
	n.online = make([]bool, cfg.NumNodes)
	for i := range n.online {
		n.online[i] = true
	}
	n.churnRNG = root.SplitString("churn")
	return n, nil
}

// buildNodes draws each peer's type, QoS, activity and interest profile.
func (n *Network) buildNodes(rng *xrand.Stream) {
	cfg := n.Cfg
	n.Nodes = make([]*Node, cfg.NumNodes)
	n.Sets = make([]interest.Set, cfg.NumNodes)
	for id := 0; id < cfg.NumNodes; id++ {
		nodeRNG := rng.Split(uint64(id))
		typ := cfg.Type(id)
		good := cfg.NormalGood
		switch typ {
		case Pretrusted:
			good = cfg.PretrustedGood
		case Colluder:
			good = cfg.ColluderGood
		}
		k := nodeRNG.IntRange(cfg.InterestsPer.Lo, cfg.InterestsPer.Hi)
		// Section 5.1 gives colluders "less common interests": collusion
		// partners draw from disjoint halves of the category space (even
		// colluder index → lower half, odd → upper half; boost targets are
		// chosen with opposite parity), so partner interest similarity is
		// low by construction as in the paper's setup.
		var excluded func(int) bool
		if typ == Colluder {
			half := cfg.NumInterests / 2
			lowerHalf := (id-cfg.NumPretrusted)%2 == 0
			excluded = func(c int) bool {
				if lowerHalf {
					return c >= half
				}
				return c < half
			}
			if limit := half; k > limit {
				k = limit
			}
		}
		cats := nodeRNG.SampleWithout(cfg.NumInterests, k, excluded)
		list := make([]interest.Category, k)
		set := interest.Set{}
		for i, c := range cats {
			list[i] = interest.Category(c)
			set.Add(interest.Category(c))
		}
		n.Nodes[id] = &Node{
			ID:           id,
			Type:         typ,
			Good:         good,
			Activity:     nodeRNG.FloatRange(cfg.Activity.Lo, cfg.Activity.Hi),
			Interests:    set,
			InterestList: list,
			rng:          nodeRNG.SplitString("run"),
		}
		n.Sets[id] = set
	}
}

// buildTopology wires the random friendship graph with homophily bias:
// each node befriends FriendsPerNode peers, preferring interest neighbors,
// each friendship carrying RelationshipsNormal typed relationships. When
// ColluderDistance > 1, colluders receive no random friendships so the
// controlled collusion distance of wireCollusion holds.
func (n *Network) buildTopology(rng *xrand.Stream) {
	cfg := n.Cfg
	kinds := []socialgraph.RelationshipKind{
		socialgraph.Friendship, socialgraph.Classmate,
		socialgraph.Colleague, socialgraph.Kinship,
	}
	// Precompute interest-neighbor lists on true profiles.
	interestNeighbors := make([][]int, cfg.NumNodes)
	for c := 0; c < cfg.NumInterests; c++ {
		var members []int
		for id, node := range n.Nodes {
			if node.Interests.Contains(interest.Category(c)) {
				members = append(members, id)
			}
		}
		for _, id := range members {
			interestNeighbors[id] = append(interestNeighbors[id], members...)
		}
	}
	skipRandom := func(id int) bool {
		return cfg.ColluderDistance > 1 && cfg.Type(id) == Colluder
	}
	for id := 0; id < cfg.NumNodes; id++ {
		if skipRandom(id) {
			continue
		}
		nodeRNG := rng.Split(uint64(id))
		want := nodeRNG.IntRange(cfg.FriendsPerNode.Lo, cfg.FriendsPerNode.Hi)
		for k := 0; k < want; k++ {
			var friend int
			if nodeRNG.Bool(cfg.HomophilyBias) && len(interestNeighbors[id]) > 0 {
				friend = interestNeighbors[id][nodeRNG.Intn(len(interestNeighbors[id]))]
			} else {
				friend = nodeRNG.Intn(cfg.NumNodes)
			}
			if friend == id || skipRandom(friend) || n.Graph.Adjacent(socialgraph.NodeID(id), socialgraph.NodeID(friend)) {
				continue
			}
			rels := nodeRNG.IntRange(cfg.RelationshipsNormal.Lo, cfg.RelationshipsNormal.Hi)
			for r := 0; r < rels; r++ {
				n.Graph.AddRelationship(socialgraph.NodeID(id), socialgraph.NodeID(friend),
					socialgraph.Relationship{Kind: kinds[nodeRNG.Intn(len(kinds))]})
			}
		}
	}
}

// addCollusionLink creates the social tie between collusion partners. At
// distance 1 it is a direct multi-relationship edge; at 2 or 3 the partners
// connect through dedicated normal intermediaries.
func (n *Network) addCollusionLink(a, b int, rng *xrand.Stream) {
	cfg := n.Cfg
	relCount := func() int {
		if cfg.FalsifiedSocialInfo {
			// Section 5.8: colluders falsify down to one relationship.
			return 1
		}
		return rng.IntRange(cfg.RelationshipsCollude.Lo, cfg.RelationshipsCollude.Hi)
	}
	link := func(x, y int, rels int) {
		if n.Graph.Adjacent(socialgraph.NodeID(x), socialgraph.NodeID(y)) {
			return
		}
		for r := 0; r < rels; r++ {
			n.Graph.AddRelationship(socialgraph.NodeID(x), socialgraph.NodeID(y),
				socialgraph.Relationship{Kind: socialgraph.Friendship})
		}
	}
	switch cfg.ColluderDistance {
	case 1:
		link(a, b, relCount())
	default:
		// Chain through ColluderDistance−1 distinct normal peers.
		prev := a
		for hop := 1; hop < cfg.ColluderDistance; hop++ {
			mid := n.randomNormalNode(rng)
			for mid == prev || mid == b {
				mid = n.randomNormalNode(rng)
			}
			link(prev, mid, 1)
			prev = mid
		}
		link(prev, b, 1)
	}
}

func (n *Network) randomNormalNode(rng *xrand.Stream) int {
	cfg := n.Cfg
	lo := cfg.NumPretrusted + cfg.NumColluders
	return lo + rng.Intn(cfg.NumNodes-lo)
}

// wireCollusion builds the collusion edges for the configured model and the
// compromised-pretrusted extension.
func (n *Network) wireCollusion(rng *xrand.Stream) {
	cfg := n.Cfg
	colluders := cfg.ColluderIDs()
	ratings := func() int {
		return rng.IntRange(cfg.CollusionRatings.Lo, cfg.CollusionRatings.Hi)
	}
	switch cfg.Collusion {
	case NoCollusion:
		// No rating collusion; malicious peers only serve low QoS.
	case PCM:
		for i := 0; i+1 < len(colluders); i += 2 {
			a, b := colluders[i], colluders[i+1]
			n.addCollusionLink(a, b, rng)
			r := ratings()
			n.colludeEdges = append(n.colludeEdges,
				collusionEdge{From: a, To: b, Ratings: r},
				collusionEdge{From: b, To: a, Ratings: r},
			)
		}
	case MCM, MMM:
		boosted := make([]int, cfg.NumBoosted)
		perm := rng.Perm(len(colluders))
		for i := range boosted {
			boosted[i] = colluders[perm[i]]
		}
		isBoosted := make(map[int]bool, len(boosted))
		for _, b := range boosted {
			isBoosted[b] = true
		}
		for _, c := range colluders {
			if isBoosted[c] {
				continue
			}
			// Prefer a boosted target of opposite interest parity so the
			// booster/boosted pair shares few interests (Section 5.1).
			opposite := make([]int, 0, len(boosted))
			for _, b := range boosted {
				if (b-c)%2 != 0 {
					opposite = append(opposite, b)
				}
			}
			pool := boosted
			if len(opposite) > 0 {
				pool = opposite
			}
			target := pool[rng.Intn(len(pool))]
			n.addCollusionLink(c, target, rng)
			back := 0
			if cfg.Collusion == MMM {
				back = cfg.MMMBackRatings
			}
			n.colludeEdges = append(n.colludeEdges,
				collusionEdge{From: c, To: target, Ratings: ratings(), Back: back})
		}
	}
	// Slander extension: each colluder floods a high-similarity normal
	// victim with negative ratings — the network-scale B4 attack.
	if cfg.SlanderVictims > 0 {
		n.wireSlander(rng, colluders)
	}
	// Compromised pretrusted peers each pick a colluder and collude
	// pair-wise at the forward rating frequency (Figures 10 and 15).
	if cfg.CompromisedPretrusted > 0 {
		perm := rng.Perm(cfg.NumPretrusted)
		for i := 0; i < cfg.CompromisedPretrusted; i++ {
			p := perm[i]
			c := colluders[rng.Intn(len(colluders))]
			n.addCollusionLink(p, c, rng)
			r := cfg.CollusionRatings.Hi
			if r == 0 {
				r = 20
			}
			n.colludeEdges = append(n.colludeEdges,
				collusionEdge{From: p, To: c, Ratings: r},
				collusionEdge{From: c, To: p, Ratings: r},
			)
		}
	}
}

// falsifyProfiles implements Section 5.8: every colluder publishes an
// identical fabricated interest profile of [1,10] categories. True interests
// (and therefore true request behavior) are unchanged.
func (n *Network) falsifyProfiles(rng *xrand.Stream) {
	cfg := n.Cfg
	k := rng.IntRange(1, 10)
	if k > cfg.NumInterests {
		k = cfg.NumInterests
	}
	fake := interest.Set{}
	for _, c := range rng.SampleWithout(cfg.NumInterests, k, nil) {
		fake.Add(interest.Category(c))
	}
	for _, id := range cfg.ColluderIDs() {
		n.Sets[id] = fake
	}
}

// indexCategories builds the per-category server candidate pools from the
// claimed profiles (requests are routed by what peers advertise).
func (n *Network) indexCategories() {
	n.byCategory = make([][]int, n.Cfg.NumInterests)
	for id := range n.Nodes {
		for _, c := range n.Sets[id].Categories() {
			n.byCategory[c] = append(n.byCategory[c], id)
		}
	}
}

// buildEngine instantiates the reputation engine and optional SocialTrust
// wrapper.
func (n *Network) buildEngine() {
	cfg := n.Cfg
	var inner reputation.Engine
	switch cfg.Engine {
	case EngineEBay:
		inner = ebay.New(cfg.NumNodes)
	case EngineTrustGuard:
		inner = trustguard.New(trustguard.Config{NumNodes: cfg.NumNodes})
	default:
		inner = eigentrust.New(eigentrust.Config{
			NumNodes:       cfg.NumNodes,
			Pretrusted:     cfg.PretrustedIDs(),
			PretrustWeight: cfg.PretrustMix,
			Workers:        cfg.Workers,
			FullRecompute:  cfg.FullRecompute,
		})
	}
	n.inner = inner
	if !cfg.SocialTrust {
		n.Engine = inner
		return
	}
	fc := cfg.Filter
	fc.NumNodes = cfg.NumNodes
	fc.FullRecompute = cfg.FullRecompute
	if fc.Workers == 0 {
		fc.Workers = cfg.Workers
	}
	if cfg.FalsifiedSocialInfo {
		// Section 4.4 hardening: weighted relationships and
		// request-weighted similarity when profiles may be fabricated.
		fc.Closeness = socialgraph.ClosenessParams{Weighted: true, Lambda: 0.75, MaxPathHops: 6}
		fc.WeightedSimilarity = true
	}
	st := core.New(fc, n.Graph, n.Sets, n.Tracker, inner)
	n.Engine = st
	n.Filter = st
}

// buildOverlay fronts the engine with a resource-manager overlay when the
// configuration asks for one. Construction cannot fail here: the manager
// count was validated against the node count already.
func (n *Network) buildOverlay() error {
	if n.Cfg.Managers <= 0 {
		return nil
	}
	var opts manager.Options
	if n.Cfg.Faults.Enabled() {
		plan, err := fault.NewPlan(n.Cfg.Faults, n.Cfg.Managers)
		if err != nil {
			return err
		}
		n.FaultPlan = plan
		opts.Fault = plan
		// Retry backoff at simulation time-scale: a paper-geometry run under
		// 10% drop retries hundreds of thousands of deliveries, and the
		// overlay's production default (200µs doubling) would dominate wall
		// time with sleeps that model no simulated quantity.
		opts.RetryBackoff = 20 * time.Microsecond
		// Delivery timeouts are a liveness backstop here, not a simulated
		// quantity: injected drops already surface as deterministic
		// ErrTimeout verdicts, while a *spurious* wall-clock timeout (the
		// production 5ms default firing on a loaded machine or under the
		// race detector) adds extra delivery attempts, and every attempt
		// draws from the per-shard fault-verdict stream — shifting it
		// diverges reputations run-to-run. Generous bounds keep the
		// deadlock protection while leaving the seeded plan as the only
		// source of loss. Down shards are detected via their down channel,
		// never by waiting out these deadlines, so chaos runs don't slow.
		opts.SubmitTimeout = 2 * time.Second
		opts.QueryTimeout = 2 * time.Second
		opts.DrainTimeout = 30 * time.Second
	}
	if n.Cfg.StateDir != "" {
		// Shard WALs live in their own subdirectory so the run-level
		// snapshot and the per-shard journals cannot collide.
		opts.StateDir = filepath.Join(n.Cfg.StateDir, "shards")
	}
	if n.Cfg.Cluster > 0 {
		// Out-of-process shards: spawn the worker fleet and route every
		// shard through its socket transport. Workers journal to their own
		// WALs under a temporary root so a killed-and-respawned worker
		// recovers its acknowledged tail.
		dir, err := os.MkdirTemp("", "stclst")
		if err != nil {
			return err
		}
		pc, err := cluster.Spawn(cluster.SpawnOptions{
			Workers:  n.Cfg.Cluster,
			Shards:   n.Cfg.Managers,
			StateDir: dir,
		})
		if err != nil {
			_ = os.RemoveAll(dir)
			return err
		}
		n.cluster = pc
		n.clusterDir = dir
		opts.Transport = pc.Client()
	}
	o, err := manager.NewWithOptions(n.Cfg.NumNodes, n.Cfg.Managers, n.Engine, opts)
	if err != nil {
		n.closeCluster()
		return err
	}
	n.Overlay = o
	return nil
}

// closeCluster tears down the worker fleet and its WAL directory. Safe to
// call repeatedly; must run only after the overlay has closed (the transport
// is dead afterwards).
func (n *Network) closeCluster() {
	if n.cluster != nil {
		_ = n.cluster.Close()
		n.cluster = nil
	}
	if n.clusterDir != "" {
		if os.Getenv("STSIM_KEEP_CLUSTER_DIR") == "" {
			_ = os.RemoveAll(n.clusterDir)
		} else {
			fmt.Fprintf(os.Stderr, "cluster dir kept: %s\n", n.clusterDir)
		}
		n.clusterDir = ""
	}
}

// wireSlander builds the negative-collusion edges: each colluder attacks a
// genuine business competitor — a normal peer sharing at least 70% interest
// similarity with it (the paper's B4 premise) — flooding it with negative
// ratings at the collusion frequency. At most SlanderVictims distinct
// victims are adopted; colluders without a sufficiently similar competitor
// do not attack.
func (n *Network) wireSlander(rng *xrand.Stream, colluders []int) {
	cfg := n.Cfg
	const minSim = 0.7
	freq := cfg.CollusionRatings.Hi
	if freq == 0 {
		freq = 20
	}
	var victims []int
	sim := func(a, b int) float64 {
		return interest.Similarity(n.Nodes[a].Interests, n.Nodes[b].Interests)
	}
	for _, c := range colluders {
		// Prefer an already-adopted victim the colluder competes with.
		best, bestSim := -1, minSim
		for _, v := range victims {
			if s := sim(c, v); s >= bestSim {
				best, bestSim = v, s
			}
		}
		// Otherwise scout for a fresh competitor if the pool has room.
		if best < 0 && len(victims) < cfg.SlanderVictims {
			for tries := 0; tries < 64; tries++ {
				v := n.randomNormalNode(rng)
				if s := sim(c, v); s >= bestSim {
					best, bestSim = v, s
				}
			}
			if best >= 0 {
				victims = append(victims, best)
			}
		}
		if best < 0 {
			continue
		}
		n.colludeEdges = append(n.colludeEdges, collusionEdge{
			From: c, To: best, Ratings: freq, Value: -1,
		})
	}
	n.slanderVictims = victims
}

// SlanderVictimIDs returns the normal peers targeted by the slander
// extension (empty unless Config.SlanderVictims > 0).
func (n *Network) SlanderVictimIDs() []int {
	return append([]int(nil), n.slanderVictims...)
}

// startHoneymoon puts an oscillating colluder into its high-QoS build-up
// phase.
func (n *Network) startHoneymoon(node *Node) {
	high := n.Cfg.OscillationHighQoS
	if high == 0 {
		high = 0.95
	}
	node.Good = high
	// The counter decrements at the start of each cycle, so +1 yields
	// exactly OscillationCycle full cycles of good behavior.
	node.honeymoon = n.Cfg.OscillationCycle + 1
}

// whitewash re-enters a colluder under a fresh identity in the same ID
// slot: every engine and filter aggregate about it is forgotten, its social
// edges are torn down and rebuilt (fresh random friendships plus its
// collusion links — the clique re-friends instantly), its request history
// clears, and, when oscillation is configured, a new honeymoon begins. Its
// true interests stay (same human, new account), which keeps the category
// index valid.
func (n *Network) whitewash(id int) {
	cfg := n.Cfg
	node := n.Nodes[id]
	n.Engine.ResetNode(id)
	n.Graph.RemoveNodeEdges(socialgraph.NodeID(id))
	n.Tracker.ResetNode(id)

	// Fresh random friendships, drawn from the node's own stream.
	rng := node.rng
	kinds := []socialgraph.RelationshipKind{
		socialgraph.Friendship, socialgraph.Classmate,
		socialgraph.Colleague, socialgraph.Kinship,
	}
	want := rng.IntRange(cfg.FriendsPerNode.Lo, cfg.FriendsPerNode.Hi)
	for k := 0; k < want; k++ {
		friend := rng.Intn(cfg.NumNodes)
		if friend == id || n.Graph.Adjacent(socialgraph.NodeID(id), socialgraph.NodeID(friend)) {
			continue
		}
		rels := rng.IntRange(cfg.RelationshipsNormal.Lo, cfg.RelationshipsNormal.Hi)
		for r := 0; r < rels; r++ {
			n.Graph.AddRelationship(socialgraph.NodeID(id), socialgraph.NodeID(friend),
				socialgraph.Relationship{Kind: kinds[rng.Intn(len(kinds))]})
		}
	}
	// The clique re-establishes its collusion ties.
	for _, e := range n.colludeEdges {
		if e.From == id || e.To == id {
			n.addCollusionLink(e.From, e.To, rng)
		}
	}
	if cfg.OscillationCycle > 0 && node.Type == Colluder {
		n.startHoneymoon(node)
	}
}

// churnStep applies one simulation cycle's churn transitions: online
// non-pretrusted peers depart, offline peers rejoin — some under a fresh
// identity (whitewash-rejoin). Returns the cycle's departure and rejoin
// counts.
func (n *Network) churnStep(res *Result) (departed, rejoined int) {
	ch := n.Cfg.Churn
	for id := n.Cfg.NumPretrusted; id < n.Cfg.NumNodes; id++ {
		if n.online[id] {
			if n.churnRNG.Bool(ch.DepartPerCycle) {
				n.online[id] = false
				departed++
			}
			continue
		}
		if n.churnRNG.Bool(ch.RejoinPerCycle) {
			n.online[id] = true
			rejoined++
			if ch.WhitewashFraction > 0 && n.churnRNG.Bool(ch.WhitewashFraction) {
				n.whitewash(id)
				res.Churn.WhitewashRejoins++
				mChurnWash.Inc()
			}
		}
	}
	res.Churn.Departures += departed
	res.Churn.Rejoins += rejoined
	mChurnDepart.Add(int64(departed))
	mChurnRejoin.Add(int64(rejoined))
	return departed, rejoined
}

// onlineCount reports the currently online population.
func (n *Network) onlineCount() int {
	c := 0
	for _, up := range n.online {
		if up {
			c++
		}
	}
	return c
}

// ColluderIDs forwards the configured colluder ID set.
func (n *Network) ColluderIDs() []int { return n.Cfg.ColluderIDs() }

// GroundTruth serializes the run's collusion truth for the decision-audit
// layer: node roles plus every directed collusion rating edge (MMM
// back-rating edges expand into their own directed entries).
func (n *Network) GroundTruth() audit.GroundTruth {
	cfg := n.Cfg
	gt := audit.GroundTruth{
		NumNodes:              cfg.NumNodes,
		Model:                 cfg.Collusion.String(),
		Engine:                n.Engine.Name(),
		Seed:                  cfg.Seed,
		Pretrusted:            cfg.PretrustedIDs(),
		Colluders:             cfg.ColluderIDs(),
		CompromisedPretrusted: n.CompromisedIDs(),
		SlanderVictims:        n.SlanderVictimIDs(),
	}
	for i := range n.colludeEdges {
		e := &n.colludeEdges[i]
		neg := e.value() < 0
		gt.Edges = append(gt.Edges, audit.TruthEdge{From: e.From, To: e.To, Negative: neg})
		if e.Back > 0 {
			gt.Edges = append(gt.Edges, audit.TruthEdge{From: e.To, To: e.From, Negative: neg})
		}
	}
	return gt
}

// CompromisedIDs returns the pretrusted nodes wired into the collusion.
func (n *Network) CompromisedIDs() []int {
	seen := map[int]bool{}
	var out []int
	for _, e := range n.colludeEdges {
		for _, id := range []int{e.From, e.To} {
			if n.Cfg.Type(id) == Pretrusted && !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
		}
	}
	return out
}
