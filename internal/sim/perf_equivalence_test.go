package sim

import (
	"reflect"
	"testing"

	"socialtrust/internal/audit"
	"socialtrust/internal/core"
	"socialtrust/internal/interest"
	"socialtrust/internal/obs/event"
	"socialtrust/internal/reputation/eigentrust"
	"socialtrust/internal/xrand"
)

// TestAdjustWarmCacheBitIdentical pins the central correctness contract of
// the signal cache: on a quiescent graph, an Adjust pass served from the
// epoch-versioned cache must be bit-identical — adjusted snapshot and report
// alike — to the same pass computed from scratch by a fresh filter instance.
// The traffic comes from real collusion wiring so all three models (PCM,
// MCM, MMM) exercise the cache with their distinctive pair structure.
func TestAdjustWarmCacheBitIdentical(t *testing.T) {
	for _, model := range []CollusionModel{PCM, MCM, MMM} {
		t.Run(model.String(), func(t *testing.T) {
			cfg := smallConfig(model, EngineEigenTrust, 0.4, true)
			n, err := NewNetwork(cfg)
			if err != nil {
				t.Fatal(err)
			}

			// One interval of mixed traffic: the model's collusion spam
			// plus random honest ratings so normal pairs populate the
			// baseline distribution.
			rng := xrand.New(7)
			for cycle := 0; cycle < cfg.QueryCycles; cycle++ {
				n.collude(cycle)
				for k := 0; k < 40; k++ {
					i := rng.Intn(cfg.NumNodes)
					j := rng.Intn(cfg.NumNodes)
					if i == j {
						continue
					}
					n.record(i, j, 1, cycle, interest.Category(rng.Intn(4)))
				}
			}
			snap := n.Ledger.EndInterval()
			if len(snap.Ratings) == 0 {
				t.Fatal("interval produced no ratings")
			}

			// Two filters over the same graph/sets/tracker, each with its
			// own (identically configured, untouched) inner engine.
			mk := func() *core.SocialTrust {
				fc := cfg.Filter
				fc.NumNodes = cfg.NumNodes
				fc.Workers = cfg.Workers
				inner := eigentrust.New(eigentrust.Config{
					NumNodes:       cfg.NumNodes,
					Pretrusted:     cfg.PretrustedIDs(),
					PretrustWeight: cfg.PretrustMix,
					Workers:        cfg.Workers,
				})
				return core.New(fc, n.Graph, n.Sets, n.Tracker, inner)
			}

			cached := mk()
			coldOut, coldRep := cached.Adjust(snap) // cold: populates the cache
			warmOut, warmRep := cached.Adjust(snap) // warm: served from the cache

			fresh := mk()
			directOut, directRep := fresh.Adjust(snap) // no cache at all

			if !reflect.DeepEqual(coldOut, directOut) || !reflect.DeepEqual(coldRep, directRep) {
				t.Fatal("cold cache-populating pass diverges from the direct pass")
			}
			if !reflect.DeepEqual(warmOut, directOut) {
				t.Fatal("warm cache-served snapshot diverges from the direct pass")
			}
			if !reflect.DeepEqual(warmRep, directRep) {
				t.Fatalf("warm cache-served report diverges from the direct pass:\nwarm:   %+v\ndirect: %+v", warmRep, directRep)
			}

			// A graph mutation invalidates the cache; the next pass must
			// again agree with a from-scratch instance on the new graph.
			n.Graph.RecordInteraction(0, 1, 1)
			invOut, invRep := cached.Adjust(snap)
			after := mk()
			afterOut, afterRep := after.Adjust(snap)
			if !reflect.DeepEqual(invOut, afterOut) || !reflect.DeepEqual(invRep, afterRep) {
				t.Fatal("post-invalidation pass diverges from a fresh instance on the mutated graph")
			}
		})
	}
}

// TestFullSimWorkerCountBitIdentity is the scale-out acceptance for the whole
// pipeline: for each collusion model, a complete managed run (overlay batch
// ingest, SocialTrust adjust, EigenTrust iteration, flight recorder on) with
// Workers=1 must be byte-identical to Workers=8 — reputations, per-cycle
// history, the ground-truth detection report, and the full audit event
// stream (wall-clock fields excluded: they are the only nondeterministic
// outputs by design).
func TestFullSimWorkerCountBitIdentity(t *testing.T) {
	type outcome struct {
		res    *Result
		report audit.Report
		events []event.Event
	}
	run := func(t *testing.T, model CollusionModel, workers int) outcome {
		cfg := smallConfig(model, EngineEigenTrust, 0.4, true)
		cfg.Workers = workers
		cfg.Managers = 4
		net, err := NewNetwork(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rec := event.Enable(auditCapacity(cfg))
		defer event.Disable()
		res := net.Run()
		events := rec.Drain()
		if len(events) == 0 {
			t.Fatal("run recorded no audit events")
		}
		for i := range events {
			if c := events[i].Cycle; c != nil {
				c.QPS, c.WallSeconds = 0, 0
			}
			if m := events[i].Manager; m != nil {
				m.Seconds = 0
			}
		}
		return outcome{res: res, report: audit.Score(net.GroundTruth(), events), events: events}
	}
	for _, model := range []CollusionModel{PCM, MCM, MMM} {
		t.Run(model.String(), func(t *testing.T) {
			ref := run(t, model, 1)
			got := run(t, model, 8)
			if !reflect.DeepEqual(got.res.FinalReputations, ref.res.FinalReputations) {
				t.Fatal("final reputations diverge between Workers=1 and Workers=8")
			}
			if !reflect.DeepEqual(got.res.History, ref.res.History) {
				t.Fatal("reputation history diverges between Workers=1 and Workers=8")
			}
			if !reflect.DeepEqual(got.report, ref.report) {
				t.Fatalf("detection report diverges:\nworkers=8: %+v\nworkers=1: %+v", got.report, ref.report)
			}
			if !reflect.DeepEqual(got.events, ref.events) {
				t.Fatal("audit event streams diverge between Workers=1 and Workers=8")
			}
		})
	}
}
