package sim

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"socialtrust/internal/audit"
	"socialtrust/internal/fault"
	"socialtrust/internal/obs"
	"socialtrust/internal/obs/event"
	"socialtrust/internal/obs/health"
)

// TestFullSimHealthBitIdentity is the determinism acceptance for the ops
// plane: for each collusion model, clean and under churn+faults, a complete
// managed run with the health sampler ticking concurrently must be
// byte-identical to the same run without it — reputations, per-cycle
// history, the detection report, and the deterministic audit streams on
// disk. The sampler only reads state, so the sole permitted difference is
// the presence of health events, which the audit layer splits into their own
// file. Seq is assigned at record time and asynchronous health events shift
// it for later deterministic events, so Seq is renumbered per-kind before
// comparison — payload content and order are the pinned contract.
func TestFullSimHealthBitIdentity(t *testing.T) {
	type outcome struct {
		res    *Result
		report audit.Report
		dir    string
	}
	run := func(t *testing.T, model CollusionModel, chaos, healthOn bool) outcome {
		cfg := smallConfig(model, EngineEigenTrust, 0.4, true)
		cfg.Managers = 4
		if chaos {
			cfg.Churn = DefaultChurn()
			cfg.Faults = fault.Config{Seed: 7, Drop: 0.05, CrashRate: 0.2}
		}
		net, err := NewNetwork(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rec := event.Enable(auditCapacity(cfg))
		defer event.Disable()
		obs.SetEnabled(true)
		defer obs.SetEnabled(false)
		if healthOn {
			s := health.Start(health.Config{Interval: time.Millisecond, Window: 64})
			defer func() {
				if s.Samples() == 0 {
					t.Error("health-enabled run took no samples")
				}
				s.Stop()
			}()
		}
		res := net.Run()
		events := rec.Drain()
		if len(events) == 0 {
			t.Fatal("run recorded no audit events")
		}
		// Strip wall-clock observations, drop the async health stream, and
		// renumber the deterministic events (their Seq shifts with health-event
		// interleaving; their payloads and order must not).
		det := events[:0]
		for i := range events {
			if events[i].Health != nil {
				continue
			}
			if c := events[i].Cycle; c != nil {
				c.QPS, c.WallSeconds = 0, 0
				c.Phases = nil
			}
			if m := events[i].Manager; m != nil {
				m.Seconds = 0
			}
			events[i].Seq = uint64(len(det) + 1)
			det = append(det, events[i])
		}
		dir := t.TempDir()
		if err := audit.WriteDir(dir, net.GroundTruth(), det); err != nil {
			t.Fatal(err)
		}
		return outcome{res: res, report: audit.Score(net.GroundTruth(), det), dir: dir}
	}
	for _, model := range []CollusionModel{PCM, MCM, MMM} {
		for _, chaos := range []bool{false, true} {
			name := model.String()
			if chaos {
				name += "-chaos"
			}
			t.Run(name, func(t *testing.T) {
				ref := run(t, model, chaos, false)
				got := run(t, model, chaos, true)
				if !reflect.DeepEqual(got.res.FinalReputations, ref.res.FinalReputations) {
					t.Fatal("final reputations diverge between health on and off")
				}
				if !reflect.DeepEqual(got.res.History, ref.res.History) {
					t.Fatal("reputation history diverges between health on and off")
				}
				if !reflect.DeepEqual(got.report, ref.report) {
					t.Fatalf("detection report diverges:\nhealth on:  %+v\nhealth off: %+v", got.report, ref.report)
				}
				// The deterministic audit streams must match byte for byte on
				// disk — the strongest form of "audit streams bit-identical".
				for _, file := range []string{
					audit.GroundTruthFile, audit.DecisionsFile, audit.CyclesFile, audit.ManagerFile,
				} {
					a, err := os.ReadFile(filepath.Join(ref.dir, file))
					if err != nil {
						t.Fatal(err)
					}
					b, err := os.ReadFile(filepath.Join(got.dir, file))
					if err != nil {
						t.Fatal(err)
					}
					if string(a) != string(b) {
						t.Fatalf("audit stream %s diverges between health on and off", file)
					}
				}
			})
		}
	}
}
