package sim

import "testing"

func TestOscillationSwitchesColluderQoS(t *testing.T) {
	cfg := smallConfig(PCM, EngineEBay, 0.2, false)
	cfg.OscillationCycle = 4
	net, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := net.Run()
	// After Run, colluders must be on their defected QoS.
	for _, id := range cfg.ColluderIDs() {
		if net.Nodes[id].Good != 0.2 {
			t.Fatalf("colluder %d Good = %v after defection, want 0.2", id, net.Nodes[id].Good)
		}
	}
	if res.TotalRequests == 0 {
		t.Fatal("no requests")
	}
}

func TestOscillationBuildsThenLosesReputation(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale dynamics test skipped in -short mode")
	}
	cfg := paperConfig(PCM, EngineEBay, 0.2, false)
	cfg.OscillationCycle = cfg.SimulationCycles / 2
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	colluders := cfg.ColluderIDs()
	atPeak := meanRep(res.History[cfg.OscillationCycle-1], colluders)
	atEnd := meanRep(res.FinalReputations, colluders)
	if atPeak <= 0 {
		t.Fatal("colluders built no reputation during the honest phase")
	}
	if atEnd >= atPeak {
		t.Fatalf("defection did not cost reputation: peak %v vs end %v", atPeak, atEnd)
	}
}

func TestOscillationDisabledByDefault(t *testing.T) {
	cfg := smallConfig(PCM, EngineEBay, 0.2, false)
	net, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	net.Run()
	for _, id := range cfg.ColluderIDs() {
		if net.Nodes[id].Good != 0.2 {
			t.Fatalf("colluder QoS changed without oscillation config")
		}
	}
}
