package sim

import (
	"path/filepath"
	"testing"

	"socialtrust/internal/persist"
)

// benchStateConfig scales the Section 5.1 setup to 10k nodes (preserving the
// population proportions) with a short horizon — the geometry the durability
// figures of scripts/bench.sh persist are quoted at. Closeness paths are
// capped at 3 hops, as in the pipeline benchmarks, to keep the Ωc BFS
// bounded at this size.
func benchStateConfig() Config {
	cfg := DefaultConfig(MCM, EngineEigenTrust, 0.2, true)
	cfg.NumNodes = 10_000
	cfg.NumPretrusted = 450
	cfg.NumColluders = 1500
	cfg.NumBoosted = 375
	cfg.SimulationCycles = 2
	cfg.QueryCycles = 2
	cfg.Filter.Closeness.MaxPathHops = 3
	cfg.Seed = 7
	return cfg
}

// BenchmarkSnapshotRestore10k prices one interval-boundary checkpoint round
// trip at 10k nodes: capturing the full run state, writing the snapshot
// atomically, and loading it back — the per-interval durability cost plus
// the deserialization half of a recovery.
func BenchmarkSnapshotRestore10k(b *testing.B) {
	cfg := benchStateConfig()
	cfg.SimulationCycles = 1
	cfg.StateDir = b.TempDir()
	net, err := NewNetwork(cfg)
	if err != nil {
		b.Fatal(err)
	}
	res := net.Run()
	if res == nil {
		b.Fatal("run halted")
	}
	la := make([]int, cfg.NumColluders)
	ea := make([]bool, cfg.NumColluders)
	path := filepath.Join(b.TempDir(), "snapshot.st")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := net.captureState(res, la, ea, res.FinalReputations, cfg.SimulationCycles)
		if err := persist.WriteSnapshot(path, st); err != nil {
			b.Fatal(err)
		}
		var back runState
		if err := persist.LoadSnapshot(path, &back); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(b.Elapsed().Seconds()/float64(b.N), "s/roundtrip")
}

// BenchmarkCrashRecovery10k prices a full crash restart at 10k nodes: a
// durable run dies mid-interval (leaving a snapshot plus a journaled WAL
// tail), and each iteration measures what a restarted process pays before it
// can resume — network construction, snapshot load and validation, state
// import, stream fast-forward, and WAL tail replay.
func BenchmarkCrashRecovery10k(b *testing.B) {
	cfg := benchStateConfig()
	cfg.StateDir = b.TempDir()
	crash, err := NewNetwork(cfg)
	if err != nil {
		b.Fatal(err)
	}
	crash.haltAt = &haltPoint{cycle: 1, qc: 1}
	if res := crash.Run(); res != nil {
		b.Fatal("run completed instead of halting")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net, err := NewNetwork(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res := &Result{
			ServedByType:      make(map[NodeType]int),
			ConvergenceCycles: make([]int, cfg.NumColluders),
		}
		la := make([]int, cfg.NumColluders)
		ea := make([]bool, cfg.NumColluders)
		if _, start := net.applyResume(res, la, ea); start != 1 {
			b.Fatalf("resumed at cycle %d, want 1", start)
		}
		net.abandon()
	}
	b.StopTimer()
	b.ReportMetric(b.Elapsed().Seconds()/float64(b.N), "s/recovery")
}
