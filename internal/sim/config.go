// Package sim implements the paper's P2P evaluation testbed (Section 5.1):
// an unstructured resource-sharing network of pretrusted, normal and
// colluding peers driven in query cycles and simulation cycles, with the
// three collusion models (PCM, MCM, MMM), compromised pretrusted nodes, and
// falsified social information. Query intents are computed concurrently
// across peers; all randomness derives from per-actor xrand streams so a
// given seed reproduces results exactly.
package sim

import (
	"fmt"

	"socialtrust/internal/core"
	"socialtrust/internal/fault"
)

// NodeType classifies peers per the paper's node model.
type NodeType int

// Node types. Pretrusted peers always serve authentic content, normal peers
// do so with probability 0.8, colluders with probability B.
const (
	Pretrusted NodeType = iota
	Normal
	Colluder
)

// String implements fmt.Stringer.
func (t NodeType) String() string {
	switch t {
	case Pretrusted:
		return "pretrusted"
	case Normal:
		return "normal"
	case Colluder:
		return "colluder"
	default:
		return fmt.Sprintf("NodeType(%d)", int(t))
	}
}

// CollusionModel selects one of the paper's attack structures.
type CollusionModel int

const (
	// NoCollusion runs the baseline of Figure 7: malicious peers serve
	// low-QoS content but do not rate-collude.
	NoCollusion CollusionModel = iota
	// PCM (pair-wise collusion model): colluders form mutual pairs that
	// rate each other positively at high frequency.
	PCM
	// MCM (multiple node collusion model): boosting colluders rate a small
	// set of boosted colluders; the boosted do not rate back.
	MCM
	// MMM (multiple and mutual collusion model): like MCM, but boosted
	// nodes rate their boosters back.
	MMM
)

// String implements fmt.Stringer.
func (m CollusionModel) String() string {
	switch m {
	case NoCollusion:
		return "none"
	case PCM:
		return "PCM"
	case MCM:
		return "MCM"
	case MMM:
		return "MMM"
	default:
		return fmt.Sprintf("CollusionModel(%d)", int(m))
	}
}

// EngineKind selects the underlying reputation system.
type EngineKind int

const (
	// EngineEigenTrust is the EigenTrust baseline (pretrust weight 0.5).
	EngineEigenTrust EngineKind = iota
	// EngineEBay is the eBay-style baseline.
	EngineEBay
	// EngineTrustGuard is the TrustGuard-style baseline (credibility-
	// weighted feedback with a fluctuation-penalized temporal blend) —
	// the paper's closest prior-art collusion defense, reference [12].
	EngineTrustGuard
)

// String implements fmt.Stringer.
func (k EngineKind) String() string {
	switch k {
	case EngineEigenTrust:
		return "EigenTrust"
	case EngineEBay:
		return "eBay"
	case EngineTrustGuard:
		return "TrustGuard"
	default:
		return fmt.Sprintf("EngineKind(%d)", int(k))
	}
}

// ChurnConfig models a dynamic peer population — the departure from the
// paper's static 200-node testbed that real P2P deployments force. Sessions
// are geometric: each simulation cycle, every online non-pretrusted peer
// departs with probability DepartPerCycle and every offline peer returns
// with probability RejoinPerCycle. Offline peers issue no queries, serve no
// content (zero capacity), and send no collusion ratings. Pretrusted peers
// are treated as infrastructure and never churn (the paper's trustworthy
// core). The zero ChurnConfig disables churn.
type ChurnConfig struct {
	// DepartPerCycle is the per-online-peer, per-simulation-cycle departure
	// probability (mean session length 1/DepartPerCycle cycles).
	DepartPerCycle float64
	// RejoinPerCycle is the per-offline-peer, per-cycle return probability
	// (mean offline period 1/RejoinPerCycle cycles; zero strands departed
	// peers offline for the rest of the run).
	RejoinPerCycle float64
	// WhitewashFraction is the probability a rejoining peer comes back
	// under a fresh identity (whitewash-rejoin): the engine forgets it, its
	// social edges are rebuilt, and it restarts at newcomer reputation.
	WhitewashFraction float64
}

// Enabled reports whether the configuration churns the population at all.
func (c ChurnConfig) Enabled() bool { return c.DepartPerCycle > 0 }

func (c ChurnConfig) validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"DepartPerCycle", c.DepartPerCycle},
		{"RejoinPerCycle", c.RejoinPerCycle},
		{"WhitewashFraction", c.WhitewashFraction},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("sim: churn %s %v outside [0,1]", p.name, p.v)
		}
	}
	return nil
}

// DefaultChurn is the moderate churn regime the -churn CLI flag enables:
// ~5% of online peers leave each cycle (mean session 20 cycles), offline
// peers return quickly, and one in ten returns under a fresh identity.
func DefaultChurn() ChurnConfig {
	return ChurnConfig{DepartPerCycle: 0.05, RejoinPerCycle: 0.5, WhitewashFraction: 0.1}
}

// IntRange is an inclusive [Lo,Hi] integer range parameter.
type IntRange struct{ Lo, Hi int }

// FloatRange is a [Lo,Hi) float range parameter.
type FloatRange struct{ Lo, Hi float64 }

// Config holds every Section 5.1 experiment parameter. Zero values are
// replaced by the paper's defaults in withDefaults.
type Config struct {
	NumNodes      int        // 200
	NumInterests  int        // 20 categories in the system
	InterestsPer  IntRange   // [1,10] interests per node
	NumPretrusted int        // 9 (IDs 0..8; the paper's 1..9)
	NumColluders  int        // 30 (IDs 9..38; the paper's 10..39)
	Activity      FloatRange // per-node activity probability, [0.5,1]
	Capacity      int        // 50 requests a server handles per query cycle

	QueryCycles      int // 30 query cycles per simulation cycle
	SimulationCycles int // 50

	// QoS probabilities ("B" for colluders).
	PretrustedGood float64 // 1.0
	NormalGood     float64 // 0.8
	ColluderGood   float64 // B: 0.2 or 0.6

	// SelectionThreshold is TR: only servers with reputation above it join
	// the reputation-weighted candidate pool (0.01 in the paper); when no
	// candidate qualifies the client picks uniformly (the cold-start rule).
	SelectionThreshold float64
	// Exploration is the probability a client ignores reputation and picks
	// a uniform candidate — the EigenTrust paper's ~10% exploration that
	// lets newcomers earn trust and keeps negative feedback flowing to
	// low-QoS peers. Default 0.1.
	Exploration float64
	// PretrustMix is the EigenTrust mixing weight a in
	// t ← (1−a)·Cᵀt + a·p. The paper states 0.5, but a = 0.5 forces every
	// pretrusted peer to hold ≥ a/|P| = 5.5% of all trust, which
	// contradicts the paper's own Figure 8(a) where colluders overtake
	// pretrusted peers; we default to 0.15 and expose 0.5 as an ablation.
	PretrustMix float64

	// Social topology.
	FriendsPerNode       IntRange // random friendships per node, default [3,6]
	RelationshipsNormal  IntRange // [1,2] relationships per normal friendship
	RelationshipsCollude IntRange // [3,5] per collusion edge
	// HomophilyBias is the probability a random friendship is drawn from
	// interest neighbors rather than uniformly (trace observation O6 /
	// homophily); default 0.7.
	HomophilyBias float64
	// ColluderDistance places collusion partners at the given social
	// distance (1 = direct edge, 2 or 3 = chained through intermediates,
	// used by the Figure 20 sweep). Default 1. Values > 1 suppress the
	// colluders' random friendships so the controlled distance holds.
	ColluderDistance int

	// Collusion behavior.
	Collusion             CollusionModel
	CollusionRatings      IntRange // ratings a boosting node sends per query cycle
	MMMBackRatings        int      // ratings a boosted node returns per query cycle (MMM)
	NumBoosted            int      // boosted colluders in MCM/MMM (7)
	CompromisedPretrusted int      // pretrusted nodes joining the collusion (Figures 10, 15)
	FalsifiedSocialInfo   bool     // Section 5.8: one relationship, identical fake interest profiles
	// OscillationCycle enables the oscillation (traitor) attack TrustGuard
	// was designed against: colluders serve with OscillationHighQoS for
	// this many simulation cycles (their "honeymoon"), then defect to
	// ColluderGood. Zero disables (colluders serve at ColluderGood
	// throughout). Combined with WhitewashThreshold, a whitewashed
	// colluder starts a fresh honeymoon — the repeating con.
	OscillationCycle int
	// OscillationHighQoS is the build-up phase QoS (default 0.95).
	OscillationHighQoS float64
	// WhitewashThreshold enables the whitewashing attack: at the end of
	// each simulation cycle, any colluder whose normalized reputation has
	// fallen below this value abandons its identity and re-enters fresh —
	// the engine forgets it entirely, its social edges are rebuilt, and
	// (with OscillationCycle set) it starts a new honeymoon. Zero
	// disables.
	WhitewashThreshold float64
	// SlanderVictims enables the paper's negative-rating collusion variant
	// ("similar results can be obtained for the collusion of negative
	// ratings"): that many normal peers are adopted as victims, and each
	// colluder floods its assigned victim with negative ratings at the
	// collusion frequency — the B4 pattern at network scale. Zero disables.
	SlanderVictims int

	// Reputation system.
	Engine      EngineKind
	SocialTrust bool        // wrap the engine with the SocialTrust filter
	Filter      core.Config // SocialTrust parameters (NumNodes is filled in)

	// Managers, when positive, routes every rating through a resource-
	// manager overlay of that many manager goroutines (the paper's Section
	// 4.3 architecture) instead of the in-process ledger, and drives the
	// periodic reputation update through the overlay's drain/merge/broadcast
	// path. Zero keeps the direct ledger (the default; results are
	// statistically identical but float summation order differs, so vectors
	// are not bit-equal across the two modes).
	Managers int

	// Cluster, when positive, hosts the manager shards in that many worker
	// processes (cmd/socialtrust-shardd children of this process) driven over
	// the socket transport instead of in-process goroutines. Requires
	// Managers > 0; capped at Managers. Reputations, detection tables and
	// audit streams are bit-identical to the in-process overlay. Mutually
	// exclusive with StateDir: the workers own their shards' WALs, while
	// run-state snapshots are a single-process feature.
	Cluster int

	// Churn, when enabled, applies session churn to the non-pretrusted
	// population each simulation cycle (see ChurnConfig).
	Churn ChurnConfig

	// Faults, when enabled, runs the manager overlay in fault-tolerant mode
	// against a deterministic fault-injection plan (message drops/delays/
	// duplication and shard crash/restart schedules — see internal/fault).
	// Requires Managers > 0: faults are injected at the manager mailbox
	// boundary, which the direct-ledger path does not have.
	Faults fault.Config

	// Harness.
	Seed    uint64
	Workers int // parallelism of the query-intent phase; 0 = GOMAXPROCS

	// FullRecompute disables the incremental interval engine end to end:
	// the SocialTrust signal/profile caches are bypassed and EigenTrust
	// rebuilds its trust matrix from scratch every interval. It is the
	// reference mode TestFullSimIncrementalBitIdentity pins the incremental
	// path against; production runs leave it false.
	FullRecompute bool

	// AuditDir, when non-empty, makes Run record the decision-audit trail:
	// the package-level flight recorder (internal/obs/event) is enabled for
	// the run and on completion the ground truth plus every FilterDecision,
	// CycleSeries and ManagerEvent are written to this directory in the
	// internal/audit layout, ready for cmd/socialtrust-audit. The recorder
	// is process-global, so audited runs must not execute concurrently —
	// concurrent runs would interleave their events.
	AuditDir string

	// StateDir, when non-empty, makes the run durable: every accepted rating
	// is journaled to a write-ahead log under this directory before it is
	// acknowledged (per manager shard in Managers mode, one run-wide log
	// otherwise), and a snapshot of the complete run state — ledger history,
	// social graph, reputation vectors, filter history, RNG stream positions,
	// fault-plan state and the audit event stream — is written atomically at
	// every interval boundary. A run restarted over the same directory after
	// a crash loads the last snapshot, replays the WAL tail (truncating a
	// torn final record), and resumes mid-interval, producing reputations,
	// detection tables and audit event streams bit-identical to an
	// uninterrupted run of the same seed. The directory must either be fresh
	// or have been written by the same configuration; only Workers and the
	// output directories (AuditDir/TraceDir) may differ between the original
	// and the resumed process.
	StateDir string

	// TraceDir, when non-empty, makes Run record the interval trace: the
	// package-level span recorder (internal/obs/span) is enabled for the run
	// and on completion the span stream (trace_spans.jsonl) plus a Chrome
	// trace-event export (trace_chrome.json, loadable in Perfetto) are
	// written to this directory, ready for cmd/socialtrust-trace. Pointing
	// it at AuditDir puts the spans next to events.jsonl. Like the flight
	// recorder, the span recorder is process-global: traced runs must not
	// execute concurrently. Tracing never changes results — reputations,
	// detection tables and audit streams are bit-identical with it on or off.
	TraceDir string
}

// DefaultConfig returns the paper's Section 5.1 setup with the given
// collusion model, engine, colluder QoS probability B, and SocialTrust
// toggle.
func DefaultConfig(model CollusionModel, engine EngineKind, b float64, socialTrust bool) Config {
	cfg := Config{
		NumNodes:             200,
		NumInterests:         20,
		InterestsPer:         IntRange{1, 10},
		NumPretrusted:        9,
		NumColluders:         30,
		Activity:             FloatRange{0.5, 1},
		Capacity:             50,
		QueryCycles:          30,
		SimulationCycles:     50,
		PretrustedGood:       1.0,
		NormalGood:           0.8,
		ColluderGood:         b,
		SelectionThreshold:   0.01,
		Exploration:          0.1,
		PretrustMix:          0.15,
		FriendsPerNode:       IntRange{3, 6},
		RelationshipsNormal:  IntRange{1, 2},
		RelationshipsCollude: IntRange{3, 5},
		HomophilyBias:        0.7,
		ColluderDistance:     1,
		Collusion:            model,
		MMMBackRatings:       5,
		NumBoosted:           7,
		Engine:               engine,
		SocialTrust:          socialTrust,
		Seed:                 1,
	}
	switch model {
	case PCM:
		cfg.CollusionRatings = IntRange{20, 20}
	case MCM:
		cfg.CollusionRatings = IntRange{3, 7}
	case MMM:
		cfg.CollusionRatings = IntRange{20, 20}
	}
	return cfg
}

func (c Config) withDefaults() Config {
	if c.NumNodes == 0 {
		c = DefaultConfig(c.Collusion, c.Engine, c.ColluderGood, c.SocialTrust)
	}
	if c.ColluderDistance == 0 {
		c.ColluderDistance = 1
	}
	if c.PretrustMix == 0 {
		c.PretrustMix = 0.15
	}
	if c.Workers == 0 {
		c.Workers = defaultWorkers()
	}
	return c
}

// validate rejects impossible experiment setups.
func (c Config) validate() error {
	if c.NumNodes < 2 {
		return fmt.Errorf("sim: NumNodes %d too small", c.NumNodes)
	}
	if c.NumPretrusted+c.NumColluders > c.NumNodes {
		return fmt.Errorf("sim: %d pretrusted + %d colluders exceed %d nodes",
			c.NumPretrusted, c.NumColluders, c.NumNodes)
	}
	if c.NumInterests <= 0 {
		return fmt.Errorf("sim: NumInterests must be positive")
	}
	if c.InterestsPer.Lo < 1 || c.InterestsPer.Hi > c.NumInterests || c.InterestsPer.Lo > c.InterestsPer.Hi {
		return fmt.Errorf("sim: invalid InterestsPer %+v", c.InterestsPer)
	}
	if c.QueryCycles <= 0 || c.SimulationCycles <= 0 {
		return fmt.Errorf("sim: cycles must be positive")
	}
	if c.Collusion == MCM || c.Collusion == MMM {
		if c.NumBoosted <= 0 || c.NumBoosted >= c.NumColluders {
			return fmt.Errorf("sim: NumBoosted %d invalid for %d colluders", c.NumBoosted, c.NumColluders)
		}
	}
	if c.Collusion == PCM && c.NumColluders%2 != 0 {
		return fmt.Errorf("sim: PCM requires an even colluder count, got %d", c.NumColluders)
	}
	if c.CompromisedPretrusted > c.NumPretrusted {
		return fmt.Errorf("sim: %d compromised of %d pretrusted", c.CompromisedPretrusted, c.NumPretrusted)
	}
	if c.ColluderDistance < 1 || c.ColluderDistance > 3 {
		return fmt.Errorf("sim: ColluderDistance %d outside [1,3]", c.ColluderDistance)
	}
	if normals := c.NumNodes - c.NumPretrusted - c.NumColluders; c.SlanderVictims > normals {
		return fmt.Errorf("sim: %d slander victims exceed %d normal peers", c.SlanderVictims, normals)
	}
	if c.Managers < 0 || c.Managers > c.NumNodes {
		return fmt.Errorf("sim: Managers %d invalid for %d nodes", c.Managers, c.NumNodes)
	}
	if err := c.Churn.validate(); err != nil {
		return err
	}
	if err := c.Faults.Validate(); err != nil {
		return err
	}
	if c.Faults.Enabled() && c.Managers <= 0 {
		return fmt.Errorf("sim: fault injection targets the manager overlay; set Managers > 0")
	}
	if c.Cluster < 0 {
		return fmt.Errorf("sim: Cluster %d invalid", c.Cluster)
	}
	if c.Cluster > 0 && c.Managers <= 0 {
		return fmt.Errorf("sim: Cluster hosts manager shards in worker processes; set Managers > 0")
	}
	if c.Cluster > 0 && c.StateDir != "" {
		return fmt.Errorf("sim: Cluster and StateDir are mutually exclusive (workers own their shard WALs; run-state snapshots are single-process)")
	}
	return nil
}

// Type returns the node type for a node ID under the paper's fixed layout:
// pretrusted first, then colluders, then normal peers.
func (c Config) Type(id int) NodeType {
	switch {
	case id < c.NumPretrusted:
		return Pretrusted
	case id < c.NumPretrusted+c.NumColluders:
		return Colluder
	default:
		return Normal
	}
}

// PretrustedIDs returns the pretrusted node IDs.
func (c Config) PretrustedIDs() []int {
	out := make([]int, c.NumPretrusted)
	for i := range out {
		out[i] = i
	}
	return out
}

// ColluderIDs returns the colluder node IDs.
func (c Config) ColluderIDs() []int {
	out := make([]int, c.NumColluders)
	for i := range out {
		out[i] = c.NumPretrusted + i
	}
	return out
}
