package sim

import (
	"math"
	"testing"
)

// TestOverlayModeMatchesDirect runs the same seeded experiment through the
// direct ledger and through a 4-shard resource-manager overlay. The overlay
// merge restores the ledger's deterministic global ordering, so request
// accounting must match exactly and reputations to float tolerance.
func TestOverlayModeMatchesDirect(t *testing.T) {
	cfg := DefaultConfig(PCM, EngineEigenTrust, 0.6, true)
	cfg.QueryCycles, cfg.SimulationCycles = 5, 4
	cfg.Seed = 7

	direct, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Managers = 4
	overlay, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	if direct.TotalRequests != overlay.TotalRequests {
		t.Fatalf("requests: direct %d, overlay %d", direct.TotalRequests, overlay.TotalRequests)
	}
	if direct.AuthenticServed != overlay.AuthenticServed {
		t.Fatalf("authentic: direct %d, overlay %d", direct.AuthenticServed, overlay.AuthenticServed)
	}
	for i := range direct.FinalReputations {
		if d := math.Abs(direct.FinalReputations[i] - overlay.FinalReputations[i]); d > 1e-9 {
			t.Fatalf("reputation[%d]: direct %g, overlay %g (Δ %g)",
				i, direct.FinalReputations[i], overlay.FinalReputations[i], d)
		}
	}
}

// TestOverlayConfigValidation rejects impossible manager counts.
func TestOverlayConfigValidation(t *testing.T) {
	cfg := DefaultConfig(PCM, EngineEigenTrust, 0.6, false)
	cfg.Managers = cfg.NumNodes + 1
	if _, err := Run(cfg); err == nil {
		t.Error("Managers > NumNodes should fail validation")
	}
	cfg.Managers = -1
	if _, err := Run(cfg); err == nil {
		t.Error("negative Managers should fail validation")
	}
}
