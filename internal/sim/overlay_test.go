package sim

import (
	"math"
	"testing"

	"socialtrust/internal/fault"
)

// TestOverlayModeMatchesDirect runs the same seeded experiment through the
// direct ledger and through a 4-shard resource-manager overlay. The overlay
// merge restores the ledger's deterministic global ordering, so request
// accounting must match exactly and reputations to float tolerance.
func TestOverlayModeMatchesDirect(t *testing.T) {
	cfg := DefaultConfig(PCM, EngineEigenTrust, 0.6, true)
	cfg.QueryCycles, cfg.SimulationCycles = 5, 4
	cfg.Seed = 7

	direct, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Managers = 4
	overlay, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	if direct.TotalRequests != overlay.TotalRequests {
		t.Fatalf("requests: direct %d, overlay %d", direct.TotalRequests, overlay.TotalRequests)
	}
	if direct.AuthenticServed != overlay.AuthenticServed {
		t.Fatalf("authentic: direct %d, overlay %d", direct.AuthenticServed, overlay.AuthenticServed)
	}
	for i := range direct.FinalReputations {
		if d := math.Abs(direct.FinalReputations[i] - overlay.FinalReputations[i]); d > 1e-9 {
			t.Fatalf("reputation[%d]: direct %g, overlay %g (Δ %g)",
				i, direct.FinalReputations[i], overlay.FinalReputations[i], d)
		}
	}
}

// TestFaultModeBitIdenticalToSeedOverlay proves the replica machinery free
// of observable effect when nothing is injected: the same experiment through
// the seed overlay and through fault-tolerant mode (replication, retries,
// deadlines armed via AlwaysOn, zero injected faults) must produce
// bit-identical reputation vectors — the replica ledgers mirror the
// primaries exactly and never perturb the merge.
func TestFaultModeBitIdenticalToSeedOverlay(t *testing.T) {
	cfg := DefaultConfig(PCM, EngineEigenTrust, 0.6, true)
	cfg.QueryCycles, cfg.SimulationCycles = 5, 4
	cfg.Seed = 7
	cfg.Managers = 4

	seed, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = fault.Config{AlwaysOn: true}
	hardened, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if seed.TotalRequests != hardened.TotalRequests {
		t.Fatalf("requests: seed %d, fault-mode %d", seed.TotalRequests, hardened.TotalRequests)
	}
	for i := range seed.FinalReputations {
		if seed.FinalReputations[i] != hardened.FinalReputations[i] {
			t.Fatalf("reputation[%d]: seed overlay %g, fault-mode overlay %g (not bit-identical)",
				i, seed.FinalReputations[i], hardened.FinalReputations[i])
		}
	}
	if hardened.RatingsLost != 0 || hardened.PartialDrains != 0 || hardened.ReplicaDrains != 0 {
		t.Fatalf("AlwaysOn plan with zero rates injected faults: %+v", hardened)
	}
}

// TestOverlayConfigValidation rejects impossible manager counts.
func TestOverlayConfigValidation(t *testing.T) {
	cfg := DefaultConfig(PCM, EngineEigenTrust, 0.6, false)
	cfg.Managers = cfg.NumNodes + 1
	if _, err := Run(cfg); err == nil {
		t.Error("Managers > NumNodes should fail validation")
	}
	cfg.Managers = -1
	if _, err := Run(cfg); err == nil {
		t.Error("negative Managers should fail validation")
	}
}
