package sim

import (
	"testing"

	"socialtrust/internal/interest"
)

// --- chooseServer unit tests ---

func selectionNetwork(t *testing.T) *Network {
	t.Helper()
	cfg := smallConfig(NoCollusion, EngineEBay, 0.4, false)
	net, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestChooseServerPrefersAboveThreshold(t *testing.T) {
	net := selectionNetwork(t)
	reps := make([]float64, net.Cfg.NumNodes)
	caps := make([]int, net.Cfg.NumNodes)
	for i := range caps {
		caps[i] = 1
	}
	reps[7] = 0.5 // only node 7 qualifies
	it := &intent{client: 0, order: []int{3, 5, 7, 9}}
	if got := net.chooseServer(it, caps, reps); got != 7 {
		t.Fatalf("chooseServer = %d, want 7 (only above-TR candidate)", got)
	}
}

func TestChooseServerSkipsSelfAndExhausted(t *testing.T) {
	net := selectionNetwork(t)
	reps := make([]float64, net.Cfg.NumNodes)
	caps := make([]int, net.Cfg.NumNodes)
	reps[0], reps[3] = 0.5, 0.5
	caps[3] = 0 // exhausted
	caps[5] = 1
	it := &intent{client: 0, order: []int{0, 3, 5}}
	// 0 is self, 3 has no capacity; fallback picks max-rep with capacity: 5.
	if got := net.chooseServer(it, caps, reps); got != 5 {
		t.Fatalf("chooseServer = %d, want 5", got)
	}
}

func TestChooseServerColdStartPicksMaxReputation(t *testing.T) {
	net := selectionNetwork(t)
	reps := make([]float64, net.Cfg.NumNodes)
	caps := make([]int, net.Cfg.NumNodes)
	for i := range caps {
		caps[i] = 1
	}
	// Nobody above TR; node 9 has the highest sub-threshold reputation.
	reps[3], reps[9] = 0.001, 0.005
	it := &intent{client: 0, order: []int{3, 9, 4}}
	if got := net.chooseServer(it, caps, reps); got != 9 {
		t.Fatalf("cold-start chooseServer = %d, want 9 (max reputation)", got)
	}
}

func TestChooseServerExploreIgnoresReputation(t *testing.T) {
	net := selectionNetwork(t)
	reps := make([]float64, net.Cfg.NumNodes)
	caps := make([]int, net.Cfg.NumNodes)
	for i := range caps {
		caps[i] = 1
	}
	reps[9] = 0.9
	it := &intent{client: 0, order: []int{4, 9}, explore: true}
	if got := net.chooseServer(it, caps, reps); got != 4 {
		t.Fatalf("explore chooseServer = %d, want first in order", got)
	}
}

func TestChooseServerNoCapacityAnywhere(t *testing.T) {
	net := selectionNetwork(t)
	reps := make([]float64, net.Cfg.NumNodes)
	caps := make([]int, net.Cfg.NumNodes)
	it := &intent{client: 0, order: []int{1, 2, 3}}
	if got := net.chooseServer(it, caps, reps); got != -1 {
		t.Fatalf("chooseServer = %d, want -1", got)
	}
}

// --- slander extension ---

func TestSlanderWiring(t *testing.T) {
	cfg := smallConfig(PCM, EngineEBay, 0.6, false)
	cfg.SlanderVictims = 4
	net, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	victims := net.SlanderVictimIDs()
	if len(victims) == 0 || len(victims) > 4 {
		t.Fatalf("victims = %v", victims)
	}
	negEdges := 0
	for _, e := range net.colludeEdges {
		if e.Value == -1 {
			negEdges++
			if cfg.Type(e.From) != Colluder {
				t.Fatalf("slander edge from non-colluder %d", e.From)
			}
			if cfg.Type(e.To) != Normal {
				t.Fatalf("slander edge to non-normal %d", e.To)
			}
			// Attacker and victim must be genuine competitors.
			sim := interest.Similarity(net.Nodes[e.From].Interests, net.Nodes[e.To].Interests)
			if sim < 0.7 {
				t.Fatalf("slander pair %d->%d similarity %v, want >= 0.7", e.From, e.To, sim)
			}
		}
	}
	if negEdges == 0 {
		t.Fatal("no slander edges wired")
	}
}

func TestSlanderVictimsValidation(t *testing.T) {
	cfg := smallConfig(PCM, EngineEBay, 0.6, false)
	cfg.SlanderVictims = cfg.NumNodes // more than normal population
	if _, err := NewNetwork(cfg); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestSlanderDisabledByDefault(t *testing.T) {
	cfg := smallConfig(PCM, EngineEBay, 0.6, false)
	net, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(net.SlanderVictimIDs()) != 0 {
		t.Fatal("victims present without SlanderVictims")
	}
	for _, e := range net.colludeEdges {
		if e.value() != 1 {
			t.Fatal("negative edge present without SlanderVictims")
		}
	}
}

func TestSlanderLowersVictimReputation(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale dynamics test skipped in -short mode")
	}
	// Same seed with and without the campaign: victims must end lower.
	attacked := paperConfig(PCM, EngineEBay, 0.6, false)
	attacked.SlanderVictims = 10
	net, err := NewNetwork(attacked)
	if err != nil {
		t.Fatal(err)
	}
	victims := net.SlanderVictimIDs()
	if len(victims) == 0 {
		t.Fatal("no victims")
	}
	resAttacked := net.Run()

	control := attacked
	control.SlanderVictims = 0
	resControl, err := Run(control)
	if err != nil {
		t.Fatal(err)
	}
	mean := func(reps []float64) float64 {
		s := 0.0
		for _, v := range victims {
			s += reps[v]
		}
		return s / float64(len(victims))
	}
	if mean(resAttacked.FinalReputations) >= mean(resControl.FinalReputations) {
		t.Fatalf("slander had no effect: attacked %v vs control %v",
			mean(resAttacked.FinalReputations), mean(resControl.FinalReputations))
	}
}

// --- result accounting ---

func TestPerCycleColluderShare(t *testing.T) {
	cfg := smallConfig(PCM, EngineEBay, 0.6, false)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerCycleColluderShare) != cfg.SimulationCycles {
		t.Fatalf("per-cycle shares = %d entries", len(res.PerCycleColluderShare))
	}
	total := 0.0
	for _, s := range res.PerCycleColluderShare {
		if s < 0 || s > 1 {
			t.Fatalf("share %v out of range", s)
		}
		total += s
	}
	if total == 0 && res.RequestsToColluders > 0 {
		t.Fatal("per-cycle shares all zero despite colluder requests")
	}
}

func TestConvergenceCycleSemantics(t *testing.T) {
	// Build histories by hand through a tiny run and verify bounds.
	cfg := smallConfig(PCM, EngineEigenTrust, 0.2, false)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for ci, c := range res.ConvergenceCycles {
		if c == -1 {
			continue // never settled below threshold
		}
		if c < 1 || c > cfg.SimulationCycles+1 {
			t.Fatalf("convergence cycle %d out of bounds for colluder %d", c, ci)
		}
		// After cycle c (1-based), the colluder's reputation must stay
		// below the threshold in the recorded history.
		id := cfg.ColluderIDs()[ci]
		for sc := c - 1; sc < cfg.SimulationCycles; sc++ {
			if res.History[sc][id] >= ConvergenceThreshold {
				t.Fatalf("colluder %d above threshold at cycle %d despite convergence at %d",
					id, sc+1, c)
			}
		}
	}
}

func TestColluderInterestsParityDisjoint(t *testing.T) {
	cfg := smallConfig(PCM, EngineEBay, 0.6, false)
	net, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	half := cfg.NumInterests / 2
	for i, id := range cfg.ColluderIDs() {
		lower := i%2 == 0
		for _, c := range net.Nodes[id].Interests.Categories() {
			if lower && int(c) >= half {
				t.Fatalf("even colluder %d has upper-half interest %d", id, c)
			}
			if !lower && int(c) < half {
				t.Fatalf("odd colluder %d has lower-half interest %d", id, c)
			}
		}
	}
	// PCM partners therefore share no interests.
	for _, e := range net.colludeEdges {
		if e.value() < 0 {
			continue
		}
		sim := interest.Similarity(net.Nodes[e.From].Interests, net.Nodes[e.To].Interests)
		if sim != 0 {
			t.Fatalf("PCM partners %d,%d share interests (sim %v)", e.From, e.To, sim)
		}
	}
}

func TestEdgeValueDefaults(t *testing.T) {
	e := collusionEdge{}
	if e.value() != 1 {
		t.Fatalf("default edge value = %v, want +1", e.value())
	}
	e.Value = -1
	if e.value() != -1 {
		t.Fatalf("slander edge value = %v", e.value())
	}
}
