package sim

import (
	"testing"

	"socialtrust/internal/socialgraph"
)

func TestWhitewashResetsIdentity(t *testing.T) {
	cfg := smallConfig(PCM, EngineEBay, 0.2, false)
	net, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	id := cfg.ColluderIDs()[0]
	// Give the colluder some engine and graph state.
	net.record(id, id+1, 1, 0, 0)
	net.record(id+2, id, -1, 0, 0)
	net.Engine.Update(net.Ledger.EndInterval())
	if net.Graph.Degree(socialgraph.NodeID(id)) == 0 {
		t.Fatal("precondition: colluder should have friends")
	}

	net.whitewash(id)

	if got := net.Engine.Reputation(id); got != 0 {
		t.Fatalf("reputation after whitewash = %v, want 0", got)
	}
	if got := net.Tracker.Requests(id); got != 0 {
		t.Fatalf("tracker after whitewash = %v, want 0", got)
	}
	// New identity has fresh friendships and its collusion tie back.
	if net.Graph.Degree(socialgraph.NodeID(id)) == 0 {
		t.Fatal("whitewashed node should rebuild friendships")
	}
	partnered := false
	for _, e := range net.colludeEdges {
		if (e.From == id || e.To == id) &&
			net.Graph.Adjacent(socialgraph.NodeID(e.From), socialgraph.NodeID(e.To)) {
			partnered = true
		}
	}
	if !partnered {
		t.Fatal("whitewashed colluder lost its collusion tie")
	}
}

func TestWhitewashRunCountsResets(t *testing.T) {
	cfg := smallConfig(PCM, EngineEBay, 0.2, false)
	cfg.WhitewashThreshold = 0.001
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Whitewashes == 0 {
		t.Fatal("suppressed low-QoS colluders should whitewash at least once")
	}
}

func TestNoWhitewashWithoutConfig(t *testing.T) {
	cfg := smallConfig(PCM, EngineEBay, 0.2, false)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Whitewashes != 0 {
		t.Fatalf("whitewashes = %d without configuration", res.Whitewashes)
	}
}

func TestWhitewashWithOscillationRestartsHoneymoon(t *testing.T) {
	cfg := smallConfig(PCM, EngineEBay, 0.2, false)
	cfg.OscillationCycle = 2
	cfg.WhitewashThreshold = 0.001
	net, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	net.Run()
	// At least one colluder should currently be in a honeymoon (recently
	// whitewashed) or have defected; either way the machinery must have
	// set QoS to one of the two levels.
	for _, id := range cfg.ColluderIDs() {
		g := net.Nodes[id].Good
		if g != 0.2 && g != 0.95 {
			t.Fatalf("colluder %d QoS %v, want 0.2 or 0.95", id, g)
		}
	}
}

func TestWhitewashDeterministic(t *testing.T) {
	run := func() (int, []float64) {
		cfg := smallConfig(PCM, EngineEBay, 0.2, false)
		cfg.WhitewashThreshold = 0.001
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Whitewashes, res.FinalReputations
	}
	w1, r1 := run()
	w2, r2 := run()
	if w1 != w2 {
		t.Fatalf("whitewash counts differ: %d vs %d", w1, w2)
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("reputations diverged at %d", i)
		}
	}
}
