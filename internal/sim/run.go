package sim

import (
	"context"
	"errors"
	"log/slog"
	"sync"
	"time"

	"socialtrust/internal/audit"
	"socialtrust/internal/interest"
	"socialtrust/internal/manager"
	"socialtrust/internal/obs"
	"socialtrust/internal/obs/event"
	"socialtrust/internal/obs/span"
	"socialtrust/internal/rating"
	"socialtrust/internal/socialgraph"
)

// Simulator metrics, updated once per simulation cycle (counters carry the
// cycle's deltas; gauges the most recent cycle's rates). sim_cycle_seconds
// is the wall time of one simulation cycle including the reputation update.
var (
	mSimCycles      = obs.C("sim_cycles_total")
	mSimRequests    = obs.C("sim_requests_total")
	mSimAuthentic   = obs.C("sim_authentic_total")
	mSimInauthentic = obs.C("sim_inauthentic_total")
	mSimColluderReq = obs.C("sim_colluder_requests_total")
	mCycleLat       = obs.H("sim_cycle_seconds")
	mLastCycle      = obs.G("sim_interval_last_seconds")
	mQPS            = obs.G("sim_queries_per_second")
	mAuthRatio      = obs.G("sim_authentic_ratio")

	// Churn and fault-regime accounting.
	mChurnDepart = obs.C("sim_churn_departures_total")
	mChurnRejoin = obs.C("sim_churn_rejoins_total")
	mChurnWash   = obs.C("sim_churn_whitewash_total")
	mRatingsLost = obs.C("sim_ratings_lost_total")
)

func init() {
	obs.Help("sim_cycles_total", "Simulation cycles (reputation update intervals) completed.")
	obs.Help("sim_requests_total", "Service requests issued by simulated peers.")
	obs.Help("sim_authentic_total", "Requests served authentically.")
	obs.Help("sim_inauthentic_total", "Requests served inauthentically.")
	obs.Help("sim_colluder_requests_total", "Requests routed to colluding providers.")
	obs.Help("sim_cycle_seconds", "Wall time of one simulation cycle including the reputation update.")
	obs.Help("sim_interval_last_seconds", "Wall time of the most recent simulation cycle — the quantity judged against the -slo-interval budget.")
	obs.Help("sim_queries_per_second", "Query throughput of the most recent cycle.")
	obs.Help("sim_authentic_ratio", "Authentic-service ratio of the most recent cycle.")
	obs.Help("sim_churn_departures_total", "Peers departed under the churn regime.")
	obs.Help("sim_churn_rejoins_total", "Peers rejoined under the churn regime.")
	obs.Help("sim_churn_whitewash_total", "Rejoins under a fresh (whitewashed) identity.")
	obs.Help("sim_ratings_lost_total", "Ratings lost to injected faults across all drains.")
}

// progressEvery throttles the simulator's periodic progress line (enabled by
// raising the obs log level to Info, e.g. via the CLIs' -v flag). The
// throttle is global on purpose: concurrently aggregated runs share it, so a
// panel of repetitions emits one line every interval rather than one per run.
var progressEvery = &obs.Throttle{Interval: 2 * time.Second}

// Result collects everything the paper's figures and tables read off a run.
type Result struct {
	// FinalReputations is the normalized reputation vector after the last
	// simulation cycle.
	FinalReputations []float64
	// History holds the reputation vector after each simulation cycle.
	History [][]float64

	// Request accounting over the whole run.
	TotalRequests       int
	RequestsToColluders int
	AuthenticServed     int
	InauthenticServed   int
	ServedByType        map[NodeType]int

	// ConvergenceCycles[c] is, per colluder (indexed as in ColluderIDs),
	// the 1-based simulation cycle after which its reputation stayed below
	// ConvergenceThreshold; -1 when it never settled below it.
	ConvergenceCycles []int

	// Whitewashes counts colluder identity resets (whitewashing attack).
	Whitewashes int

	// PerCycleColluderShare records the fraction of each simulation cycle's
	// requests served by colluders.
	PerCycleColluderShare []float64

	// Churn aggregates the run's population churn (zero when disabled).
	Churn ChurnStats

	// Fault-regime accounting (all zero without a fault plan). RatingsLost
	// counts submissions lost to injected faults (both the primary and the
	// replica copy failed); PartialDrains counts interval drains that
	// proceeded on a surviving quorum with data lost; ReplicaDrains counts
	// shard-intervals recovered from a replica mirror.
	RatingsLost   int
	PartialDrains int
	ReplicaDrains int
}

// ChurnStats aggregates churn events over a run.
type ChurnStats struct {
	Departures       int
	Rejoins          int
	WhitewashRejoins int
}

// ConvergenceThreshold is the colluder-reputation level of the paper's
// Section 5.9 efficiency measurement.
const ConvergenceThreshold = 0.001

// ColluderRequestShare returns the fraction of requests served by colluders
// (Table 1; Figure 7(c) uses the same accounting for malicious nodes).
func (r *Result) ColluderRequestShare() float64 {
	if r.TotalRequests == 0 {
		return 0
	}
	return float64(r.RequestsToColluders) / float64(r.TotalRequests)
}

// intent is one client's pre-drawn decision for a query cycle: the category
// it requests, its shuffled candidate preference order, and the uniform
// draw that decides service authenticity. Intents are computed concurrently;
// the cheap capacity-respecting assignment runs serially in node-ID order so
// results do not depend on goroutine scheduling.
type intent struct {
	client   int
	category interest.Category
	order    []int
	outcome  float64
	explore  bool // pick uniformly, ignoring reputation (exploration)
}

// Run executes the configured experiment and returns its Result. When
// Config.AuditDir is set, the run executes with the flight recorder enabled
// and its audit trail (ground truth + decision/cycle/manager events) is
// written there on completion. When Config.TraceDir is set, the run
// additionally executes with the interval span recorder enabled and the
// trace artifacts (trace_spans.jsonl + trace_chrome.json) are written
// there — pointing it at the audit dir puts the spans next to events.jsonl.
func Run(cfg Config) (*Result, error) {
	net, err := NewNetwork(cfg)
	if err != nil {
		return nil, err
	}
	var srec *span.Recorder
	if net.Cfg.TraceDir != "" {
		srec = span.Enable(traceCapacity(net.Cfg))
		defer span.Disable()
	}
	var rec *event.Recorder
	if net.Cfg.AuditDir != "" {
		rec = event.Enable(auditCapacity(net.Cfg))
		defer event.Disable()
	}
	res := net.Run()
	if rec != nil {
		events := rec.Drain()
		if len(net.savedEvents) > 0 {
			// Durable run: checkpoints drained the ring along the way (and a
			// resumed run inherits its predecessor's stream); the full audit
			// trail is the saved prefix plus whatever the ring still holds.
			events = append(append([]event.Event(nil), net.savedEvents...), events...)
		}
		if dropped := rec.Dropped(); dropped > 0 {
			obs.Logger().Warn("audit ring overflowed; oldest events lost",
				"dropped", dropped, "kept", len(events), "capacity", rec.Capacity())
		}
		if err := audit.WriteDir(net.Cfg.AuditDir, net.GroundTruth(), events); err != nil {
			return nil, err
		}
		if net.FaultPlan != nil {
			if err := audit.WriteFaultEvents(net.Cfg.AuditDir, net.FaultPlan.Events()); err != nil {
				return nil, err
			}
		}
	}
	if srec != nil {
		spans := srec.Drain()
		if dropped := srec.Dropped(); dropped > 0 {
			obs.Logger().Warn("trace ring overflowed; oldest spans lost",
				"dropped", dropped, "kept", len(spans), "capacity", srec.Capacity())
		}
		if err := audit.WriteTrace(net.Cfg.TraceDir, spans); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// auditCapacity sizes the flight-recorder ring for one audited run: room
// for every cycle's worth of flagged pairs plus cycle/manager records, with
// a hard cap keeping the up-front buffer in the tens of MB even for stress
// geometries.
func auditCapacity(cfg Config) int {
	c := cfg.SimulationCycles * (cfg.NumNodes + 64)
	if c < event.DefaultCapacity {
		return event.DefaultCapacity
	}
	if c > 1<<18 {
		return 1 << 18
	}
	return c
}

// traceCapacity sizes the span ring for one traced run: per simulation
// cycle, each query cycle emits one overlay submit plus a per-shard deliver,
// the drain a handful, and the engine one span per sub-phase and power
// iteration (bounded by MaxIter, 200 by default), with the same style of
// hard cap as auditCapacity.
func traceCapacity(cfg Config) int {
	c := cfg.SimulationCycles * (cfg.QueryCycles*(cfg.Managers+2) + 512)
	if c < span.DefaultCapacity {
		return span.DefaultCapacity
	}
	if c > 1<<19 {
		return 1 << 19
	}
	return c
}

// Run executes the simulation on a constructed network.
func (n *Network) Run() *Result {
	cfg := n.Cfg
	res := &Result{
		ServedByType:      make(map[NodeType]int),
		ConvergenceCycles: make([]int, cfg.NumColluders),
	}
	capacities := make([]int, cfg.NumNodes)
	reps := n.Engine.Reputations()
	intents := make([]intent, cfg.NumNodes)

	lastAbove := make([]int, cfg.NumColluders) // last 1-based cycle with rep >= threshold
	everAbove := make([]bool, cfg.NumColluders)
	lastTotal, lastColl := 0, 0

	// Oscillation attack: colluders start on their best behavior and
	// defect when their honeymoon expires.
	if cfg.OscillationCycle > 0 {
		for _, id := range cfg.ColluderIDs() {
			n.startHoneymoon(n.Nodes[id])
		}
	}

	start := 0
	if n.resume != nil {
		// Crash restart: restore every state surface at the last interval
		// boundary (overwriting the fresh-start honeymoon initialization
		// above), replay the interrupted interval's acknowledged WAL tail,
		// and re-execute that interval from its start. Restored random stream
		// positions make the re-execution regenerate exactly the ratings the
		// dead process generated; replayed sequence numbers are acknowledged
		// without double-counting.
		reps, start = n.applyResume(res, lastAbove, everAbove)
		lastTotal, lastColl = res.TotalRequests, res.RequestsToColluders
	} else {
		n.startFresh(res, lastAbove, everAbove, reps)
	}
	n.attachJournal()

	for sc := start; sc < cfg.SimulationCycles; sc++ {
		cycleStart := time.Now()
		// Interval tracing: one trace per simulation cycle. The root span is
		// installed as the ambient context so components reached through the
		// engine interface (overlay drain, core.Adjust, the power iteration)
		// parent under it; the ingest span takes over as ambient for the
		// query-cycle loop so overlay submits nest (and are excluded from the
		// ledger by the parent-phase rule). All of this is nil no-ops when
		// tracing is off.
		root := span.Root("sim.interval").SetInt("interval", int64(sc+1))
		prevAmb := span.SetAmbient(root.Context())
		reqBefore, authBefore, inauthBefore, collBefore :=
			res.TotalRequests, res.AuthenticServed, res.InauthenticServed, res.RequestsToColluders
		if cfg.OscillationCycle > 0 {
			for _, id := range cfg.ColluderIDs() {
				node := n.Nodes[id]
				if node.honeymoon > 0 {
					node.honeymoon--
					if node.honeymoon == 0 {
						node.Good = cfg.ColluderGood // defect
					}
				}
			}
		}
		departed, rejoined := 0, 0
		if cfg.Churn.Enabled() {
			departed, rejoined = n.churnStep(res)
		}
		isp := root.Child("sim.ingest", span.PhaseIngest).SetInt("query_cycles", int64(cfg.QueryCycles))
		span.SetAmbient(isp.Context())
		for qc := 0; qc < cfg.QueryCycles; qc++ {
			if n.haltAt != nil && n.haltAt.cycle == sc && n.haltAt.qc == qc {
				n.abandon() // test hook: die mid-interval like a kill -9
				return nil
			}
			cycle := sc*cfg.QueryCycles + qc
			for i := range capacities {
				if n.online[i] {
					capacities[i] = cfg.Capacity
				} else {
					capacities[i] = 0 // offline peers serve nothing
				}
			}
			n.computeIntents(intents, reps)
			n.assign(intents, capacities, reps, cycle, res)
			n.collude(cycle)
			n.flushRatings()
		}
		isp.End()
		span.SetAmbient(root.Context())
		res.PerCycleColluderShare = append(res.PerCycleColluderShare,
			cycleShare(res, &lastTotal, &lastColl))
		if n.Overlay != nil {
			var st manager.DrainStatus
			reps, st = n.Overlay.EndIntervalStatus()
			if st.Partial {
				res.PartialDrains++
			}
			res.ReplicaDrains += len(st.ReplicaUsed)
		} else {
			dsp := root.Child("sim.drain", span.PhaseDrain)
			snap := n.Ledger.EndInterval()
			dsp.SetInt("ratings", int64(len(snap.Ratings))).End()
			n.Engine.Update(snap)
			reps = n.Engine.Reputations()
		}
		n.Tracker.Reset() // Equation 11 weights are per simulation cycle
		// Whitewashing: punished colluders abandon their identities (only
		// while online — an offline peer cannot re-enter).
		if cfg.WhitewashThreshold > 0 {
			washed := false
			for _, id := range cfg.ColluderIDs() {
				if n.online[id] && reps[id] < cfg.WhitewashThreshold {
					n.whitewash(id)
					res.Whitewashes++
					washed = true
				}
			}
			if washed {
				reps = n.Engine.Reputations()
			}
		}
		res.History = append(res.History, reps)
		for ci, id := range cfg.ColluderIDs() {
			if reps[id] >= ConvergenceThreshold {
				lastAbove[ci] = sc + 1
				everAbove[ci] = true
			}
		}
		span.SetAmbient(prevAmb)
		root.End()
		n.observeCycle(res, sc, cycleStart, reqBefore, authBefore, inauthBefore, collBefore, departed, rejoined, root.TraceID())
		n.checkpoint(res, lastAbove, everAbove, reps, sc+1)
	}
	if n.Overlay != nil {
		n.Overlay.Close() // stop the manager goroutines; state is harvested
	}
	n.closeCluster()
	n.closePersist()
	res.RatingsLost = n.ratingsLost
	res.FinalReputations = reps
	for ci := range res.ConvergenceCycles {
		switch {
		case !everAbove[ci]:
			res.ConvergenceCycles[ci] = 1
		case lastAbove[ci] >= cfg.SimulationCycles:
			res.ConvergenceCycles[ci] = -1 // still above at the end
		default:
			res.ConvergenceCycles[ci] = lastAbove[ci] + 1
		}
	}
	return res
}

// observeCycle records one simulation cycle's metrics and, when Info-level
// logging is on, an at-most-every-2s progress line for long runs.
func (n *Network) observeCycle(res *Result, sc int, start time.Time, reqBefore, authBefore, inauthBefore, collBefore, departed, rejoined int, trace uint64) {
	wall := time.Since(start)
	// Collect the interval's phase attribution unconditionally so the span
	// ledger never accumulates traces, even when the flight recorder is off.
	var phases *event.PhaseSeconds
	if srec := span.Current(); srec != nil && trace != 0 {
		if att, ok := srec.TakeAttribution(trace); ok {
			phases = &event.PhaseSeconds{
				Total:    att.Total,
				Ingest:   att.Ingest,
				Drain:    att.Drain,
				Adjust:   att.Adjust,
				Iterate:  att.Iterate,
				Other:    att.Other(),
				Coverage: att.Coverage(),
			}
		}
	}
	requests := res.TotalRequests - reqBefore
	mSimCycles.Inc()
	mCycleLat.Observe(wall.Seconds())
	mLastCycle.Set(wall.Seconds())
	mSimRequests.Add(int64(requests))
	mSimAuthentic.Add(int64(res.AuthenticServed - authBefore))
	mSimInauthentic.Add(int64(res.InauthenticServed - inauthBefore))
	mSimColluderReq.Add(int64(res.RequestsToColluders - collBefore))
	qps := 0.0
	if secs := wall.Seconds(); secs > 0 {
		qps = float64(requests) / secs
	}
	mQPS.Set(qps)
	authRatio := 0.0
	if served := res.AuthenticServed + res.InauthenticServed; served > 0 {
		authRatio = float64(res.AuthenticServed) / float64(served)
	}
	mAuthRatio.Set(authRatio)
	if rec := event.Current(); rec != nil {
		cs := event.CycleSeries{
			Cycle:          sc + 1,
			Requests:       requests,
			QPS:            qps,
			AuthenticRatio: authRatio,
			WallSeconds:    wall.Seconds(),
		}
		if k := len(res.PerCycleColluderShare); k > 0 {
			cs.ColluderShare = res.PerCycleColluderShare[k-1]
		}
		if k := len(res.History); k > 0 {
			cs.MeanRepPretrusted, cs.MeanRepNormal, cs.MeanRepColluder =
				meanRepsByType(n.Cfg, res.History[k-1])
		}
		if n.Cfg.Churn.Enabled() {
			cs.Online = n.onlineCount()
			cs.Departures = departed
			cs.Rejoins = rejoined
		}
		cs.Phases = phases
		rec.RecordCycle(cs)
	}
	if obs.Logger().Enabled(context.Background(), slog.LevelInfo) && progressEvery.Allow() {
		obs.Logger().Info("sim progress",
			"engine", n.Engine.Name(),
			"cycle", sc+1, "cycles", n.Cfg.SimulationCycles,
			"requests", res.TotalRequests,
			"qps", int(qps),
			"authentic_ratio", authRatio,
			"cycle_wall", wall.Round(time.Millisecond))
	}
}

// meanRepsByType averages a reputation vector per node population.
func meanRepsByType(cfg Config, reps []float64) (pre, normal, coll float64) {
	var sums [3]float64
	var counts [3]int
	for id, r := range reps {
		t := cfg.Type(id)
		sums[t] += r
		counts[t]++
	}
	mean := func(t NodeType) float64 {
		if counts[t] == 0 {
			return 0
		}
		return sums[t] / float64(counts[t])
	}
	return mean(Pretrusted), mean(Normal), mean(Colluder)
}

// cycleShare computes the colluder request share since the previous call.
func cycleShare(res *Result, lastTotal, lastColl *int) float64 {
	dTotal := res.TotalRequests - *lastTotal
	dColl := res.RequestsToColluders - *lastColl
	*lastTotal, *lastColl = res.TotalRequests, res.RequestsToColluders
	if dTotal == 0 {
		return 0
	}
	return float64(dColl) / float64(dTotal)
}

// computeIntents fans the per-client decision work across Workers. Each
// client uses only its own RNG stream, so the result is independent of
// scheduling.
func (n *Network) computeIntents(out []intent, reps []float64) {
	workers := n.Cfg.Workers
	if workers > len(n.Nodes) {
		workers = len(n.Nodes)
	}
	var wg sync.WaitGroup
	block := (len(n.Nodes) + workers - 1) / workers
	for lo := 0; lo < len(n.Nodes); lo += block {
		hi := lo + block
		if hi > len(n.Nodes) {
			hi = len(n.Nodes)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for id := lo; id < hi; id++ {
				out[id] = n.intentFor(n.Nodes[id])
			}
		}(lo, hi)
	}
	wg.Wait()
}

// intentFor draws one node's query intent. An inactive node yields
// client == -1.
func (n *Network) intentFor(node *Node) intent {
	if !n.online[node.ID] {
		return intent{client: -1} // churned out: no queries this cycle
	}
	rng := node.rng
	if !rng.Bool(node.Activity) {
		return intent{client: -1}
	}
	// Request category: power-law over the node's own interests (trace
	// observation O5 — a user mostly requests its top categories).
	cat := node.InterestList[rng.Zipf(len(node.InterestList), 1.5)]
	pool := n.byCategory[cat]
	order := make([]int, len(pool))
	copy(order, pool)
	rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	return intent{
		client:   node.ID,
		category: cat,
		order:    order,
		outcome:  rng.Float64(),
		explore:  rng.Bool(n.Cfg.Exploration),
	}
}

// assign serves each active client in node-ID order. Server choice follows
// the EigenTrust paper's download-source rule: with probability Exploration
// the client picks a uniform candidate (letting newcomers earn trust and
// keeping negative feedback flowing to bad servers); otherwise it picks
// among candidates with reputation above SelectionThreshold with probability
// proportional to reputation, falling back to a uniform pick when nobody
// qualifies (the cold-start rule). Only candidates with spare capacity are
// considered. The client then rates the service and all substrate records
// are updated. The phase is serial in node-ID order so capacity contention
// resolves deterministically.
func (n *Network) assign(intents []intent, capacities []int, reps []float64, cycle int, res *Result) {
	for id := range intents {
		it := &intents[id]
		if it.client < 0 {
			continue
		}
		server := n.chooseServer(it, capacities, reps)
		if server < 0 {
			continue // no available server for this category
		}
		capacities[server]--
		srv := n.Nodes[server]
		authentic := it.outcome < srv.Good
		value := 1.0
		if authentic {
			res.AuthenticServed++
		} else {
			value = -1
			res.InauthenticServed++
		}
		res.TotalRequests++
		res.ServedByType[srv.Type]++
		if srv.Type == Colluder {
			res.RequestsToColluders++
		}
		n.record(it.client, server, value, cycle, it.category)
	}
}

// chooseServer resolves one intent against current capacities and
// reputations: a uniform pick among candidates whose reputation exceeds TR
// (the paper's rule — "randomly chooses a neighbor with available capacity
// greater than 0 and reputation higher than TR"). When nobody qualifies, the
// client picks uniformly among the highest-reputation candidates available —
// the paper's cold-start behavior ("a node randomly chooses from a number of
// options with the same reputation value 0"). Because the intent's candidate
// order is a uniform shuffle, "first qualifying in order" is a uniform draw
// from the qualifying set. Returns -1 when no candidate has spare capacity.
func (n *Network) chooseServer(it *intent, capacities []int, reps []float64) int {
	if it.explore {
		for _, cand := range it.order {
			if cand != it.client && capacities[cand] > 0 {
				return cand
			}
		}
		return -1
	}
	for _, cand := range it.order {
		if cand != it.client && capacities[cand] > 0 && reps[cand] > n.Cfg.SelectionThreshold {
			return cand
		}
	}
	// Cold-start fallback: first candidate holding the maximum reputation.
	best := -1
	for _, cand := range it.order {
		if cand != it.client && capacities[cand] > 0 {
			if best < 0 || reps[cand] > reps[best]+1e-12 {
				best = cand
			}
		}
	}
	return best
}

// record stores one rating event in every substrate: the ledger (or, in
// Managers mode, the overlay batch buffer drained by flushRatings), the
// social interaction table, and the request tracker. The client-side
// substrates always record the interaction immediately — only delivery to
// the reputation system is batched.
func (n *Network) record(rater, ratee int, value float64, cycle int, cat interest.Category) {
	// Every rating gets a run-global ingest sequence number, durable or not:
	// it is the WAL replay dedupe key, and assigning it unconditionally keeps
	// persisted and plain runs on identical code paths (bit-identical output).
	n.seq++
	r := rating.Rating{Rater: rater, Ratee: ratee, Value: value, Cycle: cycle, Category: int(cat), Seq: n.seq}
	if n.Overlay != nil {
		n.pending = append(n.pending, r)
	} else if err := n.Ledger.Add(r); err != nil {
		panic(err) // construction guarantees rater != ratee
	}
	n.Graph.RecordInteraction(socialgraph.NodeID(rater), socialgraph.NodeID(ratee), 1)
	n.Tracker.Record(rater, cat)
}

// flushRatings ships the query cycle's buffered ratings to the overlay in
// one SubmitBatch call. Fault accounting is per rating, exactly as the
// unbatched path: a submission can be lost in transit (both the primary and
// the replica copy failed), in which case the reputation system never sees
// the rating while the client-side substrates keep the interaction.
func (n *Network) flushRatings() {
	if n.Overlay == nil || len(n.pending) == 0 {
		return
	}
	errs := n.Overlay.SubmitBatch(n.pending)
	n.pending = n.pending[:0]
	for _, err := range errs {
		if err == nil {
			continue
		}
		if n.FaultPlan != nil && (errors.Is(err, manager.ErrTimeout) || errors.Is(err, manager.ErrShardDown)) {
			n.ratingsLost++
			mRatingsLost.Inc()
		} else {
			panic(err) // construction guarantees rater != ratee
		}
	}
}

// collude injects the per-query-cycle collusion ratings. Each boosting
// rating targets an interest randomly drawn from the boosted node's true
// profile, per Section 5.1.
func (n *Network) collude(cycle int) {
	for ei := range n.colludeEdges {
		e := &n.colludeEdges[ei]
		if !n.online[e.From] || !n.online[e.To] {
			continue // a churned-out partner cannot send or receive ratings
		}
		n.spam(e.From, e.To, e.Ratings, e.value(), cycle)
		if e.Back > 0 {
			n.spam(e.To, e.From, e.Back, e.value(), cycle)
		}
	}
}

func (n *Network) spam(from, to, count int, value float64, cycle int) {
	rng := n.Nodes[from].rng
	target := n.Nodes[to]
	for k := 0; k < count; k++ {
		cat := target.InterestList[rng.Intn(len(target.InterestList))]
		n.record(from, to, value, cycle, cat)
	}
}
