package sim

import (
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"socialtrust/internal/fault"
	"socialtrust/internal/obs/event"
	"socialtrust/internal/rating"
	"socialtrust/internal/reputation/eigentrust"
)

// runOutcome is everything a durability comparison judges: the full Result
// plus the deterministic audit event stream (reputations, detection table,
// and time series all live in one of the two).
type runOutcome struct {
	res    *Result
	events []event.Event
}

// runToCompletion executes a run — durable when stateDir is non-empty, and
// resuming when that directory already holds a snapshot — with the flight
// recorder on, and returns its outcome. Mirrors Run(cfg)'s event stitching.
func runToCompletion(t *testing.T, cfg Config, stateDir string) runOutcome {
	t.Helper()
	cfg.StateDir = stateDir
	net, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec := event.Enable(auditCapacity(cfg))
	defer event.Disable()
	res := net.Run()
	if res == nil {
		t.Fatal("run halted unexpectedly")
	}
	events := append(append([]event.Event(nil), net.savedEvents...), rec.Drain()...)
	return runOutcome{res: res, events: events}
}

// runUntilCrash executes a durable run that dies mid-interval at the given
// halt point — the in-process equivalent of a kill -9: WAL appends up to the
// halt were flushed, the snapshot is whatever the last interval boundary
// wrote, and everything else (ring tail, in-memory state) is lost.
func runUntilCrash(t *testing.T, cfg Config, stateDir string, halt haltPoint) {
	t.Helper()
	cfg.StateDir = stateDir
	net, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	net.haltAt = &halt
	rec := event.Enable(auditCapacity(cfg))
	defer event.Disable()
	if res := net.Run(); res != nil {
		t.Fatalf("run completed instead of halting at cycle %d qc %d", halt.cycle, halt.qc)
	}
	_ = rec // the dead process's ring tail is lost with it
}

// scrubEvents strips the wall-clock observations (cycle QPS/wall/phase
// attribution, manager operation seconds) and the asynchronous health stream
// from an event stream, leaving exactly the deterministic payload the
// byte-identity contract covers.
func scrubEvents(evs []event.Event) []event.Event {
	out := make([]event.Event, 0, len(evs))
	for _, e := range evs {
		if e.Health != nil {
			continue
		}
		if e.Cycle != nil {
			c := *e.Cycle
			c.QPS, c.WallSeconds, c.Phases = 0, 0, nil
			e.Cycle = &c
		}
		if e.Manager != nil {
			m := *e.Manager
			m.Seconds = 0
			e.Manager = &m
		}
		out = append(out, e)
	}
	return out
}

// sameBits compares float64 slices bit-for-bit.
func sameBits(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// requireIdentical asserts two outcomes are bit-identical across every
// deterministic surface.
func requireIdentical(t *testing.T, want, got runOutcome) {
	t.Helper()
	if !sameBits(want.res.FinalReputations, got.res.FinalReputations) {
		t.Fatal("final reputations diverged")
	}
	if len(want.res.History) != len(got.res.History) {
		t.Fatalf("history length %d vs %d", len(got.res.History), len(want.res.History))
	}
	for c := range want.res.History {
		if !sameBits(want.res.History[c], got.res.History[c]) {
			t.Fatalf("reputation history diverged at cycle %d", c+1)
		}
	}
	if !sameBits(want.res.PerCycleColluderShare, got.res.PerCycleColluderShare) {
		t.Fatal("per-cycle colluder share diverged")
	}
	// Everything else in Result is integral; DeepEqual over the whole struct
	// also re-checks the float fields (== on non-NaN floats).
	if !reflect.DeepEqual(want.res, got.res) {
		t.Fatalf("results diverged:\nwant %+v\ngot  %+v", want.res, got.res)
	}
	w, g := scrubEvents(want.events), scrubEvents(got.events)
	if len(w) != len(g) {
		t.Fatalf("event stream length %d vs %d", len(g), len(w))
	}
	for i := range w {
		if !reflect.DeepEqual(w[i], g[i]) {
			t.Fatalf("event %d diverged:\nwant %+v\ngot  %+v", i, w[i], g[i])
		}
	}
}

// TestCrashRestartBitIdentity is the durability acceptance: a run killed
// mid-interval and restarted over its state directory produces reputations,
// detection tables, and audit event streams bit-identical to an
// uninterrupted run of the same seed — across engines, the manager overlay
// with fault injection, churn, whitewashing, and oscillation.
func TestCrashRestartBitIdentity(t *testing.T) {
	cases := []struct {
		name string
		cfg  func() Config
		halt haltPoint
	}{
		{
			name: "direct-eigentrust-mcm",
			cfg:  func() Config { return smallConfig(MCM, EngineEigenTrust, 0.2, true) },
			halt: haltPoint{cycle: 3, qc: 5},
		},
		{
			name: "direct-ebay-whitewash-oscillation",
			cfg: func() Config {
				cfg := smallConfig(PCM, EngineEBay, 0.2, false)
				cfg.WhitewashThreshold = 0.001
				cfg.OscillationCycle = 3
				return cfg
			},
			halt: haltPoint{cycle: 4, qc: 2},
		},
		{
			name: "direct-trustguard-mmm",
			cfg:  func() Config { return smallConfig(MMM, EngineTrustGuard, 0.2, true) },
			halt: haltPoint{cycle: 2, qc: 8},
		},
		{
			name: "overlay-chaos-churn",
			cfg: func() Config {
				cfg := smallConfig(PCM, EngineEigenTrust, 0.6, true)
				cfg.Managers = 4
				cfg.Faults = fault.Config{
					Seed: 3,
					Drop: 0.1,
					Crashes: []fault.Crash{
						{Shard: 1, AtInterval: 2, Down: 2},
						{Shard: 3, AtInterval: 5, Down: 1},
					},
				}
				cfg.Churn = ChurnConfig{DepartPerCycle: 0.05, RejoinPerCycle: 0.5, WhitewashFraction: 0.2}
				return cfg
			},
			// Dies while shard 1 is down: the interrupted interval's replay
			// and re-execution must reproduce the failover verdicts too.
			halt: haltPoint{cycle: 2, qc: 5},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ref := runToCompletion(t, tc.cfg(), "")
			dir := t.TempDir()
			runUntilCrash(t, tc.cfg(), dir, tc.halt)
			got := runToCompletion(t, tc.cfg(), dir)
			requireIdentical(t, ref, got)
		})
	}
}

// TestCrashRestartTwice covers back-to-back failures: crash, resume, crash
// again later, resume again — still bit-identical.
func TestCrashRestartTwice(t *testing.T) {
	cfg := func() Config { return smallConfig(MCM, EngineEigenTrust, 0.2, true) }
	ref := runToCompletion(t, cfg(), "")
	dir := t.TempDir()
	runUntilCrash(t, cfg(), dir, haltPoint{cycle: 2, qc: 7})
	runUntilCrash(t, cfg(), dir, haltPoint{cycle: 5, qc: 3})
	got := runToCompletion(t, cfg(), dir)
	requireIdentical(t, ref, got)
}

// TestCrashRestartTornTail is the torn-write integration variant: the
// process dies mid-append, leaving a partial final record in the rating WAL.
// Open truncates the torn frame; the lost suffix is regenerated by the
// deterministic re-execution, so the resumed run is still bit-identical.
func TestCrashRestartTornTail(t *testing.T) {
	cfg := func() Config { return smallConfig(MCM, EngineEigenTrust, 0.2, true) }
	ref := runToCompletion(t, cfg(), "")
	dir := t.TempDir()
	runUntilCrash(t, cfg(), dir, haltPoint{cycle: 3, qc: 5})
	walPath := filepath.Join(dir, "ratings.wal")
	info, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() < 16 {
		t.Fatalf("rating WAL only %d bytes; crash left no journaled tail", info.Size())
	}
	if err := os.Truncate(walPath, info.Size()-3); err != nil {
		t.Fatal(err)
	}
	got := runToCompletion(t, cfg(), dir)
	requireIdentical(t, ref, got)
}

// TestResumeCompletedRun restarts over the directory of a finished run: the
// final snapshot restores everything and the loop body never executes.
func TestResumeCompletedRun(t *testing.T) {
	cfg := smallConfig(PCM, EngineEigenTrust, 0.6, true)
	dir := t.TempDir()
	first := runToCompletion(t, cfg, dir)
	again := runToCompletion(t, cfg, dir)
	if !sameBits(first.res.FinalReputations, again.res.FinalReputations) {
		t.Fatal("re-running a completed durable run changed its reputations")
	}
	if again.res.TotalRequests != first.res.TotalRequests {
		t.Fatalf("restored TotalRequests = %d, want %d", again.res.TotalRequests, first.res.TotalRequests)
	}
}

// TestSnapshotFingerprintMismatch pins the safety rail: a state directory
// written under one configuration refuses to resume under another, while
// fingerprint-exempt knobs (worker parallelism, output dirs) may differ.
func TestSnapshotFingerprintMismatch(t *testing.T) {
	base := smallConfig(MCM, EngineEigenTrust, 0.2, true)
	dir := t.TempDir()
	runUntilCrash(t, base, dir, haltPoint{cycle: 2, qc: 0})

	changed := base
	changed.ColluderGood = 0.9
	changed.StateDir = dir
	if _, err := NewNetwork(changed); err == nil {
		t.Fatal("resume under a different configuration did not error")
	}

	exempt := base
	exempt.Workers = 1
	exempt.StateDir = dir
	net, err := NewNetwork(exempt)
	if err != nil {
		t.Fatalf("resume with different worker count: %v", err)
	}
	if net.resume == nil {
		t.Fatal("fingerprint-exempt resume did not pick up the snapshot")
	}
	net.abandon()
}

// TestSnapshotRoundTripProperty is the state-surface property test across
// the three collusion models: exporting every persistent substrate from a
// finished run, importing into a freshly constructed network, re-exporting
// deep-equal, and then driving both engines with one further identical
// interval snapshot must produce bit-identical reputations — i.e. Restore is
// lossless for Adjust+Update, not just for storage.
func TestSnapshotRoundTripProperty(t *testing.T) {
	for _, model := range []CollusionModel{PCM, MCM, MMM} {
		t.Run(model.String(), func(t *testing.T) {
			cfg := smallConfig(model, EngineEigenTrust, 0.2, true)
			n1, err := NewNetwork(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res := n1.Run(); res == nil {
				t.Fatal("run halted")
			}
			n2, err := NewNetwork(cfg)
			if err != nil {
				t.Fatal(err)
			}
			gs := n1.Graph.ExportState()
			fs := n1.Filter.ExportState()
			es := n1.inner.(*eigentrust.Engine).ExportState()
			n2.Graph.ImportState(gs)
			n2.Filter.ImportState(fs)
			n2.inner.(*eigentrust.Engine).ImportState(es)
			if got := n2.Graph.ExportState(); !reflect.DeepEqual(gs, got) {
				t.Fatal("graph state did not round-trip")
			}
			if got := n2.Filter.ExportState(); !reflect.DeepEqual(fs, got) {
				t.Fatal("filter state did not round-trip")
			}
			if got := n2.inner.(*eigentrust.Engine).ExportState(); !reflect.DeepEqual(es, got) {
				t.Fatal("engine state did not round-trip")
			}
			// One more interval of identical ratings through both stacks
			// (separate ledgers — Adjust shrinks snapshot values in place).
			snap := func() rating.Snapshot {
				l := rating.NewLedger(cfg.NumNodes)
				var seq uint64
				for i := 0; i < cfg.NumNodes; i++ {
					v := 1.0
					if i%4 == 0 {
						v = -1
					}
					seq++
					if err := l.Add(rating.Rating{
						Rater: i, Ratee: (i + 7) % cfg.NumNodes, Value: v,
						Cycle: 999, Category: i % cfg.NumInterests, Seq: seq,
					}); err != nil {
						t.Fatal(err)
					}
				}
				return l.EndInterval()
			}
			n1.Engine.Update(snap())
			n2.Engine.Update(snap())
			if !sameBits(n1.Engine.Reputations(), n2.Engine.Reputations()) {
				t.Fatal("post-restore Adjust+Update diverged from the never-persisted instance")
			}
		})
	}
}
