package sim

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"socialtrust/internal/audit"
	"socialtrust/internal/fault"
)

// TestChaosRunCompletes is the headline robustness acceptance: a full sim
// run with a crashed shard and 10% message drop completes without deadlock,
// EndInterval degrades to the surviving quorum, and replica failover
// recovers crashed shards' interval data.
func TestChaosRunCompletes(t *testing.T) {
	cfg := smallConfig(PCM, EngineEigenTrust, 0.6, true)
	cfg.Managers = 4
	cfg.Faults = fault.Config{
		Seed: 3,
		Drop: 0.1,
		Crashes: []fault.Crash{
			{Shard: 1, AtInterval: 2, Down: 2},
			{Shard: 3, AtInterval: 5, Down: 1},
		},
	}
	net, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := net.Run()
	if res.TotalRequests == 0 {
		t.Fatal("chaos run served no requests")
	}
	// The plan injected drops and outages; retry + replication absorb them
	// (a rating dies only when three attempts drop on BOTH the primary and
	// the replica, ~1e-6 per rating — usually zero even at 10% drop).
	kinds := map[string]int{}
	for _, e := range net.FaultPlan.Events() {
		kinds[e.Kind]++
	}
	if kinds[fault.KindDrop] == 0 {
		t.Fatal("10% drop injected no drop events — plan not reaching the overlay")
	}
	if kinds[fault.KindCrash] != 2 || kinds[fault.KindRestart] != 2 {
		t.Fatalf("crash/restart events = %v, want 2 of each", kinds)
	}
	if res.ReplicaDrains == 0 {
		t.Fatal("crashed shards' intervals were never recovered from replicas")
	}
	// Both crashed shards had a live replica holder, so no drain lost data.
	if res.PartialDrains != 0 {
		t.Fatalf("PartialDrains = %d, want 0 (every crash had a live replica)", res.PartialDrains)
	}
}

// TestFaultGoldenDeterminism is the golden reproducibility acceptance: the
// same fault seed must yield an identical injected-event sequence, an
// identical audit detection table, and identical reputations across runs —
// churn included.
func TestFaultGoldenDeterminism(t *testing.T) {
	run := func(dir string) (*Result, audit.Report, []byte) {
		cfg := smallConfig(PCM, EngineEigenTrust, 0.6, true)
		cfg.Managers = 4
		cfg.Faults = fault.Config{Seed: 9, Drop: 0.05, CrashRate: 0.05}
		cfg.Churn = ChurnConfig{DepartPerCycle: 0.05, RejoinPerCycle: 0.5, WhitewashFraction: 0.2}
		cfg.AuditDir = dir
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		gt, events, err := audit.LoadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := os.ReadFile(filepath.Join(dir, audit.FaultsFile))
		if err != nil {
			t.Fatal(err)
		}
		return res, audit.Score(gt, events), raw
	}
	res1, rep1, log1 := run(t.TempDir())
	res2, rep2, log2 := run(t.TempDir())

	if string(log1) != string(log2) {
		t.Fatal("same fault seed produced different injected-event logs")
	}
	if len(log1) == 0 {
		t.Fatal("fault run injected nothing — log is empty")
	}
	if !reflect.DeepEqual(res1.FinalReputations, res2.FinalReputations) {
		t.Fatal("same seed produced different final reputations under faults")
	}
	if res1.RatingsLost != res2.RatingsLost || res1.Churn != res2.Churn {
		t.Fatalf("fault/churn accounting diverged: %+v/%+v vs %+v/%+v",
			res1.RatingsLost, res1.Churn, res2.RatingsLost, res2.Churn)
	}
	if !reflect.DeepEqual(rep1.Overall, rep2.Overall) {
		t.Fatal("same seed produced different audit detection tables")
	}
}

// overallF1 extracts a behavior's overall F1 from an audit report.
func overallF1(t *testing.T, rep audit.Report, behavior string) float64 {
	t.Helper()
	for _, s := range rep.Overall {
		if s.Behavior == behavior {
			return s.F1
		}
	}
	t.Fatalf("behavior %q missing from report", behavior)
	return 0
}

// TestChurnDetectionWithinMargin: moderate churn (no faults) must not
// collapse SocialTrust's collusion detection — overall F1 for PCM and MCM
// stays within a fixed margin of the static-population baseline.
func TestChurnDetectionWithinMargin(t *testing.T) {
	const margin = 0.25
	for _, model := range []CollusionModel{PCM, MCM} {
		score := func(churn ChurnConfig) float64 {
			dir := t.TempDir()
			cfg := smallConfig(model, EngineEigenTrust, 0.6, true)
			cfg.Churn = churn
			cfg.AuditDir = dir
			if _, err := Run(cfg); err != nil {
				t.Fatal(err)
			}
			gt, events, err := audit.LoadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			return overallF1(t, audit.Score(gt, events), "any")
		}
		static := score(ChurnConfig{})
		churned := score(ChurnConfig{DepartPerCycle: 0.05, RejoinPerCycle: 0.5})
		if static == 0 {
			t.Fatalf("%v: static baseline detected nothing", model)
		}
		if churned < static-margin {
			t.Fatalf("%v: churn F1 %.3f fell more than %.2f below static %.3f",
				model, churned, margin, static)
		}
	}
}

// TestWhitewashRejoinNewcomerReputation: a peer that rejoins under a fresh
// identity must restart at newcomer reputation — the engine forgets it
// entirely (exactly zero under the eBay baseline, which scores only
// accumulated feedback).
func TestWhitewashRejoinNewcomerReputation(t *testing.T) {
	cfg := smallConfig(NoCollusion, EngineEBay, 0.2, false)
	cfg.Churn = ChurnConfig{DepartPerCycle: 0.3, RejoinPerCycle: 1, WhitewashFraction: 1}
	net, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := net.Run()
	if res.Churn.Departures == 0 || res.Churn.WhitewashRejoins == 0 {
		t.Fatalf("churn regime produced no whitewash-rejoins: %+v", res.Churn)
	}
	// Find an online normal peer with standing reputation and whitewash it:
	// the fresh identity must hold exactly zero reputation.
	victim := -1
	for id := cfg.NumPretrusted + cfg.NumColluders; id < cfg.NumNodes; id++ {
		if net.Engine.Reputation(id) > 0 {
			victim = id
			break
		}
	}
	if victim < 0 {
		t.Fatal("no normal peer earned reputation")
	}
	net.whitewash(victim)
	if got := net.Engine.Reputation(victim); got != 0 {
		t.Fatalf("whitewash-rejoined peer reputation = %v, want 0 (newcomer)", got)
	}
}

// TestFaultsRequireManagers: fault injection without a manager overlay is a
// configuration error, not a silent no-op.
func TestFaultsRequireManagers(t *testing.T) {
	cfg := smallConfig(PCM, EngineEigenTrust, 0.6, false)
	cfg.Faults = fault.Config{Drop: 0.1}
	if _, err := Run(cfg); err == nil {
		t.Fatal("faults without managers should fail validation")
	}
	cfg.Churn = ChurnConfig{DepartPerCycle: 1.5}
	cfg.Faults = fault.Config{}
	if _, err := Run(cfg); err == nil {
		t.Fatal("out-of-range churn probability should fail validation")
	}
}
