// Package fault implements deterministic fault injection for the resource-
// manager overlay: seeded, reproducible plans of message drops, delays and
// duplication at the manager mailbox boundary, plus shard crash/restart
// schedules at chosen update intervals.
//
// The paper's Section 4.3 overlay assumes trustworthy, always-available
// resource managers; real P2P deployments are defined by churn, message loss
// and node failure. A Plan is the adversary the hardened overlay
// (internal/manager) is tested against. All randomness derives from
// internal/xrand streams split per shard, so a given (Config, shard count)
// pair always produces the same injected-event sequence regardless of
// wall-clock timing — two runs with the same fault seed are bit-identical,
// which makes detection quality under a fault regime a reproducible,
// regression-testable number.
//
// A Plan additionally keeps an append-only log of every injected event
// (Events), the golden artifact determinism tests compare across runs.
package fault

import (
	"fmt"
	"sync"

	"socialtrust/internal/xrand"
)

// Kind names in the plan's event log.
const (
	KindDrop      = "drop"
	KindDelay     = "delay"
	KindDuplicate = "duplicate"
	KindCrash     = "crash"
	KindRestart   = "restart"
)

// Event is one injected fault, recorded in the plan's deterministic log.
// Interval is the 1-based reputation-update interval the event occurred in
// (0 for message faults injected before the first interval ends).
type Event struct {
	Seq      int    `json:"seq"`
	Interval int    `json:"interval"`
	Shard    int    `json:"shard"`
	Kind     string `json:"kind"`
}

// Verdict is the plan's decision for one message delivery to a shard
// mailbox. At most one of Drop/Delay/Duplicate is set.
type Verdict struct {
	// Drop loses the message: it is never enqueued and the sender's ack
	// deadline lapses.
	Drop bool
	// Delay defers the message: it is enqueued but only applied to the
	// shard's ledger at the next interval drain (a slow message that still
	// arrives within the interval).
	Delay bool
	// Duplicate delivers the message twice (a retransmit race).
	Duplicate bool
}

// Crash is one scheduled shard outage: the shard goes down at the start of
// update interval AtInterval (1-based), losing its in-memory interval
// ledgers, and restarts Down intervals later (Down < 0 keeps it down for the
// rest of the run; Down == 0 means one interval).
type Crash struct {
	Shard      int
	AtInterval int
	Down       int
}

// Config parameterizes a fault plan. The zero Config injects nothing.
type Config struct {
	// Seed roots the plan's random streams. A zero seed is a valid seed;
	// callers wanting per-run variation should derive it from the run seed.
	Seed uint64

	// Per-delivery message fault probabilities, each in [0,1]. They are
	// evaluated in drop → delay → duplicate order on a single uniform draw,
	// so Drop+Delay+Duplicate must not exceed 1.
	Drop      float64
	Delay     float64
	Duplicate float64

	// CrashRate is the per-shard, per-interval probability of an unplanned
	// crash; CrashDown how many intervals a randomly crashed shard stays
	// down (default 1, < 0 forever).
	CrashRate float64
	CrashDown int

	// Crashes is an explicit outage schedule, applied in addition to
	// CrashRate draws.
	Crashes []Crash

	// AlwaysOn installs the plan even when every rate is zero and no crash
	// is scheduled. The overlay's fault-tolerant machinery (replica ledgers,
	// retry/failover, drain deadlines) is active exactly when a plan is
	// installed, so AlwaysOn exercises — and lets tests and benchmarks
	// measure — the hardened path under zero injected faults.
	AlwaysOn bool
}

// Enabled reports whether the configuration asks for a fault plan at all.
func (c Config) Enabled() bool {
	return c.Drop > 0 || c.Delay > 0 || c.Duplicate > 0 ||
		c.CrashRate > 0 || len(c.Crashes) > 0 || c.AlwaysOn
}

// Validate rejects impossible fault configurations.
func (c Config) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{{"Drop", c.Drop}, {"Delay", c.Delay}, {"Duplicate", c.Duplicate}, {"CrashRate", c.CrashRate}} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("fault: %s %v outside [0,1]", p.name, p.v)
		}
	}
	if sum := c.Drop + c.Delay + c.Duplicate; sum > 1 {
		return fmt.Errorf("fault: Drop+Delay+Duplicate = %v exceeds 1", sum)
	}
	for i, cr := range c.Crashes {
		if cr.Shard < 0 {
			return fmt.Errorf("fault: Crashes[%d] negative shard %d", i, cr.Shard)
		}
		if cr.AtInterval < 1 {
			return fmt.Errorf("fault: Crashes[%d] AtInterval %d (intervals are 1-based)", i, cr.AtInterval)
		}
	}
	return nil
}

// Plan is a running fault schedule over a fixed shard count. Methods are
// safe for concurrent use; determinism of the event sequence is guaranteed
// when deliveries happen in a deterministic order (the simulator submits
// ratings from a single goroutine).
type Plan struct {
	mu       sync.Mutex
	cfg      Config
	shards   int
	interval int // current 1-based interval; 0 until the first BeginInterval

	delivery []*xrand.Stream // per-shard message verdict streams
	crash    *xrand.Stream   // random crash draws

	downUntil []int // per shard: first interval it is up again; -1 = forever down; 0 = up
	events    []Event
}

// NewPlan builds a plan for the given shard count.
func NewPlan(cfg Config, shards int) (*Plan, error) {
	if shards <= 0 {
		return nil, fmt.Errorf("fault: shard count %d must be positive", shards)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	for i, cr := range cfg.Crashes {
		if cr.Shard >= shards {
			return nil, fmt.Errorf("fault: Crashes[%d] shard %d out of range for %d shards", i, cr.Shard, shards)
		}
	}
	if cfg.CrashDown == 0 {
		cfg.CrashDown = 1
	}
	root := xrand.New(cfg.Seed)
	p := &Plan{
		cfg:       cfg,
		shards:    shards,
		crash:     root.SplitString("crash"),
		downUntil: make([]int, shards),
	}
	msgRoot := root.SplitString("delivery")
	p.delivery = make([]*xrand.Stream, shards)
	for i := range p.delivery {
		p.delivery[i] = msgRoot.Split(uint64(i))
	}
	return p, nil
}

// Shards reports the shard count the plan was built for.
func (p *Plan) Shards() int { return p.shards }

// DeliveryVerdict draws the fate of one message delivery to the given
// shard's mailbox and logs any injected fault.
func (p *Plan) DeliveryVerdict(shard int) Verdict {
	p.mu.Lock()
	defer p.mu.Unlock()
	c := &p.cfg
	if c.Drop == 0 && c.Delay == 0 && c.Duplicate == 0 {
		return Verdict{}
	}
	u := p.delivery[shard].Float64()
	switch {
	case u < c.Drop:
		p.log(shard, KindDrop)
		return Verdict{Drop: true}
	case u < c.Drop+c.Delay:
		p.log(shard, KindDelay)
		return Verdict{Delay: true}
	case u < c.Drop+c.Delay+c.Duplicate:
		p.log(shard, KindDuplicate)
		return Verdict{Duplicate: true}
	}
	return Verdict{}
}

// BeginInterval advances the plan to the next update interval and returns
// the shard transitions to apply: restarts lists shards whose outage ends
// this interval (they come back with fresh state after the interval's
// drain), crashes the shards going down now (their current interval ledgers
// are lost). A shard never appears in both.
func (p *Plan) BeginInterval() (crashes, restarts []int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.interval++
	t := p.interval
	for s := 0; s < p.shards; s++ {
		if p.downUntil[s] > 0 && p.downUntil[s] <= t {
			p.downUntil[s] = 0
			restarts = append(restarts, s)
			p.log(s, KindRestart)
		}
	}
	down := func(s, dur int) {
		if p.downUntil[s] != 0 { // already down
			return
		}
		if dur < 0 {
			p.downUntil[s] = -1
		} else {
			if dur == 0 {
				dur = 1
			}
			p.downUntil[s] = t + dur
		}
		crashes = append(crashes, s)
		p.log(s, KindCrash)
	}
	for _, cr := range p.cfg.Crashes {
		if cr.AtInterval == t {
			down(cr.Shard, cr.Down)
		}
	}
	if p.cfg.CrashRate > 0 {
		for s := 0; s < p.shards; s++ {
			if p.downUntil[s] == 0 && p.crash.Bool(p.cfg.CrashRate) {
				down(s, p.cfg.CrashDown)
			}
		}
	}
	return crashes, restarts
}

// Interval reports the current 1-based interval (0 before the first
// BeginInterval).
func (p *Plan) Interval() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.interval
}

// Down reports whether the plan currently holds the shard down.
func (p *Plan) Down(shard int) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.downUntil[shard] != 0
}

// Events returns a copy of the injected-event log in injection order.
func (p *Plan) Events() []Event {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]Event(nil), p.events...)
}

// State is a plan's complete persistent state at an interval boundary. The
// random streams themselves are not serialized; instead the number of draws
// consumed from each is recorded, and ImportState fast-forwards freshly
// seeded streams to the same position (internal/xrand sources advance exactly
// once per draw). A restored plan therefore produces the same verdict
// sequence the uninterrupted plan would have.
type State struct {
	Interval      int
	DownUntil     []int
	Events        []Event
	DeliveryDraws []uint64 // per-shard draws consumed from the delivery streams
	CrashDraws    uint64   // draws consumed from the crash stream
}

// ExportState deep-copies the plan state for snapshotting.
func (p *Plan) ExportState() State {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := State{
		Interval:      p.interval,
		DownUntil:     append([]int(nil), p.downUntil...),
		Events:        append([]Event(nil), p.events...),
		DeliveryDraws: make([]uint64, p.shards),
		CrashDraws:    p.crash.SourceDraws(),
	}
	for i, s := range p.delivery {
		st.DeliveryDraws[i] = s.SourceDraws()
	}
	return st
}

// ImportState restores a previously exported state into a plan built with the
// same Config and shard count, discarding stream draws so future verdicts
// match the exporting plan's continuation exactly.
func (p *Plan) ImportState(st State) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(st.DownUntil) != p.shards || len(st.DeliveryDraws) != p.shards {
		panic(fmt.Sprintf("fault: state for %d shards imported into %d-shard plan", len(st.DownUntil), p.shards))
	}
	p.interval = st.Interval
	p.downUntil = append(p.downUntil[:0], st.DownUntil...)
	p.events = append([]Event(nil), st.Events...)
	for i, s := range p.delivery {
		if n := s.SourceDraws(); n > st.DeliveryDraws[i] {
			panic(fmt.Sprintf("fault: delivery stream %d already past restore point (%d > %d)", i, n, st.DeliveryDraws[i]))
		}
		s.Discard(st.DeliveryDraws[i] - s.SourceDraws())
	}
	if n := p.crash.SourceDraws(); n > st.CrashDraws {
		panic(fmt.Sprintf("fault: crash stream already past restore point (%d > %d)", n, st.CrashDraws))
	}
	p.crash.Discard(st.CrashDraws - p.crash.SourceDraws())
}

// log appends one event; callers hold p.mu.
func (p *Plan) log(shard int, kind string) {
	p.events = append(p.events, Event{
		Seq:      len(p.events) + 1,
		Interval: p.interval,
		Shard:    shard,
		Kind:     kind,
	})
}
