package fault

import (
	"reflect"
	"testing"
)

func TestConfigEnabled(t *testing.T) {
	if (Config{}).Enabled() {
		t.Error("zero config should be disabled")
	}
	for _, c := range []Config{
		{Drop: 0.1}, {Delay: 0.1}, {Duplicate: 0.1}, {CrashRate: 0.01},
		{Crashes: []Crash{{Shard: 0, AtInterval: 1}}}, {AlwaysOn: true},
	} {
		if !c.Enabled() {
			t.Errorf("%+v should be enabled", c)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	for _, c := range []Config{
		{Drop: -0.1},
		{Delay: 1.5},
		{CrashRate: 2},
		{Drop: 0.6, Delay: 0.3, Duplicate: 0.2}, // sums past 1
		{Crashes: []Crash{{Shard: -1, AtInterval: 1}}},
		{Crashes: []Crash{{Shard: 0, AtInterval: 0}}},
	} {
		if err := c.Validate(); err == nil {
			t.Errorf("%+v should fail validation", c)
		}
	}
	if err := (Config{Drop: 0.5, Delay: 0.25, Duplicate: 0.25}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestNewPlanValidation(t *testing.T) {
	if _, err := NewPlan(Config{}, 0); err == nil {
		t.Error("zero shards should error")
	}
	if _, err := NewPlan(Config{Crashes: []Crash{{Shard: 5, AtInterval: 1}}}, 4); err == nil {
		t.Error("out-of-range crash shard should error")
	}
}

// TestPlanDeterministic is the golden property: two plans built from the
// same configuration produce identical verdict sequences and event logs.
func TestPlanDeterministic(t *testing.T) {
	cfg := Config{Seed: 11, Drop: 0.2, Delay: 0.1, Duplicate: 0.05, CrashRate: 0.1}
	run := func() ([]Verdict, []Event) {
		p, err := NewPlan(cfg, 4)
		if err != nil {
			t.Fatal(err)
		}
		var vs []Verdict
		for i := 0; i < 5; i++ {
			p.BeginInterval()
			for d := 0; d < 50; d++ {
				vs = append(vs, p.DeliveryVerdict(d%4))
			}
		}
		return vs, p.Events()
	}
	v1, e1 := run()
	v2, e2 := run()
	if !reflect.DeepEqual(v1, v2) {
		t.Fatal("verdict sequences diverged for identical configs")
	}
	if !reflect.DeepEqual(e1, e2) {
		t.Fatal("event logs diverged for identical configs")
	}
	if len(e1) == 0 {
		t.Fatal("plan with 20% drop over 250 deliveries injected nothing")
	}
}

func TestSeedChangesSequence(t *testing.T) {
	mk := func(seed uint64) []Event {
		p, err := NewPlan(Config{Seed: seed, Drop: 0.3}, 2)
		if err != nil {
			t.Fatal(err)
		}
		p.BeginInterval()
		for d := 0; d < 100; d++ {
			p.DeliveryVerdict(d % 2)
		}
		return p.Events()
	}
	if reflect.DeepEqual(mk(1), mk(2)) {
		t.Fatal("different seeds produced identical event logs")
	}
}

func TestScheduledCrashAndRestart(t *testing.T) {
	p, err := NewPlan(Config{Crashes: []Crash{{Shard: 1, AtInterval: 2, Down: 2}}}, 3)
	if err != nil {
		t.Fatal(err)
	}
	c, r := p.BeginInterval() // interval 1
	if len(c) != 0 || len(r) != 0 {
		t.Fatalf("interval 1: crashes %v restarts %v, want none", c, r)
	}
	c, _ = p.BeginInterval() // interval 2: shard 1 goes down
	if len(c) != 1 || c[0] != 1 {
		t.Fatalf("interval 2 crashes = %v, want [1]", c)
	}
	if !p.Down(1) || p.Down(0) {
		t.Fatal("down tracking wrong after crash")
	}
	c, r = p.BeginInterval() // interval 3: still down
	if len(c) != 0 || len(r) != 0 {
		t.Fatalf("interval 3: crashes %v restarts %v, want none", c, r)
	}
	_, r = p.BeginInterval() // interval 4: restart
	if len(r) != 1 || r[0] != 1 {
		t.Fatalf("interval 4 restarts = %v, want [1]", r)
	}
	if p.Down(1) {
		t.Fatal("shard 1 should be up after restart")
	}
}

func TestCrashForever(t *testing.T) {
	p, err := NewPlan(Config{Crashes: []Crash{{Shard: 0, AtInterval: 1, Down: -1}}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	p.BeginInterval()
	for i := 0; i < 10; i++ {
		_, r := p.BeginInterval()
		if len(r) != 0 {
			t.Fatalf("forever-down shard restarted at interval %d", p.Interval())
		}
	}
	if !p.Down(0) {
		t.Fatal("shard 0 should still be down")
	}
}

func TestZeroRatesVerdictsClean(t *testing.T) {
	p, err := NewPlan(Config{AlwaysOn: true}, 2)
	if err != nil {
		t.Fatal(err)
	}
	p.BeginInterval()
	for i := 0; i < 100; i++ {
		if v := p.DeliveryVerdict(i % 2); v != (Verdict{}) {
			t.Fatalf("zero-rate plan injected %+v", v)
		}
	}
	if len(p.Events()) != 0 {
		t.Fatal("zero-rate plan logged events")
	}
}
