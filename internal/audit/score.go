package audit

import (
	"fmt"
	"io"
	"sort"

	"socialtrust/internal/core"
	"socialtrust/internal/obs/event"
)

// behaviorOrder fixes the scoring and rendering order of the four
// suspicious behaviors of Section 3.
var behaviorOrder = []core.Behavior{core.B1, core.B2, core.B3, core.B4}

// AnyBehavior labels the union row: a decision counts once regardless of
// how many behaviors fired, and a truth pair counts as detected when any
// behavior flagged it — the "did the filter catch this colluding pair at
// all" question.
const AnyBehavior = "any"

// BehaviorScore is the detection quality of one behavior (or the "any"
// union) over one cycle or the whole run.
//
//   - Precision = TruePositives / Fired: of the decisions firing this
//     behavior, the fraction whose directed pair really is a collusion
//     edge of the matching polarity (positive edges for B1–B3, negative
//     for B4, either for "any").
//   - Recall = DetectedPairs / TruthPairs: of the targetable truth edges
//     (per cycle, or edge-cycles over the run), the fraction flagged.
//   - F1 is their harmonic mean.
type BehaviorScore struct {
	Behavior      string  `json:"behavior"`
	Fired         int     `json:"fired"`
	TruePositives int     `json:"true_positives"`
	DetectedPairs int     `json:"detected_pairs"`
	TruthPairs    int     `json:"truth_pairs"`
	Precision     float64 `json:"precision"`
	Recall        float64 `json:"recall"`
	F1            float64 `json:"f1"`
}

// CycleScore is one update interval's detection quality, one row per
// behavior plus the "any" union.
type CycleScore struct {
	Cycle  int             `json:"cycle"`
	Scores []BehaviorScore `json:"scores"`
}

// Report is the forensics join of a run's filter decisions against its
// ground truth.
type Report struct {
	Model  string `json:"model"`
	Engine string `json:"engine"`
	// Cycles is the number of update intervals the run covered (the recall
	// denominator basis: every truth edge is targetable every interval,
	// since collusion edges rate at every query cycle).
	Cycles    int `json:"cycles"`
	Decisions int `json:"decisions"`
	// Truth-edge population by polarity.
	PositiveTruthEdges int `json:"positive_truth_edges"`
	NegativeTruthEdges int `json:"negative_truth_edges"`

	PerCycle []CycleScore    `json:"per_cycle"`
	Overall  []BehaviorScore `json:"overall"`
}

type pair struct{ from, to int }

// Score joins the FilterDecision events in the stream against the ground
// truth and returns per-cycle and overall precision/recall/F1 per behavior.
// CycleSeries events only contribute the interval count; Manager events are
// ignored.
func Score(gt GroundTruth, events []event.Event) Report {
	posTruth := make(map[pair]bool)
	negTruth := make(map[pair]bool)
	for _, e := range gt.Edges {
		if e.Negative {
			negTruth[pair{e.From, e.To}] = true
		} else {
			posTruth[pair{e.From, e.To}] = true
		}
	}

	rep := Report{
		Model:              gt.Model,
		Engine:             gt.Engine,
		PositiveTruthEdges: len(posTruth),
		NegativeTruthEdges: len(negTruth),
	}

	// rowKey indexes the "any" union as a pseudo-behavior 0.
	type rowKey struct {
		cycle    int
		behavior core.Behavior
	}
	type row struct {
		fired, tp int
		detected  map[pair]bool
	}
	rows := make(map[rowKey]*row)
	get := func(cycle int, b core.Behavior) *row {
		k := rowKey{cycle, b}
		r := rows[k]
		if r == nil {
			r = &row{detected: make(map[pair]bool)}
			rows[k] = r
		}
		return r
	}
	truthFor := func(b core.Behavior) map[pair]bool {
		if b == core.B4 {
			return negTruth
		}
		return posTruth
	}

	cycles := 0
	cycleSet := make(map[int]bool)
	for _, e := range events {
		if e.Cycle != nil && e.Cycle.Cycle > cycles {
			cycles = e.Cycle.Cycle
		}
		d := e.Filter
		if d == nil {
			continue
		}
		rep.Decisions++
		cycleSet[d.Interval] = true
		if d.Interval > cycles {
			cycles = d.Interval
		}
		p := pair{d.Rater, d.Ratee}
		for _, b := range behaviorOrder {
			if core.Behavior(d.Mask)&b == 0 {
				continue
			}
			r := get(d.Interval, b)
			r.fired++
			if truthFor(b)[p] {
				r.tp++
				r.detected[p] = true
			}
		}
		any := get(d.Interval, 0)
		any.fired++
		if posTruth[p] || negTruth[p] {
			any.tp++
			any.detected[p] = true
		}
	}
	rep.Cycles = cycles

	finish := func(label string, fired, tp, detected, truth int) BehaviorScore {
		s := BehaviorScore{
			Behavior: label, Fired: fired, TruePositives: tp,
			DetectedPairs: detected, TruthPairs: truth,
		}
		if fired > 0 {
			s.Precision = float64(tp) / float64(fired)
		}
		if truth > 0 {
			s.Recall = float64(detected) / float64(truth)
		}
		if s.Precision+s.Recall > 0 {
			s.F1 = 2 * s.Precision * s.Recall / (s.Precision + s.Recall)
		}
		return s
	}
	label := func(b core.Behavior) string {
		if b == 0 {
			return AnyBehavior
		}
		return b.String()
	}
	truthCount := func(b core.Behavior) int {
		switch b {
		case 0:
			return len(posTruth) + len(negTruth)
		case core.B4:
			return len(negTruth)
		default:
			return len(posTruth)
		}
	}

	// Per-cycle rows for every interval that produced at least one
	// decision, in cycle order.
	cyclesWithDecisions := make([]int, 0, len(cycleSet))
	for c := range cycleSet {
		cyclesWithDecisions = append(cyclesWithDecisions, c)
	}
	sort.Ints(cyclesWithDecisions)
	all := append([]core.Behavior{}, behaviorOrder...)
	all = append(all, 0)
	for _, c := range cyclesWithDecisions {
		cs := CycleScore{Cycle: c}
		for _, b := range all {
			r := rows[rowKey{c, b}]
			if r == nil {
				r = &row{}
			}
			cs.Scores = append(cs.Scores, finish(label(b), r.fired, r.tp, len(r.detected), truthCount(b)))
		}
		rep.PerCycle = append(rep.PerCycle, cs)
	}

	// Overall rows pool counts across every covered interval: precision
	// over all firings, recall over edge-intervals (truth edges × Cycles —
	// an interval where a truth edge went unflagged is a miss even if no
	// decision fired at all that interval).
	for _, b := range all {
		fired, tp, detected := 0, 0, 0
		for _, c := range cyclesWithDecisions {
			if r := rows[rowKey{c, b}]; r != nil {
				fired += r.fired
				tp += r.tp
				detected += len(r.detected)
			}
		}
		rep.Overall = append(rep.Overall, finish(label(b), fired, tp, detected, truthCount(b)*rep.Cycles))
	}
	return rep
}

// WriteTable renders the overall detection-quality table.
func (r Report) WriteTable(w io.Writer) error {
	if _, err := fmt.Fprintf(w,
		"detection quality: model=%s engine=%s cycles=%d decisions=%d truth-edges=%d(+)/%d(-)\n",
		r.Model, r.Engine, r.Cycles, r.Decisions,
		r.PositiveTruthEdges, r.NegativeTruthEdges); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-9s %8s %8s %9s %10s %8s %8s\n",
		"behavior", "fired", "tp", "detected", "truth", "prec", "recall"); err != nil {
		return err
	}
	for _, s := range r.Overall {
		if _, err := fmt.Fprintf(w, "%-9s %8d %8d %9d %10d %8.3f %8.3f   F1=%.3f\n",
			s.Behavior, s.Fired, s.TruePositives, s.DetectedPairs, s.TruthPairs,
			s.Precision, s.Recall, s.F1); err != nil {
			return err
		}
	}
	return nil
}

// WritePerCycle renders one compact line per interval: the "any" union's
// precision/recall plus which behaviors fired.
func (r Report) WritePerCycle(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%-7s %9s %8s %8s   %s\n",
		"cycle", "decisions", "prec", "recall", "fired-by-behavior"); err != nil {
		return err
	}
	for _, cs := range r.PerCycle {
		var any BehaviorScore
		byB := ""
		for _, s := range cs.Scores {
			if s.Behavior == AnyBehavior {
				any = s
				continue
			}
			if byB != "" {
				byB += " "
			}
			byB += fmt.Sprintf("%s:%d", s.Behavior, s.Fired)
		}
		if _, err := fmt.Fprintf(w, "%-7d %9d %8.3f %8.3f   %s\n",
			cs.Cycle, any.Fired, any.Precision, any.Recall, byB); err != nil {
			return err
		}
	}
	return nil
}
