// Package audit turns the flight recorder's decision-event stream
// (internal/obs/event) into detection-quality forensics. The simulator
// knows which nodes are colluders and which directed pairs carry collusion
// ratings — the ground truth the paper's Section 5 evaluation is scored
// against — so instead of eyeballing aggregate counters, the filter's
// B1–B4 firings can be joined against that truth and scored as
// per-behavior, per-cycle precision/recall/F1.
//
// The package has three parts:
//
//   - GroundTruth, the serialized truth of one simulation run (node roles
//     plus the directed collusion rating edges);
//   - Score, the forensics pass joining FilterDecision events against a
//     GroundTruth into a Report;
//   - WriteDir/LoadDir, the on-disk audit-directory format shared by
//     sim.Config.AuditDir and cmd/socialtrust-audit (ground_truth.json
//     plus one JSONL stream per event kind).
package audit

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"socialtrust/internal/fault"
	"socialtrust/internal/obs/event"
	"socialtrust/internal/obs/span"
)

// TruthEdge is one directed collusion rating edge: From floods To with
// ratings (positive boosts unless Negative, which marks a slander edge).
type TruthEdge struct {
	From     int  `json:"from"`
	To       int  `json:"to"`
	Negative bool `json:"negative,omitempty"`
}

// GroundTruth is the serialized truth of one simulation run.
type GroundTruth struct {
	NumNodes int    `json:"num_nodes"`
	Model    string `json:"model"`  // collusion model (PCM/MCM/MMM/none)
	Engine   string `json:"engine"` // underlying reputation engine
	Seed     uint64 `json:"seed"`

	Pretrusted []int `json:"pretrusted"`
	Colluders  []int `json:"colluders"`
	// CompromisedPretrusted lists pretrusted nodes wired into the
	// collusion; SlanderVictims the normal peers targeted by negative
	// collusion. Both empty in the paper's base setups.
	CompromisedPretrusted []int `json:"compromised_pretrusted,omitempty"`
	SlanderVictims        []int `json:"slander_victims,omitempty"`

	// Edges are the directed collusion rating edges (one per direction for
	// pair-wise and MMM back-rating structures).
	Edges []TruthEdge `json:"edges"`
}

// File names inside an audit directory.
const (
	GroundTruthFile = "ground_truth.json"
	DecisionsFile   = "filter_decisions.jsonl"
	CyclesFile      = "cycle_series.jsonl"
	ManagerFile     = "manager_events.jsonl"
	// HealthFile holds watchdog status transitions from the health sampler
	// (internal/obs/health). Health events come from an asynchronous sampler
	// goroutine, so they live in their own file: the deterministic streams
	// above stay byte-comparable between health-on and health-off runs.
	HealthFile = "health_events.jsonl"
	// FaultsFile holds the fault plan's injected-event log for runs under
	// fault injection (absent otherwise). Same seed ⇒ byte-identical file —
	// the golden determinism artifact.
	FaultsFile = "fault_events.jsonl"
	// TraceFile holds the interval span stream of a traced run (absent when
	// tracing was off), one span per line; ChromeTraceFile is the same trace
	// in Chrome trace-event JSON, loadable in Perfetto. Both sit next to the
	// event streams when sim.Config.TraceDir points at the audit dir.
	TraceFile       = "trace_spans.jsonl"
	ChromeTraceFile = "trace_chrome.json"
)

// WriteTrace writes a traced run's span stream (TraceFile) and its Chrome
// trace-event export (ChromeTraceFile) into dir, creating it if needed.
func WriteTrace(dir string, spans []span.Span) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("audit: %w", err)
	}
	f, err := os.Create(filepath.Join(dir, TraceFile))
	if err != nil {
		return fmt.Errorf("audit: %w", err)
	}
	werr := span.WriteJSONL(f, spans)
	cerr := f.Close()
	if werr != nil {
		return fmt.Errorf("audit: write %s: %w", TraceFile, werr)
	}
	if cerr != nil {
		return fmt.Errorf("audit: close %s: %w", TraceFile, cerr)
	}
	cf, err := os.Create(filepath.Join(dir, ChromeTraceFile))
	if err != nil {
		return fmt.Errorf("audit: %w", err)
	}
	werr = span.WriteChromeTrace(cf, spans)
	cerr = cf.Close()
	if werr != nil {
		return fmt.Errorf("audit: write %s: %w", ChromeTraceFile, werr)
	}
	if cerr != nil {
		return fmt.Errorf("audit: close %s: %w", ChromeTraceFile, cerr)
	}
	return nil
}

// LoadTrace reads the span stream of an audit (or trace) directory. A
// missing file loads as an empty stream (the run was not traced).
func LoadTrace(dir string) ([]span.Span, error) {
	f, err := os.Open(filepath.Join(dir, TraceFile))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("audit: %w", err)
	}
	defer f.Close()
	spans, err := span.ReadJSONL(f)
	if err != nil {
		return nil, fmt.Errorf("audit: read %s: %w", TraceFile, err)
	}
	return spans, nil
}

// WriteFaultEvents writes a fault plan's injected-event log alongside the
// audit streams, one JSON object per line in injection order.
func WriteFaultEvents(dir string, events []fault.Event) error {
	f, err := os.Create(filepath.Join(dir, FaultsFile))
	if err != nil {
		return fmt.Errorf("audit: %w", err)
	}
	enc := json.NewEncoder(f)
	for i := range events {
		if err := enc.Encode(&events[i]); err != nil {
			f.Close()
			return fmt.Errorf("audit: write %s: %w", FaultsFile, err)
		}
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("audit: close %s: %w", FaultsFile, err)
	}
	return nil
}

// LoadFaultEvents reads the injected-event log of an audit directory.
// A missing file loads as an empty log (the run injected no faults).
func LoadFaultEvents(dir string) ([]fault.Event, error) {
	f, err := os.Open(filepath.Join(dir, FaultsFile))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("audit: %w", err)
	}
	defer f.Close()
	dec := json.NewDecoder(f)
	var out []fault.Event
	for dec.More() {
		var e fault.Event
		if err := dec.Decode(&e); err != nil {
			return nil, fmt.Errorf("audit: read %s: %w", FaultsFile, err)
		}
		out = append(out, e)
	}
	return out, nil
}

// WriteDir writes one run's audit output: the ground truth and the event
// stream split into one JSONL file per event kind. The directory is
// created if needed; existing files are truncated. Every per-kind file is
// always written (possibly empty) so consumers can rely on the layout.
func WriteDir(dir string, gt GroundTruth, events []event.Event) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("audit: %w", err)
	}
	gtJSON, err := json.MarshalIndent(gt, "", "  ")
	if err != nil {
		return fmt.Errorf("audit: marshal ground truth: %w", err)
	}
	if err := os.WriteFile(filepath.Join(dir, GroundTruthFile), append(gtJSON, '\n'), 0o644); err != nil {
		return fmt.Errorf("audit: %w", err)
	}
	var decisions, cycles, managers, health []event.Event
	for _, e := range events {
		switch {
		case e.Filter != nil:
			decisions = append(decisions, e)
		case e.Cycle != nil:
			cycles = append(cycles, e)
		case e.Manager != nil:
			managers = append(managers, e)
		case e.Health != nil:
			health = append(health, e)
		}
	}
	for _, part := range []struct {
		name   string
		events []event.Event
	}{
		{DecisionsFile, decisions},
		{CyclesFile, cycles},
		{ManagerFile, managers},
		{HealthFile, health},
	} {
		f, err := os.Create(filepath.Join(dir, part.name))
		if err != nil {
			return fmt.Errorf("audit: %w", err)
		}
		werr := event.WriteJSONL(f, part.events)
		cerr := f.Close()
		if werr != nil {
			return fmt.Errorf("audit: write %s: %w", part.name, werr)
		}
		if cerr != nil {
			return fmt.Errorf("audit: close %s: %w", part.name, cerr)
		}
	}
	return nil
}

// LoadDir reads an audit directory written by WriteDir: the ground truth
// (required) and every present JSONL event stream, merged back into one
// sequence-ordered slice. Missing JSONL files load as empty streams.
func LoadDir(dir string) (GroundTruth, []event.Event, error) {
	var gt GroundTruth
	b, err := os.ReadFile(filepath.Join(dir, GroundTruthFile))
	if err != nil {
		return gt, nil, fmt.Errorf("audit: %w", err)
	}
	if err := json.Unmarshal(b, &gt); err != nil {
		return gt, nil, fmt.Errorf("audit: parse %s: %w", GroundTruthFile, err)
	}
	var events []event.Event
	for _, name := range []string{DecisionsFile, CyclesFile, ManagerFile, HealthFile} {
		f, err := os.Open(filepath.Join(dir, name))
		if os.IsNotExist(err) {
			continue
		}
		if err != nil {
			return gt, nil, fmt.Errorf("audit: %w", err)
		}
		part, perr := event.ReadJSONL(f)
		f.Close()
		if perr != nil {
			return gt, nil, fmt.Errorf("audit: read %s: %w", name, perr)
		}
		events = append(events, part...)
	}
	sort.SliceStable(events, func(a, b int) bool { return events[a].Seq < events[b].Seq })
	return gt, events, nil
}
