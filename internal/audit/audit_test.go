package audit

import (
	"path/filepath"
	"strings"
	"testing"

	"socialtrust/internal/core"
	"socialtrust/internal/obs/event"
)

// synthetic run: two positive truth edges, one negative truth edge, two
// cycles of decisions mixing true and false positives.
func syntheticRun() (GroundTruth, []event.Event) {
	gt := GroundTruth{
		NumNodes: 10, Model: "MCM", Engine: "EigenTrust", Seed: 1,
		Pretrusted: []int{0}, Colluders: []int{1, 2, 3},
		Edges: []TruthEdge{
			{From: 1, To: 2},
			{From: 3, To: 2},
			{From: 1, To: 4, Negative: true},
		},
	}
	fd := func(interval, rater, ratee int, mask core.Behavior) event.Event {
		return event.Event{Filter: &event.FilterDecision{
			Interval: interval, Rater: rater, Ratee: ratee,
			Mask: int(mask), Behaviors: mask.String(),
			Weight: 0.5, GaussianWeight: 0.5, FreqScale: 1,
		}}
	}
	events := []event.Event{
		// Cycle 1: both positive truth edges caught (one by B1|B3, one by
		// B1), plus one false positive on an innocent pair (5→6).
		fd(1, 1, 2, core.B1|core.B3),
		fd(1, 3, 2, core.B1),
		fd(1, 5, 6, core.B1),
		// Cycle 2: the slander edge caught by B4; positive edges missed.
		fd(2, 1, 4, core.B4),
		{Cycle: &event.CycleSeries{Cycle: 1}},
		{Cycle: &event.CycleSeries{Cycle: 2}},
	}
	return gt, events
}

func findScore(t *testing.T, scores []BehaviorScore, behavior string) BehaviorScore {
	t.Helper()
	for _, s := range scores {
		if s.Behavior == behavior {
			return s
		}
	}
	t.Fatalf("no %s row in %+v", behavior, scores)
	return BehaviorScore{}
}

func TestScoreSynthetic(t *testing.T) {
	gt, events := syntheticRun()
	rep := Score(gt, events)

	if rep.Cycles != 2 || rep.Decisions != 4 {
		t.Fatalf("cycles=%d decisions=%d, want 2/4", rep.Cycles, rep.Decisions)
	}
	if rep.PositiveTruthEdges != 2 || rep.NegativeTruthEdges != 1 {
		t.Fatalf("truth edges %d/%d, want 2/1", rep.PositiveTruthEdges, rep.NegativeTruthEdges)
	}

	// B1 fired 3 times overall, 2 of them on positive truth edges; over 2
	// cycles the recall denominator is 2 edges × 2 cycles = 4, detected 2.
	b1 := findScore(t, rep.Overall, "B1")
	if b1.Fired != 3 || b1.TruePositives != 2 {
		t.Errorf("B1 overall fired/tp = %d/%d, want 3/2", b1.Fired, b1.TruePositives)
	}
	if b1.TruthPairs != 4 || b1.DetectedPairs != 2 {
		t.Errorf("B1 overall detected/truth = %d/%d, want 2/4", b1.DetectedPairs, b1.TruthPairs)
	}
	if got, want := b1.Precision, 2.0/3.0; got < want-1e-9 || got > want+1e-9 {
		t.Errorf("B1 precision = %g, want %g", got, want)
	}
	if got := b1.Recall; got != 0.5 {
		t.Errorf("B1 recall = %g, want 0.5", got)
	}

	// B4 fired once, on the negative truth edge: perfect precision, and
	// 1 of 1×2 edge-cycles detected.
	b4 := findScore(t, rep.Overall, "B4")
	if b4.Fired != 1 || b4.TruePositives != 1 || b4.Precision != 1 {
		t.Errorf("B4 overall = %+v", b4)
	}
	if b4.TruthPairs != 2 || b4.Recall != 0.5 {
		t.Errorf("B4 recall = %g (truth %d), want 0.5 (2)", b4.Recall, b4.TruthPairs)
	}

	// "any": 4 decisions, 3 on truth pairs; 3 detected of 3 edges × 2
	// cycles.
	anyRow := findScore(t, rep.Overall, AnyBehavior)
	if anyRow.Fired != 4 || anyRow.TruePositives != 3 {
		t.Errorf("any overall = %+v", anyRow)
	}
	if anyRow.TruthPairs != 6 || anyRow.DetectedPairs != 3 || anyRow.Recall != 0.5 {
		t.Errorf("any recall = %+v", anyRow)
	}

	// Per-cycle: cycle 1 has perfect positive-edge recall for B1.
	if len(rep.PerCycle) != 2 {
		t.Fatalf("per-cycle rows = %d, want 2", len(rep.PerCycle))
	}
	c1b1 := findScore(t, rep.PerCycle[0].Scores, "B1")
	if c1b1.Recall != 1 || c1b1.TruthPairs != 2 {
		t.Errorf("cycle 1 B1 = %+v, want recall 1 over 2 truth pairs", c1b1)
	}
	c2 := rep.PerCycle[1]
	if c2.Cycle != 2 {
		t.Fatalf("second per-cycle row is cycle %d", c2.Cycle)
	}
	if b := findScore(t, c2.Scores, "B1"); b.Fired != 0 || b.Recall != 0 {
		t.Errorf("cycle 2 B1 = %+v, want silent", b)
	}
}

func TestScoreEmpty(t *testing.T) {
	rep := Score(GroundTruth{Model: "none"}, nil)
	if rep.Cycles != 0 || rep.Decisions != 0 || len(rep.PerCycle) != 0 {
		t.Fatalf("empty score = %+v", rep)
	}
	for _, s := range rep.Overall {
		if s.Precision != 0 || s.Recall != 0 || s.F1 != 0 {
			t.Fatalf("empty overall row %+v not zeroed", s)
		}
	}
}

func TestWriteTables(t *testing.T) {
	gt, events := syntheticRun()
	rep := Score(gt, events)
	var sb strings.Builder
	if err := rep.WriteTable(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"model=MCM", "B1", "B4", "any", "cycles=2"} {
		if !strings.Contains(out, want) {
			t.Errorf("table lacks %q:\n%s", want, out)
		}
	}
	sb.Reset()
	if err := rep.WritePerCycle(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "B1:3") {
		t.Errorf("per-cycle table lacks B1 firing count:\n%s", sb.String())
	}
}

func TestDirRoundTrip(t *testing.T) {
	gt, events := syntheticRun()
	dir := filepath.Join(t.TempDir(), "audit")
	if err := WriteDir(dir, gt, events); err != nil {
		t.Fatal(err)
	}
	gotGT, gotEvents, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if gotGT.Model != gt.Model || len(gotGT.Edges) != len(gt.Edges) || len(gotGT.Colluders) != len(gt.Colluders) {
		t.Fatalf("ground truth mutated: %+v", gotGT)
	}
	if len(gotEvents) != len(events) {
		t.Fatalf("loaded %d events, want %d", len(gotEvents), len(events))
	}
	nFilter, nCycle := 0, 0
	for _, e := range gotEvents {
		switch {
		case e.Filter != nil:
			nFilter++
		case e.Cycle != nil:
			nCycle++
		}
	}
	if nFilter != 4 || nCycle != 2 {
		t.Fatalf("loaded kinds %d/%d, want 4 decisions / 2 cycles", nFilter, nCycle)
	}
	// Scoring the round-tripped stream matches the in-memory result.
	if a, b := Score(gt, events), Score(gotGT, gotEvents); a.Decisions != b.Decisions ||
		findScore(t, a.Overall, AnyBehavior) != findScore(t, b.Overall, AnyBehavior) {
		t.Fatal("round-tripped score diverges")
	}
}

func TestLoadDirMissingGroundTruth(t *testing.T) {
	if _, _, err := LoadDir(t.TempDir()); err == nil {
		t.Fatal("missing ground truth did not error")
	}
}
