// Transport abstraction: the seam along which a manager shard moves out of
// process. The overlay's mailbox protocol (msgSubmitBatch / query / drain /
// update-reps, plus the fault-tolerance control operations) is mirrored here
// as an interface; internal/cluster implements it over sockets, and
// Options.Transport tells NewWithOptions which shards live behind it.
//
// The contract is deliberately shaped like the in-process mailbox:
//
//   - Submit operations return a wait function, so a caller can issue one
//     send per shard and then collect the acknowledgements — the
//     send-all-then-collect overlap submitBatchDirect relies on, and the
//     hook pipelined transports use to keep multiple batches in flight.
//   - Per-entry ledger errors travel inside the reply ([]error, index-
//     aligned, nil when everything landed); transport-level failures are the
//     second return and map onto the overlay's typed errors (a dead
//     connection behaves like ErrShardDown, a lapsed deadline like
//     ErrTimeout).
//   - Crash/Restart/Mark/CompactWAL/ResetWAL mirror the overlay's shard
//     lifecycle and durability surface: a remote shard owns its WAL, so the
//     coordinator issues these as operations instead of touching files.
package manager

import (
	"time"

	"socialtrust/internal/rating"
)

// BatchEntry is one rating of a batched submission, carrying the same
// per-rating replica/deferred fate bits a standalone msgSubmit would.
type BatchEntry struct {
	R        rating.Rating
	Replica  bool // targets the shard's replica mirror ledger
	Deferred bool // delayed delivery: applied at the next drain
}

// DrainSnapshots is one shard's answer to a drain: its primary interval
// snapshot and (fault-tolerant mode) the mirror of its predecessor's.
type DrainSnapshots struct {
	Primary    rating.Snapshot
	Replica    rating.Snapshot
	HasReplica bool
}

// ShardConn is one remote shard's endpoint. Implementations must be safe for
// concurrent use; the overlay drains all shards concurrently and submits from
// many goroutines.
type ShardConn interface {
	// SubmitPlain delivers a direct-mode sub-batch (primary ledger adds
	// only). The returned wait function blocks until the shard acknowledges —
	// there is no deadline, matching the in-process direct path, but a dead
	// shard must eventually fail the wait rather than hang forever.
	SubmitPlain(rs []rating.Rating) func() ([]error, error)

	// SubmitEntries delivers a fault-mode sub-batch with per-entry fate bits.
	// timeout bounds the wait (zero means no deadline).
	SubmitEntries(entries []BatchEntry, timeout time.Duration) func() ([]error, error)

	// Drain flushes the shard's deferred submissions and returns its interval
	// snapshots. timeout bounds the wait (zero means no deadline).
	Drain(timeout time.Duration) (DrainSnapshots, error)

	// UpdateReps installs the freshly broadcast reputation vector.
	UpdateReps(reps []float64, timeout time.Duration) error

	// Crash kills the shard's remote incarnation: its interval ledgers are
	// discarded, its WAL survives.
	Crash() error

	// Restart installs a fresh remote incarnation synced to reps, replaying
	// the shard's primary WAL records above floor and its fated records
	// (replica mirror, deferred queues) above replicaFloor. With
	// markRecovered set the replayed sequence numbers are registered for
	// duplicate-ack dedupe (the re-delivery path after a worker process
	// loss).
	Restart(reps []float64, floor, replicaFloor uint64, markRecovered bool) error

	// Mark stamps an interval mark on the shard's WAL (fsync per policy).
	Mark(interval uint64) error

	// CompactWAL rotates the shard's WAL if every record is at or below
	// coveredSeq (the shard's drained high-water mark).
	CompactWAL(coveredSeq uint64) error

	// ResetWAL discards the shard's WAL contents.
	ResetWAL() error
}

// Transport routes shards out of process. Start is called once from
// NewWithOptions — before any Shard endpoint is used — with the overlay
// geometry and the initial reputation vector; Close is called from
// Overlay.Close after the in-process shards have stopped.
type Transport interface {
	Start(numNodes int, replicated bool, reps []float64) error
	// Shard returns shard i's remote endpoint, or nil to host the shard
	// in-process.
	Shard(i int) ShardConn
	Close() error
}
