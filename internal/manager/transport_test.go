package manager

import (
	"errors"
	"sync"
	"testing"
	"time"

	"socialtrust/internal/rating"
	"socialtrust/internal/reputation/ebay"
)

// fakeShard is an in-memory stand-in for one worker-hosted shard: a ledger
// pair, the broadcast vector copy, and a journal of every acknowledged rating
// standing in for the worker's WAL (Restart replays it above the floor).
type fakeShard struct {
	mu       sync.Mutex
	down     bool
	ledger   *rating.Ledger
	replica  *rating.Ledger
	deferred []rating.Rating
	reps     []float64
	journal  []rating.Rating // acked ratings, in order — the fake WAL

	marks    []uint64
	compacts []uint64
	resets   int

	// Failure injection: when set, every operation returns this error.
	failWith error
}

// fakeTransport implements Transport entirely in memory, mirroring the
// worker's semantics closely enough that an overlay routed through it must
// produce bit-identical results to an in-process one.
type fakeTransport struct {
	numShards  int
	numNodes   int
	replicated bool
	shards     []*fakeShard
	started    bool
	closed     bool
	// local marks shard indices that stay in-process (Shard returns nil).
	local map[int]bool
}

func newFakeTransport(numShards int) *fakeTransport {
	return &fakeTransport{numShards: numShards, local: map[int]bool{}}
}

func (ft *fakeTransport) Start(numNodes int, replicated bool, reps []float64) error {
	ft.started = true
	ft.numNodes = numNodes
	ft.replicated = replicated
	ft.shards = make([]*fakeShard, ft.numShards)
	for i := range ft.shards {
		fs := &fakeShard{ledger: rating.NewLedger(numNodes), reps: append([]float64(nil), reps...)}
		if replicated {
			fs.replica = rating.NewLedger(numNodes)
		}
		ft.shards[i] = fs
	}
	return nil
}

func (ft *fakeTransport) Shard(i int) ShardConn {
	if ft.local[i] {
		return nil
	}
	return &fakePort{ft: ft, i: i}
}

func (ft *fakeTransport) Close() error { ft.closed = true; return nil }

type fakePort struct {
	ft *fakeTransport
	i  int
}

func (p *fakePort) shard() *fakeShard { return p.ft.shards[p.i] }

func (p *fakePort) SubmitPlain(rs []rating.Rating) func() ([]error, error) {
	fs := p.shard()
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.failWith != nil {
		err := fs.failWith
		return func() ([]error, error) { return nil, err }
	}
	if fs.down {
		return func() ([]error, error) { return nil, errors.New("fake: shard is down") }
	}
	errs := fs.ledger.AddBatch(rs)
	for i, r := range rs {
		if errs == nil || errs[i] == nil {
			fs.journal = append(fs.journal, r)
		}
	}
	return func() ([]error, error) { return errs, nil }
}

func (p *fakePort) SubmitEntries(entries []BatchEntry, timeout time.Duration) func() ([]error, error) {
	fs := p.shard()
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.failWith != nil {
		err := fs.failWith
		return func() ([]error, error) { return nil, err }
	}
	if fs.down {
		return func() ([]error, error) { return nil, errors.New("fake: shard is down") }
	}
	var errs []error
	fail := func(i int, err error) {
		if errs == nil {
			errs = make([]error, len(entries))
		}
		errs[i] = err
	}
	for i, e := range entries {
		switch {
		case e.Deferred:
			fs.deferred = append(fs.deferred, e.R)
		case e.Replica:
			if err := fs.replica.Add(e.R); err != nil {
				fail(i, err)
			}
		default:
			if err := fs.ledger.Add(e.R); err != nil {
				fail(i, err)
				continue
			}
			fs.journal = append(fs.journal, e.R)
		}
	}
	return func() ([]error, error) { return errs, nil }
}

func (p *fakePort) Drain(timeout time.Duration) (DrainSnapshots, error) {
	fs := p.shard()
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.failWith != nil {
		return DrainSnapshots{}, fs.failWith
	}
	if fs.down {
		return DrainSnapshots{}, errors.New("fake: shard is down")
	}
	for _, r := range fs.deferred {
		_ = fs.ledger.Add(r)
	}
	fs.deferred = nil
	var ds DrainSnapshots
	ds.Primary = fs.ledger.EndInterval()
	if fs.replica != nil {
		ds.Replica = fs.replica.EndInterval()
		ds.HasReplica = true
	}
	return ds, nil
}

func (p *fakePort) UpdateReps(reps []float64, timeout time.Duration) error {
	fs := p.shard()
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.failWith != nil {
		return fs.failWith
	}
	fs.reps = append(fs.reps[:0], reps...)
	return nil
}

func (p *fakePort) Crash() error {
	fs := p.shard()
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.down = true
	fs.ledger = nil
	fs.replica = nil
	fs.deferred = nil
	return nil
}

func (p *fakePort) Restart(reps []float64, floor, replicaFloor uint64, markRecovered bool) error {
	fs := p.shard()
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.ledger = rating.NewLedger(p.ft.numNodes)
	if p.ft.replicated {
		fs.replica = rating.NewLedger(p.ft.numNodes)
	}
	fs.reps = append([]float64(nil), reps...)
	recovered := make(map[uint64]int)
	for _, r := range fs.journal {
		if r.Seq <= floor {
			continue
		}
		if err := fs.ledger.Add(r); err != nil {
			continue
		}
		if markRecovered {
			recovered[r.Seq]++
		}
	}
	if len(recovered) > 0 {
		fs.ledger.MarkRecovered(recovered)
	}
	fs.down = false
	return nil
}

func (p *fakePort) Mark(interval uint64) error {
	fs := p.shard()
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.marks = append(fs.marks, interval)
	return nil
}

func (p *fakePort) CompactWAL(coveredSeq uint64) error {
	fs := p.shard()
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.compacts = append(fs.compacts, coveredSeq)
	// Compaction discards the covered prefix of the fake WAL.
	kept := fs.journal[:0]
	for _, r := range fs.journal {
		if r.Seq > coveredSeq {
			kept = append(kept, r)
		}
	}
	fs.journal = kept
	return nil
}

func (p *fakePort) ResetWAL() error {
	fs := p.shard()
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.resets++
	fs.journal = nil
	return nil
}

func transportTrace(n int) []rating.Rating {
	var rs []rating.Rating
	seq := uint64(0)
	for i := 0; i < 3*n; i++ {
		v := 1.0
		if i%4 == 0 {
			v = -1
		}
		seq++
		rs = append(rs, rating.Rating{
			Rater: i % n, Ratee: (i*7 + 1) % n, Value: v,
			Cycle: i % 2, Category: i % 3, Seq: seq,
		})
	}
	return rs
}

// TestTransportMirrorsInProcess is the routing-correctness anchor: the same
// traffic through a transport-backed overlay and an in-process one must
// produce identical reputations, interval after interval.
func TestTransportMirrorsInProcess(t *testing.T) {
	const n, m = 12, 3
	ft := newFakeTransport(m)
	remote, err := NewWithOptions(n, m, ebay.New(n), Options{Transport: ft})
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	local, err := New(n, m, ebay.New(n))
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()
	if !ft.started {
		t.Fatal("transport Start never called")
	}

	for interval := 0; interval < 3; interval++ {
		trace := transportTrace(n)
		if errs := remote.SubmitBatch(trace); errs != nil {
			t.Fatalf("interval %d: remote SubmitBatch: %v", interval, errs)
		}
		if errs := local.SubmitBatch(trace); errs != nil {
			t.Fatalf("interval %d: local SubmitBatch: %v", interval, errs)
		}
		// One single-rating submit exercises submitDirect's remote branch.
		r := rating.Rating{Rater: 1, Ratee: 2, Value: 1, Seq: 10_000 + uint64(interval)}
		if err := remote.Submit(r); err != nil {
			t.Fatal(err)
		}
		if err := local.Submit(r); err != nil {
			t.Fatal(err)
		}
		rr, lr := remote.EndInterval(), local.EndInterval()
		for i := range lr {
			if rr[i] != lr[i] {
				t.Fatalf("interval %d: reputation[%d] remote %v != local %v", interval, i, rr[i], lr[i])
			}
		}
		// Queries are served from the coordinator's remoteReps mirror and must
		// agree with the in-process broadcast copies.
		for node := 0; node < n; node++ {
			rq, err := remote.Query(node)
			if err != nil {
				t.Fatal(err)
			}
			lq, err := local.Query(node)
			if err != nil {
				t.Fatal(err)
			}
			if rq != lq {
				t.Fatalf("interval %d: query(%d) remote %v != local %v", interval, node, rq, lq)
			}
		}
		// The broadcast reached every fake shard.
		for i, fs := range ft.shards {
			fs.mu.Lock()
			reps := append([]float64(nil), fs.reps...)
			fs.mu.Unlock()
			for node := range reps {
				if reps[node] != lr[node] {
					t.Fatalf("interval %d: shard %d holds reps[%d]=%v, want %v", interval, i, node, reps[node], lr[node])
				}
			}
		}
	}
}

// TestTransportMixedHosting: Shard(i) returning nil keeps that shard
// in-process; the overlay must route seamlessly across the split.
func TestTransportMixedHosting(t *testing.T) {
	const n, m = 8, 4
	ft := newFakeTransport(m)
	ft.local[0], ft.local[2] = true, true
	mixed, err := NewWithOptions(n, m, ebay.New(n), Options{Transport: ft})
	if err != nil {
		t.Fatal(err)
	}
	defer mixed.Close()
	local, err := New(n, m, ebay.New(n))
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()

	trace := transportTrace(n)
	if errs := mixed.SubmitBatch(trace); errs != nil {
		t.Fatalf("mixed SubmitBatch: %v", errs)
	}
	if errs := local.SubmitBatch(trace); errs != nil {
		t.Fatalf("local SubmitBatch: %v", errs)
	}
	mr, lr := mixed.EndInterval(), local.EndInterval()
	for i := range lr {
		if mr[i] != lr[i] {
			t.Fatalf("reputation[%d] mixed %v != local %v", i, mr[i], lr[i])
		}
	}
	// The fake saw traffic only for the shards it hosts.
	for i, fs := range ft.shards {
		fs.mu.Lock()
		journal := len(fs.journal)
		fs.mu.Unlock()
		if ft.local[i] && journal != 0 {
			t.Fatalf("in-process shard %d leaked %d ratings into the transport", i, journal)
		}
		if !ft.local[i] && journal == 0 {
			t.Fatalf("remote shard %d received no traffic", i)
		}
	}
}

// TestTransportErrorMapping: transport-level failures must surface as the
// overlay's typed errors — ErrTimeout stays retryable, everything else reads
// as a dead shard.
func TestTransportErrorMapping(t *testing.T) {
	const n, m = 6, 2
	ft := newFakeTransport(m)
	o, err := NewWithOptions(n, m, ebay.New(n), Options{Transport: ft})
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()

	ft.shards[1].failWith = ErrTimeout
	if err := o.Submit(rating.Rating{Rater: 0, Ratee: 1, Value: 1, Seq: 1}); !errors.Is(err, ErrTimeout) {
		t.Fatalf("timeout submit error = %v, want ErrTimeout", err)
	}
	ft.shards[1].failWith = errors.New("connection reset")
	if err := o.Submit(rating.Rating{Rater: 0, Ratee: 1, Value: 1, Seq: 2}); !errors.Is(err, ErrShardDown) {
		t.Fatalf("dead-conn submit error = %v, want ErrShardDown", err)
	}
	errs := o.SubmitBatch([]rating.Rating{
		{Rater: 2, Ratee: 0, Value: 1, Seq: 3}, // shard 0: healthy
		{Rater: 0, Ratee: 1, Value: 1, Seq: 4}, // shard 1: failing
	})
	if errs == nil || errs[0] != nil || !errors.Is(errs[1], ErrShardDown) {
		t.Fatalf("batch errors = %v, want [nil, ErrShardDown]", errs)
	}
	ft.shards[1].failWith = nil
	if err := o.Submit(rating.Rating{Rater: 0, Ratee: 1, Value: 1, Seq: 5}); err != nil {
		t.Fatalf("recovered shard still failing: %v", err)
	}
}

// TestTransportCrashRestartReplay: crashing a remote shard loses its
// incarnation but not its acknowledged (journaled) ratings — the restart
// replays them above the drained floor, so the interval drains complete.
func TestTransportCrashRestartReplay(t *testing.T) {
	const n, m = 6, 2
	ft := newFakeTransport(m)
	o, err := NewWithOptions(n, m, ebay.New(n), Options{Transport: ft})
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()

	pre := []rating.Rating{
		{Rater: 0, Ratee: 1, Value: 1, Seq: 1},
		{Rater: 2, Ratee: 1, Value: 1, Seq: 2},
		{Rater: 4, Ratee: 3, Value: 1, Seq: 3},
	}
	for _, r := range pre {
		if err := o.Submit(r); err != nil {
			t.Fatal(err)
		}
	}
	o.crashShard(1)
	if _, err := o.Query(1); !errors.Is(err, ErrShardDown) {
		t.Fatalf("query on crashed remote shard = %v, want ErrShardDown", err)
	}
	if err := o.Submit(rating.Rating{Rater: 0, Ratee: 1, Value: 1, Seq: 4}); !errors.Is(err, ErrShardDown) {
		t.Fatalf("submit to crashed remote shard = %v, want ErrShardDown", err)
	}
	o.mu.Lock()
	o.restartShardLocked(1)
	o.mu.Unlock()

	reps := o.EndInterval()
	// All three pre-crash ratings survived: node 1 has two positives, node 3
	// one — the same answer a never-crashed overlay gives.
	ref, err := New(n, m, ebay.New(n))
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	for _, r := range pre {
		if err := ref.Submit(r); err != nil {
			t.Fatal(err)
		}
	}
	want := ref.EndInterval()
	for i := range want {
		if reps[i] != want[i] {
			t.Fatalf("reputation[%d] after crash+restart = %v, want %v", i, reps[i], want[i])
		}
	}
}

// TestTransportWALOps: the overlay's durability surface reaches remote
// shards as wire operations, not file operations.
func TestTransportWALOps(t *testing.T) {
	const n, m = 6, 2
	ft := newFakeTransport(m)
	o, err := NewWithOptions(n, m, ebay.New(n), Options{Transport: ft})
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()

	if err := o.Submit(rating.Rating{Rater: 0, Ratee: 1, Value: 1, Seq: 7}); err != nil {
		t.Fatal(err)
	}
	o.EndInterval() // drains: raises shard 1's drained floor to 7
	if err := o.CompactWALs(); err != nil {
		t.Fatal(err)
	}
	fs := ft.shards[1]
	fs.mu.Lock()
	compacts := append([]uint64(nil), fs.compacts...)
	journal := len(fs.journal)
	fs.mu.Unlock()
	if len(compacts) != 1 || compacts[0] != 7 {
		t.Fatalf("shard 1 compact calls = %v, want [7]", compacts)
	}
	if journal != 0 {
		t.Fatalf("%d journal records survived a covering compaction", journal)
	}
	if err := o.ResetWALs(); err != nil {
		t.Fatal(err)
	}
	fs.mu.Lock()
	resets := fs.resets
	fs.mu.Unlock()
	if resets != 1 {
		t.Fatalf("shard 1 resets = %d, want 1", resets)
	}
}
