package manager

import (
	"testing"

	"socialtrust/internal/fault"
	"socialtrust/internal/persist"
	"socialtrust/internal/rating"
	"socialtrust/internal/reputation/ebay"
)

// seqRatings builds one rating per node with ingest sequence numbers
// continuing from *seq.
func seqRatings(n int, cycle int, seq *uint64) []rating.Rating {
	rs := make([]rating.Rating, 0, n)
	for i := 0; i < n; i++ {
		*seq++
		v := 1.0
		if i%3 == 0 {
			v = -1
		}
		rs = append(rs, rating.Rating{
			Rater: i, Ratee: (i + 1) % n, Value: v,
			Cycle: cycle, Seq: *seq,
		})
	}
	return rs
}

// TestRestartReplayNoDoubleCount is the WAL-replay / replica-mirror overlap
// test: when a crashed shard's interval was already recovered from its
// replica mirror at the drain, the restart's WAL replay must contribute
// nothing — every journaled record at or below the drained sequence mark is
// covered. A buggy replay would re-feed interval-1 ratings at the restart and
// double their weight in the accumulated engine scores.
func TestRestartReplayNoDoubleCount(t *testing.T) {
	const n, k = 16, 4
	cfg := fault.Config{Crashes: []fault.Crash{{Shard: 1, AtInterval: 1, Down: 1}}}
	run := func(stateDir string) []float64 {
		o, err := NewWithOptions(n, k, ebay.New(n), Options{
			Fault:    alwaysOnPlan(t, cfg, k),
			StateDir: stateDir,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer o.Close()
		var seq uint64
		var reps []float64
		for interval := 0; interval < 3; interval++ {
			for _, r := range seqRatings(n, interval, &seq) {
				if err := o.Submit(r); err != nil {
					t.Fatal(err)
				}
			}
			reps = o.EndInterval()
		}
		return reps
	}
	plain := run("")
	durable := run(t.TempDir())
	for i := range plain {
		if plain[i] != durable[i] {
			t.Fatalf("node %d reputation diverged with WAL enabled: %v vs %v", i, plain[i], durable[i])
		}
	}
}

// TestRestartRecoversLostShardFromWAL covers the durability win over the
// replica mirror: when a shard and its replica holder crash in the same
// interval, the interval data is lost to the drain (Missing), but the WAL
// still holds it; the shard's restart replays the tail and the next drain
// counts it. eBay's accumulated scores are insensitive to which interval a
// pair's feedback lands in, so full recovery means final reputations equal a
// crash-free run's.
func TestRestartRecoversLostShardFromWAL(t *testing.T) {
	const n, k = 16, 4
	// Shard 2 is shard 1's replica holder: with both down, shard 1's
	// interval-1 ratings survive only in shard 1's WAL.
	cfg := fault.Config{Crashes: []fault.Crash{
		{Shard: 1, AtInterval: 1, Down: 1},
		{Shard: 2, AtInterval: 1, Down: 1},
	}}
	run := func(faultCfg fault.Config, stateDir string) ([]float64, DrainStatus) {
		o, err := NewWithOptions(n, k, ebay.New(n), Options{
			Fault:    alwaysOnPlan(t, faultCfg, k),
			StateDir: stateDir,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer o.Close()
		var seq uint64
		for _, r := range seqRatings(n, 0, &seq) {
			if err := o.Submit(r); err != nil {
				t.Fatal(err)
			}
		}
		reps, first := o.EndIntervalStatus()
		for interval := 1; interval < 3; interval++ {
			reps, _ = o.EndIntervalStatus()
		}
		return reps, first
	}
	clean, _ := run(fault.Config{}, "")
	recovered, status := run(cfg, t.TempDir())
	if len(status.Missing) != 1 || status.Missing[0] != 1 {
		t.Fatalf("first drain Missing = %v, want [1]", status.Missing)
	}
	for i := range clean {
		if clean[i] != recovered[i] {
			t.Fatalf("node %d reputation %v after WAL recovery, want %v (crash-free)", i, recovered[i], clean[i])
		}
	}
	// Without the WAL, the same double crash genuinely loses the data.
	lossy, _ := run(cfg, "")
	same := true
	for i := range clean {
		if clean[i] != lossy[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("control failed: double crash without WAL lost nothing, test proves nothing")
	}
}

// TestResumeDedupesReplayedSubmissions is the process-crash dedupe test: a
// resumed overlay replays the WAL tail of the interrupted interval, then the
// deterministically re-executed interval submits the very same ratings again
// (same Seq). Each must land exactly once in the primary ledger, and the WAL
// must not grow a second copy.
func TestResumeDedupesReplayedSubmissions(t *testing.T) {
	const n, k = 12, 3
	dir := t.TempDir()
	newOverlay := func() *Overlay {
		o, err := NewWithOptions(n, k, ebay.New(n), Options{
			Fault:    alwaysOnPlan(t, fault.Config{}, k),
			StateDir: dir,
		})
		if err != nil {
			t.Fatal(err)
		}
		return o
	}
	o1 := newOverlay()
	var seq uint64
	for _, r := range seqRatings(n, 0, &seq) {
		if err := o1.Submit(r); err != nil {
			t.Fatal(err)
		}
	}
	reps := o1.EndInterval()
	drained := o1.DrainedSeqs()
	lastSeq := seq
	// Mid-interval tail: acknowledged, journaled, never drained.
	tail := seqRatings(n, 1, &seq)[:6]
	for _, r := range tail {
		if err := o1.Submit(r); err != nil {
			t.Fatal(err)
		}
	}
	o1.Close() // stands in for the process dying; appends were already flushed

	o2 := newOverlay()
	defer o2.Close()
	if err := o2.Resume(drained, lastSeq, reps); err != nil {
		t.Fatal(err)
	}
	// Re-execute the interrupted interval: the same tail, same sequence
	// numbers, exactly as the deterministic simulator would.
	for _, r := range tail {
		if err := o2.Submit(r); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range tail {
		st := o2.shards[o2.ManagerOf(r.Ratee)].cur.Load()
		if c := st.ledger.Counts(r.Rater, r.Ratee); c.Total() != 1 {
			t.Fatalf("pair (%d,%d) counted %d times after replay+resubmit, want 1", r.Rater, r.Ratee, c.Total())
		}
	}
	// The WAL holds exactly one copy of each tail record: the replayed copy
	// was not re-journaled, and the deduped resubmission was not journaled.
	for i, w := range o2.wals {
		recs, err := w.ReadBack()
		if err != nil {
			t.Fatalf("shard %d ReadBack: %v", i, err)
		}
		perSeq := map[uint64]int{}
		for _, rec := range recs {
			if rec.Kind == persist.KindRating && rec.Seq > lastSeq {
				perSeq[rec.Seq]++
			}
		}
		for s, cnt := range perSeq {
			if cnt != 1 {
				t.Fatalf("shard %d WAL holds %d copies of seq %d, want 1", i, cnt, s)
			}
		}
	}
}

// TestCompactWALsKeepsRecoverableTail verifies compaction never rotates away
// a crashed shard's undrained records, and does rotate fully covered logs.
func TestCompactWALsKeepsRecoverableTail(t *testing.T) {
	const n, k = 16, 4
	cfg := fault.Config{Crashes: []fault.Crash{
		{Shard: 1, AtInterval: 1, Down: 1},
		{Shard: 2, AtInterval: 1, Down: 1},
	}}
	o, err := NewWithOptions(n, k, ebay.New(n), Options{
		Fault:    alwaysOnPlan(t, cfg, k),
		StateDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	var seq uint64
	for _, r := range seqRatings(n, 0, &seq) {
		if err := o.Submit(r); err != nil {
			t.Fatal(err)
		}
	}
	o.EndInterval() // crashes shards 1+2; shard 1's data is lost to the drain
	if err := o.CompactWALs(); err != nil {
		t.Fatal(err)
	}
	if got := o.wals[1].MaxSeq(); got == 0 {
		t.Fatal("compaction rotated shard 1's recoverable tail away")
	}
	if got := o.wals[0].MaxSeq(); got != 0 {
		t.Fatalf("shard 0's fully drained WAL not rotated (MaxSeq %d)", got)
	}
	// Two more intervals: shards restart, the tail replays and drains; now
	// everything is covered and compaction empties shard 1's log too.
	o.EndInterval()
	o.EndInterval()
	if err := o.CompactWALs(); err != nil {
		t.Fatal(err)
	}
	if got := o.wals[1].MaxSeq(); got != 0 {
		t.Fatalf("shard 1's WAL not rotated after recovery (MaxSeq %d)", got)
	}
}
