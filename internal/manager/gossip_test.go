package manager

import (
	"math"
	"testing"
)

func TestPushSumValidation(t *testing.T) {
	if _, err := PushSum(nil, 5, 1); err == nil {
		t.Error("empty participants should error")
	}
	if _, err := PushSum([][]float64{{1, 2}, {1}}, 5, 1); err == nil {
		t.Error("dimension mismatch should error")
	}
	if _, err := PushSum([][]float64{{1}}, -1, 1); err == nil {
		t.Error("negative rounds should error")
	}
}

func TestPushSumSingleParticipant(t *testing.T) {
	out, err := PushSum([][]float64{{3, 4}}, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if out[0][0] != 3 || out[0][1] != 4 {
		t.Fatalf("single participant estimate = %v", out[0])
	}
}

func TestPushSumZeroRoundsIsLocalValue(t *testing.T) {
	out, err := PushSum([][]float64{{2}, {4}}, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if out[0][0] != 2 || out[1][0] != 4 {
		t.Fatalf("zero-round estimates = %v", out)
	}
}

func TestPushSumConvergesToAverage(t *testing.T) {
	const k, dim = 16, 8
	parts := make([][]float64, k)
	want := make([]float64, dim)
	for i := range parts {
		parts[i] = make([]float64, dim)
		for d := 0; d < dim; d++ {
			parts[i][d] = float64(i*dim + d)
			want[d] += parts[i][d] / k
		}
	}
	rounds := GossipRounds(k, 1e-6)
	out, err := PushSum(parts, rounds, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < k; i++ {
		for d := 0; d < dim; d++ {
			if rel := math.Abs(out[i][d]-want[d]) / (math.Abs(want[d]) + 1e-12); rel > 1e-3 {
				t.Fatalf("participant %d dim %d: estimate %v vs average %v (rel %v after %d rounds)",
					i, d, out[i][d], want[d], rel, rounds)
			}
		}
	}
}

func TestPushSumConservesMass(t *testing.T) {
	// Push-sum's invariant: the weighted total never changes.
	parts := [][]float64{{1}, {5}, {9}, {100}}
	out, err := PushSum(parts, 3, 7) // deliberately under-converged
	if err != nil {
		t.Fatal(err)
	}
	// Even under-converged, every estimate lies within [min,max] of the
	// inputs (each estimate is a convex combination of the inputs).
	for i, est := range out {
		if est[0] < 1-1e-9 || est[0] > 100+1e-9 {
			t.Fatalf("participant %d estimate %v outside input hull", i, est[0])
		}
	}
}

// TestPushSumFaultyConservesMass is the crash-model satellite: when a
// participant's vector is zeroed mid-round, the only mass the protocol may
// lose is what the dead node held at crash time. Every subsequent round
// must conserve the surviving total exactly (survivors address live peers
// only), and live estimates must converge to the surviving average.
func TestPushSumFaultyConservesMass(t *testing.T) {
	parts := [][]float64{{1, 10}, {5, 20}, {9, 30}, {100, 40}}
	const crashed, crashRound, rounds = 3, 4, 60
	dim := len(parts[0])

	var survivingTotal []float64 // value totals, then the weight total appended
	_, err := pushSumRun(parts, rounds, 7, map[int]int{crashed: crashRound},
		func(round int, values [][]float64, weights []float64) {
			total := make([]float64, dim+1)
			for i := range values {
				for d := 0; d < dim; d++ {
					total[d] += values[i][d]
				}
				total[dim] += weights[i]
			}
			if round < crashRound {
				return
			}
			if round == crashRound {
				survivingTotal = total
				return
			}
			for d := 0; d <= dim; d++ {
				if diff := total[d] - survivingTotal[d]; diff > 1e-9 || diff < -1e-9 {
					t.Fatalf("round %d dim %d: total mass %v, want %v (leaked %v)",
						round, d, total[d], survivingTotal[d], diff)
				}
			}
		})
	if err != nil {
		t.Fatal(err)
	}

	out, err := PushSumFaulty(parts, rounds, 7, map[int]int{crashed: crashRound})
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d < dim; d++ {
		// Live estimates converge to survivingTotal / survivingWeight; all
		// three survivors must agree with each other.
		for _, i := range []int{1, 2} {
			if diff := out[i][d] - out[0][d]; diff > 1e-6 || diff < -1e-6 {
				t.Fatalf("survivors disagree at dim %d: %v vs %v", d, out[i][d], out[0][d])
			}
		}
	}
	for d := 0; d < dim; d++ {
		if out[crashed][d] != 0 {
			t.Fatalf("crashed participant reported estimate %v, want 0", out[crashed][d])
		}
	}
}

func TestPushSumFaultyValidation(t *testing.T) {
	parts := [][]float64{{1}, {2}}
	if _, err := PushSumFaulty(parts, 5, 1, map[int]int{5: 0}); err == nil {
		t.Error("out-of-range crash participant should error")
	}
	if _, err := PushSumFaulty(parts, 5, 1, map[int]int{0: -1}); err == nil {
		t.Error("negative crash round should error")
	}
	if _, err := PushSumFaulty(parts, 5, 1, map[int]int{0: 0, 1: 1}); err == nil {
		t.Error("crashing every participant should error")
	}
}

func TestPushSumDeterministic(t *testing.T) {
	parts := [][]float64{{1, 2}, {3, 4}, {5, 6}}
	a, err := PushSum(parts, 20, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PushSum(parts, 20, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		for d := range a[i] {
			if a[i][d] != b[i][d] {
				t.Fatalf("nondeterministic at %d/%d", i, d)
			}
		}
	}
	// Input must not be mutated.
	if parts[0][0] != 1 || parts[2][1] != 6 {
		t.Fatal("PushSum mutated its input")
	}
}

func TestGossipRounds(t *testing.T) {
	if GossipRounds(1, 1e-3) != 1 {
		t.Fatal("single participant needs one round")
	}
	if GossipRounds(16, 1e-6) < 20 {
		t.Fatalf("rounds for k=16 eps=1e-6 = %d, want enough margin", GossipRounds(16, 1e-6))
	}
	if GossipRounds(1024, 0.5) <= GossipRounds(4, 0.5) {
		t.Fatal("rounds should grow with k")
	}
}

func TestPushSumRecoverGlobalSumFromShards(t *testing.T) {
	// The overlay use-case: shard-partial additive score vectors gossiped
	// to a global sum without a coordinator.
	shards := [][]float64{
		{1, 0, 2},
		{0, 3, 1},
		{2, 0, 0},
	}
	wantSum := []float64{3, 3, 3}
	out, err := PushSum(shards, GossipRounds(3, 1e-9), 11)
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d < 3; d++ {
		got := out[0][d] * float64(len(shards))
		if math.Abs(got-wantSum[d]) > 1e-6 {
			t.Fatalf("recovered sum[%d] = %v, want %v", d, got, wantSum[d])
		}
	}
}
