package manager

import (
	"math"
	"testing"
)

func TestPushSumValidation(t *testing.T) {
	if _, err := PushSum(nil, 5, 1); err == nil {
		t.Error("empty participants should error")
	}
	if _, err := PushSum([][]float64{{1, 2}, {1}}, 5, 1); err == nil {
		t.Error("dimension mismatch should error")
	}
	if _, err := PushSum([][]float64{{1}}, -1, 1); err == nil {
		t.Error("negative rounds should error")
	}
}

func TestPushSumSingleParticipant(t *testing.T) {
	out, err := PushSum([][]float64{{3, 4}}, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if out[0][0] != 3 || out[0][1] != 4 {
		t.Fatalf("single participant estimate = %v", out[0])
	}
}

func TestPushSumZeroRoundsIsLocalValue(t *testing.T) {
	out, err := PushSum([][]float64{{2}, {4}}, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if out[0][0] != 2 || out[1][0] != 4 {
		t.Fatalf("zero-round estimates = %v", out)
	}
}

func TestPushSumConvergesToAverage(t *testing.T) {
	const k, dim = 16, 8
	parts := make([][]float64, k)
	want := make([]float64, dim)
	for i := range parts {
		parts[i] = make([]float64, dim)
		for d := 0; d < dim; d++ {
			parts[i][d] = float64(i*dim + d)
			want[d] += parts[i][d] / k
		}
	}
	rounds := GossipRounds(k, 1e-6)
	out, err := PushSum(parts, rounds, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < k; i++ {
		for d := 0; d < dim; d++ {
			if rel := math.Abs(out[i][d]-want[d]) / (math.Abs(want[d]) + 1e-12); rel > 1e-3 {
				t.Fatalf("participant %d dim %d: estimate %v vs average %v (rel %v after %d rounds)",
					i, d, out[i][d], want[d], rel, rounds)
			}
		}
	}
}

func TestPushSumConservesMass(t *testing.T) {
	// Push-sum's invariant: the weighted total never changes.
	parts := [][]float64{{1}, {5}, {9}, {100}}
	out, err := PushSum(parts, 3, 7) // deliberately under-converged
	if err != nil {
		t.Fatal(err)
	}
	// Even under-converged, every estimate lies within [min,max] of the
	// inputs (each estimate is a convex combination of the inputs).
	for i, est := range out {
		if est[0] < 1-1e-9 || est[0] > 100+1e-9 {
			t.Fatalf("participant %d estimate %v outside input hull", i, est[0])
		}
	}
}

func TestPushSumDeterministic(t *testing.T) {
	parts := [][]float64{{1, 2}, {3, 4}, {5, 6}}
	a, err := PushSum(parts, 20, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PushSum(parts, 20, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		for d := range a[i] {
			if a[i][d] != b[i][d] {
				t.Fatalf("nondeterministic at %d/%d", i, d)
			}
		}
	}
	// Input must not be mutated.
	if parts[0][0] != 1 || parts[2][1] != 6 {
		t.Fatal("PushSum mutated its input")
	}
}

func TestGossipRounds(t *testing.T) {
	if GossipRounds(1, 1e-3) != 1 {
		t.Fatal("single participant needs one round")
	}
	if GossipRounds(16, 1e-6) < 20 {
		t.Fatalf("rounds for k=16 eps=1e-6 = %d, want enough margin", GossipRounds(16, 1e-6))
	}
	if GossipRounds(1024, 0.5) <= GossipRounds(4, 0.5) {
		t.Fatal("rounds should grow with k")
	}
}

func TestPushSumRecoverGlobalSumFromShards(t *testing.T) {
	// The overlay use-case: shard-partial additive score vectors gossiped
	// to a global sum without a coordinator.
	shards := [][]float64{
		{1, 0, 2},
		{0, 3, 1},
		{2, 0, 0},
	}
	wantSum := []float64{3, 3, 3}
	out, err := PushSum(shards, GossipRounds(3, 1e-9), 11)
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d < 3; d++ {
		got := out[0][d] * float64(len(shards))
		if math.Abs(got-wantSum[d]) > 1e-6 {
			t.Fatalf("recovered sum[%d] = %v, want %v", d, got, wantSum[d])
		}
	}
}
