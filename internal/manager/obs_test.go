package manager

import (
	"testing"

	"socialtrust/internal/obs"
	"socialtrust/internal/rating"
	"socialtrust/internal/reputation/ebay"
)

// TestOverlayMetrics exercises submit/query/drain with recording enabled and
// checks the counters, latency histograms and per-shard mailbox gauges move.
// Deltas (not absolute values) are asserted because the obs registry is
// process-global.
func TestOverlayMetrics(t *testing.T) {
	prev := obs.Enabled()
	obs.Enable()
	defer obs.SetEnabled(prev)

	submits0 := mSubmitTotal.Value()
	queries0 := mQueryTotal.Value()
	drains0 := mDrainTotal.Value()
	submitObs0 := mSubmitLat.Count()
	drainObs0 := obs.H("manager_drain_seconds").Count()

	o, err := New(8, 2, ebay.New(8))
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()

	const n = 20
	for i := 0; i < n; i++ {
		if err := o.Submit(rating.Rating{Rater: 0, Ratee: 1 + i%7, Value: 1}); err != nil {
			t.Fatal(err)
		}
	}
	o.EndInterval()
	for i := 0; i < n; i++ {
		o.Reputation(i % 8)
	}

	if got := mSubmitTotal.Value() - submits0; got < n {
		t.Errorf("manager_submit_total delta = %d, want >= %d", got, n)
	}
	if got := mQueryTotal.Value() - queries0; got < n {
		t.Errorf("manager_query_total delta = %d, want >= %d", got, n)
	}
	if got := mDrainTotal.Value() - drains0; got < 1 {
		t.Errorf("manager_drain_total delta = %d, want >= 1", got)
	}
	if got := mSubmitLat.Count() - submitObs0; got < n {
		t.Errorf("manager_submit_seconds observations delta = %d, want >= %d", got, n)
	}
	if got := obs.H("manager_drain_seconds").Count() - drainObs0; got < 1 {
		t.Errorf("manager_drain_seconds observations delta = %d, want >= 1", got)
	}
	// Shards refresh their depth gauge after every handled message; after a
	// quiesced round-trip the mailboxes are empty.
	for s := 0; s < o.NumManagers(); s++ {
		g := obs.G(obs.Label("manager_mailbox_depth", "shard", string(rune('0'+s))))
		if g.Value() != 0 {
			t.Errorf("shard %d mailbox depth = %g after quiesce, want 0", s, g.Value())
		}
	}
}

// TestGossipMetrics checks PushSum accounts its rounds.
func TestGossipMetrics(t *testing.T) {
	prev := obs.Enabled()
	obs.Enable()
	defer obs.SetEnabled(prev)

	runs0 := mGossipRuns.Value()
	rounds0 := mGossipRounds.Value()
	parts := [][]float64{{1, 0}, {0, 1}}
	if _, err := PushSum(parts, 12, 1); err != nil {
		t.Fatal(err)
	}
	if got := mGossipRuns.Value() - runs0; got != 1 {
		t.Errorf("gossip runs delta = %d, want 1", got)
	}
	if got := mGossipRounds.Value() - rounds0; got != 12 {
		t.Errorf("gossip rounds delta = %d, want 12", got)
	}
}
