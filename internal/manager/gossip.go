package manager

import (
	"fmt"
	"sync"
	"time"

	"socialtrust/internal/obs"
	"socialtrust/internal/obs/event"
	"socialtrust/internal/obs/span"
	"socialtrust/internal/xrand"
)

// Gossip metrics: total protocol runs and total rounds executed across them,
// the message-cost axis differential-gossip work is evaluated on.
var (
	mGossipRuns   = obs.C("manager_gossip_runs_total")
	mGossipRounds = obs.C("manager_gossip_rounds_total")
	mGossipLat    = obs.H("manager_gossip_seconds")
)

func init() {
	obs.Help("manager_gossip_runs_total", "Push-sum gossip protocol runs.")
	obs.Help("manager_gossip_rounds_total", "Gossip rounds executed across all runs.")
	obs.Help("manager_gossip_seconds", "Wall time of one full push-sum gossip run.")
}

// PushSum runs the push-sum gossip protocol (Kempe et al.) among the given
// participants, each holding a partial score vector — the aggregation style
// of GossipTrust, the decentralized alternative the paper's related work
// cites for networks without trusted resource managers. After enough rounds
// (O(log k + log 1/ε)), every participant's estimate converges to the
// element-wise average of all partial vectors; multiplying by the
// participant count recovers the global sum that a centralized merge would
// compute for additive reputation scores.
//
// Each round every participant concurrently halves its (vector, weight)
// mass and pushes one half to a peer drawn from its own deterministic
// stream; deliveries apply in participant order, so the result is
// bit-reproducible for a given seed. Returns each participant's estimate of
// the average vector.
func PushSum(parts [][]float64, rounds int, seed uint64) ([][]float64, error) {
	return pushSumRun(parts, rounds, seed, nil, nil)
}

// PushSumFaulty runs push-sum under a crash model: crashAt maps a
// participant index to the 0-based round at whose start it fails. A crashed
// participant's (vector, weight) mass is lost — zeroed, exactly what a
// process crash does to in-memory gossip state — and the survivors stop
// addressing it, so no further mass leaks into the dead node. The protocol
// conserves the surviving mass: every post-crash round redistributes it
// among live participants only, and live estimates converge to the average
// of the mass that survived. Crashed participants report a zero vector
// (their weight is zero; there is nothing to normalize).
func PushSumFaulty(parts [][]float64, rounds int, seed uint64, crashAt map[int]int) ([][]float64, error) {
	for i, r := range crashAt {
		if i < 0 || i >= len(parts) {
			return nil, fmt.Errorf("manager: crash participant %d out of range", i)
		}
		if r < 0 {
			return nil, fmt.Errorf("manager: crash round %d for participant %d is negative", r, i)
		}
	}
	if len(crashAt) >= len(parts) {
		return nil, fmt.Errorf("manager: crashing all %d participants leaves no survivors", len(parts))
	}
	return pushSumRun(parts, rounds, seed, crashAt, nil)
}

// pushSumRun is the shared push-sum core. crashAt is the crash schedule
// (nil for the fault-free protocol, which keeps the seed code path and its
// bit-exact results); onRound, when non-nil, observes the post-delivery
// (values, weights) state after each round — the white-box hook the
// mass-conservation tests use.
func pushSumRun(parts [][]float64, rounds int, seed uint64, crashAt map[int]int,
	onRound func(round int, values [][]float64, weights []float64)) ([][]float64, error) {
	k := len(parts)
	if k == 0 {
		return nil, fmt.Errorf("manager: PushSum needs at least one participant")
	}
	dim := len(parts[0])
	for i, p := range parts {
		if len(p) != dim {
			return nil, fmt.Errorf("manager: participant %d has %d elements, want %d", i, len(p), dim)
		}
	}
	if rounds < 0 {
		return nil, fmt.Errorf("manager: negative rounds")
	}
	sp := mGossipLat.Start()
	defer sp.End()
	tsp := span.Ambient("manager.gossip", span.PhaseDrain).
		SetInt("participants", int64(k)).SetInt("rounds", int64(rounds))
	defer tsp.End()
	mGossipRuns.Inc()
	mGossipRounds.Add(int64(rounds))
	if rec := event.Current(); rec != nil {
		start := time.Now()
		defer func() {
			rec.RecordManager(event.ManagerEvent{
				Kind:         "gossip",
				Participants: k,
				Rounds:       rounds,
				Seconds:      time.Since(start).Seconds(),
			})
		}()
	}

	values := make([][]float64, k)
	weights := make([]float64, k)
	streams := make([]*xrand.Stream, k)
	root := xrand.New(seed)
	for i := range parts {
		values[i] = append([]float64(nil), parts[i]...)
		weights[i] = 1
		streams[i] = root.Split(uint64(i))
	}

	type push struct {
		to     int
		vector []float64
		weight float64
	}
	// dead[i] marks a crashed participant; live lists survivors in index
	// order (rebuilt when a crash fires) so target draws stay uniform over
	// live peers.
	dead := make([]bool, k)
	live := make([]int, k)
	for i := range live {
		live[i] = i
	}
	rebuildLive := func() {
		live = live[:0]
		for i := 0; i < k; i++ {
			if !dead[i] {
				live = append(live, i)
			}
		}
	}

	outbox := make([]push, k)
	for r := 0; r < rounds; r++ {
		// Crash phase: zero the state of participants failing this round —
		// their in-memory (vector, weight) mass dies with the process.
		if len(crashAt) > 0 {
			changed := false
			for i, cr := range crashAt {
				if cr == r && !dead[i] {
					dead[i] = true
					changed = true
					for d := 0; d < dim; d++ {
						values[i][d] = 0
					}
					weights[i] = 0
				}
			}
			if changed {
				rebuildLive()
			}
		}
		// Concurrent phase: every live participant halves its mass and
		// addresses one half, touching only its own state.
		var wg sync.WaitGroup
		for i := 0; i < k; i++ {
			if dead[i] {
				outbox[i] = push{to: i} // zero-mass self-push: delivery is a no-op
				continue
			}
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				target := i
				if crashAt == nil {
					// Fault-free path: uniform over all peers other than
					// self (the seed protocol, bit-exact).
					if k > 1 {
						target = streams[i].Intn(k - 1)
						if target >= i {
							target++
						}
					}
				} else if len(live) > 1 {
					// Crash model: survivors address live peers only, so no
					// mass leaks into dead nodes.
					t := streams[i].Intn(len(live) - 1)
					self := 0
					for j, v := range live {
						if v == i {
							self = j
							break
						}
					}
					if t >= self {
						t++
					}
					target = live[t]
				}
				half := make([]float64, dim)
				for d := 0; d < dim; d++ {
					values[i][d] /= 2
					half[d] = values[i][d]
				}
				weights[i] /= 2
				outbox[i] = push{to: target, vector: half, weight: weights[i]}
			}(i)
		}
		wg.Wait()
		// Serial delivery in participant order keeps float summation
		// deterministic.
		for i := 0; i < k; i++ {
			msg := outbox[i]
			if msg.vector == nil {
				continue // dead participant pushed nothing
			}
			for d := 0; d < dim; d++ {
				values[msg.to][d] += msg.vector[d]
			}
			weights[msg.to] += msg.weight
		}
		if onRound != nil {
			onRound(r, values, weights)
		}
	}

	out := make([][]float64, k)
	for i := 0; i < k; i++ {
		out[i] = make([]float64, dim)
		if weights[i] == 0 {
			continue // crashed participant: zero estimate, nothing to normalize
		}
		for d := 0; d < dim; d++ {
			out[i][d] = values[i][d] / weights[i]
		}
	}
	return out, nil
}

// GossipRounds returns a round count that converges PushSum to within
// roughly epsilon relative error for k participants: the protocol halves
// the potential every round, so c·(log2 k + log2 1/ε) rounds suffice; we
// use c = 2 for margin.
func GossipRounds(k int, epsilon float64) int {
	if k <= 1 {
		return 1
	}
	rounds := 0
	for size := 1; size < k; size *= 2 {
		rounds++
	}
	for e := 1.0; e > epsilon; e /= 2 {
		rounds++
	}
	return 2 * rounds
}
