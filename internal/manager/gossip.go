package manager

import (
	"fmt"
	"sync"
	"time"

	"socialtrust/internal/obs"
	"socialtrust/internal/obs/event"
	"socialtrust/internal/xrand"
)

// Gossip metrics: total protocol runs and total rounds executed across them,
// the message-cost axis differential-gossip work is evaluated on.
var (
	mGossipRuns   = obs.C("manager_gossip_runs_total")
	mGossipRounds = obs.C("manager_gossip_rounds_total")
	mGossipLat    = obs.H("manager_gossip_seconds")
)

// PushSum runs the push-sum gossip protocol (Kempe et al.) among the given
// participants, each holding a partial score vector — the aggregation style
// of GossipTrust, the decentralized alternative the paper's related work
// cites for networks without trusted resource managers. After enough rounds
// (O(log k + log 1/ε)), every participant's estimate converges to the
// element-wise average of all partial vectors; multiplying by the
// participant count recovers the global sum that a centralized merge would
// compute for additive reputation scores.
//
// Each round every participant concurrently halves its (vector, weight)
// mass and pushes one half to a peer drawn from its own deterministic
// stream; deliveries apply in participant order, so the result is
// bit-reproducible for a given seed. Returns each participant's estimate of
// the average vector.
func PushSum(parts [][]float64, rounds int, seed uint64) ([][]float64, error) {
	k := len(parts)
	if k == 0 {
		return nil, fmt.Errorf("manager: PushSum needs at least one participant")
	}
	dim := len(parts[0])
	for i, p := range parts {
		if len(p) != dim {
			return nil, fmt.Errorf("manager: participant %d has %d elements, want %d", i, len(p), dim)
		}
	}
	if rounds < 0 {
		return nil, fmt.Errorf("manager: negative rounds")
	}
	sp := mGossipLat.Start()
	defer sp.End()
	mGossipRuns.Inc()
	mGossipRounds.Add(int64(rounds))
	if rec := event.Current(); rec != nil {
		start := time.Now()
		defer func() {
			rec.RecordManager(event.ManagerEvent{
				Kind:         "gossip",
				Participants: k,
				Rounds:       rounds,
				Seconds:      time.Since(start).Seconds(),
			})
		}()
	}

	values := make([][]float64, k)
	weights := make([]float64, k)
	streams := make([]*xrand.Stream, k)
	root := xrand.New(seed)
	for i := range parts {
		values[i] = append([]float64(nil), parts[i]...)
		weights[i] = 1
		streams[i] = root.Split(uint64(i))
	}

	type push struct {
		to     int
		vector []float64
		weight float64
	}
	outbox := make([]push, k)
	for r := 0; r < rounds; r++ {
		// Concurrent phase: every participant halves its mass and
		// addresses one half, touching only its own state.
		var wg sync.WaitGroup
		for i := 0; i < k; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				target := i
				if k > 1 {
					target = streams[i].Intn(k - 1)
					if target >= i {
						target++ // uniform over peers other than self
					}
				}
				half := make([]float64, dim)
				for d := 0; d < dim; d++ {
					values[i][d] /= 2
					half[d] = values[i][d]
				}
				weights[i] /= 2
				outbox[i] = push{to: target, vector: half, weight: weights[i]}
			}(i)
		}
		wg.Wait()
		// Serial delivery in participant order keeps float summation
		// deterministic.
		for i := 0; i < k; i++ {
			msg := outbox[i]
			for d := 0; d < dim; d++ {
				values[msg.to][d] += msg.vector[d]
			}
			weights[msg.to] += msg.weight
		}
	}

	out := make([][]float64, k)
	for i := 0; i < k; i++ {
		out[i] = make([]float64, dim)
		for d := 0; d < dim; d++ {
			out[i][d] = values[i][d] / weights[i]
		}
	}
	return out, nil
}

// GossipRounds returns a round count that converges PushSum to within
// roughly epsilon relative error for k participants: the protocol halves
// the potential every round, so c·(log2 k + log2 1/ε) rounds suffice; we
// use c = 2 for margin.
func GossipRounds(k int, epsilon float64) int {
	if k <= 1 {
		return 1
	}
	rounds := 0
	for size := 1; size < k; size *= 2 {
		rounds++
	}
	for e := 1.0; e > epsilon; e /= 2 {
		rounds++
	}
	return 2 * rounds
}
