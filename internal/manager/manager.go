// Package manager implements the paper's resource-manager overlay
// (Section 4.3): "one or a number of trustworthy nodes function as resource
// managers. Each resource manager is responsible for collecting the ratings
// and calculating the global reputation of certain nodes."
//
// The overlay shards the peer population across manager goroutines by
// ratee ID. Peers submit ratings to, and query reputations from, the manager
// responsible for the node in question; all communication flows through
// per-manager mailboxes (channels), so the overlay behaves like a message-
// passing distributed system while running in one process. At the end of
// each reputation-update interval the coordinator drains every manager's
// shard ledger, merges the snapshots, runs the (optionally
// SocialTrust-wrapped) reputation engine — the paper's periodic global
// reputation calculation — and broadcasts the fresh reputation vector back
// to every manager, which then serves queries from its local copy.
package manager

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"socialtrust/internal/obs"
	"socialtrust/internal/obs/event"
	"socialtrust/internal/rating"
	"socialtrust/internal/reputation"
)

// Overlay metrics (recorded only while obs is enabled). Per-shard mailbox
// depth is exported as manager_mailbox_depth{shard="N"} gauges, refreshed by
// each shard after every message it handles.
var (
	mSubmitTotal  = obs.C("manager_submit_total")
	mSubmitErrors = obs.C("manager_submit_errors_total")
	mQueryTotal   = obs.C("manager_query_total")
	mDrainTotal   = obs.C("manager_drain_total")
	mSubmitLat    = obs.H("manager_submit_seconds")
	mQueryLat     = obs.H("manager_query_seconds")
)

// message is the manager mailbox protocol.
type message struct {
	kind  msgKind
	r     rating.Rating
	node  int
	repC  chan float64
	snapC chan rating.Snapshot
	reps  []float64
	errC  chan error
}

type msgKind int

const (
	msgSubmit msgKind = iota
	msgQuery
	msgDrain
	msgUpdateReps
)

// shard is one manager goroutine's state.
type shard struct {
	id     int
	inbox  chan message
	ledger *rating.Ledger
	reps   []float64
	depth  *obs.Gauge // mailbox depth after the last handled message
}

// Overlay is a running resource-manager overlay.
type Overlay struct {
	numNodes int
	shards   []*shard
	engine   reputation.Engine

	mu     sync.Mutex // guards engine updates and Close
	wg     sync.WaitGroup
	closed chan struct{}
	once   sync.Once
}

// ErrClosed is returned by operations on a closed overlay.
var ErrClosed = fmt.Errorf("manager: overlay is closed")

// New starts an overlay of numManagers manager goroutines fronting the
// given reputation engine. The engine may be a bare baseline or a
// SocialTrust-wrapped one; the overlay treats it as the global reputation
// calculation of the paper's design.
func New(numNodes, numManagers int, engine reputation.Engine) (*Overlay, error) {
	if numNodes <= 0 {
		return nil, fmt.Errorf("manager: numNodes must be positive")
	}
	if numManagers <= 0 || numManagers > numNodes {
		return nil, fmt.Errorf("manager: numManagers %d invalid for %d nodes", numManagers, numNodes)
	}
	if engine == nil {
		return nil, fmt.Errorf("manager: engine is required")
	}
	o := &Overlay{numNodes: numNodes, engine: engine, closed: make(chan struct{})}
	initial := engine.Reputations()
	for m := 0; m < numManagers; m++ {
		s := &shard{
			id:     m,
			inbox:  make(chan message, 256),
			ledger: rating.NewLedger(numNodes),
			reps:   append([]float64(nil), initial...),
			depth:  obs.G(obs.Label("manager_mailbox_depth", "shard", strconv.Itoa(m))),
		}
		o.shards = append(o.shards, s)
		o.wg.Add(1)
		go o.serve(s)
	}
	return o, nil
}

// serve is a manager goroutine's event loop. It exits on the overlay's
// closed signal; inbox channels are never closed, so senders cannot panic.
func (o *Overlay) serve(s *shard) {
	defer o.wg.Done()
	for {
		select {
		case <-o.closed:
			return
		case msg := <-s.inbox:
			switch msg.kind {
			case msgSubmit:
				msg.errC <- s.ledger.Add(msg.r)
			case msgQuery:
				if msg.node < 0 || msg.node >= o.numNodes {
					msg.repC <- 0
					s.depth.Set(float64(len(s.inbox)))
					continue
				}
				msg.repC <- s.reps[msg.node]
			case msgDrain:
				msg.snapC <- s.ledger.EndInterval()
			case msgUpdateReps:
				s.reps = msg.reps
				msg.errC <- nil
			}
			s.depth.Set(float64(len(s.inbox)))
		}
	}
}

// ManagerOf returns the manager index responsible for a node.
func (o *Overlay) ManagerOf(node int) int { return node % len(o.shards) }

// NumManagers reports the overlay size.
func (o *Overlay) NumManagers() int { return len(o.shards) }

// Submit routes one rating to the ratee's manager. Safe for concurrent use;
// returns ErrClosed after Close.
func (o *Overlay) Submit(r rating.Rating) error {
	sp := mSubmitLat.Start()
	err := o.submit(r)
	sp.End()
	mSubmitTotal.Inc()
	if err != nil {
		mSubmitErrors.Inc()
	}
	return err
}

func (o *Overlay) submit(r rating.Rating) error {
	if r.Ratee < 0 || r.Ratee >= o.numNodes {
		return fmt.Errorf("manager: ratee %d out of range", r.Ratee)
	}
	errC := make(chan error, 1)
	select {
	case <-o.closed:
		return ErrClosed
	case o.shards[o.ManagerOf(r.Ratee)].inbox <- message{kind: msgSubmit, r: r, errC: errC}:
	}
	select {
	case err := <-errC:
		return err
	case <-o.closed:
		return ErrClosed // shut down before the manager processed it
	}
}

// Reputation queries the manager responsible for node for its current
// global reputation. Safe for concurrent use; returns 0 after Close.
func (o *Overlay) Reputation(node int) float64 {
	if node < 0 || node >= o.numNodes {
		return 0
	}
	sp := mQueryLat.Start()
	defer func() {
		sp.End()
		mQueryTotal.Inc()
	}()
	repC := make(chan float64, 1)
	select {
	case <-o.closed:
		return 0
	case o.shards[o.ManagerOf(node)].inbox <- message{kind: msgQuery, node: node, repC: repC}:
	}
	select {
	case rep := <-repC:
		return rep
	case <-o.closed:
		return 0
	}
}

// EndInterval performs the paper's periodic global reputation update: it
// drains every manager's shard, merges the snapshots in deterministic
// order, feeds them to the engine (where a wrapped SocialTrust filter
// performs its B1–B4 adjustment), and broadcasts the new reputation vector
// back to all managers. Returns the updated vector.
func (o *Overlay) EndInterval() []float64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	select {
	case <-o.closed:
		return make([]float64, o.numNodes)
	default:
	}
	sp := obs.Start("manager.drain")
	defer func() {
		sp.End()
		mDrainTotal.Inc()
	}()
	rec := event.Current()
	var drainStart time.Time
	if rec != nil {
		drainStart = time.Now()
	}
	// Phase 1: drain all shards concurrently.
	snaps := make([]rating.Snapshot, len(o.shards))
	var wg sync.WaitGroup
	for i, s := range o.shards {
		wg.Add(1)
		go func(i int, s *shard) {
			defer wg.Done()
			snapC := make(chan rating.Snapshot, 1)
			s.inbox <- message{kind: msgDrain, snapC: snapC}
			snaps[i] = <-snapC
		}(i, s)
	}
	wg.Wait()
	// Phase 2: merge into one global snapshot.
	merged := mergeSnapshots(snaps)
	// Phase 3: global reputation calculation.
	o.engine.Update(merged)
	reps := o.engine.Reputations()
	// Phase 4: broadcast.
	for _, s := range o.shards {
		errC := make(chan error, 1)
		s.inbox <- message{kind: msgUpdateReps, reps: append([]float64(nil), reps...), errC: errC}
		<-errC
	}
	if rec != nil {
		rec.RecordManager(event.ManagerEvent{
			Kind:    "drain",
			Shards:  len(o.shards),
			Ratings: len(merged.Ratings),
			Seconds: time.Since(drainStart).Seconds(),
		})
	}
	return reps
}

// mergeSnapshots combines per-shard interval snapshots into one, restoring
// the deterministic global ordering rating.Ledger guarantees.
func mergeSnapshots(snaps []rating.Snapshot) rating.Snapshot {
	out := rating.Snapshot{Counts: make(map[rating.PairKey]rating.PairCounts)}
	for _, s := range snaps {
		out.Ratings = append(out.Ratings, s.Ratings...)
		for k, c := range s.Counts {
			agg := out.Counts[k]
			agg.Positive += c.Positive
			agg.Negative += c.Negative
			out.Counts[k] = agg
		}
	}
	sort.SliceStable(out.Ratings, func(a, b int) bool {
		x, y := out.Ratings[a], out.Ratings[b]
		switch {
		case x.Ratee != y.Ratee:
			return x.Ratee < y.Ratee
		case x.Rater != y.Rater:
			return x.Rater < y.Rater
		case x.Cycle != y.Cycle:
			return x.Cycle < y.Cycle
		case x.Category != y.Category:
			return x.Category < y.Category
		default:
			return x.Value < y.Value
		}
	})
	return out
}

// Close shuts all manager goroutines down. Close is idempotent and safe to
// race against in-flight calls: Submit returns ErrClosed, queries return 0,
// and EndInterval returns a zero vector once the overlay is closed. Ratings
// still queued in manager inboxes at close time are dropped.
func (o *Overlay) Close() {
	o.once.Do(func() {
		o.mu.Lock()
		defer o.mu.Unlock()
		close(o.closed)
		o.wg.Wait()
	})
}
