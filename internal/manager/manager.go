// Package manager implements the paper's resource-manager overlay
// (Section 4.3): "one or a number of trustworthy nodes function as resource
// managers. Each resource manager is responsible for collecting the ratings
// and calculating the global reputation of certain nodes."
//
// The overlay shards the peer population across manager goroutines by
// ratee ID. Peers submit ratings to, and query reputations from, the manager
// responsible for the node in question; all communication flows through
// per-manager mailboxes (channels), so the overlay behaves like a message-
// passing distributed system while running in one process. At the end of
// each reputation-update interval the coordinator drains every manager's
// shard ledger, merges the snapshots, runs the (optionally
// SocialTrust-wrapped) reputation engine — the paper's periodic global
// reputation calculation — and broadcasts the fresh reputation vector back
// to every manager, which then serves queries from its local copy.
//
// # Failure model
//
// The paper assumes managers are trustworthy and always available; this
// implementation drops the availability half of that assumption. With a
// fault plan installed (Options.Fault, see internal/fault), the overlay runs
// in fault-tolerant mode:
//
//   - every submission is mirrored to a replica ledger on the successor
//     shard (ratee's shard p primary, (p+1) mod k replica), so one shard
//     crash loses no interval data;
//   - Submit and Query carry context deadlines with bounded
//     exponential-backoff retry, failing over to the replica shard when the
//     primary is down or unreachable;
//   - EndInterval degrades gracefully: it drains whatever shards answer
//     within the drain deadline, substitutes replica mirrors for crashed
//     primaries, scores partial drains in manager_drain_partial_total, and
//     never blocks on a dead shard. Crashed shards rejoin with the
//     last-known reputation vector.
//
// Without a plan the overlay behaves exactly as the seed implementation
// (single ledger per shard, no mirroring, no timeouts) except that a dead
// shard now yields typed ErrShardDown/ErrTimeout errors instead of
// deadlocking callers.
package manager

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"socialtrust/internal/fault"
	"socialtrust/internal/obs"
	"socialtrust/internal/obs/event"
	"socialtrust/internal/obs/span"
	"socialtrust/internal/persist"
	"socialtrust/internal/rating"
	"socialtrust/internal/reputation"
)

// Overlay metrics (recorded only while obs is enabled). Per-shard mailbox
// depth is exported as manager_mailbox_depth{shard="N"} gauges, refreshed by
// each shard after every message it handles.
var (
	mSubmitTotal  = obs.C("manager_submit_total")
	mSubmitErrors = obs.C("manager_submit_errors_total")
	mQueryTotal   = obs.C("manager_query_total")
	mDrainTotal   = obs.C("manager_drain_total")
	mSubmitLat    = obs.H("manager_submit_seconds")
	mQueryLat     = obs.H("manager_query_seconds")
	mBatchSize    = obs.H("manager_submit_batch_size", 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096)

	// Fault-tolerance metrics.
	mRetries      = obs.C("manager_submit_retries_total")
	mFailovers    = obs.C("manager_submit_failover_total")
	mCrashes      = obs.C("manager_shard_crashes_total")
	mRestarts     = obs.C("manager_shard_restarts_total")
	mDrainPartial = obs.C("manager_drain_partial_total")
	mDrainReplica = obs.C("manager_drain_replica_total")
	mShards       = obs.G("manager_shards")
	mShardsDown   = obs.G("manager_shards_down")

	// mActivePairs is the per-drain distribution of distinct active
	// (rater, ratee) pairs — the interval's activity footprint, the quantity
	// the incremental engine's cost is proportional to.
	mActivePairs = obs.H("manager_interval_active_pairs",
		1, 4, 16, 64, 256, 1024, 4096, 16384, 65536, 262144)
)

func init() {
	obs.Help("manager_submit_total", "Ratings accepted by the overlay (Submit and SubmitBatch).")
	obs.Help("manager_submit_errors_total", "Rating submissions rejected or failed after retries.")
	obs.Help("manager_query_total", "Reputation queries served by the overlay.")
	obs.Help("manager_drain_total", "Update-interval drains executed (EndInterval calls).")
	obs.Help("manager_drain_seconds", "Wall time of one update-interval drain (collection, merge, engine update, broadcast).")
	obs.Help("manager_submit_seconds", "Latency of one rating submission through the mailbox.")
	obs.Help("manager_query_seconds", "Latency of one reputation query through the mailbox.")
	obs.Help("manager_submit_batch_size", "Per-shard batch sizes delivered by SubmitBatch.")
	obs.Help("manager_mailbox_depth", "Pending messages in each shard's mailbox.")
	obs.Help("manager_submit_retries_total", "Submission delivery retries after timeouts.")
	obs.Help("manager_submit_failover_total", "Submissions redirected to the replica holder of a crashed shard.")
	obs.Help("manager_shard_crashes_total", "Shard crashes injected or observed.")
	obs.Help("manager_shard_restarts_total", "Crashed shards restarted at interval boundaries.")
	obs.Help("manager_drain_partial_total", "Interval drains that lost at least one shard's ratings.")
	obs.Help("manager_drain_replica_total", "Shard intervals recovered from replica mirrors during a drain.")
	obs.Help("manager_shards", "Shards in the overlay (set once at construction).")
	obs.Help("manager_shards_down", "Shards currently crashed and awaiting restart.")
	obs.Help("manager_interval_active_pairs", "Distinct active rater-ratee pairs per interval drain.")
}

// message is the manager mailbox protocol.
type message struct {
	kind     msgKind
	r        rating.Rating
	replica  bool // submission targets the shard's replica mirror ledger
	deferred bool // delayed delivery: applied at the next drain
	node     int
	repC     chan float64
	drainC   chan drainReply
	reps     []float64
	errC     chan error
	batch    []BatchEntry    // msgSubmitBatch payload (fault mode): one ledger op per entry
	plain    []rating.Rating // msgSubmitBatch payload (direct mode): primary ledger adds only
	errsC    chan []error    // msgSubmitBatch reply, index-aligned; nil = every entry landed
	tctx     span.Context    // trace context: parent for shard-side span emission (zero when off)
}

// drainReply is one shard's answer to a drain: its primary interval
// snapshot and (fault-tolerant mode) the mirror of its predecessor's.
type drainReply struct {
	primary rating.Snapshot
	replica rating.Snapshot
}

type msgKind int

const (
	msgSubmit msgKind = iota
	msgSubmitBatch
	msgQuery
	msgDrain
	msgUpdateReps
)

// shardState is one incarnation of a manager goroutine: crash kills the
// incarnation (its ledgers die with it), restart installs a fresh one.
type shardState struct {
	id    int
	inbox chan message
	// kill is closed by the overlay to crash this incarnation; down is
	// closed by the serve loop on exit (crash or overlay close), releasing
	// every caller blocked on this incarnation.
	kill chan struct{}
	down chan struct{}

	ledger  *rating.Ledger // primary: ratings whose ratee maps to this shard
	replica *rating.Ledger // fault mode: mirror of the predecessor's primary
	// deferred holds delay-injected submissions, applied to the matching
	// ledger when the next drain arrives (a slow message that still made it
	// within the interval).
	deferred        []rating.Rating
	deferredReplica []rating.Rating

	reps []float64
}

// shard is the stable identity of one manager slot across incarnations.
// Exactly one of the two hosting forms is active: remote nil means the shard
// runs as an in-process goroutine behind cur; remote non-nil means every
// operation goes through the transport endpoint and cur is never populated.
type shard struct {
	id     int
	cur    atomic.Pointer[shardState]
	remote ShardConn
	depth  *obs.Gauge // mailbox depth after the last handled message
}

// Options tunes the overlay's fault-tolerance machinery. The zero Options
// reproduces the seed overlay: no replication, no timeouts, no fault plan.
type Options struct {
	// Fault installs a fault-injection plan (message drops/delays/
	// duplication and shard crash/restart schedules). A non-nil plan —
	// even one injecting nothing, see fault.Config.AlwaysOn — switches the
	// overlay into fault-tolerant mode: replica mirroring, retry/failover
	// on Submit and Query, and drain-deadline degradation in EndInterval.
	Fault *fault.Plan

	// SubmitTimeout bounds one submission delivery attempt (default 5ms);
	// QueryTimeout one reputation query attempt (default 5ms); DrainTimeout
	// one shard's drain or broadcast in EndInterval (default 100ms).
	SubmitTimeout time.Duration
	QueryTimeout  time.Duration
	DrainTimeout  time.Duration

	// RetryAttempts is the per-target delivery attempt budget (default 3);
	// RetryBackoff the base sleep between attempts, doubling each retry
	// (default 200µs).
	RetryAttempts int
	RetryBackoff  time.Duration

	// StateDir enables the durability layer: each shard's primary ledger is
	// journaled to <StateDir>/shard-<i>.wal before submissions are
	// acknowledged, and the overlay exposes the crash-restart recovery
	// surface (DrainedSeqs, Resume, CompactWALs). Empty disables persistence.
	StateDir string
	// Persist tunes the shard WALs (fsync policy).
	Persist persist.Options

	// Transport, when non-nil, routes shards out of process: each shard the
	// transport claims (Shard(i) != nil) is driven over the wire instead of
	// by an in-process goroutine. Remote shards own their WALs — StateDir,
	// if also set, applies only to the shards the transport leaves local —
	// and the overlay keeps their drained high-water marks so crash/restart
	// replay floors travel with the Restart operation. See internal/cluster
	// for the socket implementation.
	Transport Transport
}

func (o Options) withDefaults() Options {
	if o.SubmitTimeout <= 0 {
		o.SubmitTimeout = 5 * time.Millisecond
	}
	if o.QueryTimeout <= 0 {
		o.QueryTimeout = 5 * time.Millisecond
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = 100 * time.Millisecond
	}
	if o.RetryAttempts <= 0 {
		o.RetryAttempts = 3
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 200 * time.Microsecond
	}
	return o
}

// Overlay is a running resource-manager overlay.
type Overlay struct {
	numNodes int
	shards   []*shard
	engine   reputation.Engine
	opts     Options
	plan     *fault.Plan // nil = seed behavior

	mu       sync.Mutex // guards engine updates, shard lifecycle, and Close
	lastReps []float64  // last broadcast vector; restarting shards sync to it
	wg       sync.WaitGroup
	closed   chan struct{}
	once     sync.Once

	// Durability layer (nil/empty without Options.StateDir): per-shard WALs
	// journaling primary ledgers, the per-shard drained sequence high-water
	// marks, and the interval counter stamped on WAL marks. All guarded by mu.
	// With a transport installed, wals holds nil entries for remote shards
	// (they own their WAL files) while drainedSeq still tracks every shard —
	// the drained marks are the replay floors Restart ships over the wire.
	wals       []*persist.WAL
	drainedSeq []uint64
	// replicaSeq tracks, per shard, the max ingest sequence of the replica
	// snapshot the shard shipped in a completed drain — the replay floor for
	// the fated (replica/deferred) records a remote shard journals.
	replicaSeq []uint64
	intervals  uint64

	// Remote-shard coordination (nil without Options.Transport). remoteDown
	// mirrors the crash/restart lifecycle the in-process path expresses with
	// incarnation channels; remoteReps is the coordinator's copy of the last
	// vector every live remote shard holds, serving queries without a wire
	// round trip (live shards are always synced to it: broadcast updates
	// them, and a restarting shard receives it with its Restart).
	transport  Transport
	remoteDown []atomic.Bool
	remoteReps atomic.Pointer[[]float64]
}

// Typed overlay errors.
var (
	// ErrClosed is returned by operations on a closed overlay.
	ErrClosed = errors.New("manager: overlay is closed")
	// ErrShardDown is returned when the responsible shard (and, in
	// fault-tolerant mode, its replica) has crashed.
	ErrShardDown = errors.New("manager: shard is down")
	// ErrTimeout is returned when a request's context deadline lapsed
	// before the shard acknowledged it (including simulated-time loss of a
	// dropped message under fault injection).
	ErrTimeout = errors.New("manager: request timed out")
)

// New starts an overlay of numManagers manager goroutines fronting the
// given reputation engine. The engine may be a bare baseline or a
// SocialTrust-wrapped one; the overlay treats it as the global reputation
// calculation of the paper's design.
func New(numNodes, numManagers int, engine reputation.Engine) (*Overlay, error) {
	return NewWithOptions(numNodes, numManagers, engine, Options{})
}

// NewWithOptions starts an overlay with explicit fault-tolerance options.
func NewWithOptions(numNodes, numManagers int, engine reputation.Engine, opts Options) (*Overlay, error) {
	if numNodes <= 0 {
		return nil, fmt.Errorf("manager: numNodes must be positive")
	}
	if numManagers <= 0 || numManagers > numNodes {
		return nil, fmt.Errorf("manager: numManagers %d invalid for %d nodes", numManagers, numNodes)
	}
	if engine == nil {
		return nil, fmt.Errorf("manager: engine is required")
	}
	if opts.Fault != nil && opts.Fault.Shards() != numManagers {
		return nil, fmt.Errorf("manager: fault plan built for %d shards, overlay has %d",
			opts.Fault.Shards(), numManagers)
	}
	o := &Overlay{
		numNodes: numNodes,
		engine:   engine,
		opts:     opts.withDefaults(),
		plan:     opts.Fault,
		closed:   make(chan struct{}),
	}
	initial := engine.Reputations()
	o.lastReps = append([]float64(nil), initial...)
	if opts.Transport != nil {
		o.transport = opts.Transport
		if err := o.transport.Start(numNodes, opts.Fault != nil, initial); err != nil {
			return nil, fmt.Errorf("manager: transport start: %w", err)
		}
		o.remoteDown = make([]atomic.Bool, numManagers)
		vec := append([]float64(nil), initial...)
		o.remoteReps.Store(&vec)
	}
	if err := o.openWALs(numManagers); err != nil {
		return nil, err
	}
	for m := 0; m < numManagers; m++ {
		s := &shard{
			id:    m,
			depth: obs.G(obs.Label("manager_mailbox_depth", "shard", strconv.Itoa(m))),
		}
		if o.transport != nil {
			s.remote = o.transport.Shard(m)
		}
		if s.remote == nil {
			st := o.newIncarnation(m, initial)
			if o.wals != nil && o.wals[m] != nil {
				st.ledger.SetJournal(walJournal{o.wals[m]})
			}
			s.cur.Store(st)
		}
		o.shards = append(o.shards, s)
		if s.remote == nil {
			o.wg.Add(1)
			go o.serve(s, s.cur.Load())
		}
	}
	mShards.Set(float64(numManagers))
	mShardsDown.Set(0)
	return o, nil
}

// replicated reports whether replica mirroring is active.
func (o *Overlay) replicated() bool { return o.plan != nil }

// newIncarnation builds a fresh shard state with empty ledgers.
func (o *Overlay) newIncarnation(id int, reps []float64) *shardState {
	st := &shardState{
		id:     id,
		inbox:  make(chan message, 256),
		kill:   make(chan struct{}),
		down:   make(chan struct{}),
		ledger: rating.NewLedger(o.numNodes),
		reps:   append([]float64(nil), reps...),
	}
	if o.replicated() {
		st.replica = rating.NewLedger(o.numNodes)
	}
	return st
}

// serve is a manager incarnation's event loop. It exits on the overlay's
// closed signal or the incarnation's kill signal; inbox channels are never
// closed, so senders cannot panic. On exit it closes down, releasing every
// caller still waiting on this incarnation.
func (o *Overlay) serve(s *shard, st *shardState) {
	defer o.wg.Done()
	defer close(st.down)
	for {
		select {
		case <-o.closed:
			return
		case <-st.kill:
			return
		case msg := <-st.inbox:
			switch msg.kind {
			case msgSubmit:
				st.handleSubmit(msg)
			case msgSubmitBatch:
				tsp := span.From(msg.tctx, "shard.deliver_batch", span.PhaseIngest)
				if tsp != nil {
					tsp.SetInt("shard", int64(st.id))
					tsp.SetInt("entries", int64(len(msg.plain)+len(msg.batch)))
					replicas := 0
					for _, e := range msg.batch {
						if e.Replica {
							replicas++
						}
					}
					if replicas > 0 {
						tsp.SetInt("replica_entries", int64(replicas))
					}
				}
				st.handleSubmitBatch(msg)
				tsp.End()
			case msgQuery:
				if msg.node < 0 || msg.node >= o.numNodes {
					msg.repC <- 0
					s.depth.Set(float64(len(st.inbox)))
					continue
				}
				msg.repC <- st.reps[msg.node]
			case msgDrain:
				tsp := span.From(msg.tctx, "shard.drain", span.PhaseDrain).SetInt("shard", int64(st.id))
				rep := st.drain()
				tsp.End()
				// The reply send must not wedge the loop past shutdown: a
				// caller that gave up (drain deadline) never reads drainC.
				select {
				case msg.drainC <- rep:
				case <-o.closed:
					return
				case <-st.kill:
					return
				}
			case msgUpdateReps:
				st.reps = msg.reps
				msg.errC <- nil
			}
			s.depth.Set(float64(len(st.inbox)))
		}
	}
}

// handleSubmit applies one submission to the incarnation's ledgers.
// Delay-injected messages are acknowledged on receipt and applied at the
// next drain.
func (st *shardState) handleSubmit(msg message) {
	if msg.deferred {
		if msg.replica {
			st.deferredReplica = append(st.deferredReplica, msg.r)
		} else {
			st.deferred = append(st.deferred, msg.r)
		}
		msg.errC <- nil
		return
	}
	if msg.replica {
		msg.errC <- st.replica.Add(msg.r)
		return
	}
	msg.errC <- st.ledger.Add(msg.r)
}

// handleSubmitBatch applies one batched submission under a single mailbox
// receive — the per-shard coalescing that makes batch ingest cheap: one
// channel round trip and one reply allocation amortize over every rating
// bound for this shard. Entry semantics (replica/deferred fate bits,
// per-entry ledger errors) are identical to a sequence of msgSubmits.
func (st *shardState) handleSubmitBatch(msg message) {
	if msg.plain != nil {
		// Direct mode: hand the whole sub-batch to the ledger, which visits
		// each of its internal shards once instead of once per rating.
		msg.errsC <- st.ledger.AddBatch(msg.plain)
		return
	}
	var errs []error
	for i, e := range msg.batch {
		var err error
		switch {
		case e.Deferred && e.Replica:
			st.deferredReplica = append(st.deferredReplica, e.R)
		case e.Deferred:
			st.deferred = append(st.deferred, e.R)
		case e.Replica:
			err = st.replica.Add(e.R)
		default:
			err = st.ledger.Add(e.R)
		}
		if err != nil {
			if errs == nil {
				errs = make([]error, len(msg.batch))
			}
			errs[i] = err
		}
	}
	msg.errsC <- errs
}

// drain flushes deferred submissions into the ledgers and snapshots the
// interval.
func (st *shardState) drain() drainReply {
	for _, r := range st.deferred {
		_ = st.ledger.Add(r) // validated at submit time
	}
	st.deferred = st.deferred[:0]
	var rep drainReply
	rep.primary = st.ledger.EndInterval()
	if st.replica != nil {
		for _, r := range st.deferredReplica {
			_ = st.replica.Add(r)
		}
		st.deferredReplica = st.deferredReplica[:0]
		rep.replica = st.replica.EndInterval()
	}
	return rep
}

// ManagerOf returns the manager index responsible for a node.
func (o *Overlay) ManagerOf(node int) int { return node % len(o.shards) }

// replicaOf returns the shard holding node's replica mirror.
func (o *Overlay) replicaOf(primary int) int { return (primary + 1) % len(o.shards) }

// NumManagers reports the overlay size.
func (o *Overlay) NumManagers() int { return len(o.shards) }

// downOrClosed maps a dead-incarnation signal to the right typed error:
// Close also tears incarnations down, and callers racing it should see
// ErrClosed, not ErrShardDown.
func (o *Overlay) downOrClosed() error {
	select {
	case <-o.closed:
		return ErrClosed
	default:
		return ErrShardDown
	}
}

// remoteErr maps a transport-level failure onto the overlay's typed errors:
// deadlines stay ErrTimeout (retryable), everything else is the remote
// analogue of a dead incarnation — ErrShardDown, or ErrClosed when the
// overlay itself is shutting down.
func (o *Overlay) remoteErr(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, ErrTimeout) {
		return ErrTimeout
	}
	if errors.Is(err, ErrClosed) {
		return ErrClosed
	}
	return o.downOrClosed()
}

// Submit routes one rating to the ratee's manager. Safe for concurrent use.
// Returns ErrClosed after Close, ErrShardDown when the responsible shard
// (and, in fault-tolerant mode, its replica) has crashed, and ErrTimeout
// when delivery attempts exhausted their deadlines.
func (o *Overlay) Submit(r rating.Rating) error {
	sp := mSubmitLat.Start()
	err := o.submit(r)
	sp.End()
	mSubmitTotal.Inc()
	if err != nil {
		mSubmitErrors.Inc()
	}
	return err
}

func (o *Overlay) submit(r rating.Rating) error {
	if r.Ratee < 0 || r.Ratee >= o.numNodes {
		return fmt.Errorf("manager: ratee %d out of range", r.Ratee)
	}
	if o.plan != nil {
		return o.submitFT(r)
	}
	return o.submitDirect(r)
}

// submitDirect is the seed fast path: one blocking delivery to the primary
// shard, with no replication or deadline. It cannot hang: a dead
// incarnation's down signal aborts both the send and the ack wait.
func (o *Overlay) submitDirect(r rating.Rating) error {
	s := o.shards[o.ManagerOf(r.Ratee)]
	if s.remote != nil {
		select {
		case <-o.closed:
			return ErrClosed
		default:
		}
		res, terr := s.remote.SubmitPlain([]rating.Rating{r})()
		if terr != nil {
			return o.remoteErr(terr)
		}
		if len(res) > 0 {
			return res[0]
		}
		return nil
	}
	st := s.cur.Load()
	errC := make(chan error, 1)
	select {
	case <-o.closed:
		return ErrClosed
	case <-st.down:
		return o.downOrClosed()
	case st.inbox <- message{kind: msgSubmit, r: r, errC: errC}:
	}
	select {
	case err := <-errC:
		return err
	case <-st.down:
		return o.downOrClosed()
	case <-o.closed:
		return ErrClosed // shut down before the manager processed it
	}
}

// SubmitBatch routes many ratings at once, grouping them by responsible
// shard and delivering one batched mailbox message per shard instead of one
// per rating. Replica mirroring and fault-plan verdicts (drop / delay /
// duplicate) are still drawn and applied per rating, so a batch behaves
// exactly like the equivalent Submit sequence — it just costs one channel
// round trip per shard. The returned slice is index-aligned with rs; a nil
// return means every rating landed. Safe for concurrent use.
func (o *Overlay) SubmitBatch(rs []rating.Rating) []error {
	if len(rs) == 0 {
		return nil
	}
	sp := mSubmitLat.Start()
	tsp := span.Ambient("manager.submit_batch", span.PhaseIngest).SetInt("ratings", int64(len(rs)))
	var errs []error
	if o.plan != nil {
		errs = o.submitBatchFT(rs, tsp.Context())
	} else {
		errs = o.submitBatchDirect(rs, tsp.Context())
	}
	tsp.End()
	sp.End()
	mSubmitTotal.Add(int64(len(rs)))
	failed := 0
	for _, err := range errs {
		if err != nil {
			failed++
		}
	}
	mSubmitErrors.Add(int64(failed))
	if failed == 0 {
		return nil
	}
	return errs
}

// submitBatchDirect is the plain batched path: counting-sort the ratings
// into one contiguous arena grouped by shard, send every shard its
// sub-batch, then collect the acks — the sends all land before the first ack
// wait, so the shards chew their batches concurrently. The error slice is
// allocated only when something actually fails, so the all-landed common
// case costs two arena allocations plus one channel round trip per shard.
func (o *Overlay) submitBatchDirect(rs []rating.Rating, tctx span.Context) []error {
	var errs []error
	fail := func(i int, err error) {
		if errs == nil {
			errs = make([]error, len(rs))
		}
		errs[i] = err
	}
	k := len(o.shards)
	starts := make([]int, k+1)
	for i := range rs {
		if rs[i].Ratee < 0 || rs[i].Ratee >= o.numNodes {
			fail(i, fmt.Errorf("manager: ratee %d out of range", rs[i].Ratee))
			continue
		}
		starts[o.ManagerOf(rs[i].Ratee)+1]++
	}
	for s := 0; s < k; s++ {
		starts[s+1] += starts[s]
	}
	total := starts[k]
	if total == 0 {
		return errs
	}
	// arena[starts[s]:starts[s+1]] is shard s's sub-batch; idx maps each
	// arena slot back to its position in rs for error reporting.
	arena := make([]rating.Rating, total)
	idx := make([]int, total)
	fill := append([]int(nil), starts[:k]...)
	for i := range rs {
		if errs != nil && errs[i] != nil {
			continue
		}
		s := o.ManagerOf(rs[i].Ratee)
		arena[fill[s]] = rs[i]
		idx[fill[s]] = i
		fill[s]++
	}
	// Send every shard its sub-batch — in-process mailboxes and pipelined
	// transport writes alike — before collecting any acknowledgement, so the
	// shards chew their batches concurrently whether they live in this
	// process or behind a socket.
	replies := make([]chan []error, k)
	var waits []func() ([]error, error)
	for s := 0; s < k; s++ {
		lo, hi := starts[s], starts[s+1]
		if lo == hi {
			continue
		}
		mBatchSize.Observe(float64(hi - lo))
		if rc := o.shards[s].remote; rc != nil {
			select {
			case <-o.closed:
				failGroup(&errs, len(rs), idx[lo:hi], ErrClosed)
			default:
				if waits == nil {
					waits = make([]func() ([]error, error), k)
				}
				waits[s] = rc.SubmitPlain(arena[lo:hi])
			}
			continue
		}
		st := o.shards[s].cur.Load()
		errsC := make(chan []error, 1)
		select {
		case <-o.closed:
			failGroup(&errs, len(rs), idx[lo:hi], ErrClosed)
		case <-st.down:
			failGroup(&errs, len(rs), idx[lo:hi], o.downOrClosed())
		case st.inbox <- message{kind: msgSubmitBatch, plain: arena[lo:hi], errsC: errsC, tctx: tctx}:
			replies[s] = errsC
		}
	}
	for s := 0; s < k; s++ {
		lo, hi := starts[s], starts[s+1]
		if waits != nil && waits[s] != nil {
			res, terr := waits[s]()
			if terr != nil {
				failGroup(&errs, len(rs), idx[lo:hi], o.remoteErr(terr))
				continue
			}
			for x, e := range res { // nil res = whole sub-batch landed
				if e != nil {
					fail(idx[lo+x], e)
				}
			}
			continue
		}
		if replies[s] == nil {
			continue
		}
		st := o.shards[s].cur.Load()
		select {
		case res := <-replies[s]:
			for x, e := range res { // nil res = whole sub-batch landed
				if e != nil {
					fail(idx[lo+x], e)
				}
			}
		case <-st.down:
			failGroup(&errs, len(rs), idx[lo:hi], o.downOrClosed())
		case <-o.closed:
			failGroup(&errs, len(rs), idx[lo:hi], ErrClosed)
		}
	}
	return errs
}

// failGroup stamps one error on every listed slot, allocating the
// index-aligned error slice on first use.
func failGroup(errs *[]error, n int, idxs []int, err error) {
	if *errs == nil {
		*errs = make([]error, n)
	}
	for _, i := range idxs {
		(*errs)[i] = err
	}
}

// batchDelivery is one pending per-rating delivery of a fault-tolerant
// batch: a (rating, target shard, replica?) triple plus its latest outcome.
type batchDelivery struct {
	idx     int // index into the SubmitBatch input
	shard   int
	replica bool
	err     error
}

// submitBatchFT is the fault-tolerant batched path. Every rating is
// validated up front and expands to a primary delivery plus (on multi-shard
// overlays) a replica mirror, exactly as submitFT; the deliveries then run
// in retry rounds — one batched message per shard per round, each delivery
// drawing its own fault verdict — until they land, fail hard, or exhaust
// the attempt budget. Outcomes combine per rating with submitFT's rules: a
// dead primary with a live mirror is a failover, not an error.
func (o *Overlay) submitBatchFT(rs []rating.Rating, tctx span.Context) []error {
	errs := make([]error, len(rs))
	dels := make([]batchDelivery, 0, 2*len(rs))
	hasReplica := make([]bool, len(rs))
	for i, r := range rs {
		switch {
		case r.Ratee < 0 || r.Ratee >= o.numNodes:
			errs[i] = fmt.Errorf("manager: ratee %d out of range", r.Ratee)
			continue
		case r.Rater < 0 || r.Rater >= o.numNodes:
			errs[i] = fmt.Errorf("manager: rater %d out of range", r.Rater)
			continue
		case r.Rater == r.Ratee:
			errs[i] = fmt.Errorf("rating: self-rating by node %d rejected", r.Rater)
			continue
		}
		p := o.ManagerOf(r.Ratee)
		dels = append(dels, batchDelivery{idx: i, shard: p})
		if rep := o.replicaOf(p); rep != p {
			dels = append(dels, batchDelivery{idx: i, shard: rep, replica: true})
			hasReplica[i] = true
		}
	}
	pending := make([]int, len(dels))
	for d := range dels {
		pending[d] = d
	}
	backoff := o.opts.RetryBackoff
	for attempt := 0; attempt < o.opts.RetryAttempts && len(pending) > 0; attempt++ {
		if attempt > 0 {
			mRetries.Add(int64(len(pending)))
			time.Sleep(backoff)
			backoff *= 2
		}
		pending = o.deliverBatchRound(rs, dels, pending, tctx)
	}
	primary := make([]error, len(rs))
	replica := make([]error, len(rs))
	for _, d := range dels {
		if d.replica {
			replica[d.idx] = d.err
		} else {
			primary[d.idx] = d.err
		}
	}
	for i := range rs {
		if errs[i] != nil {
			continue // failed validation; never delivered
		}
		pErr := primary[i]
		rErr := pErr // single-shard overlay has no distinct replica
		if hasReplica[i] {
			rErr = replica[i]
		}
		switch {
		case pErr == nil:
		case errors.Is(pErr, ErrClosed):
			errs[i] = pErr
		case rErr == nil:
			// Primary unreachable but the replica holds the rating; the
			// next drain recovers it from the mirror.
			mFailovers.Inc()
		default:
			errs[i] = pErr
		}
	}
	return errs
}

// deliverBatchRound runs one delivery attempt for every pending delivery,
// one batched message per shard, and returns the deliveries still worth
// retrying (lost in transit or timed out at the ack deadline). Hard
// failures — shard down, overlay closed, ledger rejection — are final and
// stay out of the next round, mirroring deliverRetry's abort conditions.
func (o *Overlay) deliverBatchRound(rs []rating.Rating, dels []batchDelivery, pending []int, tctx span.Context) []int {
	byShard := make([][]int, len(o.shards))
	for _, di := range pending {
		byShard[dels[di].shard] = append(byShard[dels[di].shard], di)
	}
	var still []int
	for s := range o.shards {
		group := byShard[s]
		if len(group) == 0 {
			continue
		}
		// The down check precedes the verdict draws — the remote flag mirrors
		// the incarnation signal exactly, so the plan's RNG stream consumes
		// the same draws in the same order either way.
		rc := o.shards[s].remote
		var st *shardState
		if rc != nil {
			if o.remoteDown[s].Load() {
				err := o.downOrClosed()
				for _, di := range group {
					dels[di].err = err
				}
				continue
			}
		} else {
			st = o.shards[s].cur.Load()
			select {
			case <-st.down:
				err := o.downOrClosed()
				for _, di := range group {
					dels[di].err = err
				}
				continue
			default:
			}
		}
		// Draw each delivery's fate from the plan — per rating, exactly as
		// the unbatched path — and assemble the surviving entries. slots
		// maps batch entries back to deliveries; a duplicate-injected copy
		// gets slot -1 (its ledger ack is deliberately ignored, matching
		// deliverOnce's fire-and-forget duplicate).
		batch := make([]BatchEntry, 0, len(group))
		slots := make([]int, 0, len(group))
		for _, di := range group {
			d := &dels[di]
			v := o.plan.DeliveryVerdict(s)
			if v.Drop {
				// Lost in transit: the ack deadline lapses in simulated
				// time, and the delivery stays retryable.
				d.err = ErrTimeout
				still = append(still, di)
				continue
			}
			batch = append(batch, BatchEntry{R: rs[d.idx], Replica: d.replica, Deferred: v.Delay})
			slots = append(slots, di)
			if v.Duplicate {
				batch = append(batch, BatchEntry{R: rs[d.idx], Replica: d.replica, Deferred: v.Delay})
				slots = append(slots, -1)
			}
		}
		if len(batch) == 0 {
			continue
		}
		mBatchSize.Observe(float64(len(batch)))
		if rc != nil {
			res, terr := rc.SubmitEntries(batch, o.opts.SubmitTimeout)()
			if terr != nil {
				terr = o.remoteErr(terr)
				for _, di := range slots {
					if di < 0 {
						continue
					}
					dels[di].err = terr
					if errors.Is(terr, ErrTimeout) {
						still = append(still, di)
					}
				}
				continue
			}
			for x, di := range slots {
				if di < 0 {
					continue
				}
				if res == nil {
					dels[di].err = nil
				} else {
					dels[di].err = res[x]
				}
			}
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), o.opts.SubmitTimeout)
		msg := message{kind: msgSubmitBatch, batch: batch, errsC: make(chan []error, 1), tctx: tctx}
		if err := o.send(ctx, st, msg); err != nil {
			for _, di := range slots {
				if di < 0 {
					continue
				}
				dels[di].err = err
				if errors.Is(err, ErrTimeout) {
					still = append(still, di)
				}
			}
			cancel()
			continue
		}
		select {
		case res := <-msg.errsC:
			// nil res = the whole sub-batch landed; clear any error left
			// over from an earlier dropped or timed-out attempt.
			for x, di := range slots {
				if di < 0 {
					continue
				}
				if res == nil {
					dels[di].err = nil
				} else {
					dels[di].err = res[x]
				}
			}
		case <-st.down:
			err := o.downOrClosed()
			for _, di := range slots {
				if di >= 0 {
					dels[di].err = err
				}
			}
		case <-o.closed:
			for _, di := range slots {
				if di >= 0 {
					dels[di].err = ErrClosed
				}
			}
		case <-ctx.Done():
			for _, di := range slots {
				if di < 0 {
					continue
				}
				dels[di].err = ErrTimeout
				still = append(still, di)
			}
		}
		cancel()
	}
	return still
}

// submitFT is the fault-tolerant submission path: the rating is validated
// up front (delay-injected copies are acknowledged before the ledger sees
// them), delivered to the primary with retries, and mirrored to the replica
// shard. The submission survives as long as either copy lands: a primary
// failure with a successful mirror is a failover, not an error.
func (o *Overlay) submitFT(r rating.Rating) error {
	if r.Rater < 0 || r.Rater >= o.numNodes {
		return fmt.Errorf("manager: rater %d out of range", r.Rater)
	}
	if r.Rater == r.Ratee {
		return fmt.Errorf("rating: self-rating by node %d rejected", r.Rater)
	}
	p := o.ManagerOf(r.Ratee)
	rep := o.replicaOf(p)
	primaryErr := o.deliverRetry(p, r, false)
	var replicaErr error
	if rep != p {
		replicaErr = o.deliverRetry(rep, r, true)
	} else {
		replicaErr = primaryErr // single-shard overlay has no distinct replica
	}
	if primaryErr == nil {
		return nil
	}
	if errors.Is(primaryErr, ErrClosed) {
		return primaryErr
	}
	if replicaErr == nil {
		// Primary unreachable but the replica holds the rating; the next
		// drain recovers it from the mirror.
		mFailovers.Inc()
		return nil
	}
	return primaryErr
}

// deliverRetry attempts delivery to one shard with bounded exponential
// backoff. Shard-down and overlay-closed conditions abort immediately
// (crashed incarnations only restart at interval boundaries, so retrying
// them is wasted time); timeouts are retried.
func (o *Overlay) deliverRetry(shardID int, r rating.Rating, replica bool) error {
	backoff := o.opts.RetryBackoff
	var err error
	for attempt := 0; attempt < o.opts.RetryAttempts; attempt++ {
		if attempt > 0 {
			mRetries.Inc()
			time.Sleep(backoff)
			backoff *= 2
		}
		err = o.deliverOnce(shardID, r, replica)
		if err == nil || errors.Is(err, ErrShardDown) || errors.Is(err, ErrClosed) {
			return err
		}
	}
	return err
}

// deliverOnce performs one submission delivery under the submit deadline,
// consulting the fault plan for the message's fate.
func (o *Overlay) deliverOnce(shardID int, r rating.Rating, replica bool) error {
	if rc := o.shards[shardID].remote; rc != nil {
		if o.remoteDown[shardID].Load() {
			return o.downOrClosed()
		}
		v := o.plan.DeliveryVerdict(shardID)
		if v.Drop {
			return ErrTimeout
		}
		entries := []BatchEntry{{R: r, Replica: replica, Deferred: v.Delay}}
		if v.Duplicate {
			// The duplicate rides in the same wire batch; its per-entry ack
			// is ignored, matching the in-process fire-and-forget copy.
			entries = append(entries, entries[0])
		}
		res, terr := rc.SubmitEntries(entries, o.opts.SubmitTimeout)()
		if terr != nil {
			return o.remoteErr(terr)
		}
		if len(res) > 0 {
			return res[0]
		}
		return nil
	}
	st := o.shards[shardID].cur.Load()
	select {
	case <-st.down:
		return o.downOrClosed()
	default:
	}
	v := o.plan.DeliveryVerdict(shardID)
	if v.Drop {
		// The message is lost in transit: the ack deadline lapses. The
		// timeout is charged in simulated time — returning immediately —
		// so high drop rates do not stall the run on wall-clock sleeps.
		return ErrTimeout
	}
	ctx, cancel := context.WithTimeout(context.Background(), o.opts.SubmitTimeout)
	defer cancel()
	msg := message{kind: msgSubmit, r: r, replica: replica, deferred: v.Delay, errC: make(chan error, 1)}
	if err := o.send(ctx, st, msg); err != nil {
		return err
	}
	if v.Duplicate {
		dup := msg
		dup.errC = make(chan error, 1) // nobody reads it; buffered so the shard never blocks
		_ = o.send(ctx, st, dup)
	}
	select {
	case err := <-msg.errC:
		return err
	case <-st.down:
		return o.downOrClosed()
	case <-o.closed:
		return ErrClosed
	case <-ctx.Done():
		return ErrTimeout
	}
}

// send enqueues one message on an incarnation's mailbox under ctx.
func (o *Overlay) send(ctx context.Context, st *shardState, msg message) error {
	select {
	case st.inbox <- msg:
		return nil
	case <-st.down:
		return o.downOrClosed()
	case <-o.closed:
		return ErrClosed
	case <-ctx.Done():
		return ErrTimeout
	}
}

// Reputation queries the manager responsible for node for its current
// global reputation. Safe for concurrent use; returns 0 after Close or when
// the shard is unreachable (use Query for the typed error).
func (o *Overlay) Reputation(node int) float64 {
	v, _ := o.Query(node)
	return v
}

// Query returns node's reputation from its manager's broadcast copy. In
// fault-tolerant mode an unreachable primary fails over to the replica
// shard (every shard holds the full broadcast vector). Returns ErrShardDown
// when no responsible shard is reachable, ErrTimeout on deadline, ErrClosed
// after Close.
func (o *Overlay) Query(node int) (float64, error) {
	if node < 0 || node >= o.numNodes {
		return 0, fmt.Errorf("manager: node %d out of range", node)
	}
	sp := mQueryLat.Start()
	defer func() {
		sp.End()
		mQueryTotal.Inc()
	}()
	p := o.ManagerOf(node)
	v, err := o.queryShard(p, node)
	if err == nil || o.plan == nil || errors.Is(err, ErrClosed) {
		return v, err
	}
	if rep := o.replicaOf(p); rep != p {
		return o.queryShard(rep, node)
	}
	return v, err
}

// queryShard asks one shard for node's reputation. Fault-tolerant mode
// bounds the wait with the query deadline.
//
// Remote shards are served from the coordinator's remoteReps mirror instead
// of a wire round trip: every live remote shard holds exactly the last
// broadcast vector (UpdateReps at each drain, Restart on rejoin), so the
// mirror answers identically — including the down/failover behavior, which
// keys off remoteDown just as the in-process path keys off the incarnation
// signal. This keeps the simulator's millions of per-cycle queries off the
// socket.
func (o *Overlay) queryShard(shardID, node int) (float64, error) {
	if o.shards[shardID].remote != nil {
		select {
		case <-o.closed:
			return 0, ErrClosed
		default:
		}
		if o.remoteDown[shardID].Load() {
			return 0, o.downOrClosed()
		}
		return (*o.remoteReps.Load())[node], nil
	}
	st := o.shards[shardID].cur.Load()
	repC := make(chan float64, 1)
	msg := message{kind: msgQuery, node: node, repC: repC}
	var timeout <-chan time.Time
	if o.plan != nil {
		t := time.NewTimer(o.opts.QueryTimeout)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case <-o.closed:
		return 0, ErrClosed
	case <-st.down:
		return 0, o.downOrClosed()
	case <-timeout:
		return 0, ErrTimeout
	case st.inbox <- msg:
	}
	select {
	case rep := <-repC:
		return rep, nil
	case <-st.down:
		return 0, o.downOrClosed()
	case <-o.closed:
		return 0, ErrClosed
	case <-timeout:
		return 0, ErrTimeout
	}
}

// DrainStatus reports how one EndInterval degraded under faults.
type DrainStatus struct {
	// Drained counts shards whose primary snapshot arrived; ReplicaUsed
	// lists shards recovered from their successor's mirror; Missing lists
	// shards whose interval data was lost outright (primary and replica
	// both unreachable).
	Drained     int
	ReplicaUsed []int
	Missing     []int
	// Partial is true when any shard's data was lost (Missing non-empty):
	// the update proceeded on the surviving quorum.
	Partial bool
	// Crashed and Restarted list the shard transitions the fault plan
	// applied at this interval boundary.
	Crashed   []int
	Restarted []int
}

// EndInterval performs the paper's periodic global reputation update: it
// drains every manager's shard, merges the snapshots in deterministic
// order, feeds them to the engine (where a wrapped SocialTrust filter
// performs its B1–B4 adjustment), and broadcasts the new reputation vector
// back to all managers. Returns the updated vector.
func (o *Overlay) EndInterval() []float64 {
	reps, _ := o.EndIntervalStatus()
	return reps
}

// EndIntervalStatus is EndInterval plus the drain's degradation report.
// Under a fault plan it applies the interval's scheduled crashes first
// (losing those shards' primary interval ledgers), drains the survivors
// within the drain deadline, substitutes replica mirrors for crashed
// primaries, and restarts shards whose outage ended — synced to the freshly
// broadcast vector. It never blocks on a dead shard.
func (o *Overlay) EndIntervalStatus() ([]float64, DrainStatus) {
	o.mu.Lock()
	defer o.mu.Unlock()
	var status DrainStatus
	select {
	case <-o.closed:
		return make([]float64, o.numNodes), status
	default:
	}
	sp := obs.Start("manager.drain")
	defer func() {
		sp.End()
		mDrainTotal.Inc()
	}()
	rec := event.Current()
	var drainStart time.Time
	if rec != nil {
		drainStart = time.Now()
	}
	interval := 0
	// Phase 0 (fault mode): apply this interval's scheduled outages. A
	// crash at interval t loses the shard's interval-t primary ledger — the
	// replica mirror on its successor is the only surviving copy.
	if o.plan != nil {
		crashes, restarts := o.plan.BeginInterval()
		interval = o.plan.Interval()
		status.Crashed = crashes
		status.Restarted = restarts
		for _, s := range crashes {
			o.crashShardLocked(s)
			mCrashes.Inc()
			if rec != nil {
				rec.RecordManager(event.ManagerEvent{Kind: "crash", Shard: s, Interval: interval})
			}
		}
		// Restarts are applied after the drain+broadcast below so the
		// rejoining incarnation syncs to the interval's fresh vector.
		defer func() {
			for _, s := range restarts {
				o.restartShardLocked(s)
				mRestarts.Inc()
				if rec != nil {
					rec.RecordManager(event.ManagerEvent{Kind: "restart", Shard: s, Interval: interval})
				}
			}
		}()
	}
	// Phase 1: drain all reachable shards concurrently. The drain span covers
	// phases 1–2 (collection plus snapshot assembly and merge); the engine
	// update in phase 3 emits its own adjust/iterate spans.
	tsp := span.Ambient("manager.drain_shards", span.PhaseDrain).SetInt("shards", int64(len(o.shards)))
	tctx := tsp.Context()
	replies := make([]*drainReply, len(o.shards))
	var wg sync.WaitGroup
	for i := range o.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			replies[i] = o.drainShard(i, tctx)
		}(i)
	}
	wg.Wait()
	// Phase 2: assemble the interval's snapshots — primaries where they
	// arrived, replica mirrors where they did not — and merge. With
	// persistence on, each shard's drained high-water mark advances to the
	// max ingest sequence of whatever snapshot stood in for its data: WAL
	// records at or below the mark are covered by this (or an earlier) drain.
	o.intervals++
	snaps := make([]rating.Snapshot, 0, len(o.shards))
	for i := range o.shards {
		if replies[i] != nil {
			snaps = append(snaps, replies[i].primary)
			o.noteDrained(i, replies[i].primary.MaxSeq)
			o.noteReplicaDrained(i, replies[i].replica.MaxSeq)
			status.Drained++
			continue
		}
		if j := o.replicaOf(i); o.replicated() && j != i && replies[j] != nil {
			snaps = append(snaps, replies[j].replica)
			o.noteDrained(i, replies[j].replica.MaxSeq)
			status.ReplicaUsed = append(status.ReplicaUsed, i)
			mDrainReplica.Inc()
			continue
		}
		status.Missing = append(status.Missing, i)
	}
	// A remote shard that failed its drain while not plan-down is in an
	// unknown state: the worker process may still hold — or later replay —
	// interval data this drain just recovered through the mirror. Force a
	// restart carrying the post-drain floors so the worker discards its
	// stale interval state and rebuilds only the uncovered WAL tail: the
	// out-of-process analogue of a crashed incarnation's discarded ledger.
	for i := range o.shards {
		rc := o.shards[i].remote
		if rc == nil || replies[i] != nil || o.remoteDown[i].Load() {
			continue
		}
		var floor, replicaFloor uint64
		if o.drainedSeq != nil {
			floor = o.drainedSeq[i]
		}
		if o.replicaSeq != nil {
			replicaFloor = o.replicaSeq[i]
		}
		_ = rc.Restart(o.lastReps, floor, replicaFloor, false)
	}
	// Stamp (and, per the fsync policy, sync) an interval mark on every WAL:
	// the tail of a completed interval must reach stable storage before the
	// caller snapshots against it. Remote shards receive the mark as a wire
	// operation — their worker process applies it to the WAL it owns.
	for i := range o.wals {
		if o.wals[i] != nil {
			_ = o.wals[i].AppendMark(o.intervals)
		}
	}
	for _, s := range o.shards {
		if s.remote != nil && !o.remoteDown[s.id].Load() {
			_ = s.remote.Mark(o.intervals)
		}
	}
	if len(status.Missing) > 0 {
		status.Partial = true
		mDrainPartial.Inc()
	}
	merged := mergeSnapshots(snaps)
	mActivePairs.Observe(float64(len(merged.Counts)))
	tsp.SetInt("ratings", int64(len(merged.Ratings))).End()
	// Phase 3: global reputation calculation over the surviving quorum's
	// data. Nodes whose interval ratings were lost keep their last-known
	// engine reputation — the engine state is cumulative.
	o.engine.Update(merged)
	reps := o.engine.Reputations()
	o.lastReps = append(o.lastReps[:0], reps...)
	// Phase 4: broadcast to every reachable shard. Down shards are skipped;
	// they sync on restart.
	bsp := span.Ambient("manager.broadcast", span.PhaseDrain).SetInt("shards", int64(len(o.shards)))
	for _, s := range o.shards {
		if rc := s.remote; rc != nil {
			if !o.remoteDown[s.id].Load() {
				var timeout time.Duration
				if o.plan != nil {
					timeout = o.opts.DrainTimeout
				}
				_ = rc.UpdateReps(reps, timeout)
			}
			continue
		}
		st := s.cur.Load()
		errC := make(chan error, 1)
		msg := message{kind: msgUpdateReps, reps: append([]float64(nil), reps...), errC: errC}
		ctx := context.Background()
		var cancel context.CancelFunc = func() {}
		if o.plan != nil {
			ctx, cancel = context.WithTimeout(ctx, o.opts.DrainTimeout)
		}
		if err := o.send(ctx, st, msg); err == nil {
			select {
			case <-errC:
			case <-st.down:
			case <-o.closed:
			case <-ctx.Done():
			}
		}
		cancel()
	}
	if o.transport != nil {
		// Refresh the query mirror: every live remote shard now holds reps,
		// and a down shard will receive the same vector with its Restart.
		vec := append([]float64(nil), reps...)
		o.remoteReps.Store(&vec)
	}
	bsp.End()
	if rec != nil {
		rec.RecordManager(event.ManagerEvent{
			Kind:     "drain",
			Shards:   len(o.shards),
			Ratings:  len(merged.Ratings),
			Seconds:  time.Since(drainStart).Seconds(),
			Interval: interval,
			Missing:  len(status.Missing),
			Replicas: len(status.ReplicaUsed),
			Partial:  status.Partial,
		})
	}
	return reps, status
}

// drainShard sends one drain request and collects the reply, bounded by the
// drain deadline in fault mode. Returns nil when the shard is unreachable.
func (o *Overlay) drainShard(i int, tctx span.Context) *drainReply {
	if rc := o.shards[i].remote; rc != nil {
		if o.remoteDown[i].Load() {
			return nil
		}
		var timeout time.Duration
		if o.plan != nil {
			timeout = o.opts.DrainTimeout
		}
		ds, err := rc.Drain(timeout)
		if err != nil {
			return nil
		}
		return &drainReply{primary: ds.Primary, replica: ds.Replica}
	}
	st := o.shards[i].cur.Load()
	drainC := make(chan drainReply, 1)
	msg := message{kind: msgDrain, drainC: drainC, tctx: tctx}
	ctx := context.Background()
	if o.plan != nil {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, o.opts.DrainTimeout)
		defer cancel()
	}
	if err := o.send(ctx, st, msg); err != nil {
		return nil
	}
	select {
	case rep := <-drainC:
		return &rep
	case <-st.down:
		return nil
	case <-o.closed:
		return nil
	case <-ctx.Done():
		return nil
	}
}

// crashShardLocked kills the shard's current incarnation, losing its
// interval ledgers. Callers hold o.mu. Idempotent on already-down shards.
func (o *Overlay) crashShardLocked(i int) {
	if rc := o.shards[i].remote; rc != nil {
		if o.remoteDown[i].Load() {
			return // already down
		}
		_ = rc.Crash()
		o.remoteDown[i].Store(true)
		mShardsDown.Add(1)
		return
	}
	st := o.shards[i].cur.Load()
	select {
	case <-st.down:
		return // already down
	default:
	}
	close(st.kill)
	<-st.down // wait for the serve loop to exit before proceeding
	mShardsDown.Add(1)
}

// restartShardLocked installs a fresh incarnation synced to the last
// broadcast reputation vector. Callers hold o.mu. A live shard is left
// untouched. With persistence on, the shard's recoverable WAL tail — rating
// records above its drained high-water mark, journaled by the incarnation
// that crashed — is replayed into the fresh primary ledger before the journal
// is reattached, so a WAL-backed shard crash loses nothing that was
// acknowledged (the replica mirror alone can miss replica-dropped
// deliveries). Replay happens before the incarnation is published, so no
// concurrent traffic races the ledger.
func (o *Overlay) restartShardLocked(i int) {
	s := o.shards[i]
	if rc := s.remote; rc != nil {
		if !o.remoteDown[i].Load() {
			return // still alive
		}
		var floor, replicaFloor uint64
		if o.drainedSeq != nil {
			floor = o.drainedSeq[i]
		}
		if o.replicaSeq != nil {
			replicaFloor = o.replicaSeq[i]
		}
		// The worker replays its own WAL above the drained floors — the exact
		// records the in-process replayShardWAL would restore, plus the fated
		// replica/deferred records only worker-side durability journals.
		_ = rc.Restart(o.lastReps, floor, replicaFloor, false)
		o.remoteDown[i].Store(false)
		mShardsDown.Add(-1)
		return
	}
	st := s.cur.Load()
	select {
	case <-st.down:
	default:
		return // still alive
	}
	fresh := o.newIncarnation(i, o.lastReps)
	if o.wals != nil && o.wals[i] != nil {
		o.replayShardWAL(i, fresh.ledger, 0, false)
		fresh.ledger.SetJournal(walJournal{o.wals[i]})
	}
	s.cur.Store(fresh)
	o.wg.Add(1)
	go o.serve(s, fresh)
	mShardsDown.Add(-1)
}

// crashShard is the test hook for killing one shard outside a fault plan.
func (o *Overlay) crashShard(i int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.crashShardLocked(i)
}

// mergeSnapshots combines per-shard interval snapshots into one, restoring
// the deterministic global ordering rating.Ledger guarantees. Nil or empty
// entries — the partial-drain path, where a shard's snapshot never arrived —
// contribute nothing.
func mergeSnapshots(snaps []rating.Snapshot) rating.Snapshot {
	out := rating.Snapshot{Counts: make(map[rating.PairKey]rating.PairCounts)}
	for _, s := range snaps {
		if len(s.Ratings) == 0 && len(s.Counts) == 0 {
			continue
		}
		out.Ratings = append(out.Ratings, s.Ratings...)
		for k, c := range s.Counts {
			agg := out.Counts[k]
			agg.Positive += c.Positive
			agg.Negative += c.Negative
			out.Counts[k] = agg
		}
	}
	sort.SliceStable(out.Ratings, func(a, b int) bool {
		x, y := out.Ratings[a], out.Ratings[b]
		switch {
		case x.Ratee != y.Ratee:
			return x.Ratee < y.Ratee
		case x.Rater != y.Rater:
			return x.Rater < y.Rater
		case x.Cycle != y.Cycle:
			return x.Cycle < y.Cycle
		case x.Category != y.Category:
			return x.Category < y.Category
		default:
			return x.Value < y.Value
		}
	})
	return out
}

// Close shuts all manager goroutines down. Close is idempotent and safe to
// race against in-flight calls: Submit returns ErrClosed, queries return 0,
// and EndInterval returns a zero vector once the overlay is closed. Ratings
// still queued in manager inboxes at close time are dropped.
func (o *Overlay) Close() {
	o.once.Do(func() {
		o.mu.Lock()
		defer o.mu.Unlock()
		close(o.closed)
		o.wg.Wait()
		o.closeWALs()
		if o.transport != nil {
			_ = o.transport.Close()
		}
	})
}
