package manager

import (
	"sync"
	"testing"

	"socialtrust/internal/rating"
	"socialtrust/internal/reputation/ebay"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 1, ebay.New(4)); err == nil {
		t.Error("zero nodes should error")
	}
	if _, err := New(4, 0, ebay.New(4)); err == nil {
		t.Error("zero managers should error")
	}
	if _, err := New(4, 9, ebay.New(4)); err == nil {
		t.Error("more managers than nodes should error")
	}
	if _, err := New(4, 2, nil); err == nil {
		t.Error("nil engine should error")
	}
}

func TestRoutingAndShardCount(t *testing.T) {
	o, err := New(10, 3, ebay.New(10))
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	if o.NumManagers() != 3 {
		t.Fatalf("NumManagers = %d", o.NumManagers())
	}
	for node := 0; node < 10; node++ {
		if got := o.ManagerOf(node); got != node%3 {
			t.Fatalf("ManagerOf(%d) = %d", node, got)
		}
	}
}

func TestSubmitQueryUpdateRoundTrip(t *testing.T) {
	o, err := New(6, 2, ebay.New(6))
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	if err := o.Submit(rating.Rating{Rater: 0, Ratee: 1, Value: 1}); err != nil {
		t.Fatal(err)
	}
	if got := o.Reputation(1); got != 0 {
		t.Fatalf("reputation before interval end = %v, want 0", got)
	}
	reps := o.EndInterval()
	if reps[1] != 1 {
		t.Fatalf("reputation after update = %v, want 1", reps[1])
	}
	// Queries now served from each manager's broadcast copy.
	if got := o.Reputation(1); got != 1 {
		t.Fatalf("queried reputation = %v, want 1", got)
	}
	if got := o.Reputation(0); got != 0 {
		t.Fatalf("queried reputation of unrated node = %v", got)
	}
}

func TestSubmitErrors(t *testing.T) {
	o, err := New(4, 2, ebay.New(4))
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	if err := o.Submit(rating.Rating{Rater: 0, Ratee: 9, Value: 1}); err == nil {
		t.Error("out-of-range ratee should error")
	}
	if err := o.Submit(rating.Rating{Rater: 2, Ratee: 2, Value: 1}); err == nil {
		t.Error("self-rating should propagate the ledger error")
	}
	if got := o.Reputation(-1); got != 0 {
		t.Error("out-of-range query should return 0")
	}
}

func TestMatchesCentralizedLedger(t *testing.T) {
	// The distributed overlay must produce exactly the reputations a
	// single centralized ledger + engine would.
	const n = 16
	events := []rating.Rating{}
	for i := 0; i < n; i++ {
		for d := 1; d <= 3; d++ {
			events = append(events, rating.Rating{Rater: i, Ratee: (i + d) % n, Value: float64(d%2)*2 - 1})
		}
	}

	central := ebay.New(n)
	ledger := rating.NewLedger(n)
	for _, r := range events {
		if err := ledger.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	central.Update(ledger.EndInterval())

	o, err := New(n, 5, ebay.New(n))
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	for _, r := range events {
		if err := o.Submit(r); err != nil {
			t.Fatal(err)
		}
	}
	got := o.EndInterval()
	want := central.Reputations()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("node %d: overlay %v vs centralized %v", i, got[i], want[i])
		}
	}
}

func TestConcurrentSubmitsAndQueries(t *testing.T) {
	const n = 32
	o, err := New(n, 4, ebay.New(n))
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; k < 200; k++ {
				ratee := (w + k%31 + 1) % n
				if ratee == w {
					ratee = (ratee + 1) % n
				}
				if err := o.Submit(rating.Rating{Rater: w, Ratee: ratee, Value: 1}); err != nil {
					t.Error(err)
					return
				}
				_ = o.Reputation(ratee)
			}
		}(w)
	}
	wg.Wait()
	reps := o.EndInterval()
	sum := 0.0
	for _, v := range reps {
		sum += v
	}
	if sum < 0.99 || sum > 1.01 {
		t.Fatalf("reputations sum to %v", sum)
	}
}

func TestMultipleIntervals(t *testing.T) {
	o, err := New(4, 2, ebay.New(4))
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	for k := 0; k < 3; k++ {
		if err := o.Submit(rating.Rating{Rater: 0, Ratee: 1, Value: 1}); err != nil {
			t.Fatal(err)
		}
		o.EndInterval()
	}
	if got := o.Reputation(1); got != 1 {
		t.Fatalf("after 3 intervals reputation = %v, want 1 (only rated node)", got)
	}
}

func TestCloseIdempotent(t *testing.T) {
	o, err := New(4, 2, ebay.New(4))
	if err != nil {
		t.Fatal(err)
	}
	o.Close()
	o.Close() // must not panic
}

func TestMergeSnapshots(t *testing.T) {
	a := rating.Snapshot{
		Ratings: []rating.Rating{{Rater: 1, Ratee: 0, Value: 1}},
		Counts:  map[rating.PairKey]rating.PairCounts{{Rater: 1, Ratee: 0}: {Positive: 1}},
	}
	b := rating.Snapshot{
		Ratings: []rating.Rating{{Rater: 0, Ratee: 1, Value: -1}, {Rater: 1, Ratee: 0, Value: 1}},
		Counts: map[rating.PairKey]rating.PairCounts{
			{Rater: 0, Ratee: 1}: {Negative: 1},
			{Rater: 1, Ratee: 0}: {Positive: 1},
		},
	}
	m := mergeSnapshots([]rating.Snapshot{a, b})
	if len(m.Ratings) != 3 {
		t.Fatalf("merged %d ratings", len(m.Ratings))
	}
	for i := 1; i < len(m.Ratings); i++ {
		if m.Ratings[i].Ratee < m.Ratings[i-1].Ratee {
			t.Fatal("merged ratings not sorted")
		}
	}
	if c := m.Counts[rating.PairKey{Rater: 1, Ratee: 0}]; c.Positive != 2 {
		t.Fatalf("merged counts = %+v", c)
	}
}

func TestOperationsAfterClose(t *testing.T) {
	o, err := New(4, 2, ebay.New(4))
	if err != nil {
		t.Fatal(err)
	}
	o.Close()
	if err := o.Submit(rating.Rating{Rater: 0, Ratee: 1, Value: 1}); err != ErrClosed {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}
	if got := o.Reputation(1); got != 0 {
		t.Fatalf("Reputation after Close = %v, want 0", got)
	}
	reps := o.EndInterval()
	for _, v := range reps {
		if v != 0 {
			t.Fatalf("EndInterval after Close = %v, want zeros", reps)
		}
	}
}
