package manager

import (
	"errors"
	"testing"
	"time"

	"socialtrust/internal/fault"
	"socialtrust/internal/rating"
	"socialtrust/internal/reputation/ebay"
)

// alwaysOnPlan builds a plan that injects nothing but keeps the overlay's
// fault-tolerant machinery (replication, retry, deadlines) active.
func alwaysOnPlan(t testing.TB, cfg fault.Config, shards int) *fault.Plan {
	t.Helper()
	cfg.AlwaysOn = true
	p, err := fault.NewPlan(cfg, shards)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestSubmitShardDownNoHang is the regression test for the seed deadlock:
// a dead shard goroutine must yield a prompt typed error, not block the
// caller forever.
func TestSubmitShardDownNoHang(t *testing.T) {
	o, err := New(8, 4, ebay.New(8))
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	o.crashShard(1)
	done := make(chan error, 1)
	go func() {
		done <- o.Submit(rating.Rating{Rater: 0, Ratee: 1, Value: 1}) // ratee 1 → shard 1
	}()
	select {
	case err := <-done:
		if !errors.Is(err, ErrShardDown) {
			t.Fatalf("Submit to dead shard = %v, want ErrShardDown", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Submit to dead shard hung")
	}
	if _, err := o.Query(1); !errors.Is(err, ErrShardDown) {
		t.Fatalf("Query on dead shard = %v, want ErrShardDown", err)
	}
	if got := o.Reputation(1); got != 0 {
		t.Fatalf("Reputation on dead shard = %v, want 0", got)
	}
	// Other shards keep working.
	if err := o.Submit(rating.Rating{Rater: 0, Ratee: 2, Value: 1}); err != nil {
		t.Fatalf("Submit to live shard after a crash: %v", err)
	}
}

func TestQueryAfterClose(t *testing.T) {
	o, err := New(4, 2, ebay.New(4))
	if err != nil {
		t.Fatal(err)
	}
	o.Close()
	if _, err := o.Query(1); !errors.Is(err, ErrClosed) {
		t.Fatalf("Query after Close = %v, want ErrClosed", err)
	}
	if err := o.Submit(rating.Rating{Rater: 0, Ratee: 1, Value: 1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}
}

// TestMergeSnapshotsPartial covers the partial-drain inputs: zero
// snapshots, a single snapshot, and all-empty snapshots.
func TestMergeSnapshotsPartial(t *testing.T) {
	if m := mergeSnapshots(nil); len(m.Ratings) != 0 || len(m.Counts) != 0 {
		t.Fatalf("merge of zero snapshots = %+v, want empty", m)
	}
	one := rating.Snapshot{
		Ratings: []rating.Rating{{Rater: 1, Ratee: 0, Value: 1}},
		Counts:  map[rating.PairKey]rating.PairCounts{{Rater: 1, Ratee: 0}: {Positive: 1}},
	}
	m := mergeSnapshots([]rating.Snapshot{one})
	if len(m.Ratings) != 1 || m.Counts[rating.PairKey{Rater: 1, Ratee: 0}].Positive != 1 {
		t.Fatalf("merge of one snapshot = %+v", m)
	}
	m = mergeSnapshots([]rating.Snapshot{{}, {Counts: map[rating.PairKey]rating.PairCounts{}}, {}})
	if len(m.Ratings) != 0 || len(m.Counts) != 0 {
		t.Fatalf("merge of all-missing snapshots = %+v, want empty", m)
	}
	m = mergeSnapshots([]rating.Snapshot{{}, one, {}})
	if len(m.Ratings) != 1 {
		t.Fatalf("merge with missing entries lost data: %+v", m)
	}
}

// TestReplicaMatchesPrimary is the replica-consistency proof at the manager
// level: an overlay that loses shards' primary interval ledgers to crashes
// must reconstruct the interval bit-identically from replica mirrors.
func TestReplicaMatchesPrimary(t *testing.T) {
	const n, k = 16, 4
	events := []rating.Rating{}
	for i := 0; i < n; i++ {
		for d := 1; d <= 3; d++ {
			events = append(events, rating.Rating{Rater: i, Ratee: (i + d) % n, Value: float64(d%2)*2 - 1})
		}
	}
	run := func(cfg fault.Config) []float64 {
		o, err := NewWithOptions(n, k, ebay.New(n), Options{Fault: alwaysOnPlan(t, cfg, k)})
		if err != nil {
			t.Fatal(err)
		}
		defer o.Close()
		for _, r := range events {
			if err := o.Submit(r); err != nil {
				t.Fatal(err)
			}
		}
		reps, _ := o.EndIntervalStatus()
		return reps
	}
	clean := run(fault.Config{})
	// Crash shards 0 and 2 at interval 1: their interval ledgers die before
	// the drain, so the update runs entirely on the mirrors held by 1 and 3.
	crashed := run(fault.Config{Crashes: []fault.Crash{
		{Shard: 0, AtInterval: 1}, {Shard: 2, AtInterval: 1},
	}})
	// And against the seed (non-replicated) overlay.
	seed, err := New(n, k, ebay.New(n))
	if err != nil {
		t.Fatal(err)
	}
	defer seed.Close()
	for _, r := range events {
		if err := seed.Submit(r); err != nil {
			t.Fatal(err)
		}
	}
	want := seed.EndInterval()
	for i := range want {
		if clean[i] != want[i] {
			t.Fatalf("node %d: replicated overlay %v vs seed %v", i, clean[i], want[i])
		}
		if crashed[i] != want[i] {
			t.Fatalf("node %d: replica-recovered %v vs seed %v (mirror not bit-identical)", i, crashed[i], want[i])
		}
	}
}

// TestSubmitFailoverToReplica: with the primary down mid-interval, Submit
// must succeed via the replica mirror and the drain must recover the data.
func TestSubmitFailoverToReplica(t *testing.T) {
	const n, k = 8, 4
	o, err := NewWithOptions(n, k, ebay.New(n), Options{
		Fault:        alwaysOnPlan(t, fault.Config{}, k),
		RetryBackoff: 50 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	o.crashShard(1) // primary for ratee 1; replica mirror lives on shard 2
	if err := o.Submit(rating.Rating{Rater: 0, Ratee: 1, Value: 1}); err != nil {
		t.Fatalf("Submit with dead primary = %v, want failover success", err)
	}
	reps, st := o.EndIntervalStatus()
	if len(st.ReplicaUsed) != 1 || st.ReplicaUsed[0] != 1 {
		t.Fatalf("ReplicaUsed = %v, want [1]", st.ReplicaUsed)
	}
	if st.Partial {
		t.Fatal("drain with a live replica should not be partial")
	}
	if reps[1] != 1 {
		t.Fatalf("reputation recovered via replica = %v, want 1", reps[1])
	}
}

// TestQueryFailoverToReplica: a query for a node whose primary shard is down
// is served from the replica shard's broadcast copy.
func TestQueryFailoverToReplica(t *testing.T) {
	const n, k = 8, 4
	o, err := NewWithOptions(n, k, ebay.New(n), Options{Fault: alwaysOnPlan(t, fault.Config{}, k)})
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	if err := o.Submit(rating.Rating{Rater: 0, Ratee: 1, Value: 1}); err != nil {
		t.Fatal(err)
	}
	o.EndInterval()
	o.crashShard(1)
	got, err := o.Query(1)
	if err != nil || got != 1 {
		t.Fatalf("Query with dead primary = (%v, %v), want (1, nil)", got, err)
	}
}

// TestDropReturnsTimeout: with every delivery dropped, both the primary and
// replica attempts lose their messages and Submit surfaces ErrTimeout.
func TestDropReturnsTimeout(t *testing.T) {
	o, err := NewWithOptions(8, 4, ebay.New(8), Options{
		Fault:        alwaysOnPlan(t, fault.Config{Drop: 1}, 4),
		RetryBackoff: 10 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	if err := o.Submit(rating.Rating{Rater: 0, Ratee: 1, Value: 1}); !errors.Is(err, ErrTimeout) {
		t.Fatalf("Submit under 100%% drop = %v, want ErrTimeout", err)
	}
	// The interval still completes: no data arrived, reputations fall back
	// to the engine's last-known (initial) vector.
	reps, st := o.EndIntervalStatus()
	if st.Partial {
		t.Fatalf("all shards alive, drain should not be partial: %+v", st)
	}
	if reps[1] != 0 {
		t.Fatalf("dropped rating leaked into reputations: %v", reps[1])
	}
}

// TestDelayAppliedAtDrain: delayed messages are acknowledged on receipt and
// land in the ledger at the interval drain — slow but within the interval.
func TestDelayAppliedAtDrain(t *testing.T) {
	o, err := NewWithOptions(8, 4, ebay.New(8), Options{
		Fault: alwaysOnPlan(t, fault.Config{Delay: 1}, 4),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	if err := o.Submit(rating.Rating{Rater: 0, Ratee: 1, Value: 1}); err != nil {
		t.Fatalf("delayed Submit = %v, want ack", err)
	}
	reps := o.EndInterval()
	if reps[1] != 1 {
		t.Fatalf("delayed rating missing from interval: rep = %v, want 1", reps[1])
	}
}

// TestDuplicateDelivery: duplicated messages must not error or deadlock;
// the double-count is the injected fault the filter layer must tolerate.
func TestDuplicateDelivery(t *testing.T) {
	o, err := NewWithOptions(8, 4, ebay.New(8), Options{
		Fault: alwaysOnPlan(t, fault.Config{Duplicate: 1}, 4),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	if err := o.Submit(rating.Rating{Rater: 0, Ratee: 1, Value: 1}); err != nil {
		t.Fatalf("duplicated Submit = %v", err)
	}
	if reps := o.EndInterval(); reps[1] <= 0 {
		t.Fatalf("duplicated rating lost: rep = %v", reps[1])
	}
}

// TestPartialDrainNoReplicaAlive: when a shard and its replica holder are
// both down, the interval's data for that shard is lost; EndInterval must
// degrade to the surviving quorum without deadlocking, and the shards must
// come back at the scheduled interval.
func TestPartialDrainNoReplicaAlive(t *testing.T) {
	const n, k = 8, 2 // replicaOf(0)=1 and replicaOf(1)=0: crashing both loses everything
	o, err := NewWithOptions(n, k, ebay.New(n), Options{
		Fault: alwaysOnPlan(t, fault.Config{Crashes: []fault.Crash{
			{Shard: 0, AtInterval: 1, Down: 1},
			{Shard: 1, AtInterval: 1, Down: 1},
		}}, k),
		RetryBackoff: 10 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	if err := o.Submit(rating.Rating{Rater: 0, Ratee: 1, Value: 1}); err != nil {
		t.Fatal(err)
	}
	done := make(chan DrainStatus, 1)
	go func() {
		_, st := o.EndIntervalStatus()
		done <- st
	}()
	var st DrainStatus
	select {
	case st = <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("EndInterval deadlocked with all shards down")
	}
	if !st.Partial || len(st.Missing) != 2 {
		t.Fatalf("status = %+v, want partial with both shards missing", st)
	}
	if len(st.Crashed) != 2 {
		t.Fatalf("Crashed = %v, want both shards", st.Crashed)
	}
	// Next interval restarts both; the overlay is serviceable again.
	_, st = o.EndIntervalStatus()
	if len(st.Restarted) != 2 {
		t.Fatalf("Restarted = %v, want both shards", st.Restarted)
	}
	if err := o.Submit(rating.Rating{Rater: 0, Ratee: 1, Value: 1}); err != nil {
		t.Fatalf("Submit after restart = %v", err)
	}
	if reps := o.EndInterval(); reps[1] != 1 {
		t.Fatalf("post-restart interval rep = %v, want 1", reps[1])
	}
}

// TestStalledShardTimesOut exercises the real context deadline (not the
// synthetic drop path): a shard wedged mid-request must surface ErrTimeout
// within the configured deadline.
func TestStalledShardTimesOut(t *testing.T) {
	const n, k = 4, 2
	o, err := NewWithOptions(n, k, ebay.New(n), Options{
		Fault:         alwaysOnPlan(t, fault.Config{}, k),
		SubmitTimeout: 5 * time.Millisecond,
		RetryAttempts: 2,
		RetryBackoff:  50 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	// Wedge both shards: an unbuffered, never-read drain reply channel
	// blocks each serve loop inside its current message forever.
	for i := 0; i < k; i++ {
		o.shards[i].cur.Load().inbox <- message{kind: msgDrain, drainC: make(chan drainReply)}
	}
	start := time.Now()
	err = o.Submit(rating.Rating{Rater: 0, Ratee: 1, Value: 1})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("Submit to wedged shards = %v, want ErrTimeout", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("timeout took %v, deadlines not enforced", elapsed)
	}
}
