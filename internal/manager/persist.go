// Manager-side durability: each shard's primary ledger is journaled to a
// per-shard write-ahead log under Options.StateDir, and the overlay exposes
// the recovery surface the simulator's crash-restart path drives — drained
// sequence high-water marks for snapshots, WAL replay on shard restart, and
// whole-process Resume.
//
// Only primary ledgers are journaled. The replica mirror is an in-memory
// availability mechanism (it survives a *shard* crash); the WAL is the
// durability mechanism (it survives a *process* crash). Journaling both would
// double every record without widening either guarantee: after a process
// crash every replica mirror is rebuilt empty and the re-executed interval
// repopulates it deterministically.
//
// The dedupe key is the rating's ingest sequence number (rating.Rating.Seq,
// assigned by the producer before submission). A drain's snapshot carries the
// max Seq it drained; the overlay keeps, per shard, the highest such mark
// ever applied on that shard's behalf (primary drain or replica
// substitution). WAL records at or below the mark are covered by completed
// drains; records above it are the shard's recoverable tail.
package manager

import (
	"fmt"
	"os"
	"path/filepath"

	"socialtrust/internal/persist"
	"socialtrust/internal/rating"
)

// walJournal adapts a persist.WAL to the ledger's write-ahead hook.
type walJournal struct{ w *persist.WAL }

func (j walJournal) Append(rs []rating.Rating) error {
	recs := make([]persist.Record, len(rs))
	for i, r := range rs {
		recs[i] = persist.Record{
			Kind:     persist.KindRating,
			Seq:      r.Seq,
			Rater:    int32(r.Rater),
			Ratee:    int32(r.Ratee),
			Cycle:    int32(r.Cycle),
			Category: int32(r.Category),
			Value:    r.Value,
		}
	}
	return j.w.Append(recs)
}

// openWALs opens one WAL per local shard under StateDir, scanning (and
// truncating) any torn tail a crash left behind. Called once from
// NewWithOptions before the shard goroutines start. Shards routed through a
// transport are skipped — their worker process owns the WAL file — but their
// drained high-water marks are still tracked (they are the replay floors
// Restart ships over the wire), so drainedSeq is allocated whenever either a
// state directory or a transport is configured.
func (o *Overlay) openWALs(numManagers int) error {
	if o.transport != nil {
		o.drainedSeq = make([]uint64, numManagers)
		o.replicaSeq = make([]uint64, numManagers)
	}
	if o.opts.StateDir == "" {
		return nil
	}
	if err := os.MkdirAll(o.opts.StateDir, 0o755); err != nil {
		return err
	}
	o.wals = make([]*persist.WAL, numManagers)
	if o.drainedSeq == nil {
		o.drainedSeq = make([]uint64, numManagers)
	}
	for i := range o.wals {
		if o.transport != nil && o.transport.Shard(i) != nil {
			continue // remote shard: the worker owns shard-<i>.wal
		}
		path := filepath.Join(o.opts.StateDir, fmt.Sprintf("shard-%d.wal", i))
		w, _, err := persist.Open(path, o.opts.Persist)
		if err != nil {
			o.closeWALs()
			return err
		}
		o.wals[i] = w
	}
	return nil
}

// persistent reports whether the durability layer is active: drained marks
// are tracked either for local WALs (StateDir) or on behalf of remote shards
// that journal worker-side (Transport).
func (o *Overlay) persistent() bool { return o.drainedSeq != nil }

// noteDrained raises shard i's drained high-water mark. Callers hold o.mu.
func (o *Overlay) noteDrained(i int, maxSeq uint64) {
	if o.persistent() && maxSeq > o.drainedSeq[i] {
		o.drainedSeq[i] = maxSeq
	}
}

// noteReplicaDrained raises shard i's replica-drain high-water mark — the
// replay floor for the fated records backing the replica mirror and deferred
// queues shard i hosts. Callers hold o.mu.
func (o *Overlay) noteReplicaDrained(i int, maxSeq uint64) {
	if o.replicaSeq != nil && maxSeq > o.replicaSeq[i] {
		o.replicaSeq[i] = maxSeq
	}
}

// replayShardWAL replays shard i's recoverable WAL tail — rating records with
// Seq above the drained mark and aboveOnly — into the ledger, bypassing the
// journal (the records are already durable). When markRecovered is set, every
// replayed Seq strictly above aboveOnly is registered with the ledger as
// recovered, with multiplicity, so the re-executed interval's duplicate
// submissions are acknowledged without double-counting. Corrupt tails are not
// fatal: the valid prefix is replayed and the torn remainder ignored (the
// re-executed interval regenerates whatever was lost). Callers hold o.mu and
// guarantee no concurrent traffic to the ledger.
func (o *Overlay) replayShardWAL(i int, ledger *rating.Ledger, aboveOnly uint64, markRecovered bool) {
	w := o.wals[i]
	recs, _ := w.ReadBack()
	floor := o.drainedSeq[i]
	if aboveOnly > floor {
		floor = aboveOnly
	}
	var recovered map[uint64]int
	for _, rec := range recs {
		if rec.Kind != persist.KindRating || rec.Seq <= floor {
			continue
		}
		r := rating.Rating{
			Rater:    int(rec.Rater),
			Ratee:    int(rec.Ratee),
			Value:    rec.Value,
			Cycle:    int(rec.Cycle),
			Category: int(rec.Category),
			Seq:      rec.Seq,
		}
		if err := ledger.Add(r); err != nil {
			continue // validated at original ingest; defensive only
		}
		if markRecovered {
			if recovered == nil {
				recovered = make(map[uint64]int)
			}
			recovered[rec.Seq]++
		}
	}
	if len(recovered) > 0 {
		ledger.MarkRecovered(recovered)
	}
}

// DrainedSeqs returns the per-shard drained sequence high-water marks — the
// values an interval-boundary snapshot must record so a restarted process can
// tell which WAL records completed drains already cover. Nil without a state
// directory.
func (o *Overlay) DrainedSeqs() []uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	if !o.persistent() {
		return nil
	}
	return append([]uint64(nil), o.drainedSeq...)
}

// ResetWALs discards all shard WAL contents. The simulator calls it when a
// state directory holds no snapshot (a fresh run over a possibly stale
// directory): with no snapshot to anchor them, leftover records are
// meaningless.
func (o *Overlay) ResetWALs() error {
	o.mu.Lock()
	defer o.mu.Unlock()
	for i := range o.wals {
		if o.wals[i] == nil {
			continue
		}
		if err := o.wals[i].Rotate(); err != nil {
			return err
		}
	}
	for _, s := range o.shards {
		if s.remote != nil {
			if err := s.remote.ResetWAL(); err != nil {
				return err
			}
		}
	}
	for i := range o.drainedSeq {
		o.drainedSeq[i] = 0
	}
	return nil
}

// CompactWALs rotates every shard WAL whose records are all covered by
// completed drains — i.e. by the snapshot the caller just wrote. A WAL still
// holding records above its shard's drained mark (a crashed shard's
// recoverable tail, awaiting its restart replay) is kept. Call at a quiescent
// point, after a successful snapshot write; crash between snapshot and
// compaction is safe because replay filters by sequence number.
func (o *Overlay) CompactWALs() error {
	o.mu.Lock()
	defer o.mu.Unlock()
	for i := range o.wals {
		if o.wals[i] == nil {
			continue
		}
		if o.wals[i].MaxSeq() > o.drainedSeq[i] {
			continue
		}
		if err := o.wals[i].Rotate(); err != nil {
			return err
		}
	}
	for _, s := range o.shards {
		if s.remote != nil {
			// The worker compares the covered mark against its own WAL's max
			// sequence, so the still-recoverable-tail check needs no extra
			// round trip.
			if err := s.remote.CompactWAL(o.drainedSeq[s.id]); err != nil {
				return err
			}
		}
	}
	return nil
}

// Resume restores the overlay from an interval-boundary snapshot taken by a
// previous process: per-shard drained marks, the reputation vector to serve,
// and lastSeq — the global ingest sequence high-water at the snapshot
// boundary. It must run on a freshly constructed overlay, before any traffic,
// with the fault plan's state (if any) already imported.
//
// Shards the restored fault plan holds down are crashed; their WAL tails
// replay later, at their scheduled restart — exactly when the uninterrupted
// run would have replayed them. Live shards replay only records above
// lastSeq: the acknowledged tail of the interrupted interval. Those replayed
// sequences are registered as recovered so the deterministically re-executed
// interval's duplicate submissions are acknowledged without double-counting —
// the crash-restart dedupe of the WAL replay / replica mirror overlap.
func (o *Overlay) Resume(drainedSeqs []uint64, lastSeq uint64, reps []float64) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.transport != nil {
		// Whole-process snapshot resume is a coordinator-side feature; remote
		// shards recover through their own WALs (Restart replay), not
		// through Resume. The simulator rejects state-dir + cluster up front.
		return fmt.Errorf("manager: Resume is not supported with a transport")
	}
	if len(o.wals) == 0 {
		return fmt.Errorf("manager: Resume requires a state directory")
	}
	if len(drainedSeqs) != len(o.shards) {
		return fmt.Errorf("manager: resume state for %d shards, overlay has %d", len(drainedSeqs), len(o.shards))
	}
	if len(reps) != o.numNodes {
		return fmt.Errorf("manager: resume vector for %d nodes, overlay has %d", len(reps), o.numNodes)
	}
	copy(o.drainedSeq, drainedSeqs)
	o.lastReps = append(o.lastReps[:0], reps...)
	for i, s := range o.shards {
		if o.plan != nil && o.plan.Down(i) {
			o.crashShardLocked(i)
			continue
		}
		st := s.cur.Load()
		st.ledger.SetJournal(nil)
		o.replayShardWAL(i, st.ledger, lastSeq, true)
		st.ledger.SetJournal(walJournal{o.wals[i]})
		st.reps = append(st.reps[:0], reps...)
	}
	return nil
}

// closeWALs flushes and closes every shard WAL. Callers hold o.mu.
func (o *Overlay) closeWALs() {
	for i := range o.wals {
		if o.wals[i] != nil {
			_ = o.wals[i].Close()
		}
	}
	o.wals = nil
}
