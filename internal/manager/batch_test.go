package manager

import (
	"errors"
	"reflect"
	"testing"

	"socialtrust/internal/fault"
	"socialtrust/internal/rating"
	"socialtrust/internal/reputation/ebay"
	"socialtrust/internal/xrand"
)

// batchTrace builds a reproducible mixed batch of ratings over n nodes.
func batchTrace(seed uint64, n, count int) []rating.Rating {
	rng := xrand.New(seed)
	rs := make([]rating.Rating, 0, count)
	for i := 0; i < count; i++ {
		rater := rng.Intn(n)
		ratee := rng.Intn(n)
		if ratee == rater {
			ratee = (ratee + 1) % n
		}
		v := 1.0
		if rng.Float64() < 0.25 {
			v = -1
		}
		rs = append(rs, rating.Rating{Rater: rater, Ratee: ratee, Value: v, Cycle: i / 50})
	}
	return rs
}

// TestSubmitBatchMatchesPerRatingSubmit pins the batched path's semantics:
// the same trace ingested via SubmitBatch and via one Submit per rating must
// produce identical merged interval snapshots and identical reputations.
func TestSubmitBatchMatchesPerRatingSubmit(t *testing.T) {
	const n, k = 120, 8
	trace := batchTrace(3, n, 2000)

	single, err := New(n, k, ebay.New(n))
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	for _, r := range trace {
		if err := single.Submit(r); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	wantReps := single.EndInterval()

	batched, err := New(n, k, ebay.New(n))
	if err != nil {
		t.Fatal(err)
	}
	defer batched.Close()
	// Uneven chunk sizes exercise partial shard coverage per call.
	for lo := 0; lo < len(trace); lo += 317 {
		hi := lo + 317
		if hi > len(trace) {
			hi = len(trace)
		}
		if errs := batched.SubmitBatch(trace[lo:hi]); errs != nil {
			t.Fatalf("SubmitBatch: %v", errs)
		}
	}
	gotReps := batched.EndInterval()

	if !reflect.DeepEqual(gotReps, wantReps) {
		t.Fatalf("batched reputations diverge from per-rating submit")
	}
}

// TestSubmitBatchReplicatedMatchesPerRating runs the same equivalence under
// an armed (but quiet) fault plan: replica mirroring, retry machinery and
// per-rating verdict draws active on both paths.
func TestSubmitBatchReplicatedMatchesPerRating(t *testing.T) {
	const n, k = 120, 8
	trace := batchTrace(7, n, 1500)

	run := func(batch bool) []float64 {
		o, err := NewWithOptions(n, k, ebay.New(n), Options{Fault: alwaysOnPlan(t, fault.Config{}, k)})
		if err != nil {
			t.Fatal(err)
		}
		defer o.Close()
		if batch {
			if errs := o.SubmitBatch(trace); errs != nil {
				t.Fatalf("SubmitBatch: %v", errs)
			}
		} else {
			for _, r := range trace {
				if err := o.Submit(r); err != nil {
					t.Fatalf("Submit: %v", err)
				}
			}
		}
		return o.EndInterval()
	}

	if got, want := run(true), run(false); !reflect.DeepEqual(got, want) {
		t.Fatalf("replicated batched reputations diverge from per-rating submit")
	}
}

// TestSubmitBatchPerRatingValidation checks the error slice is
// index-aligned: invalid entries fail individually while the rest of the
// batch lands.
func TestSubmitBatchPerRatingValidation(t *testing.T) {
	const n, k = 40, 4
	o, err := New(n, k, ebay.New(n))
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	errs := o.SubmitBatch([]rating.Rating{
		{Rater: 0, Ratee: 1, Value: 1},
		{Rater: 0, Ratee: n + 5, Value: 1}, // out of range
		{Rater: 2, Ratee: 3, Value: 1},
	})
	if errs == nil {
		t.Fatal("want a non-nil error slice for a batch with an invalid entry")
	}
	if errs[0] != nil || errs[2] != nil {
		t.Fatalf("valid entries failed: %v / %v", errs[0], errs[2])
	}
	if errs[1] == nil {
		t.Fatal("out-of-range ratee accepted")
	}
	reps := o.EndInterval()
	if len(reps) != n {
		t.Fatalf("got %d reputations, want %d", len(reps), n)
	}
}

// TestSubmitBatchFTValidation covers the fault-mode validation set (rater
// range and self-ratings are rejected client-side, as in submitFT).
func TestSubmitBatchFTValidation(t *testing.T) {
	const n, k = 40, 4
	o, err := NewWithOptions(n, k, ebay.New(n), Options{Fault: alwaysOnPlan(t, fault.Config{}, k)})
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	errs := o.SubmitBatch([]rating.Rating{
		{Rater: 0, Ratee: 1, Value: 1},
		{Rater: 5, Ratee: 5, Value: 1},  // self-rating
		{Rater: -1, Ratee: 2, Value: 1}, // bad rater
	})
	if errs == nil || errs[0] != nil || errs[1] == nil || errs[2] == nil {
		t.Fatalf("unexpected validation outcome: %v", errs)
	}
}

// TestSubmitBatchAllDropped verifies a total message loss surfaces as
// per-rating timeouts after the retry budget, matching the unbatched path.
func TestSubmitBatchAllDropped(t *testing.T) {
	const n, k = 40, 4
	o, err := NewWithOptions(n, k, ebay.New(n), Options{
		Fault:        alwaysOnPlan(t, fault.Config{Drop: 1}, k),
		RetryBackoff: 1, // microscopic: keep the test fast
	})
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	errs := o.SubmitBatch(batchTrace(1, n, 20))
	if errs == nil {
		t.Fatal("want timeouts when every delivery is dropped")
	}
	for i, e := range errs {
		if !errors.Is(e, ErrTimeout) {
			t.Fatalf("errs[%d] = %v, want ErrTimeout", i, e)
		}
	}
}

// TestSubmitBatchDeferredLandsAtDrain checks delay-injected batch entries
// are acknowledged on receipt and folded in by the interval drain.
func TestSubmitBatchDeferredLandsAtDrain(t *testing.T) {
	const n, k = 40, 4
	o, err := NewWithOptions(n, k, ebay.New(n), Options{
		Fault: alwaysOnPlan(t, fault.Config{Delay: 1}, k),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	if errs := o.SubmitBatch([]rating.Rating{{Rater: 0, Ratee: 1, Value: 1}}); errs != nil {
		t.Fatalf("SubmitBatch: %v", errs)
	}
	reps := o.EndInterval()
	if reps[1] <= reps[2] {
		t.Fatalf("deferred rating never reached the ledger: rep[1]=%v rep[2]=%v", reps[1], reps[2])
	}
}
