package manager

import "testing"

func BenchmarkPushSum16x200(b *testing.B) {
	parts := make([][]float64, 16)
	for i := range parts {
		parts[i] = make([]float64, 200)
		for d := range parts[i] {
			parts[i][d] = float64(i + d)
		}
	}
	rounds := GossipRounds(16, 1e-6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PushSum(parts, rounds, 1); err != nil {
			b.Fatal(err)
		}
	}
}
