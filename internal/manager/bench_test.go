package manager

import (
	"testing"

	"socialtrust/internal/fault"
	"socialtrust/internal/rating"
	"socialtrust/internal/reputation/ebay"
)

// BenchmarkOverlaySubmit measures the overlay's rating-submission round trip
// (client → shard mailbox → ledger → ack) — the hot path of the
// scripts/bench.sh snapshot.
func BenchmarkOverlaySubmit(b *testing.B) {
	o, err := New(256, 8, ebay.New(256))
	if err != nil {
		b.Fatal(err)
	}
	defer o.Close()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			r := rating.Rating{Rater: i % 256, Ratee: (i + 1) % 256, Value: 1, Cycle: i}
			if err := o.Submit(r); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}

// BenchmarkOverlayQuery measures the reputation-query round trip against a
// shard's broadcast copy.
func BenchmarkOverlayQuery(b *testing.B) {
	o, err := New(256, 8, ebay.New(256))
	if err != nil {
		b.Fatal(err)
	}
	defer o.Close()
	o.EndInterval()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			o.Reputation(i % 256)
			i++
		}
	})
}

// BenchmarkOverlaySubmitReplicated measures the fault-tolerant submission
// path with zero injected faults: primary delivery plus replica mirroring
// under deadlines. Compared against BenchmarkOverlaySubmit in
// scripts/bench.sh (BENCH_fault.json) to price the hardened path.
func BenchmarkOverlaySubmitReplicated(b *testing.B) {
	o, err := NewWithOptions(256, 8, ebay.New(256), Options{
		Fault: alwaysOnPlan(b, fault.Config{}, 8),
	})
	if err != nil {
		b.Fatal(err)
	}
	defer o.Close()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			r := rating.Rating{Rater: i % 256, Ratee: (i + 1) % 256, Value: 1, Cycle: i}
			if err := o.Submit(r); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}

func BenchmarkPushSum16x200(b *testing.B) {
	parts := make([][]float64, 16)
	for i := range parts {
		parts[i] = make([]float64, 200)
		for d := range parts[i] {
			parts[i][d] = float64(i + d)
		}
	}
	rounds := GossipRounds(16, 1e-6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PushSum(parts, rounds, 1); err != nil {
			b.Fatal(err)
		}
	}
}
