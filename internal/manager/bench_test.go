package manager

import (
	"testing"

	"socialtrust/internal/fault"
	"socialtrust/internal/rating"
	"socialtrust/internal/reputation/ebay"
)

// BenchmarkOverlaySubmit measures the overlay's rating-submission round trip
// (client → shard mailbox → ledger → ack) — the hot path of the
// scripts/bench.sh snapshot.
func BenchmarkOverlaySubmit(b *testing.B) {
	o, err := New(256, 8, ebay.New(256))
	if err != nil {
		b.Fatal(err)
	}
	defer o.Close()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			r := rating.Rating{Rater: i % 256, Ratee: (i + 1) % 256, Value: 1, Cycle: i}
			if err := o.Submit(r); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}

// BenchmarkOverlayQuery measures the reputation-query round trip against a
// shard's broadcast copy.
func BenchmarkOverlayQuery(b *testing.B) {
	o, err := New(256, 8, ebay.New(256))
	if err != nil {
		b.Fatal(err)
	}
	defer o.Close()
	o.EndInterval()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			o.Reputation(i % 256)
			i++
		}
	})
}

// BenchmarkOverlaySubmitReplicated measures the fault-tolerant submission
// path with zero injected faults: primary delivery plus replica mirroring
// under deadlines. Compared against BenchmarkOverlaySubmit in
// scripts/bench.sh (BENCH_fault.json) to price the hardened path.
func BenchmarkOverlaySubmitReplicated(b *testing.B) {
	o, err := NewWithOptions(256, 8, ebay.New(256), Options{
		Fault: alwaysOnPlan(b, fault.Config{}, 8),
	})
	if err != nil {
		b.Fatal(err)
	}
	defer o.Close()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			r := rating.Rating{Rater: i % 256, Ratee: (i + 1) % 256, Value: 1, Cycle: i}
			if err := o.Submit(r); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}

// benchTrace prebuilds one interval of spread-out ratings over n nodes so
// the submit benchmarks measure ingest, not trace generation.
func benchTrace(n, count int) []rating.Rating {
	rs := make([]rating.Rating, count)
	for i := range rs {
		rs[i] = rating.Rating{Rater: i % n, Ratee: (i*7 + 1) % n, Value: 1, Cycle: i / n}
	}
	for i := range rs {
		if rs[i].Rater == rs[i].Ratee {
			rs[i].Ratee = (rs[i].Ratee + 1) % n
		}
	}
	return rs
}

// BenchmarkOverlaySubmit10k is the per-rating ingest baseline at 10k nodes /
// 16 shards: one mailbox round trip per rating, over full intervals drained
// outside the timer so ledgers stay at steady-state size. Reported per
// rating for direct comparison with BenchmarkOverlaySubmitBatch.
func BenchmarkOverlaySubmit10k(b *testing.B) {
	const n = 10_000
	o, err := New(n, 16, ebay.New(n))
	if err != nil {
		b.Fatal(err)
	}
	defer o.Close()
	trace := benchTrace(n, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range trace {
			if err := o.Submit(r); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		o.EndInterval()
		b.StartTimer()
	}
	perRating := float64(b.Elapsed().Nanoseconds()) / float64(b.N) / float64(len(trace))
	b.ReportMetric(perRating, "ns/rating")
}

// BenchmarkOverlaySubmitBatch measures batched ingest at 10k nodes: one
// SubmitBatch call per interval over a 4096-rating trace — one mailbox round
// trip per shard instead of one per rating — with the drain outside the
// timer, matching BenchmarkOverlaySubmit10k. The scale acceptance pins the
// batched ns/rating at ≥ 3× faster than the per-rating baseline.
func BenchmarkOverlaySubmitBatch(b *testing.B) {
	const n = 10_000
	o, err := New(n, 16, ebay.New(n))
	if err != nil {
		b.Fatal(err)
	}
	defer o.Close()
	trace := benchTrace(n, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if errs := o.SubmitBatch(trace); errs != nil {
			b.Fatalf("SubmitBatch: %v", errs[0])
		}
		b.StopTimer()
		o.EndInterval()
		b.StartTimer()
	}
	perRating := float64(b.Elapsed().Nanoseconds()) / float64(b.N) / float64(len(trace))
	b.ReportMetric(perRating, "ns/rating")
}

func BenchmarkPushSum16x200(b *testing.B) {
	parts := make([][]float64, 16)
	for i := range parts {
		parts[i] = make([]float64, 200)
		for d := range parts[i] {
			parts[i][d] = float64(i + d)
		}
	}
	rounds := GossipRounds(16, 1e-6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PushSum(parts, rounds, 1); err != nil {
			b.Fatal(err)
		}
	}
}
