// Package reputation defines the pluggable reputation-engine abstraction the
// simulator and SocialTrust build on, plus helpers shared by the concrete
// engines (EigenTrust, eBay).
//
// An Engine consumes the drained rating snapshot of each reputation-update
// interval (one simulation cycle in the paper's evaluation) and maintains a
// normalized global reputation vector: Reputations() sums to 1, matching the
// paper's Ri/ΣRk scaling, so engine outputs are directly comparable.
package reputation

import "socialtrust/internal/rating"

// Engine is a reputation system: it folds interval snapshots into internal
// state and exposes normalized global reputation values. Engines are not
// safe for concurrent mutation; the simulator calls Update from its
// single-threaded end-of-cycle phase.
type Engine interface {
	// Name identifies the engine in experiment output ("EigenTrust", "eBay").
	Name() string
	// Update folds one interval snapshot into the engine state and
	// recomputes global reputations. Rating values may have been re-weighted
	// by a collusion filter before reaching the engine.
	Update(snap rating.Snapshot)
	// Reputations returns the normalized global reputation vector. The
	// returned slice is owned by the caller (a fresh copy every call).
	Reputations() []float64
	// Reputation returns the normalized reputation of a single node.
	Reputation(node int) float64
	// Reset restores the engine to its initial (all-zero reputation) state.
	Reset()
	// ResetNode forgets everything about one node — the ratings it issued
	// and the ratings it received — as when a peer departs and a newcomer
	// takes over its ID slot. Supporting this is what lets the testbed
	// model churn and the whitewashing attack.
	ResetNode(node int)
}

// NormalizeScores maps raw accumulated scores to the paper's normalized
// reputation Ri/ΣRk, clamping negative raw scores to zero first (a node
// with net-negative feedback has zero normalized reputation, not negative).
// A network with no positive score anywhere yields the all-zero vector:
// unlike a uniform fallback, this keeps "nobody has earned trust yet"
// distinguishable from "everyone is equally trusted".
func NormalizeScores(raw []float64) []float64 {
	out := make([]float64, len(raw))
	sum := 0.0
	for _, v := range raw {
		if v > 0 {
			sum += v
		}
	}
	if sum == 0 {
		return out
	}
	for i, v := range raw {
		if v > 0 {
			out[i] = v / sum
		}
	}
	return out
}
