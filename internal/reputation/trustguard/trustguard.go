// Package trustguard implements a TrustGuard-style reputation engine
// (Srivatsa, Xiong, Liu, WWW 2005) — the paper's reference [12] and its
// closest prior-art collusion defense. Two of TrustGuard's safeguards are
// reproduced:
//
//  1. Credibility-weighted feedback (the PSM safeguard): a rater's feedback
//     is weighted by how well its per-ratee opinions agree with the
//     population's. Colluders who praise partners the rest of the network
//     rates poorly ("give good ratings within the clique and bad ratings to
//     everyone else") earn low credibility and lose their voice.
//  2. The PID-style temporal value (the TVM safeguard): reported trust
//     blends the current interval's value with the historical average and
//     penalizes fluctuation, so reputations built up in a burst (or
//     oscillating good/bad behavior) are discounted.
//
// The engine plugs into the same reputation.Engine interface as EigenTrust
// and eBay, so SocialTrust can wrap it and the simulator can run it as a
// baseline.
package trustguard

import (
	"fmt"
	"math"
	"sort"

	"socialtrust/internal/rating"
	"socialtrust/internal/reputation"
)

// Config parameterizes the engine. Alpha/Beta/Gamma are the TVM blend:
// reported = Alpha·current + Beta·history − Gamma·|current − history|.
type Config struct {
	NumNodes int
	Alpha    float64 // weight of the current interval (default 0.5)
	Beta     float64 // weight of the historical average (default 0.5)
	Gamma    float64 // fluctuation penalty (default 0.5)
	// MinCredibility floors rater credibility so a lone dissenting honest
	// rater is dampened, not silenced (default 0.05).
	MinCredibility float64
}

func (c Config) withDefaults() Config {
	if c.Alpha == 0 {
		c.Alpha = 0.5
	}
	if c.Beta == 0 {
		c.Beta = 0.5
	}
	if c.Gamma == 0 {
		c.Gamma = 0.5
	}
	if c.MinCredibility == 0 {
		c.MinCredibility = 0.05
	}
	return c
}

// Engine is a TrustGuard-style reputation engine. Not safe for concurrent
// mutation.
type Engine struct {
	cfg Config

	// opinions holds each rater's all-time mean rating of each ratee.
	opinions map[rating.PairKey]*opinion
	// histSum/histN accumulate per-node historical current-values for the
	// TVM blend.
	histSum []float64
	histN   []int
	rep     []float64
}

type opinion struct {
	sum float64
	n   int
}

func (o *opinion) mean() float64 { return o.sum / float64(o.n) }

// New creates a TrustGuard engine.
func New(cfg Config) *Engine {
	if cfg.NumNodes <= 0 {
		panic("trustguard: NumNodes must be positive")
	}
	e := &Engine{cfg: cfg.withDefaults()}
	e.Reset()
	return e
}

var _ reputation.Engine = (*Engine)(nil)

// Name implements reputation.Engine.
func (e *Engine) Name() string { return "TrustGuard" }

// Reset implements reputation.Engine.
func (e *Engine) Reset() {
	e.opinions = make(map[rating.PairKey]*opinion)
	e.histSum = make([]float64, e.cfg.NumNodes)
	e.histN = make([]int, e.cfg.NumNodes)
	e.rep = make([]float64, e.cfg.NumNodes)
}

// ResetNode implements reputation.Engine: the node's opinions (issued and
// received) and its temporal history are forgotten.
func (e *Engine) ResetNode(node int) {
	if node < 0 || node >= e.cfg.NumNodes {
		panic(fmt.Sprintf("trustguard: node %d out of range", node))
	}
	for k := range e.opinions {
		if k.Rater == node || k.Ratee == node {
			delete(e.opinions, k)
		}
	}
	e.histSum[node] = 0
	e.histN[node] = 0
	e.rep[node] = 0
}

// Update implements reputation.Engine.
func (e *Engine) Update(snap rating.Snapshot) {
	// Fold the interval into all-time per-pair opinions.
	for _, r := range snap.Ratings {
		k := rating.PairKey{Rater: r.Rater, Ratee: r.Ratee}
		op := e.opinions[k]
		if op == nil {
			op = &opinion{}
			e.opinions[k] = op
		}
		op.sum += r.Value
		op.n++
	}
	// Population consensus per ratee: the unweighted mean of rater
	// opinions, plus the per-rater opinion lists, in deterministic order.
	byRatee := make(map[int][]int) // ratee -> sorted raters
	byRater := make(map[int][]int) // rater -> sorted ratees
	for k := range e.opinions {
		byRatee[k.Ratee] = append(byRatee[k.Ratee], k.Rater)
		byRater[k.Rater] = append(byRater[k.Rater], k.Ratee)
	}
	for _, v := range byRatee {
		sort.Ints(v)
	}
	for _, v := range byRater {
		sort.Ints(v)
	}
	consensus := make(map[int]float64, len(byRatee))
	for ratee, raters := range byRatee {
		sum := 0.0
		for _, r := range raters {
			sum += e.opinions[rating.PairKey{Rater: r, Ratee: ratee}].mean()
		}
		consensus[ratee] = sum / float64(len(raters))
	}
	// Credibility per rater: 1 − RMS deviation of its opinions from
	// consensus, scaled by the opinion range (means lie in [−1,1] for unit
	// ratings, so deviation is normalized by 2).
	credibility := func(rater int) float64 {
		ratees := byRater[rater]
		if len(ratees) == 0 {
			return e.cfg.MinCredibility
		}
		sum := 0.0
		for _, j := range ratees {
			d := e.opinions[rating.PairKey{Rater: rater, Ratee: j}].mean() - consensus[j]
			sum += (d / 2) * (d / 2)
		}
		cred := 1 - math.Sqrt(sum/float64(len(ratees)))
		if cred < e.cfg.MinCredibility {
			cred = e.cfg.MinCredibility
		}
		return cred
	}
	// Current-interval value: credibility-weighted mean opinion.
	raw := make([]float64, e.cfg.NumNodes)
	for ratee := 0; ratee < e.cfg.NumNodes; ratee++ {
		raters := byRatee[ratee]
		if len(raters) == 0 {
			continue
		}
		var num, den float64
		for _, r := range raters {
			c := credibility(r)
			num += c * e.opinions[rating.PairKey{Rater: r, Ratee: ratee}].mean()
			den += c
		}
		if den > 0 {
			raw[ratee] = num / den
		}
	}
	// TVM blend with history, then normalize.
	blended := make([]float64, e.cfg.NumNodes)
	for j := range blended {
		cur := raw[j]
		hist := cur
		if e.histN[j] > 0 {
			hist = e.histSum[j] / float64(e.histN[j])
		}
		v := e.cfg.Alpha*cur + e.cfg.Beta*hist - e.cfg.Gamma*math.Abs(cur-hist)
		if v < 0 {
			v = 0
		}
		blended[j] = v
		e.histSum[j] += cur
		e.histN[j]++
	}
	e.rep = reputation.NormalizeScores(blended)
}

// Reputations implements reputation.Engine.
func (e *Engine) Reputations() []float64 {
	return append([]float64(nil), e.rep...)
}

// Reputation implements reputation.Engine.
func (e *Engine) Reputation(node int) float64 {
	if node < 0 || node >= e.cfg.NumNodes {
		panic(fmt.Sprintf("trustguard: node %d out of range", node))
	}
	return e.rep[node]
}

// OpinionState is one rater's all-time aggregate about one ratee, the
// serializable form of the internal opinion record.
type OpinionState struct {
	Key rating.PairKey
	Sum float64
	N   int
}

// State is the engine's complete persistent state.
type State struct {
	Opinions []OpinionState // sorted by (Rater, Ratee) for a canonical payload
	HistSum  []float64
	HistN    []int
	Rep      []float64
}

// ExportState deep-copies the engine state for snapshotting.
func (e *Engine) ExportState() State {
	st := State{
		Opinions: make([]OpinionState, 0, len(e.opinions)),
		HistSum:  append([]float64(nil), e.histSum...),
		HistN:    append([]int(nil), e.histN...),
		Rep:      append([]float64(nil), e.rep...),
	}
	for k, op := range e.opinions {
		st.Opinions = append(st.Opinions, OpinionState{Key: k, Sum: op.sum, N: op.n})
	}
	sort.Slice(st.Opinions, func(a, b int) bool {
		if st.Opinions[a].Key.Rater != st.Opinions[b].Key.Rater {
			return st.Opinions[a].Key.Rater < st.Opinions[b].Key.Rater
		}
		return st.Opinions[a].Key.Ratee < st.Opinions[b].Key.Ratee
	})
	return st
}

// ImportState restores a previously exported state bit-exactly.
func (e *Engine) ImportState(st State) {
	if len(st.HistSum) != e.cfg.NumNodes {
		panic(fmt.Sprintf("trustguard: state for %d nodes imported into %d-node engine", len(st.HistSum), e.cfg.NumNodes))
	}
	e.opinions = make(map[rating.PairKey]*opinion, len(st.Opinions))
	for _, o := range st.Opinions {
		e.opinions[o.Key] = &opinion{sum: o.Sum, n: o.N}
	}
	e.histSum = append(e.histSum[:0], st.HistSum...)
	e.histN = append(e.histN[:0], st.HistN...)
	e.rep = append(e.rep[:0], st.Rep...)
}
