package trustguard

import (
	"math"
	"testing"

	"socialtrust/internal/rating"
)

func snap(rs ...rating.Rating) rating.Snapshot { return rating.Snapshot{Ratings: rs} }

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NumNodes 0 should panic")
		}
	}()
	New(Config{})
}

func TestName(t *testing.T) {
	if New(Config{NumNodes: 2}).Name() != "TrustGuard" {
		t.Fatal("Name mismatch")
	}
}

func TestBasicPositiveFeedback(t *testing.T) {
	e := New(Config{NumNodes: 4})
	e.Update(snap(
		rating.Rating{Rater: 0, Ratee: 1, Value: 1},
		rating.Rating{Rater: 2, Ratee: 1, Value: 1},
	))
	r := e.Reputations()
	if r[1] != 1 {
		t.Fatalf("well-rated node reputation = %v, want 1 (only positive node)", r[1])
	}
}

func TestReputationsNormalized(t *testing.T) {
	e := New(Config{NumNodes: 6})
	e.Update(snap(
		rating.Rating{Rater: 0, Ratee: 1, Value: 1},
		rating.Rating{Rater: 1, Ratee: 2, Value: 1},
		rating.Rating{Rater: 2, Ratee: 3, Value: -1},
	))
	sum := 0.0
	for _, v := range e.Reputations() {
		if v < 0 {
			t.Fatalf("negative reputation %v", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("reputations sum to %v", sum)
	}
}

func TestDissentersLoseCredibility(t *testing.T) {
	// Raters 0,1,2 agree node 5 is good; rater 3 praises node 4 that
	// everyone else pans. Rater 3's dissenting voice should barely move
	// node 4 upward.
	e := New(Config{NumNodes: 6})
	var rs []rating.Rating
	for _, rater := range []int{0, 1, 2} {
		rs = append(rs,
			rating.Rating{Rater: rater, Ratee: 5, Value: 1},
			rating.Rating{Rater: rater, Ratee: 4, Value: -1},
		)
	}
	rs = append(rs, rating.Rating{Rater: 3, Ratee: 4, Value: 1})
	rs = append(rs, rating.Rating{Rater: 3, Ratee: 5, Value: -1}) // also dissents on 5
	e.Update(snap(rs...))
	r := e.Reputations()
	if r[4] >= r[5]/4 {
		t.Fatalf("dissenter kept node 4 at %v vs consensus-good node 5 at %v", r[4], r[5])
	}
}

func TestCollusionCliqueDampened(t *testing.T) {
	// Without credibility weighting, colluders 4,5 praising each other
	// while panning everyone else would rival honest nodes. TrustGuard's
	// PSM should crush their voice.
	e := New(Config{NumNodes: 6})
	var rs []rating.Rating
	// Honest cross-ratings: 0..3 rate each other well.
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if i != j {
				rs = append(rs, rating.Rating{Rater: i, Ratee: j, Value: 1})
			}
		}
		// Honest nodes rate the colluders poorly.
		rs = append(rs, rating.Rating{Rater: i, Ratee: 4, Value: -1})
		rs = append(rs, rating.Rating{Rater: i, Ratee: 5, Value: -1})
	}
	// Colluders praise each other at high frequency and pan the honest.
	for k := 0; k < 50; k++ {
		rs = append(rs, rating.Rating{Rater: 4, Ratee: 5, Value: 1})
		rs = append(rs, rating.Rating{Rater: 5, Ratee: 4, Value: 1})
	}
	for i := 0; i < 4; i++ {
		rs = append(rs, rating.Rating{Rater: 4, Ratee: i, Value: -1})
		rs = append(rs, rating.Rating{Rater: 5, Ratee: i, Value: -1})
	}
	e.Update(snap(rs...))
	r := e.Reputations()
	minHonest := math.Inf(1)
	for i := 0; i < 4; i++ {
		if r[i] < minHonest {
			minHonest = r[i]
		}
	}
	if r[4] >= minHonest || r[5] >= minHonest {
		t.Fatalf("colluders %v/%v not below honest floor %v", r[4], r[5], minHonest)
	}
}

func TestFluctuationPenalty(t *testing.T) {
	// A node behaving well for several intervals then spiking is penalized
	// relative to its steady history.
	steady := New(Config{NumNodes: 3})
	burst := New(Config{NumNodes: 3})
	for k := 0; k < 5; k++ {
		steady.Update(snap(rating.Rating{Rater: 0, Ratee: 1, Value: 0.6}))
		v := 0.0
		if k == 4 {
			v = 1 // all value in one burst
		}
		if v != 0 {
			burst.Update(snap(rating.Rating{Rater: 0, Ratee: 1, Value: v}))
		} else {
			burst.Update(snap(rating.Rating{Rater: 0, Ratee: 2, Value: 0.1}))
		}
	}
	// Both end normalized; compare the blended raw behavior via relative
	// standing: the steady node holds full reputation, the burst node's
	// spike is discounted against its empty history.
	if steady.Reputation(1) != 1 {
		t.Fatalf("steady node reputation = %v, want 1", steady.Reputation(1))
	}
	if burst.Reputation(1) >= 0.9 {
		t.Fatalf("burst node reputation = %v, want discounted", burst.Reputation(1))
	}
}

func TestAccumulatesAcrossIntervals(t *testing.T) {
	e := New(Config{NumNodes: 3})
	for k := 0; k < 3; k++ {
		e.Update(snap(rating.Rating{Rater: 0, Ratee: 1, Value: 1}))
	}
	if e.Reputation(1) != 1 {
		t.Fatalf("reputation = %v", e.Reputation(1))
	}
}

func TestReset(t *testing.T) {
	e := New(Config{NumNodes: 3})
	e.Update(snap(rating.Rating{Rater: 0, Ratee: 1, Value: 1}))
	e.Reset()
	for _, v := range e.Reputations() {
		if v != 0 {
			t.Fatal("Reset failed")
		}
	}
}

func TestReputationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{NumNodes: 2}).Reputation(7)
}

func TestDeterministic(t *testing.T) {
	mk := func() []float64 {
		e := New(Config{NumNodes: 12})
		var rs []rating.Rating
		for i := 0; i < 12; i++ {
			for d := 1; d <= 3; d++ {
				rs = append(rs, rating.Rating{Rater: i, Ratee: (i + d) % 12, Value: float64(d%2)*2 - 1})
			}
		}
		e.Update(snap(rs...))
		e.Update(snap(rs...))
		return e.Reputations()
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d", i)
		}
	}
}

func TestResetNode(t *testing.T) {
	e := New(Config{NumNodes: 4})
	e.Update(snap(
		rating.Rating{Rater: 0, Ratee: 1, Value: 1},
		rating.Rating{Rater: 1, Ratee: 2, Value: 1},
	))
	e.ResetNode(1)
	if e.Reputation(1) != 0 {
		t.Fatal("reputation survived ResetNode")
	}
	// A fresh interval must not resurrect forgotten opinions.
	e.Update(snap(rating.Rating{Rater: 0, Ratee: 3, Value: 1}))
	if e.Reputation(2) != 0 {
		t.Fatal("node 2's trust should have vanished with its only rater's reset")
	}
}
