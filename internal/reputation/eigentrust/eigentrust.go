// Package eigentrust implements the EigenTrust reputation algorithm
// (Kamvar, Schlosser, Garcia-Molina, WWW 2003), one of the two baseline
// systems the paper evaluates SocialTrust against.
//
// Each peer i accumulates a local trust value s_ij = Σ ratings it issued
// about j. Local values are clamped non-negative and row-normalized into
// c_ij; the global trust vector is the stationary point of
//
//	t ← (1−a)·Cᵀt + a·p
//
// where p is the pretrusted-peer distribution and a the pretrust weight
// (the paper's experiments use a = 0.5). Rows with no positive local trust
// fall back to p, exactly as in the original algorithm. The power iteration
// parallelizes the Cᵀt product across row blocks.
package eigentrust

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"socialtrust/internal/obs"
	"socialtrust/internal/obs/span"
	"socialtrust/internal/rating"
)

// Convergence metrics: eigentrust_iterations / eigentrust_residual describe
// the most recent power iteration; the *_total counters accumulate across
// the run so iteration cost per update interval is visible from a dump.
var (
	mIterations      = obs.G("eigentrust_iterations")
	mResidual        = obs.G("eigentrust_residual")
	mIterationsTotal = obs.C("eigentrust_iterations_total")
	mUpdatesTotal    = obs.C("eigentrust_updates_total")
	mMaxIterHits     = obs.C("eigentrust_maxiter_hits_total")
	mUpdateLat       = obs.H("eigentrust_update_seconds")
	mCSRRebuilds     = obs.C("eigentrust_csr_rebuilds_total")
	mConverged       = obs.G("eigentrust_converged")
	mMatvecWorkers   = obs.G("eigentrust_matvec_workers")
	mWarmSkips       = obs.C("eigentrust_warm_start_skips_total")
)

func init() {
	obs.Help("eigentrust_iterations", "Iterations of the most recent power iteration.")
	obs.Help("eigentrust_residual", "Final L1 residual of the most recent power iteration.")
	obs.Help("eigentrust_iterations_total", "Power-iteration steps accumulated across the run.")
	obs.Help("eigentrust_updates_total", "Engine updates (one per reputation interval).")
	obs.Help("eigentrust_maxiter_hits_total", "Power iterations stopped by the MaxIter cap before converging.")
	obs.Help("eigentrust_update_seconds", "Wall time of one engine update (fold plus power iteration).")
	obs.Help("eigentrust_csr_rebuilds_total", "Full CSR trust-matrix rebuilds (vs in-place refreshes).")
	obs.Help("eigentrust_converged", "1 when the most recent update converged (or was skipped as already converged), 0 on a MaxIter hit.")
	obs.Help("eigentrust_matvec_workers", "Worker goroutines used by the parallel mat-vec.")
	obs.Help("eigentrust_warm_start_skips_total", "Updates that skipped the power iteration entirely: unchanged matrix, previously converged vector.")
}

// Config parameterizes an EigenTrust engine.
type Config struct {
	NumNodes int
	// Pretrusted lists the pretrusted peer IDs (distribution p is uniform
	// over them). Empty means p is uniform over all peers.
	Pretrusted []int
	// PretrustWeight is a ∈ [0,1); the paper sets 0.5. Defaults to 0.5
	// when zero.
	PretrustWeight float64
	// Epsilon is the L1 convergence threshold of the power iteration
	// (default 1e-10). If Epsilon is set unattainably small (or negative),
	// the iteration silently runs to the MaxIter cap every update; check
	// Stats().Converged to detect this.
	Epsilon float64
	// MaxIter bounds the power iteration (default 200). When the cap is hit
	// the engine keeps the last iterate — a valid but unconverged vector —
	// and Stats() reports Converged == false.
	MaxIter int
	// Workers sets the parallelism of the matrix–vector product; 0 means
	// GOMAXPROCS, 1 forces the serial path.
	Workers int
	// FullRecompute forces a from-scratch CSR rebuild on every
	// matrix-changing update instead of the incremental shape/value
	// refreshes. It is the reference mode the incremental maintenance is
	// pinned bit-identical against; production deployments leave it false.
	// The quiet-interval skip (unchanged matrix + converged vector) is a
	// pipeline semantic and applies in both modes.
	FullRecompute bool
}

func (c Config) withDefaults() Config {
	if c.PretrustWeight == 0 {
		c.PretrustWeight = 0.5
	}
	if c.Epsilon == 0 {
		c.Epsilon = 1e-10
	}
	if c.MaxIter == 0 {
		c.MaxIter = 200
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// Engine is an EigenTrust instance. Not safe for concurrent mutation.
type Engine struct {
	cfg  Config
	p    []float64 // pretrust distribution
	sums map[rating.PairKey]float64
	out  map[int]map[int]float64 // rater -> ratee -> positive local trust
	t    []float64
	// scratch buffers reused across updates
	next []float64
	part []float64 // fixed-block partial sums for the tree reductions

	csr csrState

	stats Stats
}

// csrState is the incrementally maintained compressed-sparse-row form of
// the row-normalized local-trust matrix. The structural arrays (rowPtr /
// colIdx / the forward→transposed permutation) are rebuilt — into reusable
// scratch buffers — only when the outlink set changes shape; value-only
// changes refresh the val arrays in place. All walks run raters ascending
// with each row's ratees ascending, so float summation order (and therefore
// the trust vector, bitwise) is identical to a from-scratch rebuild.
type csrState struct {
	shapeDirty bool // an outlink appeared or vanished: rebuild structure
	valsDirty  bool // only trust values changed: refresh values in place

	// rowDirty / dirtyRows track which forward rows hold changed values, so
	// a value-only refresh touches just those rows instead of all n. Rows
	// are normalized independently, so a dirty-row refresh is bit-identical
	// to the full pass. Cleared by every rebuild/refresh.
	rowDirty  []bool
	dirtyRows []int

	// Forward (rater-major) structure: fCol[fRowPtr[i]:fRowPtr[i+1]] lists
	// rater i's ratees ascending; fVal holds the raw positive sums.
	fRowPtr []int32
	fCol    []int32
	fVal    []float64
	perm    []int32 // forward slot -> transposed slot

	// Transposed (ratee-major) structure consumed by the power iteration:
	// tCol[tRowPtr[j]:tRowPtr[j+1]] lists j's raters ascending, tVal the
	// normalized trust c_ij.
	tRowPtr []int32
	tCol    []int32
	tVal    []float64

	rowTotal []float64 // per-rater normalization totals (0 = dangling row)
	cnt      []int32   // rebuild scratch: per-ratee entry counts / cursors
	ratees   []int     // rebuild scratch: per-row sort buffer
}

// grown returns s resized to n elements, reusing its backing array when the
// capacity suffices.
func grown[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// Stats describes the engine's most recent power iteration.
type Stats struct {
	// Iterations the last powerIterate ran (0 until the first Update).
	Iterations int
	// Residual is the final L1 distance between the last two iterates.
	Residual float64
	// Converged reports whether Residual dropped below Epsilon before the
	// MaxIter cap. False after an update means the reputations are the
	// MaxIter-th iterate, not the fixpoint — typically an Epsilon
	// misconfiguration.
	Converged bool
	// Updates counts the recomputations (Update/ResetNode calls) so far.
	Updates int
	// Skipped reports that the most recent update ran zero iterations
	// because the trust matrix was unchanged and the previous vector had
	// converged — the fixpoint of an identical system stands.
	Skipped bool
}

// Stats returns convergence statistics for the most recent recomputation.
func (e *Engine) Stats() Stats { return e.stats }

// New creates an EigenTrust engine. It panics on invalid configuration
// (experiment-construction errors).
func New(cfg Config) *Engine {
	cfg = cfg.withDefaults()
	if cfg.NumNodes <= 0 {
		panic("eigentrust: NumNodes must be positive")
	}
	if cfg.PretrustWeight < 0 || cfg.PretrustWeight >= 1 {
		panic("eigentrust: PretrustWeight must be in [0,1)")
	}
	p := make([]float64, cfg.NumNodes)
	if len(cfg.Pretrusted) == 0 {
		for i := range p {
			p[i] = 1 / float64(cfg.NumNodes)
		}
	} else {
		for _, id := range cfg.Pretrusted {
			if id < 0 || id >= cfg.NumNodes {
				panic(fmt.Sprintf("eigentrust: pretrusted peer %d out of range", id))
			}
			p[id] = 1 / float64(len(cfg.Pretrusted))
		}
	}
	e := &Engine{cfg: cfg, p: p}
	e.Reset()
	return e
}

// Name implements reputation.Engine.
func (e *Engine) Name() string { return "EigenTrust" }

// Reset clears all local trust and restarts the global vector at p.
func (e *Engine) Reset() {
	e.sums = make(map[rating.PairKey]float64)
	e.out = make(map[int]map[int]float64)
	e.t = append([]float64(nil), e.p...)
	e.next = make([]float64, e.cfg.NumNodes)
	e.csr.shapeDirty = true
	e.stats = Stats{}
}

// ResetNode implements reputation.Engine: all local trust issued by or
// about the node is forgotten and the global vector recomputed. Affected
// keys are collected before any mutation so applyLocal runs against a
// stable view of the sums table.
func (e *Engine) ResetNode(node int) {
	if node < 0 || node >= e.cfg.NumNodes {
		panic(fmt.Sprintf("eigentrust: node %d out of range", node))
	}
	var keys []rating.PairKey
	for k := range e.sums {
		if k.Rater == node || k.Ratee == node {
			keys = append(keys, k)
		}
	}
	for _, k := range keys {
		old := e.sums[k]
		delete(e.sums, k)
		e.applyLocal(k, old, 0)
	}
	e.powerIterate()
}

// Update folds the interval's ratings into local trust and re-runs the
// power iteration.
func (e *Engine) Update(snap rating.Snapshot) {
	fsp := span.Ambient("eigentrust.fold", span.PhaseIterate).SetInt("ratings", int64(len(snap.Ratings)))
	for _, r := range snap.Ratings {
		k := rating.PairKey{Rater: r.Rater, Ratee: r.Ratee}
		old := e.sums[k]
		e.sums[k] = old + r.Value
		e.applyLocal(k, old, e.sums[k])
	}
	fsp.End()
	e.powerIterate()
}

// applyLocal maintains the positive-part outlink map incrementally and
// marks the CSR dirty: structurally when an outlink appears or vanishes,
// value-only (with the rater's row recorded in the dirty set) when an
// existing entry just changes magnitude. An unchanged sum is a no-op and
// leaves the matrix clean — the signal the quiet-interval skip relies on.
func (e *Engine) applyLocal(k rating.PairKey, old, now float64) {
	if old == now {
		return
	}
	oldPos, nowPos := old > 0, now > 0
	switch {
	case nowPos && !oldPos:
		row := e.out[k.Rater]
		if row == nil {
			row = make(map[int]float64)
			e.out[k.Rater] = row
		}
		row[k.Ratee] = now
		e.csr.shapeDirty = true
	case nowPos:
		e.out[k.Rater][k.Ratee] = now
		e.csr.valsDirty = true
		e.markRowDirty(k.Rater)
	case oldPos && !nowPos:
		delete(e.out[k.Rater], k.Ratee)
		if len(e.out[k.Rater]) == 0 {
			delete(e.out, k.Rater)
		}
		e.csr.shapeDirty = true
	}
}

// markRowDirty records rater row i for the next value-only refresh.
func (e *Engine) markRowDirty(i int) {
	c := &e.csr
	if c.rowDirty == nil {
		c.rowDirty = make([]bool, e.cfg.NumNodes)
	}
	if !c.rowDirty[i] {
		c.rowDirty[i] = true
		c.dirtyRows = append(c.dirtyRows, i)
	}
}

// clearDirtyRows empties the dirty-row set after a rebuild or refresh.
func (e *Engine) clearDirtyRows() {
	c := &e.csr
	for _, i := range c.dirtyRows {
		c.rowDirty[i] = false
	}
	c.dirtyRows = c.dirtyRows[:0]
}

// rebuildCSR reconstructs the sparse structure from the outlink map into
// the reusable scratch buffers: forward rows first (raters ascending,
// ratees ascending within a row), then a counting pass lays out the
// transposed rows and the forward→transposed permutation. Entry order in
// every transposed row is ascending source ID — exactly the order the
// from-scratch [][]inEntry build produced — so the power iteration's float
// summation order is unchanged.
func (e *Engine) rebuildCSR() {
	c := &e.csr
	n := e.cfg.NumNodes
	nnz := 0
	for _, row := range e.out {
		nnz += len(row)
	}
	c.fRowPtr = grown(c.fRowPtr, n+1)
	c.tRowPtr = grown(c.tRowPtr, n+1)
	c.fCol = grown(c.fCol, nnz)
	c.tCol = grown(c.tCol, nnz)
	c.perm = grown(c.perm, nnz)
	c.fVal = grown(c.fVal, nnz)
	c.tVal = grown(c.tVal, nnz)
	c.rowTotal = grown(c.rowTotal, n)
	c.cnt = grown(c.cnt, n)

	slot := int32(0)
	for i := 0; i < n; i++ {
		c.fRowPtr[i] = slot
		row := e.out[i]
		if len(row) == 0 {
			continue
		}
		ratees := c.ratees[:0]
		for j := range row {
			ratees = append(ratees, j)
		}
		sort.Ints(ratees)
		c.ratees = ratees[:0]
		for _, j := range ratees {
			c.fCol[slot] = int32(j)
			slot++
		}
	}
	c.fRowPtr[n] = slot

	for j := 0; j < n; j++ {
		c.cnt[j] = 0
	}
	for s := int32(0); s < slot; s++ {
		c.cnt[c.fCol[s]]++
	}
	run := int32(0)
	for j := 0; j < n; j++ {
		c.tRowPtr[j] = run
		run += c.cnt[j]
		c.cnt[j] = c.tRowPtr[j] // becomes the fill cursor below
	}
	c.tRowPtr[n] = run
	for i := 0; i < n; i++ {
		for s := c.fRowPtr[i]; s < c.fRowPtr[i+1]; s++ {
			j := c.fCol[s]
			tslot := c.cnt[j]
			c.cnt[j] = tslot + 1
			c.tCol[tslot] = int32(i)
			c.perm[s] = tslot
		}
	}
	c.shapeDirty = false
	e.refreshCSRValues()
}

// refreshCSRValues recomputes row totals and normalized values against the
// current sums without touching the structure. Totals accumulate in
// ascending-ratee order, matching the reference rebuild bit for bit.
func (e *Engine) refreshCSRValues() {
	n := e.cfg.NumNodes
	for i := 0; i < n; i++ {
		e.refreshCSRRow(i)
	}
	e.csr.valsDirty = false
	e.clearDirtyRows()
}

// refreshDirtyRows refreshes only the rows whose values changed since the
// last rebuild/refresh. Each row normalizes independently of every other, so
// the refreshed rows are bit-identical to a full refresh and the untouched
// rows are already correct.
func (e *Engine) refreshDirtyRows() {
	for _, i := range e.csr.dirtyRows {
		e.refreshCSRRow(i)
	}
	e.csr.valsDirty = false
	e.clearDirtyRows()
}

// refreshCSRRow recomputes one forward row's total and normalized
// transposed values.
func (e *Engine) refreshCSRRow(i int) {
	c := &e.csr
	lo, hi := c.fRowPtr[i], c.fRowPtr[i+1]
	if lo == hi {
		c.rowTotal[i] = 0
		return
	}
	row := e.out[i]
	total := 0.0
	for s := lo; s < hi; s++ {
		v := row[int(c.fCol[s])]
		c.fVal[s] = v
		total += v
	}
	c.rowTotal[i] = total
	for s := lo; s < hi; s++ {
		c.tVal[c.perm[s]] = c.fVal[s] / total
	}
}

// powerIterate recomputes the global trust vector t, recording iteration
// count and final L1 residual in Stats (and the eigentrust_* metrics). The
// sparse matrix is reused from the previous update: a from-scratch rebuild
// happens only when the outlink set changed shape, a dirty-row value
// refresh when only magnitudes moved, and neither on a no-op recompute.
// A no-op recompute whose previous vector converged skips the iteration
// entirely — the fixpoint of an identical system stands. The skip is a
// pipeline semantic, applied under Config.FullRecompute too, so both modes
// stay bit-identical.
func (e *Engine) powerIterate() {
	sp := mUpdateLat.Start()
	matrixChanged := e.csr.shapeDirty || e.csr.valsDirty
	if !matrixChanged && e.stats.Updates > 0 && e.stats.Converged {
		e.stats.Updates++
		e.stats.Skipped = true
		e.stats.Iterations = 0
		sp.End()
		mWarmSkips.Inc()
		mUpdatesTotal.Inc()
		mIterations.Set(0)
		mConverged.Set(1)
		return
	}
	// The update span parents to the interval driver's ambient context; the
	// CSR and per-iteration children share its phase so only this span feeds
	// the attribution ledger. All sites are nil no-ops with tracing off.
	tsp := span.Ambient("eigentrust.update", span.PhaseIterate)
	n := e.cfg.NumNodes
	switch {
	case e.csr.shapeDirty || (e.cfg.FullRecompute && matrixChanged):
		rsp := tsp.Child("eigentrust.csr_rebuild", span.PhaseIterate)
		e.rebuildCSR()
		rsp.End()
		mCSRRebuilds.Inc()
	case e.csr.valsDirty:
		rsp := tsp.Child("eigentrust.csr_refresh", span.PhaseIterate)
		e.refreshDirtyRows()
		rsp.End()
	}
	rowTotal := e.csr.rowTotal

	a := e.cfg.PretrustWeight
	t := e.t
	next := e.next
	nb := (n + etBlock - 1) / etBlock
	workers := e.cfg.Workers
	if workers > nb {
		workers = nb
	}
	mMatvecWorkers.Set(float64(workers))
	iters, residual, converged := 0, 0.0, false
	for iter := 0; iter < e.cfg.MaxIter; iter++ {
		isp := tsp.Child("eigentrust.step", span.PhaseIterate)
		// Mass held by dangling rows redistributes along p. The sum runs
		// over fixed row blocks with a tree reduction, so its float result
		// is pinned by n alone, never by the worker count.
		dangling := e.blockedSum(nb, workers, func(lo, hi int) float64 {
			sum := 0.0
			for i := lo; i < hi; i++ {
				if rowTotal[i] <= 0 {
					sum += t[i]
				}
			}
			return sum
		})
		diff := e.applyStep(t, next, a, dangling, nb, workers)
		isp.End()
		t, next = next, t
		iters, residual = iter+1, diff
		if diff < e.cfg.Epsilon {
			converged = true
			break
		}
	}
	e.t, e.next = t, next
	e.stats = Stats{Iterations: iters, Residual: residual, Converged: converged, Updates: e.stats.Updates + 1}
	tsp.SetInt("iterations", int64(iters)).SetInt("nodes", int64(n)).End()
	sp.End()
	mIterations.Set(float64(iters))
	mResidual.Set(residual)
	mIterationsTotal.Add(int64(iters))
	mUpdatesTotal.Inc()
	if converged {
		mConverged.Set(1)
	} else {
		mConverged.Set(0)
		mMaxIterHits.Inc()
	}
}

// etBlock is the fixed row-block granularity of the parallel mat-vec and
// its reductions. Blocks are a pure function of n — workers only decide who
// computes a block — so every float accumulation order, and therefore the
// trust vector, is bit-identical from Workers=1 to Workers=N. Networks at
// or below one block degenerate to the plain serial sums of the pre-CSR
// reference algorithm (pinned bitwise by csr_test.go).
const etBlock = 256

// applyStep computes next = (1−a)·(Cᵀt + dangling·p) + a·p over the
// transposed CSR, block-partitioned across workers, and returns the L1
// distance |next − t|. The convergence sum is fused into the same parallel
// pass: each block accumulates its own partial, and the fixed-order tree
// reduction makes the residual — and so the iteration count — independent
// of the worker count. The flat colIdx/val arrays keep the inner loop free
// of per-entry pointer chasing and allocation.
func (e *Engine) applyStep(t, next []float64, a, dangling float64, nb, workers int) float64 {
	c := &e.csr
	return e.blockedSum(nb, workers, func(lo, hi int) float64 {
		diff := 0.0
		for j := lo; j < hi; j++ {
			sum := 0.0
			for s := c.tRowPtr[j]; s < c.tRowPtr[j+1]; s++ {
				sum += c.tVal[s] * t[c.tCol[s]]
			}
			v := (1-a)*(sum+dangling*e.p[j]) + a*e.p[j]
			next[j] = v
			d := v - t[j]
			if d < 0 {
				d = -d
			}
			diff += d
		}
		return diff
	})
}

// blockedSum evaluates fn over every fixed etBlock-sized row range, fanning
// the blocks across at most workers goroutines pulling indices from a
// shared counter, and tree-reduces the per-block partials. Both the block
// boundaries and the reduction order depend only on the row count, so the
// result is bitwise identical for any worker count; a single block reduces
// to fn's own serial sum.
func (e *Engine) blockedSum(nb, workers int, fn func(lo, hi int) float64) float64 {
	n := e.cfg.NumNodes
	e.part = grown(e.part, nb)
	parts := e.part
	run := func(b int) {
		lo := b * etBlock
		hi := lo + etBlock
		if hi > n {
			hi = n
		}
		parts[b] = fn(lo, hi)
	}
	if workers <= 1 || nb <= 1 {
		for b := 0; b < nb; b++ {
			run(b)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					b := int(next.Add(1)) - 1
					if b >= nb {
						return
					}
					run(b)
				}
			}()
		}
		wg.Wait()
	}
	return treeReduce(parts)
}

// treeReduce folds the partials pairwise in place — the upper half onto the
// lower — halving the width until one value remains. The pairing is a pure
// function of the partial count, pinning the float result regardless of
// which goroutine filled which slot.
func treeReduce(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	for width := len(xs); width > 1; {
		half := (width + 1) / 2
		for i := 0; i < width-half; i++ {
			xs[i] += xs[half+i]
		}
		width = half
	}
	return xs[0]
}

// Reputations implements reputation.Engine: a copy of the trust vector,
// which sums to 1 by construction.
func (e *Engine) Reputations() []float64 {
	return append([]float64(nil), e.t...)
}

// Reputation returns the global trust of one node.
func (e *Engine) Reputation(node int) float64 {
	if node < 0 || node >= e.cfg.NumNodes {
		panic(fmt.Sprintf("eigentrust: node %d out of range", node))
	}
	return e.t[node]
}

// LocalTrust exposes the accumulated (pre-normalization) local trust value
// s_ij, useful for tests and diagnostics.
func (e *Engine) LocalTrust(i, j int) float64 {
	return e.sums[rating.PairKey{Rater: i, Ratee: j}]
}

// State is the persistent core of an engine: the local trust sums, the
// global trust vector, and the convergence statistics. The outlink map and
// CSR matrix are derived from Sums and rebuilt on import; scratch buffers
// are not state.
type State struct {
	Sums  map[rating.PairKey]float64
	T     []float64
	Stats Stats
}

// ExportState deep-copies the engine's persistent state for snapshotting.
func (e *Engine) ExportState() State {
	st := State{
		Sums:  make(map[rating.PairKey]float64, len(e.sums)),
		T:     append([]float64(nil), e.t...),
		Stats: e.stats,
	}
	for k, v := range e.sums {
		st.Sums[k] = v
	}
	return st
}

// ImportState restores a previously exported state. The outlink map is
// rebuilt from the positive sums and the CSR matrix is reconstructed
// eagerly, leaving the dirty flags clean — exactly the state the exporting
// engine was in at its interval boundary, so a subsequent quiet interval
// still takes the warm-start skip and a busy one folds in bit-identically.
func (e *Engine) ImportState(st State) {
	if len(st.T) != e.cfg.NumNodes {
		panic(fmt.Sprintf("eigentrust: state with %d-node trust vector imported into %d-node engine", len(st.T), e.cfg.NumNodes))
	}
	e.sums = make(map[rating.PairKey]float64, len(st.Sums))
	e.out = make(map[int]map[int]float64)
	for k, v := range st.Sums {
		e.sums[k] = v
		if v > 0 {
			row := e.out[k.Rater]
			if row == nil {
				row = make(map[int]float64)
				e.out[k.Rater] = row
			}
			row[k.Ratee] = v
		}
	}
	e.t = append(e.t[:0], st.T...)
	e.csr.shapeDirty = true
	e.csr.valsDirty = false
	e.clearDirtyRows()
	e.rebuildCSR()
	e.stats = st.Stats
}
