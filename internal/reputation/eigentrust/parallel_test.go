package eigentrust

import (
	"testing"

	"socialtrust/internal/xrand"
)

// TestWorkerCountBitIdentity pins the scale-out contract of the parallel
// mat-vec: at a network size spanning several etBlock row blocks, the same
// update sequence must yield bitwise-equal trust vectors and identical
// convergence stats for every worker count. Block boundaries and the tree
// reduction depend only on n, so the partition decides who computes a
// block, never what it sums to.
func TestWorkerCountBitIdentity(t *testing.T) {
	const n = 3 * etBlock // multiple blocks plus a ragged tail
	build := func(workers int) *Engine {
		e := New(Config{NumNodes: n, Pretrusted: []int{0, 1, 2}, Workers: workers})
		rng := xrand.New(42)
		for round := 0; round < 4; round++ {
			e.Update(randomSnapshot(rng, n, 3000))
		}
		e.ResetNode(5)
		return e
	}

	ref := build(1)
	for _, workers := range []int{2, 4, 8} {
		got := build(workers)
		assertVectorsEqual(t, got.Reputations(), ref.Reputations(),
			"Workers=1 vs parallel")
		if got.Stats() != ref.Stats() {
			t.Fatalf("Workers=%d stats diverged: %+v vs %+v", workers, got.Stats(), ref.Stats())
		}
	}
}
