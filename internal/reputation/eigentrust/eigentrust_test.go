package eigentrust

import (
	"math"
	"testing"
	"testing/quick"

	"socialtrust/internal/rating"
)

func snap(rs ...rating.Rating) rating.Snapshot {
	return rating.Snapshot{Ratings: rs}
}

func sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

func TestNewValidation(t *testing.T) {
	for _, bad := range []Config{
		{NumNodes: 0},
		{NumNodes: 5, PretrustWeight: 1.5},
		{NumNodes: 5, Pretrusted: []int{9}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v should panic", bad)
				}
			}()
			New(bad)
		}()
	}
}

func TestInitialReputationIsPretrustDistribution(t *testing.T) {
	e := New(Config{NumNodes: 4, Pretrusted: []int{0, 1}})
	r := e.Reputations()
	if r[0] != 0.5 || r[1] != 0.5 || r[2] != 0 || r[3] != 0 {
		t.Fatalf("initial reputations = %v", r)
	}
	e2 := New(Config{NumNodes: 4})
	for _, v := range e2.Reputations() {
		if v != 0.25 {
			t.Fatalf("uniform initial reputations = %v", e2.Reputations())
		}
	}
}

func TestReputationsSumToOne(t *testing.T) {
	e := New(Config{NumNodes: 5, Pretrusted: []int{0}})
	e.Update(snap(
		rating.Rating{Rater: 0, Ratee: 1, Value: 1},
		rating.Rating{Rater: 1, Ratee: 2, Value: 1},
		rating.Rating{Rater: 2, Ratee: 0, Value: 1},
	))
	if s := sum(e.Reputations()); math.Abs(s-1) > 1e-9 {
		t.Fatalf("reputations sum = %v, want 1", s)
	}
}

func TestWellBehavedNodeGainsTrust(t *testing.T) {
	// Node 1 is rated positively by everyone (including the pretrusted
	// node); node 3 receives nothing. Node 1 must end above node 3.
	e := New(Config{NumNodes: 4, Pretrusted: []int{0}})
	e.Update(snap(
		rating.Rating{Rater: 0, Ratee: 1, Value: 5},
		rating.Rating{Rater: 2, Ratee: 1, Value: 5},
		rating.Rating{Rater: 3, Ratee: 1, Value: 5},
	))
	r := e.Reputations()
	if r[1] <= r[3] {
		t.Fatalf("popular node not above idle node: %v", r)
	}
	if r[0] == 0 {
		t.Fatal("pretrusted node should retain trust via a·p")
	}
}

func TestNegativeLocalTrustClamped(t *testing.T) {
	// Node 2 receives only negative feedback: its local trust is clamped
	// to zero, so only the (1−a) dangling + a·p flow can reach it — which
	// is zero for a non-pretrusted node.
	e := New(Config{NumNodes: 3, Pretrusted: []int{0}})
	e.Update(snap(
		rating.Rating{Rater: 0, Ratee: 1, Value: 3},
		rating.Rating{Rater: 0, Ratee: 2, Value: -5},
		rating.Rating{Rater: 1, Ratee: 2, Value: -5},
	))
	r := e.Reputations()
	if r[2] != 0 {
		t.Fatalf("negatively rated node reputation = %v, want 0", r[2])
	}
	if got := e.LocalTrust(0, 2); got != -5 {
		t.Fatalf("LocalTrust(0,2) = %v, want -5", got)
	}
}

func TestLocalTrustAccumulatesAcrossIntervals(t *testing.T) {
	e := New(Config{NumNodes: 3, Pretrusted: []int{0}})
	e.Update(snap(rating.Rating{Rater: 0, Ratee: 1, Value: 1}))
	e.Update(snap(rating.Rating{Rater: 0, Ratee: 1, Value: 2}))
	if got := e.LocalTrust(0, 1); got != 3 {
		t.Fatalf("LocalTrust = %v, want 3", got)
	}
}

func TestSignFlipUpdatesOutlinks(t *testing.T) {
	// Local trust goes positive then net-negative: the outlink must vanish
	// and reputation flow stop.
	e := New(Config{NumNodes: 3, Pretrusted: []int{0}})
	e.Update(snap(rating.Rating{Rater: 0, Ratee: 1, Value: 2}))
	r1 := e.Reputation(1)
	if r1 == 0 {
		t.Fatal("node 1 should have gained trust")
	}
	e.Update(snap(rating.Rating{Rater: 0, Ratee: 1, Value: -10}))
	if got := e.Reputation(1); got != 0 {
		t.Fatalf("after net-negative, reputation = %v, want 0", got)
	}
}

func TestCollusionPairDominatesWithoutDefense(t *testing.T) {
	// The EigenTrust weakness the paper exploits: two colluders that only
	// rate each other capture circulating trust mass once they have any
	// inflow from honest nodes.
	const n = 10
	e := New(Config{NumNodes: n, Pretrusted: []int{0}})
	var rs []rating.Rating
	// Honest background: everyone mildly rates node 9.
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			if i != j {
				rs = append(rs, rating.Rating{Rater: i, Ratee: j, Value: 1})
			}
		}
		rs = append(rs, rating.Rating{Rater: i, Ratee: 8, Value: 1}) // colluders get some honest inflow
	}
	// Colluders 8 and 9 rate each other massively.
	rs = append(rs,
		rating.Rating{Rater: 8, Ratee: 9, Value: 500},
		rating.Rating{Rater: 9, Ratee: 8, Value: 500},
	)
	e.Update(snap(rs...))
	r := e.Reputations()
	honestMax := 0.0
	for i := 1; i < 8; i++ {
		if r[i] > honestMax {
			honestMax = r[i]
		}
	}
	if r[8] <= honestMax && r[9] <= honestMax {
		t.Fatalf("collusion pair should exceed honest nodes: colluders %v/%v honest max %v",
			r[8], r[9], honestMax)
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	mk := func(workers int) []float64 {
		e := New(Config{NumNodes: 40, Pretrusted: []int{0, 1}, Workers: workers})
		var rs []rating.Rating
		for i := 0; i < 40; i++ {
			for d := 1; d <= 3; d++ {
				rs = append(rs, rating.Rating{Rater: i, Ratee: (i + d) % 40, Value: float64(d)})
			}
		}
		e.Update(snap(rs...))
		return e.Reputations()
	}
	serial, parallel := mk(1), mk(8)
	for i := range serial {
		if math.Abs(serial[i]-parallel[i]) > 1e-12 {
			t.Fatalf("parallel diverges at %d: %v vs %v", i, serial[i], parallel[i])
		}
	}
}

func TestReset(t *testing.T) {
	e := New(Config{NumNodes: 3, Pretrusted: []int{0}})
	e.Update(snap(rating.Rating{Rater: 0, Ratee: 1, Value: 5}))
	e.Reset()
	r := e.Reputations()
	if r[0] != 1 || r[1] != 0 {
		t.Fatalf("after Reset reputations = %v", r)
	}
	if e.LocalTrust(0, 1) != 0 {
		t.Fatal("local trust survived Reset")
	}
}

func TestReputationPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{NumNodes: 2}).Reputation(5)
}

func TestName(t *testing.T) {
	if New(Config{NumNodes: 2}).Name() != "EigenTrust" {
		t.Fatal("Name mismatch")
	}
}

func TestStochasticVectorProperty(t *testing.T) {
	// For any rating pattern, the trust vector remains a probability
	// distribution: non-negative, summing to 1.
	f := func(events []uint16) bool {
		const n = 9
		e := New(Config{NumNodes: n, Pretrusted: []int{0}})
		var rs []rating.Rating
		for _, ev := range events {
			i, j := int(ev%n), int((ev/n)%n)
			if i == j {
				continue
			}
			v := float64(int(ev%5) - 2) // values in [-2,2]
			rs = append(rs, rating.Rating{Rater: i, Ratee: j, Value: v})
		}
		e.Update(snap(rs...))
		total := 0.0
		for _, v := range e.Reputations() {
			if v < -1e-12 || math.IsNaN(v) {
				return false
			}
			total += v
		}
		return math.Abs(total-1) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	mk := func() []float64 {
		e := New(Config{NumNodes: 20, Pretrusted: []int{0}, Workers: 4})
		var rs []rating.Rating
		for i := 0; i < 20; i++ {
			rs = append(rs, rating.Rating{Rater: i, Ratee: (i + 1) % 20, Value: 1})
		}
		e.Update(snap(rs...))
		return e.Reputations()
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestResetNodeForgetsBothRoles(t *testing.T) {
	e := New(Config{NumNodes: 4, Pretrusted: []int{0}})
	e.Update(snap(
		rating.Rating{Rater: 0, Ratee: 1, Value: 5},
		rating.Rating{Rater: 1, Ratee: 2, Value: 5},
		rating.Rating{Rater: 3, Ratee: 1, Value: 5},
	))
	if e.Reputation(1) == 0 {
		t.Fatal("precondition: node 1 has trust")
	}
	e.ResetNode(1)
	if e.LocalTrust(0, 1) != 0 || e.LocalTrust(1, 2) != 0 || e.LocalTrust(3, 1) != 0 {
		t.Fatal("local trust involving node 1 survived ResetNode")
	}
	if got := e.Reputation(1); got != 0 {
		t.Fatalf("reputation after ResetNode = %v", got)
	}
}

func TestIterativeResetNode(t *testing.T) {
	e := NewIterative(IterativeConfig{NumNodes: 4, Pretrusted: []int{0}})
	e.Update(rating.Snapshot{Ratings: []rating.Rating{
		{Rater: 0, Ratee: 1, Value: 5},
		{Rater: 1, Ratee: 2, Value: 5},
	}})
	e.ResetNode(1)
	if e.LocalTrust(0, 1) != 0 || e.LocalTrust(1, 2) != 0 {
		t.Fatal("iterative sums involving node 1 survived ResetNode")
	}
	if e.Reputation(1) != 0 {
		t.Fatal("iterative reputation survived ResetNode")
	}
}
