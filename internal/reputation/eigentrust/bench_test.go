package eigentrust

import (
	"testing"

	"socialtrust/internal/rating"
)

func benchSnapshot(n int) rating.Snapshot {
	var rs []rating.Rating
	for i := 0; i < n; i++ {
		for d := 1; d <= 5; d++ {
			rs = append(rs, rating.Rating{Rater: i, Ratee: (i + d) % n, Value: float64(d%3) - 1})
		}
	}
	return rating.Snapshot{Ratings: rs}
}

func benchmarkPowerIteration(b *testing.B, n, workers int) {
	snap := benchSnapshot(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := New(Config{NumNodes: n, Pretrusted: []int{0, 1, 2}, Workers: workers})
		e.Update(snap)
	}
}

func BenchmarkPowerIterationSerial500(b *testing.B)   { benchmarkPowerIteration(b, 500, 1) }
func BenchmarkPowerIterationParallel500(b *testing.B) { benchmarkPowerIteration(b, 500, 4) }

func BenchmarkIterativeUpdate500(b *testing.B) {
	snap := benchSnapshot(500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := NewIterative(IterativeConfig{NumNodes: 500, Pretrusted: []int{0, 1, 2}})
		e.Update(snap)
	}
}
