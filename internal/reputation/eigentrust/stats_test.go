package eigentrust

import (
	"testing"

	"socialtrust/internal/rating"
)

// denseSnapshot builds a rating snapshot with every node rating several
// peers, so the trust matrix has no trivial structure.
func denseSnapshot(n int) rating.Snapshot {
	var snap rating.Snapshot
	for i := 0; i < n; i++ {
		for d := 1; d <= 5; d++ {
			snap.Ratings = append(snap.Ratings, rating.Rating{
				Rater: i, Ratee: (i + d) % n, Value: float64(d),
			})
		}
	}
	return snap
}

// TestDefaultConfigConvergesUnderMaxIter pins the convergence contract: with
// the default Epsilon/MaxIter the power iteration reaches its fixpoint well
// before the iteration cap, and Stats reports it.
func TestDefaultConfigConvergesUnderMaxIter(t *testing.T) {
	e := New(Config{NumNodes: 200, Pretrusted: []int{0, 1, 2}})
	e.Update(denseSnapshot(200))
	st := e.Stats()
	if !st.Converged {
		t.Fatalf("default config did not converge: %+v", st)
	}
	if st.Iterations <= 0 || st.Iterations >= e.cfg.MaxIter/2 {
		t.Errorf("iterations = %d, want in (0, %d): default config should converge well under the cap",
			st.Iterations, e.cfg.MaxIter/2)
	}
	if st.Residual >= e.cfg.Epsilon {
		t.Errorf("residual %g not below epsilon %g", st.Residual, e.cfg.Epsilon)
	}
	if st.Updates != 1 {
		t.Errorf("updates = %d, want 1", st.Updates)
	}
}

// TestMisconfiguredEpsilonHitsCap documents the failure mode the Stats
// accessor exists to expose: an unattainable Epsilon makes every update
// silently burn MaxIter iterations and report Converged == false.
func TestMisconfiguredEpsilonHitsCap(t *testing.T) {
	e := New(Config{NumNodes: 50, Epsilon: -1, MaxIter: 30})
	e.Update(denseSnapshot(50))
	st := e.Stats()
	if st.Converged {
		t.Fatal("negative epsilon cannot converge")
	}
	if st.Iterations != 30 {
		t.Errorf("iterations = %d, want the MaxIter cap 30", st.Iterations)
	}
	if st.Residual < 0 {
		t.Errorf("residual = %g, want >= 0", st.Residual)
	}
}

// TestStatsResetAndAccumulate checks Updates counts recomputations and Reset
// clears the stats.
func TestStatsResetAndAccumulate(t *testing.T) {
	e := New(Config{NumNodes: 20})
	e.Update(denseSnapshot(20))
	e.Update(denseSnapshot(20))
	if got := e.Stats().Updates; got != 2 {
		t.Errorf("updates = %d, want 2", got)
	}
	e.ResetNode(3)
	if got := e.Stats().Updates; got != 3 {
		t.Errorf("updates after ResetNode = %d, want 3", got)
	}
	e.Reset()
	if got := e.Stats(); got != (Stats{}) {
		t.Errorf("stats after Reset = %+v, want zero", got)
	}
}
