package eigentrust

import (
	"fmt"
	"sort"

	"socialtrust/internal/rating"
	"socialtrust/internal/reputation"
)

// Iterative is the EigenTrust variant the paper's evaluation actually runs:
// a per-cycle weighted feedback aggregation rather than a per-cycle solve to
// the power-iteration fixpoint. Section 5.3 describes it directly — "the
// ratings from nodes are weighted based on the reputations of the nodes",
// with ratings from pretrusted peers fixed at weight 0.5 — and Section 5.9's
// convergence measurements (reputations evolving over simulation cycles)
// only make sense for an iterative update.
//
// Each cycle:
//
//	raw_j = Σ_i weight(i) · s_ij        s_ij = cumulative rating sum i→j
//	weight(i) = 0.5 for pretrusted i, else max(R_i, BaseWeight)
//	R = raw clamped at 0 and normalized to ΣR = 1
//
// BaseWeight keeps brand-new raters from being voiceless forever (their
// reputation starts at 0); it is far below any earned reputation, so it does
// not distort the weighting the paper describes.
type Iterative struct {
	numNodes   int
	pretrusted map[int]bool
	pw         float64 // pretrusted rater weight (paper: 0.5)
	baseWeight float64

	sums map[rating.PairKey]float64
	in   map[int]map[int]float64 // ratee -> rater -> cumulative sum
	rep  []float64
}

// IterativeConfig parameterizes the paper-evaluation EigenTrust variant.
type IterativeConfig struct {
	NumNodes int
	// Pretrusted raters contribute with fixed weight PretrustedWeight
	// (default 0.5) regardless of their own current reputation.
	Pretrusted       []int
	PretrustedWeight float64
	// BaseWeight floors every rater's weight (default 1e-3).
	BaseWeight float64
}

// NewIterative builds the engine. It panics on invalid configuration.
func NewIterative(cfg IterativeConfig) *Iterative {
	if cfg.NumNodes <= 0 {
		panic("eigentrust: NumNodes must be positive")
	}
	if cfg.PretrustedWeight == 0 {
		cfg.PretrustedWeight = 0.5
	}
	if cfg.BaseWeight == 0 {
		// Far below a single node's share of the normalized vector at any
		// realistic population size: new raters have a whisper of a voice,
		// not enough for spam frequency to substitute for earned trust.
		cfg.BaseWeight = 1e-5
	}
	pre := make(map[int]bool, len(cfg.Pretrusted))
	for _, id := range cfg.Pretrusted {
		if id < 0 || id >= cfg.NumNodes {
			panic(fmt.Sprintf("eigentrust: pretrusted peer %d out of range", id))
		}
		pre[id] = true
	}
	e := &Iterative{
		numNodes:   cfg.NumNodes,
		pretrusted: pre,
		pw:         cfg.PretrustedWeight,
		baseWeight: cfg.BaseWeight,
	}
	e.Reset()
	return e
}

var _ reputation.Engine = (*Iterative)(nil)

// Name implements reputation.Engine.
func (e *Iterative) Name() string { return "EigenTrust" }

// Reset implements reputation.Engine.
func (e *Iterative) Reset() {
	e.sums = make(map[rating.PairKey]float64)
	e.in = make(map[int]map[int]float64)
	e.rep = make([]float64, e.numNodes)
}

// ResetNode implements reputation.Engine.
func (e *Iterative) ResetNode(node int) {
	if node < 0 || node >= e.numNodes {
		panic(fmt.Sprintf("eigentrust: node %d out of range", node))
	}
	for k := range e.sums {
		if k.Rater == node || k.Ratee == node {
			delete(e.sums, k)
		}
	}
	delete(e.in, node)
	for _, row := range e.in {
		delete(row, node)
	}
	e.rep[node] = 0
}

// Update implements reputation.Engine: absorb the interval and run one
// weighted aggregation pass.
func (e *Iterative) Update(snap rating.Snapshot) {
	for _, r := range snap.Ratings {
		k := rating.PairKey{Rater: r.Rater, Ratee: r.Ratee}
		e.sums[k] += r.Value
		row := e.in[r.Ratee]
		if row == nil {
			row = make(map[int]float64)
			e.in[r.Ratee] = row
		}
		row[r.Rater] = e.sums[k]
	}
	// Sum in-links in sorted rater order: floating-point addition is not
	// associative, and map-order summation would leak scheduling noise into
	// otherwise deterministic simulations.
	raw := make([]float64, e.numNodes)
	raters := make([]int, 0, 64)
	for ratee := 0; ratee < e.numNodes; ratee++ {
		row := e.in[ratee]
		if len(row) == 0 {
			continue
		}
		raters = raters[:0]
		for rater := range row {
			raters = append(raters, rater)
		}
		sort.Ints(raters)
		total := 0.0
		for _, rater := range raters {
			total += e.weight(rater) * row[rater]
		}
		raw[ratee] = total
	}
	e.rep = reputation.NormalizeScores(raw)
}

func (e *Iterative) weight(rater int) float64 {
	if e.pretrusted[rater] {
		return e.pw
	}
	if w := e.rep[rater]; w > e.baseWeight {
		return w
	}
	return e.baseWeight
}

// Reputations implements reputation.Engine.
func (e *Iterative) Reputations() []float64 {
	return append([]float64(nil), e.rep...)
}

// Reputation implements reputation.Engine.
func (e *Iterative) Reputation(node int) float64 {
	if node < 0 || node >= e.numNodes {
		panic(fmt.Sprintf("eigentrust: node %d out of range", node))
	}
	return e.rep[node]
}

// LocalTrust exposes the cumulative rating sum s_ij for tests.
func (e *Iterative) LocalTrust(i, j int) float64 {
	return e.sums[rating.PairKey{Rater: i, Ratee: j}]
}
