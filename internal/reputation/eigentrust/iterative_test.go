package eigentrust

import (
	"math"
	"testing"

	"socialtrust/internal/rating"
)

func TestIterativeValidation(t *testing.T) {
	for _, bad := range []IterativeConfig{
		{NumNodes: 0},
		{NumNodes: 3, Pretrusted: []int{7}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v should panic", bad)
				}
			}()
			NewIterative(bad)
		}()
	}
}

func TestIterativeInitialState(t *testing.T) {
	e := NewIterative(IterativeConfig{NumNodes: 3, Pretrusted: []int{0}})
	for _, v := range e.Reputations() {
		if v != 0 {
			t.Fatal("initial reputations should be zero")
		}
	}
	if e.Name() != "EigenTrust" {
		t.Fatal("Name mismatch")
	}
}

func TestIterativePretrustedRatingsCarryWeight(t *testing.T) {
	// A rating from a pretrusted peer (weight 0.5) must dominate one from
	// an unknown peer (BaseWeight).
	e := NewIterative(IterativeConfig{NumNodes: 4, Pretrusted: []int{0}})
	e.Update(rating.Snapshot{Ratings: []rating.Rating{
		{Rater: 0, Ratee: 1, Value: 1}, // pretrusted endorses node 1
		{Rater: 3, Ratee: 2, Value: 1}, // nobody endorses node 2's rater
	}})
	r := e.Reputations()
	if r[1] <= r[2] {
		t.Fatalf("pretrusted endorsement should dominate: %v", r)
	}
	if s := r[1] + r[2]; math.Abs(s-1) > 1e-9 {
		t.Fatalf("normalization broken: %v", r)
	}
}

func TestIterativeReputationWeightFeedback(t *testing.T) {
	// A rater that earned reputation in cycle 1 has a stronger voice in
	// cycle 2 than a zero-reputation rater issuing the same rating.
	e := NewIterative(IterativeConfig{NumNodes: 5, Pretrusted: []int{0}})
	e.Update(rating.Snapshot{Ratings: []rating.Rating{
		{Rater: 0, Ratee: 1, Value: 10}, // node 1 becomes reputable
	}})
	e.Update(rating.Snapshot{Ratings: []rating.Rating{
		{Rater: 1, Ratee: 2, Value: 1}, // reputable rater
		{Rater: 4, Ratee: 3, Value: 1}, // zero-reputation rater
	}})
	r := e.Reputations()
	if r[2] <= r[3] {
		t.Fatalf("reputable rater's rating should weigh more: %v", r)
	}
}

func TestIterativeNegativeFeedbackSuppresses(t *testing.T) {
	e := NewIterative(IterativeConfig{NumNodes: 4, Pretrusted: []int{0}})
	e.Update(rating.Snapshot{Ratings: []rating.Rating{
		{Rater: 0, Ratee: 1, Value: 5},
		{Rater: 0, Ratee: 2, Value: -5},
	}})
	r := e.Reputations()
	if r[2] != 0 {
		t.Fatalf("net-negative node reputation = %v, want 0", r[2])
	}
	if r[1] != 1 {
		t.Fatalf("endorsed node reputation = %v, want 1", r[1])
	}
}

func TestIterativeCollusionRunawayWithoutDefense(t *testing.T) {
	// PCM dynamics at good-behavior colluders: mutual high-frequency
	// ratings compound across cycles and overtake normal peers — the
	// weakness SocialTrust closes.
	const n = 20
	e := NewIterative(IterativeConfig{NumNodes: n, Pretrusted: []int{0}})
	for cycle := 0; cycle < 10; cycle++ {
		var rs []rating.Rating
		// Pretrusted and normal peers trade modest honest ratings.
		for i := 1; i < 18; i++ {
			rs = append(rs, rating.Rating{Rater: 0, Ratee: i, Value: 1})
			rs = append(rs, rating.Rating{Rater: i, Ratee: (i%17 + 1), Value: 1})
		}
		// Colluders 18, 19 also earn some honest inflow (B=0.6 behavior)...
		rs = append(rs, rating.Rating{Rater: 1, Ratee: 18, Value: 1})
		rs = append(rs, rating.Rating{Rater: 2, Ratee: 19, Value: 1})
		// ...and spam each other.
		for k := 0; k < 200; k++ {
			rs = append(rs, rating.Rating{Rater: 18, Ratee: 19, Value: 1})
			rs = append(rs, rating.Rating{Rater: 19, Ratee: 18, Value: 1})
		}
		e.Update(rating.Snapshot{Ratings: rs})
	}
	r := e.Reputations()
	maxNormal := 0.0
	for i := 1; i < 18; i++ {
		if r[i] > maxNormal {
			maxNormal = r[i]
		}
	}
	if r[18] <= maxNormal || r[19] <= maxNormal {
		t.Fatalf("colluders should overtake normal peers: colluders %v/%v, normal max %v",
			r[18], r[19], maxNormal)
	}
}

func TestIterativeSuppressedRatingsStopRunaway(t *testing.T) {
	// Same scenario, but collusion ratings pre-shrunk (as SocialTrust
	// would): colluders stay below normal peers.
	const n = 20
	e := NewIterative(IterativeConfig{NumNodes: n, Pretrusted: []int{0}})
	for cycle := 0; cycle < 10; cycle++ {
		var rs []rating.Rating
		for i := 1; i < 18; i++ {
			rs = append(rs, rating.Rating{Rater: 0, Ratee: i, Value: 1})
			rs = append(rs, rating.Rating{Rater: i, Ratee: (i%17 + 1), Value: 1})
		}
		for k := 0; k < 200; k++ {
			rs = append(rs, rating.Rating{Rater: 18, Ratee: 19, Value: 0.01})
			rs = append(rs, rating.Rating{Rater: 19, Ratee: 18, Value: 0.01})
		}
		e.Update(rating.Snapshot{Ratings: rs})
	}
	r := e.Reputations()
	minNormal := math.Inf(1)
	for i := 1; i < 18; i++ {
		if r[i] < minNormal {
			minNormal = r[i]
		}
	}
	if r[18] >= minNormal || r[19] >= minNormal {
		t.Fatalf("suppressed colluders should stay below normal peers: colluders %v/%v, normal min %v",
			r[18], r[19], minNormal)
	}
}

func TestIterativeReset(t *testing.T) {
	e := NewIterative(IterativeConfig{NumNodes: 3, Pretrusted: []int{0}})
	e.Update(rating.Snapshot{Ratings: []rating.Rating{{Rater: 0, Ratee: 1, Value: 1}}})
	e.Reset()
	for _, v := range e.Reputations() {
		if v != 0 {
			t.Fatal("Reset failed")
		}
	}
	if e.LocalTrust(0, 1) != 0 {
		t.Fatal("sums survived Reset")
	}
}

func TestIterativeReputationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewIterative(IterativeConfig{NumNodes: 2}).Reputation(5)
}
