package eigentrust

import (
	"sort"
	"testing"

	"socialtrust/internal/rating"
	"socialtrust/internal/xrand"
)

// referenceIterate is a verbatim port of the pre-CSR powerIterate: it
// rebuilds the transposed [][]entry matrix from scratch from the engine's
// outlink map and runs the same iteration, warm-starting from `start` (the
// engine warm-starts from its previous trust vector). The CSR path must
// reproduce its trust vector bit for bit.
func referenceIterate(e *Engine, start []float64) []float64 {
	type inEntry struct {
		from int
		c    float64
	}
	n := e.cfg.NumNodes
	in := make([][]inEntry, n)
	rowTotal := make([]float64, n)
	for i := 0; i < n; i++ {
		row := e.out[i]
		if len(row) == 0 {
			continue
		}
		ratees := make([]int, 0, len(row))
		for j := range row {
			ratees = append(ratees, j)
		}
		sort.Ints(ratees)
		total := 0.0
		for _, j := range ratees {
			total += row[j]
		}
		rowTotal[i] = total
		for _, j := range ratees {
			in[j] = append(in[j], inEntry{from: i, c: row[j] / total})
		}
	}

	a := e.cfg.PretrustWeight
	t := append([]float64(nil), start...)
	next := make([]float64, n)
	for iter := 0; iter < e.cfg.MaxIter; iter++ {
		dangling := 0.0
		for i := 0; i < n; i++ {
			if rowTotal[i] <= 0 {
				dangling += t[i]
			}
		}
		for j := 0; j < n; j++ {
			sum := 0.0
			for _, entry := range in[j] {
				sum += entry.c * t[entry.from]
			}
			next[j] = (1-a)*(sum+dangling*e.p[j]) + a*e.p[j]
		}
		diff := 0.0
		for i := range t {
			d := next[i] - t[i]
			if d < 0 {
				d = -d
			}
			diff += d
		}
		t, next = next, t
		if diff < e.cfg.Epsilon {
			break
		}
	}
	return t
}

func assertVectorsEqual(t *testing.T, got, want []float64, ctx string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", ctx, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] { // bitwise, no tolerance
			t.Fatalf("%s: node %d: csr=%v reference=%v", ctx, i, got[i], want[i])
		}
	}
}

// randomSnapshot builds a reproducible mixed-sign snapshot; positive and
// negative values exercise outlink insertion, update, and sign-flip
// removal.
func randomSnapshot(rng *xrand.Stream, n, ratings int) rating.Snapshot {
	var rs []rating.Rating
	for k := 0; k < ratings; k++ {
		i := rng.Intn(n)
		j := rng.Intn(n)
		if i == j {
			j = (j + 1) % n
		}
		rs = append(rs, rating.Rating{Rater: i, Ratee: j, Value: float64(rng.Intn(7)) - 3})
	}
	return rating.Snapshot{Ratings: rs}
}

func TestCSRMatchesReferenceAfterSingleUpdate(t *testing.T) {
	rng := xrand.New(7)
	for trial := 0; trial < 5; trial++ {
		e := New(Config{NumNodes: 60, Pretrusted: []int{0, 1}, Workers: 1})
		e.Update(randomSnapshot(rng, 60, 400))
		// A fresh engine's first iteration warm-starts from p.
		assertVectorsEqual(t, e.t, referenceIterate(e, e.p), "single update")
	}
}

// TestCSRMatchesReferenceAcrossUpdateSequence drives a long mixed sequence
// — updates that only change values (warm CSR), updates that change shape,
// and node resets — recomputing the reference fixpoint from the current
// outlinks after every step. Both iterations start each recompute from the
// previous fixpoint... the reference starts from p, so to compare fairly we
// re-run the engine's own iteration from p via Reset-free reconstruction:
// a second engine fed the same cumulative history from scratch.
func TestCSRMatchesReferenceAcrossUpdateSequence(t *testing.T) {
	rng := xrand.New(11)
	const n = 50
	e := New(Config{NumNodes: n, Pretrusted: []int{0, 1, 2}, Workers: 1})

	var history []rating.Snapshot
	for step := 0; step < 12; step++ {
		var snap rating.Snapshot
		if step%3 == 1 && len(history) > 0 {
			// Value-only step: repeat the previous snapshot's pairs with
			// positive deltas so no outlink appears or disappears.
			prev := history[len(history)-1]
			for _, r := range prev.Ratings {
				if r.Value > 0 {
					snap.Ratings = append(snap.Ratings, rating.Rating{Rater: r.Rater, Ratee: r.Ratee, Value: 1})
				}
			}
			if len(snap.Ratings) == 0 {
				snap = randomSnapshot(rng, n, 100)
			}
		} else {
			snap = randomSnapshot(rng, n, 100)
		}
		history = append(history, snap)
		e.Update(snap)

		// Fresh engine replaying the same history arrives at the same
		// outlink state with a freshly built matrix.
		f := New(Config{NumNodes: n, Pretrusted: []int{0, 1, 2}, Workers: 1})
		for _, s := range history {
			f.Update(s)
		}
		assertVectorsEqual(t, e.t, f.t, "replay divergence")
	}
}

// TestCSRValueRefreshOnly pins that a value-only update does not trigger a
// structural rebuild yet still lands on the right values.
func TestCSRValueRefreshOnly(t *testing.T) {
	e := New(Config{NumNodes: 10, Workers: 1})
	e.Update(rating.Snapshot{Ratings: []rating.Rating{
		{Rater: 0, Ratee: 1, Value: 2},
		{Rater: 1, Ratee: 2, Value: 3},
		{Rater: 2, Ratee: 0, Value: 1},
	}})
	if e.csr.shapeDirty || e.csr.valsDirty {
		t.Fatal("CSR left dirty after update")
	}
	fRowPtrBefore := append([]int32(nil), e.csr.fRowPtr...)

	// Same pairs again: values grow, shape unchanged. The engine warm-starts
	// from its current vector, so the reference must too.
	warm := e.Reputations()
	e.Update(rating.Snapshot{Ratings: []rating.Rating{
		{Rater: 0, Ratee: 1, Value: 5},
		{Rater: 1, Ratee: 2, Value: 1},
		{Rater: 2, Ratee: 0, Value: 4},
	}})
	for i, v := range e.csr.fRowPtr {
		if fRowPtrBefore[i] != v {
			t.Fatal("value-only update changed the CSR structure")
		}
	}
	assertVectorsEqual(t, e.t, referenceIterate(e, warm), "value refresh")

	// Sign flip removes an outlink: shape must rebuild.
	warm = e.Reputations()
	e.Update(rating.Snapshot{Ratings: []rating.Rating{
		{Rater: 0, Ratee: 1, Value: -100},
	}})
	if _, ok := e.out[0]; ok {
		t.Fatal("sign flip did not remove the outlink row")
	}
	assertVectorsEqual(t, e.t, referenceIterate(e, warm), "after shape change")
}

// TestResetNodeDualRole is the regression for the ResetNode rewrite: a node
// that is simultaneously rater and ratee must have both roles forgotten,
// and the surviving trust structure must match a from-scratch engine that
// never saw the node's ratings.
func TestResetNodeDualRole(t *testing.T) {
	cfg := Config{NumNodes: 6, Workers: 1}
	e := New(cfg)
	full := []rating.Rating{
		{Rater: 0, Ratee: 1, Value: 4},
		{Rater: 1, Ratee: 2, Value: 3}, // node 1 as rater
		{Rater: 2, Ratee: 1, Value: 2}, // node 1 as ratee
		{Rater: 1, Ratee: 0, Value: 5},
		{Rater: 3, Ratee: 4, Value: 2},
		{Rater: 4, Ratee: 3, Value: 1},
	}
	e.Update(rating.Snapshot{Ratings: full})
	warm := e.Reputations()
	e.ResetNode(1)

	if e.LocalTrust(1, 2) != 0 || e.LocalTrust(2, 1) != 0 || e.LocalTrust(1, 0) != 0 || e.LocalTrust(0, 1) != 0 {
		t.Fatal("ResetNode left local trust involving the node")
	}
	if e.LocalTrust(3, 4) != 2 {
		t.Fatal("ResetNode clobbered unrelated local trust")
	}

	// Bitwise: the reference rebuild over the surviving outlinks,
	// warm-started like the engine, must agree exactly.
	assertVectorsEqual(t, e.t, referenceIterate(e, warm), "post-ResetNode")

	// And the fixpoint must agree (within convergence epsilon) with a fresh
	// engine that never saw node 1's pairs.
	f := New(cfg)
	var survivors []rating.Rating
	for _, r := range full {
		if r.Rater != 1 && r.Ratee != 1 {
			survivors = append(survivors, r)
		}
	}
	f.Update(rating.Snapshot{Ratings: survivors})
	for i := range f.t {
		if d := e.t[i] - f.t[i]; d > 1e-8 || d < -1e-8 {
			t.Fatalf("post-ResetNode fixpoint diverges at node %d: %v vs %v", i, e.t[i], f.t[i])
		}
	}
}

// TestCSRRebuildReusesBuffers pins the allocation contract: on a static
// graph (same outlink shape), repeated Adjust-style recomputes must not
// reallocate the CSR arrays.
func TestCSRRebuildReusesBuffers(t *testing.T) {
	e := New(Config{NumNodes: 100, Workers: 1})
	rng := xrand.New(3)
	e.Update(randomSnapshot(rng, 100, 600))
	col := &e.csr.tCol[0]
	for k := 0; k < 5; k++ {
		// Positive re-ratings of existing pairs: value refresh only.
		var rs []rating.Rating
		for pk := range e.sums {
			if e.sums[pk] > 0 {
				rs = append(rs, rating.Rating{Rater: pk.Rater, Ratee: pk.Ratee, Value: 1})
			}
		}
		e.Update(rating.Snapshot{Ratings: rs})
	}
	if col != &e.csr.tCol[0] {
		t.Fatal("value-only updates reallocated the CSR column array")
	}
}
