package eigentrust

import (
	"testing"

	"socialtrust/internal/rating"
	"socialtrust/internal/xrand"
)

// TestQuietUpdateSkipsIteration pins the warm-start skip: an update that
// leaves every local trust sum unchanged runs zero iterations and returns
// the previous vector bit for bit.
func TestQuietUpdateSkipsIteration(t *testing.T) {
	e := New(Config{NumNodes: 20, Pretrusted: []int{0}, Workers: 1})
	rng := xrand.New(5)
	e.Update(randomSnapshot(rng, 20, 120))
	if !e.Stats().Converged {
		t.Fatal("setup: first update did not converge")
	}
	before := e.Reputations()
	updates := e.Stats().Updates

	// An empty interval and a zero-valued rating both leave the sums —
	// and therefore the matrix — untouched.
	for _, snap := range []rating.Snapshot{
		{},
		{Ratings: []rating.Rating{{Rater: 3, Ratee: 4, Value: 0}}},
	} {
		e.Update(snap)
		st := e.Stats()
		if !st.Skipped || st.Iterations != 0 {
			t.Fatalf("quiet update ran %d iterations (Skipped=%v)", st.Iterations, st.Skipped)
		}
		if !st.Converged {
			t.Fatal("skip must preserve Converged")
		}
		updates++
		if st.Updates != updates {
			t.Fatalf("Updates = %d, want %d", st.Updates, updates)
		}
		assertVectorsEqual(t, e.Reputations(), before, "quiet update")
	}

	// The next real change must clear Skipped and iterate again. A large
	// positive value guarantees the pair's clamped positive part changes
	// whatever sign its prior sum had.
	e.Update(rating.Snapshot{Ratings: []rating.Rating{{Rater: 1, Ratee: 2, Value: 100}}})
	if st := e.Stats(); st.Skipped || st.Iterations == 0 {
		t.Fatalf("real update skipped (Skipped=%v, Iterations=%d)", st.Skipped, st.Iterations)
	}
}

// TestNoSkipWhenUnconverged pins the guard: a vector stopped by the MaxIter
// cap is not a fixpoint, so even a quiet interval keeps iterating.
func TestNoSkipWhenUnconverged(t *testing.T) {
	e := New(Config{NumNodes: 20, Pretrusted: []int{0}, Workers: 1, MaxIter: 1})
	rng := xrand.New(6)
	e.Update(randomSnapshot(rng, 20, 120))
	if e.Stats().Converged {
		t.Fatal("setup: MaxIter=1 unexpectedly converged")
	}
	e.Update(rating.Snapshot{})
	if st := e.Stats(); st.Skipped || st.Iterations == 0 {
		t.Fatalf("unconverged quiet update skipped (Skipped=%v, Iterations=%d)", st.Skipped, st.Iterations)
	}
}

// TestIncrementalMatchesFullRecomputeCSR drives a mixed update sequence —
// value-only intervals (dirty-row refresh), shape changes (rebuild), quiet
// intervals (skip), and node resets — through an incremental engine and a
// FullRecompute reference in lockstep, asserting the trust vectors stay
// bitwise identical at every step.
func TestIncrementalMatchesFullRecomputeCSR(t *testing.T) {
	const n = 50
	inc := New(Config{NumNodes: n, Pretrusted: []int{0, 1}, Workers: 1})
	ref := New(Config{NumNodes: n, Pretrusted: []int{0, 1}, Workers: 1, FullRecompute: true})
	rng := xrand.New(13)

	for step := 0; step < 15; step++ {
		var snap rating.Snapshot
		switch step % 5 {
		case 1:
			// Value-only: positive deltas on existing positive pairs.
			for pk, v := range inc.sums {
				if v > 0 {
					snap.Ratings = append(snap.Ratings, rating.Rating{Rater: pk.Rater, Ratee: pk.Ratee, Value: 1})
				}
			}
		case 3:
			// Quiet interval.
		default:
			snap = randomSnapshot(rng, n, 100)
		}
		inc.Update(snap)
		ref.Update(snap)
		if inc.Stats().Skipped != ref.Stats().Skipped {
			t.Fatalf("step %d: skip disagreement (inc=%v ref=%v)", step, inc.Stats().Skipped, ref.Stats().Skipped)
		}
		assertVectorsEqual(t, inc.t, ref.t, "incremental vs FullRecompute")
		if step == 9 {
			inc.ResetNode(7)
			ref.ResetNode(7)
			assertVectorsEqual(t, inc.t, ref.t, "after ResetNode")
		}
	}
}

// TestDirtyRowRefreshTouchesOnlyDirtyRows pins the mechanism itself: a
// value-only update refreshes just the changed rows (the dirty set drains)
// without a structural rebuild.
func TestDirtyRowRefreshTouchesOnlyDirtyRows(t *testing.T) {
	e := New(Config{NumNodes: 10, Workers: 1})
	e.Update(rating.Snapshot{Ratings: []rating.Rating{
		{Rater: 0, Ratee: 1, Value: 2},
		{Rater: 1, Ratee: 2, Value: 3},
		{Rater: 2, Ratee: 0, Value: 1},
	}})
	warm := e.Reputations()
	e.Update(rating.Snapshot{Ratings: []rating.Rating{
		{Rater: 0, Ratee: 1, Value: 5}, // only row 0 changes value
	}})
	if len(e.csr.dirtyRows) != 0 {
		t.Fatalf("dirty set not drained: %v", e.csr.dirtyRows)
	}
	if e.csr.rowDirty[0] {
		t.Fatal("rowDirty[0] not cleared after refresh")
	}
	assertVectorsEqual(t, e.t, referenceIterate(e, warm), "dirty-row refresh")
}
