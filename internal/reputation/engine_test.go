package reputation

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNormalizeScoresBasic(t *testing.T) {
	out := NormalizeScores([]float64{1, 3, 0})
	if out[0] != 0.25 || out[1] != 0.75 || out[2] != 0 {
		t.Fatalf("NormalizeScores = %v", out)
	}
}

func TestNormalizeScoresClampsNegatives(t *testing.T) {
	out := NormalizeScores([]float64{-5, 2, 2})
	if out[0] != 0 {
		t.Fatalf("negative score normalized to %v, want 0", out[0])
	}
	if out[1] != 0.5 || out[2] != 0.5 {
		t.Fatalf("NormalizeScores = %v", out)
	}
}

func TestNormalizeScoresAllZeroOrNegative(t *testing.T) {
	for _, in := range [][]float64{{0, 0}, {-1, -2}, {}} {
		out := NormalizeScores(in)
		for i, v := range out {
			if v != 0 {
				t.Fatalf("NormalizeScores(%v)[%d] = %v, want 0", in, i, v)
			}
		}
	}
}

func TestNormalizeScoresProperty(t *testing.T) {
	f := func(raw []float64) bool {
		clean := make([]float64, 0, len(raw))
		anyPos := false
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				continue
			}
			clean = append(clean, v)
			if v > 0 {
				anyPos = true
			}
		}
		out := NormalizeScores(clean)
		sum := 0.0
		for _, v := range out {
			if v < 0 {
				return false
			}
			sum += v
		}
		if !anyPos {
			return sum == 0
		}
		return math.Abs(sum-1) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
