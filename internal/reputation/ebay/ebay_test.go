package ebay

import (
	"math"
	"testing"
	"testing/quick"

	"socialtrust/internal/rating"
)

func snap(rs ...rating.Rating) rating.Snapshot {
	return rating.Snapshot{Ratings: rs}
}

func TestNewPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(0)
}

func TestName(t *testing.T) {
	if New(2).Name() != "eBay" {
		t.Fatal("Name mismatch")
	}
}

func TestSingleRatingAccumulates(t *testing.T) {
	e := New(3)
	e.Update(snap(rating.Rating{Rater: 0, Ratee: 1, Value: 1}))
	if got := e.RawScore(1); got != 1 {
		t.Fatalf("RawScore = %v, want 1", got)
	}
	r := e.Reputations()
	if r[1] != 1 || r[0] != 0 {
		t.Fatalf("Reputations = %v", r)
	}
}

func TestFrequencyDeduplication(t *testing.T) {
	// The defining eBay property: 100 positive ratings from one rater in
	// one interval contribute exactly as much as 1.
	spam, single := New(3), New(3)
	var rs []rating.Rating
	for k := 0; k < 100; k++ {
		rs = append(rs, rating.Rating{Rater: 0, Ratee: 1, Value: 1})
	}
	spam.Update(snap(rs...))
	single.Update(snap(rating.Rating{Rater: 0, Ratee: 1, Value: 1}))
	if spam.RawScore(1) != single.RawScore(1) {
		t.Fatalf("spam %v vs single %v: dedup failed", spam.RawScore(1), single.RawScore(1))
	}
}

func TestDistinctRatersStack(t *testing.T) {
	e := New(4)
	e.Update(snap(
		rating.Rating{Rater: 0, Ratee: 3, Value: 1},
		rating.Rating{Rater: 1, Ratee: 3, Value: 1},
		rating.Rating{Rater: 2, Ratee: 3, Value: 1},
	))
	if got := e.RawScore(3); got != 3 {
		t.Fatalf("RawScore = %v, want 3 (one per distinct rater)", got)
	}
}

func TestMixedFeedbackNetSign(t *testing.T) {
	// 2 positive + 1 negative raw ratings in one interval: net-positive →
	// the full +1 weekly feedback unit ("more authentic than inauthentic").
	e := New(2)
	e.Update(snap(
		rating.Rating{Rater: 0, Ratee: 1, Value: 1},
		rating.Rating{Rater: 0, Ratee: 1, Value: 1},
		rating.Rating{Rater: 0, Ratee: 1, Value: -1},
	))
	if got := e.RawScore(1); got != 1 {
		t.Fatalf("RawScore = %v, want 1", got)
	}
	// Net-negative interval → −1.
	e.Update(snap(
		rating.Rating{Rater: 0, Ratee: 1, Value: -1},
		rating.Rating{Rater: 0, Ratee: 1, Value: -1},
		rating.Rating{Rater: 0, Ratee: 1, Value: 1},
	))
	if got := e.RawScore(1); got != 0 {
		t.Fatalf("after net-negative interval RawScore = %v, want 0", got)
	}
	// Perfectly balanced interval contributes nothing.
	e.Update(snap(
		rating.Rating{Rater: 0, Ratee: 1, Value: 1},
		rating.Rating{Rater: 0, Ratee: 1, Value: -1},
	))
	if got := e.RawScore(1); got != 0 {
		t.Fatalf("balanced interval RawScore = %v, want 0", got)
	}
}

func TestContributionClamped(t *testing.T) {
	e := New(2)
	e.Update(snap(rating.Rating{Rater: 0, Ratee: 1, Value: 50}))
	if got := e.RawScore(1); got != 1 {
		t.Fatalf("clamped contribution = %v, want 1", got)
	}
	e.Update(snap(rating.Rating{Rater: 0, Ratee: 1, Value: -50}))
	if got := e.RawScore(1); got != 0 {
		t.Fatalf("after negative clamp RawScore = %v, want 0", got)
	}
}

func TestAdjustedValuesPassThrough(t *testing.T) {
	// SocialTrust-shrunk ratings contribute their shrunk magnitude.
	e := New(2)
	e.Update(snap(
		rating.Rating{Rater: 0, Ratee: 1, Value: 0.01},
		rating.Rating{Rater: 0, Ratee: 1, Value: 0.01},
	))
	if got := e.RawScore(1); math.Abs(got-0.01) > 1e-12 {
		t.Fatalf("RawScore = %v, want 0.01", got)
	}
}

func TestAccumulatesAcrossIntervals(t *testing.T) {
	e := New(2)
	for k := 0; k < 5; k++ {
		e.Update(snap(rating.Rating{Rater: 0, Ratee: 1, Value: 1}))
	}
	if got := e.RawScore(1); got != 5 {
		t.Fatalf("RawScore = %v, want 5 (one per interval)", got)
	}
}

func TestNegativeScoreYieldsZeroReputation(t *testing.T) {
	e := New(3)
	e.Update(snap(
		rating.Rating{Rater: 0, Ratee: 1, Value: -1},
		rating.Rating{Rater: 0, Ratee: 2, Value: 1},
	))
	r := e.Reputations()
	if r[1] != 0 {
		t.Fatalf("negative node reputation = %v, want 0", r[1])
	}
	if r[2] != 1 {
		t.Fatalf("positive node reputation = %v, want 1", r[2])
	}
}

func TestReset(t *testing.T) {
	e := New(2)
	e.Update(snap(rating.Rating{Rater: 0, Ratee: 1, Value: 1}))
	e.Reset()
	if e.RawScore(1) != 0 {
		t.Fatal("Reset failed")
	}
}

func TestReputationPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2).Reputation(9)
}

func TestReputationsNormalizedProperty(t *testing.T) {
	f := func(events []uint16) bool {
		const n = 7
		e := New(n)
		var rs []rating.Rating
		anyPositive := false
		for _, ev := range events {
			i, j := int(ev%n), int((ev/n)%n)
			if i == j {
				continue
			}
			v := float64(int(ev%5) - 2)
			rs = append(rs, rating.Rating{Rater: i, Ratee: j, Value: v})
			if v > 0 {
				anyPositive = true
			}
		}
		e.Update(snap(rs...))
		total := 0.0
		for _, v := range e.Reputations() {
			if v < 0 || math.IsNaN(v) {
				return false
			}
			total += v
		}
		if !anyPositive {
			return total == 0 || math.Abs(total-1) < 1e-9
		}
		return math.Abs(total-1) < 1e-9 || total == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestResetNode(t *testing.T) {
	e := New(3)
	e.Update(snap(rating.Rating{Rater: 0, Ratee: 1, Value: 1}))
	e.ResetNode(1)
	if e.RawScore(1) != 0 {
		t.Fatal("score survived ResetNode")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range ResetNode should panic")
		}
	}()
	e.ResetNode(9)
}
