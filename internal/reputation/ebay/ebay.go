// Package ebay implements the eBay-style reputation baseline of the paper's
// evaluation.
//
// eBay's defining property against rating-frequency attacks is per-interval
// deduplication: "no matter how frequently a node rates the other node in a
// simulation cycle, eBay only counts all the ratings as one rating". Each
// (rater, ratee) pair contributes at most one unit of feedback per interval:
// the sign of the rater's net feedback ("whether the node offers more
// authentic files than inauthentic files in each simulation cycle"), scaled
// by the mean rating magnitude so that values shrunk by a collusion filter
// contribute only their shrunk weight instead of rounding back up to a full
// ±1. Scores accumulate across intervals and are normalized to Ri/ΣRk as in
// the paper.
package ebay

import (
	"fmt"
	"math"
	"sort"

	"socialtrust/internal/rating"
	"socialtrust/internal/reputation"
)

// Engine is an eBay-style accumulator. Not safe for concurrent mutation.
type Engine struct {
	numNodes int
	scores   []float64
}

// New creates an eBay engine for numNodes peers.
func New(numNodes int) *Engine {
	if numNodes <= 0 {
		panic("ebay: NumNodes must be positive")
	}
	return &Engine{numNodes: numNodes, scores: make([]float64, numNodes)}
}

// Name implements reputation.Engine.
func (e *Engine) Name() string { return "eBay" }

// Reset implements reputation.Engine.
func (e *Engine) Reset() { e.scores = make([]float64, e.numNodes) }

// ResetNode implements reputation.Engine: the node's accumulated feedback
// score is forgotten. (eBay keys nothing on the rater side across
// intervals, so there is no issued-rating state to clear.)
func (e *Engine) ResetNode(node int) {
	if node < 0 || node >= e.numNodes {
		panic(fmt.Sprintf("ebay: node %d out of range", node))
	}
	e.scores[node] = 0
}

// Update folds one interval: each (rater, ratee) pair contributes the mean
// of its rating values this interval, clamped to [−1, +1].
func (e *Engine) Update(snap rating.Snapshot) {
	type agg struct {
		sum    float64
		absSum float64
		n      int
	}
	pairs := make(map[rating.PairKey]*agg, len(snap.Counts))
	for _, r := range snap.Ratings {
		k := rating.PairKey{Rater: r.Rater, Ratee: r.Ratee}
		a := pairs[k]
		if a == nil {
			a = &agg{}
			pairs[k] = a
		}
		a.sum += r.Value
		a.absSum += math.Abs(r.Value)
		a.n++
	}
	// Apply contributions in sorted pair order so float accumulation is
	// deterministic regardless of map iteration.
	keys := make([]rating.PairKey, 0, len(pairs))
	for k := range pairs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Ratee != keys[j].Ratee {
			return keys[i].Ratee < keys[j].Ratee
		}
		return keys[i].Rater < keys[j].Rater
	})
	for _, k := range keys {
		a := pairs[k]
		e.scores[k.Ratee] += contribution(a.sum, a.absSum, a.n)
	}
}

// Reputations implements reputation.Engine.
func (e *Engine) Reputations() []float64 {
	return reputation.NormalizeScores(e.scores)
}

// Reputation implements reputation.Engine.
func (e *Engine) Reputation(node int) float64 {
	if node < 0 || node >= e.numNodes {
		panic(fmt.Sprintf("ebay: node %d out of range", node))
	}
	return e.Reputations()[node]
}

// RawScore exposes the unnormalized accumulated feedback score.
func (e *Engine) RawScore(node int) float64 { return e.scores[node] }

// State is the engine's complete persistent state: the accumulated raw
// feedback scores.
type State struct {
	Scores []float64
}

// ExportState deep-copies the engine state for snapshotting.
func (e *Engine) ExportState() State {
	return State{Scores: append([]float64(nil), e.scores...)}
}

// ImportState restores a previously exported state bit-exactly.
func (e *Engine) ImportState(st State) {
	if len(st.Scores) != e.numNodes {
		panic(fmt.Sprintf("ebay: state with %d scores imported into %d-node engine", len(st.Scores), e.numNodes))
	}
	e.scores = append(e.scores[:0], st.Scores...)
}

// contribution is one rater's deduplicated feedback for the interval:
// the sign of the rater's net feedback, scaled by the mean rating magnitude
// capped at 1. For raw ±1 ratings this is the pure eBay weekly sign (+1 when
// the ratee served the rater more authentic than inauthentic content);
// ratings shrunk by a collusion filter contribute only their shrunk
// magnitude, so down-weighted spam cannot round back up to a full +1.
func contribution(sum, absSum float64, n int) float64 {
	if n == 0 || sum == 0 {
		return 0
	}
	mag := absSum / float64(n)
	if mag > 1 {
		mag = 1
	}
	if sum < 0 {
		return -mag
	}
	return mag
}
