package cluster

import "socialtrust/internal/obs"

// Cluster transport metrics. Both sides of the wire record into their own
// process's registry: the coordinator's client and the worker daemon each
// expose the same families, so a fleet-wide dashboard sums them per process.
var (
	mBytesSent  = obs.C("cluster_bytes_sent_total")
	mBytesRecv  = obs.C("cluster_bytes_received_total")
	mFramesSent = obs.C("cluster_frames_sent_total")
	mFramesRecv = obs.C("cluster_frames_received_total")
	mInflight   = obs.G("cluster_inflight_batches")
	mReconnects = obs.C("cluster_reconnects_total")
	mRespawns   = obs.C("cluster_worker_respawns_total")
	mEncodeLat  = obs.H("cluster_encode_seconds")
	mDecodeLat  = obs.H("cluster_decode_seconds")
)

// WireStats returns this process's cumulative transport byte counters
// (frame headers included) — the numerator of a wire-bytes-per-rating figure.
// Counters only advance while obs recording is enabled.
func WireStats() (sent, received int64) {
	return mBytesSent.Value(), mBytesRecv.Value()
}

func init() {
	obs.Help("cluster_bytes_sent_total", "Bytes written to cluster transport connections (frame headers included).")
	obs.Help("cluster_bytes_received_total", "Bytes read from cluster transport connections (frame headers included).")
	obs.Help("cluster_frames_sent_total", "Frames written to cluster transport connections.")
	obs.Help("cluster_frames_received_total", "Frames read from cluster transport connections.")
	obs.Help("cluster_inflight_batches", "Requests currently awaiting a reply on cluster connections (pipelining depth).")
	obs.Help("cluster_reconnects_total", "Reconnect attempts after a cluster connection failure.")
	obs.Help("cluster_worker_respawns_total", "Worker processes respawned by the cluster spawner after an unexpected exit.")
	obs.Help("cluster_encode_seconds", "Wall time encoding one cluster frame (payload build plus framing).")
	obs.Help("cluster_decode_seconds", "Wall time decoding one cluster frame payload.")
}
