package cluster

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"socialtrust/internal/manager"
	"socialtrust/internal/obs"
	"socialtrust/internal/persist"
	"socialtrust/internal/rating"
)

// TestMain hosts the worker side: Spawn re-executes this test binary with
// SOCIALTRUST_SHARDD_LISTEN set, and WorkerMainIfChild turns that child into
// a shard daemon instead of a second test run.
func TestMain(m *testing.M) {
	WorkerMainIfChild()
	obs.Enable() // so the cluster_* counters assertions can observe traffic
	os.Exit(m.Run())
}

// healthBase derives a per-run port base so parallel CI jobs don't collide.
func healthBase() int { return 20000 + os.Getpid()%10000 }

func spawnTest(t *testing.T, opts SpawnOptions) *ProcCluster {
	t.Helper()
	pc, err := Spawn(opts)
	if err != nil {
		t.Fatalf("Spawn: %v", err)
	}
	t.Cleanup(func() { _ = pc.Close() })
	return pc
}

func mustStart(t *testing.T, cl *Client, numNodes int, replicated bool, reps []float64) {
	t.Helper()
	if err := cl.Start(numNodes, replicated, reps); err != nil {
		t.Fatalf("client Start: %v", err)
	}
}

func mkRatings(n, base int, seqStart uint64) []rating.Rating {
	rs := make([]rating.Rating, n)
	for i := range rs {
		v := 1.0
		if i%5 == 0 {
			v = -1
		}
		rs[i] = rating.Rating{
			Rater: (base + i) % 16, Ratee: (base + i + 1) % 16,
			Value: v, Cycle: i % 3, Category: i % 4, Seq: seqStart + uint64(i),
		}
	}
	return rs
}

func sortBySeq(rs []rating.Rating) {
	sort.Slice(rs, func(i, j int) bool { return rs[i].Seq < rs[j].Seq })
}

// TestClusterEndToEnd drives the full transport surface against real worker
// processes: handshake, pipelined plain submits, drain snapshots, reputation
// broadcast, WAL marks and compaction.
func TestClusterEndToEnd(t *testing.T) {
	pc := spawnTest(t, SpawnOptions{Workers: 2, Shards: 4, StateDir: t.TempDir(), NoRespawn: true})
	cl := pc.Client()
	reps := make([]float64, 16)
	for i := range reps {
		reps[i] = 1.0 / 16
	}
	mustStart(t, cl, 16, false, reps)

	// Pipelined submission: send to every shard first, collect second — the
	// overlap the overlay's submitBatchDirect relies on.
	want := make(map[int][]rating.Rating)
	var waits []func() ([]error, error)
	var seq uint64
	for s := 0; s < 4; s++ {
		for b := 0; b < 3; b++ {
			rs := mkRatings(10, s*100+b, seq+1)
			seq += uint64(len(rs))
			want[s] = append(want[s], rs...)
			waits = append(waits, cl.Shard(s).SubmitPlain(rs))
		}
	}
	for i, wait := range waits {
		errs, err := wait()
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		for _, e := range errs {
			if e != nil {
				t.Fatalf("submit %d entry error: %v", i, e)
			}
		}
	}

	for s := 0; s < 4; s++ {
		ds, err := cl.Shard(s).Drain(0)
		if err != nil {
			t.Fatalf("drain shard %d: %v", s, err)
		}
		if ds.HasReplica {
			t.Fatalf("shard %d: replica snapshot on an unreplicated overlay", s)
		}
		got := ds.Primary.Ratings
		sortBySeq(got)
		exp := want[s]
		sortBySeq(exp)
		if len(got) != len(exp) {
			t.Fatalf("shard %d: drained %d ratings, want %d", s, len(got), len(exp))
		}
		for i := range got {
			if got[i] != exp[i] {
				t.Fatalf("shard %d rating %d: got %+v want %+v", s, i, got[i], exp[i])
			}
		}
		// The snapshot's recomputed pair counters must match the ledger rule.
		for key, c := range ds.Primary.Counts {
			var pos, neg int
			for _, r := range exp {
				if r.Rater == key.Rater && r.Ratee == key.Ratee {
					if r.Value > 0 {
						pos++
					} else if r.Value < 0 {
						neg++
					}
				}
			}
			if c.Positive != pos || c.Negative != neg {
				t.Fatalf("shard %d pair %+v: counts %+v, want +%d -%d", s, key, c, pos, neg)
			}
		}
	}

	// Lifecycle ops answer OK end to end.
	for s := 0; s < 4; s++ {
		sc := cl.Shard(s)
		if err := sc.UpdateReps(reps, time.Second); err != nil {
			t.Fatalf("UpdateReps shard %d: %v", s, err)
		}
		if err := sc.Mark(1); err != nil {
			t.Fatalf("Mark shard %d: %v", s, err)
		}
		if err := sc.CompactWAL(seq); err != nil {
			t.Fatalf("CompactWAL shard %d: %v", s, err)
		}
	}

	// An empty interval drains to an empty snapshot.
	ds, err := cl.Shard(0).Drain(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Primary.Ratings) != 0 {
		t.Fatalf("second drain returned %d ratings, want 0", len(ds.Primary.Ratings))
	}
}

// TestClusterFateBits checks the fault-mode entry routing: replica entries
// land in the mirror ledger, deferred entries surface only at the drain.
func TestClusterFateBits(t *testing.T) {
	pc := spawnTest(t, SpawnOptions{Workers: 1, Shards: 1, NoRespawn: true})
	cl := pc.Client()
	mustStart(t, cl, 16, true, make([]float64, 16))

	sc := cl.Shard(0)
	primary := mkRatings(4, 0, 1)
	replica := mkRatings(3, 20, 101)
	deferred := mkRatings(2, 40, 201)
	var entries []manager.BatchEntry
	for _, r := range primary {
		entries = append(entries, manager.BatchEntry{R: r})
	}
	for _, r := range replica {
		entries = append(entries, manager.BatchEntry{R: r, Replica: true})
	}
	for _, r := range deferred {
		entries = append(entries, manager.BatchEntry{R: r, Deferred: true})
	}
	errs, err := sc.SubmitEntries(entries, time.Second)()
	if err != nil {
		t.Fatalf("SubmitEntries: %v", err)
	}
	for i, e := range errs {
		if e != nil {
			t.Fatalf("entry %d: %v", i, e)
		}
	}
	ds, err := sc.Drain(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !ds.HasReplica {
		t.Fatal("replicated drain carried no replica snapshot")
	}
	if got, wantN := len(ds.Primary.Ratings), len(primary)+len(deferred); got != wantN {
		t.Fatalf("primary snapshot has %d ratings, want %d (primary+deferred)", got, wantN)
	}
	if got := len(ds.Replica.Ratings); got != len(replica) {
		t.Fatalf("replica snapshot has %d ratings, want %d", got, len(replica))
	}
}

// TestClusterRejectsOutOfRange: a worker must fail malformed node IDs
// per-entry (never panic), leaving the valid entries applied.
func TestClusterRejectsOutOfRange(t *testing.T) {
	pc := spawnTest(t, SpawnOptions{Workers: 1, Shards: 1, NoRespawn: true})
	cl := pc.Client()
	mustStart(t, cl, 8, false, make([]float64, 8))

	rs := []rating.Rating{
		{Rater: 1, Ratee: 2, Value: 1, Seq: 1},
		{Rater: 99, Ratee: 2, Value: 1, Seq: 2}, // out of range
		{Rater: 3, Ratee: 4, Value: 1, Seq: 3},
	}
	errs, err := cl.Shard(0).SubmitPlain(rs)()
	if err != nil {
		t.Fatalf("SubmitPlain: %v", err)
	}
	if len(errs) != 3 || errs[0] != nil || errs[1] == nil || errs[2] != nil {
		t.Fatalf("per-entry errors %v, want only index 1 failed", errs)
	}
	ds, err := cl.Shard(0).Drain(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Primary.Ratings) != 2 {
		t.Fatalf("drained %d ratings, want the 2 valid ones", len(ds.Primary.Ratings))
	}
}

// TestWorkerGracefulDrainSIGTERM is the drain contract end to end: on
// SIGTERM the worker finishes and answers everything it received, flips
// /readyz to 503 for the linger window, syncs its WALs, and exits 0 — and
// every acknowledged sequence number is durable in its WAL afterwards.
func TestWorkerGracefulDrainSIGTERM(t *testing.T) {
	stateDir := t.TempDir()
	hb := healthBase()
	pc := spawnTest(t, SpawnOptions{
		Workers: 1, Shards: 2, StateDir: stateDir,
		HealthBase: hb, NoRespawn: true, Linger: 1500 * time.Millisecond,
	})
	cl := pc.Client()
	mustStart(t, cl, 16, false, make([]float64, 16))

	// A background submitter keeps batches in flight so the SIGTERM lands
	// mid-stream; ackedSeq tracks the durability obligation.
	var ackedSeq atomic.Uint64
	subDone := make(chan struct{})
	go func() {
		defer close(subDone)
		var seq uint64
		for round := 0; ; round++ {
			rs := mkRatings(8, round, seq+1)
			seq += uint64(len(rs))
			errs, err := cl.Shard(round % 2).SubmitPlain(rs)()
			if err != nil {
				return // connection died: the drain cut us off
			}
			for _, e := range errs {
				if e != nil {
					return
				}
			}
			ackedSeq.Store(seq)
		}
	}()

	// Let some acknowledgements accumulate before pulling the trigger.
	deadline := time.Now().Add(5 * time.Second)
	for ackedSeq.Load() < 64 {
		if time.Now().After(deadline) {
			t.Fatal("no acknowledgements within 5s")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := pc.Kill(0, syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}

	// During the linger window the process is alive but not ready.
	readyURL := fmt.Sprintf("http://127.0.0.1:%d/readyz", hb)
	saw503 := false
	for i := 0; i < 100 && !saw503; i++ {
		resp, err := http.Get(readyURL)
		if err == nil {
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusServiceUnavailable {
				saw503 = true
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !saw503 {
		t.Error("never observed /readyz -> 503 during the drain linger window")
	}

	code, err := pc.WaitExit(0, 10*time.Second)
	if err != nil {
		t.Fatalf("worker did not exit: %v", err)
	}
	if code != 0 {
		t.Fatalf("drained worker exited %d, want 0", code)
	}
	_ = cl.Close() // fail any in-flight call so the submitter unblocks
	<-subDone

	// Every acknowledged sequence must be in the worker's WALs.
	acked := ackedSeq.Load()
	if acked == 0 {
		t.Fatal("no ratings acknowledged before SIGTERM")
	}
	durable := make(map[uint64]bool)
	var maxDurable uint64
	for shard := 0; shard < 2; shard++ {
		path := filepath.Join(stateDir, "worker-0", fmt.Sprintf("shard-%d.wal", shard))
		wal, rec, err := persist.Open(path, persist.Options{})
		if err != nil {
			t.Fatalf("reopen shard %d WAL: %v", shard, err)
		}
		if rec.Corrupt != nil {
			t.Errorf("shard %d WAL has a torn tail after a clean drain: %v", shard, rec.Corrupt)
		}
		for _, r := range rec.Records {
			if r.Kind == persist.KindRating {
				durable[r.Seq] = true
				if r.Seq > maxDurable {
					maxDurable = r.Seq
				}
			}
		}
		_ = wal.Close()
	}
	for seq := uint64(1); seq <= acked; seq++ {
		if !durable[seq] {
			t.Fatalf("acknowledged seq %d missing from WALs (acked high-water %d)", seq, acked)
		}
	}
	if maxDurable < acked {
		t.Fatalf("WAL high-water %d below acknowledged %d", maxDurable, acked)
	}
}

// TestWorkerKillRecovery SIGKILLs a worker mid-interval: the supervisor
// respawns it, the client reconnects and replays the restart handshake, and
// the respawned worker rebuilds its acknowledged state from its own WAL —
// the drain must look exactly as if the crash never happened.
func TestWorkerKillRecovery(t *testing.T) {
	stateDir := t.TempDir()
	pc := spawnTest(t, SpawnOptions{Workers: 2, Shards: 2, StateDir: stateDir})
	cl := pc.Client()
	mustStart(t, cl, 16, false, make([]float64, 16))

	want := make(map[int][]rating.Rating)
	var seq uint64
	submit := func(shard, n int) {
		t.Helper()
		rs := mkRatings(n, shard*10, seq+1)
		seq += uint64(n)
		errs, err := cl.Shard(shard).SubmitPlain(rs)()
		if err != nil {
			t.Fatalf("submit shard %d: %v", shard, err)
		}
		for _, e := range errs {
			if e != nil {
				t.Fatalf("submit shard %d entry: %v", shard, e)
			}
		}
		want[shard] = append(want[shard], rs...)
	}
	submit(0, 12)
	submit(1, 9)

	// Capture the incarnation's exit channel before killing: the supervisor
	// replaces it the moment it respawns, so WaitExit would race the respawn.
	pc.procs[0].mu.Lock()
	exited := pc.procs[0].exited
	pc.procs[0].mu.Unlock()
	if err := pc.Kill(0, syscall.SIGKILL); err != nil {
		t.Fatalf("SIGKILL: %v", err)
	}
	select {
	case <-exited:
	case <-time.After(5 * time.Second):
		t.Fatal("killed worker still running after 5s")
	}

	// More traffic lands after the respawn — the first operation rides the
	// reconnect (queued, replayed by the resync) and must still succeed.
	submit(0, 7)
	submit(1, 5)

	for shard := 0; shard < 2; shard++ {
		ds, err := cl.Shard(shard).Drain(0)
		if err != nil {
			t.Fatalf("drain shard %d after recovery: %v", shard, err)
		}
		got := ds.Primary.Ratings
		exp := want[shard]
		sortBySeq(got)
		sortBySeq(exp)
		if len(got) != len(exp) {
			t.Fatalf("shard %d: %d ratings after recovery, want %d (no loss, no duplicates)",
				shard, len(got), len(exp))
		}
		for i := range got {
			if got[i] != exp[i] {
				t.Fatalf("shard %d rating %d: got %+v want %+v", shard, i, got[i], exp[i])
			}
		}
		if ds.Primary.MaxSeq != exp[len(exp)-1].Seq {
			t.Fatalf("shard %d MaxSeq %d, want %d", shard, ds.Primary.MaxSeq, exp[len(exp)-1].Seq)
		}
	}
	if got := mReconnects.Value(); got == 0 {
		t.Error("recovery path exercised but cluster_reconnects_total stayed 0")
	}
}

// TestRestartFatedBarrier pins the replay semantics of fated records across
// the two restart flavors. A coordinator-initiated restart (markRecovered
// false) is an incarnation crash: the replica mirror and deferred queues are
// rebuilt empty — per-interval state does not survive a crash — and a barrier
// mark is appended to the WAL. A reconnect resync (markRecovered true)
// replays only fated records positioned after the last mark: anything before
// it belonged to a drained interval or a dead incarnation, and resurrecting
// it would double-count ratings when the mirror is later substituted for a
// crashed primary.
func TestRestartFatedBarrier(t *testing.T) {
	pc := spawnTest(t, SpawnOptions{Workers: 1, Shards: 1, StateDir: t.TempDir(), NoRespawn: true})
	cl := pc.Client()
	reps := make([]float64, 16)
	mustStart(t, cl, 16, true, reps)
	sc := cl.Shard(0)

	submitFated := func(replica, deferred []rating.Rating) {
		t.Helper()
		var entries []manager.BatchEntry
		for _, r := range replica {
			entries = append(entries, manager.BatchEntry{R: r, Replica: true})
		}
		for _, r := range deferred {
			entries = append(entries, manager.BatchEntry{R: r, Deferred: true})
		}
		errs, err := sc.SubmitEntries(entries, time.Second)()
		if err != nil {
			t.Fatalf("SubmitEntries: %v", err)
		}
		for i, e := range errs {
			if e != nil {
				t.Fatalf("entry %d: %v", i, e)
			}
		}
	}

	primary1 := mkRatings(4, 0, 1)
	if _, err := sc.SubmitPlain(primary1)(); err != nil {
		t.Fatal(err)
	}
	submitFated(mkRatings(3, 20, 101), mkRatings(2, 40, 201))

	// Plan restart: primary records replay above the floor, but the mirror
	// and deferred queue come back empty.
	if err := sc.Crash(); err != nil {
		t.Fatal(err)
	}
	if err := sc.Restart(reps, 0, 0, false); err != nil {
		t.Fatal(err)
	}
	ds, err := sc.Drain(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(ds.Primary.Ratings); got != len(primary1) {
		t.Fatalf("post-plan-restart primary has %d ratings, want %d (deferred queue must not survive the crash)", got, len(primary1))
	}
	if got := len(ds.Replica.Ratings); got != 0 {
		t.Fatalf("post-plan-restart mirror has %d ratings, want 0", got)
	}

	// Resync restart: only fated records journaled after the barrier replay.
	// replicaFloor stays 0 — the barrier alone must fence the old records.
	replica2 := mkRatings(3, 20, 301)
	deferred2 := mkRatings(2, 40, 401)
	submitFated(replica2, deferred2)
	if err := sc.Crash(); err != nil {
		t.Fatal(err)
	}
	if err := sc.Restart(reps, ds.Primary.MaxSeq, 0, true); err != nil {
		t.Fatal(err)
	}
	ds, err = sc.Drain(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(ds.Primary.Ratings); got != len(deferred2) {
		t.Fatalf("post-resync primary has %d ratings, want %d (deferred2 flushed, nothing resurrected)", got, len(deferred2))
	}
	if got := len(ds.Replica.Ratings); got != len(replica2) {
		t.Fatalf("post-resync mirror has %d ratings, want %d (pre-barrier mirror records must not replay)", got, len(replica2))
	}
	for _, r := range ds.Replica.Ratings {
		if r.Seq < 301 {
			t.Fatalf("mirror resurrected pre-barrier record seq=%d", r.Seq)
		}
	}
}

// TestClusterCrashRestart drives the overlay's fault-injection surface over
// the wire: Crash discards the incarnation, Restart replays the WAL tail
// above the drain floor.
func TestClusterCrashRestart(t *testing.T) {
	pc := spawnTest(t, SpawnOptions{Workers: 1, Shards: 1, StateDir: t.TempDir(), NoRespawn: true})
	cl := pc.Client()
	mustStart(t, cl, 16, false, make([]float64, 16))
	sc := cl.Shard(0)

	rs := mkRatings(10, 0, 1)
	if _, err := sc.SubmitPlain(rs)(); err != nil {
		t.Fatal(err)
	}
	if err := sc.Crash(); err != nil {
		t.Fatalf("Crash: %v", err)
	}
	// A crashed shard refuses work until restarted.
	if _, err := sc.SubmitPlain(mkRatings(1, 0, 100))(); err == nil {
		t.Fatal("submit to a crashed shard succeeded")
	}
	if err := sc.Restart(make([]float64, 16), 0, 0, false); err != nil {
		t.Fatalf("Restart: %v", err)
	}
	ds, err := sc.Drain(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// The WAL replay (floor 0) restores all ten acknowledged ratings.
	if len(ds.Primary.Ratings) != len(rs) {
		t.Fatalf("post-restart drain has %d ratings, want %d", len(ds.Primary.Ratings), len(rs))
	}
}
