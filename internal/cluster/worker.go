// The cluster worker: one process hosting one or more manager shards behind
// a socket. Each hosted shard is the out-of-process analogue of a manager
// incarnation — a ledger (plus replica mirror and deferred lists in
// fault-tolerant mode), a reputation vector copy, and a per-shard serial
// dispatch loop standing in for the mailbox goroutine, so operations on one
// shard apply in arrival order while distinct shards proceed in parallel.
//
// The worker owns its shards' WALs (Config.StateDir): submissions are
// journaled before they are acknowledged, exactly as the in-process durable
// overlay does, so a SIGKILLed worker recovers its acknowledged tail from its
// own files when the coordinator's client reconnects and replays the
// restart handshake.
//
// SIGTERM drains cleanly: the listener closes, readers stop at the current
// frame boundary, every request already received is executed and answered,
// WALs are synced, /readyz flips to 503, and the process exits 0.
package cluster

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"math"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"socialtrust/internal/manager"
	"socialtrust/internal/obs"
	"socialtrust/internal/obs/health"
	"socialtrust/internal/persist"
	"socialtrust/internal/rating"
)

// Config configures one worker daemon.
type Config struct {
	// Listen is the serving address: "unix:/path/to.sock", "tcp:host:port",
	// or a bare host:port (TCP).
	Listen string
	// StateDir, when set, holds one WAL per hosted shard
	// (<StateDir>/shard-<i>.wal); submissions are journaled before they are
	// acknowledged. Empty disables worker-side durability.
	StateDir string
	// Persist tunes the shard WALs (fsync policy).
	Persist persist.Options
	// HealthAddr, when set, serves /healthz /readyz /statusz /metrics (and
	// optionally pprof) on the given TCP address.
	HealthAddr string
	Pprof      bool
	// Linger keeps the process alive (readiness down) for the given duration
	// after a drain completes, so orchestrators observe the not-ready window
	// before the exit. Zero exits immediately.
	Linger time.Duration
}

// workerShard is one hosted shard: the remote incarnation's state.
type workerShard struct {
	id    uint32
	queue chan *wreq

	down            bool // crashed incarnation: fresh state arrives with opRestart
	ledger          *rating.Ledger
	replica         *rating.Ledger
	deferred        []rating.Rating
	deferredReplica []rating.Rating
	reps            []float64
	wal             *persist.WAL
	// recDeferred / recDeferredReplica hold sequence numbers of deferred
	// entries restored from a WAL replay, with multiplicity — the deferred
	// queues' twin of rating.Ledger.MarkRecovered. A resubmitted entry whose
	// Seq is pending here is acknowledged without being queued again.
	recDeferred        map[uint64]int
	recDeferredReplica map[uint64]int
	// drainCovers records, per completed local drain, the primary and replica
	// snapshot high-water marks. A CompactWAL floor at or above a cover's
	// primary mark proves the coordinator received that drain, so fated
	// records up to its replica mark are safe to rotate away.
	drainCovers []drainCover
}

// drainCover is one completed drain's coverage marks.
type drainCover struct {
	primaryMax, replicaMax uint64
}

// wreq is one queued shard operation.
type wreq struct {
	h    msgHeader
	body []byte
	wc   *wconn
}

// wconn serializes reply writes to one coordinator connection.
type wconn struct {
	mu   sync.Mutex
	bw   *bufio.Writer
	buf  []byte
	dead bool
}

// reply encodes one reply frame into the connection's reusable buffer and
// writes it. Write failures latch the connection dead; the queued operations
// already applied stay applied (the coordinator's reconnect handshake
// re-establishes what was acknowledged).
func (c *wconn) reply(build func(b []byte) []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dead {
		return
	}
	sp := mEncodeLat.Start()
	c.buf = finishFrame(build(beginFrame(c.buf)))
	sp.End()
	if _, err := c.bw.Write(c.buf); err != nil {
		c.dead = true
		return
	}
	if err := c.bw.Flush(); err != nil {
		c.dead = true
		return
	}
	mFramesSent.Inc()
	mBytesSent.Add(int64(len(c.buf)))
}

// Worker is a running shard-hosting daemon.
type Worker struct {
	cfg Config

	mu         sync.Mutex
	shards     map[uint32]*workerShard
	numNodes   int
	replicated bool

	ln        net.Listener
	closed    chan struct{} // set on shutdown: stop accepting and reading
	drained   chan struct{} // set once readers exited: shard loops finish and exit
	closeOnce sync.Once
	draining  atomic.Bool
	conns     sync.WaitGroup
	shardWG   sync.WaitGroup
}

// NewWorker builds a worker; Run starts serving.
func NewWorker(cfg Config) *Worker {
	return &Worker{
		cfg:     cfg,
		shards:  make(map[uint32]*workerShard),
		closed:  make(chan struct{}),
		drained: make(chan struct{}),
	}
}

// splitListen parses a listen/dial spec into (network, address).
func splitListen(s string) (string, string) {
	if rest, ok := strings.CutPrefix(s, "unix:"); ok {
		return "unix", rest
	}
	if rest, ok := strings.CutPrefix(s, "tcp:"); ok {
		return "tcp", rest
	}
	return "tcp", s
}

// Shutdown initiates a graceful drain: readiness flips to not-ready, the
// listener closes, and Run returns once every received request is executed,
// answered, and the WAL tail synced. Safe to call more than once.
func (w *Worker) Shutdown() {
	w.closeOnce.Do(func() {
		w.draining.Store(true)
		close(w.closed)
		w.mu.Lock()
		ln := w.ln
		w.mu.Unlock()
		if ln != nil {
			_ = ln.Close()
		}
	})
}

// Run listens, serves coordinator connections until Shutdown (or SIGTERM/
// SIGINT when wired by RunSignals), then drains and returns.
func (w *Worker) Run() error {
	network, addr := splitListen(w.cfg.Listen)
	if network == "unix" {
		_ = os.Remove(addr)
	}
	ln, err := net.Listen(network, addr)
	if err != nil {
		return fmt.Errorf("cluster: listen %s: %w", w.cfg.Listen, err)
	}
	w.mu.Lock()
	w.ln = ln
	w.mu.Unlock()
	// A Shutdown that raced the listener install closes it here instead.
	select {
	case <-w.closed:
		_ = ln.Close()
	default:
	}
	var healthSrv *http.Server
	if w.cfg.HealthAddr != "" {
		healthSrv, err = w.serveHealth()
		if err != nil {
			_ = ln.Close()
			return err
		}
	}
	for {
		nc, err := ln.Accept()
		if err != nil {
			select {
			case <-w.closed:
			default:
				w.Shutdown()
			}
			break
		}
		w.conns.Add(1)
		go func() {
			defer w.conns.Done()
			w.serveConn(nc)
		}()
	}
	// Drain: wait for readers (every request received is now queued), then
	// let the shard loops finish their queues, then make the WAL tails
	// durable. Only after all of that may the process exit.
	w.conns.Wait()
	close(w.drained)
	w.shardWG.Wait()
	w.mu.Lock()
	for _, st := range w.shards {
		if st.wal != nil {
			_ = st.wal.Sync()
			_ = st.wal.Close()
		}
	}
	w.mu.Unlock()
	if w.cfg.Linger > 0 {
		time.Sleep(w.cfg.Linger)
	}
	if healthSrv != nil {
		_ = healthSrv.Close()
	}
	return nil
}

// RunSignals is Run with SIGTERM/SIGINT wired to the graceful drain — the
// daemon entry point.
func (w *Worker) RunSignals() error {
	sigC := make(chan os.Signal, 1)
	signal.Notify(sigC, syscall.SIGTERM, os.Interrupt)
	go func() {
		<-sigC
		w.Shutdown()
	}()
	defer signal.Stop(sigC)
	return w.Run()
}

// serveHealth starts the worker's ops endpoint: metrics (+pprof), health
// probes, with /readyz forced to 503 once a drain begins.
func (w *Worker) serveHealth() (*http.Server, error) {
	ln, err := net.Listen("tcp", w.cfg.HealthAddr)
	if err != nil {
		return nil, fmt.Errorf("cluster: health listen %s: %w", w.cfg.HealthAddr, err)
	}
	obs.Enable()
	s := health.Start(health.Config{})
	base := health.Handler(s, obs.Handler(w.cfg.Pprof))
	h := http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/readyz" && w.draining.Load() {
			http.Error(rw, "draining", http.StatusServiceUnavailable)
			return
		}
		base.ServeHTTP(rw, r)
	})
	srv := &http.Server{Addr: ln.Addr().String(), Handler: h}
	go func() { _ = srv.Serve(ln) }()
	return srv, nil
}

// closeRead half-closes a connection so the blocked reader unblocks while
// queued replies still go out — the graceful-drain read cutoff.
func closeRead(nc net.Conn) {
	type readCloser interface{ CloseRead() error }
	if rc, ok := nc.(readCloser); ok {
		_ = rc.CloseRead()
		return
	}
	_ = nc.Close()
}

// serveConn reads frames from one coordinator connection and dispatches
// them. A malformed frame closes the connection (never the process — the
// fuzz contract); the coordinator's client treats that as a connection
// failure and reconnects.
func (w *Worker) serveConn(nc net.Conn) {
	defer nc.Close()
	wc := &wconn{bw: bufio.NewWriterSize(nc, 64<<10)}
	br := bufio.NewReaderSize(nc, 64<<10)
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-w.closed:
			closeRead(nc)
		case <-stop:
		}
	}()
	for {
		payload, err := readFrame(br, nil)
		if err != nil {
			return
		}
		h, body, err := parseHeader(payload)
		if err != nil {
			return
		}
		if h.op == opHello {
			w.handleHello(wc, h, body)
			continue
		}
		w.mu.Lock()
		st := w.shards[h.shard]
		w.mu.Unlock()
		if st == nil {
			replyError(wc, h, fmt.Sprintf("unknown shard %d", h.shard))
			continue
		}
		select {
		case st.queue <- &wreq{h: h, body: body, wc: wc}:
		case <-w.drained:
			return
		}
	}
}

func replyError(wc *wconn, h msgHeader, msg string) {
	wc.reply(func(b []byte) []byte {
		b = appendReplyHeader(b, h.op, h.id, h.shard, statusError)
		return appendString(b, msg)
	})
}

func replyOK(wc *wconn, h msgHeader) {
	wc.reply(func(b []byte) []byte {
		return appendReplyHeader(b, h.op, h.id, h.shard, statusOK)
	})
}

// handleHello installs the overlay geometry and creates (or revisits, on a
// reconnect handshake) the hosted shards. Each new shard opens its WAL —
// torn tails are truncated on open, exactly as the in-process durable
// overlay does — and starts its serial dispatch loop.
func (w *Worker) handleHello(wc *wconn, h msgHeader, body []byte) {
	info, err := parseHello(body)
	if err != nil {
		replyError(wc, h, err.Error())
		return
	}
	if info.version != protoVersion {
		replyError(wc, h, fmt.Sprintf("protocol version %d, worker speaks %d", info.version, protoVersion))
		return
	}
	if info.numNodes <= 0 {
		replyError(wc, h, fmt.Sprintf("invalid node count %d", info.numNodes))
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.shards) == 0 {
		w.numNodes = info.numNodes
		w.replicated = info.replicated
	} else if w.numNodes != info.numNodes || w.replicated != info.replicated {
		replyError(wc, h, "hello geometry mismatch with hosted shards")
		return
	}
	for _, id := range info.shards {
		if _, ok := w.shards[id]; ok {
			continue // reconnect: the shard and its state survive
		}
		st := &workerShard{
			id:     id,
			queue:  make(chan *wreq, 1024),
			ledger: rating.NewLedger(w.numNodes),
			reps:   append([]float64(nil), info.reps...),
		}
		if w.replicated {
			st.replica = rating.NewLedger(w.numNodes)
		}
		if w.cfg.StateDir != "" {
			if err := os.MkdirAll(w.cfg.StateDir, 0o755); err != nil {
				replyError(wc, h, err.Error())
				return
			}
			path := filepath.Join(w.cfg.StateDir, fmt.Sprintf("shard-%d.wal", id))
			wal, _, err := persist.Open(path, w.cfg.Persist)
			if err != nil {
				replyError(wc, h, err.Error())
				return
			}
			st.wal = wal
			st.ledger.SetJournal(walJournal{wal})
			if st.replica != nil {
				st.replica.SetJournal(fatedJournal{wal, persist.FateReplica})
			}
		}
		w.shards[id] = st
		w.shardWG.Add(1)
		go w.shardLoop(st)
	}
	replyOK(wc, h)
}

// walJournal adapts a persist.WAL to the ledger's write-ahead hook (the
// worker-side twin of the manager's adapter).
type walJournal struct{ w *persist.WAL }

func (j walJournal) Append(rs []rating.Rating) error {
	recs := make([]persist.Record, len(rs))
	for i, r := range rs {
		recs[i] = persist.Record{
			Kind:     persist.KindRating,
			Seq:      r.Seq,
			Rater:    int32(r.Rater),
			Ratee:    int32(r.Ratee),
			Cycle:    int32(r.Cycle),
			Category: int32(r.Category),
			Value:    r.Value,
		}
	}
	return j.w.Append(recs)
}

// fatedJournal journals ratings as KindFatedRating records carrying the given
// fate flags. The replica mirror's write-ahead hook uses it (FateReplica), and
// addEntries uses it directly for deferred queues: unlike the in-process
// overlay, a worker cannot rely on whole-interval re-execution to rebuild
// those substrates after a kill, so everything acknowledged must be journaled.
type fatedJournal struct {
	w     *persist.WAL
	flags byte
}

func (j fatedJournal) Append(rs []rating.Rating) error {
	recs := make([]persist.Record, len(rs))
	for i, r := range rs {
		recs[i] = persist.Record{
			Kind:     persist.KindFatedRating,
			Flags:    j.flags,
			Seq:      r.Seq,
			Rater:    int32(r.Rater),
			Ratee:    int32(r.Ratee),
			Cycle:    int32(r.Cycle),
			Category: int32(r.Category),
			Value:    r.Value,
		}
	}
	return j.w.Append(recs)
}

// shardLoop applies one shard's operations serially in arrival order — the
// worker-side mailbox. It exits once the drain gate opens and the queue is
// empty.
func (w *Worker) shardLoop(st *workerShard) {
	defer w.shardWG.Done()
	for {
		select {
		case rq := <-st.queue:
			w.handleShardOp(st, rq)
		case <-w.drained:
			for {
				select {
				case rq := <-st.queue:
					w.handleShardOp(st, rq)
				default:
					return
				}
			}
		}
	}
}

func (w *Worker) oob(r rating.Rating) bool {
	return r.Rater < 0 || r.Rater >= w.numNodes || r.Ratee < 0 || r.Ratee >= w.numNodes
}

func (w *Worker) handleShardOp(st *workerShard, rq *wreq) {
	h := rq.h
	sp := mDecodeLat.Start()
	wr := &wire{b: rq.body}
	switch h.op {
	case opSubmitPlain:
		rs := wr.ratings()
		err := wr.done()
		sp.End()
		if err != nil {
			replyError(rq.wc, h, err.Error())
			return
		}
		if st.down {
			replyError(rq.wc, h, "shard is down")
			return
		}
		errs := w.addPlain(st, rs)
		rq.wc.reply(func(b []byte) []byte {
			b = appendReplyHeader(b, h.op, h.id, h.shard, statusOK)
			return appendSubmitReply(b, len(rs), errs)
		})
	case opSubmitEntries:
		es := wr.entries()
		err := wr.done()
		sp.End()
		if err != nil {
			replyError(rq.wc, h, err.Error())
			return
		}
		if st.down {
			replyError(rq.wc, h, "shard is down")
			return
		}
		errs := w.addEntries(st, es)
		rq.wc.reply(func(b []byte) []byte {
			b = appendReplyHeader(b, h.op, h.id, h.shard, statusOK)
			return appendSubmitReply(b, len(es), errs)
		})
	case opQuery:
		node := int(int32(wr.u32()))
		err := wr.done()
		sp.End()
		if err != nil {
			replyError(rq.wc, h, err.Error())
			return
		}
		var v float64
		if !st.down && node >= 0 && node < len(st.reps) {
			v = st.reps[node]
		}
		rq.wc.reply(func(b []byte) []byte {
			b = appendReplyHeader(b, h.op, h.id, h.shard, statusOK)
			return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
		})
	case opDrain:
		err := wr.done()
		sp.End()
		if err != nil {
			replyError(rq.wc, h, err.Error())
			return
		}
		if st.down {
			replyError(rq.wc, h, "shard is down")
			return
		}
		primary, replica, hasReplica := w.drainShard(st)
		rq.wc.reply(func(b []byte) []byte {
			b = appendReplyHeader(b, h.op, h.id, h.shard, statusOK)
			b = appendSnapshot(b, primary)
			b = appendBool(b, hasReplica)
			if hasReplica {
				b = appendSnapshot(b, replica)
			}
			return b
		})
	case opUpdateReps:
		reps := wr.floats()
		err := wr.done()
		sp.End()
		if err != nil {
			replyError(rq.wc, h, err.Error())
			return
		}
		st.reps = reps
		replyOK(rq.wc, h)
	case opCrash:
		sp.End()
		// The incarnation dies: its interval ledgers are discarded. The WAL
		// stays open — it is the durability mechanism, and the restart
		// replays its recoverable tail.
		st.down = true
		st.ledger = nil
		st.replica = nil
		st.deferred = nil
		st.deferredReplica = nil
		st.recDeferred = nil
		st.recDeferredReplica = nil
		replyOK(rq.wc, h)
	case opRestart:
		ri, err := parseRestart(rq.body)
		sp.End()
		if err != nil {
			replyError(rq.wc, h, err.Error())
			return
		}
		if err := w.restartShard(st, ri); err != nil {
			replyError(rq.wc, h, err.Error())
			return
		}
		replyOK(rq.wc, h)
	case opMark:
		interval := wr.u64()
		err := wr.done()
		sp.End()
		if err != nil {
			replyError(rq.wc, h, err.Error())
			return
		}
		if st.wal != nil {
			if err := st.wal.AppendMark(interval); err != nil {
				replyError(rq.wc, h, err.Error())
				return
			}
		}
		replyOK(rq.wc, h)
	case opCompactWAL:
		floor := wr.u64()
		err := wr.done()
		sp.End()
		if err != nil {
			replyError(rq.wc, h, err.Error())
			return
		}
		if st.wal != nil && st.wal.MaxSeq() <= floor && fatedCovered(st, floor) {
			if err := st.wal.Rotate(); err != nil {
				replyError(rq.wc, h, err.Error())
				return
			}
			st.drainCovers = nil
		}
		replyOK(rq.wc, h)
	case opResetWAL:
		sp.End()
		if st.wal != nil {
			if err := st.wal.Rotate(); err != nil {
				replyError(rq.wc, h, err.Error())
				return
			}
		}
		replyOK(rq.wc, h)
	default:
		sp.End()
		replyError(rq.wc, h, fmt.Sprintf("unknown op %d", h.op))
	}
}

// addPlain applies a direct-mode sub-batch. Node ranges are validated before
// the ledger sees them — the ledger panics on out-of-range IDs, and a
// malformed peer must never panic a worker — with invalid entries failed
// individually, exactly as coordinator-side validation would have.
func (w *Worker) addPlain(st *workerShard, rs []rating.Rating) []error {
	var errs []error
	valid := rs
	var idx []int
	for i := range rs {
		if w.oob(rs[i]) {
			if errs == nil {
				errs = make([]error, len(rs))
				valid = make([]rating.Rating, 0, len(rs))
				idx = make([]int, 0, len(rs))
				valid = append(valid, rs[:i]...)
				for j := 0; j < i; j++ {
					idx = append(idx, j)
				}
			}
			errs[i] = fmt.Errorf("cluster: node out of range in %+v (numNodes=%d)", rs[i], w.numNodes)
			continue
		}
		if errs != nil {
			valid = append(valid, rs[i])
			idx = append(idx, i)
		}
	}
	res := st.ledger.AddBatch(valid)
	if res == nil {
		return errs
	}
	if errs == nil {
		return res
	}
	for x, e := range res {
		if e != nil {
			errs[idx[x]] = e
		}
	}
	return errs
}

// addEntries applies a fault-mode sub-batch, honoring each entry's
// replica/deferred fate bits — the twin of the mailbox handleSubmitBatch.
func (w *Worker) addEntries(st *workerShard, es []manager.BatchEntry) []error {
	var errs []error
	fail := func(i int, err error) {
		if errs == nil {
			errs = make([]error, len(es))
		}
		errs[i] = err
	}
	for i, e := range es {
		if w.oob(e.R) {
			fail(i, fmt.Errorf("cluster: node out of range in %+v (numNodes=%d)", e.R, w.numNodes))
			continue
		}
		switch {
		case e.Deferred && e.Replica:
			if consumeRecovered(st.recDeferredReplica, e.R.Seq) {
				continue // restored from the WAL; acknowledge without requeueing
			}
			if st.wal != nil {
				if err := (fatedJournal{st.wal, persist.FateDeferred | persist.FateReplica}).Append([]rating.Rating{e.R}); err != nil {
					fail(i, err)
					continue
				}
			}
			st.deferredReplica = append(st.deferredReplica, e.R)
		case e.Deferred:
			if consumeRecovered(st.recDeferred, e.R.Seq) {
				continue
			}
			if st.wal != nil {
				if err := (fatedJournal{st.wal, persist.FateDeferred}).Append([]rating.Rating{e.R}); err != nil {
					fail(i, err)
					continue
				}
			}
			st.deferred = append(st.deferred, e.R)
		case e.Replica:
			if st.replica == nil {
				fail(i, fmt.Errorf("cluster: replica entry on unreplicated shard %d", st.id))
				continue
			}
			// The replica ledger's fated journal records the entry before it
			// is acknowledged, and its recovered set absorbs resubmissions of
			// WAL-restored entries.
			if err := st.replica.Add(e.R); err != nil {
				fail(i, err)
			}
		default:
			if err := st.ledger.Add(e.R); err != nil {
				fail(i, err)
			}
		}
	}
	return errs
}

// fatedCovered reports whether every fated record in the shard's WAL is
// covered by a drain the coordinator provably received: a compact floor at or
// above a cover's primary mark implies that drain's reply landed, so its
// replica mark bounds the fated records it covered. With no fated records the
// question is moot.
func fatedCovered(st *workerShard, floor uint64) bool {
	maxFated := st.wal.MaxFatedSeq()
	if maxFated == 0 {
		return true
	}
	var covered uint64
	for _, c := range st.drainCovers {
		if c.primaryMax > 0 && c.primaryMax <= floor && c.replicaMax > covered {
			covered = c.replicaMax
		}
	}
	return maxFated <= covered
}

// consumeRecovered consumes one pending occurrence of seq from a deferred
// recovered-multiset, reporting whether it was pending.
func consumeRecovered(m map[uint64]int, seq uint64) bool {
	if seq == 0 || m == nil {
		return false
	}
	n := m[seq]
	if n == 0 {
		return false
	}
	if n == 1 {
		delete(m, seq)
	} else {
		m[seq] = n - 1
	}
	return true
}

// drainShard flushes deferred submissions and snapshots the interval — the
// twin of shardState.drain.
func (w *Worker) drainShard(st *workerShard) (primary, replica rating.Snapshot, hasReplica bool) {
	// Deferred entries were journaled as fated records when they were
	// accepted; flushing them into the interval ledgers must not journal them
	// a second time, so the write-ahead hooks are suspended for the flush.
	if st.wal != nil {
		st.ledger.SetJournal(nil)
		defer st.ledger.SetJournal(walJournal{st.wal})
	}
	for _, r := range st.deferred {
		_ = st.ledger.Add(r) // validated at submit time
	}
	st.deferred = st.deferred[:0]
	primary = st.ledger.EndInterval()
	if st.replica != nil {
		if st.wal != nil {
			st.replica.SetJournal(nil)
			defer st.replica.SetJournal(fatedJournal{st.wal, persist.FateReplica})
		}
		for _, r := range st.deferredReplica {
			_ = st.replica.Add(r)
		}
		st.deferredReplica = st.deferredReplica[:0]
		replica = st.replica.EndInterval()
		hasReplica = true
	}
	if st.wal != nil {
		st.drainCovers = append(st.drainCovers, drainCover{primary.MaxSeq, replica.MaxSeq})
	}
	return primary, replica, hasReplica
}

// restartShard installs a fresh incarnation: empty ledgers, the broadcast
// vector from the wire, and the WAL's recoverable tail replayed before the
// journals are reattached — the worker-side twin of the overlay's
// restartShardLocked / Resume replay. Primary records replay above the
// primary drain floor.
//
// Fated records (replica mirror, deferred queues) describe per-interval
// state: every drain flushes and discards them, so a record from a completed
// interval is dead no matter what its sequence number says relative to the
// drain floors — the floors only advance through drain replies and can lag
// arbitrarily while this worker or its mirrored shard is down. Interval
// boundaries are recovered from the WAL itself: fated records positioned
// before the last mark belong to drained intervals and never replay. They
// replay only on a reconnect resync (markRecovered), where the client floor
// additionally excludes records whose drain reply landed before the mark did.
// A coordinator-initiated restart is an incarnation crash — the mirror and
// deferred queues are rebuilt empty, exactly as restartShardLocked rebuilds
// them — and appends a barrier mark so a later resync cannot resurrect
// records the dead incarnation owned.
func (w *Worker) restartShard(st *workerShard, ri restartInfo) error {
	st.ledger = rating.NewLedger(w.numNodes)
	if w.replicated {
		st.replica = rating.NewLedger(w.numNodes)
	} else {
		st.replica = nil
	}
	st.deferred = nil
	st.deferredReplica = nil
	st.recDeferred = nil
	st.recDeferredReplica = nil
	st.reps = append([]float64(nil), ri.reps...)
	if st.wal != nil {
		recs, _ := st.wal.ReadBack()
		lastMark := -1
		var lastMarkVal uint64
		for i := range recs {
			if recs[i].Kind == persist.KindMark {
				lastMark = i
				lastMarkVal = recs[i].Seq
			}
		}
		var recovered, recReplica map[uint64]int
		note := func(m *map[uint64]int, seq uint64) {
			if ri.markRecovered {
				if *m == nil {
					*m = make(map[uint64]int)
				}
				(*m)[seq]++
			}
		}
		for idx, rec := range recs {
			if rec.Kind != persist.KindRating && rec.Kind != persist.KindFatedRating {
				continue
			}
			fatedLive := ri.markRecovered && idx > lastMark
			r := rating.Rating{
				Rater:    int(rec.Rater),
				Ratee:    int(rec.Ratee),
				Value:    rec.Value,
				Cycle:    int(rec.Cycle),
				Category: int(rec.Category),
				Seq:      rec.Seq,
			}
			if w.oob(r) {
				continue // defensive: never panic on a corrupt record
			}
			switch {
			case rec.Kind == persist.KindRating:
				if rec.Seq <= ri.floor {
					continue
				}
				if err := st.ledger.Add(r); err != nil {
					continue
				}
				note(&recovered, rec.Seq)
			case rec.Flags&persist.FateDeferred != 0 && rec.Flags&persist.FateReplica != 0:
				if !fatedLive || rec.Seq <= ri.replicaFloor || st.replica == nil {
					continue
				}
				st.deferredReplica = append(st.deferredReplica, r)
				note(&st.recDeferredReplica, rec.Seq)
			case rec.Flags&persist.FateDeferred != 0:
				if !fatedLive || rec.Seq <= ri.floor {
					continue
				}
				st.deferred = append(st.deferred, r)
				note(&st.recDeferred, rec.Seq)
			case rec.Flags&persist.FateReplica != 0:
				if !fatedLive || rec.Seq <= ri.replicaFloor || st.replica == nil {
					continue
				}
				if err := st.replica.Add(r); err != nil {
					continue
				}
				note(&recReplica, rec.Seq)
			}
		}
		if len(recovered) > 0 {
			st.ledger.MarkRecovered(recovered)
		}
		if len(recReplica) > 0 {
			st.replica.MarkRecovered(recReplica)
		}
		st.ledger.SetJournal(walJournal{st.wal})
		if st.replica != nil {
			st.replica.SetJournal(fatedJournal{st.wal, persist.FateReplica})
		}
		if !ri.markRecovered {
			if err := st.wal.AppendMark(lastMarkVal); err != nil {
				st.down = false
				return err
			}
		}
	}
	st.down = false
	return nil
}
