package cluster

import (
	"bytes"
	"testing"
)

// FuzzClusterFrameDecode is the never-panic contract for the wire decoder:
// whatever bytes arrive on a cluster socket, DecodeFrames either yields
// CRC-verified payloads or reports ErrCorruptFrame, and every payload it
// yields must survive ParsePayload — the exact code path a worker (or the
// client's reader) runs on a hostile or damaged peer.
func FuzzClusterFrameDecode(f *testing.F) {
	payloads, stream := testFrames()
	f.Add(stream)
	for _, p := range payloads {
		f.Add(finishFrame(append(beginFrame(nil), p...)))
	}
	// Torn and corrupted variants steer the fuzzer at the interesting edges.
	f.Add(stream[:len(stream)-3])
	mut := append([]byte(nil), stream...)
	mut[frameHeaderLen+1] ^= 0x40
	f.Add(mut)
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		got, valid, err := DecodeFrames(bytes.NewReader(data))
		if valid < 0 || valid > int64(len(data)) {
			t.Fatalf("valid prefix %d outside [0, %d]", valid, len(data))
		}
		if err == nil && valid != int64(len(data)) {
			t.Fatalf("clean decode consumed %d of %d bytes", valid, len(data))
		}
		for _, p := range got {
			_ = ParsePayload(p) // must not panic; errors are fine
		}
	})
}
