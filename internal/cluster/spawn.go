// Spawning and supervising a local worker fleet: Spawn launches N
// socialtrust-shardd processes (by default re-executing the current binary,
// which calls WorkerMainIfChild before flag parsing), wires a pipelined
// Client across them, respawns workers that die unexpectedly, and tears the
// fleet down with a graceful SIGTERM escalating to SIGKILL.
package cluster

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// SpawnOptions configures a worker fleet.
type SpawnOptions struct {
	// Workers is the process count; Shards the total shard count routed
	// across them (shard i lives on worker i mod Workers).
	Workers int
	Shards  int
	// StateDir, when set, gives each worker its own WAL directory
	// (<StateDir>/worker-<i>). Empty disables worker-side durability.
	StateDir string
	// Fsync is the worker WAL fsync policy: "marks" (default), "always",
	// "never".
	Fsync string
	// HealthBase, when non-zero, serves each worker's ops endpoint on
	// 127.0.0.1:(HealthBase+i).
	HealthBase int
	// TCP switches the transport from unix domain sockets (the default) to
	// TCP loopback on ports PortBase+i.
	TCP      bool
	PortBase int
	// Command overrides the worker argv (default: re-exec this binary, which
	// must call WorkerMainIfChild early in main).
	Command []string
	// NoRespawn disables the supervisor: a worker that dies stays dead.
	NoRespawn bool
	// Linger is passed through to the workers' drain linger window.
	Linger time.Duration
}

// workerProc is one supervised worker process.
type workerProc struct {
	idx  int
	addr string
	env  []string

	mu      sync.Mutex
	cmd     *exec.Cmd
	exited  chan struct{} // closed when the current incarnation exits
	peakRSS atomic.Int64  // max VmHWM observed across incarnations, in KiB
}

// ProcCluster is a running worker fleet plus the Transport that drives it.
// Pass Client() as manager.Options.Transport; Close tears down both.
type ProcCluster struct {
	opts    SpawnOptions
	sockDir string
	client  *Client
	procs   []*workerProc
	closing atomic.Bool
	mon     sync.WaitGroup
}

// Spawn launches the fleet and waits for every worker socket to accept.
func Spawn(opts SpawnOptions) (*ProcCluster, error) {
	if opts.Workers <= 0 || opts.Shards <= 0 {
		return nil, fmt.Errorf("cluster: need positive worker and shard counts (got %d, %d)", opts.Workers, opts.Shards)
	}
	if opts.Workers > opts.Shards {
		opts.Workers = opts.Shards
	}
	argv := opts.Command
	if len(argv) == 0 {
		self, err := os.Executable()
		if err != nil {
			return nil, fmt.Errorf("cluster: resolve self for worker exec: %w", err)
		}
		argv = []string{self}
	}
	// Unix socket paths are length-limited (~104 bytes), so the socket
	// directory is a fresh short-named temp dir, not the state dir.
	sockDir, err := os.MkdirTemp("", "stc")
	if err != nil {
		return nil, err
	}
	pc := &ProcCluster{opts: opts, sockDir: sockDir}
	addrs := make([]string, opts.Workers)
	for i := 0; i < opts.Workers; i++ {
		if opts.TCP {
			addrs[i] = fmt.Sprintf("tcp:127.0.0.1:%d", opts.PortBase+i)
		} else {
			addrs[i] = "unix:" + filepath.Join(sockDir, fmt.Sprintf("w%d.sock", i))
		}
		env := append(os.Environ(),
			envListen+"="+addrs[i],
			envFsync+"="+opts.Fsync,
		)
		if opts.StateDir != "" {
			env = append(env, envStateDir+"="+filepath.Join(opts.StateDir, fmt.Sprintf("worker-%d", i)))
		}
		if opts.HealthBase != 0 {
			env = append(env, envHealth+"="+fmt.Sprintf("127.0.0.1:%d", opts.HealthBase+i))
		}
		if opts.Linger > 0 {
			env = append(env, envLinger+"="+opts.Linger.String())
		}
		wp := &workerProc{idx: i, addr: addrs[i], env: env}
		if err := pc.launch(wp, argv); err != nil {
			_ = pc.Close()
			return nil, err
		}
		pc.procs = append(pc.procs, wp)
	}
	pc.client = NewClient(addrs, opts.Shards)
	return pc, nil
}

// launch starts one worker incarnation and its supervisor goroutine.
func (pc *ProcCluster) launch(wp *workerProc, argv []string) error {
	cmd := exec.Command(argv[0], argv[1:]...)
	cmd.Env = wp.env
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("cluster: start worker %d: %w", wp.idx, err)
	}
	exited := make(chan struct{})
	wp.mu.Lock()
	wp.cmd = cmd
	wp.exited = exited
	wp.mu.Unlock()
	pc.mon.Add(1)
	go func() {
		defer pc.mon.Done()
		pid := cmd.Process.Pid
		done := make(chan struct{})
		go func() {
			_ = cmd.Wait()
			close(done)
		}()
		// Poll the kernel's peak-RSS high-water mark while the process lives;
		// the final read races its death, so the last good sample stands.
		tick := time.NewTicker(500 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-done:
				close(exited)
				if !pc.closing.Load() && !pc.opts.NoRespawn {
					mRespawns.Inc()
					_ = pc.launch(wp, argv)
				}
				return
			case <-tick.C:
				if kb, ok := readVmHWM(pid); ok && kb > wp.peakRSS.Load() {
					wp.peakRSS.Store(kb)
				}
			}
		}
	}()
	return nil
}

// SelfPeakRSSMB returns this process's peak resident set size in MiB
// (kernel VmHWM), or 0 where /proc is unavailable.
func SelfPeakRSSMB() float64 {
	kb, _ := readVmHWM(os.Getpid())
	return float64(kb) / 1024
}

// readVmHWM reads a process's peak resident set size from /proc, in KiB.
func readVmHWM(pid int) (int64, bool) {
	b, err := os.ReadFile(fmt.Sprintf("/proc/%d/status", pid))
	if err != nil {
		return 0, false
	}
	for _, line := range strings.Split(string(b), "\n") {
		if rest, ok := strings.CutPrefix(line, "VmHWM:"); ok {
			f := strings.Fields(rest)
			if len(f) >= 1 {
				if kb, err := strconv.ParseInt(f[0], 10, 64); err == nil {
					return kb, true
				}
			}
		}
	}
	return 0, false
}

// Client returns the fleet's transport — the value for
// manager.Options.Transport.
func (pc *ProcCluster) Client() *Client { return pc.client }

// HealthAddrs returns the workers' ops endpoints ("" entries when health
// serving is disabled).
func (pc *ProcCluster) HealthAddrs() []string {
	addrs := make([]string, len(pc.procs))
	if pc.opts.HealthBase != 0 {
		for i := range addrs {
			addrs[i] = fmt.Sprintf("127.0.0.1:%d", pc.opts.HealthBase+i)
		}
	}
	return addrs
}

// Kill sends sig to worker i's current incarnation — the fault injection
// hook (SIGKILL for crash tests, SIGTERM for drain tests).
func (pc *ProcCluster) Kill(i int, sig syscall.Signal) error {
	pc.procs[i].mu.Lock()
	cmd := pc.procs[i].cmd
	pc.procs[i].mu.Unlock()
	if cmd == nil || cmd.Process == nil {
		return fmt.Errorf("cluster: worker %d has no process", i)
	}
	return cmd.Process.Signal(sig)
}

// WaitExit blocks until worker i's current incarnation exits and returns its
// exit code.
func (pc *ProcCluster) WaitExit(i int, timeout time.Duration) (int, error) {
	pc.procs[i].mu.Lock()
	cmd := pc.procs[i].cmd
	exited := pc.procs[i].exited
	pc.procs[i].mu.Unlock()
	select {
	case <-exited:
		return cmd.ProcessState.ExitCode(), nil
	case <-time.After(timeout):
		return 0, fmt.Errorf("cluster: worker %d still running after %v", i, timeout)
	}
}

// WorkerPeakRSSMB returns the largest per-worker peak RSS observed, in MiB.
func (pc *ProcCluster) WorkerPeakRSSMB() float64 {
	var maxKB int64
	for _, wp := range pc.procs {
		// One final opportunistic sample for workers still alive.
		wp.mu.Lock()
		cmd := wp.cmd
		wp.mu.Unlock()
		if cmd != nil && cmd.Process != nil {
			if kb, ok := readVmHWM(cmd.Process.Pid); ok && kb > wp.peakRSS.Load() {
				wp.peakRSS.Store(kb)
			}
		}
		if kb := wp.peakRSS.Load(); kb > maxKB {
			maxKB = kb
		}
	}
	return float64(maxKB) / 1024
}

// Close tears the fleet down: the client's connections close, every worker
// gets a SIGTERM drain window, stragglers get SIGKILL, and the socket
// directory is removed.
func (pc *ProcCluster) Close() error {
	pc.closing.Store(true)
	if pc.client != nil {
		_ = pc.client.Close()
	}
	for _, wp := range pc.procs {
		wp.mu.Lock()
		cmd := wp.cmd
		wp.mu.Unlock()
		if cmd != nil && cmd.Process != nil {
			_ = cmd.Process.Signal(syscall.SIGTERM)
		}
	}
	deadline := time.After(5 * time.Second)
	for _, wp := range pc.procs {
		wp.mu.Lock()
		cmd := wp.cmd
		exited := wp.exited
		wp.mu.Unlock()
		if cmd == nil {
			continue
		}
		select {
		case <-exited:
		case <-deadline:
			_ = cmd.Process.Kill()
			<-exited
		}
	}
	pc.mon.Wait()
	return os.RemoveAll(pc.sockDir)
}
